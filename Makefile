# Tier-1 gate (build + tests) plus the longer checks CI and humans run.
GO ?= go

.PHONY: all build test vet lint race check check-metrics check-crash check-trace check-capacity check-doctor fmt bench bench-archival bench-tracing bench-capacity bench-cdc bench-go fuzz microbench

# Bench artifact knobs: BENCH_IOS sizes the workload, BENCH_OUT is the
# artifact directory.
BENCH_IOS ?= 20000
BENCH_OUT ?= bench-artifacts

# Build stamping for the build_info metric: released binaries carry the
# tag and commit, dirty trees fall back to dev/none so builds still
# work outside a git checkout.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo none)
LDFLAGS := -X main.buildVersion=$(VERSION) -X main.buildCommit=$(COMMIT)

all: check

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs staticcheck when it is installed (CI installs it; local
# trees without it skip with a notice rather than failing the build).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# check-metrics boots a real fidrd, drives writes over the wire, lexes
# the Prometheus exposition, and asserts the host-DRAM payload
# invariant (FIDR == 0, baseline > 0) from the scraped counters.
check-metrics:
	$(GO) test -v -run 'TestMetricsEndpointE2E|TestHostDRAMPayloadInvariantE2E' ./cmd/fidrd

# check-crash runs the durability suite under the race detector: the
# randomized crash-injection harness (240 seeded crash/recover cycles
# across four pipeline stages; seeds are fixed inside the test), the
# checkpoint-vs-concurrent-writes regression, the group-local WAL
# recovery test, and the WAL unit + fault matrix in internal/core.
# CRASH_COUNT repeats the whole sweep.
CRASH_COUNT ?= 1
check-crash:
	$(GO) test -race -count $(CRASH_COUNT) \
		-run 'TestCrashRecoveryRandomized|TestCheckpointRacingWrites|TestGroupLocalWALRecovery' .
	$(GO) test -race -count $(CRASH_COUNT) -run 'TestWAL|TestRecoverServerTypedErrors' ./internal/core

# check-trace boots a 2-group fidrd with group-local WALs, drives
# traced writes through the real CLI, and asserts the returned trace ID
# resolves to a span tree covering proto, async queue, core, batch and
# WAL stages — plus exemplar resolution and the SLO endpoints.
check-trace:
	$(GO) test -v -run TestTraceE2E ./cmd/fidrd

# check-capacity boots a 2-group fidrd, drives mixed dup/unique writes
# and a GC pass through the real CLI, and asserts the attribution
# equation balances on a live /capacity scrape, the heatmap reconciles
# with the garbage ledger, and GC/checkpoint/recovery land in /events.
check-capacity:
	$(GO) test -v -run TestCapacityE2E ./cmd/fidrd

# check-doctor boots a fidrd with the flight recorder armed and a tight
# watchdog, injects an async-worker stall through the -debug-hooks test
# endpoint, and asserts the watchdog trips (watchdog_stall event), the
# recorder captures an on-disk snapshot served at /debug/bundle, and
# `fidrcli doctor` flags the stall (non-zero exit) then reports healthy
# after recovery.
check-doctor:
	$(GO) test -v -run TestDoctorE2E ./cmd/fidrd

# bench writes machine-readable BENCH_<experiment>.json artifacts
# (throughput, reduction ratios, p50/p90/p99 stage latencies).
bench:
	$(GO) run ./cmd/fidrbench -ios $(BENCH_IOS) -out $(BENCH_OUT) bench

# bench-archival writes only BENCH_archival.json: the WAL-attached
# Archival ingest run plus the recovery-time vs. WAL-length sweep.
bench-archival:
	$(GO) run ./cmd/fidrbench -ios $(BENCH_IOS) -out $(BENCH_OUT) bench archival

# bench-tracing writes only BENCH_tracing.json: each Table 3 workload
# run with the span plane off vs. head-sampled on, recording the
# throughput overhead (acceptance: <= ~5% on write workloads).
bench-tracing:
	$(GO) run ./cmd/fidrbench -ios $(BENCH_IOS) -out $(BENCH_OUT) bench tracing

# bench-capacity writes only BENCH_capacity.json: the Write-M run plus
# an overwrite phase and one measured GC pass, recording the
# reduction-attribution ledger and garbage reclaimed.
bench-capacity:
	$(GO) run ./cmd/fidrbench -ios $(BENCH_IOS) -out $(BENCH_OUT) bench capacity

# bench-cdc writes only BENCH_cdc.json: single-core chunking GB/s for
# the skip-ahead chunker vs the reference scalar (acceptance: >= 5x),
# plus the end-to-end fixed-vs-CDC throughput and dedup-ratio delta on
# insertion-shifted backup generations.
bench-cdc:
	$(GO) run ./cmd/fidrbench -ios $(BENCH_IOS) -out $(BENCH_OUT) bench cdc

# fuzz runs the chunker equivalence fuzzer for a bounded slice of CI
# time: the fast skip-ahead path must cut byte-identical boundaries to
# the reference scalar on every input the fuzzer invents. FUZZ_TIME
# extends the budget locally.
FUZZ_TIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzCDCEquivalence$$' -fuzztime $(FUZZ_TIME) ./internal/chunk

# bench-go runs the root workload and accelerator-lane benchmarks with
# benchstat-compatible output (pipe COUNT>=10 runs into benchstat to
# compare commits). BENCH_COUNT sets -count.
BENCH_COUNT ?= 5
bench-go:
	$(GO) test -run '^$$' \
		-bench '^(BenchmarkWriteH|BenchmarkWriteM|BenchmarkWriteL|BenchmarkReadMixed|BenchmarkHashLanes|BenchmarkCompressLanes)$$' \
		-benchmem -count $(BENCH_COUNT) .

# microbench runs the Go testing benchmarks.
microbench:
	$(GO) test -bench=. -benchmem ./...

# check is the pre-commit bundle: tier-1 plus static analysis and the
# race detector over the whole module.
check: build test lint race
