# Tier-1 gate (build + tests) plus the longer checks CI and humans run.
GO ?= go

.PHONY: all build test vet race check fmt bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# check is the pre-commit bundle: tier-1 plus static analysis and the
# race detector over the whole module.
check: build test vet race
