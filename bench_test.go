package fidr_test

// One benchmark per paper artifact: each bench regenerates its table or
// figure end-to-end (workload synthesis, functional servers, projection
// models) and reports the derived headline metric alongside wall time.
// Run with:
//
//	go test -bench=. -benchmem
//
// The underlying tables are printable with cmd/fidrbench.

import (
	"testing"

	"fidr"
	"fidr/internal/experiments"
)

// benchScale keeps per-iteration work moderate; headline ratios are
// scale-invariant (see internal/experiments).
func benchScale() experiments.Scale { return experiments.Scale{IOs: 20000} }

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxIncrease, "io-increase-x")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles, _, err := experiments.Fig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(profiles[0].MemBWAt75/1e9, "GBps-mem-at-75")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles, _, err := experiments.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(profiles[0].CoresAt75, "cores-at-75")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles, _, err := experiments.Table1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(profiles[0].MemPerByte, "mem-bytes-per-byte")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeasuredHit, "writeH-hit-rate")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.Reduction > best {
				best = r.Reduction
			}
		}
		b.ReportMetric(best*100, "best-memBW-reduction-%")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.TotalReduction > best {
				best = r.TotalReduction
			}
		}
		b.ReportMetric(best*100, "best-CPU-reduction-%")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "Write-M" && r.Width == 4 {
				b.ReportMetric(r.GBps, "writeM-w4-GBps")
			}
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig14(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		b.ReportMetric(best, "best-speedup-x")
	}
}

func BenchmarkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Latency()
		b.ReportMetric(float64(res.FIDRRead.Microseconds()), "fidr-read-us")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4()
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].EstMaxGBps, "medium-tree-GBps")
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig15(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].FIDRSaving*100, "saving-500TB-75GBps-%")
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig16(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Baseline.Total()/res.FIDR.Total(), "baseline-vs-fidr-cost-x")
	}
}

// Data-plane micro-benchmarks: raw write throughput of the functional
// servers (bytes/s shown as MB/s via SetBytes).

func benchServerWrites(b *testing.B, arch fidr.Arch) {
	cfg := fidr.DefaultConfig(arch)
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fidr.ChunkSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk := fidr.MakeChunk(uint64(i%4096), 0.5)
		if err := srv.Write(uint64(i), chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerWriteBaseline(b *testing.B) { benchServerWrites(b, fidr.Baseline) }
func BenchmarkServerWriteFIDR(b *testing.B)     { benchServerWrites(b, fidr.FIDRFull) }

func BenchmarkServerRead(b *testing.B) {
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	for i := uint64(0); i < n; i++ {
		if err := srv.Write(i, fidr.MakeChunk(i%512, 0.5)); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fidr.ChunkSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Read(uint64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Lifetime(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].LifetimeX, "writeH-lifetime-x")
	}
}

func BenchmarkAblationWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationWidth(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].GBps, "width16-GBps")
	}
}
