package fidr_test

// Crash-recovery harness (durability issue): deterministic, seedable
// crash injection at named pipeline stages, under concurrent multi-lane
// writes through the async front-end. Every cycle kills the server at an
// armed crash point, reopens the devices, recovers via checkpoint + WAL
// replay, and holds recovery to the fsck invariants plus a per-LBA value
// oracle. Run with -race; the harness is the regression net for the
// WAL's commit-ordering rules.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/ssd"
)

// crashCfg sizes a server small enough that containers seal, cache lines
// evict and checkpoints stay cheap within a few hundred writes.
func crashCfg(arch fidr.Arch, tssd, dssd *ssd.SSD, w *core.WAL) fidr.Config {
	cfg := fidr.DefaultConfig(arch)
	cfg.ContainerSize = 32 << 10
	cfg.UniqueChunkCapacity = 1 << 12
	cfg.CacheLines = 32
	cfg.BatchChunks = 8
	cfg.HashLanes = 2
	cfg.CompressLanes = 2
	cfg.TableSSD = tssd
	cfg.DataSSD = dssd
	cfg.WAL = w
	return cfg
}

func crashDevices() (*ssd.SSD, *ssd.SSD) {
	tssd := ssd.MustNew(ssd.Config{Name: "tssd", CapacityBytes: 1 << 28, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	dssd := ssd.MustNew(ssd.Config{Name: "dssd", CapacityBytes: 1 << 28, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	return tssd, dssd
}

// lbaHistory records every content seed ever submitted for an LBA; a
// recovered value must be one of them.
type lbaHistory map[uint64][]uint64

func (h lbaHistory) note(lba, seed uint64) { h[lba] = append(h[lba], seed) }

func (h lbaHistory) contains(lba uint64, data []byte) bool {
	for _, seed := range h[lba] {
		if bytes.Equal(data, fidr.MakeChunk(seed, 0.5)) {
			return true
		}
	}
	return false
}

// TestCrashRecoveryRandomized is the heart of the durability PR: for
// each pipeline stage, dozens of seeded cycles arm a crash at a random
// hit count, run concurrent submitters over the async front-end until
// the server dies, then recover from the surviving devices and check
//
//   - Verify() holds every fsck invariant (refcounts, LBA map,
//     container index, stale table entries, orphaned containers);
//   - the pre-crash durable floor (drained + flushed phase-1 writes)
//     reads back a value from its write history;
//   - any other readable LBA returns a value from its write history
//     (never invented or cross-wired data);
//   - the dedup domain survived: re-writing durable content stores no
//     new unique chunk.
func TestCrashRecoveryRandomized(t *testing.T) {
	stages := []core.CrashStage{
		core.CrashPostHash,
		core.CrashPrePack,
		core.CrashMidContainerFlush,
		core.CrashMidCheckpoint,
	}
	perStage := 60 // 4 x 60 = 240 seeded crash points
	if testing.Short() {
		perStage = 8
	}
	for _, stage := range stages {
		stage := stage
		t.Run(stage.String(), func(t *testing.T) {
			for seed := 0; seed < perStage; seed++ {
				if err := runCrashCycle(stage, int64(seed)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// runCrashCycle is one seeded crash/recover cycle. Returning an error
// (rather than calling t.Fatal) keeps it usable from subtests and
// benchmarks alike.
func runCrashCycle(stage core.CrashStage, seed int64) error {
	rng := rand.New(rand.NewSource(seed<<8 | int64(stage)))
	arch := fidr.FIDRFull
	if seed%5 == 4 {
		arch = fidr.Baseline // the WAL must hold for both architectures
	}
	tssd, dssd := crashDevices()
	dev := core.NewMemWALDevice()
	w, err := core.NewWAL(dev)
	if err != nil {
		return err
	}
	cfg := crashCfg(arch, tssd, dssd, w)
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		return err
	}
	a, err := fidr.NewAsync(srv, 16)
	if err != nil {
		return err
	}

	// Two submitters with disjoint LBA ranges; each tracks its own
	// write history (merged after the join point).
	const rangeSize = 1000
	histories := []lbaHistory{make(lbaHistory), make(lbaHistory)}

	// Phase 1: a durable floor. Written through the front-end, drained,
	// flushed — committed to the WAL (and sometimes checkpointed), so it
	// must survive any later crash.
	floor := make([]uint64, 0, 48)
	for k := 0; k < 2; k++ {
		for i := uint64(0); i < 24; i++ {
			lba := uint64(k)*rangeSize + i
			cs := uint64(rng.Intn(64)) // small seed space: duplicates
			if err := a.Write(lba, fidr.MakeChunk(cs, 0.5)); err != nil {
				return fmt.Errorf("phase-1 write: %w", err)
			}
			histories[k].note(lba, cs)
			floor = append(floor, lba)
		}
	}
	// The front-end is drained (every done channel received), so the
	// worker is idle and the test goroutine may touch the server.
	if err := srv.Flush(); err != nil {
		return fmt.Errorf("phase-1 flush: %w", err)
	}
	ckpt := rng.Intn(2) == 0
	if ckpt {
		if err := srv.Checkpoint(); err != nil {
			return fmt.Errorf("phase-1 checkpoint: %w", err)
		}
	}

	// Arm the crash. Write-path stages fire during phase 2; the
	// checkpoint stage fires in the explicit Checkpoint below (hit 1 =
	// before the image write, hit 2 = after image, before truncation).
	switch stage {
	case core.CrashMidCheckpoint:
		srv.ArmCrash(stage, 1+rng.Intn(2))
	case core.CrashMidContainerFlush:
		// Fires once per sealed container; phase 2 seals a handful.
		srv.ArmCrash(stage, 1+rng.Intn(3))
	default:
		srv.ArmCrash(stage, 1+rng.Intn(6))
	}

	// Phase 2: concurrent submitters, overwrites included. Ops may fail
	// once the crash fires; results are classified after the join.
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		k := k
		sub := rand.New(rand.NewSource(seed<<16 | int64(k)<<8 | int64(stage)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := histories[k]
			for op := 0; op < 56; op++ {
				lba := uint64(k)*rangeSize + uint64(sub.Intn(40))
				if sub.Intn(8) == 0 { // occasional read
					res := <-a.ReadAsync(lba)
					if res.Err == nil && len(h[lba]) > 0 && !h.contains(lba, res.Data) {
						panic(fmt.Sprintf("live read of lba %d returned un-written content", lba))
					}
					continue
				}
				// 1-in-4 writes duplicate the shared phase-1 seed
				// space; the rest are fresh content so containers
				// keep sealing (the mid-flush stage needs them).
				cs := uint64(sub.Intn(64))
				if sub.Intn(4) != 0 {
					cs = 1_000 + uint64(sub.Intn(4096))
				}
				h.note(lba, cs)
				<-a.WriteAsync(lba, fidr.MakeChunk(cs, 0.5))
			}
		}()
	}
	wg.Wait()

	if stage == core.CrashMidCheckpoint {
		if err := srv.Checkpoint(); !errors.Is(err, core.ErrCrashInjected) {
			return fmt.Errorf("mid-checkpoint crash did not fire: %v", err)
		}
	}
	a.Close() // the worker's shutdown Flush fails on the dead server
	if !srv.Crashed() {
		return fmt.Errorf("stage %v never fired under the phase-2 load", stage)
	}

	// Recover over the same devices: the WAL device drops everything
	// after its last synced commit, like a real power cut.
	dev.Crash()
	w2, err := core.NewWAL(dev)
	if err != nil {
		return fmt.Errorf("reopen WAL: %w", err)
	}
	cfg.WAL = w2
	rec, err := core.RecoverServer(cfg)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	rep, err := rec.Verify()
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if !rep.OK() {
		return fmt.Errorf("fsck invariants violated after recovery: %v", rep.Problems)
	}
	history := histories[0]
	for lba, seeds := range histories[1] {
		history[lba] = seeds
	}
	// Durable floor: phase-1 LBAs must exist and carry a historic value.
	for _, lba := range floor {
		data, err := rec.Read(lba)
		if err != nil {
			return fmt.Errorf("floor lba %d unreadable after recovery: %w", lba, err)
		}
		if !history.contains(lba, data) {
			return fmt.Errorf("floor lba %d recovered to un-written content", lba)
		}
	}
	// Any other mapped LBA must also resolve to a historic value; LBAs
	// first written after the last commit may be lost, nothing else.
	for lba := range history {
		data, err := rec.Read(lba)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				continue
			}
			return fmt.Errorf("lba %d: recovered volume returned %w", lba, err)
		}
		if !history.contains(lba, data) {
			return fmt.Errorf("lba %d recovered to un-written content", lba)
		}
	}
	// The mid-checkpoint stage crashes after everything was flushed, so
	// nothing at all may be lost — and the checkpoint floor holds
	// whichever of the two images (old or new) survived.
	if stage == core.CrashMidCheckpoint {
		for lba, seeds := range history {
			data, err := rec.Read(lba)
			if err != nil {
				return fmt.Errorf("mid-checkpoint crash lost lba %d: %w", lba, err)
			}
			want := fidr.MakeChunk(seeds[len(seeds)-1], 0.5)
			if !bytes.Equal(data, want) {
				return fmt.Errorf("lba %d not at its final value after mid-checkpoint crash", lba)
			}
		}
	}
	// Dedup domain: re-writing a durable chunk's content must hit the
	// recovered Hash-PBN table, not store a new unique chunk.
	floorData, err := rec.Read(floor[0])
	if err != nil {
		return err
	}
	if err := rec.Write(999_999, floorData); err != nil {
		return err
	}
	if err := rec.Flush(); err != nil {
		return err
	}
	if st := rec.Stats(); st.UniqueChunks != 0 {
		return fmt.Errorf("dedup domain lost: duplicate content stored as a new chunk")
	}
	return nil
}

// TestCheckpointRacingWrites interleaves Checkpoint() with rounds of
// concurrent front-end writes (the only safe interleaving for a
// single-owner server: drain, checkpoint, resume) and verifies the
// resulting volume via RecoverServer — the regression test for the
// checkpoint's walSeq cut-off and truncation rules.
func TestCheckpointRacingWrites(t *testing.T) {
	tssd, dssd := crashDevices()
	dev := core.NewMemWALDevice()
	w, err := core.NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashCfg(fidr.FIDRFull, tssd, dssd, w)
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fidr.NewAsync(srv, 16)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[uint64]uint64)
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for k := 0; k < 2; k++ {
			k := k
			rng := rand.New(rand.NewSource(int64(round*2 + k)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for op := 0; op < 40; op++ {
					lba := uint64(k)*500 + uint64(rng.Intn(60))
					cs := uint64(rng.Intn(48))
					if err := a.Write(lba, fidr.MakeChunk(cs, 0.5)); err != nil {
						panic(err)
					}
					mu.Lock()
					last[lba] = cs
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		// Queues drained: checkpoint mid-stream, with the open batch and
		// open container still hot. Rounds after this one keep writing
		// into the truncated log.
		if round < 4 {
			if err := srv.Checkpoint(); err != nil {
				t.Fatalf("round %d checkpoint: %v", round, err)
			}
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.WALStats()
	if st.AppendedRecords == 0 || st.Syncs == 0 {
		t.Fatalf("WAL saw no traffic: %+v", st)
	}

	// Recover from the files: the last round was never checkpointed, so
	// this exercises checkpoint + replay together.
	dev.Crash()
	w2, err := core.NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = w2
	rec, err := core.RecoverServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := rec.LastRecovery()
	if rr.FromGenesis {
		t.Fatal("recovery ignored the checkpoints")
	}
	if rr.ReplayedRecords == 0 {
		t.Fatal("final un-checkpointed round was not replayed")
	}
	rep, err := rec.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after checkpoint-interleaved run: %v %v", err, rep.Problems)
	}
	for lba, cs := range last {
		got, err := rec.Read(lba)
		if err != nil {
			t.Fatalf("lba %d: %v", lba, err)
		}
		if !bytes.Equal(got, fidr.MakeChunk(cs, 0.5)) {
			t.Fatalf("lba %d lost its final pre-close value", lba)
		}
	}
}

// TestGroupLocalWALRecovery runs two groups, each with its own WAL and
// devices (the paper's scale-out unit), crashes them at different
// stages, and recovers each independently — group A's crash must never
// need group B's log.
func TestGroupLocalWALRecovery(t *testing.T) {
	type group struct {
		tssd, dssd *ssd.SSD
		dev        *core.MemWALDevice
		cfg        fidr.Config
		srv        *fidr.Server
		history    lbaHistory
		floor      []uint64
	}
	stages := []core.CrashStage{core.CrashPostHash, core.CrashMidContainerFlush}
	groups := make([]*group, 2)
	for i := range groups {
		g := &group{history: make(lbaHistory)}
		g.tssd, g.dssd = crashDevices()
		g.dev = core.NewMemWALDevice()
		w, err := core.NewWAL(g.dev)
		if err != nil {
			t.Fatal(err)
		}
		g.cfg = crashCfg(fidr.FIDRFull, g.tssd, g.dssd, w)
		g.srv, err = fidr.NewServer(g.cfg)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	// Each group is driven by its own goroutine (single-owner rule),
	// both running concurrently like cluster shards.
	var wg sync.WaitGroup
	for i, g := range groups {
		i, g := i, g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + i)))
			for n := uint64(0); n < 32; n++ {
				cs := uint64(rng.Intn(40))
				if err := g.srv.Write(n, fidr.MakeChunk(cs, 0.5)); err != nil {
					panic(err)
				}
				g.history.note(n, cs)
				g.floor = append(g.floor, n)
			}
			if err := g.srv.Flush(); err != nil {
				panic(err)
			}
			g.srv.ArmCrash(stages[i], 1+rng.Intn(3))
			for n := uint64(0); n < 200 && !g.srv.Crashed(); n++ {
				lba := uint64(rng.Intn(60))
				cs := uint64(rng.Intn(40))
				g.history.note(lba, cs)
				g.srv.Write(lba, fidr.MakeChunk(cs, 0.5))
			}
		}()
	}
	wg.Wait()
	for i, g := range groups {
		if !g.srv.Crashed() {
			t.Fatalf("group %d never crashed", i)
		}
		g.dev.Crash()
		w, err := core.NewWAL(g.dev)
		if err != nil {
			t.Fatal(err)
		}
		g.cfg.WAL = w
		rec, err := core.RecoverServer(g.cfg)
		if err != nil {
			t.Fatalf("group %d recovery: %v", i, err)
		}
		rep, err := rec.Verify()
		if err != nil || !rep.OK() {
			t.Fatalf("group %d fsck: %v %v", i, err, rep.Problems)
		}
		for _, lba := range g.floor {
			data, err := rec.Read(lba)
			if err != nil {
				t.Fatalf("group %d floor lba %d: %v", i, lba, err)
			}
			if !g.history.contains(lba, data) {
				t.Fatalf("group %d lba %d recovered to un-written content", i, lba)
			}
		}
	}
	// The cluster constructor enforces group-locality.
	if _, err := fidr.NewCluster(groups[0].cfg, 2); err == nil {
		t.Fatal("NewCluster accepted one WAL shared across groups")
	}
}
