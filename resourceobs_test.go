package fidr_test

import (
	"strings"
	"testing"

	"fidr"
	"fidr/internal/metrics"
)

// snapshotValue returns the named metric's value from a gatherer
// snapshot (0 when absent).
func snapshotValue(ms []metrics.Metric, name string) float64 {
	for _, m := range ms {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// writeThrough stands up a server of the given architecture with
// observability on, writes n chunks, and returns the metrics snapshot.
func writeThrough(t *testing.T, arch fidr.Arch, n uint64) []metrics.Metric {
	t.Helper()
	srv, err := fidr.NewServer(fidr.DefaultConfig(arch))
	if err != nil {
		t.Fatal(err)
	}
	view := srv.EnableObservability(nil, 16)
	for i := uint64(0); i < n; i++ {
		if err := srv.Write(i, fidr.MakeChunk(i%16, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	return view.Snapshot()
}

// TestHostDRAMPayloadInvariant pins the paper's headline data-movement
// claim to the accounting ledgers: a FIDR write workload moves zero
// client-payload bytes through host DRAM (only metadata flows), while
// the baseline bounces every payload byte through it.
func TestHostDRAMPayloadInvariant(t *testing.T) {
	const n = 256
	fidrMS := writeThrough(t, fidr.FIDRFull, n)
	baseMS := writeThrough(t, fidr.Baseline, n)

	if got := snapshotValue(fidrMS, "hostmodel.dram_payload_bytes"); got != 0 {
		t.Errorf("FIDR writes charged %v payload bytes to host DRAM, want 0", got)
	}
	if got := snapshotValue(fidrMS, "hostmodel.dram_bytes"); got <= 0 {
		t.Errorf("FIDR hostmodel.dram_bytes = %v; metadata traffic should still flow", got)
	}
	if got := snapshotValue(baseMS, "hostmodel.dram_payload_bytes"); got <= 0 {
		t.Errorf("baseline writes charged %v payload bytes to host DRAM, want > 0", got)
	}
	// The payload share never exceeds the all-traffic total.
	if p, tot := snapshotValue(baseMS, "hostmodel.dram_payload_bytes"), snapshotValue(baseMS, "hostmodel.dram_bytes"); p > tot {
		t.Errorf("payload bytes %v exceed total DRAM bytes %v", p, tot)
	}
}

// TestPCIeMovementByArch checks that the PCIe ledger attributes traffic
// the way each datapath routes it: FIDR moves payload peer-to-peer
// under the switch, the baseline crosses the root complex for all of
// it, and directed per-route counters name the hops.
func TestPCIeMovementByArch(t *testing.T) {
	const n = 256
	fidrMS := writeThrough(t, fidr.FIDRFull, n)
	baseMS := writeThrough(t, fidr.Baseline, n)

	if got := snapshotValue(fidrMS, "pcie.p2p_bytes"); got <= 0 {
		t.Errorf("FIDR pcie.p2p_bytes = %v, want > 0", got)
	}
	if got := snapshotValue(baseMS, "pcie.p2p_bytes"); got != 0 {
		t.Errorf("baseline pcie.p2p_bytes = %v, want 0", got)
	}
	if got := snapshotValue(baseMS, "pcie.root_bytes"); got <= 0 {
		t.Errorf("baseline pcie.root_bytes = %v, want > 0", got)
	}

	var routes, routeBytes float64
	for _, m := range fidrMS {
		if strings.HasPrefix(m.Name, "pcie.route.") && strings.HasSuffix(m.Name, ".bytes") {
			routes++
			routeBytes += m.Value
		}
	}
	if routes == 0 {
		t.Fatal("no pcie.route.<src>_to_<dst>.bytes counters registered")
	}
	// Every transferred byte is attributed to exactly one directed route.
	total := snapshotValue(fidrMS, "pcie.p2p_bytes") + snapshotValue(fidrMS, "pcie.root_bytes")
	if routeBytes != total {
		t.Errorf("route counters sum to %v, p2p+root = %v", routeBytes, total)
	}
}

// TestDeviceAccountingCounters checks the per-device busy/queue plane
// a FIDR write run should populate.
func TestDeviceAccountingCounters(t *testing.T) {
	ms := writeThrough(t, fidr.FIDRFull, 256)
	for _, name := range []string{"nic.busy_ns", "engine.busy_ns", "ssd.data-ssd.busy_ns"} {
		if got := snapshotValue(ms, name); got <= 0 {
			t.Errorf("%s = %v, want > 0", name, got)
		}
	}
	// Queue-depth gauges exist (zero after flush drains everything).
	found := 0
	for _, m := range ms {
		if m.Kind == "gauge" && strings.Contains(m.Name, "queue_depth") {
			found++
		}
	}
	if found < 3 {
		t.Errorf("found %d queue_depth gauges, want >= 3 (nic, engine, ssds)", found)
	}
}
