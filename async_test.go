package fidr_test

import (
	"bytes"
	"sync"
	"testing"

	"fidr"
)

func TestAsyncValidation(t *testing.T) {
	srv, _ := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if _, err := fidr.NewAsync(srv, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestAsyncRoundTripServer(t *testing.T) {
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	a, err := fidr.NewAsync(srv, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := a.Write(i, fidr.MakeChunk(i%50, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		got, err := a.Read(i)
		if err != nil || !bytes.Equal(got, fidr.MakeChunk(i%50, 0.5)) {
			t.Fatalf("async read %d failed: %v", i, err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Submissions after Close fail cleanly.
	if err := a.Write(1, fidr.MakeChunk(1, 0.5)); err == nil {
		t.Fatal("write accepted after close")
	}
	if _, err := a.Read(1); err == nil {
		t.Fatal("read accepted after close")
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close not idempotent")
	}
}

func TestAsyncPipelinedSubmission(t *testing.T) {
	srv, _ := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	a, _ := fidr.NewAsync(srv, 64)
	defer a.Close()
	// Fire a burst of writes, then collect all completions.
	var chans []<-chan fidr.AsyncResult
	for i := uint64(0); i < 128; i++ {
		chans = append(chans, a.WriteAsync(i, fidr.MakeChunk(i, 0.5)))
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("write %d: %v", i, res.Err)
		}
	}
	// Same-LBA ordering: a queued overwrite lands before a later read.
	<-a.WriteAsync(5, fidr.MakeChunk(777, 0.5))
	res := <-a.ReadAsync(5)
	if res.Err != nil || !bytes.Equal(res.Data, fidr.MakeChunk(777, 0.5)) {
		t.Fatal("read did not observe earlier queued write")
	}
}

func TestAsyncDataCopiedOnSubmit(t *testing.T) {
	srv, _ := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	a, _ := fidr.NewAsync(srv, 8)
	defer a.Close()
	buf := fidr.MakeChunk(1, 0.5)
	ch := a.WriteAsync(9, buf)
	buf[0] ^= 0xFF // mutate after submit
	if res := <-ch; res.Err != nil {
		t.Fatal(res.Err)
	}
	got, err := a.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fidr.MakeChunk(1, 0.5)) {
		t.Fatal("async store aliased the caller's buffer")
	}
}

func TestAsyncClusterParallelWorkers(t *testing.T) {
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fidr.NewAsync(c, 32)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 1000
			for i := uint64(0); i < 100; i++ {
				if err := a.Write(base+i, fidr.MakeChunk(base+i, 0.5)); err != nil {
					errs <- err
					return
				}
			}
			for i := uint64(0); i < 100; i++ {
				got, err := a.Read(base + i)
				if err != nil || !bytes.Equal(got, fidr.MakeChunk(base+i, 0.5)) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ClientWrites; got != 800 {
		t.Fatalf("cluster saw %d writes", got)
	}
}

func BenchmarkAsyncClusterWrites(b *testing.B) {
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 4)
	if err != nil {
		b.Fatal(err)
	}
	a, err := fidr.NewAsync(c, 256)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	chunk := fidr.MakeChunk(1, 0.5)
	b.SetBytes(fidr.ChunkSize)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			if err := a.Write(i*31, chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
}
