package fidr

import (
	"fmt"
	"time"

	"fidr/internal/hostmodel"
)

// Cluster implements §5.6's scale-out arrangement: multiple groups of
// (NIC, Compression Engine, data SSDs), each under its own PCIe switch so
// peer-to-peer bandwidth never aggregates at one switch. Client LBAs are
// sharded across groups; each group is a full Server.
//
// The trade-off this makes measurable: throughput and buffering scale
// with group count, but deduplication domains split — content duplicated
// *across* shards is stored once per shard. (Enterprise arrays accept
// the same trade; global dedup across controllers is rare.)
type Cluster struct {
	groups []*Server
	// obs is the cluster-wide observability plane; nil until
	// EnableObservability (see clusterobs.go).
	obs *clusterObs
}

// NewCluster builds n groups from cfg (each group gets its own devices).
// A write-ahead log is group-local (like a group's SSDs), so cfg.WAL
// must be nil: one log shared across groups would interleave unrelated
// allocation sequences and corrupt every group on replay. Attach a WAL
// per server via core.Config for durable group setups.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: cluster needs at least one group")
	}
	if cfg.WAL != nil && n > 1 {
		return nil, fmt.Errorf("fidr: a WAL is group-local; cannot share one across %d groups", n)
	}
	c := &Cluster{groups: make([]*Server, n)}
	for i := range c.groups {
		g, err := NewServer(cfg)
		if err != nil {
			return nil, fmt.Errorf("fidr: group %d: %w", i, err)
		}
		c.groups[i] = g
	}
	return c, nil
}

// Groups returns the number of device groups.
func (c *Cluster) Groups() int { return len(c.groups) }

// Group exposes one underlying server (for per-group inspection).
func (c *Cluster) Group(i int) *Server { return c.groups[i] }

// GroupFor returns the group index an LBA is sharded to. A
// splitmix-style mix keeps shard load uniform even for sequential LBA
// ranges.
func (c *Cluster) GroupFor(lba uint64) int {
	z := lba + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) % uint64(len(c.groups)))
}

func (c *Cluster) shard(lba uint64) *Server {
	return c.groups[c.GroupFor(lba)]
}

// Write stores one chunk via its shard.
func (c *Cluster) Write(lba uint64, data []byte) error {
	return c.WriteTraced(lba, data, nil)
}

// WriteTraced stores one chunk via its shard, adopting tc (front-end
// spans) into the shard's request trace. With observability on it also
// times cluster-level routing and tracks cross-shard duplicates.
func (c *Cluster) WriteTraced(lba uint64, data []byte, tc *TraceContext) error {
	g := c.GroupFor(lba)
	if c.obs == nil {
		return c.groups[g].WriteTraced(lba, data, tc)
	}
	start := startOr(tc)
	c.obs.noteContent(g, data)
	err := c.groups[g].WriteTraced(lba, data, tc)
	c.obs.observeWrite(start)
	return err
}

// Read fetches one chunk via its shard.
func (c *Cluster) Read(lba uint64) ([]byte, error) {
	return c.ReadTraced(lba, nil)
}

// ReadTraced fetches one chunk via its shard, adopting tc into the
// shard's request trace.
func (c *Cluster) ReadTraced(lba uint64, tc *TraceContext) ([]byte, error) {
	g := c.GroupFor(lba)
	if c.obs == nil {
		return c.groups[g].ReadTraced(lba, tc)
	}
	start := startOr(tc)
	data, err := c.groups[g].ReadTraced(lba, tc)
	c.obs.observeRead(start)
	return data, err
}

// startOr returns tc's front-end start time when set, else now — so the
// cluster histograms include queue wait when a front-end measured it.
func startOr(tc *TraceContext) time.Time {
	if tc != nil && !tc.Start.IsZero() {
		return tc.Start
	}
	return time.Now()
}

// ReadRange returns n consecutive chunks starting at lba, concatenated,
// fanning out to each LBA's shard (same contract as Server.ReadRange).
func (c *Cluster) ReadRange(lba uint64, n int) ([]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: range read of %d chunks", n)
	}
	out := make([]byte, 0, n*c.ChunkSize())
	for i := 0; i < n; i++ {
		chunk, err := c.Read(lba + uint64(i))
		if err != nil {
			return nil, fmt.Errorf("fidr: range chunk %d: %w", i, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// ChunkSize returns the cluster's chunk size (uniform across groups).
func (c *Cluster) ChunkSize() int { return c.groups[0].ChunkSize() }

// Flush drains every group.
func (c *Cluster) Flush() error {
	for i, g := range c.groups {
		if err := g.Flush(); err != nil {
			return fmt.Errorf("fidr: group %d flush: %w", i, err)
		}
	}
	return nil
}

// Stats aggregates all groups' counters.
func (c *Cluster) Stats() Stats {
	var total Stats
	for _, g := range c.groups {
		s := g.Stats()
		total.ClientWrites += s.ClientWrites
		total.ClientReads += s.ClientReads
		total.ClientBytes += s.ClientBytes
		total.DuplicateChunks += s.DuplicateChunks
		total.UniqueChunks += s.UniqueChunks
		total.StoredBytes += s.StoredBytes
		total.NICReadHits += s.NICReadHits
		total.ReadCacheHits += s.ReadCacheHits
		total.PendingReads += s.PendingReads
		total.BatchesProcessed += s.BatchesProcessed
		total.Mispredictions += s.Mispredictions
	}
	return total
}

// Snapshot merges all groups' resource ledgers (the cluster's sockets
// are independent, so per-byte intensities stay comparable to a single
// server's).
func (c *Cluster) Snapshot() hostmodel.Snapshot {
	var total hostmodel.Snapshot
	for _, g := range c.groups {
		s := g.Ledger().Snapshot()
		for i := range total.MemBytes {
			total.MemBytes[i] += s.MemBytes[i]
		}
		for i := range total.CPUNanos {
			total.CPUNanos[i] += s.CPUNanos[i]
		}
		total.ClientBytes += s.ClientBytes
	}
	return total
}
