package fidr

import (
	"fmt"
	"time"

	"fidr/internal/core"
	"fidr/internal/hostmodel"
	"fidr/internal/trace/span"
)

// Cluster implements §5.6's scale-out arrangement: multiple groups of
// (NIC, Compression Engine, data SSDs), each under its own PCIe switch so
// peer-to-peer bandwidth never aggregates at one switch. Client LBAs are
// sharded across groups; each group is a full Server.
//
// The trade-off this makes measurable: throughput and buffering scale
// with group count, but deduplication domains split — content duplicated
// *across* shards is stored once per shard. (Enterprise arrays accept
// the same trade; global dedup across controllers is rare.)
type Cluster struct {
	groups []*Server
	// obs is the cluster-wide observability plane; nil until
	// EnableObservability (see clusterobs.go).
	obs *clusterObs
}

// NewCluster builds n groups from cfg (each group gets its own devices).
// A write-ahead log is group-local (like a group's SSDs), so cfg.WAL
// must be nil: one log shared across groups would interleave unrelated
// allocation sequences and corrupt every group on replay. Attach a WAL
// per server via core.Config for durable group setups.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: cluster needs at least one group")
	}
	if cfg.WAL != nil && n > 1 {
		return nil, fmt.Errorf("fidr: a WAL is group-local; cannot share one across %d groups", n)
	}
	c := &Cluster{groups: make([]*Server, n)}
	for i := range c.groups {
		g, err := NewServer(cfg)
		if err != nil {
			return nil, fmt.Errorf("fidr: group %d: %w", i, err)
		}
		c.groups[i] = g
	}
	return c, nil
}

// NewClusterWAL is NewCluster with a group-local write-ahead log per
// group: walAt(i) opens (or creates) group i's log. The logs make the
// groups' commit paths durable and observable (each batch fsyncs its
// own log); cluster-mode recovery is not implemented yet, so fresh
// starts should Reset each log before handing it over.
func NewClusterWAL(cfg Config, n int, walAt func(group int) (*core.WAL, error)) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: cluster needs at least one group")
	}
	if cfg.WAL != nil {
		return nil, fmt.Errorf("fidr: cfg.WAL must be nil when walAt supplies per-group logs")
	}
	c := &Cluster{groups: make([]*Server, n)}
	for i := range c.groups {
		gcfg := cfg
		w, err := walAt(i)
		if err != nil {
			return nil, fmt.Errorf("fidr: group %d wal: %w", i, err)
		}
		gcfg.WAL = w
		g, err := NewServer(gcfg)
		if err != nil {
			return nil, fmt.Errorf("fidr: group %d: %w", i, err)
		}
		c.groups[i] = g
	}
	return c, nil
}

// Groups returns the number of device groups.
func (c *Cluster) Groups() int { return len(c.groups) }

// Group exposes one underlying server (for per-group inspection).
func (c *Cluster) Group(i int) *Server { return c.groups[i] }

// GroupFor returns the group index an LBA is sharded to. A
// splitmix-style mix keeps shard load uniform even for sequential LBA
// ranges.
func (c *Cluster) GroupFor(lba uint64) int {
	z := lba + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) % uint64(len(c.groups)))
}

func (c *Cluster) shard(lba uint64) *Server {
	return c.groups[c.GroupFor(lba)]
}

// Write stores one chunk via its shard.
func (c *Cluster) Write(lba uint64, data []byte) error {
	return c.WriteTraced(lba, data, nil)
}

// WriteTraced stores one chunk via its shard, adopting tc (front-end
// spans) into the shard's request trace. With observability on it also
// times cluster-level routing and tracks cross-shard duplicates.
func (c *Cluster) WriteTraced(lba uint64, data []byte, tc *TraceContext) error {
	g := c.GroupFor(lba)
	if c.obs == nil {
		return c.groups[g].WriteTraced(lba, data, tc)
	}
	start := startOr(tc)
	c.obs.noteContent(g, data)
	err := c.groups[g].WriteTraced(lba, data, tc)
	c.obs.observeWrite(start)
	return err
}

// Read fetches one chunk via its shard.
func (c *Cluster) Read(lba uint64) ([]byte, error) {
	return c.ReadTraced(lba, nil)
}

// ReadTraced fetches one chunk via its shard, adopting tc into the
// shard's request trace.
func (c *Cluster) ReadTraced(lba uint64, tc *TraceContext) ([]byte, error) {
	g := c.GroupFor(lba)
	if c.obs == nil {
		return c.groups[g].ReadTraced(lba, tc)
	}
	start := startOr(tc)
	data, err := c.groups[g].ReadTraced(lba, tc)
	c.obs.observeRead(start)
	return data, err
}

// startOr returns tc's front-end start time when set, else now — so the
// cluster histograms include queue wait when a front-end measured it.
func startOr(tc *TraceContext) time.Time {
	if tc != nil && !tc.Start.IsZero() {
		return tc.Start
	}
	return time.Now()
}

// ReadRange returns n consecutive chunks starting at lba, concatenated,
// fanning out to each LBA's shard (same contract as Server.ReadRange).
func (c *Cluster) ReadRange(lba uint64, n int) ([]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: range read of %d chunks", n)
	}
	out := make([]byte, 0, n*c.ChunkSize())
	for i := 0; i < n; i++ {
		chunk, err := c.Read(lba + uint64(i))
		if err != nil {
			return nil, fmt.Errorf("fidr: range chunk %d: %w", i, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// ChunkSize returns the cluster's chunk size (uniform across groups).
func (c *Cluster) ChunkSize() int { return c.groups[0].ChunkSize() }

// SetSpanCollector shares one span collector across every group, each
// tagging its spans with its group index. Call after
// EnableObservability.
func (c *Cluster) SetSpanCollector(col *span.Collector) {
	for i, g := range c.groups {
		g.SetSpanCollector(col, i)
	}
}

// SetTraceSampling head-samples untraced requests on every group: one
// request in every `every` gets a trace (0 disables).
func (c *Cluster) SetTraceSampling(every int) {
	for _, g := range c.groups {
		g.SetTraceSampling(every)
	}
}

// clusterTC lifts a wire span context into a front-end TraceContext
// (nil when untraced), mirroring the unexported core adapter.
func clusterTC(sc span.Context) *TraceContext {
	if !sc.Valid() {
		return nil
	}
	return &TraceContext{Trace: sc.Trace, Parent: sc.Parent, Sampled: sc.Sampled}
}

// WriteSpan is Write carrying a wire trace context to the shard.
func (c *Cluster) WriteSpan(lba uint64, data []byte, sc span.Context) error {
	return c.WriteTraced(lba, data, clusterTC(sc))
}

// ReadSpan is Read carrying a wire trace context.
func (c *Cluster) ReadSpan(lba uint64, sc span.Context) ([]byte, error) {
	return c.ReadTraced(lba, clusterTC(sc))
}

// ReadRangeSpan is ReadRange with a wire trace context shared by every
// chunk read (each resolves on its own shard, all in one trace).
func (c *Cluster) ReadRangeSpan(lba uint64, n int, sc span.Context) ([]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: range read of %d chunks", n)
	}
	tc := clusterTC(sc)
	out := make([]byte, 0, n*c.ChunkSize())
	for i := 0; i < n; i++ {
		chunk, err := c.ReadTraced(lba+uint64(i), tc)
		if err != nil {
			return nil, fmt.Errorf("fidr: range chunk %d: %w", i, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// Flush drains every group.
func (c *Cluster) Flush() error {
	for i, g := range c.groups {
		if err := g.Flush(); err != nil {
			return fmt.Errorf("fidr: group %d flush: %w", i, err)
		}
	}
	return nil
}

// Stats aggregates all groups' counters.
func (c *Cluster) Stats() Stats {
	var total Stats
	for _, g := range c.groups {
		s := g.Stats()
		total.ClientWrites += s.ClientWrites
		total.ClientReads += s.ClientReads
		total.ClientBytes += s.ClientBytes
		total.DuplicateChunks += s.DuplicateChunks
		total.UniqueChunks += s.UniqueChunks
		total.StoredBytes += s.StoredBytes
		total.LogicalWriteBytes += s.LogicalWriteBytes
		total.DedupSavedBytes += s.DedupSavedBytes
		total.CompressionSavedBytes += s.CompressionSavedBytes
		total.DeletedFingerprints += s.DeletedFingerprints
		total.ReclaimedDeadBytes += s.ReclaimedDeadBytes
		total.NICReadHits += s.NICReadHits
		total.ReadCacheHits += s.ReadCacheHits
		total.PendingReads += s.PendingReads
		total.BatchesProcessed += s.BatchesProcessed
		total.Mispredictions += s.Mispredictions
	}
	return total
}

// Snapshot merges all groups' resource ledgers (the cluster's sockets
// are independent, so per-byte intensities stay comparable to a single
// server's).
func (c *Cluster) Snapshot() hostmodel.Snapshot {
	var total hostmodel.Snapshot
	for _, g := range c.groups {
		s := g.Ledger().Snapshot()
		for i := range total.MemBytes {
			total.MemBytes[i] += s.MemBytes[i]
		}
		for i := range total.CPUNanos {
			total.CPUNanos[i] += s.CPUNanos[i]
		}
		total.ClientBytes += s.ClientBytes
	}
	return total
}
