package fidr_test

import (
	"testing"

	"fidr"
)

// smallContainers shrinks containers so GC scenarios fit in a few
// hundred writes per group.
func smallContainers(arch fidr.Arch) fidr.Config {
	cfg := fidr.DefaultConfig(arch)
	cfg.ContainerSize = 64 << 10
	cfg.BatchChunks = 16
	return cfg
}

// driveClusterOverwrites fills a cluster with half-duplicate content and
// then overwrites most LBAs so every group accumulates garbage.
func driveClusterOverwrites(t *testing.T, c *fidr.Cluster, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		if err := c.Write(i, fidr.MakeChunk(i%(n/2), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if i%4 != 0 {
			if err := c.Write(i, fidr.MakeChunk(100000+i, 0.5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// Satellite: the merged cluster view must carry capacity.* counters that
// sum the groups, with the ratio gauges re-derived from the sums (never
// summed themselves — a summed ratio would be meaningless).
func TestClusterCapacityMergedCounters(t *testing.T) {
	const groups = 3
	c, err := fidr.NewCluster(smallContainers(fidr.FIDRFull), groups)
	if err != nil {
		t.Fatal(err)
	}
	view := c.EnableObservability(8)
	driveClusterOverwrites(t, c, 384)

	ms := view.Snapshot()
	logical := snapshotValue(ms, "capacity.logical_bytes")
	dedup := snapshotValue(ms, "capacity.dedup_saved_bytes")
	comp := snapshotValue(ms, "capacity.compression_saved_bytes")
	stored := snapshotValue(ms, "capacity.stored_bytes")
	if logical == 0 {
		t.Fatal("merged capacity.logical_bytes missing")
	}
	if dedup+comp+stored != logical {
		t.Fatalf("merged attribution unbalanced: %v + %v + %v != %v", dedup, comp, stored, logical)
	}
	// The merged counters are the group sums.
	var wantLogical float64
	for i := 0; i < groups; i++ {
		wantLogical += float64(c.Group(i).Stats().LogicalWriteBytes)
	}
	if logical != wantLogical {
		t.Fatalf("merged logical %v != group sum %v", logical, wantLogical)
	}
	// Derived ratios come from the merged counters.
	if got, want := snapshotValue(ms, "capacity.reduction_ratio"), logical/stored; got != want {
		t.Fatalf("capacity.reduction_ratio = %v, want %v", got, want)
	}
	if got, want := snapshotValue(ms, "capacity.dedup_saved_ratio"), dedup/logical; got != want {
		t.Fatalf("capacity.dedup_saved_ratio = %v, want %v", got, want)
	}
	if g := snapshotValue(ms, "capacity.garbage_bytes"); g == 0 {
		t.Fatal("merged capacity.garbage_bytes is 0 after overwrites")
	}

	// Cluster.Stats carries the same ledger sums.
	st := c.Stats()
	if float64(st.LogicalWriteBytes) != logical {
		t.Fatalf("Cluster.Stats logical %d != merged gauge %v", st.LogicalWriteBytes, logical)
	}
	if st.DedupSavedBytes+st.CompressionSavedBytes+st.StoredBytes != st.LogicalWriteBytes {
		t.Fatalf("Cluster.Stats attribution unbalanced: %+v", st)
	}
}

// Satellite: one journal shared across groups interleaves events in a
// single monotonic sequence with per-group origin labels, and the merged
// capacity report reconciles with the merged heatmap.
func TestClusterJournalInterleavingAndMergedViews(t *testing.T) {
	const groups = 3
	c, err := fidr.NewCluster(smallContainers(fidr.FIDRFull), groups)
	if err != nil {
		t.Fatal(err)
	}
	j := fidr.NewEventJournal(64)
	c.SetEventJournal(j)
	driveClusterOverwrites(t, c, 384)

	rep := c.CapacityReport(0.25)
	hm := c.ContainerHeatmap()
	if rep.GarbageBytes == 0 || !rep.GC.Recommended {
		t.Fatalf("no garbage across %d groups: %+v", groups, rep.GC)
	}
	if hm.DeadBytes != rep.GarbageBytes {
		t.Fatalf("merged heatmap dead %d != merged report garbage %d", hm.DeadBytes, rep.GarbageBytes)
	}

	res, err := c.Compact(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCompacted == 0 {
		t.Fatal("cluster compaction found nothing")
	}
	evs := j.Since(0)
	if len(evs) != groups {
		t.Fatalf("journal has %d events, want one gc_run per group", len(evs))
	}
	seen := map[int]bool{}
	var lastSeq uint64
	var reclaimed int64
	for _, ev := range evs {
		if ev.Type != "gc_run" {
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence not monotonic: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Group < 0 || ev.Group >= groups || seen[ev.Group] {
			t.Fatalf("bad or repeated group label: %+v", ev)
		}
		seen[ev.Group] = true
		reclaimed += ev.Fields["bytes_reclaimed"]
	}
	if reclaimed != int64(res.BytesReclaimed) {
		t.Fatalf("events reclaimed %d != compact result %d", reclaimed, res.BytesReclaimed)
	}

	// Post-GC the merged views still reconcile; retirement reached the
	// heatmap header.
	hm = c.ContainerHeatmap()
	if hm.Retired != res.ContainersCompacted {
		t.Fatalf("merged heatmap retired %d != compacted %d", hm.Retired, res.ContainersCompacted)
	}
	if rep = c.CapacityReport(0.25); hm.DeadBytes != rep.GarbageBytes {
		t.Fatalf("post-GC heatmap dead %d != report garbage %d", hm.DeadBytes, rep.GarbageBytes)
	}
}

// The async front-end routes the capacity surfaces through the workers
// that own the stores, so reports, heatmaps and GC work against a
// cluster behind queues.
func TestAsyncStoreCapacitySurfaces(t *testing.T) {
	const groups = 2
	cl, err := fidr.NewCluster(smallContainers(fidr.FIDRFull), groups)
	if err != nil {
		t.Fatal(err)
	}
	j := fidr.NewEventJournal(64)
	cl.SetEventJournal(j)
	async, err := fidr.NewAsync(cl, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer async.Close()
	store, err := fidr.NewAsyncStore(async, cl.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}

	const n = 256
	for i := uint64(0); i < n; i++ {
		if err := async.Write(i, fidr.MakeChunk(i%(n/2), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if i%4 != 0 {
			if err := async.Write(i, fidr.MakeChunk(200000+i, 0.5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := async.Maintenance(func(s fidr.Store) error { return s.Flush() }); err != nil {
		t.Fatal(err)
	}

	rep, err := store.CapacityReport(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnattributedBytes != 0 {
		t.Fatalf("unattributed bytes after flush: %d", rep.UnattributedBytes)
	}
	if rep.DedupSavedBytes+rep.CompressionSavedBytes+rep.StoredBytes != rep.LogicalWriteBytes {
		t.Fatalf("attribution unbalanced through async front: %+v", rep)
	}
	hm, err := store.ContainerHeatmap()
	if err != nil {
		t.Fatal(err)
	}
	if hm.DeadBytes != rep.GarbageBytes {
		t.Fatalf("async heatmap dead %d != report garbage %d", hm.DeadBytes, rep.GarbageBytes)
	}

	sum, err := store.CompactAll(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ContainersCompacted == 0 || sum.BytesReclaimed == 0 {
		t.Fatalf("async GC reclaimed nothing: %+v", sum)
	}
	after, err := store.CapacityReport(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if after.GarbageBytes >= rep.GarbageBytes {
		t.Fatalf("garbage did not shrink: %d -> %d", rep.GarbageBytes, after.GarbageBytes)
	}
	if after.ReclaimedDeadBytes == 0 {
		t.Fatal("reclaimed ledger not updated through async front")
	}
	if evs := j.Since(0); len(evs) != groups {
		t.Fatalf("journal has %d gc_run events, want %d", len(evs), groups)
	}

	// Every LBA still reads its freshest content through the queues.
	for i := uint64(0); i < n; i++ {
		want := fidr.MakeChunk(i%(n/2), 0.5)
		if i%4 != 0 {
			want = fidr.MakeChunk(200000+i, 0.5)
		}
		got, err := async.Read(i)
		if err != nil {
			t.Fatalf("read %d after async GC: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("LBA %d corrupted by async GC", i)
		}
	}
}
