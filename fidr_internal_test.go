package fidr

import "testing"

// TestRegistryConsistent guards the experiment registry: every ordered
// name has a runner and every runner is reachable from the order list.
func TestRegistryConsistent(t *testing.T) {
	order := make(map[string]bool, len(experimentOrder))
	for _, n := range experimentOrder {
		if order[n] {
			t.Errorf("duplicate name %q in order list", n)
		}
		order[n] = true
		if _, ok := experimentRegistry[n]; !ok {
			t.Errorf("ordered experiment %q has no runner", n)
		}
	}
	for n := range experimentRegistry {
		if !order[n] {
			t.Errorf("runner %q missing from the order list", n)
		}
	}
}
