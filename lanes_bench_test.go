package fidr_test

import (
	"fmt"
	"testing"

	"fidr"
	"fidr/internal/blockcomp"
	"fidr/internal/bufpool"
	"fidr/internal/core"
	"fidr/internal/engine"
	"fidr/internal/experiments"
	"fidr/internal/nic"
	"fidr/internal/trace"
)

// benchWorkload streams one experiment-standard workload through a fresh
// FIDRFull server per iteration. Compare lane scaling with
// BenchmarkHashLanes / BenchmarkCompressLanes; these fix the server to
// the GOMAXPROCS-derived lane default.
func benchWorkload(b *testing.B, workload string) {
	const ios = 4000
	cfg, err := experiments.ConfigFor(core.FIDRFull, ios)
	if err != nil {
		b.Fatal(err)
	}
	wp, err := experiments.WorkloadParams(workload, ios, cfg.CacheLines)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(ios * cfg.ChunkSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := fidr.NewServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		driveWorkload(b, srv, wp, cfg.ChunkSize)
	}
}

func driveWorkload(b *testing.B, srv *fidr.Server, wp fidr.Workload, chunkSize int) {
	b.Helper()
	gen, err := trace.NewGenerator(wp)
	if err != nil {
		b.Fatal(err)
	}
	sh := blockcomp.NewShaper(wp.CompressRatio)
	buf := make([]byte, chunkSize)
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		switch req.Op {
		case trace.OpWrite:
			sh.Block(req.ContentSeed, buf)
			if err := srv.Write(req.LBA, buf); err != nil {
				b.Fatal(err)
			}
		case trace.OpRead:
			if _, err := srv.Read(req.LBA); err != nil && err != core.ErrNotFound {
				b.Fatal(err)
			}
		}
	}
	if err := srv.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWriteH(b *testing.B)    { benchWorkload(b, "Write-H") }
func BenchmarkWriteM(b *testing.B)    { benchWorkload(b, "Write-M") }
func BenchmarkWriteL(b *testing.B)    { benchWorkload(b, "Write-L") }
func BenchmarkReadMixed(b *testing.B) { benchWorkload(b, "Read-Mixed") }

// BenchmarkHashLanes isolates the NIC SHA-core array: buffer a batch,
// fan HashAll across the lane array, drain. Scaling tracks the host's
// core count; results are byte-identical at every width.
func BenchmarkHashLanes(b *testing.B) {
	const batch = 64
	sh := blockcomp.NewShaper(0.5)
	chunks := make([][]byte, batch)
	for i := range chunks {
		chunks[i] = sh.Make(uint64(i), 4096)
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", n), func(b *testing.B) {
			fn, err := nic.NewFIDR(batch * 4096 * 2)
			if err != nil {
				b.Fatal(err)
			}
			fn.SetHashLanes(n)
			flags := make([]bool, batch)
			for i := range flags {
				flags[i] = true
			}
			b.SetBytes(batch * 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, c := range chunks {
					if err := fn.BufferWrite(uint64(j), c); err != nil {
						b.Fatal(err)
					}
				}
				fn.HashAll()
				unique, err := fn.ScheduleBatch(flags)
				if err != nil {
					b.Fatal(err)
				}
				for _, u := range unique {
					bufpool.Put(u.Data)
				}
			}
		})
	}
}

// BenchmarkCompressLanes isolates the compression-pipeline array over a
// fixed unique batch.
func BenchmarkCompressLanes(b *testing.B) {
	const batch = 64
	sh := blockcomp.NewShaper(0.5)
	datas := make([][]byte, batch)
	for i := range datas {
		datas[i] = sh.Make(uint64(i), 4096)
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", n), func(b *testing.B) {
			e, err := engine.NewCompression(blockcomp.NewLZ(), 1<<30)
			if err != nil {
				b.Fatal(err)
			}
			e.SetCompressLanes(n)
			b.SetBytes(batch * 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.CompressMany(datas); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
