package fidr_test

import (
	"encoding/json"
	"os"
	"testing"

	"fidr"
	"fidr/internal/chunk"
)

func TestBenchArtifactSingle(t *testing.T) {
	art, err := fidr.RunBenchExperiment("writeh", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != fidr.BenchSchema || art.Experiment != "writeh" {
		t.Fatalf("schema/experiment = %q/%q", art.Schema, art.Experiment)
	}
	if art.ThroughputMBps <= 0 || art.WallSeconds <= 0 {
		t.Fatalf("throughput %v over %vs", art.ThroughputMBps, art.WallSeconds)
	}
	if art.DedupRatio <= 0.5 || art.ReductionRatio <= 0 || art.ReductionRatio >= 1 {
		t.Fatalf("dedup %v reduction %v; Write-H should reduce heavily", art.DedupRatio, art.ReductionRatio)
	}
	for _, stage := range []string{"hash", "dedup_lookup", "nic_buffer"} {
		lat, ok := art.StageLatencyNS[stage]
		if !ok || lat.Count == 0 {
			t.Errorf("stage %q missing from artifact", stage)
			continue
		}
		if lat.P50NS <= 0 || lat.P90NS < lat.P50NS || lat.P99NS < lat.P90NS {
			t.Errorf("stage %q percentiles inconsistent: %+v", stage, lat)
		}
	}
	if lat, ok := art.RequestLatencyNS["latency.write_ack"]; !ok || lat.Count == 0 {
		t.Error("latency.write_ack missing from artifact")
	}
	if len(art.Shards) != 0 {
		t.Error("single-server artifact carries shard data")
	}
	for _, dev := range []string{"nic", "engine", "ssd.data-ssd"} {
		util, ok := art.DeviceUtilization[dev]
		if !ok {
			t.Errorf("device %q missing from utilization map", dev)
			continue
		}
		if util <= 0 || util > 1 {
			t.Errorf("device %q utilization %v outside (0, 1]", dev, util)
		}
	}
	// A FIDR write-only workload keeps client payload out of host DRAM
	// entirely while metadata still flows — the paper's core claim as a
	// bench artifact.
	if art.HostDRAMBytes == 0 {
		t.Error("host DRAM total is zero; metadata always flows through the host")
	}
	if art.HostDRAMPayloadBytes != 0 {
		t.Errorf("FIDR write run moved %d payload bytes through host DRAM, want 0", art.HostDRAMPayloadBytes)
	}
	if art.PCIeP2PBytes == 0 {
		t.Error("FIDR run recorded no P2P bytes")
	}
}

func TestBenchArtifactCluster(t *testing.T) {
	art, err := fidr.RunBenchExperiment("cluster4", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if art.Groups != 4 || len(art.Shards) != 4 {
		t.Fatalf("groups/shards = %d/%d", art.Groups, len(art.Shards))
	}
	var shares float64
	for _, sh := range art.Shards {
		shares += sh.WriteShare
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("shard write shares sum to %v", shares)
	}
	if art.CrossShardDupChunks == 0 {
		t.Error("cluster run tracked no cross-shard duplicates")
	}
	if _, ok := art.RequestLatencyNS["cluster.write"]; !ok {
		t.Error("cluster.write latency missing")
	}
}

func TestBenchArtifactRoundTrip(t *testing.T) {
	art, err := fidr.RunBenchExperiment("writel", 1500)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := fidr.WriteBenchArtifact(dir, art)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back fidr.BenchArtifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Experiment != "writel" || back.Schema != fidr.BenchSchema {
		t.Fatalf("round-trip lost identity: %+v", back)
	}
	if back.ThroughputMBps != art.ThroughputMBps || len(back.StageLatencyNS) != len(art.StageLatencyNS) {
		t.Fatal("round-trip lost measurements")
	}
	if _, err := fidr.RunBenchExperiment("nosuch", 100); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBenchArtifactLaneSweep(t *testing.T) {
	art, err := fidr.RunBenchExperiment("lanes", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.LanePoints) != 4 {
		t.Fatalf("%d lane points, want 4", len(art.LanePoints))
	}
	wantLanes := []int{1, 2, 4, 8}
	for i, p := range art.LanePoints {
		if p.Lanes != wantLanes[i] {
			t.Errorf("point %d lanes = %d, want %d", i, p.Lanes, wantLanes[i])
		}
		if p.ThroughputMBps <= 0 || p.WallSeconds <= 0 {
			t.Errorf("point %d has no measurement: %+v", i, p)
		}
	}
	if art.HashLanes != 8 || art.CompressLanes != 8 {
		t.Errorf("artifact body lanes = %d/%d, want 8/8", art.HashLanes, art.CompressLanes)
	}
	if art.LaneSpeedup <= 0 {
		t.Errorf("lane speedup %v", art.LaneSpeedup)
	}
	// Determinism across the sweep: reduction and dedup are lane-blind.
	if art.DedupRatio <= 0 || art.ReductionRatio <= 0 {
		t.Errorf("dedup %v reduction %v", art.DedupRatio, art.ReductionRatio)
	}
}

func TestBenchArtifactArchival(t *testing.T) {
	art, err := fidr.RunBenchExperiment("archival", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if art.Workload != "Archival" {
		t.Fatalf("workload = %q, want Archival", art.Workload)
	}
	if art.WALAppendedRecords == 0 || art.WALDurableBytes <= 0 {
		t.Fatalf("WAL totals missing: %d records, %d bytes",
			art.WALAppendedRecords, art.WALDurableBytes)
	}
	if lat, ok := art.RequestLatencyNS["wal.fsync"]; !ok || lat.Count == 0 {
		t.Error("wal.fsync latency missing from artifact")
	}
	if len(art.RecoveryPoints) != 4 {
		t.Fatalf("%d recovery points, want 4", len(art.RecoveryPoints))
	}
	prevBytes := int64(-1)
	for i, p := range art.RecoveryPoints {
		if p.WALFraction <= 0 || p.WALFraction > 1 {
			t.Errorf("point %d fraction %v outside (0, 1]", i, p.WALFraction)
		}
		if p.WALBytes <= prevBytes {
			t.Errorf("point %d WAL length %d not longer than previous %d",
				i, p.WALBytes, prevBytes)
		}
		prevBytes = p.WALBytes
		if p.ReplayedRecords <= 0 {
			t.Errorf("point %d replayed no records", i)
		}
		if p.RecoveryMillis <= 0 {
			t.Errorf("point %d recovery time %vms", i, p.RecoveryMillis)
		}
	}
	// Longer logs replay more records: the sweep is the recovery-time
	// vs. WAL-length curve.
	first, last := art.RecoveryPoints[0], art.RecoveryPoints[3]
	if last.ReplayedRecords <= first.ReplayedRecords {
		t.Errorf("replayed records did not grow with WAL length: %d -> %d",
			first.ReplayedRecords, last.ReplayedRecords)
	}
}

func TestBenchArtifactRecordsLanes(t *testing.T) {
	art, err := fidr.RunBenchExperiment("writel", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if art.HashLanes < 1 || art.CompressLanes < 1 {
		t.Fatalf("lane counts %d/%d not recorded", art.HashLanes, art.CompressLanes)
	}
}

func TestBenchArtifactCapacity(t *testing.T) {
	art, err := fidr.RunBenchExperiment("capacity", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if art.Experiment != "capacity" || art.Workload != "Write-M" {
		t.Fatalf("experiment/workload = %q/%q", art.Experiment, art.Workload)
	}
	c := art.Capacity
	if c == nil {
		t.Fatal("capacity section missing from artifact")
	}
	// The attribution identity holds exactly in the committed artifact:
	// the report is taken after the final flush, so there is no slack.
	if got := c.DedupSavedBytes + c.CompressionSavedBytes + c.StoredBytes; got != c.LogicalWriteBytes {
		t.Errorf("attribution unbalanced: %d + %d + %d != %d",
			c.DedupSavedBytes, c.CompressionSavedBytes, c.StoredBytes, c.LogicalWriteBytes)
	}
	if c.DedupSavedBytes == 0 || c.CompressionSavedBytes == 0 {
		t.Errorf("Write-M should save via both dedup and compression: %+v", c)
	}
	if c.ReductionRatio <= 1 {
		t.Errorf("reduction ratio %v on a reducible stream", c.ReductionRatio)
	}
	// The overwrite phase stranded garbage and the GC pass reclaimed it.
	if c.GarbageBeforeGCBytes == 0 {
		t.Error("overwrite phase stranded no garbage")
	}
	if c.GarbageAfterGCBytes >= c.GarbageBeforeGCBytes {
		t.Errorf("GC did not shrink garbage: %d -> %d",
			c.GarbageBeforeGCBytes, c.GarbageAfterGCBytes)
	}
	if c.ContainersCompacted == 0 || c.ReclaimedDeadBytes == 0 {
		t.Errorf("GC pass left no trace: %+v", c)
	}
	if got := c.GarbageBeforeGCBytes - c.GarbageAfterGCBytes; got != c.ReclaimedDeadBytes {
		t.Errorf("ledger drop %d != reclaimed dead bytes %d", got, c.ReclaimedDeadBytes)
	}
	if c.GCThreshold != 0.25 {
		t.Errorf("gc threshold %v, want 0.25", c.GCThreshold)
	}
	if c.HeatmapBuckets == 0 {
		t.Error("heatmap has no occupied buckets")
	}
	if c.GCRunEvents != 1 {
		t.Errorf("journal recorded %d gc_run events, want exactly 1", c.GCRunEvents)
	}
	// The body still carries the normal throughput/latency measurements.
	if art.ThroughputMBps <= 0 || art.WallSeconds <= 0 {
		t.Fatalf("throughput %v over %vs", art.ThroughputMBps, art.WallSeconds)
	}
}

func TestBenchArtifactCDC(t *testing.T) {
	art, err := fidr.RunBenchExperiment("cdc", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if art.Experiment != "cdc" || art.Workload != "Write-M" {
		t.Fatalf("experiment/workload = %q/%q", art.Experiment, art.Workload)
	}
	if art.Chunker != "cdc" {
		t.Fatalf("chunker = %q, want cdc", art.Chunker)
	}
	c := art.CDC
	if c == nil {
		t.Fatal("cdc section missing from artifact")
	}
	if c.MinChunk <= 0 || c.AvgChunk < c.MinChunk || c.MaxChunk < c.AvgChunk {
		t.Fatalf("chunk size bounds inconsistent: %d/%d/%d", c.MinChunk, c.AvgChunk, c.MaxChunk)
	}
	if c.ChunkerFastGBps <= 0 || c.ChunkerReferenceGBps <= 0 || c.ChunkerRollingGBps <= 0 {
		t.Fatalf("chunker rates missing: fast %v ref %v rolling %v",
			c.ChunkerFastGBps, c.ChunkerReferenceGBps, c.ChunkerRollingGBps)
	}
	// At full bench scale the acceptance bar is 5x; the test asserts the
	// fast path wins at all so a shared noisy CI box cannot flake it.
	if c.ChunkerSpeedup <= 1 {
		t.Errorf("fast chunker speedup %v over the reference scalar, want > 1", c.ChunkerSpeedup)
	}
	if c.FixedThroughputMBps <= 0 || c.CDCThroughputMBps <= 0 {
		t.Errorf("end-to-end throughputs: fixed %v cdc %v", c.FixedThroughputMBps, c.CDCThroughputMBps)
	}
	// The whole point: on insertion-shifted backup generations CDC
	// resynchronizes where fixed-block chunking cannot.
	if c.DedupRatioDelta <= 0 {
		t.Errorf("dedup ratio delta %v (cdc %v vs fixed %v), want positive",
			c.DedupRatioDelta, c.CDCDedupRatio, c.FixedDedupRatio)
	}
	if c.MeanChunkBytes < float64(c.MinChunk) || c.MeanChunkBytes > float64(c.MaxChunk) {
		t.Errorf("mean chunk %v bytes outside [%d, %d]", c.MeanChunkBytes, c.MinChunk, c.MaxChunk)
	}
	if !c.LedgerBalanced {
		t.Error("reduction-attribution ledger unbalanced under variable-size chunks")
	}
	// The body carries the CDC run's measurements.
	if art.ThroughputMBps <= 0 || art.WallSeconds <= 0 {
		t.Fatalf("throughput %v over %vs", art.ThroughputMBps, art.WallSeconds)
	}
}

func TestBenchChunkerOverride(t *testing.T) {
	// Any single-server experiment runs end to end with -chunker=cdc:
	// variable chunks flow through NIC buffering, dedup, and container
	// packing, and the extent addressing keeps reads resolvable.
	art, err := fidr.RunBenchExperimentChunker("writem", 1500, chunk.Config{Mode: chunk.ModeCDC})
	if err != nil {
		t.Fatal(err)
	}
	if art.Chunker != "cdc" {
		t.Fatalf("chunker = %q, want cdc", art.Chunker)
	}
	if art.ThroughputMBps <= 0 || art.DedupRatio <= 0 {
		t.Fatalf("throughput %v dedup %v", art.ThroughputMBps, art.DedupRatio)
	}
	// WAL-dependent experiments cannot run under CDC and must say so.
	if _, err := fidr.RunBenchExperimentChunker("archival", 500, chunk.Config{Mode: chunk.ModeCDC}); err == nil {
		t.Fatal("archival under CDC was accepted; WAL cannot persist raw chunk sizes")
	}
}

func TestBenchArtifactTracing(t *testing.T) {
	art, err := fidr.RunBenchExperiment("tracing", 1500)
	if err != nil {
		t.Fatal(err)
	}
	if art.Experiment != "tracing" || art.Workload != "Write-H" {
		t.Fatalf("experiment/workload = %q/%q", art.Experiment, art.Workload)
	}
	if len(art.TracePoints) != 4 {
		t.Fatalf("got %d trace points, want 4", len(art.TracePoints))
	}
	want := map[string]bool{"Write-H": true, "Write-M": true, "Write-L": true, "Read-Mixed": true}
	for _, pt := range art.TracePoints {
		if !want[pt.Workload] {
			t.Errorf("unexpected trace point workload %q", pt.Workload)
		}
		delete(want, pt.Workload)
		if pt.OffMBps <= 0 || pt.OnMBps <= 0 {
			t.Errorf("%s: throughputs %v off / %v on, want both positive", pt.Workload, pt.OffMBps, pt.OnMBps)
		}
	}
	if len(want) != 0 {
		t.Errorf("workloads missing from trace points: %v", want)
	}
	// The artifact body comes from the traced Write-H pass.
	if art.ThroughputMBps <= 0 || art.WallSeconds <= 0 {
		t.Fatalf("throughput %v over %vs", art.ThroughputMBps, art.WallSeconds)
	}
	// At test scale the runs are short and noisy, so the acceptance bar
	// gets headroom; the committed artifact at full scale is what the
	// <= ~5% criterion judges.
	if art.TraceWriteOverheadPct > 25 {
		t.Errorf("sampled tracing write overhead %.1f%%, want small", art.TraceWriteOverheadPct)
	}
}
