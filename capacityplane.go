package fidr

import (
	"fmt"
	"sync"

	"fidr/internal/core"
	"fidr/internal/metrics/events"
	"fidr/internal/proto"
)

// Capacity plane surfaces over the front-ends. A single Server exposes
// CapacityReport / ContainerHeatmap / Compact / Checkpoint directly
// (fidr.Server is core.Server); this file lifts the same operations
// over the Cluster and the async front-end, where the per-group workers
// own the servers and maintenance must route through them.

// Re-exported capacity types so callers above core share one vocabulary.
type (
	// CapacityReport is the /capacity attribution + garbage-debt view.
	CapacityReport = core.CapacityReport
	// ContainerHeatmap is the /capacity/containers bucketed view.
	ContainerHeatmap = core.ContainerHeatmap
	// GCAdvice is the compaction recommendation inside a report.
	GCAdvice = core.GCAdvice
	// CompactResult reports one GC pass.
	CompactResult = core.CompactResult
	// EventJournal is the bounded structured event journal.
	EventJournal = events.Journal
	// Event is one structured journal record.
	Event = events.Event
)

// NewEventJournal builds a journal retaining capacity events (<= 0
// selects the default).
func NewEventJournal(capacity int) *EventJournal { return events.NewJournal(capacity) }

// SetEventJournal shares one journal across every group; group i's
// events carry Group: i, so a tail of the merged journal shows the
// cluster-wide interleaving in one sequence.
func (c *Cluster) SetEventJournal(j *EventJournal) {
	for i, g := range c.groups {
		g.SetEventJournal(j, i)
	}
}

// CapacityReport merges every group's report. Call from a quiesced
// context (no concurrent writers) or route through Async.Maintenance —
// the ledger fields are single-writer per group.
func (c *Cluster) CapacityReport(threshold float64) CapacityReport {
	rs := make([]CapacityReport, len(c.groups))
	for i, g := range c.groups {
		rs[i] = g.CapacityReport(threshold)
	}
	return core.MergeCapacityReports(rs...)
}

// ContainerHeatmap merges every group's heatmap cell-wise.
func (c *Cluster) ContainerHeatmap() ContainerHeatmap {
	hs := make([]ContainerHeatmap, len(c.groups))
	for i, g := range c.groups {
		hs[i] = g.ContainerHeatmap()
	}
	return core.MergeHeatmaps(hs...)
}

// Compact runs one GC pass on every group and sums the results.
func (c *Cluster) Compact(minDeadFraction float64) (CompactResult, error) {
	var total CompactResult
	for i, g := range c.groups {
		res, err := g.Compact(minDeadFraction)
		if err != nil {
			return total, fmt.Errorf("fidr: group %d compact: %w", i, err)
		}
		total.ContainersCompacted += res.ContainersCompacted
		total.ChunksMoved += res.ChunksMoved
		total.ChunksDropped += res.ChunksDropped
		total.BytesReclaimed += res.BytesReclaimed
		total.BytesMoved += res.BytesMoved
	}
	return total, nil
}

// compacter / checkpointer / capacitor are the per-store maintenance
// surfaces the async closures assert for (both Server and the stores a
// worker owns implement them).
type compacter interface {
	Compact(minDeadFraction float64) (CompactResult, error)
}
type checkpointer interface {
	Checkpoint() error
}
type capacitor interface {
	CapacityReport(threshold float64) CapacityReport
	ContainerHeatmap() ContainerHeatmap
}

// CompactAll runs one GC pass on every worker-owned store and returns
// the aggregate (the proto.Compactor surface behind OpCompact).
func (s *AsyncStore) CompactAll(minDeadFraction float64) (proto.CompactSummary, error) {
	var mu sync.Mutex
	var total proto.CompactSummary
	err := s.a.Maintenance(func(st Store) error {
		c, ok := st.(compacter)
		if !ok {
			return fmt.Errorf("fidr: store %T does not support compaction", st)
		}
		res, err := c.Compact(minDeadFraction)
		if err != nil {
			return err
		}
		mu.Lock()
		total.ContainersCompacted += uint64(res.ContainersCompacted)
		total.ChunksMoved += uint64(res.ChunksMoved)
		total.ChunksDropped += uint64(res.ChunksDropped)
		total.BytesReclaimed += res.BytesReclaimed
		total.BytesMoved += res.BytesMoved
		mu.Unlock()
		return nil
	})
	return total, err
}

// CheckpointAll checkpoints every worker-owned durable store (the
// proto.Checkpointer surface behind OpCheckpoint).
func (s *AsyncStore) CheckpointAll() error {
	return s.a.Maintenance(func(st Store) error {
		c, ok := st.(checkpointer)
		if !ok {
			return fmt.Errorf("fidr: store %T does not support checkpointing", st)
		}
		return c.Checkpoint()
	})
}

// CapacityReport builds the merged capacity view, each group's share
// computed on the worker that owns it.
func (s *AsyncStore) CapacityReport(threshold float64) (CapacityReport, error) {
	var mu sync.Mutex
	var reports []CapacityReport
	err := s.a.Maintenance(func(st Store) error {
		c, ok := st.(capacitor)
		if !ok {
			return fmt.Errorf("fidr: store %T does not report capacity", st)
		}
		r := c.CapacityReport(threshold)
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return CapacityReport{}, err
	}
	return core.MergeCapacityReports(reports...), nil
}

// ContainerHeatmap builds the merged container heatmap the same way.
func (s *AsyncStore) ContainerHeatmap() (ContainerHeatmap, error) {
	var mu sync.Mutex
	var maps []ContainerHeatmap
	err := s.a.Maintenance(func(st Store) error {
		c, ok := st.(capacitor)
		if !ok {
			return fmt.Errorf("fidr: store %T does not report capacity", st)
		}
		h := c.ContainerHeatmap()
		mu.Lock()
		maps = append(maps, h)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return ContainerHeatmap{}, err
	}
	return core.MergeHeatmaps(maps...), nil
}

// The async adapter satisfies the proto maintenance surfaces.
var (
	_ proto.Compactor    = (*AsyncStore)(nil)
	_ proto.Checkpointer = (*AsyncStore)(nil)
)
