module fidr

go 1.22
