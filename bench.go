package fidr

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fidr/internal/blockcomp"
	"fidr/internal/chunk"
	"fidr/internal/core"
	"fidr/internal/experiments"
	"fidr/internal/lanes"
	"fidr/internal/metrics"
	"fidr/internal/ssd"
	"fidr/internal/trace"
	"fidr/internal/trace/span"
)

// Bench artifact pipeline: machine-readable benchmark results. Each
// bench experiment drives a server (or cluster) through a Table 3
// workload with observability on, then distills the live metrics into a
// BENCH_<experiment>.json artifact — throughput, reduction ratios, and
// p50/p90/p99 stage latencies — that CI can archive and diff across
// commits. The schema is documented in README.md.

// BenchSchema versions the artifact layout.
const BenchSchema = "fidr-bench/1"

// BenchLatency summarizes one latency histogram, in nanoseconds.
type BenchLatency struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P90NS  float64 `json:"p90_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  float64 `json:"max_ns"`
}

// BenchShard reports one cluster group's share of the run.
type BenchShard struct {
	Group      int     `json:"group"`
	Writes     uint64  `json:"writes"`
	Reads      uint64  `json:"reads"`
	WriteShare float64 `json:"write_share"`
	DedupRatio float64 `json:"dedup_ratio"`
}

// BenchArtifact is the schema of a BENCH_<experiment>.json file.
type BenchArtifact struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	Arch       string `json:"arch"`
	Workload   string `json:"workload"`
	IOs        int    `json:"ios"`
	Groups     int    `json:"groups"`
	// Chunker records the write-path chunking mode ("fixed" or "cdc").
	Chunker string `json:"chunker,omitempty"`

	// HashLanes / CompressLanes record the accelerator lane-array widths
	// the run used (hash cores and compression pipelines).
	HashLanes     int `json:"hash_lanes"`
	CompressLanes int `json:"compress_lanes"`

	WallSeconds    float64 `json:"wall_seconds"`
	ThroughputMBps float64 `json:"throughput_mbps"`

	DedupRatio     float64 `json:"dedup_ratio"`
	ReductionRatio float64 `json:"reduction_ratio"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	// StageLatencyNS keys are pipeline stage slugs ("hash",
	// "dedup_lookup", ...); RequestLatencyNS keys are request-level
	// histogram names with the ".ns" suffix stripped ("latency.write_ack",
	// "cluster.write", ...).
	StageLatencyNS   map[string]BenchLatency `json:"stage_latency_ns"`
	RequestLatencyNS map[string]BenchLatency `json:"request_latency_ns"`

	// DeviceUtilization maps each device's busy_ns counter (suffix
	// stripped) to busy time over wall time, clamped to [0,1].
	DeviceUtilization map[string]float64 `json:"device_utilization"`

	// Data-movement totals from the accounting ledgers: bytes through
	// host DRAM (all traffic, and the client-payload share), and bytes
	// moved peer-to-peer under the switch vs. through the root complex.
	HostDRAMBytes        uint64 `json:"host_dram_bytes"`
	HostDRAMPayloadBytes uint64 `json:"host_dram_payload_bytes"`
	PCIeP2PBytes         uint64 `json:"pcie_p2p_bytes"`
	PCIeRootBytes        uint64 `json:"pcie_root_bytes"`

	// Cluster runs only.
	Shards              []BenchShard `json:"shards,omitempty"`
	ShardImbalance      float64      `json:"shard_imbalance,omitempty"`
	CrossShardDupChunks uint64       `json:"cross_shard_dup_chunks,omitempty"`

	// Lane-sweep runs only: per-lane-count measurements of the same
	// workload, and the widest/serial throughput ratio. Throughput
	// scaling depends on the host's core count; outputs are identical.
	LanePoints  []BenchLanePoint `json:"lane_points,omitempty"`
	LaneSpeedup float64          `json:"lane_speedup,omitempty"`

	// WAL-attached runs only: the log's commit totals for the measured
	// run, and the recovery sweep (crash + RecoverServer + replay timed
	// against growing post-checkpoint log lengths).
	WALAppendedRecords uint64               `json:"wal_appended_records,omitempty"`
	WALDurableBytes    int64                `json:"wal_durable_bytes,omitempty"`
	RecoveryPoints     []BenchRecoveryPoint `json:"recovery_points,omitempty"`

	// Tracing runs only: per-workload throughput with the span plane off
	// vs. head-sampled on, and the worst write-workload overhead.
	// Acceptance: sampled tracing should cost <= ~5% write throughput.
	TracePoints           []BenchTracePoint `json:"trace_points,omitempty"`
	TraceWriteOverheadPct float64           `json:"trace_write_overhead_pct,omitempty"`

	// Capacity runs only: the reduction-attribution ledger and one
	// measured GC pass (see BenchCapacity).
	Capacity *BenchCapacity `json:"capacity,omitempty"`

	// CDC runs only: chunker microbenchmark and the fixed-vs-CDC
	// end-to-end comparison (see BenchCDC).
	CDC *BenchCDC `json:"cdc,omitempty"`
}

// BenchCDC captures the cdc experiment. The chunker section is the
// single-core microbenchmark over one NIC-ingest-batch of shaped
// content: the skip-ahead fast path, the scalar gear reference it is
// proven byte-identical to (internal/chunk equivalence suite), and the
// legacy rolling-hash chunker. The end-to-end section drives the same
// duplicate-rich backup generations — each repeating the previous with
// a small insertion near the front — through a fixed-4K server and a
// CDC server: fixed chunking loses alignment at the insertion, CDC
// resynchronizes and dedups the unshifted remainder.
type BenchCDC struct {
	MinChunk int `json:"min_chunk"`
	AvgChunk int `json:"avg_chunk"`
	MaxChunk int `json:"max_chunk"`

	ChunkerFastGBps      float64 `json:"chunker_fast_gbps"`
	ChunkerReferenceGBps float64 `json:"chunker_reference_gbps"`
	ChunkerRollingGBps   float64 `json:"chunker_rolling_gbps"`
	// ChunkerSpeedup is fast over reference (acceptance: >= 5x, judged
	// by BenchmarkCDCBoundaries on quiet hardware; bench-run values are
	// load-dependent).
	ChunkerSpeedup float64 `json:"chunker_speedup"`

	FixedThroughputMBps float64 `json:"fixed_throughput_mbps"`
	CDCThroughputMBps   float64 `json:"cdc_throughput_mbps"`
	FixedDedupRatio     float64 `json:"fixed_dedup_ratio"`
	CDCDedupRatio       float64 `json:"cdc_dedup_ratio"`
	// DedupRatioDelta is CDC minus fixed on the same byte streams.
	DedupRatioDelta float64 `json:"dedup_ratio_delta"`
	MeanChunkBytes  float64 `json:"mean_chunk_bytes"`
	// LedgerBalanced asserts logical = dedup + compression + stored held
	// exactly on the CDC server after the final flush.
	LedgerBalanced bool `json:"ledger_balanced"`
}

// BenchCapacity captures the capacity experiment: where every client
// write byte went (the attribution identity logical = dedup + compression
// + stored must balance exactly after the final flush), the garbage an
// overwrite phase stranded, and what one Compact pass at GCThreshold
// reclaimed.
type BenchCapacity struct {
	LogicalWriteBytes     uint64  `json:"logical_write_bytes"`
	DedupSavedBytes       uint64  `json:"dedup_saved_bytes"`
	CompressionSavedBytes uint64  `json:"compression_saved_bytes"`
	StoredBytes           uint64  `json:"stored_bytes"`
	ReductionRatio        float64 `json:"reduction_ratio"`

	GCThreshold          float64 `json:"gc_threshold"`
	GarbageBeforeGCBytes uint64  `json:"garbage_before_gc_bytes"`
	GarbageAfterGCBytes  uint64  `json:"garbage_after_gc_bytes"`
	ReclaimedDeadBytes   uint64  `json:"reclaimed_dead_bytes"`
	ContainersCompacted  int     `json:"containers_compacted"`

	HeatmapBuckets int `json:"heatmap_buckets"`
	GCRunEvents    int `json:"gc_run_events"`
}

// BenchTracePoint compares one workload's throughput with distributed
// tracing off vs. on (head-sampled, every 16th request). OverheadPct is
// the relative throughput loss in percent; small negative values are
// run-to-run noise.
type BenchTracePoint struct {
	Workload    string  `json:"workload"`
	OffMBps     float64 `json:"off_mbps"`
	OnMBps      float64 `json:"on_mbps"`
	OverheadPct float64 `json:"overhead_pct"`
}

// BenchRecoveryPoint is one crash-recovery measurement: the server is
// checkpointed mid-workload, runs WALFraction of the remaining trace,
// crashes, and is timed through RecoverServer + WAL replay.
type BenchRecoveryPoint struct {
	WALFraction     float64 `json:"wal_fraction"`
	WALBytes        int64   `json:"wal_bytes"`
	ReplayedRecords int     `json:"replayed_records"`
	RecoveryMillis  float64 `json:"recovery_ms"`
}

// BenchLanePoint is one lane-count measurement from the lane sweep.
type BenchLanePoint struct {
	Lanes          int     `json:"lanes"`
	WallSeconds    float64 `json:"wall_seconds"`
	ThroughputMBps float64 `json:"throughput_mbps"`
}

// benchSpec names one bench experiment.
type benchSpec struct {
	workload  string
	arch      Arch
	groups    int
	laneSweep bool
	// archival attaches a WAL and appends the crash-recovery sweep.
	archival bool
	// tracing runs every Table 3 workload twice — span plane off, then
	// head-sampled on — and records the throughput deltas.
	tracing bool
	// capacity appends an overwrite phase and a measured GC pass,
	// recording the attribution ledger (see BenchCapacity).
	capacity bool
	// cdc runs the variable-size chunk datapath comparison (BenchCDC).
	cdc bool
}

var benchSpecs = map[string]benchSpec{
	"writeh":    {workload: "Write-H", arch: FIDRFull, groups: 1},
	"writem":    {workload: "Write-M", arch: FIDRFull, groups: 1},
	"writel":    {workload: "Write-L", arch: FIDRFull, groups: 1},
	"readmixed": {workload: "Read-Mixed", arch: FIDRFull, groups: 1},
	"cluster4":  {workload: "Write-H", arch: FIDRFull, groups: 4},
	"lanes":     {workload: "Write-L", arch: FIDRFull, groups: 1, laneSweep: true},
	"archival":  {workload: "Archival", arch: FIDRFull, groups: 1, archival: true},
	"tracing":   {workload: "Write-H", arch: FIDRFull, groups: 1, tracing: true},
	"capacity":  {workload: "Write-M", arch: FIDRFull, groups: 1, capacity: true},
	"cdc":       {workload: "Write-M", arch: FIDRFull, groups: 1, cdc: true},
}

// BenchExperiments lists bench experiment names, sorted.
func BenchExperiments() []string {
	out := make([]string, 0, len(benchSpecs))
	for name := range benchSpecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RunBenchExperiment executes one bench experiment and returns its
// artifact. ios sizes the workload (0 selects the default scale).
func RunBenchExperiment(name string, ios int) (BenchArtifact, error) {
	return RunBenchExperimentChunker(name, ios, chunk.Config{})
}

// RunBenchExperimentChunker is RunBenchExperiment with an explicit
// chunking mode (the -chunker flag): ModeCDC reruns the experiment's
// workload over a content-defined-chunking server, with each trace write
// ingested as a stream segment at its byte-offset extent. Experiments
// that need metadata persistence (archival, capacity's GC bookkeeping is
// fine, but the WAL and Checkpoint are not available under CDC) reject
// ModeCDC.
func RunBenchExperimentChunker(name string, ios int, chunking chunk.Config) (BenchArtifact, error) {
	spec, ok := benchSpecs[name]
	if !ok {
		return BenchArtifact{}, fmt.Errorf("fidr: unknown bench experiment %q (see BenchExperiments())", name)
	}
	if err := chunking.Normalize(); err != nil {
		return BenchArtifact{}, fmt.Errorf("fidr: %w", err)
	}
	if chunking.Mode == chunk.ModeCDC && (spec.archival || spec.capacity) {
		return BenchArtifact{}, fmt.Errorf("fidr: bench experiment %q requires fixed chunking (WAL/checkpoint are unavailable under CDC)", name)
	}
	if ios <= 0 {
		ios = experiments.DefaultScale().IOs
	}
	cfg, err := experiments.ConfigFor(spec.arch, ios)
	if err != nil {
		return BenchArtifact{}, err
	}
	cfg.Chunking = chunking
	wp, err := experiments.WorkloadParams(spec.workload, ios, cfg.CacheLines)
	if err != nil {
		return BenchArtifact{}, err
	}

	art := BenchArtifact{
		Schema:     BenchSchema,
		Experiment: name,
		Arch:       spec.arch.String(),
		Workload:   spec.workload,
		IOs:        ios,
		Groups:     spec.groups,
		Chunker:    chunking.Mode.String(),
	}
	art.HashLanes = lanes.Normalize(cfg.HashLanes)
	art.CompressLanes = lanes.Normalize(cfg.CompressLanes)
	switch {
	case spec.cdc:
		err = runBenchCDC(cfg, wp, &art)
	case spec.capacity:
		err = runBenchCapacity(cfg, wp, &art)
	case spec.tracing:
		err = runBenchTracing(cfg, ios, &art)
	case spec.laneSweep:
		err = runBenchLaneSweep(cfg, wp, &art)
	case spec.archival:
		err = runBenchArchival(cfg, wp, &art)
	case spec.groups > 1:
		err = runBenchCluster(cfg, wp, spec.groups, &art)
	default:
		err = runBenchSingle(cfg, wp, &art)
	}
	return art, err
}

// runBenchLaneSweep runs the workload at 1, 2, 4 and 8 accelerator
// lanes. The widest run fills the artifact body; every point lands in
// LanePoints and LaneSpeedup is widest over serial throughput.
func runBenchLaneSweep(cfg Config, wp Workload, art *BenchArtifact) error {
	widths := []int{1, 2, 4, 8}
	for i, n := range widths {
		c := cfg
		c.HashLanes = n
		c.CompressLanes = n
		target := &BenchArtifact{}
		if i == len(widths)-1 {
			target = art
		}
		if err := runBenchSingle(c, wp, target); err != nil {
			return err
		}
		art.LanePoints = append(art.LanePoints, BenchLanePoint{
			Lanes:          n,
			WallSeconds:    target.WallSeconds,
			ThroughputMBps: target.ThroughputMBps,
		})
	}
	art.HashLanes = widths[len(widths)-1]
	art.CompressLanes = widths[len(widths)-1]
	if serial := art.LanePoints[0].ThroughputMBps; serial > 0 {
		art.LaneSpeedup = art.LanePoints[len(art.LanePoints)-1].ThroughputMBps / serial
	}
	return nil
}

// runBenchTracing measures the cost of the distributed-tracing plane.
// Each Table 3 workload runs twice on identically configured servers —
// span plane off, then head-sampled tracing on (every 16th request
// feeds a span collector) — and the throughput delta lands in
// TracePoints. The traced Write-H run fills the artifact body, and
// TraceWriteOverheadPct records the worst write-workload overhead
// against the <= ~5% acceptance bar.
func runBenchTracing(cfg Config, ios int, art *BenchArtifact) error {
	for _, name := range []string{"Write-H", "Write-M", "Write-L", "Read-Mixed"} {
		wp, err := experiments.WorkloadParams(name, ios, cfg.CacheLines)
		if err != nil {
			return err
		}
		off := &BenchArtifact{}
		if err := benchTracingPass(cfg, wp, false, off); err != nil {
			return err
		}
		on := &BenchArtifact{}
		if name == art.Workload {
			on = art
		}
		if err := benchTracingPass(cfg, wp, true, on); err != nil {
			return err
		}
		pt := BenchTracePoint{Workload: name, OffMBps: off.ThroughputMBps, OnMBps: on.ThroughputMBps}
		if pt.OffMBps > 0 {
			pt.OverheadPct = (pt.OffMBps - pt.OnMBps) / pt.OffMBps * 100
		}
		art.TracePoints = append(art.TracePoints, pt)
		if strings.HasPrefix(name, "Write") && pt.OverheadPct > art.TraceWriteOverheadPct {
			art.TraceWriteOverheadPct = pt.OverheadPct
		}
	}
	return nil
}

// benchTracingPass is runBenchSingle with the span plane optionally
// armed before traffic.
func benchTracingPass(cfg Config, wp Workload, traced bool, art *BenchArtifact) error {
	srv, err := NewServer(cfg)
	if err != nil {
		return err
	}
	view := srv.EnableObservability(nil, 64)
	if traced {
		srv.SetSpanCollector(span.NewCollector(512), 0)
		srv.SetTraceSampling(16)
	}
	wall, err := driveBench(srv, wp, cfg.ChunkSize, cfg.Chunking.Mode == chunk.ModeCDC)
	if err != nil {
		return err
	}
	fillBenchArtifact(art, srv.Stats(), srv.CacheStats().HitRate(), wall, view.Snapshot())
	return nil
}

func runBenchSingle(cfg Config, wp Workload, art *BenchArtifact) error {
	srv, err := NewServer(cfg)
	if err != nil {
		return err
	}
	view := srv.EnableObservability(nil, 64)
	wall, err := driveBench(srv, wp, cfg.ChunkSize, cfg.Chunking.Mode == chunk.ModeCDC)
	if err != nil {
		return err
	}
	st := srv.Stats()
	fillBenchArtifact(art, st, srv.CacheStats().HitRate(), wall, view.Snapshot())
	return nil
}

// runBenchCDC measures the variable-size chunk datapath. Part 1 is the
// single-core chunker microbenchmark over one NIC-ingest-batch (1 MiB)
// of Shaper content at the workload's compression ratio. Part 2 builds
// duplicate-rich backup generations — each generation repeats the
// previous with a small insertion near the front — and drives the same
// bytes through a fixed-ChunkSize server and a CDC server; the CDC run
// fills the artifact body. Fixed chunking loses alignment at every
// insertion; CDC resynchronizes within a few chunks and dedups the
// unshifted remainder, which is the dedup_ratio_delta the artifact
// records.
func runBenchCDC(cfg Config, wp Workload, art *BenchArtifact) error {
	ck := chunk.Config{Mode: chunk.ModeCDC}
	if err := ck.Normalize(); err != nil {
		return err
	}
	cdc := &BenchCDC{MinChunk: ck.Min, AvgChunk: ck.Avg, MaxChunk: ck.Max}
	art.CDC = cdc
	art.Chunker = chunk.ModeCDC.String()

	// Part 1: chunking GB/s on one ingest batch of shaped content.
	chunker, err := ck.NewChunker()
	if err != nil {
		return err
	}
	sh := blockcomp.NewShaper(wp.CompressRatio)
	batch := make([]byte, 1<<20)
	for off := 0; off < len(batch); off += 4096 {
		sh.Block(uint64(off), batch[off:off+4096])
	}
	cdc.ChunkerFastGBps = chunkRate(len(batch), func(scratch []int) []int {
		return chunker.AppendBoundaries(scratch, batch)
	})
	cdc.ChunkerReferenceGBps = chunkRate(len(batch), func(scratch []int) []int {
		return chunker.ReferenceBoundaries(scratch, batch)
	})
	roll := chunk.NewRolling(ck.Min, ck.Avg, ck.Max)
	cdc.ChunkerRollingGBps = chunkRate(len(batch), func(scratch []int) []int {
		return append(scratch, roll.Boundaries(batch)...)
	})
	if cdc.ChunkerReferenceGBps > 0 {
		cdc.ChunkerSpeedup = cdc.ChunkerFastGBps / cdc.ChunkerReferenceGBps
	}

	// Part 2: backup generations. Total bytes track the requested scale.
	genBytes := wp.TotalIOs * cfg.ChunkSize / 4
	if genBytes < 256<<10 {
		genBytes = 256 << 10
	}
	base := make([]byte, genBytes)
	for off := 0; off < len(base); off += cfg.ChunkSize {
		end := off + cfg.ChunkSize
		if end > len(base) {
			end = len(base)
		}
		sh.Block(uint64(off)^0xB0B0, base[off:end])
	}
	gens := [][]byte{base}
	for g := 1; g < 4; g++ {
		prev := gens[g-1]
		hdr := []byte(fmt.Sprintf("generation-%02d!", g))
		next := make([]byte, 0, len(prev)+len(hdr))
		next = append(next, hdr[:g*3+1]...)
		next = append(next, prev...)
		// One rewritten region per generation, fresh unique content.
		if len(next) > 96<<10 {
			sh.Block(uint64(g)<<32|0xFEED, next[64<<10:68<<10])
		}
		gens = append(gens, next)
	}

	// Fixed server: 4-KB chunks, zero-padded tails, per-generation LBA
	// spaces.
	fixedSrv, err := NewServer(cfg)
	if err != nil {
		return err
	}
	buf := make([]byte, cfg.ChunkSize)
	start := time.Now()
	for g, gen := range gens {
		for off := 0; off < len(gen); off += cfg.ChunkSize {
			n := copy(buf, gen[off:])
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
			lba := uint64(g)<<40 | uint64(off/cfg.ChunkSize)
			if err := fixedSrv.Write(lba, buf); err != nil {
				return fmt.Errorf("fidr: bench cdc fixed write: %w", err)
			}
		}
	}
	if err := fixedSrv.Flush(); err != nil {
		return err
	}
	fixedWall := time.Since(start)

	// CDC server: each generation is one stream write in its own extent
	// space; the NIC chunks it, draining batches as the buffer fills.
	c := cfg
	c.Chunking = ck
	cdcSrv, err := NewServer(c)
	if err != nil {
		return err
	}
	view := cdcSrv.EnableObservability(nil, 64)
	start = time.Now()
	for g, gen := range gens {
		if err := cdcSrv.Write(uint64(g)<<40, gen); err != nil {
			return fmt.Errorf("fidr: bench cdc stream write: %w", err)
		}
	}
	if err := cdcSrv.Flush(); err != nil {
		return err
	}
	cdcWall := time.Since(start)

	fixedSt, cdcSt := fixedSrv.Stats(), cdcSrv.Stats()
	if fixedWall > 0 {
		cdc.FixedThroughputMBps = float64(fixedSt.ClientBytes) / 1e6 / fixedWall.Seconds()
	}
	if cdcWall > 0 {
		cdc.CDCThroughputMBps = float64(cdcSt.ClientBytes) / 1e6 / cdcWall.Seconds()
	}
	if tot := fixedSt.DuplicateChunks + fixedSt.UniqueChunks; tot > 0 {
		cdc.FixedDedupRatio = float64(fixedSt.DuplicateChunks) / float64(tot)
	}
	if tot := cdcSt.DuplicateChunks + cdcSt.UniqueChunks; tot > 0 {
		cdc.CDCDedupRatio = float64(cdcSt.DuplicateChunks) / float64(tot)
		cdc.MeanChunkBytes = float64(cdcSt.LogicalWriteBytes) / float64(tot)
	}
	cdc.DedupRatioDelta = cdc.CDCDedupRatio - cdc.FixedDedupRatio
	cdc.LedgerBalanced = cdcSt.DedupSavedBytes+cdcSt.CompressionSavedBytes+cdcSt.StoredBytes == cdcSt.LogicalWriteBytes

	fillBenchArtifact(art, cdcSt, cdcSrv.CacheStats().HitRate(), cdcWall, view.Snapshot())
	return nil
}

// chunkRate times fn (which must consume a fixed n input bytes per call,
// recycling the boundary scratch) and returns GB/s.
func chunkRate(n int, fn func([]int) []int) float64 {
	scratch := fn(nil) // warm caches and the scratch buffer
	const rounds = 48
	start := time.Now()
	for i := 0; i < rounds; i++ {
		scratch = fn(scratch[:0])
	}
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	_ = scratch
	return float64(n) * rounds / el / 1e9
}

// runBenchCapacity drives the workload while recording the LBAs it
// touches, then overwrites half of them with fresh unique content to
// strand garbage, and runs one Compact pass. The artifact's capacity
// section records the attribution ledger (which must balance exactly
// after the flush), the garbage before/after GC, and the journaled
// gc_run evidence. Smaller containers than the architecture default
// make sure the bench-scale workload seals enough of them to give the
// GC real candidates.
func runBenchCapacity(cfg Config, wp Workload, art *BenchArtifact) error {
	const threshold = 0.25
	c := cfg
	c.ContainerSize = 256 << 10
	srv, err := NewServer(c)
	if err != nil {
		return err
	}
	journal := NewEventJournal(256)
	srv.SetEventJournal(journal, 0)
	view := srv.EnableObservability(nil, 64)

	gen, err := trace.NewGenerator(wp)
	if err != nil {
		return err
	}
	sh := blockcomp.NewShaper(wp.CompressRatio)
	buf := make([]byte, c.ChunkSize)
	seen := make(map[uint64]bool)
	var lbas []uint64
	start := time.Now()
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		switch req.Op {
		case trace.OpWrite:
			sh.Block(req.ContentSeed, buf)
			if err := srv.Write(req.LBA, buf); err != nil {
				return fmt.Errorf("fidr: bench capacity write: %w", err)
			}
			if !seen[req.LBA] {
				seen[req.LBA] = true
				lbas = append(lbas, req.LBA)
			}
		case trace.OpRead:
			if _, err := srv.Read(req.LBA); err != nil && err != core.ErrNotFound {
				return fmt.Errorf("fidr: bench capacity read: %w", err)
			}
		}
	}
	if err := srv.Flush(); err != nil {
		return err
	}
	wall := time.Since(start)

	// Overwrite phase: most written LBAs get unique, previously unseen
	// content, retiring their old mappings. Shared dedup chunks only die
	// once their last referencing LBA is rewritten, so the sweep must
	// cover nearly all of them; every 16th LBA keeps its data so the GC
	// pass has survivors to move as well as dead chunks to drop.
	for i, lba := range lbas {
		if i%16 == 0 {
			continue
		}
		sh.Block(uint64(1<<40)+uint64(i), buf)
		if err := srv.Write(lba, buf); err != nil {
			return fmt.Errorf("fidr: bench capacity overwrite: %w", err)
		}
	}
	if err := srv.Flush(); err != nil {
		return err
	}

	before := srv.CapacityReport(threshold)
	res, err := srv.Compact(threshold)
	if err != nil {
		return err
	}
	after := srv.CapacityReport(threshold)
	hm := srv.ContainerHeatmap()

	gcRuns := 0
	for _, ev := range journal.Since(0) {
		if ev.Type == "gc_run" {
			gcRuns++
		}
	}
	art.Capacity = &BenchCapacity{
		LogicalWriteBytes:     before.LogicalWriteBytes,
		DedupSavedBytes:       before.DedupSavedBytes,
		CompressionSavedBytes: before.CompressionSavedBytes,
		StoredBytes:           before.StoredBytes,
		ReductionRatio:        before.ReductionRatio,
		GCThreshold:           threshold,
		GarbageBeforeGCBytes:  before.GarbageBytes,
		GarbageAfterGCBytes:   after.GarbageBytes,
		ReclaimedDeadBytes:    after.ReclaimedDeadBytes,
		ContainersCompacted:   res.ContainersCompacted,
		HeatmapBuckets:        len(hm.Buckets),
		GCRunEvents:           gcRuns,
	}
	fillBenchArtifact(art, srv.Stats(), srv.CacheStats().HitRate(), wall, view.Snapshot())
	return nil
}

func runBenchCluster(cfg Config, wp Workload, groups int, art *BenchArtifact) error {
	cl, err := NewCluster(cfg, groups)
	if err != nil {
		return err
	}
	view := cl.EnableObservability(64)
	wall, err := driveBench(cl, wp, cfg.ChunkSize, cfg.Chunking.Mode == chunk.ModeCDC)
	if err != nil {
		return err
	}
	st := cl.Stats()
	// Post-run the cluster is quiescent: per-group stats and the cache
	// counters can be read directly.
	var hits, lookups uint64
	writes := make([]float64, groups)
	for i := 0; i < groups; i++ {
		cs := cl.Group(i).CacheStats()
		hits += cs.Hits
		lookups += cs.Lookups
		gs := cl.Group(i).Stats()
		writes[i] = float64(gs.ClientWrites)
		shard := BenchShard{
			Group:  i,
			Writes: gs.ClientWrites,
			Reads:  gs.ClientReads,
		}
		if st.ClientWrites > 0 {
			shard.WriteShare = float64(gs.ClientWrites) / float64(st.ClientWrites)
		}
		if tot := gs.DuplicateChunks + gs.UniqueChunks; tot > 0 {
			shard.DedupRatio = float64(gs.DuplicateChunks) / float64(tot)
		}
		art.Shards = append(art.Shards, shard)
	}
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(hits) / float64(lookups)
	}
	art.ShardImbalance = imbalance(writes)
	art.CrossShardDupChunks = cl.obs.crossShardDupChunks()
	fillBenchArtifact(art, st, hitRate, wall, view.Snapshot())
	return nil
}

// runBenchArchival drives the Archival workload on a WAL-attached
// server for the artifact body, then measures crash recovery against
// growing log lengths: for each fraction, a fresh server checkpoints a
// base of half the trace, runs that fraction of the remainder, loses
// power (the log device drops everything past its durable image), and
// is timed through RecoverServer + WAL replay.
func runBenchArchival(cfg Config, wp Workload, art *BenchArtifact) error {
	w, err := core.NewWAL(core.NewMemWALDevice())
	if err != nil {
		return err
	}
	c := cfg
	c.WAL = w
	srv, err := NewServer(c)
	if err != nil {
		return err
	}
	view := srv.EnableObservability(nil, 64)
	wall, err := driveBench(srv, wp, cfg.ChunkSize, false)
	if err != nil {
		return err
	}
	st := srv.Stats()
	fillBenchArtifact(art, st, srv.CacheStats().HitRate(), wall, view.Snapshot())
	ws := srv.WALStats()
	art.WALAppendedRecords = ws.AppendedRecords
	art.WALDurableBytes = ws.DurableBytes

	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		pt, err := benchRecoveryPoint(cfg, wp, frac)
		if err != nil {
			return fmt.Errorf("fidr: bench recovery sweep at %.2f: %w", frac, err)
		}
		art.RecoveryPoints = append(art.RecoveryPoints, pt)
	}
	return nil
}

// benchRecoveryPoint runs one crash/recover cycle and times the
// recovery. The base (first half of the trace) is checkpointed so only
// the fraction written after it lives in the WAL at crash time.
func benchRecoveryPoint(cfg Config, wp Workload, frac float64) (BenchRecoveryPoint, error) {
	capacity := uint64(wp.TotalIOs) * 4096 * 2
	if capacity < 1<<28 {
		capacity = 1 << 28
	}
	tssd := ssd.MustNew(ssd.Config{Name: "tssd", CapacityBytes: capacity, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	dssd := ssd.MustNew(ssd.Config{Name: "dssd", CapacityBytes: capacity, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	dev := core.NewMemWALDevice()
	w, err := core.NewWAL(dev)
	if err != nil {
		return BenchRecoveryPoint{}, err
	}
	c := cfg
	c.TableSSD, c.DataSSD, c.WAL = tssd, dssd, w
	srv, err := NewServer(c)
	if err != nil {
		return BenchRecoveryPoint{}, err
	}

	gen, err := trace.NewGenerator(wp)
	if err != nil {
		return BenchRecoveryPoint{}, err
	}
	sh := blockcomp.NewShaper(wp.CompressRatio)
	buf := make([]byte, cfg.ChunkSize)
	base := wp.TotalIOs / 2
	if err := driveBenchN(srv, gen, sh, buf, base); err != nil {
		return BenchRecoveryPoint{}, err
	}
	if err := srv.Checkpoint(); err != nil {
		return BenchRecoveryPoint{}, err
	}
	extra := int(frac * float64(wp.TotalIOs-base))
	if err := driveBenchN(srv, gen, sh, buf, extra); err != nil {
		return BenchRecoveryPoint{}, err
	}
	if err := srv.Flush(); err != nil {
		return BenchRecoveryPoint{}, err
	}

	dev.Crash()
	w2, err := core.NewWAL(dev)
	if err != nil {
		return BenchRecoveryPoint{}, err
	}
	c.WAL = w2
	pt := BenchRecoveryPoint{WALFraction: frac, WALBytes: w2.Stats().DurableBytes}
	start := time.Now()
	rec, err := core.RecoverServer(c)
	if err != nil {
		return BenchRecoveryPoint{}, err
	}
	pt.RecoveryMillis = float64(time.Since(start).Nanoseconds()) / 1e6
	pt.ReplayedRecords = rec.LastRecovery().ReplayedRecords
	return pt, nil
}

// driveBenchN consumes up to n requests from gen against srv.
func driveBenchN(srv *Server, gen *trace.Generator, sh *blockcomp.Shaper, buf []byte, n int) error {
	for i := 0; i < n; i++ {
		req, ok := gen.Next()
		if !ok {
			return nil
		}
		switch req.Op {
		case trace.OpWrite:
			sh.Block(req.ContentSeed, buf)
			if err := srv.Write(req.LBA, buf); err != nil {
				return fmt.Errorf("fidr: bench recovery write: %w", err)
			}
		case trace.OpRead:
			if _, err := srv.Read(req.LBA); err != nil && err != core.ErrNotFound {
				return fmt.Errorf("fidr: bench recovery read: %w", err)
			}
		}
	}
	return nil
}

// driveBench streams the workload synchronously and returns the wall
// time including the final flush. Under CDC the trace's chunk-index LBAs
// become byte-offset extents (lba * chunkSize): each write is ingested
// as a stream segment at its byte position, so identical content still
// dedups while extent addresses never collide.
func driveBench(s Store, wp Workload, chunkSize int, cdcExtents bool) (time.Duration, error) {
	gen, err := trace.NewGenerator(wp)
	if err != nil {
		return 0, err
	}
	sh := blockcomp.NewShaper(wp.CompressRatio)
	buf := make([]byte, chunkSize)
	addr := func(lba uint64) uint64 {
		if cdcExtents {
			return lba * uint64(chunkSize)
		}
		return lba
	}
	start := time.Now()
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		switch req.Op {
		case trace.OpWrite:
			sh.Block(req.ContentSeed, buf)
			if err := s.Write(addr(req.LBA), buf); err != nil {
				return 0, fmt.Errorf("fidr: bench %s write: %w", wp.Name, err)
			}
		case trace.OpRead:
			if _, err := s.Read(addr(req.LBA)); err != nil && err != core.ErrNotFound {
				return 0, fmt.Errorf("fidr: bench %s read: %w", wp.Name, err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// fillBenchArtifact distills run stats and a metrics snapshot into art.
func fillBenchArtifact(art *BenchArtifact, st Stats, cacheHit float64, wall time.Duration, ms []metrics.Metric) {
	art.WallSeconds = wall.Seconds()
	if art.WallSeconds > 0 {
		art.ThroughputMBps = float64(st.ClientBytes) / 1e6 / art.WallSeconds
	}
	if tot := st.DuplicateChunks + st.UniqueChunks; tot > 0 {
		art.DedupRatio = float64(st.DuplicateChunks) / float64(tot)
	}
	art.ReductionRatio = st.ReductionRatio()
	art.CacheHitRate = cacheHit
	art.StageLatencyNS = map[string]BenchLatency{}
	art.RequestLatencyNS = map[string]BenchLatency{}
	art.DeviceUtilization = map[string]float64{}
	wallNS := float64(wall.Nanoseconds())
	for _, m := range ms {
		// Per-group series repeat the merged unprefixed ones; skip them.
		if strings.HasPrefix(m.Name, "group") {
			continue
		}
		if m.Kind == "counter" {
			switch m.Name {
			case "hostmodel.dram_bytes":
				art.HostDRAMBytes = uint64(m.Value)
			case "hostmodel.dram_payload_bytes":
				art.HostDRAMPayloadBytes = uint64(m.Value)
			case "pcie.p2p_bytes":
				art.PCIeP2PBytes = uint64(m.Value)
			case "pcie.root_bytes":
				art.PCIeRootBytes = uint64(m.Value)
			}
			if dev, ok := strings.CutSuffix(m.Name, ".busy_ns"); ok && wallNS > 0 {
				util := m.Value / wallNS
				if util > 1 {
					util = 1
				}
				art.DeviceUtilization[dev] = util
			}
			continue
		}
		if m.Kind != "hist" || m.Hist.Count == 0 {
			continue
		}
		name, ok := strings.CutSuffix(m.Name, ".ns")
		if !ok {
			// The WAL names its commit-fsync histogram with an
			// underscore suffix; surface it alongside request latencies.
			if m.Name != "wal.fsync_ns" {
				continue
			}
			name = "wal.fsync"
		}
		lat := BenchLatency{
			Count:  m.Hist.Count,
			MeanNS: m.Hist.Mean,
			P50NS:  m.Hist.P50,
			P90NS:  m.Hist.P90,
			P99NS:  m.Hist.P99,
			MaxNS:  m.Hist.Max,
		}
		switch {
		case strings.HasPrefix(name, "stage."):
			art.StageLatencyNS[strings.TrimPrefix(name, "stage.")] = lat
		case strings.HasPrefix(name, "latency.") || strings.HasPrefix(name, "cluster.") ||
			strings.HasPrefix(name, "wal."):
			art.RequestLatencyNS[name] = lat
		}
	}
}

// crossShardDupChunks reads the tracked cross-shard duplicate count.
func (o *clusterObs) crossShardDupChunks() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.extra
}

// WriteBenchArtifact writes art to dir/BENCH_<experiment>.json and
// returns the path.
func WriteBenchArtifact(dir string, art BenchArtifact) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+art.Experiment+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
