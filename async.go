package fidr

import (
	"fmt"
	"sync"
)

// Store is the chunk-store surface shared by Server and Cluster.
type Store interface {
	Write(lba uint64, data []byte) error
	Read(lba uint64) ([]byte, error)
	Flush() error
}

var (
	_ Store = (*Server)(nil)
	_ Store = (*Cluster)(nil)
)

// Async is a pipelined front-end over a Store: callers submit requests
// without waiting, a fixed worker pool owns the store(s), and bounded
// queues provide backpressure — the software shape of the paper's device
// manager, which keeps every accelerator busy while requests stream in.
//
// A plain Server gets one worker (it is single-owner by design). A
// Cluster gets one worker per device group, so groups run genuinely in
// parallel, matching §5.6's independent per-switch pipelines.
type Async struct {
	queues []chan asyncReq
	route  func(lba uint64) int
	wg     sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	flushErr error
}

type asyncReq struct {
	write bool
	lba   uint64
	data  []byte
	done  chan AsyncResult
}

// AsyncResult carries a completed request's outcome.
type AsyncResult struct {
	LBA  uint64
	Data []byte // read payload
	Err  error
}

// NewAsync builds a pipelined front-end. depth is the per-worker queue
// depth (backpressure bound).
func NewAsync(s Store, depth int) (*Async, error) {
	if depth < 1 {
		return nil, fmt.Errorf("fidr: queue depth %d", depth)
	}
	a := &Async{}
	if c, ok := s.(*Cluster); ok {
		a.queues = make([]chan asyncReq, c.Groups())
		a.route = c.GroupFor
		for i := range a.queues {
			a.queues[i] = make(chan asyncReq, depth)
			a.wg.Add(1)
			go a.worker(c.Group(i), a.queues[i])
		}
		return a, nil
	}
	a.queues = []chan asyncReq{make(chan asyncReq, depth)}
	a.route = func(uint64) int { return 0 }
	a.wg.Add(1)
	go a.worker(s, a.queues[0])
	return a, nil
}

func (a *Async) worker(s Store, q chan asyncReq) {
	defer a.wg.Done()
	for req := range q {
		var res AsyncResult
		res.LBA = req.lba
		if req.write {
			res.Err = s.Write(req.lba, req.data)
		} else {
			res.Data, res.Err = s.Read(req.lba)
		}
		req.done <- res
	}
	// Drain point: each worker flushes its own store on shutdown;
	// failures surface through Close.
	if err := s.Flush(); err != nil {
		a.mu.Lock()
		if a.flushErr == nil {
			a.flushErr = err
		}
		a.mu.Unlock()
	}
}

// WriteAsync submits a write; the returned channel delivers one result.
// The data slice is copied before submission.
func (a *Async) WriteAsync(lba uint64, data []byte) <-chan AsyncResult {
	done := make(chan AsyncResult, 1)
	cp := make([]byte, len(data))
	copy(cp, data)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		done <- AsyncResult{LBA: lba, Err: fmt.Errorf("fidr: async store closed")}
		return done
	}
	q := a.queues[a.route(lba)]
	a.mu.Unlock()
	q <- asyncReq{write: true, lba: lba, data: cp, done: done}
	return done
}

// ReadAsync submits a read; the returned channel delivers the payload.
func (a *Async) ReadAsync(lba uint64) <-chan AsyncResult {
	done := make(chan AsyncResult, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		done <- AsyncResult{LBA: lba, Err: fmt.Errorf("fidr: async store closed")}
		return done
	}
	q := a.queues[a.route(lba)]
	a.mu.Unlock()
	q <- asyncReq{lba: lba, done: done}
	return done
}

// Write submits and waits (synchronous convenience).
func (a *Async) Write(lba uint64, data []byte) error {
	return (<-a.WriteAsync(lba, data)).Err
}

// Read submits and waits.
func (a *Async) Read(lba uint64) ([]byte, error) {
	r := <-a.ReadAsync(lba)
	return r.Data, r.Err
}

// Close stops accepting requests, drains the queues, flushes every
// underlying store and returns the first flush error.
func (a *Async) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	for _, q := range a.queues {
		close(q)
	}
	a.wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushErr
}
