package fidr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/health"
	"fidr/internal/trace/span"
)

// Store is the chunk-store surface shared by Server and Cluster.
type Store interface {
	Write(lba uint64, data []byte) error
	Read(lba uint64) ([]byte, error)
	Flush() error
}

// tracedStore is the traced variant of Store. Both Server and Cluster
// implement it; the async front-end uses it to carry the measured queue
// wait into the back-end's per-request trace.
type tracedStore interface {
	WriteTraced(lba uint64, data []byte, tc *TraceContext) error
	ReadTraced(lba uint64, tc *TraceContext) ([]byte, error)
}

var (
	_ Store       = (*Server)(nil)
	_ Store       = (*Cluster)(nil)
	_ tracedStore = (*Server)(nil)
	_ tracedStore = (*Cluster)(nil)
)

// Async is a pipelined front-end over a Store: callers submit requests
// without waiting, a fixed worker pool owns the store(s), and bounded
// queues provide backpressure — the software shape of the paper's device
// manager, which keeps every accelerator busy while requests stream in.
//
// A plain Server gets one worker (it is single-owner by design). A
// Cluster gets one worker per device group, so groups run genuinely in
// parallel, matching §5.6's independent per-switch pipelines.
type Async struct {
	queues []chan asyncReq
	route  func(lba uint64) int
	wg     sync.WaitGroup

	// hbs holds one liveness heartbeat per worker; the health plane's
	// watchdog probes them. completed counts finished requests across
	// all workers (the progress signal for stuck-queue detection).
	hbs       []*health.Heartbeat
	completed atomic.Uint64

	// Front-end metrics; nil until EnableObservability.
	writes, reads *metrics.Counter
	queueWaitNS   *metrics.Histogram
	inflight      *metrics.Gauge
	// col, when set, receives one "async.queue" span per sampled traced
	// request (the queue-wait link in the distributed trace tree).
	col *span.Collector

	mu       sync.Mutex
	closed   bool
	flushErr error
}

type asyncReq struct {
	write  bool
	lba    uint64
	data   []byte
	submit time.Time // enqueue time; queue wait = dequeue - submit
	ctx    span.Context
	done   chan AsyncResult
	// fn, when set, is a maintenance closure run on the worker goroutine
	// against the store it owns (GC, checkpoint, capacity reporting —
	// anything that must see quiesced single-writer state).
	fn func(s Store) error
}

// AsyncResult carries a completed request's outcome.
type AsyncResult struct {
	LBA  uint64
	Data []byte // read payload
	Err  error
}

// NewAsync builds a pipelined front-end. depth is the per-worker queue
// depth (backpressure bound).
func NewAsync(s Store, depth int) (*Async, error) {
	if depth < 1 {
		return nil, fmt.Errorf("fidr: queue depth %d", depth)
	}
	a := &Async{}
	if c, ok := s.(*Cluster); ok {
		a.queues = make([]chan asyncReq, c.Groups())
		a.hbs = make([]*health.Heartbeat, c.Groups())
		a.route = c.GroupFor
		for i := range a.queues {
			a.queues[i] = make(chan asyncReq, depth)
			a.hbs[i] = &health.Heartbeat{}
			a.wg.Add(1)
			go a.worker(c.Group(i), a.queues[i], a.hbs[i])
		}
		return a, nil
	}
	a.queues = []chan asyncReq{make(chan asyncReq, depth)}
	a.hbs = []*health.Heartbeat{{}}
	a.route = func(uint64) int { return 0 }
	a.wg.Add(1)
	go a.worker(s, a.queues[0], a.hbs[0])
	return a, nil
}

// Workers reports the worker (and queue) count: one for a Server, one
// per device group for a Cluster.
func (a *Async) Workers() int { return len(a.queues) }

// WorkerHeartbeat returns worker i's liveness heartbeat for watchdog
// probing (health.HeartbeatProbe).
func (a *Async) WorkerHeartbeat(i int) *health.Heartbeat { return a.hbs[i] }

// QueueDepth reports queue i's current depth (requests waiting plus
// being picked up), the companion signal for health.ProgressProbe.
func (a *Async) QueueDepth(i int) int { return len(a.queues[i]) }

// Completed reports the total requests finished by all workers since
// start (monotonic; the progress counter for stuck-queue probes).
func (a *Async) Completed() uint64 { return a.completed.Load() }

// DepthGatherer exposes per-worker queue depths as gauges
// (async.queue_depth.g<i>), derived at scrape time. Like all
// process-wide health series it belongs once at the top of a composed
// view, not inside group registries.
func (a *Async) DepthGatherer() metrics.Gatherer {
	return metrics.GathererFunc(func() []metrics.Metric {
		out := make([]metrics.Metric, len(a.queues))
		for i := range a.queues {
			out[i] = metrics.Metric{
				Kind: "gauge", Name: fmt.Sprintf("async.queue_depth.g%d", i),
				Value: float64(len(a.queues[i])),
			}
		}
		return out
	})
}

// InjectStall is a test hook: it enqueues a maintenance op on worker
// 0's queue that sleeps for d, simulating a wedged worker (the
// heartbeat stays busy without beating, queued work stops draining).
// Non-blocking: a full queue returns an error instead of deadlocking
// the caller. The result channel is drained internally.
//
// It exists for the watchdog's end-to-end test (fidrd -debug-hooks
// exposes it as POST /debug/stall) and must never be reachable in
// production configurations.
func (a *Async) InjectStall(d time.Duration) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("fidr: async store closed")
	}
	q := a.queues[0]
	a.mu.Unlock()
	done := make(chan AsyncResult, 1)
	select {
	case q <- asyncReq{fn: func(Store) error { time.Sleep(d); return nil }, done: done}:
		return nil
	default:
		return fmt.Errorf("fidr: queue full, stall not injected")
	}
}

// EnableObservability registers the front-end's own series on reg:
// async.writes / async.reads counters, the async.queue_wait.ns
// histogram, and the async.inflight gauge. Call before submitting
// traffic. The queue wait also reaches the back-end's stage histograms
// and request traces via TraceContext, when the store has
// observability enabled too.
func (a *Async) EnableObservability(reg *metrics.Registry) {
	a.writes = reg.Counter("async.writes")
	a.reads = reg.Counter("async.reads")
	a.queueWaitNS = reg.Histogram("async.queue_wait.ns")
	a.inflight = reg.Gauge("async.inflight")
}

// SetSpanCollector publishes the front-end's queue spans into col.
// Call before submitting traffic.
func (a *Async) SetSpanCollector(col *span.Collector) { a.col = col }

func (a *Async) worker(s Store, q chan asyncReq, hb *health.Heartbeat) {
	defer a.wg.Done()
	ts, traced := s.(tracedStore)
	for req := range q {
		if req.fn != nil {
			// Maintenance op: runs with the worker between requests, so
			// it owns the store exactly like a write does. It is bracketed
			// by the heartbeat too — a hung GC or checkpoint is exactly
			// the stall the watchdog exists to catch.
			hb.Begin("")
			req.done <- AsyncResult{Err: req.fn(s)}
			hb.End()
			continue
		}
		var traceID string
		if req.ctx.Valid() {
			traceID = req.ctx.Trace.String()
		}
		hb.Begin(traceID)
		wait := time.Since(req.submit)
		if a.queueWaitNS != nil {
			a.queueWaitNS.Observe(float64(wait.Nanoseconds()))
		}
		var res AsyncResult
		res.LBA = req.lba
		if traced {
			tc := &TraceContext{
				Start: req.submit,
				Spans: []Span{{Stage: StageQueueWait, Dur: wait}},
			}
			if req.ctx.Valid() {
				// The queue gets its own tree span between the caller's
				// span and the core request, so the rendered trace shows
				// where the request sat. The core request then parents
				// under the queue span.
				queueID := span.NewSpanID()
				if req.ctx.Sampled && a.col != nil {
					a.col.Add(span.Span{
						Trace: req.ctx.Trace, ID: queueID, Parent: req.ctx.Parent,
						Name: "async.queue", Start: req.submit, Dur: wait,
						QueueDepth: len(q) + 1, LBA: req.lba,
					})
				}
				tc.Trace = req.ctx.Trace
				tc.Parent = queueID
				tc.Sampled = req.ctx.Sampled
			}
			if req.write {
				tc.Op = "awrite"
				res.Err = ts.WriteTraced(req.lba, req.data, tc)
			} else {
				tc.Op = "aread"
				res.Data, res.Err = ts.ReadTraced(req.lba, tc)
			}
		} else if req.write {
			res.Err = s.Write(req.lba, req.data)
		} else {
			res.Data, res.Err = s.Read(req.lba)
		}
		if a.inflight != nil {
			a.inflight.Add(-1)
		}
		a.completed.Add(1)
		hb.End()
		req.done <- res
	}
	// Drain point: each worker flushes its own store on shutdown;
	// failures surface through Close.
	if err := s.Flush(); err != nil {
		a.mu.Lock()
		if a.flushErr == nil {
			a.flushErr = err
		}
		a.mu.Unlock()
	}
}

// WriteAsync submits a write; the returned channel delivers one result.
// The data slice is copied before submission.
func (a *Async) WriteAsync(lba uint64, data []byte) <-chan AsyncResult {
	return a.WriteCtx(lba, data, span.Context{})
}

// WriteCtx is WriteAsync carrying a wire trace context through the
// queue into the back-end pipeline.
func (a *Async) WriteCtx(lba uint64, data []byte, sc span.Context) <-chan AsyncResult {
	done := make(chan AsyncResult, 1)
	cp := make([]byte, len(data))
	copy(cp, data)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		done <- AsyncResult{LBA: lba, Err: fmt.Errorf("fidr: async store closed")}
		return done
	}
	q := a.queues[a.route(lba)]
	a.mu.Unlock()
	if a.writes != nil {
		a.writes.Inc()
		a.inflight.Add(1)
	}
	q <- asyncReq{write: true, lba: lba, data: cp, submit: time.Now(), ctx: sc, done: done}
	return done
}

// ReadAsync submits a read; the returned channel delivers the payload.
func (a *Async) ReadAsync(lba uint64) <-chan AsyncResult {
	return a.ReadCtx(lba, span.Context{})
}

// ReadCtx is ReadAsync carrying a wire trace context.
func (a *Async) ReadCtx(lba uint64, sc span.Context) <-chan AsyncResult {
	done := make(chan AsyncResult, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		done <- AsyncResult{LBA: lba, Err: fmt.Errorf("fidr: async store closed")}
		return done
	}
	q := a.queues[a.route(lba)]
	a.mu.Unlock()
	if a.reads != nil {
		a.reads.Inc()
		a.inflight.Add(1)
	}
	q <- asyncReq{lba: lba, submit: time.Now(), ctx: sc, done: done}
	return done
}

// Write submits and waits (synchronous convenience).
func (a *Async) Write(lba uint64, data []byte) error {
	return (<-a.WriteAsync(lba, data)).Err
}

// Read submits and waits.
func (a *Async) Read(lba uint64) ([]byte, error) {
	r := <-a.ReadAsync(lba)
	return r.Data, r.Err
}

// Maintenance runs fn once per worker, each invocation on the worker
// goroutine against the store that worker owns (a single Server, or one
// cluster group per worker). The call waits for every invocation and
// returns the first error. This is how GC, checkpointing and capacity
// reporting reach single-writer server state without racing the write
// path: the closure runs between queued requests, never beside them.
func (a *Async) Maintenance(fn func(s Store) error) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("fidr: async store closed")
	}
	chans := make([]chan AsyncResult, len(a.queues))
	for i, q := range a.queues {
		chans[i] = make(chan AsyncResult, 1)
		q <- asyncReq{fn: fn, done: chans[i]}
	}
	a.mu.Unlock()
	var first error
	for _, ch := range chans {
		if res := <-ch; res.Err != nil && first == nil {
			first = res.Err
		}
	}
	return first
}

// Close stops accepting requests, drains the queues, flushes every
// underlying store and returns the first flush error.
func (a *Async) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	for _, q := range a.queues {
		close(q)
	}
	a.wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushErr
}
