package fidr_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/metrics"
)

// TestGroupForUniformity bounds the sharding function's skew with a
// chi-squared statistic over sequential LBA ranges — the common client
// pattern, and the one a weak mixer would shard worst.
func TestGroupForUniformity(t *testing.T) {
	const groups = 4
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, start := range []uint64{0, 1 << 20, 1 << 40} {
		const n = 4000
		var counts [groups]int
		for i := uint64(0); i < n; i++ {
			g := c.GroupFor(start + i)
			if g < 0 || g >= groups {
				t.Fatalf("GroupFor(%d) = %d out of range", start+i, g)
			}
			counts[g]++
		}
		exp := float64(n) / groups
		var chi2 float64
		for _, got := range counts {
			d := float64(got) - exp
			chi2 += d * d / exp
		}
		// df = 3; P(chi2 > 16.3) < 0.001 for a uniform sharder. A
		// generous 30 keeps the test deterministic-in-practice while
		// still catching any structural bias (a modulo sharder on a
		// sequential range scores thousands).
		if chi2 > 30 {
			t.Errorf("start %d: chi2 = %.1f (counts %v); sharding skewed", start, chi2, counts)
		}
	}
}

// TestClusterStatsAggregation checks Cluster.Stats and Cluster.Snapshot
// against a field-by-field sum over the groups.
func TestClusterStatsAggregation(t *testing.T) {
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 600; i++ {
		if err := c.Write(i, fidr.MakeChunk(i%50, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := c.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	var want fidr.Stats
	for i := 0; i < c.Groups(); i++ {
		s := c.Group(i).Stats()
		want.ClientWrites += s.ClientWrites
		want.ClientReads += s.ClientReads
		want.ClientBytes += s.ClientBytes
		want.DuplicateChunks += s.DuplicateChunks
		want.UniqueChunks += s.UniqueChunks
		want.StoredBytes += s.StoredBytes
		want.NICReadHits += s.NICReadHits
		want.ReadCacheHits += s.ReadCacheHits
		want.PendingReads += s.PendingReads
		want.BatchesProcessed += s.BatchesProcessed
		want.Mispredictions += s.Mispredictions
		want.LogicalWriteBytes += s.LogicalWriteBytes
		want.DedupSavedBytes += s.DedupSavedBytes
		want.CompressionSavedBytes += s.CompressionSavedBytes
		want.DeletedFingerprints += s.DeletedFingerprints
		want.ReclaimedDeadBytes += s.ReclaimedDeadBytes
	}
	got := c.Stats()
	if got != want {
		t.Fatalf("Stats() = %+v, want per-group sum %+v", got, want)
	}
	if got.ClientWrites != 600 || got.ClientReads != 100 {
		t.Fatalf("writes/reads = %d/%d", got.ClientWrites, got.ClientReads)
	}

	snap := c.Snapshot()
	var wantClient uint64
	for i := 0; i < c.Groups(); i++ {
		wantClient += c.Group(i).Ledger().Snapshot().ClientBytes
	}
	if snap.ClientBytes != wantClient {
		t.Fatalf("Snapshot().ClientBytes = %d, want %d", snap.ClientBytes, wantClient)
	}
}

// driveObservedCluster writes 400 chunks (10 distinct contents, so most
// content lands in several shards) through an instrumented cluster.
func driveObservedCluster(t *testing.T, groups int) (*fidr.Cluster, metrics.Gatherer) {
	t.Helper()
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), groups)
	if err != nil {
		t.Fatal(err)
	}
	view := c.EnableObservability(32)
	for i := uint64(0); i < 400; i++ {
		if err := c.Write(i, fidr.MakeChunk(i%10, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if _, err := c.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	return c, view
}

func TestClusterGathererMergedAndPrefixed(t *testing.T) {
	_, view := driveObservedCluster(t, 4)
	dump := metrics.DumpMetrics(view.Snapshot())

	// Merged series: the unprefixed core.writes must equal the total.
	if !strings.Contains(dump, "counter core.writes 400") {
		t.Errorf("merged core.writes missing or wrong:\n%s", dump)
	}
	// Per-group series appear under every group prefix.
	for _, p := range []string{"group0.", "group1.", "group2.", "group3."} {
		if !strings.Contains(dump, "counter "+p+"core.writes ") {
			t.Errorf("%score.writes missing", p)
		}
		if !strings.Contains(dump, "gauge "+p+"derived.write_share ") {
			t.Errorf("%sderived.write_share missing", p)
		}
		if !strings.Contains(dump, "gauge "+p+"derived.dedup_ratio ") {
			t.Errorf("%sderived.dedup_ratio missing", p)
		}
	}
	// Cluster-level series.
	for _, name := range []string{
		"gauge cluster.groups 4",
		"gauge cluster.shard_imbalance ",
		"gauge cluster.cross_shard_dup_chunks ",
		"hist cluster.write.ns ",
		"hist cluster.read.ns ",
	} {
		if !strings.Contains(dump, name) {
			t.Errorf("%q missing from dump", name)
		}
	}
	// The dump is deterministic: a second snapshot of the quiescent
	// cluster renders identically.
	if again := metrics.DumpMetrics(view.Snapshot()); again != dump {
		t.Error("dump not deterministic across snapshots")
	}
}

func TestClusterDerivedGauges(t *testing.T) {
	c, view := driveObservedCluster(t, 4)

	var shareSum, imbalance, crossDup float64
	haveImbalance := false
	for _, m := range view.Snapshot() {
		switch {
		case strings.HasSuffix(m.Name, "derived.write_share"):
			shareSum += m.Value
		case m.Name == "cluster.shard_imbalance":
			imbalance, haveImbalance = m.Value, true
		case m.Name == "cluster.cross_shard_dup_chunks":
			crossDup = m.Value
		}
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("write shares sum to %.4f, want 1", shareSum)
	}
	if !haveImbalance || imbalance < 0 || imbalance > 1 {
		t.Errorf("shard imbalance = %v (present %v)", imbalance, haveImbalance)
	}
	// 10 distinct contents over 400 sharded LBAs: nearly every content
	// must land in more than one shard.
	if crossDup < 10 {
		t.Errorf("cross-shard duplicates = %v, want >= 10", crossDup)
	}

	// The gauge agrees with the storage-level accounting: extra copies
	// = cluster uniques minus global distinct contents.
	extra := float64(c.Stats().UniqueChunks - 10)
	if crossDup != extra {
		t.Errorf("cross_shard_dup_chunks = %v, but cluster stores %v extra uniques", crossDup, extra)
	}
}

// TestClusterPromExposition is the acceptance path: a cluster's
// gatherer served over HTTP with ?format=prom yields valid Prometheus
// text exposition carrying per-group and merged series.
func TestClusterPromExposition(t *testing.T) {
	c, view := driveObservedCluster(t, 4)
	srv := httptest.NewServer(metrics.HTTPHandler(view, func() string {
		return core.RenderTraces(c.RecentTraces())
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prom := string(body)
	for _, want := range []string{
		"# TYPE core_writes counter",
		"core_writes 400",
		"group0_core_writes ",
		"group3_core_writes ",
		"cluster_groups 4",
		"group0_derived_write_share ",
		"cluster_write_ns_bucket{le=\"+Inf\"}",
		"cluster_write_ns_sum ",
		"cluster_write_ns_count ",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// The trace endpoint serves merged cluster traces.
	tresp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	tbody, _ := io.ReadAll(tresp.Body)
	if !strings.Contains(string(tbody), "write") {
		t.Error("trace endpoint returned no write traces")
	}
}

func TestClusterRecentTracesMergedNewestFirst(t *testing.T) {
	c, _ := driveObservedCluster(t, 2)
	ts := c.RecentTraces()
	if len(ts) == 0 {
		t.Fatal("no traces")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].Start.After(ts[i-1].Start) {
			t.Fatalf("traces not newest-first at %d", i)
		}
	}
}
