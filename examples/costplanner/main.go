// Costplanner: size a PB-scale data-reduction server with the paper's
// §7.8 cost model — sweep target capacity and throughput and print the
// dollar breakdown and savings for FIDR versus a no-reduction server and
// the partially-reducing baseline.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"fidr/internal/cost"
)

func main() {
	m := cost.NewModel()
	// Host intensities from the paper's measured anchors: FIDR ~0.28
	// ns/B and 0.9 B/B; baseline 0.893 ns/B and 4.23 B/B (§3.2, §7).
	fidrW := cost.Workload{DedupRatio: 0.5, CompRatio: 0.5, CPUNsPerByte: 0.28, MemPerByte: 0.9}
	baseW := cost.Workload{DedupRatio: 0.5, CompRatio: 0.5, CPUNsPerByte: 0.893, MemPerByte: 4.23}

	fmt.Printf("baseline per-socket wall: %.1f GB/s (paper: fails beyond ~25 GB/s)\n\n",
		m.BaselineMaxThroughput(baseW)/1e9)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "capacity\trate\tno-reduction\tFIDR\tsaving\tbaseline\t")
	for _, capTB := range []float64{100, 250, 500, 1000} {
		capacity := capTB * 1e12
		for _, gbps := range []float64{25, 75} {
			f := m.FIDR(capacity, gbps*1e9, fidrW)
			b := m.Baseline(capacity, gbps*1e9, baseW)
			raw := m.NoReduction(capacity).Total()
			fmt.Fprintf(w, "%.0f TB\t%.0f GB/s\t$%.0fK\t$%.0fK\t%.0f%%\t$%.0fK\t\n",
				capTB, gbps, raw/1e3, f.Total()/1e3, 100*m.Saving(f, capacity), b.Total()/1e3)
		}
	}
	w.Flush()

	fmt.Println("\nFIDR breakdown at 500 TB / 75 GB/s:")
	f := m.FIDR(500e12, 75e9, fidrW)
	w2 := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w2, "data SSDs\t$%.1fK\t\n", f.DataSSD/1e3)
	fmt.Fprintf(w2, "table SSDs\t$%.1fK\t\n", f.TableSSD/1e3)
	fmt.Fprintf(w2, "DRAM\t$%.1fK\t\n", f.DRAM/1e3)
	fmt.Fprintf(w2, "CPU\t$%.1fK\t\n", f.CPU/1e3)
	fmt.Fprintf(w2, "FPGAs\t$%.1fK\t\n", f.FPGA/1e3)
	fmt.Fprintf(w2, "total\t$%.1fK\t\n", f.Total()/1e3)
	w2.Flush()
	fmt.Println("\npaper (Figure 15): saving falls from 67% at 25 GB/s to 58% at 75 GB/s at 500 TB")
}
