// Backupdedup: content-defined chunking over a byte stream — the classic
// backup-deduplication scenario the paper contrasts with its fixed 4-KB
// inline design (§2.1.1: variable chunking is too compute-heavy for
// inline Tbps reduction, but it shines when streams shift by insertion).
//
// The example builds three "nightly backups" of a synthetic file, where
// each night inserts a few bytes near the front. Fixed chunking loses all
// alignment after the insertion; CDC resynchronizes and dedups the tail.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"fidr/internal/chunk"
	"fidr/internal/fingerprint"
)

const fileSize = 1 << 20 // 1 MiB synthetic file

func makeBackups() [][]byte {
	base := make([]byte, fileSize)
	rand.New(rand.NewSource(99)).Read(base)
	night2 := append(append([]byte("day2-header!"), base[:5000]...), base[5000:]...)
	night3 := append(append([]byte("dddday3-hdr"), night2[:100]...), night2[100:]...)
	return [][]byte{base, night2, night3}
}

// dedupFixed deduplicates the streams with fixed 4-KB chunks.
func dedupFixed(streams [][]byte) (total, unique int) {
	seen := map[fingerprint.FP]bool{}
	for _, s := range streams {
		for off := 0; off < len(s); off += 4096 {
			end := off + 4096
			if end > len(s) {
				end = len(s)
			}
			total++
			fp := fingerprint.Of(s[off:end])
			if !seen[fp] {
				seen[fp] = true
				unique++
			}
		}
	}
	return
}

// dedupCDC deduplicates with content-defined chunking.
func dedupCDC(streams [][]byte) (total, unique int) {
	c := chunk.NewCDC(2048, 8192, 65536)
	seen := map[fingerprint.FP]bool{}
	for _, s := range streams {
		for _, ch := range c.Split(s) {
			total++
			fp := fingerprint.Of(ch.Data)
			if !seen[fp] {
				seen[fp] = true
				unique++
			}
		}
	}
	return
}

func main() {
	backups := makeBackups()
	fmt.Printf("three nightly backups of a %d-KiB file, bytes inserted near the front each night\n\n", fileSize/1024)

	ft, fu := dedupFixed(backups)
	ct, cu := dedupCDC(backups)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "chunking\tchunks\tunique\tdedup ratio")
	fmt.Fprintf(w, "fixed 4 KiB\t%d\t%d\t%.1f%%\n", ft, fu, 100*(1-float64(fu)/float64(ft)))
	fmt.Fprintf(w, "content-defined\t%d\t%d\t%.1f%%\n", ct, cu, 100*(1-float64(cu)/float64(ct)))
	w.Flush()

	fmt.Println("\nfixed chunking loses alignment after every insertion (near-zero dedup);")
	fmt.Println("CDC resynchronizes within a few chunks and dedups the unshifted tail.")
	fmt.Println("FIDR still uses fixed 4-KB chunks inline: block storage is write-in-place")
	fmt.Println("(no insertions), and CDC's rolling hash is too expensive at Tbps rates (§2.1.1).")
}
