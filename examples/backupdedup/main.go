// Backupdedup: content-defined chunking over a byte stream — the classic
// backup-deduplication scenario the paper contrasts with its fixed 4-KB
// inline design (§2.1.1: variable chunking is too compute-heavy for
// inline Tbps reduction, but it shines when streams shift by insertion).
//
// The example builds three "nightly backups" of a synthetic file, where
// each night inserts a few bytes near the front. Fixed chunking loses all
// alignment after the insertion; CDC resynchronizes and dedups the tail.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"fidr/internal/chunk"
	"fidr/internal/fingerprint"
)

const fileSize = 1 << 20 // 1 MiB synthetic file

func makeBackups() [][]byte {
	base := make([]byte, fileSize)
	rand.New(rand.NewSource(99)).Read(base)
	night2 := append(append([]byte("day2-header!"), base[:5000]...), base[5000:]...)
	night3 := append(append([]byte("dddday3-hdr"), night2[:100]...), night2[100:]...)
	return [][]byte{base, night2, night3}
}

// dedupFixed deduplicates the streams with fixed 4-KB chunks.
func dedupFixed(streams [][]byte) (total, unique int) {
	seen := map[fingerprint.FP]bool{}
	for _, s := range streams {
		for off := 0; off < len(s); off += 4096 {
			end := off + 4096
			if end > len(s) {
				end = len(s)
			}
			total++
			fp := fingerprint.Of(s[off:end])
			if !seen[fp] {
				seen[fp] = true
				unique++
			}
		}
	}
	return
}

// dedupCDC deduplicates with content-defined chunking. Each stream is
// its own extent space, so Split gets a per-stream base offset far
// enough apart that extents never collide.
func dedupCDC(streams [][]byte) (total, unique int) {
	c := chunk.NewCDC(2048, 8192, 32768)
	seen := map[fingerprint.FP]bool{}
	for si, s := range streams {
		for _, ch := range c.Split(uint64(si)<<32, s) {
			total++
			fp := fingerprint.Of(ch.Data)
			if !seen[fp] {
				seen[fp] = true
				unique++
			}
		}
	}
	return
}

// chunkingRate measures single-core chunking throughput in GB/s over
// the backup streams, for the skip-ahead fast path and the retained
// scalar reference it is proven byte-identical to.
func chunkingRate(streams [][]byte) (fastGBs, refGBs float64) {
	c := chunk.NewCDC(2048, 8192, 32768)
	const rounds = 20
	var bytes int64
	var scratch []int
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, s := range streams {
			scratch = c.AppendBoundaries(scratch[:0], s)
			bytes += int64(len(s))
		}
	}
	fastGBs = float64(bytes) / time.Since(start).Seconds() / 1e9
	bytes = 0
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, s := range streams {
			scratch = c.ReferenceBoundaries(scratch[:0], s)
			bytes += int64(len(s))
		}
	}
	refGBs = float64(bytes) / time.Since(start).Seconds() / 1e9
	return
}

func main() {
	backups := makeBackups()
	fmt.Printf("three nightly backups of a %d-KiB file, bytes inserted near the front each night\n\n", fileSize/1024)

	ft, fu := dedupFixed(backups)
	ct, cu := dedupCDC(backups)
	fastGBs, refGBs := chunkingRate(backups)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "chunking\tchunks\tunique\tdedup ratio")
	fmt.Fprintf(w, "fixed 4 KiB\t%d\t%d\t%.1f%%\n", ft, fu, 100*(1-float64(fu)/float64(ft)))
	fmt.Fprintf(w, "content-defined\t%d\t%d\t%.1f%%\n", ct, cu, 100*(1-float64(cu)/float64(ct)))
	w.Flush()

	fmt.Printf("\nchunking throughput (single core): %.2f GB/s fast path, %.2f GB/s scalar reference (%.1fx)\n",
		fastGBs, refGBs, fastGBs/refGBs)
	fmt.Println("\nfixed chunking loses alignment after every insertion (near-zero dedup);")
	fmt.Println("CDC resynchronizes within a few chunks and dedups the unshifted tail.")
	fmt.Println("The paper keeps fixed 4-KB chunks inline (§2.1.1: rolling hashes are too")
	fmt.Println("expensive at Tbps rates); the skip-ahead chunker revisits that trade-off —")
	fmt.Println("run fidrbench with -chunker=cdc to measure it end to end.")
}
