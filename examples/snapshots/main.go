// Snapshots: point-in-time snapshots, garbage collection and fsck — the
// operational features deduplicated storage gives almost for free, built
// on the FIDR engine's reference-counted metadata.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidr"
)

func main() {
	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	cfg.ContainerSize = 64 << 10
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Day 0: write the volume.
	fmt.Println("writing 256 chunks (day 0)...")
	for lba := uint64(0); lba < 256; lba++ {
		if err := srv.Write(lba, fidr.MakeChunk(lba, 0.5)); err != nil {
			log.Fatal(err)
		}
	}
	snap, err := srv.CreateSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %d taken (no data copied: %d unique chunks before and after)\n",
		snap, srv.Stats().UniqueChunks)

	// Day 1: overwrite most of the volume.
	fmt.Println("overwriting 200 chunks (day 1)...")
	for lba := uint64(0); lba < 200; lba++ {
		if err := srv.Write(lba, fidr.MakeChunk(100000+lba, 0.5)); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		log.Fatal(err)
	}

	// The snapshot still reads day-0 data; the live volume reads day-1.
	old, err := srv.ReadSnapshot(snap, 7)
	if err != nil || !bytes.Equal(old, fidr.MakeChunk(7, 0.5)) {
		log.Fatalf("snapshot read broken: %v", err)
	}
	live, err := srv.Read(7)
	if err != nil || !bytes.Equal(live, fidr.MakeChunk(100007, 0.5)) {
		log.Fatalf("live read broken: %v", err)
	}
	fmt.Println("snapshot serves day-0 data; live volume serves day-1 data")

	// Garbage accrues only once the snapshot releases its references.
	fmt.Printf("garbage with snapshot alive: %d bytes\n", srv.Garbage().TotalDeadBytes)
	if err := srv.DeleteSnapshot(snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("garbage after snapshot delete: %d bytes\n", srv.Garbage().TotalDeadBytes)

	res, err := srv.Compact(0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compaction: %d containers reclaimed, %d chunks moved, %d dropped\n",
		res.ContainersCompacted, res.ChunksMoved, res.ChunksDropped)

	// fsck the volume end to end.
	rep, err := srv.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fsck: %d mappings, %d chunks checked, consistent=%v\n",
		rep.MappingsChecked, rep.ChunksChecked, rep.OK())
}
