// Quickstart: embed the FIDR engine, write data with duplicates, read it
// back bit-exact, and inspect how much storage the inline reduction
// saved.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidr"
)

func main() {
	// A full FIDR server: in-NIC hashing, P2P datapaths, HW-engine
	// table caching.
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		log.Fatal(err)
	}

	// Write 1024 chunks (4 MiB) at distinct addresses, but with only
	// 128 distinct contents, each ~50% compressible — a workload with
	// 87.5% duplicates.
	fmt.Println("writing 1024 chunks (128 distinct contents, 50% compressible)...")
	for lba := uint64(0); lba < 1024; lba++ {
		chunk := fidr.MakeChunk(lba%128, 0.5)
		if err := srv.Write(lba, chunk); err != nil {
			log.Fatalf("write %d: %v", lba, err)
		}
	}
	if err := srv.Flush(); err != nil {
		log.Fatal(err)
	}

	// Read everything back and verify integrity.
	for lba := uint64(0); lba < 1024; lba++ {
		got, err := srv.Read(lba)
		if err != nil {
			log.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(got, fidr.MakeChunk(lba%128, 0.5)) {
			log.Fatalf("chunk %d corrupted", lba)
		}
	}
	fmt.Println("all 1024 chunks read back bit-exact")

	st := srv.Stats()
	snap := srv.Ledger().Snapshot()
	fmt.Printf("\nunique chunks:      %d\n", st.UniqueChunks)
	fmt.Printf("duplicate chunks:   %d\n", st.DuplicateChunks)
	fmt.Printf("client bytes:       %d\n", st.ClientBytes)
	fmt.Printf("stored bytes:       %d (%.1f%% of client data)\n",
		st.StoredBytes, 100*st.ReductionRatio())
	fmt.Printf("host memory traffic: %.3f bytes per client byte\n", snap.MemPerClientByte())
	fmt.Printf("host CPU time:       %.3f ns per client byte\n", snap.CPUNanosPerClientByte())
	fmt.Printf("table cache hits:    %.1f%%\n", 100*srv.CacheStats().HitRate())
}
