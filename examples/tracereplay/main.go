// Tracereplay: generate the paper's Write-H mail-server workload
// (Table 3) and replay it through the baseline and both FIDR
// configurations, reproducing the headline comparison — FIDR slashes
// host-memory traffic and CPU time at identical reduction quality.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fidr"
)

const ios = 20000

func runArch(arch fidr.Arch) (*fidr.Server, error) {
	cfg := fidr.DefaultConfig(arch)
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	wl := fidr.WriteH(ios)
	gen, err := fidr.NewWorkload(wl)
	if err != nil {
		return nil, err
	}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		chunk := fidr.MakeChunk(req.ContentSeed, wl.CompressRatio)
		if err := srv.Write(req.LBA, chunk); err != nil {
			return nil, err
		}
	}
	if err := srv.Flush(); err != nil {
		return nil, err
	}
	return srv, nil
}

func main() {
	fmt.Printf("replaying Write-H (%d IOs, 88%% dedup target) on three architectures...\n\n", ios)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "architecture\tstored/client\tmem B/B\tCPU ns/B\tcache hit\tP2P bytes")
	var baseMem, baseCPU float64
	for _, arch := range []fidr.Arch{fidr.Baseline, fidr.FIDRNicP2P, fidr.FIDRFull} {
		srv, err := runArch(arch)
		if err != nil {
			log.Fatalf("%v: %v", arch, err)
		}
		snap := srv.Ledger().Snapshot()
		_, p2p, _ := srv.Topology().Report()
		if arch == fidr.Baseline {
			baseMem = snap.MemPerClientByte()
			baseCPU = snap.CPUNanosPerClientByte()
		}
		fmt.Fprintf(w, "%v\t%.3f\t%.3f\t%.3f\t%.1f%%\t%d\n",
			arch, srv.Stats().ReductionRatio(), snap.MemPerClientByte(),
			snap.CPUNanosPerClientByte(), 100*srv.CacheStats().HitRate(), p2p)
		if arch == fidr.FIDRFull {
			fmt.Fprintf(w, "\t\t(-%.1f%%)\t(-%.1f%%)\t\t\n",
				100*(1-snap.MemPerClientByte()/baseMem),
				100*(1-snap.CPUNanosPerClientByte()/baseCPU))
		}
	}
	w.Flush()
	fmt.Println("\npaper (Figures 11-12): up to 79.1% memory-BW and 68% CPU reduction on write-only workloads")
}
