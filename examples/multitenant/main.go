// Multitenant: the §8 contention scenario — a locality-rich tenant and a
// scan-heavy tenant share one FIDR server. Plain LRU lets the scanner
// wash the hot tenant's table buckets out of the cache; the prioritized
// (weighted) policy protects them.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fidr"
)

// run executes the contention scenario and returns the hot tenant's
// table-cache hit rate in a final measurement phase.
func run(multiTenant bool) (hotHit float64, tenants map[string]fidr.TenantStats) {
	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	cfg.MultiTenant = multiTenant
	cfg.UniqueChunkCapacity = 1 << 18
	cfg.CacheLines = 128
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if multiTenant {
		srv.SetTenantWeight("oltp", 16)
		srv.SetTenantWeight("backup-scan", 1)
	}
	// Warm the OLTP tenant's 40-content working set.
	srv.SetTenant("oltp")
	for i := uint64(0); i < 40; i++ {
		srv.Write(i, fidr.MakeChunk(i, 0.5))
	}
	srv.Flush()
	// Contention: the backup scan streams unique content while OLTP
	// keeps touching its set.
	for round := 0; round < 20; round++ {
		srv.SetTenant("backup-scan")
		for j := uint64(0); j < 60; j++ {
			lba := uint64(100000+round*100) + j
			srv.Write(lba, fidr.MakeChunk(1_000_000+lba, 0.5))
		}
		srv.SetTenant("oltp")
		for i := uint64(0); i < 40; i += 4 {
			srv.Write(1000+i, fidr.MakeChunk(i, 0.5))
		}
	}
	srv.Flush()
	// Measure the OLTP tenant's hit rate on its own set.
	srv.SetTenant("oltp")
	before := srv.CacheStats()
	for i := uint64(0); i < 40; i++ {
		srv.Write(2000+i, fidr.MakeChunk(i, 0.5))
	}
	srv.Flush()
	after := srv.CacheStats()
	return float64(after.Hits-before.Hits) / float64(after.Lookups-before.Lookups),
		srv.TenantStats()
}

func main() {
	fmt.Println("two tenants on one FIDR server: 'oltp' (hot 40-chunk working set)")
	fmt.Println("vs 'backup-scan' (unique content streaming through the table cache)")
	fmt.Println()
	plain, _ := run(false)
	prio, tenants := run(true)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "replacement policy\toltp table-cache hit rate")
	fmt.Fprintf(w, "plain LRU\t%.1f%%\n", 100*plain)
	fmt.Fprintf(w, "prioritized (weight 16:1)\t%.1f%%\n", 100*prio)
	w.Flush()

	fmt.Println("\nper-tenant accounting (prioritized run):")
	for name, ts := range tenants {
		fmt.Printf("  %-12s writes=%d reads=%d\n", name, ts.Writes, ts.Reads)
	}
	fmt.Println("\npaper (§8): 'instead of a basic LRU replacement policy, we may use a")
	fmt.Println("prioritized LRU policy that considers each workload's locality'")
}
