// Netstore: run a FIDR storage server and a client in one process,
// speaking the paper's simplified storage protocol (§6.2) over loopback
// TCP — the end-to-end "client machine <-> storage server" setup of the
// evaluation, scaled to one host.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fidr"
	"fidr/internal/proto"
)

func main() {
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		log.Fatal(err)
	}
	l, err := proto.Serve(srv, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("FIDR server listening on %s\n", l.Addr())

	client, err := proto.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A virtual-desktop-style dataset: 512 chunks, heavy duplication
	// (the paper's motivating VDI case reduces by >80%).
	fmt.Println("storing 512 chunks over TCP (64 distinct contents)...")
	for lba := uint64(0); lba < 512; lba++ {
		if err := client.WriteChunk(lba, fidr.MakeChunk(lba%64, 0.5)); err != nil {
			log.Fatalf("write %d: %v", lba, err)
		}
	}
	// Read-back verification through the same wire protocol.
	for lba := uint64(0); lba < 512; lba++ {
		got, err := client.ReadChunk(lba)
		if err != nil {
			log.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(got, fidr.MakeChunk(lba%64, 0.5)) {
			log.Fatalf("chunk %d corrupted over the wire", lba)
		}
	}
	fmt.Println("512 chunks verified over the wire")

	st := srv.Stats()
	fmt.Printf("\nserver-side: %d unique / %d duplicate chunks, stored %.1f%% of client bytes\n",
		st.UniqueChunks, st.DuplicateChunks, 100*st.ReductionRatio())
	fmt.Printf("NIC read-buffer hits: %d (reads served without touching the backend)\n", st.NICReadHits)
}
