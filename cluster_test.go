package fidr_test

import (
	"bytes"
	"testing"

	"fidr"
)

func TestClusterValidation(t *testing.T) {
	if _, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 0); err == nil {
		t.Fatal("zero groups accepted")
	}
}

func TestClusterRoundTripAndSharding(t *testing.T) {
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Groups() != 4 {
		t.Fatalf("groups = %d", c.Groups())
	}
	const n = 800
	for i := uint64(0); i < n; i++ {
		if err := c.Write(i, fidr.MakeChunk(i%100, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		got, err := c.Read(i)
		if err != nil || !bytes.Equal(got, fidr.MakeChunk(i%100, 0.5)) {
			t.Fatalf("cluster read %d failed: %v", i, err)
		}
	}
	// Shard balance: every group should see a fair slice of writes.
	for g := 0; g < c.Groups(); g++ {
		w := c.Group(g).Stats().ClientWrites
		if w < n/8 || w > n/2 {
			t.Errorf("group %d handled %d of %d writes; sharding skewed", g, w, n)
		}
	}
	agg := c.Stats()
	if agg.ClientWrites != n {
		t.Fatalf("aggregate writes = %d", agg.ClientWrites)
	}
	if agg.UniqueChunks+agg.DuplicateChunks != n {
		t.Fatal("aggregate chunk accounting broken")
	}
}

func TestClusterDedupDomainSplit(t *testing.T) {
	// The documented trade-off: content duplicated across shards is
	// stored once per shard, so a 4-group cluster stores up to 4 copies
	// of globally duplicated content while a single server stores 1.
	single, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 400 LBAs, only 10 distinct contents.
	for i := uint64(0); i < 400; i++ {
		chunk := fidr.MakeChunk(i%10, 0.5)
		if err := single.Write(i, chunk); err != nil {
			t.Fatal(err)
		}
		if err := cluster.Write(i, chunk); err != nil {
			t.Fatal(err)
		}
	}
	single.Flush()
	cluster.Flush()
	su := single.Stats().UniqueChunks
	cu := cluster.Stats().UniqueChunks
	if su != 10 {
		t.Fatalf("single server stored %d uniques, want 10", su)
	}
	if cu <= su || cu > 40 {
		t.Fatalf("cluster stored %d uniques; expected (10, 40]", cu)
	}
}

func TestClusterSnapshotAggregates(t *testing.T) {
	c, _ := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 2)
	for i := uint64(0); i < 200; i++ {
		c.Write(i, fidr.MakeChunk(i, 0.5))
	}
	c.Flush()
	snap := c.Snapshot()
	if snap.ClientBytes != 200*fidr.ChunkSize {
		t.Fatalf("aggregate client bytes = %d", snap.ClientBytes)
	}
	if snap.MemPerClientByte() <= 0 {
		t.Fatal("aggregate intensities empty")
	}
}
