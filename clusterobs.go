package fidr

import (
	"math"
	"sync"
	"time"

	"fidr/internal/core"
	"fidr/internal/fingerprint"
	"fidr/internal/metrics"
)

// Cluster-wide observability. PR 2's metrics plane stopped at a single
// Server; the scale-out claims of §5.6 need per-shard visibility. Each
// group gets its own metrics.Registry, exposed three ways through one
// Gatherer: merged cluster-wide series (unprefixed, counters summed and
// histograms bucket-merged), per-group series under a "group<N>."
// prefix, and cluster-level derived series — per-shard write share and
// dedup ratio, the shard imbalance coefficient, and the cross-shard
// duplicate loss (content stored in more than one shard because LBA
// sharding splits the dedup domain).

// clusterObs binds a cluster's groups into one observability plane.
type clusterObs struct {
	groupRegs []*metrics.Registry
	own       *metrics.Registry
	view      metrics.Gatherer

	writeNS, readNS *metrics.Histogram
	crossDupChunks  *metrics.Gauge

	// Cross-shard dedup-domain tracking: every written chunk's
	// fingerprint maps to a bitmask of groups that stored it. Content
	// seen by a second (third, ...) group is a duplicate a single dedup
	// domain would have stored once — the scale-out trade-off made
	// measurable. Tracked for clusters of up to 64 groups.
	mu        sync.Mutex
	contentAt map[fingerprint.FP]uint64
	extra     uint64 // copies beyond each content's first shard
}

// EnableObservability attaches a live metrics plane to every group and
// returns the cluster-wide gatherer: merged series, "group<N>."-prefixed
// per-group series, cluster.{write,read}.ns routing histograms, and the
// derived shard-balance series. recentTraces sizes each group's trace
// ring (<= 0 selects 256). Call once, before serving traffic.
func (c *Cluster) EnableObservability(recentTraces int) metrics.Gatherer {
	o := &clusterObs{
		groupRegs: make([]*metrics.Registry, len(c.groups)),
		own:       metrics.NewRegistry(),
		contentAt: make(map[fingerprint.FP]uint64),
	}
	gatherers := make([]metrics.Gatherer, 0, len(c.groups)+3)
	merged := make([]metrics.Gatherer, len(c.groups))
	for i, g := range c.groups {
		reg := metrics.NewRegistry()
		g.EnableObservability(reg, recentTraces)
		o.groupRegs[i] = reg
		merged[i] = reg
	}
	mergedView := metrics.Merged(merged...)
	gatherers = append(gatherers, mergedView)
	// Ratios cannot be summed across groups; derive them from the
	// merged counters at scrape time.
	gatherers = append(gatherers, metrics.CapacityRatios(mergedView))
	for i := range c.groups {
		gatherers = append(gatherers, metrics.Prefixed(groupPrefix(i), o.groupRegs[i]))
	}
	o.writeNS = o.own.Histogram("cluster.write.ns")
	o.readNS = o.own.Histogram("cluster.read.ns")
	o.own.Gauge("cluster.groups").Set(float64(len(c.groups)))
	o.crossDupChunks = o.own.Gauge("cluster.cross_shard_dup_chunks")
	gatherers = append(gatherers, o.own, metrics.GathererFunc(func() []metrics.Metric {
		return o.derived()
	}))
	o.view = metrics.Multi(gatherers...)
	c.obs = o
	return o.view
}

// MetricsView returns the cluster-wide gatherer, or nil when
// observability is disabled.
func (c *Cluster) MetricsView() metrics.Gatherer {
	if c.obs == nil {
		return nil
	}
	return c.obs.view
}

// RecentTraces merges every group's recent request traces, newest first.
func (c *Cluster) RecentTraces() []Trace {
	var out []Trace
	for _, g := range c.groups {
		out = append(out, g.RecentTraces()...)
	}
	sortTracesNewestFirst(out)
	return out
}

// ConfigureFlightRecorder tunes every group's slow-request gate (see
// core.Server.ConfigureFlightRecorder). Call after EnableObservability
// and before serving traffic.
func (c *Cluster) ConfigureFlightRecorder(quantile float64, min time.Duration, capacity int) {
	for _, g := range c.groups {
		g.ConfigureFlightRecorder(quantile, min, capacity)
	}
}

// SlowTraces merges every group's flight-recorder captures, newest
// first (empty when observability is disabled).
func (c *Cluster) SlowTraces() []SlowTrace {
	var out []SlowTrace
	for _, g := range c.groups {
		out = append(out, g.SlowTraces()...)
	}
	// Same nearly-sorted merge as RecentTraces.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start.After(out[j-1].Start); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortTracesNewestFirst(ts []Trace) {
	// Insertion sort by Start descending: rings are already
	// newest-first, so the merged slice is nearly sorted.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Start.After(ts[j-1].Start); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func groupPrefix(i int) string {
	// Avoid fmt on the scrape path; group counts are small.
	digits := "0123456789"
	if i < 10 {
		return "group" + digits[i:i+1] + "."
	}
	return "group" + digits[i/10:i/10+1] + digits[i%10:i%10+1] + "."
}

// noteContent records that group g stored content with the given bytes,
// updating the cross-shard duplicate gauge.
func (o *clusterObs) noteContent(g int, data []byte) {
	if g >= 64 {
		return // bitmask tracks the first 64 groups
	}
	fp := fingerprint.Of(data)
	bit := uint64(1) << uint(g)
	o.mu.Lock()
	mask := o.contentAt[fp]
	if mask&bit == 0 {
		if mask != 0 {
			// A second (or later) shard now stores content another
			// shard already holds: one more copy than a global dedup
			// domain would keep.
			o.extra++
			o.crossDupChunks.Set(float64(o.extra))
		}
		o.contentAt[fp] = mask | bit
	}
	o.mu.Unlock()
}

// derived computes the per-shard balance series at scrape time from the
// group registries' atomics (never from Server state, which concurrent
// workers own).
func (o *clusterObs) derived() []metrics.Metric {
	n := len(o.groupRegs)
	writes := make([]float64, n)
	var total float64
	for i, reg := range o.groupRegs {
		writes[i] = float64(reg.Counter("core.writes").Value())
		total += writes[i]
	}
	out := make([]metrics.Metric, 0, 2*n+1)
	for i, reg := range o.groupRegs {
		share := 0.0
		if total > 0 {
			share = writes[i] / total
		}
		dups := float64(reg.Counter("core.dup_chunks").Value())
		uniques := float64(reg.Counter("core.unique_chunks").Value())
		ratio := 0.0
		if dups+uniques > 0 {
			ratio = dups / (dups + uniques)
		}
		out = append(out,
			metrics.Metric{Kind: "gauge", Name: groupPrefix(i) + "derived.write_share", Value: share},
			metrics.Metric{Kind: "gauge", Name: groupPrefix(i) + "derived.dedup_ratio", Value: ratio},
		)
	}
	out = append(out, metrics.Metric{
		Kind: "gauge", Name: "cluster.shard_imbalance", Value: imbalance(writes),
	})
	return out
}

// imbalance is the coefficient of variation (stddev/mean) of per-shard
// write counts: 0 for perfect balance, growing with skew.
func imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(xs))) / mean
}

// observeWrite and observeRead time cluster-level request routing.

func (o *clusterObs) observeWrite(start time.Time) {
	o.writeNS.Observe(float64(time.Since(start).Nanoseconds()))
}

func (o *clusterObs) observeRead(start time.Time) {
	o.readNS.Observe(float64(time.Since(start).Nanoseconds()))
}

// Re-exported observability types so front-ends above core (Cluster,
// Async) and their callers share one vocabulary.
type (
	// Trace is one completed request with its stage spans.
	Trace = core.Trace
	// Span is one timed pipeline stage within a trace.
	Span = core.Span
	// TraceContext carries front-end-measured spans into a server's
	// per-request trace.
	TraceContext = core.TraceContext
	// SlowTrace is one slow-request flight-recorder capture.
	SlowTrace = core.SlowTrace
)

// StageQueueWait re-exports the async front-end queue-wait stage.
const StageQueueWait = core.StageQueueWait
