package fidr_test

import (
	"fmt"
	"log"

	"fidr"
)

// ExampleNewServer shows the core write-dedup-read loop.
func ExampleNewServer() {
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		log.Fatal(err)
	}
	// 100 chunks, only 10 distinct contents: 90% duplicates.
	for lba := uint64(0); lba < 100; lba++ {
		if err := srv.Write(lba, fidr.MakeChunk(lba%10, 0.5)); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("unique=%d duplicates=%d\n", st.UniqueChunks, st.DuplicateChunks)
	// Output:
	// unique=10 duplicates=90
}

// ExampleNewCluster shards a volume over four device groups.
func ExampleNewCluster() {
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 4)
	if err != nil {
		log.Fatal(err)
	}
	for lba := uint64(0); lba < 40; lba++ {
		if err := c.Write(lba, fidr.MakeChunk(lba, 0.5)); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("groups=%d writes=%d\n", c.Groups(), c.Stats().ClientWrites)
	// Output:
	// groups=4 writes=40
}

// ExampleNewAsync pipelines requests through a bounded queue.
func ExampleNewAsync() {
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		log.Fatal(err)
	}
	a, err := fidr.NewAsync(srv, 32)
	if err != nil {
		log.Fatal(err)
	}
	// Submit a burst without waiting, then collect.
	var pending []<-chan fidr.AsyncResult
	for lba := uint64(0); lba < 8; lba++ {
		pending = append(pending, a.WriteAsync(lba, fidr.MakeChunk(lba, 0.5)))
	}
	for _, ch := range pending {
		if res := <-ch; res.Err != nil {
			log.Fatal(res.Err)
		}
	}
	if err := a.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("burst stored")
	// Output:
	// burst stored
}

// ExampleNewWorkload replays a Table 3 workload definition.
func ExampleNewWorkload() {
	gen, err := fidr.NewWorkload(fidr.WriteH(5))
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		_ = req.LBA
		n++
	}
	fmt.Printf("generated %d requests\n", n)
	// Output:
	// generated 5 requests
}
