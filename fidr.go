// Package fidr is a faithful, fully functional reproduction of
// "FIDR: A Scalable Storage System for Fine-Grain Inline Data Reduction
// with Efficient Memory Handling" (MICRO-52, 2019).
//
// The package is the public facade over the implementation in internal/:
// it exposes the storage servers (the extended-CIDR baseline and the FIDR
// architecture), the Table 3 workload generators, the resource ledgers,
// and a registry of experiment runners that regenerate every table and
// figure of the paper. See README.md for a tour and DESIGN.md for the
// system inventory.
//
// Quick start:
//
//	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
//	...
//	srv.Write(lba, chunk) // 4-KB chunks
//	data, err := srv.Read(lba)
//	srv.Flush()
//	fmt.Println(srv.Stats().ReductionRatio())
package fidr

import (
	"fmt"

	"fidr/internal/blockcomp"
	"fidr/internal/core"
	"fidr/internal/experiments"
	"fidr/internal/trace"
)

// Arch selects a server architecture.
type Arch = core.Arch

// Architectures.
const (
	// Baseline is the extended CIDR baseline (§2.3): host buffering,
	// software unique-chunk predictor, integrated FPGA array, software
	// table caching.
	Baseline = core.Baseline
	// FIDRNicP2P enables in-NIC hashing/buffering and PCIe peer-to-peer
	// datapaths (ideas 1-2 of §5.1).
	FIDRNicP2P = core.FIDRNicP2P
	// FIDRFull additionally offloads table-cache management to the
	// Cache HW-Engine (idea 3).
	FIDRFull = core.FIDRFull
)

// Config sizes a server; see core.Config for field documentation.
type Config = core.Config

// Server is a functional inline-data-reduction storage server.
type Server = core.Server

// Stats aggregates server counters.
type Stats = core.Stats

// TenantStats counts one tenant's requests (multi-tenant mode).
type TenantStats = core.TenantStats

// SnapshotID names a point-in-time snapshot.
type SnapshotID = core.SnapshotID

// DefaultConfig returns a working configuration for the architecture.
func DefaultConfig(arch Arch) Config { return core.DefaultConfig(arch) }

// NewServer builds a server.
func NewServer(cfg Config) (*Server, error) { return core.New(cfg) }

// ChunkSize is the paper's deduplication granularity.
const ChunkSize = 4096

// Workload re-exports the trace generator's parameter type.
type Workload = trace.Params

// Table 3 workload constructors at a chosen request count.
var (
	// WriteH: 88% dedup, high cache locality.
	WriteH = trace.WriteH
	// WriteM: 84% dedup, medium locality.
	WriteM = trace.WriteM
	// WriteL: 43.1% dedup, low locality.
	WriteL = trace.WriteL
	// ReadMixed: 50% reads, writes as Write-H.
	ReadMixed = trace.ReadMixed
)

// NewWorkload returns a request generator for params.
func NewWorkload(p Workload) (*trace.Generator, error) { return trace.NewGenerator(p) }

// MakeChunk fills a ChunkSize payload for a content seed at the given
// compressibility (the workload generators emit content seeds; this is
// how seeds become bytes).
func MakeChunk(seed uint64, compressRatio float64) []byte {
	return blockcomp.NewShaper(compressRatio).Make(seed, ChunkSize)
}

// runner produces one artifact's rendered table.
type runner func(experiments.Scale) (string, error)

// experimentOrder lists artifact names in paper order, then extensions.
var experimentOrder = []string{
	"fig3", "fig4", "fig5", "table1", "table2", "table3",
	"fig11", "fig12", "fig13", "fig14", "latency",
	"table4", "table5", "fig15", "fig16",
	"ablation-chunk", "ablation-batch", "ablation-cache",
	"ablation-width", "ablation-readoffload",
	"ablation-readcache", "ablation-scaleout",
	"lifetime", "selfperf", "scorecard", "observe",
}

// experimentRegistry maps every artifact name to its runner.
var experimentRegistry = map[string]runner{
	"fig3": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig3(sc)
		return render(tab, err)
	},
	"fig4": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig4(sc)
		return render(tab, err)
	},
	"fig5": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig5(sc)
		return render(tab, err)
	},
	"table1": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Table1(sc)
		return render(tab, err)
	},
	"table2": func(sc experiments.Scale) (string, error) {
		tab, err := experiments.Table2(sc)
		return render(tab, err)
	},
	"table3": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Table3(sc)
		return render(tab, err)
	},
	"fig11": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig11(sc)
		return render(tab, err)
	},
	"fig12": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig12(sc)
		return render(tab, err)
	},
	"fig13": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig13(sc)
		return render(tab, err)
	},
	"fig14": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig14(sc)
		return render(tab, err)
	},
	"latency": func(experiments.Scale) (string, error) {
		_, tab := experiments.Latency()
		return render(tab, nil)
	},
	"table4": func(experiments.Scale) (string, error) { return render(experiments.Table4(), nil) },
	"table5": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Table5(sc)
		return render(tab, err)
	},
	"fig15": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig15(sc)
		return render(tab, err)
	},
	"fig16": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Fig16(sc)
		return render(tab, err)
	},
	"ablation-chunk": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationChunkSize(sc)
		return render(tab, err)
	},
	"ablation-batch": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationBatch(sc)
		return render(tab, err)
	},
	"ablation-cache": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationCache(sc)
		return render(tab, err)
	},
	"ablation-width": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationWidth(sc)
		return render(tab, err)
	},
	"ablation-readoffload": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationReadOffload(sc)
		return render(tab, err)
	},
	"ablation-readcache": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationReadCache(sc)
		return render(tab, err)
	},
	"ablation-scaleout": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.AblationScaleout(sc)
		return render(tab, err)
	},
	"lifetime": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Lifetime(sc)
		return render(tab, err)
	},
	"selfperf": func(experiments.Scale) (string, error) {
		_, tab, err := experiments.SelfPerf()
		return render(tab, err)
	},
	"scorecard": func(sc experiments.Scale) (string, error) {
		tab, err := experiments.Scorecard(sc)
		return render(tab, err)
	},
	"observe": func(sc experiments.Scale) (string, error) {
		_, tab, err := experiments.Observe(sc)
		return render(tab, err)
	},
}

// Experiments returns artifact names accepted by RunExperiment, in paper
// order followed by the extension studies.
func Experiments() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// RunExperiment regenerates one paper artifact and returns its rendered
// table. scaleIOs controls workload size (0 selects the default).
func RunExperiment(name string, scaleIOs int) (string, error) {
	sc := experiments.DefaultScale()
	if scaleIOs > 0 {
		sc.IOs = scaleIOs
	}
	run, ok := experimentRegistry[name]
	if !ok {
		return "", fmt.Errorf("fidr: unknown experiment %q (see Experiments())", name)
	}
	return run(sc)
}

type stringer interface{ String() string }

func render(tab stringer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return tab.String(), nil
}
