package fidr_test

// End-to-end system tests: a Table 3 workload through the full stack —
// TCP protocol front-end, FIDR engine, snapshots, GC, recovery — the way
// a deployment would exercise it.

import (
	"bytes"
	"testing"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/proto"
	"fidr/internal/trace"
)

func TestSystemWorkloadOverTCP(t *testing.T) {
	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := proto.Serve(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := proto.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wl := fidr.WriteM(2000)
	gen, err := fidr.NewWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	content := make(map[uint64]uint64)
	// Stream the workload through the wire protocol, batching
	// consecutive LBAs like a real initiator.
	var batch []byte
	var batchStart uint64
	var batchNext uint64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := c.WriteBatch(batchStart, batch)
		batch = nil
		return err
	}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if req.Op != trace.OpWrite {
			continue
		}
		chunk := fidr.MakeChunk(req.ContentSeed, wl.CompressRatio)
		if len(batch) > 0 && (req.LBA != batchNext || len(batch) >= 64*fidr.ChunkSize) {
			if err := flush(); err != nil {
				t.Fatal(err)
			}
		}
		if len(batch) == 0 {
			batchStart = req.LBA
		}
		batch = append(batch, chunk...)
		batchNext = req.LBA + 1
		content[req.LBA] = req.ContentSeed
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}

	// Spot-check reads over the wire (bounded for test time).
	checked := 0
	for lba, seed := range content {
		got, err := c.ReadChunk(lba)
		if err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(got, fidr.MakeChunk(seed, wl.CompressRatio)) {
			t.Fatalf("lba %d corrupted through the full stack", lba)
		}
		checked++
		if checked >= 300 {
			break
		}
	}
	// Server-side dedup happened.
	st := srv.Stats()
	if st.DuplicateChunks == 0 || st.UniqueChunks == 0 {
		t.Fatalf("no reduction through the stack: %+v", st)
	}
	// fsck the volume.
	rep, err := srv.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after system run: %v", rep.Problems)
	}
}

func TestSystemLifecycle(t *testing.T) {
	// Write -> snapshot -> overwrite -> compact -> checkpoint ->
	// recover -> verify: every operational feature in one lifecycle.
	cfg := core.DefaultConfig(core.FIDRFull)
	cfg.ContainerSize = 64 << 10
	srv, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 150; i++ {
		if err := srv.Write(i, fidr.MakeChunk(i, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := srv.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		srv.Write(i, fidr.MakeChunk(5000+i, 0.5))
	}
	srv.Flush()
	if _, err := srv.Compact(0.1); err != nil {
		t.Fatal(err)
	}
	if err := srv.DeleteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Compact(0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("pre-recovery fsck: %v %v", err, rep.Problems)
	}
	// Recovery note: Checkpoint() was taken before Verify's Flush, but
	// Verify is read-only so the checkpoint still matches.
	// (Recovery itself is covered in internal/core persist tests; here
	// we just confirm the lifecycle leaves a consistent volume.)
	for i := uint64(0); i < 150; i++ {
		want := fidr.MakeChunk(i, 0.5)
		if i < 100 {
			want = fidr.MakeChunk(5000+i, 0.5)
		}
		got, err := srv.Read(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("lifecycle read %d: %v", i, err)
		}
	}
}
