package cost

import (
	"math"
	"testing"
)

// paperWorkload uses the §7.8 ratios with host intensities near the
// measured values (baseline ~0.89 ns/B and 4.2 B/B; FIDR ~0.28 ns/B).
func fidrWorkload() Workload {
	return Workload{DedupRatio: 0.5, CompRatio: 0.5, CPUNsPerByte: 0.28, MemPerByte: 0.9}
}

func baselineWorkload() Workload {
	return Workload{DedupRatio: 0.5, CompRatio: 0.5, CPUNsPerByte: 0.893, MemPerByte: 4.23}
}

func TestStoredFraction(t *testing.T) {
	w := fidrWorkload()
	if got := w.StoredFraction(); got != 0.25 {
		t.Fatalf("stored fraction = %v, want 0.25", got)
	}
}

func TestNoReduction(t *testing.T) {
	m := NewModel()
	b := m.NoReduction(500e12)
	if b.Total() != 250000 {
		t.Fatalf("500 TB raw = $%.0f, want $250000", b.Total())
	}
}

func TestFIDRSavingAnchors(t *testing.T) {
	// Paper: at 500 TB effective capacity, FIDR saves 67% at 25 GB/s
	// and 58% at 75 GB/s.
	m := NewModel()
	w := fidrWorkload()
	const cap500 = 500e12
	s25 := m.Saving(m.FIDR(cap500, 25e9, w), cap500)
	s75 := m.Saving(m.FIDR(cap500, 75e9, w), cap500)
	if s25 < 0.62 || s25 > 0.72 {
		t.Errorf("saving at 25 GB/s = %.3f, paper 0.67", s25)
	}
	if s75 < 0.53 || s75 > 0.63 {
		t.Errorf("saving at 75 GB/s = %.3f, paper 0.58", s75)
	}
	if s75 >= s25 {
		t.Error("saving should shrink with throughput (more reduction HW)")
	}
}

func TestBaselineWallAndPartialReduction(t *testing.T) {
	m := NewModel()
	bw := baselineWorkload()
	wall := m.BaselineMaxThroughput(bw)
	// CPU wall: 22/0.893 = 24.6 GB/s (the paper's "fails beyond
	// ~25 GB/s per socket").
	if wall < 22e9 || wall > 28e9 {
		t.Fatalf("baseline wall = %.1f GB/s, want ~24.6", wall/1e9)
	}
	const cap500 = 500e12
	// Below the wall, the baseline does full reduction and costs about
	// the same as FIDR.
	low := m.Baseline(cap500, 20e9, bw)
	fidrLow := m.FIDR(cap500, 20e9, fidrWorkload())
	if ratio := low.Total() / fidrLow.Total(); ratio < 0.8 || ratio > 1.3 {
		t.Errorf("low-throughput cost ratio baseline/FIDR = %.2f, paper ~1", ratio)
	}
	// At 75 GB/s the baseline reduces only ~1/3 of traffic and its SSD
	// bill balloons: Figure 16 shows roughly 2x FIDR's cost.
	high := m.Baseline(cap500, 75e9, bw)
	fidrHigh := m.FIDR(cap500, 75e9, fidrWorkload())
	if ratio := high.Total() / fidrHigh.Total(); ratio < 1.6 || ratio > 2.6 {
		t.Errorf("75 GB/s cost ratio baseline/FIDR = %.2f, paper ~2", ratio)
	}
	if high.DataSSD <= fidrHigh.DataSSD {
		t.Error("partial reduction should inflate baseline SSD cost")
	}
}

func TestSavingScalesWithCapacity(t *testing.T) {
	// Reduction HW is amortized better at higher capacity: saving at
	// 500 TB must beat saving at 100 TB for the same throughput.
	m := NewModel()
	w := fidrWorkload()
	s100 := m.Saving(m.FIDR(100e12, 75e9, w), 100e12)
	s500 := m.Saving(m.FIDR(500e12, 75e9, w), 500e12)
	if s500 <= s100 {
		t.Errorf("saving at 500 TB (%.3f) not above 100 TB (%.3f)", s500, s100)
	}
}

func TestBreakdownComponentsPositive(t *testing.T) {
	m := NewModel()
	b := m.FIDR(500e12, 75e9, fidrWorkload())
	for name, v := range map[string]float64{
		"DataSSD": b.DataSSD, "TableSSD": b.TableSSD,
		"DRAM": b.DRAM, "CPU": b.CPU, "FPGA": b.FPGA,
	} {
		if v <= 0 {
			t.Errorf("%s cost = %v", name, v)
		}
	}
	if math.Abs(b.Total()-(b.DataSSD+b.TableSSD+b.DRAM+b.CPU+b.FPGA)) > 1e-9 {
		t.Error("total != sum of parts")
	}
	// Data SSDs dominate at PB scale (Figure 16's shape).
	if b.DataSSD < b.Total()/2 {
		t.Errorf("data SSDs are %.0f of %.0f; should dominate", b.DataSSD, b.Total())
	}
}

func TestBaselineUnboundedWorkload(t *testing.T) {
	m := NewModel()
	w := Workload{DedupRatio: 0.5, CompRatio: 0.5}
	if wall := m.BaselineMaxThroughput(w); !math.IsInf(wall, 1) {
		t.Fatalf("zero intensities should mean no wall, got %v", wall)
	}
	// Full reduction then.
	b := m.Baseline(100e12, 75e9, w)
	if b.DataSSD != 100e12/1e9*0.5*0.25 {
		t.Fatalf("full reduction SSD cost = %v", b.DataSSD)
	}
}

func TestSavingZeroCapacity(t *testing.T) {
	m := NewModel()
	if s := m.Saving(Breakdown{}, 0); s != 0 {
		t.Fatalf("saving on zero capacity = %v", s)
	}
}
