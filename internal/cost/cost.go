// Package cost implements the paper's cost analysis (§7.8, Figures 15
// and 16): the dollar cost of a storage server as the sum of the data
// SSDs that survive data reduction plus the added reduction hardware
// (CPU, FPGAs, DRAM, table SSDs), compared against a no-reduction server
// and against the baseline — which cannot scale past its per-socket
// bottleneck and must fall back to *partial* reduction, inflating its
// SSD bill.
package cost

import "math"

// Prices follow §7.8 (2019 street prices).
type Prices struct {
	// SSDPerGB is flash cost ($0.5/GB).
	SSDPerGB float64
	// DRAMPerGB is memory cost ($5.5/GB).
	DRAMPerGB float64
	// CPU is one 22-core Xeon E5-4669 v4 ($7000).
	CPU float64
	// FPGA is one high-end FPGA board (VCU9P class, $7000).
	FPGA float64
	// FPGAUsable derates FPGA capacity: only 70% of resources are
	// practically usable.
	FPGAUsable float64
}

// PaperPrices returns the §7.8 price list.
func PaperPrices() Prices {
	return Prices{SSDPerGB: 0.5, DRAMPerGB: 5.5, CPU: 7000, FPGA: 7000, FPGAUsable: 0.7}
}

// Platform captures the per-device capability/utilization constants the
// scaling model needs. Utilizations come from the area models (Tables 4
// and 5); throughputs from the evaluation.
type Platform struct {
	// NICLineRate is one FIDR NIC's throughput (64 Gbps).
	NICLineRate float64
	// NICSupportUtil is the data-reduction share of one NIC FPGA
	// (Table 4: ~10.7% LUTs; the basic NIC is a fixed ASIC cost any
	// server pays).
	NICSupportUtil float64
	// CompEngineRate is one Compression Engine FPGA's throughput.
	CompEngineRate float64
	// CompEngineUtil is its FPGA utilization.
	CompEngineUtil float64
	// CacheEngineRate is one Cache HW-Engine's throughput (Table 5).
	CacheEngineRate float64
	// CacheEngineUtil is its FPGA utilization (Table 5: ~27% LUTs).
	CacheEngineUtil float64
	// BaselineFPGARate is the baseline's integrated hash+compression
	// FPGA throughput (CIDR: >20 GB/s per two FPGAs).
	BaselineFPGARate float64
	// BaselineFPGAUtil is its utilization.
	BaselineFPGAUtil float64
	// CoresPerSocket matches the cost of one CPU.
	CoresPerSocket float64
	// TableCacheFraction is the cached share of the reduction tables
	// (2.8% in the paper's workload setup).
	TableCacheFraction float64
	// TableLoadFactor derates Hash-PBN table occupancy.
	TableLoadFactor float64
	// ChunkBytes is the dedup granularity.
	ChunkBytes float64
}

// PaperPlatform returns the constants used for Figures 15-16.
func PaperPlatform() Platform {
	return Platform{
		NICLineRate:        8e9,
		NICSupportUtil:     0.107,
		CompEngineRate:     25e9,
		CompEngineUtil:     0.35,
		CacheEngineRate:    64e9,
		CacheEngineUtil:    0.271,
		BaselineFPGARate:   10e9,
		BaselineFPGAUtil:   0.50,
		CoresPerSocket:     22,
		TableCacheFraction: 0.028,
		TableLoadFactor:    0.5,
		ChunkBytes:         4096,
	}
}

// Workload holds reduction ratios and measured host intensities.
type Workload struct {
	// DedupRatio is the duplicate fraction (0.5 in §7.8).
	DedupRatio float64
	// CompRatio is compressed/original size (0.5 in §7.8).
	CompRatio float64
	// CPUNsPerByte is the architecture's measured host-CPU intensity
	// (from hostmodel snapshots).
	CPUNsPerByte float64
	// MemPerByte is the architecture's measured host-memory intensity,
	// used to find the baseline's per-socket throughput wall.
	MemPerByte float64
}

// StoredFraction is bytes stored per client byte under full reduction.
func (w Workload) StoredFraction() float64 {
	return (1 - w.DedupRatio) * w.CompRatio
}

// Breakdown itemizes a configuration's cost in dollars.
type Breakdown struct {
	DataSSD  float64
	TableSSD float64
	DRAM     float64
	CPU      float64
	FPGA     float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.DataSSD + b.TableSSD + b.DRAM + b.CPU + b.FPGA
}

// Model evaluates configurations.
type Model struct {
	Prices   Prices
	Platform Platform
}

// NewModel builds a model from the paper's constants.
func NewModel() Model {
	return Model{Prices: PaperPrices(), Platform: PaperPlatform()}
}

// NoReduction returns the cost of storing capacityBytes raw.
func (m Model) NoReduction(capacityBytes float64) Breakdown {
	return Breakdown{DataSSD: capacityBytes / 1e9 * m.Prices.SSDPerGB}
}

// fpgaCost prices n FPGAs at the given per-board utilization.
func (m Model) fpgaCost(n float64, util float64) float64 {
	return n * m.Prices.FPGA * math.Min(1, util/m.Prices.FPGAUsable)
}

// tableCosts returns (table SSD, DRAM) cost for reducing uniqueBytes of
// stored unique data.
func (m Model) tableCosts(uniqueBytes float64) (tableSSD, dram float64) {
	entries := uniqueBytes / m.Platform.ChunkBytes
	tableBytes := entries * 38 / m.Platform.TableLoadFactor
	tableSSD = tableBytes / 1e9 * m.Prices.SSDPerGB
	// DRAM: the cached table share plus an equal allowance for the
	// LBA-PBA cache and buffers.
	dramBytes := tableBytes*m.Platform.TableCacheFraction*2 + 8e9
	dram = dramBytes / 1e9 * m.Prices.DRAMPerGB
	return tableSSD, dram
}

// FIDR returns the cost of a FIDR server with effective (client-visible)
// capacity capacityBytes at throughput bps.
func (m Model) FIDR(capacityBytes, bps float64, w Workload) Breakdown {
	var b Breakdown
	stored := capacityBytes * w.StoredFraction()
	b.DataSSD = stored / 1e9 * m.Prices.SSDPerGB

	unique := capacityBytes * (1 - w.DedupRatio)
	b.TableSSD, b.DRAM = m.tableCosts(unique)

	// CPU: measured FIDR host intensity, in socket fractions.
	cores := w.CPUNsPerByte * bps / 1e9
	b.CPU = cores / m.Platform.CoresPerSocket * m.Prices.CPU

	// FPGAs: NIC support logic + Compression Engines + Cache HW-Engines.
	p := m.Platform
	b.FPGA = m.fpgaCost(math.Ceil(bps/p.NICLineRate), p.NICSupportUtil) +
		m.fpgaCost(math.Ceil(bps/p.CompEngineRate), p.CompEngineUtil) +
		m.fpgaCost(math.Ceil(bps/p.CacheEngineRate), p.CacheEngineUtil)
	return b
}

// BaselineMaxThroughput returns the baseline's per-socket throughput
// wall: the point where projected cores exceed the socket or projected
// memory bandwidth exceeds the socket's 170 GB/s.
func (m Model) BaselineMaxThroughput(w Workload) float64 {
	limit := math.Inf(1)
	if w.CPUNsPerByte > 0 {
		limit = math.Min(limit, m.Platform.CoresPerSocket*1e9/w.CPUNsPerByte)
	}
	if w.MemPerByte > 0 {
		limit = math.Min(limit, 170e9/w.MemPerByte)
	}
	return limit
}

// Baseline returns the cost of the baseline server at throughput bps.
// Beyond its per-socket wall it reduces only the fraction of traffic it
// can keep up with (partial reduction, §7.8), storing the rest raw.
func (m Model) Baseline(capacityBytes, bps float64, w Workload) Breakdown {
	var b Breakdown
	maxT := m.BaselineMaxThroughput(w)
	frac := 1.0
	if bps > maxT {
		frac = maxT / bps
	}
	stored := capacityBytes * (frac*w.StoredFraction() + (1 - frac))
	b.DataSSD = stored / 1e9 * m.Prices.SSDPerGB

	unique := capacityBytes * frac * (1 - w.DedupRatio)
	b.TableSSD, b.DRAM = m.tableCosts(unique)

	reduced := math.Min(bps, maxT)
	cores := w.CPUNsPerByte * reduced / 1e9
	b.CPU = cores / m.Platform.CoresPerSocket * m.Prices.CPU

	b.FPGA = m.fpgaCost(math.Ceil(reduced/m.Platform.BaselineFPGARate), m.Platform.BaselineFPGAUtil)
	return b
}

// Saving returns the fractional cost saving of a configuration versus
// the no-reduction server of the same effective capacity.
func (m Model) Saving(b Breakdown, capacityBytes float64) float64 {
	base := m.NoReduction(capacityBytes).Total()
	if base == 0 {
		return 0
	}
	return 1 - b.Total()/base
}
