package fingerprint

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestOfMatchesSHA256(t *testing.T) {
	data := []byte("fidr fine-grain inline data reduction")
	want := sha256.Sum256(data)
	if got := Of(data); got != FP(want) {
		t.Fatalf("Of mismatch: got %v want %x", got, want)
	}
}

func TestOfDistinguishesContent(t *testing.T) {
	a := Of([]byte("chunk-a"))
	b := Of([]byte("chunk-b"))
	if a == b {
		t.Fatal("different content produced identical fingerprints")
	}
}

func TestBucketInRange(t *testing.T) {
	f := Of([]byte("x"))
	for _, n := range []uint64{1, 2, 7, 4096, 1 << 31} {
		if b := f.Bucket(n); b >= n {
			t.Errorf("Bucket(%d) = %d out of range", n, b)
		}
	}
}

func TestBucketZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bucket(0) did not panic")
		}
	}()
	Of([]byte("x")).Bucket(0)
}

func TestBucketDeterministic(t *testing.T) {
	f := Of([]byte("determinism"))
	if f.Bucket(1024) != f.Bucket(1024) {
		t.Fatal("Bucket not deterministic")
	}
}

func TestBucketUniformity(t *testing.T) {
	// With 4096 fingerprints over 16 buckets, each bucket should receive
	// roughly 256; allow generous slack (binomial stddev ~15.5).
	const n, buckets = 4096, 16
	counts := make([]int, buckets)
	var seed [8]byte
	for i := 0; i < n; i++ {
		seed[0], seed[1], seed[2] = byte(i), byte(i>>8), byte(i>>16)
		counts[Of(seed[:]).Bucket(buckets)]++
	}
	for b, c := range counts {
		if c < 256-100 || c > 256+100 {
			t.Errorf("bucket %d has %d entries, expected about 256", b, c)
		}
	}
}

func TestString(t *testing.T) {
	f := Of([]byte("hex"))
	s := f.String()
	if len(s) != 64 {
		t.Fatalf("hex length %d, want 64", len(s))
	}
}

func TestIsZero(t *testing.T) {
	var z FP
	if !z.IsZero() {
		t.Fatal("zero FP not reported as zero")
	}
	if Of([]byte("nonzero")).IsZero() {
		t.Fatal("nonzero FP reported as zero")
	}
}

func TestCompareProperties(t *testing.T) {
	cmpMatchesBytes := func(a, b []byte) bool {
		fa, fb := Of(a), Of(b)
		return fa.Compare(fb) == bytes.Compare(fa[:], fb[:])
	}
	if err := quick.Check(cmpMatchesBytes, nil); err != nil {
		t.Error(err)
	}
	antisym := func(a, b []byte) bool {
		fa, fb := Of(a), Of(b)
		return fa.Compare(fb) == -fb.Compare(fa)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareEqual(t *testing.T) {
	f := Of([]byte("same"))
	if f.Compare(f) != 0 {
		t.Fatal("Compare(self) != 0")
	}
}

func TestShortStable(t *testing.T) {
	f := Of([]byte("short"))
	if f.Short() != f.Short() {
		t.Fatal("Short not deterministic")
	}
	g := Of([]byte("other"))
	if f.Short() == g.Short() {
		t.Fatal("Short collided on trivially different inputs")
	}
}

func BenchmarkOf4K(b *testing.B) {
	data := bytes.Repeat([]byte{0xab}, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Of(data)
	}
}
