// Package fingerprint computes and manipulates chunk fingerprints.
//
// A fingerprint is the SHA-256 digest of a chunk's content and serves as the
// chunk's identity for deduplication: two chunks are considered identical if
// and only if their fingerprints match (the paper, like CIDR and prior work,
// assumes a strong hash has no practical collisions at PB scale).
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Size is the byte length of a fingerprint (SHA-256 digest).
const Size = sha256.Size

// FP is a chunk fingerprint.
type FP [Size]byte

// Of returns the fingerprint of data.
func Of(data []byte) FP {
	return FP(sha256.Sum256(data))
}

// Bucket maps the fingerprint to a bucket index in a table with nBuckets
// buckets using the paper's "simple modular function". The low 8 bytes of
// the digest are used; SHA-256 output is uniform, so any fixed slice works.
func (f FP) Bucket(nBuckets uint64) uint64 {
	if nBuckets == 0 {
		panic("fingerprint: zero bucket count")
	}
	return binary.BigEndian.Uint64(f[24:]) % nBuckets
}

// Short returns a cheap 8-byte digest prefix, useful as a map key or for
// sampled predictor structures that intentionally tolerate collisions.
func (f FP) Short() uint64 {
	return binary.BigEndian.Uint64(f[:8])
}

// String returns the hex encoding of the fingerprint.
func (f FP) String() string {
	return hex.EncodeToString(f[:])
}

// IsZero reports whether f is the all-zero fingerprint. The zero value is
// reserved as "no fingerprint" in table entries.
func (f FP) IsZero() bool {
	return f == FP{}
}

// Compare lexicographically compares two fingerprints, returning
// -1, 0 or +1. Fingerprints sort as unsigned big-endian integers.
func (f FP) Compare(g FP) int {
	for i := 0; i < Size; i++ {
		switch {
		case f[i] < g[i]:
			return -1
		case f[i] > g[i]:
			return 1
		}
	}
	return 0
}
