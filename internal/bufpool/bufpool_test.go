package bufpool

import "testing"

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(4096)
	if len(b) != 4096 {
		t.Fatalf("len %d", len(b))
	}
	b[0] = 0xAA
	Put(b)
	c := Get(4096)
	if len(c) != 4096 {
		t.Fatalf("reused len %d", len(c))
	}
	// Contents are unspecified on Get; only the length contract holds.
	Put(c)
}

func TestGetZeroAndPutNil(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatal("Get(0) should be nil")
	}
	Put(nil) // must not panic
}

func TestSizeClassesDoNotMix(t *testing.T) {
	Put(make([]byte, 512))
	b := Get(4096)
	if len(b) != 4096 || cap(b) < 4096 {
		t.Fatalf("got %d/%d buffer for a 4096 request", len(b), cap(b))
	}
}

// TestSteadyStateAllocationFree is the satellite regression: once the
// pool is primed, a copy-Put cycle must not allocate. Without the pool
// every 4-KB chunk copy was one fresh allocation.
func TestSteadyStateAllocationFree(t *testing.T) {
	src := make([]byte, 4096)
	// Prime one buffer so the free list is nonempty.
	Put(make([]byte, 4096))
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get(4096)
		copy(b, src)
		Put(b)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Get/copy/Put allocates %.1f objects per op, want 0", allocs)
	}
}
