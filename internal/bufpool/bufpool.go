// Package bufpool recycles chunk-sized byte buffers across the write
// path. The hot loops copy every 4-KB client chunk once on ingest (into
// NIC memory for FIDR, into the host request buffer for the baseline)
// and once more into the read cache; allocating each copy fresh made the
// allocator the second-hottest site in write-path profiles. Buffers are
// taken here instead and returned once container packing (or cache
// eviction) no longer references them.
//
// The pool is deliberately a mutexed free list rather than a sync.Pool:
// Get/Put sit on serial orchestration code (never inside accelerator
// lanes), the working set is bounded by the NIC buffer, and a free list
// keeps Put allocation-free so testing.AllocsPerRun can assert the
// steady state.
package bufpool

import "sync"

// maxPooledBytes caps retained memory; beyond it, Put drops buffers to
// the garbage collector. 64 MiB covers the default 16-MiB NIC buffer,
// the baseline batch and the read cache with room for bursts.
const maxPooledBytes = 64 << 20

var global = &pool{classes: make(map[int][][]byte)}

// pool holds per-capacity free lists. Chunk copies are all ChunkSize
// bytes in one server, so the map stays tiny; exact-capacity classes
// keep Get from ever returning an oversized buffer.
type pool struct {
	mu      sync.Mutex
	classes map[int][][]byte
	held    int
}

// Get returns a buffer of length n. Contents are unspecified; callers
// must overwrite all n bytes.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	global.mu.Lock()
	if free := global.classes[n]; len(free) > 0 {
		b := free[len(free)-1]
		global.classes[n] = free[:len(free)-1]
		global.held -= n
		global.mu.Unlock()
		return b[:n]
	}
	global.mu.Unlock()
	return make([]byte, n)
}

// Put returns a buffer for reuse. The caller must not touch b afterward.
// Nil and zero-capacity buffers are ignored; the pool drops buffers once
// its retained-byte budget is exhausted.
func Put(b []byte) {
	c := cap(b)
	if c == 0 {
		return
	}
	global.mu.Lock()
	if global.held+c <= maxPooledBytes {
		global.classes[c] = append(global.classes[c], b[:c])
		global.held += c
	}
	global.mu.Unlock()
}

// Held reports the bytes currently retained (tests and introspection).
func Held() int {
	global.mu.Lock()
	defer global.mu.Unlock()
	return global.held
}
