// Package nic models the server's network interface cards.
//
// Two variants exist (§5.4):
//
//   - Plain: the baseline's NIC. It terminates TCP/storage protocol in
//     hardware but DMA-writes every client byte into host memory, where
//     software takes over.
//   - FIDR: the paper's data-reduction NIC. It buffers client writes in
//     NIC memory, hashes chunks with on-NIC SHA-256 cores, answers reads
//     that hit the in-NIC write buffer, and schedules batches of unique
//     chunks for direct P2P transfer to the Compression Engines — host
//     memory sees only hash values and per-chunk flags.
package nic

import (
	"errors"
	"fmt"
	"time"

	"fidr/internal/bufpool"
	"fidr/internal/chunk"
	"fidr/internal/fingerprint"
	"fidr/internal/lanes"
	"fidr/internal/metrics"
)

// WriteEntry is one buffered chunk with its metadata. Chunks are 4 KB
// under fixed chunking and 1..Max bytes under CDC.
type WriteEntry struct {
	LBA  uint64
	Data []byte
	// Size is len(Data) at buffering time. It survives HashAll's
	// Data-stripping (the host sees hashes and sizes, never bytes), so
	// dedup accounting can attribute the right byte count per chunk
	// under variable-size chunking.
	Size int
	// FP is the chunk fingerprint; computed by the NIC hash cores in
	// FIDR, by the FPGA array in the baseline.
	FP fingerprint.FP
	// Hashed records whether FP is valid.
	Hashed bool
}

// Config configures a FIDR NIC.
type Config struct {
	// BufferBytes bounds the in-NIC chunk buffer (battery-backed NIC
	// DRAM; writes are acked once buffered, §7.6.1).
	BufferBytes int
	// HashLanes is the modeled SHA-256 core count; <= 0 selects the
	// GOMAXPROCS-derived default.
	HashLanes int
	// Chunking selects the ingest chunker. ModeFixed (zero value)
	// leaves chunking to the caller (BufferWrite per chunk); ModeCDC
	// enables BufferStream, which runs the skip-ahead content-defined
	// chunker over byte streams inside the NIC.
	Chunking chunk.Config
}

// ErrBufferFull is returned when the in-NIC buffer cannot accept a write.
var ErrBufferFull = errors.New("nic: in-NIC buffer full")

// Stats counts NIC activity.
type Stats struct {
	WritesBuffered uint64
	BytesBuffered  uint64
	HashOps        uint64
	HashBytes      uint64
	ReadLookups    uint64
	ReadHits       uint64
	BatchesMade    uint64
	UniqueSent     uint64
	DuplicateDrops uint64
}

// FIDR is the data-reduction NIC.
type FIDR struct {
	// bufferCap bounds the in-NIC chunk buffer in bytes (the NIC's
	// battery-backed DRAM; writes are acked once buffered, §7.6.1).
	bufferCap int
	buffer    []WriteEntry
	buffered  int
	// lbaIndex finds the most recent buffered entry per LBA for the
	// read fast path (§5.3 read step 2).
	lbaIndex map[uint64]int
	// hashLanes is the modeled SHA-256 core count: HashAll fans the
	// batch across this many worker goroutines (1 = serial).
	hashLanes int
	// chunker cuts byte streams into variable-size chunks for
	// BufferStream; nil outside CDC mode. bounds is its reusable
	// boundary scratch (no per-call allocation).
	chunker *chunk.CDC
	bounds  []int

	stats Stats
	obs   *nicObs
}

// nicObs mirrors NIC counters into a live registry; nil disables it.
type nicObs struct {
	writes, bytes, hashOps *metrics.Counter
	readLookups, readHits  *metrics.Counter
	batches, uniqueSent    *metrics.Counter
	dupDrops               *metrics.Counter
	// busyNS accumulates hash-section wall time; its windowed rate is
	// the NIC's duty cycle in the sampler. hashLaneBusyNS sums per-lane
	// busy time across the SHA-core array (exceeds busyNS when lanes
	// overlap); hashLanesG reports the configured lane count.
	busyNS         *metrics.Counter
	hashLaneBusyNS *metrics.Counter
	hashLanesG     *metrics.Gauge
	// queueDepth / bufferedBytes track in-NIC buffer occupancy live.
	queueDepth    *metrics.Gauge
	bufferedBytes *metrics.Gauge
}

func newNICObs(reg *metrics.Registry) *nicObs {
	return &nicObs{
		writes:         reg.Counter("nic.writes_buffered"),
		bytes:          reg.Counter("nic.bytes_buffered"),
		hashOps:        reg.Counter("nic.hash_ops"),
		readLookups:    reg.Counter("nic.read_lookups"),
		readHits:       reg.Counter("nic.read_hits"),
		batches:        reg.Counter("nic.batches_made"),
		uniqueSent:     reg.Counter("nic.unique_sent"),
		dupDrops:       reg.Counter("nic.duplicate_drops"),
		busyNS:         reg.Counter("nic.busy_ns"),
		hashLaneBusyNS: reg.Counter("nic.hash_lane_busy_ns"),
		hashLanesG:     reg.Gauge("nic.hash_lanes"),
		queueDepth:     reg.Gauge("nic.queue_depth"),
		bufferedBytes:  reg.Gauge("nic.buffered_bytes"),
	}
}

// Instrument mirrors NIC activity into reg under "nic.*". Call once,
// before serving traffic.
func (n *FIDR) Instrument(reg *metrics.Registry) {
	n.obs = newNICObs(reg)
	n.obs.hashLanesG.Set(float64(n.hashLanes))
}

// New creates a FIDR NIC from cfg.
func New(cfg Config) (*FIDR, error) {
	if cfg.BufferBytes < 4096 {
		return nil, fmt.Errorf("nic: buffer capacity %d too small", cfg.BufferBytes)
	}
	n := &FIDR{bufferCap: cfg.BufferBytes, lbaIndex: make(map[uint64]int), hashLanes: 1}
	if cfg.HashLanes != 0 {
		n.hashLanes = lanes.Normalize(cfg.HashLanes)
	}
	if cfg.Chunking.Mode == chunk.ModeCDC {
		ck := cfg.Chunking
		if err := ck.Normalize(); err != nil {
			return nil, fmt.Errorf("nic: %w", err)
		}
		if ck.Max > cfg.BufferBytes {
			return nil, fmt.Errorf("nic: max chunk %d exceeds buffer capacity %d", ck.Max, cfg.BufferBytes)
		}
		c, err := ck.NewChunker()
		if err != nil {
			return nil, fmt.Errorf("nic: %w", err)
		}
		n.chunker = c
	}
	return n, nil
}

// NewFIDR creates a FIDR NIC with the given buffer capacity in bytes.
// The NIC starts with one hash lane (serial); SetHashLanes widens the
// SHA-core array.
func NewFIDR(bufferCap int) (*FIDR, error) {
	return New(Config{BufferBytes: bufferCap})
}

// SetHashLanes sets the modeled SHA-256 core count HashAll fans out
// across. n <= 0 selects the GOMAXPROCS-derived default. Results are
// byte-identical at any lane count; only wall time changes.
func (n *FIDR) SetHashLanes(count int) {
	n.hashLanes = lanes.Normalize(count)
	if n.obs != nil {
		n.obs.hashLanesG.Set(float64(n.hashLanes))
	}
}

// HashLanes returns the configured SHA-core lane count.
func (n *FIDR) HashLanes() int { return n.hashLanes }

// BufferWrite accepts one chunk into the in-NIC buffer. The data is
// copied (the NIC owns its buffer memory). Returns ErrBufferFull when the
// buffer cannot hold the chunk; the caller must drain a batch first.
func (n *FIDR) BufferWrite(lba uint64, data []byte) error {
	if n.buffered+len(data) > n.bufferCap {
		return ErrBufferFull
	}
	cp := bufpool.Get(len(data))
	copy(cp, data)
	n.buffer = append(n.buffer, WriteEntry{LBA: lba, Data: cp, Size: len(data)})
	n.lbaIndex[lba] = len(n.buffer) - 1
	n.buffered += len(data)
	n.stats.WritesBuffered++
	n.stats.BytesBuffered += uint64(len(data))
	if n.obs != nil {
		n.obs.writes.Inc()
		n.obs.bytes.Add(uint64(len(data)))
		n.obs.queueDepth.Set(float64(len(n.buffer)))
		n.obs.bufferedBytes.Set(float64(n.buffered))
	}
	return nil
}

// ErrNoChunker is returned by BufferStream when the NIC was not
// configured for content-defined chunking.
var ErrNoChunker = errors.New("nic: not configured for content-defined chunking")

// BufferStream runs the NIC's content-defined chunker over a stream
// segment beginning at absolute stream byte offset and buffers the
// resulting variable-size chunks, each addressed by its extent (stream
// byte offset of the chunk start). It returns the number of bytes
// consumed: when the in-NIC buffer fills mid-segment, consumed stops at
// the last buffered chunk boundary with ErrBufferFull, and the caller
// resumes with offset+consumed and data[consumed:] after draining a
// batch — the chunker's boundary rule depends only on bytes at and
// after a boundary, so the resumed call reproduces the remaining
// boundaries exactly.
//
// Segmentation is the caller's: the final chunk of each call ends at
// len(data), so callers should feed segments at their own record or
// batch boundaries (the bench harness uses the backup-generation
// segments the trace provides).
func (n *FIDR) BufferStream(offset uint64, data []byte) (int, error) {
	if n.chunker == nil {
		return 0, ErrNoChunker
	}
	n.bounds = n.chunker.AppendBoundaries(n.bounds[:0], data)
	consumed := 0
	for _, b := range n.bounds {
		if err := n.BufferWrite(offset+uint64(consumed), data[consumed:b]); err != nil {
			return consumed, err
		}
		consumed = b
	}
	return consumed, nil
}

// Buffered returns the number of buffered chunks.
func (n *FIDR) Buffered() int { return len(n.buffer) }

// BufferedBytes returns the bytes held in the in-NIC buffer.
func (n *FIDR) BufferedBytes() int { return n.buffered }

// HashAll runs the NIC's SHA-256 core array over unhashed buffered
// chunks and returns the (LBA, fingerprint) pairs to send to the host —
// the only write-path data that touches host memory in FIDR, so the
// returned entries carry no chunk bytes (Data is nil; the data itself
// stays in NIC memory until ScheduleBatch).
//
// Unhashed chunks fan out across the configured hash lanes with a
// deterministic chunk->lane assignment; fingerprints and stats are
// committed in buffer order after the join, so the result is
// byte-identical to the serial path at any lane count.
func (n *FIDR) HashAll() []WriteEntry {
	start := time.Now()
	var pending []int
	for i := range n.buffer {
		if !n.buffer[i].Hashed {
			pending = append(pending, i)
		}
	}
	if len(pending) > 0 {
		k := lanes.Clamp(n.hashLanes, len(pending))
		busy := lanes.Run(len(pending), k, func(_, p int) {
			e := &n.buffer[pending[p]]
			e.FP = fingerprint.Of(e.Data)
			e.Hashed = true
		})
		// In-order commit: counters advance in buffer order regardless
		// of which lane hashed which chunk.
		for _, i := range pending {
			n.stats.HashOps++
			n.stats.HashBytes += uint64(len(n.buffer[i].Data))
		}
		if n.obs != nil {
			n.obs.hashOps.Add(uint64(len(pending)))
			n.obs.busyNS.Add(uint64(time.Since(start)))
			n.obs.hashLaneBusyNS.Add(uint64(lanes.Total(busy)))
		}
	}
	out := make([]WriteEntry, len(n.buffer))
	for i := range n.buffer {
		e := n.buffer[i]
		e.Data = nil
		out[i] = e
	}
	return out
}

// LookupRead serves a read from the in-NIC write buffer if the LBA is
// still buffered, returning the freshest data for that LBA.
func (n *FIDR) LookupRead(lba uint64) ([]byte, bool) {
	n.stats.ReadLookups++
	if n.obs != nil {
		n.obs.readLookups.Inc()
	}
	i, ok := n.lbaIndex[lba]
	if !ok {
		return nil, false
	}
	n.stats.ReadHits++
	if n.obs != nil {
		n.obs.readHits.Inc()
	}
	return n.buffer[i].Data, true
}

// ScheduleBatch consumes the buffer given per-chunk uniqueness flags
// (computed by the host's table lookup) and returns the batch of unique
// chunks for the Compression Engines. Duplicate chunks are dropped from
// the NIC buffer — they never cross PCIe, which is FIDR's bandwidth win.
// flags must align with the entries returned by HashAll.
func (n *FIDR) ScheduleBatch(flags []bool) ([]WriteEntry, error) {
	if len(flags) != len(n.buffer) {
		return nil, fmt.Errorf("nic: %d flags for %d buffered chunks", len(flags), len(n.buffer))
	}
	var unique []WriteEntry
	for i, isUnique := range flags {
		if isUnique {
			unique = append(unique, n.buffer[i])
			n.stats.UniqueSent++
			if n.obs != nil {
				n.obs.uniqueSent.Inc()
			}
		} else {
			// Duplicates never leave the NIC; their buffer memory is
			// recycled immediately. Unique chunks transfer ownership to
			// the caller, who releases them after container packing.
			bufpool.Put(n.buffer[i].Data)
			n.stats.DuplicateDrops++
			if n.obs != nil {
				n.obs.dupDrops.Inc()
			}
		}
	}
	n.stats.BatchesMade++
	if n.obs != nil {
		n.obs.batches.Inc()
	}
	n.buffer = n.buffer[:0]
	n.buffered = 0
	n.lbaIndex = make(map[uint64]int)
	if n.obs != nil {
		n.obs.queueDepth.Set(0)
		n.obs.bufferedBytes.Set(0)
	}
	return unique, nil
}

// Stats returns a snapshot of NIC counters.
func (n *FIDR) Stats() Stats { return n.stats }

// Plain is the baseline NIC: no buffering or hashing support; it only
// counts traffic it DMA-writes toward host memory.
type Plain struct {
	stats Stats
	obs   *nicObs
}

// NewPlain creates a baseline NIC.
func NewPlain() *Plain { return &Plain{} }

// Instrument mirrors NIC activity into reg under "nic.*". Call once,
// before serving traffic.
func (n *Plain) Instrument(reg *metrics.Registry) { n.obs = newNICObs(reg) }

// ReceiveWrite counts one client chunk DMA'd to host memory.
func (n *Plain) ReceiveWrite(data []byte) {
	n.stats.WritesBuffered++
	n.stats.BytesBuffered += uint64(len(data))
	if n.obs != nil {
		n.obs.writes.Inc()
		n.obs.bytes.Add(uint64(len(data)))
	}
}

// Stats returns a snapshot of NIC counters.
func (n *Plain) Stats() Stats { return n.stats }
