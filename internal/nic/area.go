package nic

import "fidr/internal/hwtree"

// FPGA area model for the FIDR NIC (Table 4). The NIC splits into a basic
// storage NIC (ethernet + TCP offload + protocol decode — implementable as
// fixed ASIC, per §7.7.1) and the added data-reduction support, which is
// dominated by SHA-256 cores and the in-NIC buffer's DDR controller.
//
// Block costs are calibrated from the two workload columns of Table 4:
// write-only needs 16 SHA cores to hash the full 64-Gbps line rate, the
// mixed workload hashes only the write half with 8 cores, and the
// remaining support logic (buffer manager, compression scheduler, LBA
// lookup, PCIe/DMA glue) is workload-independent.

const (
	// shaCoreThroughput is one SHA-256 core's hash rate in bytes/s.
	shaCoreThroughput = 0.5e9
	// LineRateBytes is the prototype NIC's 64-Gbps target in bytes/s.
	LineRateBytes = 8e9

	shaLUTs     = 5125
	shaFFs      = 5125
	shaBRAMx2   = 5 // BRAM per two cores (cores share message buffers)
	supportLUT  = 43000
	supportFF   = 46000
	supportBRAM = 55
)

// BasicNIC is the ethernet + dual 32-Gbps TCP-offload + protocol engine
// block (Table 4's "Basic NIC + TCP Offload" column).
var BasicNIC = hwtree.Resources{LUTs: 166000, FFs: 169000, BRAMs: 1024}

// SHACoresFor returns the SHA-256 core count needed to hash writeBytes/s.
func SHACoresFor(writeRate float64) int {
	if writeRate <= 0 {
		return 0
	}
	n := int(writeRate / shaCoreThroughput)
	if float64(n)*shaCoreThroughput < writeRate {
		n++
	}
	return n
}

// SupportResources returns the data-reduction support block for a NIC
// whose write fraction of line rate is writeFraction (1.0 for write-only
// workloads, 0.5 for the 50/50 mixed workload).
func SupportResources(writeFraction float64) hwtree.Resources {
	if writeFraction < 0 {
		writeFraction = 0
	}
	if writeFraction > 1 {
		writeFraction = 1
	}
	cores := SHACoresFor(LineRateBytes * writeFraction)
	return hwtree.Resources{
		LUTs:  supportLUT + cores*shaLUTs,
		FFs:   supportFF + cores*shaFFs,
		BRAMs: supportBRAM + cores*shaBRAMx2/2,
	}
}

// TotalResources is the full FIDR NIC build.
func TotalResources(writeFraction float64) hwtree.Resources {
	return BasicNIC.Add(SupportResources(writeFraction))
}
