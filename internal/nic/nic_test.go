package nic

import (
	"bytes"
	"math/rand"
	"testing"

	"fidr/internal/chunk"
	"fidr/internal/fingerprint"
)

func TestNewFIDRValidation(t *testing.T) {
	if _, err := NewFIDR(100); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	if _, err := NewFIDR(1 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestBufferWriteAndFull(t *testing.T) {
	n, _ := NewFIDR(3 * 4096)
	chunk := make([]byte, 4096)
	for i := 0; i < 3; i++ {
		chunk[0] = byte(i)
		if err := n.BufferWrite(uint64(i), chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.BufferWrite(9, chunk); err != ErrBufferFull {
		t.Fatalf("expected ErrBufferFull, got %v", err)
	}
	if n.Buffered() != 3 || n.BufferedBytes() != 3*4096 {
		t.Fatalf("buffered %d/%d", n.Buffered(), n.BufferedBytes())
	}
}

func TestBufferCopiesData(t *testing.T) {
	n, _ := NewFIDR(1 << 20)
	data := []byte("mutable client buffer........................")
	n.BufferWrite(1, data)
	data[0] = 'X'
	got, ok := n.LookupRead(1)
	if !ok || got[0] == 'X' {
		t.Fatal("NIC aliased the client buffer")
	}
}

func TestHashAllComputesSHA(t *testing.T) {
	n, _ := NewFIDR(1 << 20)
	a := bytes.Repeat([]byte{1}, 4096)
	b := bytes.Repeat([]byte{2}, 4096)
	n.BufferWrite(10, a)
	n.BufferWrite(20, b)
	entries := n.HashAll()
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].FP != fingerprint.Of(a) || entries[1].FP != fingerprint.Of(b) {
		t.Fatal("NIC hash mismatch")
	}
	if st := n.Stats(); st.HashOps != 2 || st.HashBytes != 2*4096 {
		t.Fatalf("hash stats %+v", st)
	}
	// Re-hashing is idempotent (cores skip hashed entries).
	n.HashAll()
	if st := n.Stats(); st.HashOps != 2 {
		t.Fatalf("re-hash not skipped: %d ops", st.HashOps)
	}
}

func TestLookupReadHitAndMiss(t *testing.T) {
	n, _ := NewFIDR(1 << 20)
	v1 := bytes.Repeat([]byte{1}, 4096)
	v2 := bytes.Repeat([]byte{2}, 4096)
	n.BufferWrite(5, v1)
	n.BufferWrite(5, v2) // overwrite same LBA: freshest wins
	got, ok := n.LookupRead(5)
	if !ok || !bytes.Equal(got, v2) {
		t.Fatal("in-NIC read did not return freshest write")
	}
	if _, ok := n.LookupRead(6); ok {
		t.Fatal("read hit for unbuffered LBA")
	}
	st := n.Stats()
	if st.ReadLookups != 2 || st.ReadHits != 1 {
		t.Fatalf("read stats %+v", st)
	}
}

func TestScheduleBatchFiltersUniques(t *testing.T) {
	n, _ := NewFIDR(1 << 20)
	for i := 0; i < 4; i++ {
		n.BufferWrite(uint64(i), bytes.Repeat([]byte{byte(i)}, 4096))
	}
	n.HashAll()
	batch, err := n.ScheduleBatch([]bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].LBA != 0 || batch[1].LBA != 2 {
		t.Fatalf("batch = %+v", batch)
	}
	st := n.Stats()
	if st.UniqueSent != 2 || st.DuplicateDrops != 2 || st.BatchesMade != 1 {
		t.Fatalf("batch stats %+v", st)
	}
	// Buffer drained: LBA lookups now miss, and capacity is reclaimed.
	if n.Buffered() != 0 || n.BufferedBytes() != 0 {
		t.Fatal("buffer not drained")
	}
	if _, ok := n.LookupRead(0); ok {
		t.Fatal("drained entry still readable")
	}
}

func TestScheduleBatchFlagMismatch(t *testing.T) {
	n, _ := NewFIDR(1 << 20)
	n.BufferWrite(1, make([]byte, 4096))
	if _, err := n.ScheduleBatch([]bool{true, false}); err == nil {
		t.Fatal("flag count mismatch accepted")
	}
}

func TestPlainNIC(t *testing.T) {
	p := NewPlain()
	p.ReceiveWrite(make([]byte, 4096))
	p.ReceiveWrite(make([]byte, 4096))
	if st := p.Stats(); st.WritesBuffered != 2 || st.BytesBuffered != 8192 {
		t.Fatalf("plain stats %+v", st)
	}
}

func TestSHACoresFor(t *testing.T) {
	if got := SHACoresFor(LineRateBytes); got != 16 {
		t.Errorf("full line rate needs %d cores, want 16", got)
	}
	if got := SHACoresFor(LineRateBytes / 2); got != 8 {
		t.Errorf("half line rate needs %d cores, want 8", got)
	}
	if got := SHACoresFor(0); got != 0 {
		t.Errorf("zero rate needs %d cores", got)
	}
	if got := SHACoresFor(1); got != 1 {
		t.Errorf("tiny rate needs %d cores", got)
	}
}

func TestAreaMatchesTable4(t *testing.T) {
	within := func(got, want, tolPct int) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d*100 <= want*tolPct
	}
	// Write-only: support 125K LUT / 128K FF / 95 BRAM.
	w := SupportResources(1.0)
	if !within(w.LUTs, 125000, 5) || !within(w.FFs, 128000, 5) || !within(w.BRAMs, 95, 10) {
		t.Errorf("write-only support = %+v, paper 125K/128K/95", w)
	}
	// Mixed: support 84K LUT / 87K FF / 75 BRAM.
	m := SupportResources(0.5)
	if !within(m.LUTs, 84000, 5) || !within(m.FFs, 87000, 5) || !within(m.BRAMs, 75, 10) {
		t.Errorf("mixed support = %+v, paper 84K/87K/75", m)
	}
	// Totals: write-only 290K LUT (24.5% of VCU1525).
	tot := TotalResources(1.0)
	if !within(tot.LUTs, 290000, 5) || !within(tot.BRAMs, 1119, 5) {
		t.Errorf("write-only total = %+v, paper 290K/1119", tot)
	}
	// Clamping.
	if SupportResources(-1) != SupportResources(0) {
		t.Error("negative fraction not clamped")
	}
	if SupportResources(2) != SupportResources(1) {
		t.Error(">1 fraction not clamped")
	}
}

// TestBufferStream exercises the CDC ingest path: variable-size chunks
// extent-addressed by stream offset, drain-and-resume on ErrBufferFull,
// and chunk coverage of the whole stream.
func TestBufferStream(t *testing.T) {
	n, err := New(Config{
		BufferBytes: 64 << 10,
		Chunking:    chunk.Config{Mode: chunk.ModeCDC, Min: 1024, Avg: 4096, Max: 16384},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(77)).Read(data)

	var got []WriteEntry
	off := 0
	for off < len(data) {
		consumed, err := n.BufferStream(uint64(off), data[off:])
		if err != nil && err != ErrBufferFull {
			t.Fatal(err)
		}
		if err == ErrBufferFull && consumed == 0 && n.Buffered() == 0 {
			t.Fatal("no progress with empty buffer")
		}
		off += consumed
		// Drain: host marks everything unique; chunks go to the engines.
		entries := n.HashAll()
		flags := make([]bool, len(entries))
		for i := range flags {
			flags[i] = true
		}
		batch, err := n.ScheduleBatch(flags)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}

	// Extents must tile [0, len(data)) exactly and match content.
	pos := uint64(0)
	for i, e := range got {
		if e.LBA != pos {
			t.Fatalf("chunk %d at extent %d, want %d", i, e.LBA, pos)
		}
		if e.Size != len(e.Data) || e.Size <= 0 || e.Size > 16384 {
			t.Fatalf("chunk %d size %d (len %d) out of range", i, e.Size, len(e.Data))
		}
		if !bytes.Equal(e.Data, data[pos:pos+uint64(e.Size)]) {
			t.Fatalf("chunk %d content mismatch", i)
		}
		pos += uint64(e.Size)
	}
	if pos != uint64(len(data)) {
		t.Fatalf("chunks cover %d bytes, want %d", pos, len(data))
	}

	// Chunking inside the NIC must match chunking the whole stream at
	// once when drains land on boundaries (resumability).
	want := chunk.NewCDC(1024, 4096, 16384).Boundaries(data)
	if len(got) != len(want) {
		t.Fatalf("%d chunks via BufferStream, %d via whole-stream chunking", len(got), len(want))
	}

	// Misconfigured: stream API without CDC mode.
	plainN, _ := NewFIDR(1 << 20)
	if _, err := plainN.BufferStream(0, data[:4096]); err != ErrNoChunker {
		t.Fatalf("BufferStream without chunker: %v, want ErrNoChunker", err)
	}
}
