package chunk

import "fmt"

// This file implements the read-modify-write analysis behind Figure 3 of
// the paper: deduplication with large chunking over a trace of small (4-KB)
// client writes causes the reduction module to fetch missing 4-KB blocks
// from the SSDs to assemble each large chunk, and to write whole large
// chunks back, multiplying device IO. Large chunking also degrades
// duplicate detection (a large chunk is a duplicate only if every interior
// block matches), adding further writes.

// BlockWrite is one small-block client write: an LBA in units of the block
// size and an opaque content identity. Two blocks with equal Content are
// byte-identical; the analysis needs only identity, not payload.
type BlockWrite struct {
	LBA     uint64
	Content uint64
}

// RMWConfig parameterizes the Figure 3 simulation.
type RMWConfig struct {
	// BlockSize is the client IO granularity in bytes (4096 in the paper).
	BlockSize int
	// ChunkSize is the deduplication chunk size in bytes. Equal to
	// BlockSize reproduces the small-chunking system; 32768 reproduces
	// CIDR-style large chunking.
	ChunkSize int
	// BufferBytes is the request buffer in front of deduplication
	// (4 MiB in the paper). Writes inside the buffer to the same block
	// are absorbed, and co-buffered neighbours can complete a large
	// chunk without SSD fetches.
	BufferBytes int
}

// Validate checks the configuration.
func (c RMWConfig) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("chunk: BlockSize %d must be positive", c.BlockSize)
	}
	if c.ChunkSize < c.BlockSize || c.ChunkSize%c.BlockSize != 0 {
		return fmt.Errorf("chunk: ChunkSize %d must be a positive multiple of BlockSize %d", c.ChunkSize, c.BlockSize)
	}
	if c.BufferBytes < c.BlockSize {
		return fmt.Errorf("chunk: BufferBytes %d smaller than one block", c.BufferBytes)
	}
	return nil
}

// RMWResult summarizes device traffic caused by a trace under one
// chunking configuration.
type RMWResult struct {
	// ClientBytes is the total bytes the client wrote.
	ClientBytes uint64
	// DeviceReadBytes counts SSD reads issued to fetch missing blocks
	// during large-chunk assembly.
	DeviceReadBytes uint64
	// DeviceWriteBytes counts SSD writes of unique chunks.
	DeviceWriteBytes uint64
	// ChunksFormed is the number of dedup chunks assembled.
	ChunksFormed uint64
	// DuplicateChunks is how many assembled chunks deduplicated away.
	DuplicateChunks uint64
	// FetchedBlocks is the number of missing small blocks fetched from
	// the SSDs during assembly.
	FetchedBlocks uint64
}

// IOBytes returns total device bytes moved (reads + writes).
func (r RMWResult) IOBytes() uint64 { return r.DeviceReadBytes + r.DeviceWriteBytes }

// Amplification returns device bytes per client byte.
func (r RMWResult) Amplification() float64 {
	if r.ClientBytes == 0 {
		return 0
	}
	return float64(r.IOBytes()) / float64(r.ClientBytes)
}

// DedupRatio returns the fraction of assembled chunks that were duplicates.
func (r RMWResult) DedupRatio() float64 {
	if r.ChunksFormed == 0 {
		return 0
	}
	return float64(r.DuplicateChunks) / float64(r.ChunksFormed)
}

// fnv1a64 combines words into a 64-bit identity for a large chunk's
// content vector.
func fnv1a64(words []uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range words {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// SimulateRMW runs the Figure 3 analysis: it feeds the write trace through
// a request buffer, assembles dedup chunks of cfg.ChunkSize, fetches
// missing on-storage blocks, deduplicates assembled chunks by content and
// counts device traffic.
func SimulateRMW(cfg RMWConfig, writes []BlockWrite) (RMWResult, error) {
	if err := cfg.Validate(); err != nil {
		return RMWResult{}, err
	}
	var res RMWResult
	blocksPerChunk := cfg.ChunkSize / cfg.BlockSize
	bufBlocks := cfg.BufferBytes / cfg.BlockSize

	// stored maps block LBA -> content currently on storage.
	stored := make(map[uint64]uint64)
	// seenChunks maps large-chunk content identity -> true (the
	// Hash-PBN table of the large-chunk system, identity only).
	seenChunks := make(map[uint64]bool)

	buffer := make(map[uint64]uint64, bufBlocks) // LBA -> content
	order := make([]uint64, 0, bufBlocks)        // arrival order of new LBAs

	flush := func() {
		if len(buffer) == 0 {
			return
		}
		// Group buffered blocks by enclosing chunk.
		groups := make(map[uint64][]uint64) // chunk index -> block LBAs present
		for lba := range buffer {
			ci := lba / uint64(blocksPerChunk)
			groups[ci] = append(groups[ci], lba)
		}
		for ci, present := range groups {
			res.ChunksFormed++
			presentSet := make(map[uint64]bool, len(present))
			for _, lba := range present {
				presentSet[lba] = true
			}
			// Assemble the chunk's content vector, fetching missing
			// blocks that exist on storage. Blocks never written are
			// zero-filled without device IO.
			content := make([]uint64, blocksPerChunk)
			base := ci * uint64(blocksPerChunk)
			for i := 0; i < blocksPerChunk; i++ {
				lba := base + uint64(i)
				if presentSet[lba] {
					content[i] = buffer[lba]
					continue
				}
				if c, ok := stored[lba]; ok {
					content[i] = c
					res.DeviceReadBytes += uint64(cfg.BlockSize)
					res.FetchedBlocks++
				}
			}
			var id uint64
			if blocksPerChunk == 1 {
				id = content[0]
			} else {
				id = fnv1a64(content)
			}
			if seenChunks[id] {
				res.DuplicateChunks++
			} else {
				seenChunks[id] = true
				res.DeviceWriteBytes += uint64(cfg.ChunkSize)
			}
			// Whether duplicate or unique, the logical blocks now hold
			// the new content.
			for i := 0; i < blocksPerChunk; i++ {
				stored[base+uint64(i)] = content[i]
			}
		}
		buffer = make(map[uint64]uint64, bufBlocks)
		order = order[:0]
	}

	for _, w := range writes {
		res.ClientBytes += uint64(cfg.BlockSize)
		if _, dup := buffer[w.LBA]; !dup {
			order = append(order, w.LBA)
		}
		buffer[w.LBA] = w.Content
		if len(order) >= bufBlocks {
			flush()
		}
	}
	flush()
	return res, nil
}
