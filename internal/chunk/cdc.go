package chunk

// Content-defined chunking (CDC) is the variable-size alternative the paper
// rejects for inline reduction because of its computational cost (§2.1.1),
// but it remains the standard for backup workloads. We provide a rolling
// Rabin-style chunker as an extension so the cost comparison (hash
// throughput of fixed vs variable chunking) can be benchmarked.

// CDC is a content-defined chunker using a 64-bit rolling polynomial over a
// 48-byte window. Boundaries are declared where the rolling hash matches a
// mask, giving geometrically distributed chunk sizes clamped to
// [Min, Max] with mean near Avg.
type CDC struct {
	Min, Avg, Max int
	mask          uint64
	table         [256]uint64
}

const cdcWindow = 48

// NewCDC returns a content-defined chunker with the given minimum, average
// and maximum chunk sizes. avg must be a power of two between min and max.
func NewCDC(min, avg, max int) *CDC {
	if min <= 0 || avg < min || max < avg || avg&(avg-1) != 0 {
		panic("chunk: invalid CDC parameters")
	}
	c := &CDC{Min: min, Avg: avg, Max: max, mask: uint64(avg) - 1}
	// Deterministic pseudo-random byte substitution table
	// (splitmix64-style) so chunking is stable across runs.
	x := uint64(0x9E3779B97F4A7C15)
	for i := range c.table {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		c.table[i] = z ^ (z >> 31)
	}
	return c
}

// Boundaries returns the chunk boundary offsets for data. The returned
// slice contains end offsets of each chunk; the final offset equals
// len(data). Empty input yields no boundaries.
func (c *CDC) Boundaries(data []byte) []int {
	var bounds []int
	start := 0
	for start < len(data) {
		end := c.nextBoundary(data[start:])
		start += end
		bounds = append(bounds, start)
	}
	return bounds
}

// nextBoundary finds the cut point for the chunk starting at data[0],
// returning the chunk length.
func (c *CDC) nextBoundary(data []byte) int {
	n := len(data)
	if n <= c.Min {
		return n
	}
	limit := c.Max
	if n < limit {
		limit = n
	}
	var h uint64
	// Prime the window over the region before the minimum chunk size so
	// early boundaries are not biased by a short window.
	from := c.Min - cdcWindow
	if from < 0 {
		from = 0
	}
	for i := from; i < c.Min; i++ {
		h = (h << 1) + c.table[data[i]]
	}
	for i := c.Min; i < limit; i++ {
		h = (h << 1) + c.table[data[i]]
		if i >= cdcWindow {
			// Remove the byte leaving the window: it was shifted
			// left cdcWindow times since insertion.
			h -= c.table[data[i-cdcWindow]] << cdcWindow
		}
		if h&c.mask == c.mask {
			return i + 1
		}
	}
	return limit
}

// Split splits data into variable-size chunks. LBAs are assigned
// sequentially from 0 since CDC has no fixed address mapping.
func (c *CDC) Split(data []byte) []Chunk {
	bounds := c.Boundaries(data)
	chunks := make([]Chunk, 0, len(bounds))
	prev := 0
	for i, b := range bounds {
		chunks = append(chunks, Chunk{LBA: uint64(i), Data: data[prev:b]})
		prev = b
	}
	return chunks
}
