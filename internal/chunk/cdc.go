package chunk

// Content-defined chunking (CDC) is the variable-size alternative the
// paper rejects for inline reduction because of its computational cost
// (§2.1.1). SeqCDC and VectorCDC (Udayashankar et al., see PAPERS.md)
// showed that the cost argument is soft: skip-ahead scanning plus wide
// word-at-a-time anchor tests recover an order of magnitude of chunking
// throughput. This file implements that design so the fixed-vs-CDC
// trade-off can be measured live end-to-end.
//
// # Boundary rule
//
// The chunker rolls a gear hash over each chunk's bytes, starting from
// zero at the chunk start:
//
//	h(-1) = 0;  h(i) = h(i-1)<<1 XOR G[data[i]]
//
// where G is a precomputed 256-entry table (deterministic splitmix64
// values, so boundaries are stable across runs and processes). Position
// i ends the chunk when i >= Min and the masked bits of h(i) — bit 0
// and bits 2..maskBits, maskBits = log2(Avg) - 7 clamped to [1, 62] —
// are all set; the scan gives up at Max. (Bit 1 is excluded: at an
// anchor position it collapses to the fixed bit 1 of G[cdcAnchor],
// because the only other contribution is the almost-always-zero bit 0
// of the previous byte's G entry.) Because the update shifts left and
// folds with XOR
// (no carries), bit b of h(i) depends only on the last b+1 bytes — the
// hash is self-windowing, the rule for a chunk depends only on that
// chunk's bytes, and chunking a stream suffix that begins on a boundary
// reproduces the remaining boundaries exactly. That property lets
// callers feed a stream in segments and resume after draining a batch,
// and makes boundaries resynchronize a few bytes after an insertion —
// the classic CDC win over fixed chunking.
//
// # Scalar reference vs fast path
//
// ReferenceBoundaries is the canonical gear loop and the executable
// specification: one table load, shift, XOR and mask test per byte,
// from the chunk start (the rolling state must be warm before the first
// candidate, so a byte-at-a-time implementation cannot skip the [0,
// Min) prefix). The fast path exploits two algebraic shortcuts:
//
//  1. Anchor property (VectorCDC's trick, derived from the table
//     rather than SIMD intrinsics): G is constructed so that bit 0 of
//     G[b] is set iff b == cdcAnchor. Bit 0 of h(i) equals bit 0 of
//     G[data[i]], so every boundary position must hold the anchor
//     byte. The fast path therefore scans for cdcAnchor with uint64
//     word loads — eight positions per SWAR zero-byte test, four words
//     per 32-byte block with a single branch — and touches the hash
//     only at anchor hits (1/256 of positions on random data).
//  2. Skip-ahead (SeqCDC's trick): only the low maskBits bits of h are
//     tested and bit b depends on the last b+1 bytes, so the masked
//     hash at a candidate i is recomputed exactly by folding G over
//     data[i-maskBits .. i] (clamped at the chunk start). Nothing
//     before max(Min, 0) - maskBits is ever read: the fast path starts
//     scanning at Min instead of warming state from byte zero.
//  3. Linear confirm: bits 1..7 of G[b] are GF(2)-linear in the bits
//     of b (bit r = parity(b & gearParity[r])), and the gear fold is
//     GF(2)-linear in the table entries, so each masked hash bit at a
//     candidate is the parity of the 8-byte window word ANDed with a
//     precomputed 64-bit coefficient — one load, then an AND and a
//     POPCNT per mask bit, no table lookups. Applicable when the
//     window fits one word (maskBits <= 7, i.e. Avg <= 16 KiB, and the
//     candidate is at least 7 bytes into the chunk) and no other
//     anchor byte sits in the window (whose bit-0 table entry is not
//     linear; ~3% of candidates); everything else falls back to the
//     table fold.
//
// The two paths are proven byte-identical by property and fuzz tests
// (cdc_equiv_test.go, fuzz_cdc_test.go), and BenchmarkCDCBoundaries
// measures the speedup, which is the point: the scalar loop pays
// ~3 ops/byte over every byte, the fast path ~1 op/byte over the bytes
// past Min.

import (
	"encoding/binary"
	"math/bits"
)

const (
	// cdcAnchor is the byte every boundary position must hold (the
	// gear table sets bit 0 only for it). Probability 1/256 per
	// position on byte-random data.
	cdcAnchor = 0xA4
	// cdcMinMaskBits / cdcMaxMaskBits clamp the highest masked hash
	// bit. At least one bit keeps the mask non-degenerate (a zero mask
	// would cut at every position past Min); 62 keeps the mask
	// construction and the maskBits+1-byte lookback inside one uint64.
	cdcMinMaskBits = 1
	cdcMaxMaskBits = 62
)

// cdcAnchorWord is cdcAnchor replicated into every byte lane.
const cdcAnchorWord = 0xA4A4A4A4A4A4A4A4

// gearParity[r] defines bit r of every gear-table entry as
// parity(byte & gearParity[r]) for r in 1..7. The values only need to
// be nonzero (uniformity of each masked hash bit follows from the
// per-position lane structure, see the package comment); these are
// arbitrary fixed bytes so boundaries stay stable across runs.
var gearParity = [8]byte{0, 0x95, 0x2F, 0x61, 0xD3, 0x4A, 0xB8, 0x7C}

// CDC is a content-defined chunker with a skip-ahead, word-at-a-time
// fast path. Construct with NewCDC or Config.NewChunker; the zero value
// is not usable.
type CDC struct {
	Min, Avg, Max int
	// mask selects the hash bits that must all be set at a boundary:
	// bit 0 (the anchor bit) and bits 2..maskBits. The hash lookback in
	// bytes is maskBits+1.
	mask     uint64
	maskBits int
	// table is the gear table; deterministic (splitmix64 over the byte
	// value) with bit 0 carrying the anchor property and bits 1..7
	// linear in the byte's bits (gearParity) for the linear confirm.
	table [256]uint64
	// q[b], for mask bits 2..maskBits when maskBits <= 7, is the
	// 64-bit coefficient such that bit b of the hash at candidate i is
	// parity(window & q[b]), window = LE64(data[i-7 .. i]), provided
	// no anchor byte occupies window lanes 0..6.
	q [8]uint64
	// linear reports whether q is usable (maskBits fits the window).
	linear bool
}

// NewCDC returns a content-defined chunker with the given minimum,
// average and maximum chunk sizes. avg must be a power of two between
// min and max. Boundary probability per scanned position is
// 2^-(maskBits+7): 1/avg for avg >= 256; smaller averages clamp to
// 1/256 (the anchor byte's rate) and run long.
func NewCDC(min, avg, max int) *CDC {
	if min <= 0 || avg < min || max < avg || avg&(avg-1) != 0 {
		panic("chunk: invalid CDC parameters")
	}
	maskBits := bits.Len(uint(avg)) - 1 - 7
	if maskBits < cdcMinMaskBits {
		maskBits = cdcMinMaskBits
	}
	if maskBits > cdcMaxMaskBits {
		maskBits = cdcMaxMaskBits
	}
	// Bits 0 and 2..maskBits: maskBits set bits total, of which bit 0
	// fires at the anchor rate 2^-8 and the rest are uniform, giving
	// boundary probability 2^-(maskBits+7) per position.
	c := &CDC{Min: min, Avg: avg, Max: max, mask: (1<<(maskBits+1) - 1) &^ 2, maskBits: maskBits}
	// Deterministic pseudo-random gear table (splitmix64-style) so
	// chunking is stable across runs. Bit 0 is reserved for the anchor
	// property the fast path's word scan relies on, and bits 1..7 are
	// the gearParity linear functions the linear confirm relies on;
	// bits 8..63 never reach a mask (cdcMaxMaskBits bounds the masked
	// bits that matter to 0..62, but bits above 7 only feed mask bits
	// through the fold's left shifts, which keeps them pseudo-random).
	x := uint64(0x9E3779B97F4A7C15)
	for i := range c.table {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		e := (z ^ z>>31) &^ 0xFF
		if i == cdcAnchor {
			e |= 1
		}
		for r := 1; r <= 7; r++ {
			if bits.OnesCount8(uint8(i)&uint8(gearParity[r]))&1 == 1 {
				e |= 1 << r
			}
		}
		c.table[i] = e
	}
	// Coefficients for the linear confirm: hash bit b at candidate i is
	// XOR over j=0..b-1 of parity(data[i-j] & gearParity[b-j]) (plus
	// the bit-0 anchor terms the caller rules out), i.e. the parity of
	// the window word masked with gearParity[b-j] in lane 7-j.
	if c.maskBits <= 7 {
		c.linear = true
		for b := 2; b <= c.maskBits; b++ {
			for j := 0; j < b; j++ {
				c.q[b] |= uint64(gearParity[b-j]) << ((7 - j) * 8)
			}
		}
	}
	return c
}

// confirm recomputes the masked gear hash at candidate position i of
// data (the current chunk's bytes start at data[0]) by folding the
// table over the hash's exact lookback window. Called only on anchor
// hits, so its cost is amortized over ~256 scanned bytes.
func (c *CDC) confirm(data []byte, i int) bool {
	if c.linear && i >= 7 {
		w := binary.LittleEndian.Uint64(data[i-7:])
		// Lanes 0..6 must be anchor-free for the linear form (the
		// bit-0 anchor terms vanish); lane 7 is the candidate itself.
		// The detector is exact here: lane 7 is zero, so false
		// positives (only possible above a real zero lane) cannot
		// reach lanes 0..6.
		if hasZeroByte(w^cdcAnchorWord)&0x0080808080808080 == 0 {
			// Branchless all-bits-set test: a data-dependent early
			// exit would mispredict on nearly every call.
			acc := 1
			for b := 2; b <= c.maskBits; b++ {
				acc &= bits.OnesCount64(w & c.q[b])
			}
			return acc&1 == 1
		}
	}
	return c.confirmFold(data, i)
}

// confirmFold is the table-fold confirm, used near the chunk start,
// for masks wider than the window word, and when another anchor byte
// sits in the window (its bit-0 table entry is the one non-linear bit).
// The gear fold h = h<<1 ^ G[b] is rewritten as the XOR of
// independently shifted table terms: the shift applies to each term,
// not the accumulator, so the loads and shifts have no loop-carried
// dependency and overlap across iterations.
func (c *CDC) confirmFold(data []byte, i int) bool {
	lo := i - c.maskBits
	if lo < 0 {
		lo = 0
	}
	w := data[lo : i+1]
	sh := uint(len(w))
	var h uint64
	for j, b := range w {
		h ^= c.table[b] << (sh - 1 - uint(j))
	}
	return h&c.mask == c.mask
}

// hasZeroByte reports (nonzero result) whether v contains a zero byte.
// The classic SWAR detector: the lowest set 0x80 bit marks the first
// zero byte exactly; higher bits can be false positives, so per-byte
// consumers must re-verify.
func hasZeroByte(v uint64) uint64 {
	return (v - 0x0101010101010101) &^ v & 0x8080808080808080
}

// nextCut returns the length of the chunk starting at data[0], using
// the wide fast path: skip straight to Min, test eight positions per
// uint64 word for the anchor byte, four words (32 bytes) per loop
// iteration with a single branch, and recompute the masked hash only
// where a word flags an anchor. Byte-identical to nextCutReference by
// construction and by the equivalence tests.
func (c *CDC) nextCut(data []byte) int {
	n := len(data)
	if n <= c.Min {
		return n
	}
	limit := c.Max
	if n < limit {
		limit = n
	}
	i := c.Min
	// 64 bytes per iteration as two 32-byte groups. Each group ORs its
	// four per-word detectors so the common no-anchor case costs one
	// branch per group, and keeps the masks in registers so a flagged
	// group goes straight to verifyWord with no recomputation. The
	// full-length reslice lets the compiler prove every constant-offset
	// load in bounds with a single check.
	for i+64 <= limit {
		blk := data[i : i+64 : i+64]
		m0 := hasZeroByte(binary.LittleEndian.Uint64(blk) ^ cdcAnchorWord)
		m1 := hasZeroByte(binary.LittleEndian.Uint64(blk[8:]) ^ cdcAnchorWord)
		m2 := hasZeroByte(binary.LittleEndian.Uint64(blk[16:]) ^ cdcAnchorWord)
		m3 := hasZeroByte(binary.LittleEndian.Uint64(blk[24:]) ^ cdcAnchorWord)
		if (m0|m1)|(m2|m3) != 0 {
			if m0 != 0 {
				if cut := c.verifyWord(data, i, m0); cut > 0 {
					return cut
				}
			}
			if m1 != 0 {
				if cut := c.verifyWord(data, i+8, m1); cut > 0 {
					return cut
				}
			}
			if m2 != 0 {
				if cut := c.verifyWord(data, i+16, m2); cut > 0 {
					return cut
				}
			}
			if m3 != 0 {
				if cut := c.verifyWord(data, i+24, m3); cut > 0 {
					return cut
				}
			}
		}
		m4 := hasZeroByte(binary.LittleEndian.Uint64(blk[32:]) ^ cdcAnchorWord)
		m5 := hasZeroByte(binary.LittleEndian.Uint64(blk[40:]) ^ cdcAnchorWord)
		m6 := hasZeroByte(binary.LittleEndian.Uint64(blk[48:]) ^ cdcAnchorWord)
		m7 := hasZeroByte(binary.LittleEndian.Uint64(blk[56:]) ^ cdcAnchorWord)
		if (m4|m5)|(m6|m7) != 0 {
			if m4 != 0 {
				if cut := c.verifyWord(data, i+32, m4); cut > 0 {
					return cut
				}
			}
			if m5 != 0 {
				if cut := c.verifyWord(data, i+40, m5); cut > 0 {
					return cut
				}
			}
			if m6 != 0 {
				if cut := c.verifyWord(data, i+48, m6); cut > 0 {
					return cut
				}
			}
			if m7 != 0 {
				if cut := c.verifyWord(data, i+56, m7); cut > 0 {
					return cut
				}
			}
		}
		i += 64
	}
	for i+8 <= limit {
		m := hasZeroByte(binary.LittleEndian.Uint64(data[i:]) ^ cdcAnchorWord)
		if m != 0 {
			if cut := c.verifyWord(data, i, m); cut > 0 {
				return cut
			}
		}
		i += 8
	}
	for ; i < limit; i++ {
		if data[i] == cdcAnchor && c.confirm(data, i) {
			return i + 1
		}
	}
	return limit
}

// verifyWord checks the candidate positions a detector word flagged, in
// ascending order. The detector's higher lanes can be false positives,
// so each lane re-verifies the anchor before recomputing the hash.
// Returns the chunk length, or 0 if no flagged position is a boundary.
func (c *CDC) verifyWord(data []byte, i int, m uint64) int {
	for m != 0 {
		j := i + bits.TrailingZeros64(m)>>3
		if data[j] == cdcAnchor && c.confirm(data, j) {
			return j + 1
		}
		m &= m - 1
	}
	return 0
}

// nextCutReference is the retained scalar reference: the canonical
// byte-at-a-time gear loop, and the executable specification of the
// boundary rule. The rolling state must be warm before the first
// candidate, so it pays the table-fold on every byte from the chunk
// start. The fast path must produce byte-identical cuts.
func (c *CDC) nextCutReference(data []byte) int {
	n := len(data)
	if n <= c.Min {
		return n
	}
	limit := c.Max
	if n < limit {
		limit = n
	}
	var h uint64
	for i := 0; i < limit; i++ {
		h = h<<1 ^ c.table[data[i]]
		if i >= c.Min && h&c.mask == c.mask {
			return i + 1
		}
	}
	return limit
}

// AppendBoundaries appends the chunk boundary offsets for data to dst
// and returns the extended slice. Offsets are end offsets of each
// chunk; the final offset equals len(data). Empty input appends
// nothing. Callers that recycle dst across calls (dst[:0]) get a
// zero-allocation steady state.
func (c *CDC) AppendBoundaries(dst []int, data []byte) []int {
	start := 0
	for start < len(data) {
		start += c.nextCut(data[start:])
		dst = append(dst, start)
	}
	return dst
}

// Boundaries returns the chunk boundary offsets for data. The returned
// slice contains end offsets of each chunk; the final offset equals
// len(data). Empty input yields no boundaries.
func (c *CDC) Boundaries(data []byte) []int {
	return c.AppendBoundaries(nil, data)
}

// ReferenceBoundaries is Boundaries computed by the retained scalar
// reference implementation. It exists as the executable specification
// the fast path is tested against, and as the "scalar byte-at-a-time"
// baseline in BenchmarkCDCBoundaries.
func (c *CDC) ReferenceBoundaries(dst []int, data []byte) []int {
	start := 0
	for start < len(data) {
		start += c.nextCutReference(data[start:])
		dst = append(dst, start)
	}
	return dst
}

// Split splits the stream segment data, which begins at absolute stream
// byte offset, into variable-size chunks. Each chunk's LBA is its
// extent address — offset plus the chunk's byte position in data — so
// multiple Split calls against the same store never collide as long as
// their segments occupy distinct stream ranges (see Chunk).
func (c *CDC) Split(offset uint64, data []byte) []Chunk {
	bounds := c.Boundaries(data)
	chunks := make([]Chunk, 0, len(bounds))
	prev := 0
	for _, b := range bounds {
		chunks = append(chunks, Chunk{LBA: offset + uint64(prev), Data: data[prev:b]})
		prev = b
	}
	return chunks
}
