package chunk

import "fmt"

// Mode selects the write-path chunking strategy.
type Mode int

const (
	// ModeFixed is the paper's fixed 4-KB chunking: block storage is
	// write-in-place and the chunker must keep up with Tbps line rate
	// (§2.1.1).
	ModeFixed Mode = iota
	// ModeCDC is content-defined chunking: variable-size chunks cut
	// where the content itself says so, so streams that shift by
	// insertion still dedup. Chunks are addressed by their absolute
	// byte offset in the stream (extent addressing, see Chunk).
	ModeCDC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFixed:
		return "fixed"
	case ModeCDC:
		return "cdc"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -chunker flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "fixed":
		return ModeFixed, nil
	case "cdc":
		return ModeCDC, nil
	default:
		return 0, fmt.Errorf("chunk: unknown chunking mode %q (want fixed or cdc)", s)
	}
}

// Default CDC parameters: 8-KB average chunks in [2 KB, 32 KB]. The max
// stays well under the LBA table's 16-bit compressed-size field even for
// incompressible chunks (token-stream overhead included).
const (
	DefaultCDCMin = 2048
	DefaultCDCAvg = 8192
	DefaultCDCMax = 32768
)

// Config is the chunking-mode knob carried by nic.Config and
// core.Config. The zero value selects fixed chunking.
type Config struct {
	// Mode selects fixed or content-defined chunking.
	Mode Mode
	// Min/Avg/Max bound CDC chunk sizes (ignored in fixed mode). Avg
	// must be a power of two. Zero values select the defaults.
	Min, Avg, Max int
}

// Normalize fills CDC defaults and validates the configuration.
func (c *Config) Normalize() error {
	switch c.Mode {
	case ModeFixed:
		return nil
	case ModeCDC:
		if c.Min == 0 && c.Avg == 0 && c.Max == 0 {
			c.Min, c.Avg, c.Max = DefaultCDCMin, DefaultCDCAvg, DefaultCDCMax
		}
		if c.Min <= 0 || c.Avg < c.Min || c.Max < c.Avg {
			return fmt.Errorf("chunk: CDC sizes min=%d avg=%d max=%d (want 0 < min <= avg <= max)", c.Min, c.Avg, c.Max)
		}
		if c.Avg&(c.Avg-1) != 0 {
			return fmt.Errorf("chunk: CDC average %d must be a power of two", c.Avg)
		}
		return nil
	default:
		return fmt.Errorf("chunk: unknown chunking mode %d", int(c.Mode))
	}
}

// NewChunker builds the CDC chunker for a normalized ModeCDC config.
func (c Config) NewChunker() (*CDC, error) {
	cfg := c
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.Mode != ModeCDC {
		return nil, fmt.Errorf("chunk: NewChunker on %s config", cfg.Mode)
	}
	return NewCDC(cfg.Min, cfg.Avg, cfg.Max), nil
}
