// Package chunk splits client write requests into chunks, the unit of
// deduplication and compression in FIDR.
//
// The paper uses fixed 4-KB chunking: variable-size chunking is too
// compute-heavy for inline reduction at Tbps rates, and large (32-KB)
// chunking suffers read-modify-write amplification (§3.1, Figure 3). The
// package also provides the read-modify-write analysis used to reproduce
// Figure 3, and — following SeqCDC/VectorCDC (see PAPERS.md) — a
// skip-ahead, word-at-a-time content-defined chunker (cdc.go) fast
// enough to make the fixed-vs-CDC trade-off worth measuring live, plus
// the retained scalar rolling-hash chunker (rolling.go) it is
// benchmarked against.
package chunk

import (
	"errors"
	"fmt"
)

// DefaultSize is the paper's chunk size: 4 KiB.
const DefaultSize = 4096

// Chunk is one piece of a client request.
//
// The meaning of LBA depends on the chunker. Fixed chunkers address
// chunks in units of the chunk size (chunk-aligned block address
// space). Variable-size chunkers (CDC, Rolling) use extent addressing:
// LBA is the chunk's absolute byte offset in the client stream, so a
// chunk is an extent [LBA, LBA+len(Data)) and chunks produced by
// different Split calls over distinct stream ranges never collide on
// the same store. Reading a CDC stream back means resolving the extent
// that *starts* at the requested byte offset.
type Chunk struct {
	// LBA is the chunk's logical address: chunk-size units for Fixed,
	// absolute stream byte offset (extent address) for CDC/Rolling.
	LBA uint64
	// Data is the chunk payload; always exactly the chunk size for a
	// fixed chunker operating on aligned requests, and between 1 and
	// Max bytes for variable-size chunkers.
	Data []byte
}

// Fixed is a fixed-size chunker.
type Fixed struct {
	size int
}

// NewFixed returns a fixed-size chunker. size must be a positive multiple
// of 512 (the sector size every request is expressed in).
func NewFixed(size int) (*Fixed, error) {
	if size <= 0 || size%512 != 0 {
		return nil, fmt.Errorf("chunk: invalid chunk size %d", size)
	}
	return &Fixed{size: size}, nil
}

// MustFixed is like NewFixed but panics on invalid size. For use in
// initialization with constant sizes.
func MustFixed(size int) *Fixed {
	c, err := NewFixed(size)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the chunk size in bytes.
func (c *Fixed) Size() int { return c.size }

// ErrUnaligned is returned when a request is not chunk-aligned.
var ErrUnaligned = errors.New("chunk: request not aligned to chunk size")

// Split splits a write request starting at byte offset into chunks.
// offset and len(data) must both be multiples of the chunk size; inline
// reduction systems align requests at the ingest buffer before chunking.
func (c *Fixed) Split(offset uint64, data []byte) ([]Chunk, error) {
	if offset%uint64(c.size) != 0 || len(data)%c.size != 0 {
		return nil, ErrUnaligned
	}
	n := len(data) / c.size
	chunks := make([]Chunk, 0, n)
	base := offset / uint64(c.size)
	for i := 0; i < n; i++ {
		chunks = append(chunks, Chunk{
			LBA:  base + uint64(i),
			Data: data[i*c.size : (i+1)*c.size],
		})
	}
	return chunks, nil
}

// Covers returns the number of chunks a request of reqLen bytes at the
// given byte offset touches (including partially covered chunks).
func (c *Fixed) Covers(offset uint64, reqLen int) int {
	if reqLen <= 0 {
		return 0
	}
	first := offset / uint64(c.size)
	last := (offset + uint64(reqLen) - 1) / uint64(c.size)
	return int(last - first + 1)
}
