package chunk

// Rolling is the original scalar rolling-hash chunker, retained as a
// benchmark baseline for the skip-ahead CDC fast path and for callers
// that want Rabin-style windowed boundaries. It rolls a 64-bit
// polynomial over a 48-byte window and declares a boundary where the
// hash matches a mask, giving geometrically distributed chunk sizes
// clamped to [Min, Max] with mean near Avg.
//
// The hash at candidate position i is defined over the window
//
//	[windowStart(i), i],  windowStart(i) = max(0, i-rollingWindow+1)
//
// relative to the chunk start. Priming (the direct sum at the first
// candidate) and eviction (the incremental subtraction as the window
// slides) are both derived from this single origin: priming computes
// the definition at i = Min-1 verbatim, and the slide from i-1 to i
// evicts data[i-rollingWindow] exactly when windowStart moved, i.e.
// when i >= rollingWindow. An earlier revision primed from Min and
// keyed eviction on the absolute index separately, which made the
// agreement between the two paths an accident of arithmetic rather
// than a stated invariant; TestRollingWindowOracle now pins both to a
// from-scratch windowed-hash oracle across small-Min configurations
// (Min well below the window size) where any origin mismatch would
// bias early boundaries.
type Rolling struct {
	Min, Avg, Max int
	mask          uint64
	table         [256]uint64
}

const rollingWindow = 48

// NewRolling returns a rolling-hash chunker with the given minimum,
// average and maximum chunk sizes. avg must be a power of two between
// min and max.
func NewRolling(min, avg, max int) *Rolling {
	if min <= 0 || avg < min || max < avg || avg&(avg-1) != 0 {
		panic("chunk: invalid rolling-chunker parameters")
	}
	r := &Rolling{Min: min, Avg: avg, Max: max, mask: uint64(avg) - 1}
	// Same deterministic substitution table as CDC (boundary stability
	// across runs).
	x := uint64(0x9E3779B97F4A7C15)
	for i := range r.table {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.table[i] = z ^ (z >> 31)
	}
	return r
}

// Boundaries returns the chunk boundary offsets for data (end offsets;
// the final offset equals len(data)). Empty input yields no boundaries.
func (r *Rolling) Boundaries(data []byte) []int {
	var bounds []int
	start := 0
	for start < len(data) {
		start += r.nextCut(data[start:])
		bounds = append(bounds, start)
	}
	return bounds
}

// nextCut finds the cut point for the chunk starting at data[0],
// returning the chunk length.
func (r *Rolling) nextCut(data []byte) int {
	n := len(data)
	if n <= r.Min {
		return n
	}
	limit := r.Max
	if n < limit {
		limit = n
	}
	// Prime the hash by evaluating the window definition directly at
	// the position before the first candidate (i = Min-1): the sum of
	// table[data[j]] << (i-j) over j in [windowStart(i), i].
	from := r.Min - rollingWindow
	if from < 0 {
		from = 0
	}
	var h uint64
	for _, b := range data[from:r.Min] {
		h = h<<1 + r.table[b]
	}
	// Slide: insert data[i]; evict data[i-rollingWindow] exactly when
	// the window origin advanced past it (i >= rollingWindow). The
	// evicted byte was shifted left rollingWindow times since insertion.
	for i := r.Min; i < limit; i++ {
		h = h<<1 + r.table[data[i]]
		if i >= rollingWindow {
			h -= r.table[data[i-rollingWindow]] << rollingWindow
		}
		if h&r.mask == r.mask {
			return i + 1
		}
	}
	return limit
}

// Split splits the stream segment data, beginning at absolute stream
// byte offset, into chunks with extent-addressed LBAs (same scheme as
// CDC.Split).
func (r *Rolling) Split(offset uint64, data []byte) []Chunk {
	bounds := r.Boundaries(data)
	chunks := make([]Chunk, 0, len(bounds))
	prev := 0
	for _, b := range bounds {
		chunks = append(chunks, Chunk{LBA: offset + uint64(prev), Data: data[prev:b]})
		prev = b
	}
	return chunks
}
