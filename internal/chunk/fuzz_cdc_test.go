package chunk

import (
	"bytes"
	"testing"
)

// FuzzCDCEquivalence fuzzes the fast chunker against the retained
// scalar reference: for arbitrary bytes and chunking parameters the two
// must produce byte-identical boundaries, the boundaries must cover the
// input, and every chunk must be within (0, Max]. The seed corpus pins
// the shapes the equivalence suite found interesting: empty and
// single-byte inputs, anchor-byte runs (worst case for the word scan
// and the linear-confirm bailout), data shorter than Min, and torn
// tails.
//
// CI runs this bounded (make fuzz); run `go test -fuzz FuzzCDCEquivalence
// ./internal/chunk/` for an open-ended session.
func FuzzCDCEquivalence(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(3), uint16(8))
	f.Add([]byte{0xA4}, uint16(1), uint16(0), uint16(0))
	f.Add(bytes.Repeat([]byte{0xA4}, 300), uint16(2), uint16(2), uint16(7))
	f.Add(bytes.Repeat([]byte{0xA4, 0x00}, 200), uint16(7), uint16(5), uint16(30))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint16(4), uint16(4), uint16(0))
	f.Add(bytes.Repeat([]byte{0x00}, 1000), uint16(64), uint16(7), uint16(100))
	f.Add(bytes.Repeat([]byte("abcdefgh"), 400), uint16(100), uint16(10), uint16(5000))
	f.Fuzz(func(t *testing.T, data []byte, minSel, avgShift, maxSel uint16) {
		avg := 1 << (avgShift % 16) // 1 .. 32768, crosses the linear-confirm limit
		min := int(minSel)%avg + 1
		max := avg + int(maxSel)
		c := NewCDC(min, avg, max)
		fast := c.AppendBoundaries(nil, data)
		ref := c.ReferenceBoundaries(nil, data)
		if !boundsEqual(fast, ref) {
			t.Fatalf("min=%d avg=%d max=%d len=%d: fast %v != reference %v",
				min, avg, max, len(data), head(fast), head(ref))
		}
		if len(data) > 0 && (len(fast) == 0 || fast[len(fast)-1] != len(data)) {
			t.Fatalf("boundaries do not cover input: %v (len %d)", head(fast), len(data))
		}
		prev := 0
		for _, b := range fast {
			if sz := b - prev; sz <= 0 || sz > max {
				t.Fatalf("chunk size %d outside (0,%d]", sz, max)
			}
			prev = b
		}
	})
}
