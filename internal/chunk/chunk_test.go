package chunk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFixedValidation(t *testing.T) {
	for _, size := range []int{0, -1, 100, 513} {
		if _, err := NewFixed(size); err == nil {
			t.Errorf("NewFixed(%d) accepted invalid size", size)
		}
	}
	for _, size := range []int{512, 4096, 32768} {
		c, err := NewFixed(size)
		if err != nil {
			t.Fatalf("NewFixed(%d): %v", size, err)
		}
		if c.Size() != size {
			t.Errorf("Size() = %d want %d", c.Size(), size)
		}
	}
}

func TestSplitBasic(t *testing.T) {
	c := MustFixed(4096)
	data := make([]byte, 3*4096)
	for i := range data {
		data[i] = byte(i)
	}
	chunks, err := c.Split(8192, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	for i, ch := range chunks {
		if ch.LBA != uint64(2+i) {
			t.Errorf("chunk %d LBA = %d, want %d", i, ch.LBA, 2+i)
		}
		if !bytes.Equal(ch.Data, data[i*4096:(i+1)*4096]) {
			t.Errorf("chunk %d data mismatch", i)
		}
	}
}

func TestSplitUnaligned(t *testing.T) {
	c := MustFixed(4096)
	if _, err := c.Split(100, make([]byte, 4096)); err != ErrUnaligned {
		t.Errorf("unaligned offset: err = %v, want ErrUnaligned", err)
	}
	if _, err := c.Split(0, make([]byte, 100)); err != ErrUnaligned {
		t.Errorf("unaligned length: err = %v, want ErrUnaligned", err)
	}
}

func TestSplitEmpty(t *testing.T) {
	c := MustFixed(4096)
	chunks, err := c.Split(0, nil)
	if err != nil || len(chunks) != 0 {
		t.Fatalf("empty split: %v chunks, err %v", len(chunks), err)
	}
}

func TestSplitRoundTrip(t *testing.T) {
	c := MustFixed(512)
	prop := func(nChunks uint8, seed int64) bool {
		n := int(nChunks%32) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, n*512)
		rng.Read(data)
		chunks, err := c.Split(0, data)
		if err != nil || len(chunks) != n {
			return false
		}
		var re []byte
		for _, ch := range chunks {
			re = append(re, ch.Data...)
		}
		return bytes.Equal(re, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCovers(t *testing.T) {
	c := MustFixed(4096)
	tests := []struct {
		off  uint64
		n    int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4096, 1},
		{0, 4097, 2},
		{4095, 2, 2},
		{4096, 4096, 1},
		{100, 8192, 3},
	}
	for _, tt := range tests {
		if got := c.Covers(tt.off, tt.n); got != tt.want {
			t.Errorf("Covers(%d,%d) = %d want %d", tt.off, tt.n, got, tt.want)
		}
	}
}

func TestRMWConfigValidate(t *testing.T) {
	bad := []RMWConfig{
		{BlockSize: 0, ChunkSize: 4096, BufferBytes: 4096},
		{BlockSize: 4096, ChunkSize: 2048, BufferBytes: 4096},
		{BlockSize: 4096, ChunkSize: 6000, BufferBytes: 4096},
		{BlockSize: 4096, ChunkSize: 4096, BufferBytes: 100},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := RMWConfig{BlockSize: 4096, ChunkSize: 32768, BufferBytes: 4 << 20}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRMWSmallChunkingNoReads(t *testing.T) {
	cfg := RMWConfig{BlockSize: 4096, ChunkSize: 4096, BufferBytes: 4 << 20}
	writes := []BlockWrite{{0, 1}, {1, 2}, {2, 3}, {0, 1}}
	res, err := SimulateRMW(cfg, writes)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceReadBytes != 0 {
		t.Errorf("small chunking issued %d read bytes, want 0", res.DeviceReadBytes)
	}
	// {0,1} repeats with identical content -> 3 unique chunk writes.
	if res.DeviceWriteBytes != 3*4096 {
		t.Errorf("write bytes = %d, want %d", res.DeviceWriteBytes, 3*4096)
	}
	if res.ClientBytes != 4*4096 {
		t.Errorf("client bytes = %d, want %d", res.ClientBytes, 4*4096)
	}
}

func TestRMWLargeChunkingFetchesMissing(t *testing.T) {
	// Write all 8 blocks of large chunk 0, flush, then rewrite a single
	// block with new content: the second flush must fetch the 7 missing
	// blocks and write back a whole 32-KB chunk.
	cfg := RMWConfig{BlockSize: 4096, ChunkSize: 32768, BufferBytes: 8 * 4096}
	var writes []BlockWrite
	for i := uint64(0); i < 8; i++ {
		writes = append(writes, BlockWrite{i, 100 + i})
	}
	res1, err := SimulateRMW(cfg, writes)
	if err != nil {
		t.Fatal(err)
	}
	if res1.DeviceReadBytes != 0 || res1.DeviceWriteBytes != 32768 {
		t.Fatalf("full-chunk write: reads=%d writes=%d", res1.DeviceReadBytes, res1.DeviceWriteBytes)
	}

	writes = append(writes, BlockWrite{3, 999})
	res2, err := SimulateRMW(cfg, writes)
	if err != nil {
		t.Fatal(err)
	}
	wantReads := uint64(7 * 4096)
	if res2.DeviceReadBytes != wantReads {
		t.Errorf("reads = %d, want %d", res2.DeviceReadBytes, wantReads)
	}
	if res2.DeviceWriteBytes != 2*32768 {
		t.Errorf("writes = %d, want %d", res2.DeviceWriteBytes, 2*32768)
	}
}

func TestRMWLargeDuplicateDetected(t *testing.T) {
	cfg := RMWConfig{BlockSize: 4096, ChunkSize: 32768, BufferBytes: 16 * 4096}
	var writes []BlockWrite
	// Two large chunks with identical content vectors.
	for i := uint64(0); i < 8; i++ {
		writes = append(writes, BlockWrite{i, 7})
	}
	for i := uint64(8); i < 16; i++ {
		writes = append(writes, BlockWrite{i, 7})
	}
	res, err := SimulateRMW(cfg, writes)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicateChunks != 1 {
		t.Errorf("duplicates = %d, want 1", res.DuplicateChunks)
	}
	if res.DeviceWriteBytes != 32768 {
		t.Errorf("writes = %d, want one chunk", res.DeviceWriteBytes)
	}
}

func TestRMWAmplificationGrowsWithRandomness(t *testing.T) {
	// Random single-block writes over a pre-populated address space must
	// amplify far more under 32-KB chunking than 4-KB chunking.
	rng := rand.New(rand.NewSource(42))
	const space = 1 << 14 // 16K blocks = 64 MB
	var warm []BlockWrite
	for i := uint64(0); i < space; i++ {
		warm = append(warm, BlockWrite{i, rng.Uint64()})
	}
	var rand4k []BlockWrite
	for i := 0; i < 4096; i++ {
		rand4k = append(rand4k, BlockWrite{uint64(rng.Intn(space)), rng.Uint64()})
	}
	trace := append(append([]BlockWrite{}, warm...), rand4k...)

	small, err := SimulateRMW(RMWConfig{4096, 4096, 4 << 20}, trace)
	if err != nil {
		t.Fatal(err)
	}
	large, err := SimulateRMW(RMWConfig{4096, 32768, 4 << 20}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if large.Amplification() < 2*small.Amplification() {
		t.Errorf("large-chunk amplification %.2f not clearly above small-chunk %.2f",
			large.Amplification(), small.Amplification())
	}
	if large.FetchedBlocks == 0 {
		t.Error("random rewrite phase fetched no blocks under large chunking")
	}
}

func TestCDCBoundariesCoverInput(t *testing.T) {
	c := NewCDC(2048, 8192, 65536)
	data := make([]byte, 300000)
	rand.New(rand.NewSource(1)).Read(data)
	bounds := c.Boundaries(data)
	if len(bounds) == 0 || bounds[len(bounds)-1] != len(data) {
		t.Fatalf("boundaries do not cover input: %v", bounds)
	}
	prev := 0
	for _, b := range bounds {
		sz := b - prev
		if sz <= 0 || sz > c.Max {
			t.Fatalf("chunk size %d outside (0,%d]", sz, c.Max)
		}
		prev = b
	}
}

func TestCDCStableUnderShift(t *testing.T) {
	// Content-defined chunking should resynchronize after an insertion:
	// most boundaries in the tail should be preserved (shifted).
	c := NewCDC(1024, 4096, 16384)
	base := make([]byte, 200000)
	rand.New(rand.NewSource(7)).Read(base)
	shifted := append(append([]byte{0xAA, 0xBB, 0xCC}, base[:100]...), base[100:]...)

	b1 := c.Boundaries(base)
	b2 := c.Boundaries(shifted)

	set := make(map[int]bool, len(b1))
	for _, b := range b1 {
		if b > 110 {
			set[b+3] = true // expected shifted position
		}
	}
	match := 0
	for _, b := range b2 {
		if set[b] {
			match++
		}
	}
	if match < len(set)/2 {
		t.Errorf("only %d/%d tail boundaries resynchronized", match, len(set))
	}
}

func TestCDCSplitRoundTrip(t *testing.T) {
	c := NewCDC(512, 2048, 8192)
	data := make([]byte, 50000)
	rand.New(rand.NewSource(3)).Read(data)
	const base = uint64(1 << 30)
	var re []byte
	for _, ch := range c.Split(base, data) {
		// Extent addressing: LBA is the absolute stream byte offset of
		// the chunk start.
		if ch.LBA != base+uint64(len(re)) {
			t.Fatalf("chunk LBA %d, want extent address %d", ch.LBA, base+uint64(len(re)))
		}
		re = append(re, ch.Data...)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("CDC split does not reassemble input")
	}
}

func TestCDCSplitNoCollisionAcrossCalls(t *testing.T) {
	// Two Split calls over distinct stream ranges must produce disjoint
	// extent addresses (the old scheme numbered from 0 every call).
	c := NewCDC(512, 2048, 8192)
	data := make([]byte, 20000)
	rand.New(rand.NewSource(9)).Read(data)
	seen := map[uint64]bool{}
	off := uint64(0)
	for i := 0; i < 3; i++ {
		for _, ch := range c.Split(off, data) {
			if seen[ch.LBA] {
				t.Fatalf("extent address %d reused across Split calls", ch.LBA)
			}
			seen[ch.LBA] = true
		}
		off += uint64(len(data))
	}
}

func TestCDCEmptyInput(t *testing.T) {
	c := NewCDC(512, 2048, 8192)
	if got := c.Boundaries(nil); len(got) != 0 {
		t.Fatalf("Boundaries(nil) = %v, want empty", got)
	}
}

func BenchmarkFixedSplit(b *testing.B) {
	c := MustFixed(4096)
	data := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		if _, err := c.Split(0, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDCSplit(b *testing.B) {
	c := NewCDC(2048, 8192, 65536)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		c.Boundaries(data)
	}
}
