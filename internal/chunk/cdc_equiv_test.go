package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// cdcCornerConfigs are the Min/Avg/Max corners the equivalence suite
// sweeps: tiny windows, Avg=Min, Min pressed against Max, Min below the
// confirm window, and realistic backup-scale parameters.
var cdcCornerConfigs = []struct{ min, avg, max int }{
	{1, 1, 1},          // every byte its own chunk cap
	{1, 2, 3},          // minimal nontrivial range
	{5, 8, 9},          // Min >= Max - epsilon
	{4096, 4096, 4096}, // Avg = Min = Max: fixed-size degenerate
	{512, 512, 8192},   // Avg = Min
	{7, 64, 64},        // Min below the confirm window, Max = Avg
	{2048, 8192, 32768},
	{2048, 8192, 8193}, // Max barely above Avg
	{1024, 4096, 16384},
	{4096, 32768, 131072}, // maskBits > 7: table-fold confirm only
}

func boundsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCDCEquivalenceCornerConfigs proves the fast path cuts byte-
// identically to the scalar reference across corner configurations and
// input shapes: empty, shorter than Min, exactly Min, torn tails, and
// long random/compressible buffers.
func TestCDCEquivalenceCornerConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	long := make([]byte, 300000)
	rng.Read(long)
	// Low-entropy variant: repeating 16-byte pattern with random
	// patches, the shape blockcomp's Shaper emits.
	pattern := make([]byte, len(long))
	for i := range pattern {
		pattern[i] = byte(i % 16 * 17)
	}
	copy(pattern[5000:7000], long[:2000])
	copy(pattern[150000:180000], long[:30000])

	for _, cc := range cdcCornerConfigs {
		c := NewCDC(cc.min, cc.avg, cc.max)
		inputs := [][]byte{
			nil,
			long[:1],
			long[:cc.min/2+1],
			long[:cc.min],
			long[:cc.min+1],
			long[:cc.max+cc.max/2],
			long,
			pattern,
		}
		for ii, in := range inputs {
			fast := c.AppendBoundaries(nil, in)
			ref := c.ReferenceBoundaries(nil, in)
			if !boundsEqual(fast, ref) {
				t.Fatalf("config %+v input %d (len %d): fast %v != reference %v",
					cc, ii, len(in), head(fast), head(ref))
			}
			if len(in) > 0 && (len(fast) == 0 || fast[len(fast)-1] != len(in)) {
				t.Fatalf("config %+v input %d: boundaries do not cover input", cc, ii)
			}
			prev := 0
			for _, b := range fast {
				if sz := b - prev; sz <= 0 || sz > cc.max {
					t.Fatalf("config %+v input %d: chunk size %d outside (0,%d]", cc, ii, sz, cc.max)
				}
				prev = b
			}
		}
	}
}

func head(b []int) []int {
	if len(b) > 8 {
		return b[:8]
	}
	return b
}

// TestCDCEquivalenceProperty is the randomized property test: for
// arbitrary data and parameters, fast boundaries == reference
// boundaries.
func TestCDCEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, lenSel uint32, minSel, avgShift, maxSel uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		avg := 1 << (avgShift % 15) // 1 .. 16384
		min := int(minSel)%avg + 1  // 1 .. avg
		max := avg + int(maxSel)%(4*avg)
		c := NewCDC(min, avg, max)
		data := make([]byte, int(lenSel)%(6*max))
		rng.Read(data)
		return boundsEqual(c.AppendBoundaries(nil, data), c.ReferenceBoundaries(nil, data))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCDCResumable pins the property the NIC stream path relies on:
// re-chunking the stream suffix that begins at any boundary reproduces
// the remaining boundaries exactly (the rule for a chunk depends only
// on that chunk's bytes).
func TestCDCResumable(t *testing.T) {
	c := NewCDC(1024, 4096, 16384)
	data := make([]byte, 200000)
	rand.New(rand.NewSource(21)).Read(data)
	bounds := c.Boundaries(data)
	for _, cut := range []int{0, 1, len(bounds) / 2, len(bounds) - 1} {
		if cut >= len(bounds) {
			continue
		}
		off := 0
		if cut > 0 {
			off = bounds[cut-1]
		}
		resumed := c.Boundaries(data[off:])
		want := bounds[cut:]
		if len(resumed) != len(want) {
			t.Fatalf("resume at %d: %d boundaries, want %d", off, len(resumed), len(want))
		}
		for i := range resumed {
			if resumed[i]+off != want[i] {
				t.Fatalf("resume at %d: boundary %d = %d, want %d", off, i, resumed[i]+off, want[i])
			}
		}
	}
}

// TestCDCAppendBoundariesNoAlloc: recycling the caller buffer gives a
// zero-allocation steady state.
func TestCDCAppendBoundariesNoAlloc(t *testing.T) {
	c := NewCDC(2048, 8192, 32768)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(data)
	scratch := c.AppendBoundaries(nil, data)
	allocs := testing.AllocsPerRun(10, func() {
		scratch = c.AppendBoundaries(scratch[:0], data)
	})
	if allocs != 0 {
		t.Errorf("AppendBoundaries into recycled buffer: %.1f allocs/run, want 0", allocs)
	}
}

// --- Rolling (retained scalar rolling-hash chunker) ---

// rollingOracleCut recomputes the rolling chunker's cut from the window
// definition alone: at each candidate i the hash is the direct sum of
// table[data[j]] << (i-j) over j in [max(0, i-47), i]. No incremental
// state, no priming/eviction split — if nextCut's two paths disagree on
// the window origin for any candidate, this oracle exposes it.
func rollingOracleCut(r *Rolling, data []byte) int {
	n := len(data)
	if n <= r.Min {
		return n
	}
	limit := r.Max
	if n < limit {
		limit = n
	}
	for i := r.Min; i < limit; i++ {
		lo := i - rollingWindow + 1
		if lo < 0 {
			lo = 0
		}
		var h uint64
		for j := lo; j <= i; j++ {
			h = h<<1 + r.table[data[j]]
		}
		if h&r.mask == r.mask {
			return i + 1
		}
	}
	return limit
}

// TestRollingWindowOracle is the satellite regression test for the
// window-priming edge case: over configs with Min far below the window
// size (where priming covers fewer than 48 bytes and the eviction
// branch starts mid-stream), the incremental hash must agree with the
// from-scratch windowed hash at every boundary.
func TestRollingWindowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := make([]byte, 120000)
	rng.Read(data)
	configs := []struct{ min, avg, max int }{
		{1, 64, 256},    // Min far below the 48-byte window
		{2, 128, 512},   // priming covers 2 bytes
		{17, 256, 1024}, // priming ends mid-window
		{47, 256, 1024}, // one byte short of a full window
		{48, 256, 1024}, // exactly one window
		{49, 256, 1024}, // first eviction before first candidate
		{200, 1024, 4096},
	}
	for _, cc := range configs {
		r := NewRolling(cc.min, cc.avg, cc.max)
		start := 0
		for start < len(data) {
			got := r.nextCut(data[start:])
			want := rollingOracleCut(r, data[start:])
			if got != want {
				t.Fatalf("config %+v at offset %d: incremental cut %d, oracle cut %d", cc, start, got, want)
			}
			start += got
		}
	}
}

func TestRollingBoundariesCoverInput(t *testing.T) {
	r := NewRolling(2048, 8192, 65536)
	data := make([]byte, 300000)
	rand.New(rand.NewSource(1)).Read(data)
	bounds := r.Boundaries(data)
	if len(bounds) == 0 || bounds[len(bounds)-1] != len(data) {
		t.Fatalf("boundaries do not cover input: %v", head(bounds))
	}
	prev := 0
	for _, b := range bounds {
		if sz := b - prev; sz <= 0 || sz > r.Max {
			t.Fatalf("chunk size %d outside (0,%d]", sz, r.Max)
		}
		prev = b
	}
}

// --- Benchmarks: the acceptance bar is fast >= 5x reference ---

// benchData is 1 MiB of byte-random input: the size of one NIC ingest
// batch, which is what the inline datapath actually chunks — the buffer
// is cache-warm because hashing and packing touch it in the same batch.
// Byte-random content is the anchor-rate worst case for the fast path
// (real data has fewer anchor bytes and scans faster).
func benchData() []byte {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(data)
	return data
}

// BenchmarkCDCBoundaries compares the skip-ahead word-at-a-time fast
// path against the retained scalar reference and the legacy rolling-
// hash chunker on identical input. Per-op bytes make the GB/s visible:
// the fast path must be >= 5x the reference on a single core.
func BenchmarkCDCBoundaries(b *testing.B) {
	data := benchData()
	c := NewCDC(2048, 8192, 32768)
	r := NewRolling(2048, 8192, 32768)
	var scratch []int
	b.Run("fast", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			scratch = c.AppendBoundaries(scratch[:0], data)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			scratch = c.ReferenceBoundaries(scratch[:0], data)
		}
	})
	b.Run("rolling", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			r.Boundaries(data)
		}
	})
}

// BenchmarkCDC measures the full chunk-producing path (Split with
// extent addressing) at default backup parameters.
func BenchmarkCDC(b *testing.B) {
	data := benchData()
	c := NewCDC(DefaultCDCMin, DefaultCDCAvg, DefaultCDCMax)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Split(uint64(i)<<23, data)
	}
}
