// Package pcie models the server's PCIe fabric: a root complex, switches,
// and endpoint devices, with per-link byte ledgers.
//
// FIDR's second idea rides on this fabric (§5.1, §5.6): NICs, Compression
// Engines and data SSDs are grouped under shared switches so unique-chunk
// data flows NIC→Engine→SSD entirely as peer-to-peer transfers below one
// switch, never crossing the root complex or touching host DRAM. The
// baseline instead bounces every byte through host memory. The per-link
// ledgers quantify exactly that difference.
package pcie

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fidr/internal/metrics"
)

// DeviceID names an endpoint.
type DeviceID string

// HostMemory is the built-in endpoint representing host DRAM behind the
// root complex (DMA targets in host memory terminate here).
const HostMemory DeviceID = "host-memory"

// rootName is the internal name of the root complex "switch".
const rootName = "root-complex"

// Link identifies one hop in the fabric.
type Link struct {
	// From and To name the hop ends (device, switch or root complex).
	// Links are recorded in canonical lexical order.
	From, To string
}

func canonical(a, b string) Link {
	if a > b {
		a, b = b, a
	}
	return Link{From: a, To: b}
}

// String implements fmt.Stringer.
func (l Link) String() string { return l.From + "<->" + l.To }

// Topology is the PCIe fabric. Safe for concurrent Transfer calls.
type Topology struct {
	mu       sync.Mutex
	switches map[string]bool
	parent   map[string]string // device or switch -> parent (switch or root)
	bytes    map[Link]uint64
	p2p      uint64 // bytes moved without crossing the root complex
	viaRoot  uint64 // bytes that crossed the root complex

	// Registry mirrors, nil until Instrument. routeCtr is keyed by the
	// directed (src, dst) pair — direction matters for accounting even
	// though link charging is bidirectional.
	reg      *metrics.Registry
	obsP2P   *metrics.Counter
	obsRoot  *metrics.Counter
	routeCtr map[Link]*metrics.Counter
}

// NewTopology returns a fabric with only the root complex and host memory.
func NewTopology() *Topology {
	t := &Topology{
		switches: map[string]bool{rootName: true},
		parent:   map[string]string{string(HostMemory): rootName},
		bytes:    make(map[Link]uint64),
	}
	return t
}

// AddSwitch adds a PCIe switch under the root complex.
func (t *Topology) AddSwitch(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if name == rootName || t.switches[name] {
		return fmt.Errorf("pcie: switch %q already exists", name)
	}
	if _, ok := t.parent[name]; ok {
		return fmt.Errorf("pcie: name %q already used by a device", name)
	}
	t.switches[name] = true
	t.parent[name] = rootName
	return nil
}

// AddDevice attaches an endpoint under the named switch, or directly
// under the root complex if switchName is empty.
func (t *Topology) AddDevice(id DeviceID, switchName string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.parent[string(id)]; ok {
		return fmt.Errorf("pcie: device %q already exists", id)
	}
	if switchName == "" {
		switchName = rootName
	}
	if !t.switches[switchName] {
		return fmt.Errorf("pcie: unknown switch %q", switchName)
	}
	t.parent[string(id)] = switchName
	return nil
}

// Route returns the hop sequence from src to dst: up to the common
// ancestor (a switch for P2P siblings, else the root complex) and down.
func (t *Topology) Route(src, dst DeviceID) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.routeLocked(src, dst)
}

func (t *Topology) routeLocked(src, dst DeviceID) ([]string, error) {
	ps, ok := t.parent[string(src)]
	if !ok {
		return nil, fmt.Errorf("pcie: unknown device %q", src)
	}
	pd, ok := t.parent[string(dst)]
	if !ok {
		return nil, fmt.Errorf("pcie: unknown device %q", dst)
	}
	if src == dst {
		return nil, fmt.Errorf("pcie: transfer from %q to itself", src)
	}
	if ps == pd {
		// Peer-to-peer below one switch (or both under the root).
		return []string{string(src), ps, string(dst)}, nil
	}
	// Up through the root complex.
	path := []string{string(src), ps}
	if ps != rootName {
		path = append(path, rootName)
	}
	if pd != rootName {
		path = append(path, pd)
	}
	path = append(path, string(dst))
	return path, nil
}

// Transfer moves n bytes from src to dst, charging every traversed link.
// It reports whether the transfer was peer-to-peer (did not cross the
// root complex).
func (t *Topology) Transfer(src, dst DeviceID, n uint64) (p2p bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	path, err := t.routeLocked(src, dst)
	if err != nil {
		return false, err
	}
	crossesRoot := false
	for i := 1; i < len(path); i++ {
		t.bytes[canonical(path[i-1], path[i])] += n
		if path[i] == rootName {
			crossesRoot = true
		}
	}
	// A transfer terminating at host memory crosses the root by
	// definition (host memory hangs off the root complex).
	if src == HostMemory || dst == HostMemory {
		crossesRoot = true
	}
	if crossesRoot {
		t.viaRoot += n
	} else {
		t.p2p += n
	}
	if t.reg != nil {
		if crossesRoot {
			t.obsRoot.Add(n)
		} else {
			t.obsP2P.Add(n)
		}
		key := Link{From: string(src), To: string(dst)}
		c := t.routeCtr[key]
		if c == nil {
			c = t.reg.Counter("pcie.route." + routeSlug(string(src)) + "_to_" + routeSlug(string(dst)) + ".bytes")
			t.routeCtr[key] = c
		}
		c.Add(n)
	}
	return !crossesRoot, nil
}

// routeSlug makes a device name safe inside a dotted metric name.
func routeSlug(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}

// Instrument mirrors the fabric's ledgers into reg:
//
//	pcie.p2p_bytes                       bytes moved peer-to-peer under switches
//	pcie.root_bytes                      bytes that crossed the root complex
//	pcie.route.<src>_to_<dst>.bytes      bytes per directed device pair
//
// Call once, before serving traffic: mirrors count transfers from the
// call onward and do not backfill earlier totals. The FIDR datapath
// claim (§5.6) is then scrapeable: under FIDR architectures the
// nic→engine→SSD payload routes accumulate in p2p_bytes while
// root_bytes stays metadata-only.
func (t *Topology) Instrument(reg *metrics.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg = reg
	t.obsP2P = reg.Counter("pcie.p2p_bytes")
	t.obsRoot = reg.Counter("pcie.root_bytes")
	t.routeCtr = make(map[Link]*metrics.Counter)
}

// LinkBytes returns bytes carried by each link, sorted by link name.
type LinkBytes struct {
	Link  Link
	Bytes uint64
}

// Report returns the per-link ledger plus P2P/root-complex totals.
func (t *Topology) Report() (links []LinkBytes, p2pBytes, rootBytes uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for l, b := range t.bytes {
		links = append(links, LinkBytes{Link: l, Bytes: b})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Link.From != links[j].Link.From {
			return links[i].Link.From < links[j].Link.From
		}
		return links[i].Link.To < links[j].Link.To
	})
	return links, t.p2p, t.viaRoot
}

// RootComplexBytes returns bytes that crossed the root complex.
func (t *Topology) RootComplexBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.viaRoot
}

// P2PBytes returns bytes moved peer-to-peer under switches.
func (t *Topology) P2PBytes() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p2p
}

// Reset zeroes all ledgers (topology preserved).
func (t *Topology) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bytes = make(map[Link]uint64)
	t.p2p, t.viaRoot = 0, 0
}
