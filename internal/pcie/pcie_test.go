package pcie

import (
	"sync"
	"testing"
)

func buildFIDRGroup(t *testing.T) *Topology {
	t.Helper()
	top := NewTopology()
	if err := top.AddSwitch("sw0"); err != nil {
		t.Fatal(err)
	}
	for _, d := range []DeviceID{"nic0", "comp0", "dssd0"} {
		if err := top.AddDevice(d, "sw0"); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.AddDevice("cache-engine", ""); err != nil {
		t.Fatal(err)
	}
	return top
}

func TestAddValidation(t *testing.T) {
	top := NewTopology()
	if err := top.AddSwitch("s"); err != nil {
		t.Fatal(err)
	}
	if err := top.AddSwitch("s"); err == nil {
		t.Error("duplicate switch accepted")
	}
	if err := top.AddDevice("d", "s"); err != nil {
		t.Fatal(err)
	}
	if err := top.AddDevice("d", "s"); err == nil {
		t.Error("duplicate device accepted")
	}
	if err := top.AddDevice("x", "nope"); err == nil {
		t.Error("unknown switch accepted")
	}
	if err := top.AddSwitch("d"); err == nil {
		t.Error("switch name colliding with device accepted")
	}
	if err := top.AddDevice(HostMemory, ""); err == nil {
		t.Error("host memory redefined")
	}
}

func TestP2PUnderSwitch(t *testing.T) {
	top := buildFIDRGroup(t)
	p2p, err := top.Transfer("nic0", "comp0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !p2p {
		t.Fatal("sibling transfer not P2P")
	}
	if top.P2PBytes() != 4096 || top.RootComplexBytes() != 0 {
		t.Fatalf("ledgers: p2p=%d root=%d", top.P2PBytes(), top.RootComplexBytes())
	}
}

func TestHostBounceCrossesRoot(t *testing.T) {
	top := buildFIDRGroup(t)
	p2p, err := top.Transfer("nic0", HostMemory, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p2p {
		t.Fatal("host transfer marked P2P")
	}
	if top.RootComplexBytes() != 1000 {
		t.Fatalf("root bytes = %d", top.RootComplexBytes())
	}
}

func TestCrossSwitchRoutesThroughRoot(t *testing.T) {
	top := buildFIDRGroup(t)
	if err := top.AddSwitch("sw1"); err != nil {
		t.Fatal(err)
	}
	if err := top.AddDevice("dssd1", "sw1"); err != nil {
		t.Fatal(err)
	}
	route, err := top.Route("comp0", "dssd1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"comp0", "sw0", "root-complex", "sw1", "dssd1"}
	if len(route) != len(want) {
		t.Fatalf("route = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
	p2p, _ := top.Transfer("comp0", "dssd1", 10)
	if p2p {
		t.Fatal("cross-switch transfer marked P2P")
	}
}

func TestDeviceUnderRootToSibling(t *testing.T) {
	top := buildFIDRGroup(t)
	// cache-engine hangs directly off the root; a transfer to host
	// memory shares the root as parent, so the route is short but it
	// still counts as crossing the root complex.
	p2p, err := top.Transfer("cache-engine", HostMemory, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p2p {
		t.Fatal("root-attached to host-memory should not be P2P")
	}
}

func TestRouteErrors(t *testing.T) {
	top := buildFIDRGroup(t)
	if _, err := top.Route("ghost", "nic0"); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := top.Route("nic0", "ghost"); err == nil {
		t.Error("unknown dst accepted")
	}
	if _, err := top.Route("nic0", "nic0"); err == nil {
		t.Error("self transfer accepted")
	}
}

func TestLinkLedger(t *testing.T) {
	top := buildFIDRGroup(t)
	top.Transfer("nic0", "comp0", 100)
	top.Transfer("comp0", "dssd0", 50)
	links, p2p, root := top.Report()
	if p2p != 150 || root != 0 {
		t.Fatalf("totals: p2p=%d root=%d", p2p, root)
	}
	var nicLink, compLink, ssdLink uint64
	for _, lb := range links {
		switch lb.Link.String() {
		case "nic0<->sw0":
			nicLink = lb.Bytes
		case "comp0<->sw0":
			compLink = lb.Bytes
		case "dssd0<->sw0":
			ssdLink = lb.Bytes
		}
	}
	if nicLink != 100 || compLink != 150 || ssdLink != 50 {
		t.Fatalf("link bytes nic=%d comp=%d ssd=%d", nicLink, compLink, ssdLink)
	}
}

func TestReset(t *testing.T) {
	top := buildFIDRGroup(t)
	top.Transfer("nic0", "comp0", 100)
	top.Reset()
	links, p2p, root := top.Report()
	if len(links) != 0 || p2p != 0 || root != 0 {
		t.Fatal("reset did not clear ledgers")
	}
	// Topology survives.
	if _, err := top.Transfer("nic0", "comp0", 1); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfers(t *testing.T) {
	top := buildFIDRGroup(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				top.Transfer("nic0", "comp0", 10)
			}
		}()
	}
	wg.Wait()
	if top.P2PBytes() != 8*500*10 {
		t.Fatalf("p2p bytes = %d", top.P2PBytes())
	}
}

func BenchmarkTransferP2P(b *testing.B) {
	top := NewTopology()
	top.AddSwitch("sw0")
	top.AddDevice("nic0", "sw0")
	top.AddDevice("comp0", "sw0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.Transfer("nic0", "comp0", 4096); err != nil {
			b.Fatal(err)
		}
	}
}
