package hwtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := NewTree()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok, path := tr.Get(5); ok || len(path) != 1 {
		t.Fatalf("empty get: ok=%v pathlen=%d", ok, len(path))
	}
	if removed, _ := tr.Delete(5); removed {
		t.Fatal("deleted from empty tree")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetSequential(t *testing.T) {
	tr := NewTree()
	for i := uint64(0); i < 5000; i++ {
		tr.Put(i, i*3)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		v, ok, path := tr.Get(i)
		if !ok || v != i*3 {
			t.Fatalf("key %d: v=%d ok=%v", i, v, ok)
		}
		if len(path) != tr.Height() {
			t.Fatalf("path length %d != height %d", len(path), tr.Height())
		}
	}
	if tr.Len() != 5000 {
		t.Fatalf("len = %d", tr.Len())
	}
	// 5000 keys with 16-key leaves and fan-out <=3 needs height >= 6.
	if tr.Height() < 6 {
		t.Fatalf("height = %d, implausibly shallow", tr.Height())
	}
}

func TestPutTouchesNodes(t *testing.T) {
	tr := NewTree()
	tc := tr.Put(1, 1)
	if len(tc.IDs) == 0 {
		t.Fatal("insert touched no nodes")
	}
	// Filling one leaf then overflowing must touch >1 node (split).
	for i := uint64(2); i <= LeafKeys; i++ {
		tr.Put(i, i)
	}
	tc = tr.Put(100, 100)
	if len(tc.IDs) < 2 {
		t.Fatalf("split touched %d nodes", len(tc.IDs))
	}
}

func TestDeleteRandomAll(t *testing.T) {
	tr := NewTree()
	const n = 3000
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Put(uint64(i), uint64(i))
	}
	perm2 := rng.Perm(n)
	for step, i := range perm2 {
		removed, tc := tr.Delete(uint64(i))
		if !removed {
			t.Fatalf("step %d: key %d not found", step, i)
		}
		if len(tc.IDs) == 0 {
			t.Fatalf("step %d: delete touched nothing", step)
		}
		if step%250 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after drain: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesMapModel(t *testing.T) {
	type op struct {
		Key uint16
		Val uint16
		Del bool
	}
	prop := func(ops []op) bool {
		tr := NewTree()
		ref := make(map[uint64]uint64)
		for _, o := range ops {
			k := uint64(o.Key % 300)
			if o.Del {
				_, want := ref[k]
				delete(ref, k)
				removed, _ := tr.Delete(k)
				if removed != want {
					return false
				}
			} else {
				ref[k] = uint64(o.Val)
				tr.Put(k, uint64(o.Val))
			}
		}
		if tr.Len() != len(ref) || tr.Check() != nil {
			return false
		}
		for k, v := range ref {
			got, ok, _ := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestNodeReuse(t *testing.T) {
	tr := NewTree()
	for i := uint64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	grown := len(tr.pool)
	for i := uint64(0); i < 1000; i++ {
		tr.Delete(i)
	}
	for i := uint64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	if len(tr.pool) > grown+grown/2 {
		t.Errorf("pool grew from %d to %d; free list not reused", grown, len(tr.pool))
	}
	if tr.LiveNodes() <= 0 {
		t.Error("no live nodes reported")
	}
}

func TestPathToNeighbors(t *testing.T) {
	tr := NewTree()
	for i := uint64(0); i < 200; i++ {
		tr.Put(i, i)
	}
	path, neighbors := tr.PathTo(100)
	if len(path) != tr.Height() {
		t.Fatalf("path length %d != height %d", len(path), tr.Height())
	}
	if len(neighbors) == 0 {
		t.Fatal("mid-tree key has no leaf neighbors")
	}
	// Neighbors must be distinct from the leaf itself.
	leafID := path[len(path)-1]
	for _, nb := range neighbors {
		if nb == leafID {
			t.Fatal("leaf returned as its own neighbor")
		}
	}
}

func TestLevelNodeCounts(t *testing.T) {
	tr := NewTree()
	for i := uint64(0); i < 10000; i++ {
		tr.Put(i, i)
	}
	counts := tr.LevelNodeCounts()
	if len(counts) != tr.Height() {
		t.Fatalf("levels %d != height %d", len(counts), tr.Height())
	}
	if counts[0] != 1 {
		t.Fatalf("root level has %d nodes", counts[0])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("level %d smaller than parent level", i)
		}
	}
	// Total leaves should be about 10000 / (8..16 keys per leaf).
	leaves := counts[len(counts)-1]
	if leaves < 10000/LeafKeys || leaves > 10000/(LeafKeys/2)+1 {
		t.Fatalf("%d leaves for 10000 keys", leaves)
	}
}

func BenchmarkHWTreePut(b *testing.B) {
	tr := NewTree()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i), uint64(i))
	}
}

func BenchmarkHWTreeGet(b *testing.B) {
	tr := NewTree()
	for i := uint64(0); i < 1<<18; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) & (1<<18 - 1))
	}
}
