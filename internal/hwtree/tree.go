// Package hwtree models the FIDR Cache HW-Engine's hardware B-tree
// (§5.5): a pipelined index mapping table-bucket indexes to cache-line
// locations, with the paper's two modifications to the Yang–Prasanna
// pipelined dynamic search tree:
//
//  1. asymmetric node sizes — small (2-key) non-leaf nodes so every
//     non-leaf level fits single-cycle on-chip memory, with large
//     (16-key) leaf nodes in FPGA-board DRAM, and
//  2. concurrent pipelined updates via speculative execution with a
//     crash/replay controller (Algorithms 1 and 2).
//
// The package has three faces: a functional pool-based B-tree whose nodes
// live in per-level pools like the hardware's per-stage memories
// (tree.go), the speculative concurrent-update executor (spec.go), and
// the throughput/area models that reproduce Figure 13 and Table 5
// (perf.go, area.go).
package hwtree

import (
	"errors"
	"fmt"
	"sort"
)

const (
	// InternalKeys is the non-leaf node key capacity (paper: max 2 keys
	// per node in non-leaf stages, as in the original FPGA tree).
	InternalKeys = 2
	// LeafKeys is the enlarged leaf capacity (paper: 16 keys), the
	// modification that lets non-leaf levels stay on chip.
	LeafKeys = 16
)

// NodeID identifies a node in the pool. The zero value is never a valid
// allocated node; id -1 means "none".
type NodeID int32

const noNode NodeID = -1

type node struct {
	leaf     bool
	n        int // number of keys
	keys     [LeafKeys]uint64
	vals     [LeafKeys]uint64         // leaf payloads
	children [InternalKeys + 1]NodeID // internal fan-out
}

func (nd *node) capKeys() int {
	if nd.leaf {
		return LeafKeys
	}
	return InternalKeys
}

// Tree is the functional hardware tree. It is deliberately pool-based:
// nodes are slots in a flat arena (the per-stage memories), identified by
// NodeID, and every mutating operation reports exactly which slots it
// touched — the information Algorithm 1 needs for conflict detection.
//
// Not safe for concurrent use; concurrency is modeled explicitly by the
// speculative executor.
type Tree struct {
	pool []node
	free []NodeID
	root NodeID
	size int
}

// NewTree returns an empty tree.
func NewTree() *Tree {
	t := &Tree{root: noNode}
	t.root = t.alloc(true)
	return t
}

func (t *Tree) alloc(leaf bool) NodeID {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		t.pool[id] = node{leaf: leaf}
		return id
	}
	t.pool = append(t.pool, node{leaf: leaf})
	return NodeID(len(t.pool) - 1)
}

func (t *Tree) dealloc(id NodeID) { t.free = append(t.free, id) }

func (t *Tree) nd(id NodeID) *node { return &t.pool[id] }

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (pipeline stages).
func (t *Tree) Height() int {
	h := 1
	id := t.root
	for !t.nd(id).leaf {
		id = t.nd(id).children[0]
		h++
	}
	return h
}

// LiveNodes returns the number of allocated nodes.
func (t *Tree) LiveNodes() int { return len(t.pool) - len(t.free) }

// Get looks up key, returning its value and the search path (root to
// leaf). The path length is the pipeline occupancy of one search.
func (t *Tree) Get(key uint64) (val uint64, ok bool, path []NodeID) {
	id := t.root
	for {
		path = append(path, id)
		nd := t.nd(id)
		if nd.leaf {
			i := nd.find(key)
			if i < nd.n && nd.keys[i] == key {
				return nd.vals[i], true, path
			}
			return 0, false, path
		}
		id = nd.children[nd.route(key)]
	}
}

// find returns the first index with keys[i] >= key.
func (nd *node) find(key uint64) int {
	return sort.Search(nd.n, func(i int) bool { return nd.keys[i] >= key })
}

// route returns the child index for key in an internal node.
func (nd *node) route(key uint64) int {
	return sort.Search(nd.n, func(i int) bool { return nd.keys[i] > key })
}

// PathTo returns the search path for key plus the leaf's sibling leaves
// under the same parent. This is the conflict footprint Algorithm 1
// checks ("node or node.neighbor in spec_updated_node"): an update may
// split or merge into an adjacent node, so neighbors are part of the
// speculative read-write set.
func (t *Tree) PathTo(key uint64) (path, neighbors []NodeID) {
	id := t.root
	var parent NodeID = noNode
	var childIdx int
	for {
		path = append(path, id)
		nd := t.nd(id)
		if nd.leaf {
			if parent != noNode {
				p := t.nd(parent)
				if childIdx > 0 {
					neighbors = append(neighbors, p.children[childIdx-1])
				}
				if childIdx < p.n {
					neighbors = append(neighbors, p.children[childIdx+1])
				}
			}
			return path, neighbors
		}
		parent = id
		childIdx = nd.route(key)
		id = nd.children[childIdx]
	}
}

// Touched accumulates the slots a mutating operation wrote.
type Touched struct {
	IDs []NodeID
}

func (tc *Touched) add(id NodeID) { tc.IDs = append(tc.IDs, id) }

// Put inserts or updates key. It returns the set of node slots modified
// (including nodes created by splits and every ancestor whose separator
// or child list changed).
func (t *Tree) Put(key, val uint64) Touched {
	var tc Touched
	newID, sep, grew := t.insert(t.root, key, val, &tc)
	if newID != noNode {
		newRoot := t.alloc(false)
		r := t.nd(newRoot)
		r.n = 1
		r.keys[0] = sep
		r.children[0] = t.root
		r.children[1] = newID
		t.root = newRoot
		tc.add(newRoot)
	}
	if grew {
		t.size++
	}
	return tc
}

func (t *Tree) insert(id NodeID, key, val uint64, tc *Touched) (newID NodeID, sep uint64, grew bool) {
	nd := t.nd(id)
	if nd.leaf {
		i := nd.find(key)
		if i < nd.n && nd.keys[i] == key {
			nd.vals[i] = val
			tc.add(id)
			return noNode, 0, false
		}
		if nd.n < nd.capKeys() {
			copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
			copy(nd.vals[i+1:nd.n+1], nd.vals[i:nd.n])
			nd.keys[i], nd.vals[i] = key, val
			nd.n++
			tc.add(id)
			return noNode, 0, true
		}
		// Split leaf, then insert into the proper half.
		rid := t.alloc(true)
		nd = t.nd(id) // alloc may have moved the pool
		r := t.nd(rid)
		mid := nd.n / 2
		copy(r.keys[:], nd.keys[mid:nd.n])
		copy(r.vals[:], nd.vals[mid:nd.n])
		r.n = nd.n - mid
		nd.n = mid
		target, tid := nd, id
		if key >= r.keys[0] {
			target, tid = r, rid
		}
		j := target.find(key)
		copy(target.keys[j+1:target.n+1], target.keys[j:target.n])
		copy(target.vals[j+1:target.n+1], target.vals[j:target.n])
		target.keys[j], target.vals[j] = key, val
		target.n++
		tc.add(id)
		tc.add(rid)
		_ = tid
		return rid, r.keys[0], true
	}
	ci := nd.route(key)
	child := nd.children[ci]
	childNew, childSep, g := t.insert(child, key, val, tc)
	nd = t.nd(id) // re-acquire after possible pool growth
	if childNew == noNode {
		return noNode, 0, g
	}
	if nd.n < InternalKeys {
		copy(nd.keys[ci+1:nd.n+1], nd.keys[ci:nd.n])
		copy(nd.children[ci+2:nd.n+2], nd.children[ci+1:nd.n+1])
		nd.keys[ci] = childSep
		nd.children[ci+1] = childNew
		nd.n++
		tc.add(id)
		return noNode, 0, g
	}
	// Split internal node around the median of the 3 keys
	// (existing 2 + incoming 1).
	keys := make([]uint64, 0, InternalKeys+1)
	kids := make([]NodeID, 0, InternalKeys+2)
	keys = append(keys, nd.keys[:nd.n]...)
	kids = append(kids, nd.children[:nd.n+1]...)
	keys = append(keys, 0)
	copy(keys[ci+1:], keys[ci:len(keys)-1])
	keys[ci] = childSep
	kids = append(kids, noNode)
	copy(kids[ci+2:], kids[ci+1:len(kids)-1])
	kids[ci+1] = childNew

	midK := len(keys) / 2
	up := keys[midK]
	rid := t.alloc(false)
	nd = t.nd(id)
	r := t.nd(rid)
	// Left keeps keys[:midK], right takes keys[midK+1:].
	nd.n = midK
	copy(nd.keys[:], keys[:midK])
	copy(nd.children[:], kids[:midK+1])
	r.n = len(keys) - midK - 1
	copy(r.keys[:], keys[midK+1:])
	copy(r.children[:], kids[midK+1:])
	tc.add(id)
	tc.add(rid)
	return rid, up, g
}

// Delete removes key, returning whether it was present and the touched
// slots.
func (t *Tree) Delete(key uint64) (bool, Touched) {
	var tc Touched
	removed := t.remove(t.root, key, &tc)
	if removed {
		t.size--
	}
	root := t.nd(t.root)
	if !root.leaf && root.n == 0 {
		old := t.root
		t.root = root.children[0]
		t.dealloc(old)
		tc.add(old)
	}
	return removed, tc
}

func (t *Tree) minKeys(leaf bool) int {
	if leaf {
		return LeafKeys / 2
	}
	return 1 // internal nodes keep >= 1 key (2-3 tree style)
}

func (t *Tree) remove(id NodeID, key uint64, tc *Touched) bool {
	nd := t.nd(id)
	if nd.leaf {
		i := nd.find(key)
		if i >= nd.n || nd.keys[i] != key {
			return false
		}
		copy(nd.keys[i:nd.n-1], nd.keys[i+1:nd.n])
		copy(nd.vals[i:nd.n-1], nd.vals[i+1:nd.n])
		nd.n--
		tc.add(id)
		return true
	}
	ci := nd.route(key)
	removed := t.remove(nd.children[ci], key, tc)
	if removed {
		t.rebalance(id, ci, tc)
	}
	return removed
}

// rebalance repairs underflow of child ci of internal node id.
func (t *Tree) rebalance(id NodeID, ci int, tc *Touched) {
	nd := t.nd(id)
	childID := nd.children[ci]
	child := t.nd(childID)
	if child.n >= t.minKeys(child.leaf) {
		return
	}
	// Borrow from left sibling.
	if ci > 0 {
		lid := nd.children[ci-1]
		l := t.nd(lid)
		if l.n > t.minKeys(l.leaf) {
			t.borrow(id, ci, true, tc)
			return
		}
	}
	// Borrow from right sibling.
	if ci < nd.n {
		rid := nd.children[ci+1]
		r := t.nd(rid)
		if r.n > t.minKeys(r.leaf) {
			t.borrow(id, ci, false, tc)
			return
		}
	}
	// Merge with a sibling.
	if ci > 0 {
		t.mergeChildren(id, ci-1, tc)
	} else {
		t.mergeChildren(id, ci, tc)
	}
}

// borrow rotates one entry from a sibling into child ci.
func (t *Tree) borrow(id NodeID, ci int, fromLeft bool, tc *Touched) {
	nd := t.nd(id)
	childID := nd.children[ci]
	child := t.nd(childID)
	if fromLeft {
		lid := nd.children[ci-1]
		l := t.nd(lid)
		if child.leaf {
			copy(child.keys[1:child.n+1], child.keys[:child.n])
			copy(child.vals[1:child.n+1], child.vals[:child.n])
			child.keys[0] = l.keys[l.n-1]
			child.vals[0] = l.vals[l.n-1]
			child.n++
			l.n--
			nd.keys[ci-1] = child.keys[0]
		} else {
			copy(child.keys[1:child.n+1], child.keys[:child.n])
			copy(child.children[1:child.n+2], child.children[:child.n+1])
			child.keys[0] = nd.keys[ci-1]
			child.children[0] = l.children[l.n]
			child.n++
			nd.keys[ci-1] = l.keys[l.n-1]
			l.n--
		}
		tc.add(lid)
	} else {
		rid := nd.children[ci+1]
		r := t.nd(rid)
		if child.leaf {
			child.keys[child.n] = r.keys[0]
			child.vals[child.n] = r.vals[0]
			child.n++
			copy(r.keys[:r.n-1], r.keys[1:r.n])
			copy(r.vals[:r.n-1], r.vals[1:r.n])
			r.n--
			nd.keys[ci] = r.keys[0]
		} else {
			child.keys[child.n] = nd.keys[ci]
			child.children[child.n+1] = r.children[0]
			child.n++
			nd.keys[ci] = r.keys[0]
			copy(r.keys[:r.n-1], r.keys[1:r.n])
			copy(r.children[:r.n], r.children[1:r.n+1])
			r.n--
		}
		tc.add(rid)
	}
	tc.add(id)
	tc.add(childID)
}

// mergeChildren folds child ci+1 into child ci of node id.
func (t *Tree) mergeChildren(id NodeID, ci int, tc *Touched) {
	nd := t.nd(id)
	lid, rid := nd.children[ci], nd.children[ci+1]
	l, r := t.nd(lid), t.nd(rid)
	if l.leaf {
		copy(l.keys[l.n:], r.keys[:r.n])
		copy(l.vals[l.n:], r.vals[:r.n])
		l.n += r.n
	} else {
		l.keys[l.n] = nd.keys[ci]
		l.n++
		copy(l.keys[l.n:], r.keys[:r.n])
		copy(l.children[l.n:], r.children[:r.n+1])
		l.n += r.n
	}
	copy(nd.keys[ci:nd.n-1], nd.keys[ci+1:nd.n])
	copy(nd.children[ci+1:nd.n], nd.children[ci+2:nd.n+1])
	nd.n--
	t.dealloc(rid)
	tc.add(id)
	tc.add(lid)
	tc.add(rid)
}

// Check validates structural invariants.
func (t *Tree) Check() error {
	count := 0
	var prev uint64
	first := true
	leafDepth := -1
	var walk func(id NodeID, depth int, lo, hi uint64, hasLo, hasHi bool) error
	walk = func(id NodeID, depth int, lo, hi uint64, hasLo, hasHi bool) error {
		nd := t.nd(id)
		if nd.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("hwtree: leaves at depths %d and %d", leafDepth, depth)
			}
			for i := 0; i < nd.n; i++ {
				k := nd.keys[i]
				if hasLo && k < lo {
					return fmt.Errorf("hwtree: key %d below bound", k)
				}
				if hasHi && k >= hi {
					return fmt.Errorf("hwtree: key %d above bound", k)
				}
				if !first && k <= prev {
					return fmt.Errorf("hwtree: keys not ascending (%d after %d)", k, prev)
				}
				prev, first = k, false
				count++
			}
			return nil
		}
		if nd.n < 1 && id != t.root {
			return errors.New("hwtree: internal node with no keys")
		}
		for i := 1; i < nd.n; i++ {
			if nd.keys[i] <= nd.keys[i-1] {
				return errors.New("hwtree: separators not ascending")
			}
		}
		for i := 0; i <= nd.n; i++ {
			clo, chi := lo, hi
			cHasLo, cHasHi := hasLo, hasHi
			if i > 0 {
				clo, cHasLo = nd.keys[i-1], true
			}
			if i < nd.n {
				chi, cHasHi = nd.keys[i], true
			}
			if err := walk(nd.children[i], depth+1, clo, chi, cHasLo, cHasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, 0, 0, false, false); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("hwtree: size %d but counted %d", t.size, count)
	}
	return nil
}

// LevelNodeCounts returns the number of live nodes at each level, root
// first. Used by the area model: levels 0..h-2 map to on-chip memories,
// the leaf level to FPGA-board DRAM.
func (t *Tree) LevelNodeCounts() []int {
	var counts []int
	var walk func(id NodeID, depth int)
	walk = func(id NodeID, depth int) {
		for len(counts) <= depth {
			counts = append(counts, 0)
		}
		counts[depth]++
		nd := t.nd(id)
		if nd.leaf {
			return
		}
		for i := 0; i <= nd.n; i++ {
			walk(nd.children[i], depth+1)
		}
	}
	walk(t.root, 0)
	return counts
}
