package hwtree

import "math"

// FPGA area model for the Cache HW-Engine (Table 5). Block costs are
// calibrated so the three configurations the paper synthesizes (full
// engine with table-SSD controllers; tree-only with the 410-MB medium
// tree; tree-only with the ~100-GB large tree) land on the reported
// LUT/FF/BRAM/URAM utilizations of a VCU1525 (XCVU9P) board.

// Resources is an FPGA resource vector.
type Resources struct {
	LUTs  int
	FFs   int
	BRAMs int
	URAMs int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUTs + o.LUTs, r.FFs + o.FFs, r.BRAMs + o.BRAMs, r.URAMs + o.URAMs}
}

// VCU1525 capacity (Xilinx XCVU9P).
var VCU1525 = Resources{LUTs: 1182240, FFs: 2364480, BRAMs: 2160, URAMs: 960}

// Utilization returns per-resource fractions of the device.
func (r Resources) Utilization(device Resources) (lut, ff, bram, uram float64) {
	return float64(r.LUTs) / float64(device.LUTs),
		float64(r.FFs) / float64(device.FFs),
		float64(r.BRAMs) / float64(device.BRAMs),
		float64(r.URAMs) / float64(device.URAMs)
}

const (
	// bramBytes is usable bytes per 36-Kb BRAM tile.
	bramBytes = 4608
	// uramBytes is usable bytes per 288-Kb URAM tile.
	uramBytes = 36864
	// nodeBytes is the packed on-chip node image (2 keys + 3 child
	// pointers at URAM-word alignment).
	nodeBytes = 24
	// avgFanout is the average internal fan-out used for node-count
	// estimates (max 3 children, ~5/6 full in steady state).
	avgFanout = 2.5
	// leafFill is the assumed average leaf occupancy out of LeafKeys.
	leafFill = 16

	// Calibrated block costs (see Table 5 reproduction in
	// EXPERIMENTS.md for paper-vs-model).
	baseLUTs       = 258400 // DDR4+PCIe controllers, command generator, crash/replay, free list
	baseFFs        = 134200
	baseBRAMs      = 160
	stageLUTs      = 6400 // one search+update pipeline stage pair
	stageFFs       = 2200
	nvmeLUTs       = 4000 // in-engine table-SSD NVMe controllers
	nvmeFFs        = 6000
	nvmeBRAMs      = 16
	uramFFSavings  = 28000   // node registers migrated into URAM macros
	largeLeafCache = 1 << 20 // on-chip leaf cache for DRAM-leaf trees (bytes)
)

// HeightFor returns the tree height needed to index the given number of
// cache lines: one leaf level (16 keys) plus ceil(log3) internal levels.
func HeightFor(cacheLines uint64) int {
	if cacheLines <= LeafKeys {
		return 1
	}
	leaves := float64(cacheLines) / leafFill
	return 1 + int(math.Ceil(math.Log(leaves)/math.Log(3)))
}

// EngineConfig describes a Cache HW-Engine build.
type EngineConfig struct {
	// CacheLines is the number of 4-KB table cache lines indexed.
	CacheLines uint64
	// WithTableSSD includes the in-engine NVMe controllers.
	WithTableSSD bool
}

// onChipNodeBytes estimates total bytes of non-leaf node storage.
func onChipNodeBytes(cacheLines uint64) int {
	leaves := float64(cacheLines) / leafFill
	// Sum of internal level sizes: leaves/f + leaves/f^2 + ...
	nodes := 0.0
	level := leaves / avgFanout
	for level >= 1 {
		nodes += level
		level /= avgFanout
	}
	nodes += 1 // root
	return int(nodes * nodeBytes)
}

// CacheEngineResources returns the modeled FPGA resources for cfg.
func CacheEngineResources(cfg EngineConfig) Resources {
	h := HeightFor(cfg.CacheLines)
	r := Resources{
		LUTs: baseLUTs + stageLUTs*h,
		FFs:  baseFFs + stageFFs*h,
	}
	nodeStore := onChipNodeBytes(cfg.CacheLines)
	// Node storage fits BRAM up to ~1 MB; beyond that it migrates to
	// URAM and a leaf cache is added in BRAM (the paper's large-tree
	// build: 13 on-chip levels in URAM).
	const bramNodeBudget = 1 << 20
	if nodeStore <= bramNodeBudget {
		r.BRAMs = baseBRAMs + (nodeStore+bramBytes-1)/bramBytes
	} else {
		r.BRAMs = baseBRAMs + (largeLeafCache+bramBytes-1)/bramBytes
		r.URAMs = (nodeStore+uramBytes-1)/uramBytes + 60 // +free-list staging
		r.FFs -= uramFFSavings
	}
	if cfg.WithTableSSD {
		r.LUTs += nvmeLUTs
		r.FFs += nvmeFFs
		r.BRAMs += nvmeBRAMs
	}
	return r
}

// MediumCacheLines is the prototype's 410-MB table cache in 4-KB lines.
const MediumCacheLines = 410 << 20 / 4096

// LargeCacheLines is the PB-scale ~100-GB (99,645 MB) cache in 4-KB lines.
const LargeCacheLines = 99645 << 20 / 4096
