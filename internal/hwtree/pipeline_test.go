package hwtree

import (
	"math/rand"
	"testing"
)

func TestPipelinedValidation(t *testing.T) {
	if _, err := NewPipelinedExecutor(NewTree(), 0); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestPipelinedMatchesSequential(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(w) * 31))
		var ups []Update
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(1500))
			if rng.Intn(4) == 0 {
				ups = append(ups, Update{Kind: UpdateDelete, Key: k})
			} else {
				ups = append(ups, Update{Kind: UpdateInsert, Key: k, Val: uint64(i)})
			}
		}
		ref := make(map[uint64]uint64)
		for _, u := range ups {
			if u.Kind == UpdateInsert {
				ref[u.Key] = u.Val
			} else {
				delete(ref, u.Key)
			}
		}
		exec, err := NewPipelinedExecutor(NewTree(), w)
		if err != nil {
			t.Fatal(err)
		}
		exec.Enqueue(ups...)
		exec.Drain()
		tr := exec.Tree()
		if err := tr.Check(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("w=%d: len %d vs %d", w, tr.Len(), len(ref))
		}
		for k, v := range ref {
			got, ok, _ := tr.Get(k)
			if !ok || got != v {
				t.Fatalf("w=%d: key %d = %d,%v want %d", w, k, got, ok, v)
			}
		}
		st := exec.Stats()
		if st.Committed != uint64(len(ups)) {
			t.Fatalf("w=%d: committed %d/%d", w, st.Committed, len(ups))
		}
	}
}

func TestPipelinedWidth1NoCrashes(t *testing.T) {
	exec, _ := NewPipelinedExecutor(NewTree(), 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
	}
	exec.Drain()
	if exec.Stats().Crashes != 0 {
		t.Fatalf("width-1 pipeline crashed %d times", exec.Stats().Crashes)
	}
}

func TestPipelinedOverlapSpeedsUp(t *testing.T) {
	// The point of speculation: W=4 must finish the same update stream
	// in materially fewer cycles than W=1.
	run := func(w int) uint64 {
		tr := NewTree()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50000; i++ {
			tr.Put(rng.Uint64(), 1)
		}
		exec, _ := NewPipelinedExecutor(tr, w)
		for i := 0; i < 10000; i++ {
			exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
		}
		exec.Drain()
		return exec.Cycles()
	}
	c1 := run(1)
	c4 := run(4)
	if float64(c4) > 0.5*float64(c1) {
		t.Fatalf("width 4 took %d cycles vs width 1's %d; overlap ineffective", c4, c1)
	}
}

func TestPipelinedCrashRateLowOnLargeTree(t *testing.T) {
	tr := NewTree()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 150000; i++ {
		tr.Put(rng.Uint64(), 1)
	}
	exec, _ := NewPipelinedExecutor(tr, 4)
	for i := 0; i < 30000; i++ {
		if i%2 == 0 {
			exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
		} else {
			exec.Enqueue(Update{Kind: UpdateDelete, Key: rng.Uint64()})
		}
	}
	exec.Drain()
	if rate := exec.Stats().CrashRate(); rate > 0.005 {
		t.Fatalf("crash rate %.4f on a 150K-key tree, paper <0.1%%", rate)
	}
}

func TestPipelinedSameKeyOrderPreserved(t *testing.T) {
	// Same-key updates stall at issue, so the later write always wins
	// regardless of crashes.
	exec, _ := NewPipelinedExecutor(NewTree(), 4)
	for i := uint64(0); i < 64; i++ {
		exec.Enqueue(Update{Kind: UpdateInsert, Key: 42, Val: i})
	}
	exec.Drain()
	v, ok, _ := exec.Tree().Get(42)
	if !ok || v != 63 {
		t.Fatalf("final value %d,%v; want last write 63", v, ok)
	}
}

func TestPipelinedAgainstWindowExecutor(t *testing.T) {
	// Both executors must land on identical final state for the same
	// distinct-key update stream.
	rng := rand.New(rand.NewSource(77))
	var ups []Update
	for i := 0; i < 3000; i++ {
		ups = append(ups, Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: uint64(i)})
	}
	we, _ := NewSpecExecutor(NewTree(), 4)
	we.Enqueue(ups...)
	we.Drain()
	pe, _ := NewPipelinedExecutor(NewTree(), 4)
	pe.Enqueue(ups...)
	pe.Drain()
	if we.Tree().Len() != pe.Tree().Len() {
		t.Fatalf("lengths differ: %d vs %d", we.Tree().Len(), pe.Tree().Len())
	}
	for _, u := range ups {
		a, okA, _ := we.Tree().Get(u.Key)
		b, okB, _ := pe.Tree().Get(u.Key)
		if okA != okB || a != b {
			t.Fatalf("key %d: window (%d,%v) vs pipelined (%d,%v)", u.Key, a, okA, b, okB)
		}
	}
}

func BenchmarkPipelinedExecutorW4(b *testing.B) {
	tr := NewTree()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		tr.Put(rng.Uint64(), 1)
	}
	exec, _ := NewPipelinedExecutor(tr, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
		if exec.Pending() >= 16 {
			exec.Drain()
		}
	}
	exec.Drain()
}
