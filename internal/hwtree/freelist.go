package hwtree

import "fmt"

// FreeList is the Cache HW-Engine's cache-line free list (§6.3): a
// circular buffer kept in FPGA-board DRAM because it must hold an entry
// per cache line. Accesses are strictly sequential, so one 512-bit DDR
// burst fetches many entries — the structure is sized for capacity, not
// bandwidth. The engine refills it in the background (batched deletions
// of top-LRU items arrive from the host, §5.5) so a free line is always
// available when a miss needs one.
type FreeList struct {
	buf  []uint64
	head int // next free entry to pop
	tail int // next slot to push
	n    int

	// dramReads counts simulated 512-bit burst fetches.
	dramReads uint64
	burstLeft int
}

// entriesPerBurst is how many 8-byte free-list entries one 512-bit DDR
// access returns.
const entriesPerBurst = 8

// NewFreeList creates a circular free list holding up to capacity lines,
// initially filled with lines [0, capacity).
func NewFreeList(capacity int) (*FreeList, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("hwtree: free list capacity %d", capacity)
	}
	f := &FreeList{buf: make([]uint64, capacity)}
	for i := 0; i < capacity; i++ {
		f.buf[i] = uint64(i)
	}
	f.n = capacity
	return f, nil
}

// Len returns the number of free lines available.
func (f *FreeList) Len() int { return f.n }

// Pop takes a free line. The DRAM burst model charges one read per
// entriesPerBurst pops (sequential access amortization, §6.3).
func (f *FreeList) Pop() (uint64, bool) {
	if f.n == 0 {
		return 0, false
	}
	if f.burstLeft == 0 {
		f.dramReads++
		f.burstLeft = entriesPerBurst
	}
	f.burstLeft--
	line := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return line, true
}

// Push returns a line to the free list (after eviction + flush).
func (f *FreeList) Push(line uint64) error {
	if f.n == len(f.buf) {
		return fmt.Errorf("hwtree: free list full")
	}
	f.buf[f.tail] = line
	f.tail = (f.tail + 1) % len(f.buf)
	f.n++
	return nil
}

// PushBatch returns many lines at once (the host sends top-LRU deletions
// in batches to minimize interactions, §5.5).
func (f *FreeList) PushBatch(lines []uint64) error {
	for _, l := range lines {
		if err := f.Push(l); err != nil {
			return err
		}
	}
	return nil
}

// DRAMReads returns the simulated DDR burst count.
func (f *FreeList) DRAMReads() uint64 { return f.dramReads }
