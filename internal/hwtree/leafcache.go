package hwtree

import "container/list"

// LeafCacheSim measures the on-chip leaf-cache hit rate of a lookup
// stream: the Cache HW-Engine keeps a small BRAM cache over the DRAM-
// resident leaf level, so repeated lookups that land in recently used
// leaves avoid the DRAM port. The measured hit rate feeds
// WorkloadPoint.LeafCacheHit in the throughput model.
type LeafCacheSim struct {
	capacity int
	order    *list.List
	index    map[NodeID]*list.Element

	hits, misses uint64
}

// NewLeafCacheSim creates an LRU leaf-cache simulator holding up to
// capacity leaves.
func NewLeafCacheSim(capacity int) *LeafCacheSim {
	if capacity < 1 {
		capacity = 1
	}
	return &LeafCacheSim{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[NodeID]*list.Element),
	}
}

// Access records a lookup touching leaf id, returning whether it hit.
func (c *LeafCacheSim) Access(id NodeID) bool {
	if el, ok := c.index[id]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	el := c.order.PushFront(id)
	c.index[id] = el
	if c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(NodeID))
	}
	return false
}

// Invalidate drops a leaf (e.g. after structural changes reshape it).
func (c *LeafCacheSim) Invalidate(id NodeID) {
	if el, ok := c.index[id]; ok {
		c.order.Remove(el)
		delete(c.index, id)
	}
}

// HitRate returns hits / (hits + misses).
func (c *LeafCacheSim) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Accesses returns the total access count.
func (c *LeafCacheSim) Accesses() uint64 { return c.hits + c.misses }
