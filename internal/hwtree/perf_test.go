package hwtree

import (
	"math"
	"testing"
)

// Workload anchor points used by the Figure 13 reproduction: miss rates
// come from Table 3 hit rates; leaf-cache hits from functional
// measurement (high-locality Write-H reuses leaves).
func writeH() WorkloadPoint {
	return WorkloadPoint{MissRate: 0.10, CrashRate: 0.001, LeafCacheHit: 0.40}
}
func writeM() WorkloadPoint {
	return WorkloadPoint{MissRate: 0.19, CrashRate: 0.001, LeafCacheHit: 0.0}
}
func writeL() WorkloadPoint {
	return WorkloadPoint{MissRate: 0.55, CrashRate: 0.001, LeafCacheHit: 0.0}
}

func TestPerfValidation(t *testing.T) {
	var p PerfParams
	if _, _, err := p.Throughput(writeM(), 1); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, _, err := MediumTreeParams().Throughput(writeM(), 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestSingleUpdateAnchors(t *testing.T) {
	p := MediumTreeParams()
	// Write-M single-update: paper measures 27.1 GB/s.
	gbps, caps, err := p.Throughput(writeM(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := gbps / 1e9; g < 22 || g > 33 {
		t.Fatalf("Write-M single-update = %.1f GB/s, paper 27.1", g)
	}
	if caps.Update >= caps.DRAMPort {
		t.Error("single-update should be update-limited for Write-M")
	}
	// Write-H single-update: paper reports ~54 GB/s.
	gbps, _, _ = p.Throughput(writeH(), 1)
	if g := gbps / 1e9; g < 45 || g > 65 {
		t.Fatalf("Write-H single-update = %.1f GB/s, paper ~54", g)
	}
}

func TestMultiUpdateScaling(t *testing.T) {
	p := MediumTreeParams()
	for _, wl := range []WorkloadPoint{writeH(), writeM(), writeL()} {
		prev := 0.0
		for _, w := range []int{1, 2, 4} {
			gbps, _, err := p.Throughput(wl, w)
			if err != nil {
				t.Fatal(err)
			}
			if gbps < prev {
				t.Fatalf("throughput decreased with width %d", w)
			}
			prev = gbps
		}
	}
	// Write-M must scale from ~27 to the 60s (paper: 27.1 -> 63.8).
	g1, _, _ := p.Throughput(writeM(), 1)
	g4, _, _ := p.Throughput(writeM(), 4)
	if ratio := g4 / g1; ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("Write-M W=4/W=1 ratio = %.2f, paper ~2.35", ratio)
	}
	if g := g4 / 1e9; g < 55 || g > 80 {
		t.Fatalf("Write-M at W=4 = %.1f GB/s, paper 63.8", g)
	}
}

func TestWriteHSaturatesDRAM(t *testing.T) {
	p := MediumTreeParams()
	_, caps, _ := p.Throughput(writeH(), 4)
	if caps.DRAMPort > caps.Update || caps.DRAMPort > caps.Clock {
		t.Error("Write-H at W=4 should be DRAM-port limited")
	}
	gbps, _, _ := p.Throughput(writeH(), 4)
	if g := gbps / 1e9; g < 100 || g > 140 {
		t.Fatalf("Write-H saturation = %.1f GB/s, paper ~127", g)
	}
}

func TestTableSSDDominates(t *testing.T) {
	// Table 5 "All": with 2 GB/s of table SSDs, Write-M caps at ~10 GB/s.
	p := MediumTreeParams().WithTableSSD(2e9)
	gbps, caps, err := p.Throughput(writeM(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if g := gbps / 1e9; g < 8 || g > 13 {
		t.Fatalf("with table SSD = %.1f GB/s, paper 10", g)
	}
	if !math.IsInf(caps.TableSSD, 1) && caps.TableSSD > caps.DRAMPort {
		t.Error("table SSD should be the binding constraint")
	}
}

func TestLargeTreeSlower(t *testing.T) {
	// Table 5: medium tree 80 GB/s vs large tree 64 GB/s (Write-M, W=4).
	med, _, _ := MediumTreeParams().Throughput(writeM(), 4)
	large, _, _ := LargeTreeParams().Throughput(writeM(), 4)
	if large >= med {
		t.Fatalf("large tree (%.1f) not slower than medium (%.1f)", large/1e9, med/1e9)
	}
	if ratio := large / med; ratio < 0.7 || ratio > 0.95 {
		t.Fatalf("large/medium = %.2f, paper 64/80 = 0.8", ratio)
	}
}

func TestUpdateLatencyComponents(t *testing.T) {
	p := MediumTreeParams()
	lat := p.UpdateLatency()
	// Must exceed two DRAM accesses and grow with height.
	if lat < 2*(p.DRAMLatencyNs*1e-9) {
		t.Error("latency below DRAM floor")
	}
	p2 := p
	p2.Height = 14
	if p2.UpdateLatency() <= lat {
		t.Error("latency not increasing with height")
	}
}

func TestZeroMissNoUpdateCap(t *testing.T) {
	p := MediumTreeParams()
	caps, err := p.OpsPerSecond(WorkloadPoint{MissRate: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(caps.Update, 1) {
		t.Error("no misses should mean unbounded update cap")
	}
	if !math.IsInf(caps.TableSSD, 1) {
		t.Error("no SSD path should be unbounded")
	}
}

func TestLeafCacheSim(t *testing.T) {
	c := NewLeafCacheSim(2)
	if c.Access(1) {
		t.Error("cold access hit")
	}
	if !c.Access(1) {
		t.Error("warm access missed")
	}
	c.Access(2)
	c.Access(3) // evicts 1 (LRU)
	if c.Access(1) {
		t.Error("evicted leaf still cached")
	}
	if c.Accesses() != 5 {
		t.Errorf("accesses = %d", c.Accesses())
	}
	if hr := c.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v", hr)
	}
	c.Invalidate(2)
	if c.Access(2) {
		t.Error("invalidated leaf hit")
	}
}

func TestLeafCacheSimEmpty(t *testing.T) {
	c := NewLeafCacheSim(0) // clamps to 1
	if c.HitRate() != 0 {
		t.Error("empty hit rate nonzero")
	}
}

func TestHeightFor(t *testing.T) {
	// Paper anchors: 410 MB cache -> 9 levels; ~100 GB -> 14 levels.
	if h := HeightFor(MediumCacheLines); h != 9 {
		t.Errorf("medium height = %d, paper 9", h)
	}
	if h := HeightFor(LargeCacheLines); h != 14 {
		t.Errorf("large height = %d, paper 14", h)
	}
	if h := HeightFor(1); h != 1 {
		t.Errorf("tiny height = %d", h)
	}
}

func TestCacheEngineResourcesMatchTable5(t *testing.T) {
	within := func(got, want, tolPct int) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d*100 <= want*tolPct
	}
	// Column 1: full engine, medium tree, with table SSD controllers.
	all := CacheEngineResources(EngineConfig{CacheLines: MediumCacheLines, WithTableSSD: true})
	if !within(all.LUTs, 320000, 5) || !within(all.FFs, 160000, 8) || !within(all.BRAMs, 218, 12) {
		t.Errorf("All config = %+v, paper 320K/160K/218", all)
	}
	// Column 2: medium tree, no SSD.
	med := CacheEngineResources(EngineConfig{CacheLines: MediumCacheLines})
	if !within(med.LUTs, 316000, 5) || !within(med.FFs, 154000, 8) || !within(med.BRAMs, 202, 12) {
		t.Errorf("Medium config = %+v, paper 316K/154K/202", med)
	}
	if med.URAMs != 0 {
		t.Errorf("medium tree uses %d URAM, paper uses none", med.URAMs)
	}
	// Column 3: large tree.
	large := CacheEngineResources(EngineConfig{CacheLines: LargeCacheLines})
	if !within(large.LUTs, 348000, 5) || !within(large.FFs, 137000, 10) {
		t.Errorf("Large config = %+v, paper 348K/137K", large)
	}
	if !within(large.BRAMs, 390, 15) || !within(large.URAMs, 756, 15) {
		t.Errorf("Large memories = %+v, paper 390 BRAM / 756 URAM", large)
	}
	// Utilization sanity against VCU1525 capacity.
	lut, _, _, uram := large.Utilization(VCU1525)
	if lut < 0.25 || lut > 0.35 {
		t.Errorf("large LUT util = %.3f, paper 29.4%%", lut)
	}
	if uram < 0.65 || uram > 0.9 {
		t.Errorf("large URAM util = %.3f, paper 78.8%%", uram)
	}
}

func TestResourcesAdd(t *testing.T) {
	a := Resources{1, 2, 3, 4}
	b := Resources{10, 20, 30, 40}
	if got := a.Add(b); got != (Resources{11, 22, 33, 44}) {
		t.Errorf("Add = %+v", got)
	}
}
