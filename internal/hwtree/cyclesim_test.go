package hwtree

import (
	"testing"
)

func TestFreeListBasics(t *testing.T) {
	if _, err := NewFreeList(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	f, err := NewFreeList(4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 {
		t.Fatalf("initial len = %d", f.Len())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		l, ok := f.Pop()
		if !ok || seen[l] {
			t.Fatalf("pop %d: line %d ok=%v", i, l, ok)
		}
		seen[l] = true
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("popped from empty list")
	}
	if err := f.PushBatch([]uint64{2, 0}); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("len after batch = %d", f.Len())
	}
	f.Push(1)
	f.Push(3)
	if err := f.Push(9); err == nil {
		t.Fatal("push into full list accepted")
	}
}

func TestFreeListBurstAmortization(t *testing.T) {
	f, _ := NewFreeList(64)
	for i := 0; i < 64; i++ {
		if _, ok := f.Pop(); !ok {
			t.Fatal("pop failed")
		}
	}
	// 64 sequential pops at 8 entries per 512-bit burst = 8 reads.
	if got := f.DRAMReads(); got != 8 {
		t.Fatalf("DRAM reads = %d, want 8", got)
	}
}

func TestFreeListWrapsAround(t *testing.T) {
	f, _ := NewFreeList(3)
	for round := 0; round < 10; round++ {
		a, _ := f.Pop()
		b, _ := f.Pop()
		if err := f.Push(a); err != nil {
			t.Fatal(err)
		}
		if err := f.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 3 {
		t.Fatalf("len drifted to %d", f.Len())
	}
}

// TestCycleSimMatchesModel cross-validates the analytic per-resource
// model (perf.go) against the cycle-level replay for the Figure 13
// operating points. The two must agree within 20% — they share
// parameters but derive throughput by entirely different means.
func TestCycleSimMatchesModel(t *testing.T) {
	p := MediumTreeParams()
	cases := []struct {
		name  string
		wl    WorkloadPoint
		width int
	}{
		{"Write-M w1", WorkloadPoint{MissRate: 0.19, CrashRate: 0.001}, 1},
		{"Write-M w4", WorkloadPoint{MissRate: 0.19, CrashRate: 0.001}, 4},
		{"Write-H w4", WorkloadPoint{MissRate: 0.10, CrashRate: 0.001, LeafCacheHit: 0.40}, 4},
		{"Write-L w4", WorkloadPoint{MissRate: 0.55, CrashRate: 0.001}, 4},
	}
	for _, c := range cases {
		analytic, _, err := p.Throughput(c.wl, c.width)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewCycleSim(p, c.wl, c.width, 42).Run(200000)
		ratio := sim.Throughput / analytic
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: cycle sim %.1f GB/s vs analytic %.1f GB/s (ratio %.2f)",
				c.name, sim.Throughput/1e9, analytic/1e9, ratio)
		}
		if sim.OpsDone != 200000 {
			t.Errorf("%s: %d ops done", c.name, sim.OpsDone)
		}
	}
}

func TestCycleSimUpdatesScaleWithWidth(t *testing.T) {
	p := MediumTreeParams()
	wl := WorkloadPoint{MissRate: 0.19, CrashRate: 0.001}
	t1 := NewCycleSim(p, wl, 1, 7).Run(100000).Throughput
	t4 := NewCycleSim(p, wl, 4, 7).Run(100000).Throughput
	if t4 < 1.5*t1 {
		t.Fatalf("width 4 (%.1f GB/s) not well above width 1 (%.1f GB/s)", t4/1e9, t1/1e9)
	}
}

func TestCycleSimCrashesReplay(t *testing.T) {
	p := MediumTreeParams()
	wl := WorkloadPoint{MissRate: 0.5, CrashRate: 0.2}
	res := NewCycleSim(p, wl, 4, 3).Run(20000)
	if res.Crashes == 0 {
		t.Fatal("no crashes at 20% crash rate")
	}
	// Replays inflate the update count beyond 2*misses.
	if res.UpdatesDone <= uint64(float64(res.OpsDone)*2*wl.MissRate) {
		t.Fatal("replayed updates not executed")
	}
}

func TestCycleSimDRAMBusyBounded(t *testing.T) {
	p := MediumTreeParams()
	res := NewCycleSim(p, WorkloadPoint{MissRate: 0.19}, 4, 1).Run(50000)
	if res.DRAMBusyFrac <= 0 || res.DRAMBusyFrac > 1.0001 {
		t.Fatalf("DRAM busy fraction %.3f out of range", res.DRAMBusyFrac)
	}
}
