package hwtree

import "fmt"

// Speculative concurrent-update execution (§5.5.1, Algorithms 1 and 2).
//
// The hardware issues up to W update requests into the pipeline without
// waiting for earlier ones to commit. Each request records the nodes it
// traverses; during the reverse (update) traversal it checks whether a
// concurrently issued request has speculatively modified any of those
// nodes or their neighbors. If so, the request "crashes": the crash/replay
// controller discards its staged changes and re-inserts it into the
// request queue. Because keys (bucket indexes of random hashes) spread
// uniformly over many leaves, crashes are rare (<0.1% in the paper), so
// W-way issue yields near-linear update throughput.

// UpdateKind distinguishes inserts (new cache line mapping) from deletes
// (cache line eviction).
type UpdateKind int

const (
	// UpdateInsert maps a bucket index to a cache line.
	UpdateInsert UpdateKind = iota
	// UpdateDelete removes a bucket mapping on eviction.
	UpdateDelete
)

// Update is one queued update request.
type Update struct {
	Kind UpdateKind
	Key  uint64
	Val  uint64
}

// ExecStats reports what the executor did.
type ExecStats struct {
	// Issued counts update issues into the pipeline, including replays.
	Issued uint64
	// Committed counts successfully committed updates.
	Committed uint64
	// Crashes counts wrong speculations (request touched a node another
	// in-flight request had speculatively updated).
	Crashes uint64
	// Windows counts pipeline issue windows executed.
	Windows uint64
}

// CrashRate returns crashes per issue.
func (s ExecStats) CrashRate() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Crashes) / float64(s.Issued)
}

// SpecExecutor drives a Tree with W-way speculative update issue.
type SpecExecutor struct {
	t *Tree
	// W is the number of concurrent in-flight updates (paper: up to 4).
	W     int
	stats ExecStats

	queue []Update
}

// NewSpecExecutor wraps t with a W-way speculative update pipeline.
func NewSpecExecutor(t *Tree, w int) (*SpecExecutor, error) {
	if w < 1 {
		return nil, fmt.Errorf("hwtree: concurrency %d < 1", w)
	}
	return &SpecExecutor{t: t, W: w}, nil
}

// Tree returns the underlying tree.
func (e *SpecExecutor) Tree() *Tree { return e.t }

// Stats returns execution statistics.
func (e *SpecExecutor) Stats() ExecStats { return e.stats }

// Enqueue adds update requests to the command queue.
func (e *SpecExecutor) Enqueue(ups ...Update) {
	e.queue = append(e.queue, ups...)
}

// Pending returns queued-but-uncommitted request count.
func (e *SpecExecutor) Pending() int { return len(e.queue) }

// Drain executes the queue to completion, replaying crashed requests
// until none remain.
func (e *SpecExecutor) Drain() {
	for len(e.queue) > 0 {
		e.window()
	}
}

// window issues up to W requests concurrently: all requests in the window
// are in flight together, so a request conflicts with the speculative
// write set of every earlier request in the same window (Algorithm 1).
// Crashed requests are re-queued (Algorithm 2); committed ones apply.
func (e *SpecExecutor) window() {
	w := e.W
	if w > len(e.queue) {
		w = len(e.queue)
	}
	batch := e.queue[:w]
	rest := e.queue[w:]
	e.stats.Windows++

	specUpdated := make(map[NodeID]bool)
	var replay []Update
	for _, req := range batch {
		e.stats.Issued++
		// Search phase: record traversed nodes and leaf neighbors.
		path, neighbors := e.t.PathTo(req.Key)
		crash := false
		for _, id := range path {
			if specUpdated[id] {
				crash = true
				break
			}
		}
		if !crash {
			for _, id := range neighbors {
				if specUpdated[id] {
					crash = true
					break
				}
			}
		}
		if crash {
			// Wrong speculation: discard and replay (Algorithm 2 line 2).
			e.stats.Crashes++
			replay = append(replay, req)
			continue
		}
		// Correct speculation: apply staged changes (Algorithm 2 lines
		// 4-7). Applying directly is equivalent to staging + commit
		// because the write sets of committed requests in this window
		// are disjoint from the read/write set of this one.
		var tc Touched
		switch req.Kind {
		case UpdateInsert:
			tc = e.t.Put(req.Key, req.Val)
		case UpdateDelete:
			_, tc = e.t.Delete(req.Key)
		}
		e.stats.Committed++
		// Only nodes the request *modified* enter the speculative set
		// (Algorithm 1 line 5); read-sharing of upper levels is safe.
		for _, id := range tc.IDs {
			specUpdated[id] = true
		}
	}
	// Replayed requests go to the front so ordering with later requests
	// on the same key is preserved.
	e.queue = append(replay, rest...)
}
