package hwtree

import "fmt"

// PipelinedExecutor is the stage-accurate model of Figure 9: each update
// request flows through the search pipeline (one tree level per cycle,
// recording visited nodes) and then the update pipeline (reverse
// traversal, leaf to root), with up to `width` requests in flight whose
// lifetimes genuinely overlap — unlike SpecExecutor's issue windows.
//
// Conflict detection follows Algorithm 1 at per-stage granularity: a
// request entering its update phase checks, node by node, whether another
// in-flight request has speculatively marked the node (or a neighbor) it
// is about to modify; if so its is_crash bit is set and the crash/replay
// controller re-queues it at commit (Algorithm 2). The modified-node set
// is predicted from node occupancy observed during the search descent —
// exactly the information the hardware has — so only nodes that will
// actually change are marked, keeping the conflict footprint (and crash
// rate) small.
type PipelinedExecutor struct {
	t     *Tree
	width int

	queue    []Update
	inflight []*flight

	// specUpdated maps node -> in-flight request marking it.
	specUpdated map[NodeID]*flight

	cycle uint64
	stats ExecStats
}

type flight struct {
	req Update
	// stage counts cycles in the pipeline: [0,h) search, [h,...) update.
	stage   int
	height  int // pipeline depth at issue time
	path    []NodeID
	mod     []NodeID // predicted modified set (marked during update phase)
	marked  []NodeID // nodes this flight has marked so far
	crashed bool
}

// NewPipelinedExecutor wraps t with a width-way pipelined update engine.
func NewPipelinedExecutor(t *Tree, width int) (*PipelinedExecutor, error) {
	if width < 1 {
		return nil, fmt.Errorf("hwtree: width %d < 1", width)
	}
	return &PipelinedExecutor{
		t:           t,
		width:       width,
		specUpdated: make(map[NodeID]*flight),
	}, nil
}

// Tree returns the underlying tree.
func (e *PipelinedExecutor) Tree() *Tree { return e.t }

// Stats returns executor statistics.
func (e *PipelinedExecutor) Stats() ExecStats { return e.stats }

// Cycles returns the simulated cycle count.
func (e *PipelinedExecutor) Cycles() uint64 { return e.cycle }

// Enqueue adds update requests.
func (e *PipelinedExecutor) Enqueue(ups ...Update) { e.queue = append(e.queue, ups...) }

// Pending reports queued plus in-flight requests.
func (e *PipelinedExecutor) Pending() int { return len(e.queue) + len(e.inflight) }

// Drain steps the pipeline until every request has committed.
func (e *PipelinedExecutor) Drain() {
	for e.Pending() > 0 {
		e.Step()
	}
}

// Step advances the pipeline by one cycle: issues a request if a slot is
// free, moves every flight one stage, and commits/replays finished ones.
func (e *PipelinedExecutor) Step() {
	e.cycle++
	// Issue one request per cycle into a free slot. A request whose key
	// matches an in-flight request stalls at the queue head (the
	// hardware compares keys in a small CAM), preserving program order
	// for same-key updates even across crashes.
	if len(e.inflight) < e.width && len(e.queue) > 0 {
		req := e.queue[0]
		stall := false
		for _, g := range e.inflight {
			if g.req.Key == req.Key {
				stall = true
				break
			}
		}
		if !stall {
			e.queue = e.queue[1:]
			e.issue(req)
		}
	}
	// Advance flights; collect finished ones (commits mutate the set).
	var finished []*flight
	for _, f := range e.inflight {
		f.stage++
		if f.stage >= f.height && !f.crashed {
			// Update phase: mark the predicted-modified node for this
			// stage, bottom-up. Stage height+k visits mod[k].
			k := f.stage - f.height
			if k < len(f.mod) {
				e.markOrCrash(f, f.mod[k])
			}
		}
		if f.stage >= f.height+len(f.mod) || (f.crashed && f.stage >= f.height) {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		e.commit(f)
	}
}

// issue computes the search-phase state for a request.
func (e *PipelinedExecutor) issue(req Update) {
	e.stats.Issued++
	path, neighbors := e.t.PathTo(req.Key)
	f := &flight{req: req, path: path, height: len(path)}
	// Predict the modified set from occupancy along the path — what the
	// hardware learns during the descent. Conservative inclusion of
	// neighbors when a borrow/merge is possible.
	f.mod = e.predictModified(req, path, neighbors)
	e.inflight = append(e.inflight, f)
}

// predictModified returns, leaf first, the nodes an update will write.
func (e *PipelinedExecutor) predictModified(req Update, path, neighbors []NodeID) []NodeID {
	mod := []NodeID{path[len(path)-1]} // the leaf always changes
	leaf := e.t.nd(path[len(path)-1])
	cascade := false
	switch req.Kind {
	case UpdateInsert:
		// A full leaf splits and writes the parent; parent splits
		// cascade while internal nodes are full.
		if leaf.n >= leaf.capKeys() {
			cascade = true
		}
	case UpdateDelete:
		// A minimal leaf borrows or merges: neighbor and parent change.
		if leaf.n <= LeafKeys/2 {
			mod = append(mod, neighbors...)
			cascade = true
		}
	}
	if cascade {
		for i := len(path) - 2; i >= 0; i-- {
			mod = append(mod, path[i])
			nd := e.t.nd(path[i])
			full := req.Kind == UpdateInsert && nd.n >= InternalKeys
			thin := req.Kind == UpdateDelete && nd.n <= 1
			if !full && !thin {
				break
			}
		}
	}
	return mod
}

// markOrCrash implements Algorithm 1 for one node of the update phase.
func (e *PipelinedExecutor) markOrCrash(f *flight, node NodeID) {
	if owner, ok := e.specUpdated[node]; ok && owner != f {
		f.crashed = true
		return
	}
	e.specUpdated[node] = f
	f.marked = append(f.marked, node)
}

// commit implements Algorithm 2: apply or replay, then release marks.
func (e *PipelinedExecutor) commit(f *flight) {
	// Remove from inflight.
	for i, g := range e.inflight {
		if g == f {
			e.inflight = append(e.inflight[:i], e.inflight[i+1:]...)
			break
		}
	}
	for _, n := range f.marked {
		if e.specUpdated[n] == f {
			delete(e.specUpdated, n)
		}
	}
	if f.crashed {
		e.stats.Crashes++
		// Replay preserves program order relative to later same-key
		// requests by re-queuing at the front.
		e.queue = append([]Update{f.req}, e.queue...)
		return
	}
	switch f.req.Kind {
	case UpdateInsert:
		e.t.Put(f.req.Key, f.req.Val)
	case UpdateDelete:
		e.t.Delete(f.req.Key)
	}
	e.stats.Committed++
}
