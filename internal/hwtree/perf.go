package hwtree

import (
	"fmt"
	"math"
)

// Throughput model for the Cache HW-Engine (Figure 13, Table 5).
//
// The engine is a pipeline: one table-cache lookup can issue per clock,
// non-leaf stages are single-cycle on-chip memories, and the leaf stage
// lives in FPGA-board DRAM. Four resources can bound throughput:
//
//   - the pipeline clock (one op per cycle),
//   - the FPGA-board DRAM port, charged per leaf access (lookups that
//     miss the small on-chip leaf cache, plus the read-modify-write
//     traffic of updates),
//   - update-pipeline occupancy: an update holds an update slot for its
//     full latency (search stages + leaf read + update stages + leaf
//     write); W concurrent speculative updates give W slots, derated by
//     the crash/replay rate, and
//   - the table SSDs, when the engine also serves cache-line fetches
//     (each miss moves one bucket from the table SSD).
//
// Constants are calibrated against the paper's measured anchors
// (27.1 GB/s single-update and 63.8 GB/s 4-update for Write-M; ~54 GB/s
// single-update and DRAM-saturated ~127 GB/s for Write-H; 80/64/10 GB/s
// estimated maxima in Table 5); see EXPERIMENTS.md for paper-vs-model.
type PerfParams struct {
	// ClockHz is the pipeline clock (VCU1525 designs close ~250 MHz).
	ClockHz float64
	// Height is the number of tree levels (= pipeline stages per phase).
	Height int
	// LeafBytes is the DRAM leaf node size (16 keys of 32 B entries).
	LeafBytes int
	// DRAMLatencyNs is the board-DRAM random access latency.
	DRAMLatencyNs float64
	// DRAMBandwidth is effective board-DRAM bandwidth (bytes/s).
	DRAMBandwidth float64
	// LookupPortNs is DRAM port occupancy per uncached leaf read.
	LookupPortNs float64
	// UpdatePortNs is DRAM port occupancy per committed update
	// (read-modify-write of the leaf plus amortized split traffic).
	UpdatePortNs float64
	// RowMissFactor derates DRAM port times for working sets that
	// exceed row-buffer locality (1.0 for the 410-MB medium tree,
	// ~1.15 for the 100-GB large tree).
	RowMissFactor float64
	// ChunkBytes converts ops/s to data-reduction GB/s (one lookup per
	// 4-KB chunk).
	ChunkBytes int
	// TableSSDBandwidth, if nonzero, adds the table-SSD fetch path:
	// every cache miss moves BucketBytes from the table SSDs.
	TableSSDBandwidth float64
	// BucketBytes is the table bucket (cache line) size.
	BucketBytes int
}

// MediumTreeParams models the prototype configuration of Table 5: a
// 410-MB table cache indexed by a 9-level tree (8 on-chip + DRAM leaf).
func MediumTreeParams() PerfParams {
	return PerfParams{
		ClockHz:       250e6,
		Height:        9,
		LeafBytes:     512,
		DRAMLatencyNs: 120,
		DRAMBandwidth: 19.2e9,
		LookupPortNs:  30,
		UpdatePortNs:  80,
		RowMissFactor: 1.0,
		ChunkBytes:    4096,
		BucketBytes:   4096,
	}
}

// LargeTreeParams models the PB-scale configuration: a ~100-GB cache
// indexed by a 14-level tree (13 on-chip levels in URAM + DRAM leaf).
func LargeTreeParams() PerfParams {
	p := MediumTreeParams()
	p.Height = 14
	p.RowMissFactor = 1.15
	return p
}

// WithTableSSD returns a copy with the table-SSD fetch path attached at
// the given bandwidth (the prototype's 2 GB/s of table SSDs).
func (p PerfParams) WithTableSSD(bw float64) PerfParams {
	p.TableSSDBandwidth = bw
	return p
}

// Validate checks the parameters.
func (p PerfParams) Validate() error {
	if p.ClockHz <= 0 || p.Height <= 0 || p.LeafBytes <= 0 || p.ChunkBytes <= 0 {
		return fmt.Errorf("hwtree: non-positive core parameter in %+v", p)
	}
	if p.DRAMBandwidth <= 0 || p.RowMissFactor <= 0 {
		return fmt.Errorf("hwtree: non-positive DRAM parameter")
	}
	return nil
}

// WorkloadPoint characterizes one workload for the model. All quantities
// are measurable by the functional layer.
type WorkloadPoint struct {
	// MissRate is the table-cache miss rate; each miss costs one insert
	// (new line) and one delete (evicted line), plus a bucket fetch when
	// the table SSD path is modeled.
	MissRate float64
	// CrashRate is the speculative-update crash/replay rate (measured
	// by SpecExecutor; <0.1% for the paper's workloads).
	CrashRate float64
	// LeafCacheHit is the fraction of lookups whose leaf node hits the
	// small on-chip leaf cache (measured; high-locality workloads like
	// Write-H reuse leaves heavily).
	LeafCacheHit float64
}

// updatesPerOp: one insert plus one evict-delete per miss.
func (w WorkloadPoint) updatesPerOp() float64 { return 2 * w.MissRate }

// Caps is the per-resource throughput bound breakdown, in lookups/s.
type Caps struct {
	Clock    float64
	DRAMPort float64
	Update   float64
	TableSSD float64 // +Inf when not modeled
}

// Bound returns the binding constraint.
func (c Caps) Bound() float64 {
	return math.Min(math.Min(c.Clock, c.DRAMPort), math.Min(c.Update, c.TableSSD))
}

// UpdateLatency returns one update's pipeline residency: search stages,
// leaf read, update stages (reverse traversal), leaf write.
func (p PerfParams) UpdateLatency() float64 {
	cycle := 1 / p.ClockHz
	leaf := p.DRAMLatencyNs*1e-9 + float64(p.LeafBytes)/p.DRAMBandwidth
	return 2*float64(p.Height)*cycle + 2*leaf
}

// OpsPerSecond returns the per-resource caps for workload w with
// concurrent update width w (1 = single-update tree).
func (p PerfParams) OpsPerSecond(wl WorkloadPoint, width int) (Caps, error) {
	if err := p.Validate(); err != nil {
		return Caps{}, err
	}
	if width < 1 {
		return Caps{}, fmt.Errorf("hwtree: width %d < 1", width)
	}
	caps := Caps{Clock: p.ClockHz, TableSSD: math.Inf(1), Update: math.Inf(1)}

	lookupNs := p.LookupPortNs * p.RowMissFactor * (1 - wl.LeafCacheHit)
	updateNs := p.UpdatePortNs * p.RowMissFactor
	perOpNs := lookupNs + wl.updatesPerOp()*updateNs
	if perOpNs > 0 {
		caps.DRAMPort = 1e9 / perOpNs
	} else {
		caps.DRAMPort = math.Inf(1)
	}

	if upo := wl.updatesPerOp(); upo > 0 {
		updRate := float64(width) / p.UpdateLatency() * (1 - wl.CrashRate)
		caps.Update = updRate / upo
	}

	if p.TableSSDBandwidth > 0 && wl.MissRate > 0 {
		caps.TableSSD = p.TableSSDBandwidth / (wl.MissRate * float64(p.BucketBytes))
	}
	return caps, nil
}

// Throughput returns the modeled data-reduction throughput in bytes/s.
func (p PerfParams) Throughput(wl WorkloadPoint, width int) (float64, Caps, error) {
	caps, err := p.OpsPerSecond(wl, width)
	if err != nil {
		return 0, Caps{}, err
	}
	return caps.Bound() * float64(p.ChunkBytes), caps, nil
}
