package hwtree

import "math/rand"

// Cycle-level validation of the analytic throughput model (perf.go).
//
// CycleSim replays the engine's steady state one clock cycle at a time:
// lookups issue into the search pipeline (one per cycle when no hazard),
// each lookup's leaf access occupies the shared DRAM port unless it hits
// the on-chip leaf cache, misses spawn insert+delete updates that need a
// free update slot (W slots = speculation width) and DRAM port time, and
// a crash/replay probability re-queues updates. The analytic model in
// perf.go collapses exactly these mechanisms into per-resource caps; the
// simulator exists to check that collapse (see TestCycleSimMatchesModel).
type CycleSim struct {
	p  PerfParams
	wl WorkloadPoint
	// width is the number of concurrent update slots.
	width int
	rng   *rand.Rand
}

// NewCycleSim builds a simulator for one configuration.
func NewCycleSim(p PerfParams, wl WorkloadPoint, width int, seed int64) *CycleSim {
	return &CycleSim{p: p, wl: wl, width: width, rng: rand.New(rand.NewSource(seed))}
}

// Result summarizes a simulation run.
type CycleSimResult struct {
	Cycles      uint64
	OpsDone     uint64
	UpdatesDone uint64
	Crashes     uint64
	// Throughput is bytes/s of data reduction at the simulated op rate.
	Throughput float64
	// DRAMBusyFrac is the DRAM port's utilization.
	DRAMBusyFrac float64
}

// Run simulates ops lookups and returns the achieved rates.
func (s *CycleSim) Run(ops int) CycleSimResult {
	cycleNs := 1e9 / s.p.ClockHz
	lookupPort := s.p.LookupPortNs * s.p.RowMissFactor
	updatePort := s.p.UpdatePortNs * s.p.RowMissFactor
	updateLatNs := s.p.UpdateLatency() * 1e9

	var res CycleSimResult
	var dramFreeAt float64 // ns when the DRAM port frees up
	var dramBusy float64
	// Update slots: completion times in ns.
	slots := make([]float64, s.width)
	pendingUpdates := 0.0

	now := 0.0
	for done := 0; done < ops; {
		// Issue one lookup per cycle.
		now += cycleNs
		res.Cycles++

		// Leaf access: DRAM port serialization unless leaf-cache hit.
		if s.rng.Float64() >= s.wl.LeafCacheHit {
			start := now
			if dramFreeAt > start {
				start = dramFreeAt
			}
			dramFreeAt = start + lookupPort
			dramBusy += lookupPort
			now = start // pipeline stalls behind the port
		}
		done++
		res.OpsDone++

		// Miss -> one insert + one delete update.
		if s.rng.Float64() < s.wl.MissRate {
			pendingUpdates += 2
		}
		// Drain pending updates into free slots.
		for pendingUpdates >= 1 {
			slot := -1
			for i := range slots {
				if slots[i] <= now {
					slot = i
					break
				}
			}
			if slot < 0 {
				// All slots busy: the lookup stream stalls until one
				// frees (the hardware backpressures the command queue).
				minFree := slots[0]
				for _, t := range slots[1:] {
					if t < minFree {
						minFree = t
					}
				}
				now = minFree
				continue
			}
			// The update needs DRAM port time plus pipeline residency.
			start := now
			if dramFreeAt > start {
				start = dramFreeAt
			}
			dramFreeAt = start + updatePort
			dramBusy += updatePort
			if s.rng.Float64() < s.wl.CrashRate {
				res.Crashes++
				pendingUpdates++ // replay
			}
			slots[slot] = start + updateLatNs
			pendingUpdates--
			res.UpdatesDone++
		}
	}
	res.Throughput = float64(res.OpsDone) * float64(s.p.ChunkBytes) / (now * 1e-9)
	res.DRAMBusyFrac = dramBusy / now
	return res
}
