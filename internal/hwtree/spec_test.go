package hwtree

import (
	"math/rand"
	"testing"
)

func TestSpecExecutorValidation(t *testing.T) {
	if _, err := NewSpecExecutor(NewTree(), 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	e, err := NewSpecExecutor(NewTree(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tree() == nil {
		t.Fatal("tree not exposed")
	}
}

func TestSpecMatchesSequential(t *testing.T) {
	// The speculative executor must reach the same final state as
	// sequential application, for every width.
	for _, w := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(w)))
		var ups []Update
		for i := 0; i < 5000; i++ {
			k := uint64(rng.Intn(2000))
			if rng.Intn(4) == 0 {
				ups = append(ups, Update{Kind: UpdateDelete, Key: k})
			} else {
				ups = append(ups, Update{Kind: UpdateInsert, Key: k, Val: uint64(i)})
			}
		}
		// Sequential reference.
		ref := make(map[uint64]uint64)
		for _, u := range ups {
			if u.Kind == UpdateInsert {
				ref[u.Key] = u.Val
			} else {
				delete(ref, u.Key)
			}
		}
		exec, _ := NewSpecExecutor(NewTree(), w)
		exec.Enqueue(ups...)
		exec.Drain()
		tr := exec.Tree()
		if err := tr.Check(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("w=%d: len %d vs ref %d", w, tr.Len(), len(ref))
		}
		for k, v := range ref {
			got, ok, _ := tr.Get(k)
			if !ok || got != v {
				t.Fatalf("w=%d: key %d = %d,%v want %d", w, k, got, ok, v)
			}
		}
		st := exec.Stats()
		if st.Committed != uint64(len(ups)) {
			t.Fatalf("w=%d: committed %d of %d", w, st.Committed, len(ups))
		}
		if st.Issued != st.Committed+st.Crashes {
			t.Fatalf("w=%d: issued %d != committed %d + crashes %d", w, st.Issued, st.Committed, st.Crashes)
		}
	}
}

func TestSpecWidth1NeverCrashes(t *testing.T) {
	exec, _ := NewSpecExecutor(NewTree(), 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
	}
	exec.Drain()
	if exec.Stats().Crashes != 0 {
		t.Fatalf("single-issue pipeline crashed %d times", exec.Stats().Crashes)
	}
}

func TestSpecConflictDetected(t *testing.T) {
	// Two updates to the same leaf in one window must crash the second.
	tr := NewTree()
	for i := uint64(0); i < 500; i++ {
		tr.Put(i*10, i)
	}
	exec, _ := NewSpecExecutor(tr, 2)
	// Same key twice: identical path, guaranteed conflict.
	exec.Enqueue(Update{Kind: UpdateInsert, Key: 42, Val: 1},
		Update{Kind: UpdateInsert, Key: 42, Val: 2})
	exec.Drain()
	st := exec.Stats()
	if st.Crashes == 0 {
		t.Fatal("same-leaf concurrent updates did not crash")
	}
	// Replay preserves order: final value is the later request's.
	v, ok, _ := tr.Get(42)
	if !ok || v != 2 {
		t.Fatalf("final value %d,%v; replay broke ordering", v, ok)
	}
}

func TestSpecCrashRateLowForRandomKeys(t *testing.T) {
	// The paper relies on <0.1% crash rate for random hash keys over a
	// large tree. Build a large tree and stream random updates.
	tr := NewTree()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		tr.Put(rng.Uint64(), 1)
	}
	exec, _ := NewSpecExecutor(tr, 4)
	for i := 0; i < 50000; i++ {
		exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
	}
	exec.Drain()
	rate := exec.Stats().CrashRate()
	if rate > 0.002 {
		t.Fatalf("crash rate %.4f, expected ~<0.1%% for random keys", rate)
	}
}

func TestSpecStatsZero(t *testing.T) {
	var st ExecStats
	if st.CrashRate() != 0 {
		t.Fatal("zero stats crash rate nonzero")
	}
}

func TestSpecPending(t *testing.T) {
	exec, _ := NewSpecExecutor(NewTree(), 2)
	exec.Enqueue(Update{Kind: UpdateInsert, Key: 1, Val: 1})
	if exec.Pending() != 1 {
		t.Fatal("pending wrong")
	}
	exec.Drain()
	if exec.Pending() != 0 {
		t.Fatal("drain left work")
	}
}

func BenchmarkSpecExecutorW4(b *testing.B) {
	tr := NewTree()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		tr.Put(rng.Uint64(), 1)
	}
	exec, _ := NewSpecExecutor(tr, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Enqueue(Update{Kind: UpdateInsert, Key: rng.Uint64(), Val: 1})
		if exec.Pending() >= 4 {
			exec.Drain()
		}
	}
	exec.Drain()
}
