// Package hostmodel accounts host-side resource consumption — memory
// bandwidth by datapath and CPU time by software component — and projects
// it onto a socket model.
//
// This is the measurement layer behind the paper's motivation and results:
// Table 1 (memory-bandwidth breakdown), Table 2 / Figure 5b (CPU
// breakdown), Figures 4-5 (projected socket limits) and Figures 11-12-14
// (FIDR vs baseline). The functional servers charge the ledger with
// *actual byte counts* from their datapaths and with modeled CPU costs per
// operation (constants in params.go); the projection then normalizes per
// client byte and scales to a target throughput, exactly as the paper
// measures at 5 and 6.9 GB/s and projects linearly to 75 GB/s.
package hostmodel

import (
	"fmt"
	"sync/atomic"

	"fidr/internal/metrics"
)

// Path labels host-memory traffic with its datapath (Table 1 rows).
type Path int

const (
	// PathNICHost is NIC <-> host memory DMA (client data buffering).
	PathNICHost Path = iota
	// PathPredictor is the unique-chunk predictor's buffer reads.
	PathPredictor
	// PathHostFPGA is host memory <-> FPGA accelerator DMA.
	PathHostFPGA
	// PathTableCache is table-cache management traffic: bucket scans,
	// miss fills from table SSDs, dirty-line flushes.
	PathTableCache
	// PathHostSSD is host memory <-> data SSD DMA.
	PathHostSSD

	numPaths
)

// String implements fmt.Stringer, matching Table 1's row labels.
func (p Path) String() string {
	switch p {
	case PathNICHost:
		return "NIC <-> host memory"
	case PathPredictor:
		return "Host memory (unique prediction)"
	case PathHostFPGA:
		return "Host memory <-> FPGAs"
	case PathTableCache:
		return "Table cache management"
	case PathHostSSD:
		return "Host memory <-> data SSD"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// Paths lists all datapaths in Table 1 order.
func Paths() []Path {
	return []Path{PathNICHost, PathPredictor, PathHostFPGA, PathTableCache, PathHostSSD}
}

// Slug returns the path's metric-name segment.
func (p Path) Slug() string {
	switch p {
	case PathNICHost:
		return "nic_host"
	case PathPredictor:
		return "predictor"
	case PathHostFPGA:
		return "host_fpga"
	case PathTableCache:
		return "table_cache"
	case PathHostSSD:
		return "host_ssd"
	default:
		return fmt.Sprintf("path_%d", int(p))
	}
}

// Component labels CPU time with its software component (Figure 5b and
// Table 2 rows).
type Component int

const (
	// CompPredictor is the unique-chunk predictor (baseline only).
	CompPredictor Component = iota
	// CompBatchSched is accelerator batch scheduling.
	CompBatchSched
	// CompDMAMgmt is DMA descriptor/completion handling for host-bounced
	// device transfers.
	CompDMAMgmt
	// CompTreeIndex is software table-cache tree indexing.
	CompTreeIndex
	// CompTableSSDIO is the table-SSD software IO stack.
	CompTableSSDIO
	// CompTableContent is scanning cached bucket contents.
	CompTableContent
	// CompTableReplace is LRU/free-list replacement management.
	CompTableReplace
	// CompDataSSDIO is the data-SSD software IO stack.
	CompDataSSDIO
	// CompDeviceMgr is the FIDR device manager (inter-device
	// orchestration; FIDR only).
	CompDeviceMgr
	// CompLBATable is LBA-PBA table lookups/updates.
	CompLBATable
	// CompProtocol is client request handling: block-layer routing,
	// response assembly, checksum/copy work. Present in both
	// architectures; classified as real work, not management overhead.
	CompProtocol

	numComponents
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case CompPredictor:
		return "unique-chunk predictor"
	case CompBatchSched:
		return "batch scheduling"
	case CompDMAMgmt:
		return "DMA management"
	case CompTreeIndex:
		return "table cache tree indexing"
	case CompTableSSDIO:
		return "table SSD IO stack"
	case CompTableContent:
		return "table cache content access"
	case CompTableReplace:
		return "cache replacement (LRU/free lists)"
	case CompDataSSDIO:
		return "data SSD IO stack"
	case CompDeviceMgr:
		return "FIDR device manager"
	case CompLBATable:
		return "LBA-PBA table"
	case CompProtocol:
		return "request handling (protocol/block layer)"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Slug returns the component's metric-name segment.
func (c Component) Slug() string {
	switch c {
	case CompPredictor:
		return "predictor"
	case CompBatchSched:
		return "batch_sched"
	case CompDMAMgmt:
		return "dma_mgmt"
	case CompTreeIndex:
		return "tree_index"
	case CompTableSSDIO:
		return "table_ssd_io"
	case CompTableContent:
		return "table_content"
	case CompTableReplace:
		return "table_replace"
	case CompDataSSDIO:
		return "data_ssd_io"
	case CompDeviceMgr:
		return "device_mgr"
	case CompLBATable:
		return "lba_table"
	case CompProtocol:
		return "protocol"
	default:
		return fmt.Sprintf("component_%d", int(c))
	}
}

// Components lists all CPU components.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// MemClass groups components for Figure 5b's two-bar breakdown: memory/IO
// management + accelerator scheduling vs everything else.
func (c Component) IsManagementOverhead() bool {
	switch c {
	case CompPredictor, CompBatchSched, CompDMAMgmt, CompTreeIndex,
		CompTableSSDIO, CompTableReplace, CompDataSSDIO, CompDeviceMgr:
		return true
	default:
		// Content access, LBA mapping and request handling are the
		// "real work" the server must do regardless of architecture.
		return false
	}
}

// Ledger accumulates charges. Safe for concurrent use.
type Ledger struct {
	mem          [numPaths]atomic.Uint64
	cpu          [numComponents]atomic.Uint64
	clientBytes  atomic.Uint64
	payloadBytes atomic.Uint64

	// Registry mirrors, nil until Instrument (match the substrate idiom:
	// bind once before serving traffic, nil-checked on the hot path).
	obsMem     [numPaths]*metrics.Counter
	obsMemTot  *metrics.Counter
	obsPayload *metrics.Counter
	obsCPU     [numComponents]*metrics.Counter
	obsCPUTot  *metrics.Counter
	obsClient  *metrics.Counter
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Instrument mirrors the ledger into reg:
//
//	hostmodel.dram_bytes            total host-DRAM traffic, all paths
//	hostmodel.dram_payload_bytes    the client-payload share of it
//	hostmodel.dram.<path>.bytes     per-datapath traffic (Table 1 rows)
//	hostmodel.cpu_ns                total modeled host CPU time
//	hostmodel.cpu.<component>.ns    per-component CPU time (Table 2 rows)
//	hostmodel.client_bytes          client-visible IO (normalization base)
//
// Call once, before serving traffic; mirrors do not backfill existing
// totals. dram_payload_bytes turns the paper's headline claim into a
// scrapeable invariant: a FIDR-mode server moving client data
// NIC→engine→SSD peer-to-peer keeps it at zero while the baseline
// charges every payload byte (twice or more) to host DRAM.
func (l *Ledger) Instrument(reg *metrics.Registry) {
	for _, p := range Paths() {
		l.obsMem[p] = reg.Counter("hostmodel.dram." + p.Slug() + ".bytes")
	}
	for _, c := range Components() {
		l.obsCPU[c] = reg.Counter("hostmodel.cpu." + c.Slug() + ".ns")
	}
	l.obsMemTot = reg.Counter("hostmodel.dram_bytes")
	l.obsPayload = reg.Counter("hostmodel.dram_payload_bytes")
	l.obsCPUTot = reg.Counter("hostmodel.cpu_ns")
	l.obsClient = reg.Counter("hostmodel.client_bytes")
}

// Mem charges n bytes of host-memory traffic to path p.
func (l *Ledger) Mem(p Path, n uint64) {
	l.mem[p].Add(n)
	if l.obsMem[p] != nil {
		l.obsMem[p].Add(n)
		l.obsMemTot.Add(n)
	}
}

// MemPayload charges n bytes of host-memory traffic to path p and
// additionally classifies it as client payload (the data itself moving
// through host DRAM, as opposed to hashes, flags and table metadata).
func (l *Ledger) MemPayload(p Path, n uint64) {
	l.Mem(p, n)
	l.payloadBytes.Add(n)
	if l.obsPayload != nil {
		l.obsPayload.Add(n)
	}
}

// CPU charges ns nanoseconds of CPU time to component c.
func (l *Ledger) CPU(c Component, ns uint64) {
	l.cpu[c].Add(ns)
	if l.obsCPU[c] != nil {
		l.obsCPU[c].Add(ns)
		l.obsCPUTot.Add(ns)
	}
}

// Client records n bytes of client-visible IO (the normalization base).
func (l *Ledger) Client(n uint64) {
	l.clientBytes.Add(n)
	if l.obsClient != nil {
		l.obsClient.Add(n)
	}
}

// Reset zeroes the ledger (registry mirrors, being monotonic counters,
// are left alone).
func (l *Ledger) Reset() {
	for i := range l.mem {
		l.mem[i].Store(0)
	}
	for i := range l.cpu {
		l.cpu[i].Store(0)
	}
	l.clientBytes.Store(0)
	l.payloadBytes.Store(0)
}

// Snapshot is an immutable copy of ledger totals.
type Snapshot struct {
	MemBytes    [numPaths]uint64
	CPUNanos    [numComponents]uint64
	ClientBytes uint64
	// PayloadBytes is the client-payload share of total memory traffic
	// (charged via MemPayload).
	PayloadBytes uint64
}

// Snapshot copies the current totals.
func (l *Ledger) Snapshot() Snapshot {
	var s Snapshot
	for i := range l.mem {
		s.MemBytes[i] = l.mem[i].Load()
	}
	for i := range l.cpu {
		s.CPUNanos[i] = l.cpu[i].Load()
	}
	s.ClientBytes = l.clientBytes.Load()
	s.PayloadBytes = l.payloadBytes.Load()
	return s
}

// TotalMemBytes sums memory traffic over all paths.
func (s Snapshot) TotalMemBytes() uint64 {
	var t uint64
	for _, b := range s.MemBytes {
		t += b
	}
	return t
}

// TotalCPUNanos sums CPU time over all components.
func (s Snapshot) TotalCPUNanos() uint64 {
	var t uint64
	for _, n := range s.CPUNanos {
		t += n
	}
	return t
}

// MemPerClientByte is bytes of host-memory traffic per client byte.
func (s Snapshot) MemPerClientByte() float64 {
	if s.ClientBytes == 0 {
		return 0
	}
	return float64(s.TotalMemBytes()) / float64(s.ClientBytes)
}

// CPUNanosPerClientByte is CPU-nanoseconds per client byte.
func (s Snapshot) CPUNanosPerClientByte() float64 {
	if s.ClientBytes == 0 {
		return 0
	}
	return float64(s.TotalCPUNanos()) / float64(s.ClientBytes)
}

// MemBWAt projects required host memory bandwidth (bytes/s) at a client
// throughput (bytes/s), assuming the measured per-byte intensity scales
// linearly — the paper's two-point linear projection.
func (s Snapshot) MemBWAt(throughput float64) float64 {
	return s.MemPerClientByte() * throughput
}

// CoresAt projects required CPU cores at a client throughput: one core
// provides 1e9 ns of CPU time per second.
func (s Snapshot) CoresAt(throughput float64) float64 {
	return s.CPUNanosPerClientByte() * throughput / 1e9
}

// MemFraction returns path p's share of total memory traffic.
func (s Snapshot) MemFraction(p Path) float64 {
	t := s.TotalMemBytes()
	if t == 0 {
		return 0
	}
	return float64(s.MemBytes[p]) / float64(t)
}

// CPUFraction returns component c's share of total CPU time.
func (s Snapshot) CPUFraction(c Component) float64 {
	t := s.TotalCPUNanos()
	if t == 0 {
		return 0
	}
	return float64(s.CPUNanos[c]) / float64(t)
}

// ManagementCPUFraction returns the share of CPU spent on memory/IO
// management and accelerator scheduling (Figure 5b's headline).
func (s Snapshot) ManagementCPUFraction() float64 {
	t := s.TotalCPUNanos()
	if t == 0 {
		return 0
	}
	var m uint64
	for i := Component(0); i < numComponents; i++ {
		if i.IsManagementOverhead() {
			m += s.CPUNanos[i]
		}
	}
	return float64(m) / float64(t)
}
