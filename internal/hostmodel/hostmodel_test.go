package hostmodel

import (
	"sync"
	"testing"
)

func TestLedgerBasics(t *testing.T) {
	l := NewLedger()
	l.Mem(PathNICHost, 100)
	l.Mem(PathTableCache, 50)
	l.CPU(CompPredictor, 1000)
	l.CPU(CompTreeIndex, 3000)
	l.Client(200)
	s := l.Snapshot()
	if s.TotalMemBytes() != 150 {
		t.Errorf("mem total = %d", s.TotalMemBytes())
	}
	if s.TotalCPUNanos() != 4000 {
		t.Errorf("cpu total = %d", s.TotalCPUNanos())
	}
	if s.MemPerClientByte() != 0.75 {
		t.Errorf("mem/byte = %v", s.MemPerClientByte())
	}
	if s.CPUNanosPerClientByte() != 20 {
		t.Errorf("cpu ns/byte = %v", s.CPUNanosPerClientByte())
	}
	l.Reset()
	if l.Snapshot().TotalMemBytes() != 0 {
		t.Error("reset failed")
	}
}

func TestEmptySnapshotSafe(t *testing.T) {
	var s Snapshot
	if s.MemPerClientByte() != 0 || s.CPUNanosPerClientByte() != 0 {
		t.Error("zero ledger produced nonzero intensities")
	}
	if s.MemFraction(PathNICHost) != 0 || s.CPUFraction(CompPredictor) != 0 {
		t.Error("zero ledger produced nonzero fractions")
	}
	if s.ManagementCPUFraction() != 0 {
		t.Error("zero ledger management fraction nonzero")
	}
}

func TestConcurrentCharges(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Mem(PathHostFPGA, 1)
				l.CPU(CompDMAMgmt, 2)
				l.Client(3)
			}
		}()
	}
	wg.Wait()
	s := l.Snapshot()
	if s.MemBytes[PathHostFPGA] != 8000 || s.CPUNanos[CompDMAMgmt] != 16000 || s.ClientBytes != 24000 {
		t.Fatalf("totals: %d/%d/%d", s.MemBytes[PathHostFPGA], s.CPUNanos[CompDMAMgmt], s.ClientBytes)
	}
}

func TestProjections(t *testing.T) {
	l := NewLedger()
	// 4.23 bytes of memory traffic and 0.893 ns CPU per client byte:
	// the paper's baseline write-only intensities.
	l.Client(1e9)
	l.Mem(PathNICHost, 4.23e9)
	l.CPU(CompTreeIndex, 0.893e9)
	s := l.Snapshot()
	// At 75 GB/s the projections should hit ~317 GB/s and ~67 cores.
	if bw := s.MemBWAt(75e9) / 1e9; bw < 315 || bw > 320 {
		t.Errorf("projected mem BW = %.1f GB/s, want ~317", bw)
	}
	if cores := s.CoresAt(75e9); cores < 66 || cores > 68 {
		t.Errorf("projected cores = %.1f, want ~67", cores)
	}
}

func TestFractions(t *testing.T) {
	l := NewLedger()
	l.Mem(PathNICHost, 25)
	l.Mem(PathPredictor, 75)
	s := l.Snapshot()
	if f := s.MemFraction(PathNICHost); f != 0.25 {
		t.Errorf("fraction = %v", f)
	}
	l.CPU(CompPredictor, 30)
	l.CPU(CompTableContent, 70)
	s = l.Snapshot()
	if f := s.CPUFraction(CompPredictor); f != 0.3 {
		t.Errorf("cpu fraction = %v", f)
	}
	// Predictor is management overhead; content access is not.
	if f := s.ManagementCPUFraction(); f != 0.3 {
		t.Errorf("management fraction = %v", f)
	}
}

func TestComponentClassification(t *testing.T) {
	mgmt := []Component{CompPredictor, CompBatchSched, CompDMAMgmt, CompTreeIndex,
		CompTableSSDIO, CompTableReplace, CompDataSSDIO, CompDeviceMgr}
	for _, c := range mgmt {
		if !c.IsManagementOverhead() {
			t.Errorf("%v not classified as management", c)
		}
	}
	for _, c := range []Component{CompTableContent, CompLBATable} {
		if c.IsManagementOverhead() {
			t.Errorf("%v wrongly classified as management", c)
		}
	}
}

func TestStringsDistinct(t *testing.T) {
	seenP := map[string]bool{}
	for _, p := range Paths() {
		s := p.String()
		if seenP[s] {
			t.Errorf("duplicate path label %q", s)
		}
		seenP[s] = true
	}
	seenC := map[string]bool{}
	for _, c := range Components() {
		s := c.String()
		if seenC[s] {
			t.Errorf("duplicate component label %q", s)
		}
		seenC[s] = true
	}
}

func TestSocketDefaults(t *testing.T) {
	s := PaperSocket()
	if got := s.TargetThroughput(); got != 76.8e9 {
		t.Errorf("target throughput = %v, want 76.8e9 (60%% of 128 GB/s)", got)
	}
}

func TestMaxThroughputBounds(t *testing.T) {
	sock := PaperSocket()
	l := NewLedger()
	l.Client(1e9)
	l.Mem(PathNICHost, 4.23e9) // memory-bound baseline
	l.CPU(CompTreeIndex, 0.893e9)
	snap := l.Snapshot()

	// Memory: 170/4.23 = 40.2 GB/s. CPU: 22/0.893 = 24.6 GB/s.
	// CPU should bind.
	got := sock.MaxThroughput(snap, 0) / 1e9
	if got < 23 || got > 26 {
		t.Errorf("max throughput = %.1f GB/s, want ~24.6 (CPU-bound)", got)
	}
	// A device cap below that must bind instead.
	if got := sock.MaxThroughput(snap, 10e9); got != 10e9 {
		t.Errorf("device cap not applied: %v", got)
	}
	// A light workload is bounded by the IO target.
	light := NewLedger()
	light.Client(1e9)
	light.Mem(PathNICHost, 0.1e9)
	light.CPU(CompDeviceMgr, 0.01e9)
	if got := sock.MaxThroughput(light.Snapshot(), 0); got != sock.TargetThroughput() {
		t.Errorf("light workload bound = %v, want IO target", got)
	}
}

func TestDefaultCostsPositive(t *testing.T) {
	c := DefaultCosts()
	for name, v := range map[string]uint64{
		"predictor":  c.PredictorPerChunkNs,
		"batchSched": c.BatchSchedPerChunkNs,
		"dmaChunk":   c.DMAMgmtPerChunkNs,
		"dmaBatch":   c.DMAMgmtPerBatchNs,
		"treeLookup": c.TreeLookupNs,
		"treeUpdate": c.TreeUpdateNs,
		"tableSSD":   c.TableSSDPerIONs,
		"bucketScan": c.BucketScanPerEntryNs,
		"lru":        c.LRUPerAccessNs,
		"dataSSD":    c.DataSSDPerIONs,
		"deviceMgr":  c.DeviceMgrPerChunkNs,
		"lbaTable":   c.LBATablePerOpNs,
	} {
		if v == 0 {
			t.Errorf("cost %s is zero", name)
		}
	}
}

// TestBaselineCostComposition verifies that composing the cost table for
// the paper's profiling workload reproduces the Figure 5b shape: table
// cache management ~52%, predictor ~33% of total CPU.
func TestBaselineCostComposition(t *testing.T) {
	c := DefaultCosts()
	const missRate = 0.19
	const dirtyRate = 0.5
	perChunk := map[string]float64{
		"predictor": float64(c.PredictorPerChunkNs),
		"tablemgmt": float64(c.TreeLookupNs) +
			2*missRate*float64(c.TreeUpdateNs) +
			missRate*(1+dirtyRate)*float64(c.TableSSDPerIONs) +
			54*float64(c.BucketScanPerEntryNs) +
			float64(c.LRUPerAccessNs),
		"other": float64(c.BatchSchedPerChunkNs) + float64(c.DMAMgmtPerChunkNs),
	}
	total := perChunk["predictor"] + perChunk["tablemgmt"] + perChunk["other"]
	if f := perChunk["tablemgmt"] / total; f < 0.45 || f < perChunk["predictor"]/total {
		t.Errorf("table mgmt share = %.3f, want dominant ~0.52", f)
	}
	if f := perChunk["predictor"] / total; f < 0.25 || f > 0.40 {
		t.Errorf("predictor share = %.3f, want ~0.33", f)
	}
	// Total CPU per byte should project to roughly 67 cores at 75 GB/s.
	cores := total / 4096 * 75
	if cores < 55 || cores > 80 {
		t.Errorf("projected cores = %.1f, want ~67", cores)
	}
}

func BenchmarkLedgerCharge(b *testing.B) {
	l := NewLedger()
	for i := 0; i < b.N; i++ {
		l.Mem(PathTableCache, 4096)
		l.CPU(CompTreeIndex, 620)
		l.Client(4096)
	}
}
