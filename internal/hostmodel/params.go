package hostmodel

// Calibrated model constants.
//
// CPU costs are nanoseconds of host-CPU time per operation on a Xeon
// E5-class core (the paper's E5-2650 v4 testbed). They are calibrated so
// the baseline's projected totals hit the paper's measured anchors:
// ~67 cores and 317 GB/s of memory bandwidth for 75 GB/s of write-only
// data reduction, with the Figure 5b breakdown (52.4% table-cache
// management, 32.7% predictor) and the Table 2 intra-table-cache split
// (43.9% tree indexing, 24.7% table-SSD stack, 6.3% content access,
// 1.0% replacement). EXPERIMENTS.md records paper-vs-model per figure.
type CostParams struct {
	// PredictorPerChunkNs: CIDR's software unique-chunk predictor —
	// sampled fingerprinting plus filter lookup over the request buffer.
	PredictorPerChunkNs uint64
	// BatchSchedPerChunkNs: grouping chunks into FPGA batches.
	BatchSchedPerChunkNs uint64
	// DMAMgmtPerChunkNs: descriptor setup + completion handling for one
	// 4-KB chunk bounced through host memory.
	DMAMgmtPerChunkNs uint64
	// DMAMgmtPerBatchNs: per-batch cost of device doorbells (FIDR's
	// metadata-only interactions are charged per batch, not per chunk).
	DMAMgmtPerBatchNs uint64
	// TreeLookupNs: one software B+-tree lookup over a multi-GB index
	// (cache-missing pointer chases).
	TreeLookupNs uint64
	// TreeUpdateNs: one software B+-tree insert or delete.
	TreeUpdateNs uint64
	// TableSSDPerIONs: submitting + completing one table-SSD command
	// through the kernel NVMe stack.
	TableSSDPerIONs uint64
	// BucketScanPerEntryNs: comparing one 38-byte table entry during a
	// cached-bucket scan.
	BucketScanPerEntryNs uint64
	// LRUPerAccessNs: cache replacement bookkeeping per access.
	LRUPerAccessNs uint64
	// DataSSDPerIONs: one data-SSD command through the kernel stack.
	DataSSDPerIONs uint64
	// DeviceMgrPerChunkNs: FIDR device-manager work per chunk (bucket
	// index computation, routing status flags between devices).
	DeviceMgrPerChunkNs uint64
	// LBATablePerOpNs: LBA-PBA table lookup or update.
	LBATablePerOpNs uint64
	// ProtocolWriteNs: request handling per client write — cheap, since
	// writes batch and ack at the buffer.
	ProtocolWriteNs uint64
	// ProtocolReadNs: request handling per client read — synchronous
	// per-4-KB completion, response assembly and data integrity work,
	// paid by baseline and FIDR alike (it is why Read-Mixed keeps
	// substantial CPU in §7.5).
	ProtocolReadNs uint64
}

// DefaultCosts returns the calibrated cost table.
func DefaultCosts() CostParams {
	return CostParams{
		PredictorPerChunkNs:  1196,
		BatchSchedPerChunkNs: 150,
		DMAMgmtPerChunkNs:    395,
		DMAMgmtPerBatchNs:    2000,
		TreeLookupNs:         620,
		TreeUpdateNs:         1300,
		TableSSDPerIONs:      2200,
		BucketScanPerEntryNs: 3,
		LRUPerAccessNs:       25,
		DataSSDPerIONs:       2200,
		DeviceMgrPerChunkNs:  470,
		LBATablePerOpNs:      60,
		ProtocolWriteNs:      500,
		ProtocolReadNs:       1500,
	}
}

// Socket models one CPU socket of the paper's target platform.
type Socket struct {
	// MemBW is theoretical DRAM bandwidth in bytes/s (8 channels,
	// 170 GB/s on the paper's high-end reference socket).
	MemBW float64
	// Cores is the core count (22-core Xeon E5-4669 v4).
	Cores int
	// PCIeBW is theoretical PCIe IO bandwidth in bytes/s (128 GB/s).
	PCIeBW float64
	// IOEfficiency derates PCIe for DMA overheads; the paper targets
	// 60% (75 of 128 GB/s).
	IOEfficiency float64
}

// PaperSocket returns the reference socket of §3.2 and §7.5.
func PaperSocket() Socket {
	return Socket{MemBW: 170e9, Cores: 22, PCIeBW: 128e9, IOEfficiency: 0.6}
}

// TargetThroughput is the per-socket goal: 60% of 1-Tbps PCIe = 75 GB/s.
func (s Socket) TargetThroughput() float64 { return s.PCIeBW * s.IOEfficiency }

// MaxThroughput returns the highest client throughput (bytes/s) the
// socket sustains for a workload with the snapshot's per-byte
// intensities, additionally bounded by deviceCap (accelerator bound in
// bytes/s; pass 0 for none). This is the Figure 14 projection.
func (s Socket) MaxThroughput(snap Snapshot, deviceCap float64) float64 {
	limit := s.TargetThroughput()
	if mpb := snap.MemPerClientByte(); mpb > 0 {
		if t := s.MemBW / mpb; t < limit {
			limit = t
		}
	}
	if npb := snap.CPUNanosPerClientByte(); npb > 0 {
		if t := float64(s.Cores) * 1e9 / npb; t < limit {
			limit = t
		}
	}
	if deviceCap > 0 && deviceCap < limit {
		limit = deviceCap
	}
	return limit
}
