// Package ssd simulates NVMe solid-state drives: a sparse page store with
// bit-exact contents, an access-time model, IO counters, and NVMe-style
// submission/completion queues.
//
// FIDR uses two SSD roles (§2.1.3, §6.1):
//
//   - data SSDs, receiving large sequential container writes and serving
//     random compressed-chunk reads. Their queues stay in host memory and
//     are managed by software (tolerable overhead per the paper).
//   - table SSDs, serving random small (4-KB bucket) reads/writes for
//     table-cache misses. In FIDR their queues live inside the Cache
//     HW-Engine; in the baseline, the host software stack manages them.
package ssd

import (
	"fmt"
	"sync"
	"time"

	"fidr/internal/metrics"
)

// Config describes one simulated SSD.
type Config struct {
	// Name identifies the device in reports.
	Name string
	// CapacityBytes bounds the addressable space.
	CapacityBytes uint64
	// PageSize is the internal allocation granularity (4096 typical).
	PageSize int
	// ReadLatency / WriteLatency model per-command flash access time.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// ReadBW / WriteBW are sustained transfer bandwidths in bytes/s.
	ReadBW  float64
	WriteBW float64
	// BackingFile, when set, persists device contents to a sparse file
	// on the host filesystem instead of process memory — state survives
	// restarts, enabling durable fidrd volumes and offline fsck.
	BackingFile string
}

// Samsung970Pro returns parameters resembling the paper's data/table SSDs
// (Samsung 970 Pro 1 TB).
func Samsung970Pro(name string) Config {
	return Config{
		Name:          name,
		CapacityBytes: 1 << 40,
		PageSize:      4096,
		ReadLatency:   85 * time.Microsecond,
		WriteLatency:  30 * time.Microsecond,
		ReadBW:        3.5e9,
		WriteBW:       2.7e9,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityBytes == 0 {
		return fmt.Errorf("ssd %q: zero capacity", c.Name)
	}
	if c.PageSize <= 0 {
		return fmt.Errorf("ssd %q: invalid page size %d", c.Name, c.PageSize)
	}
	if c.ReadBW <= 0 || c.WriteBW <= 0 {
		return fmt.Errorf("ssd %q: bandwidths must be positive", c.Name)
	}
	return nil
}

// Stats aggregates device activity.
type Stats struct {
	ReadIOs      uint64
	WriteIOs     uint64
	ReadBytes    uint64
	WriteBytes   uint64
	BusyDuration time.Duration
}

// SSD is one simulated device. Safe for concurrent use.
type SSD struct {
	cfg Config

	mu    sync.RWMutex
	store backing

	reads, writes         metrics.Counter
	readBytes, writeBytes metrics.Counter
	busyNanos             metrics.Counter

	// Live observability: nil unless Instrument attached a registry.
	obsReads, obsWrites         *metrics.Counter
	obsReadBytes, obsWriteBytes *metrics.Counter
	obsAccess                   *metrics.Histogram
	// obsBusy mirrors modeled device busy time; its windowed rate is the
	// device's duty cycle. obsQueue tracks NVMe queue occupancy (driven
	// by QueuePair Submit/Reap on devices fronted by queues).
	obsBusy  *metrics.Counter
	obsQueue *metrics.Gauge

	// fault injection (tests): remaining IOs to fail and the error.
	faultMu    sync.Mutex
	failReads  int
	failWrites int
	faultErr   error
}

// New creates an SSD from cfg. With a BackingFile, contents live in a
// sparse file and survive process restarts; Close the device to release
// the file handle.
func New(cfg Config) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var store backing
	if cfg.BackingFile != "" {
		fs, err := newFileBacking(cfg.BackingFile, cfg.PageSize)
		if err != nil {
			return nil, fmt.Errorf("ssd %q: %w", cfg.Name, err)
		}
		store = fs
	} else {
		store = newMemBacking(cfg.PageSize)
	}
	return &SSD{cfg: cfg, store: store}, nil
}

// Close releases the device's backing resources (file handle for
// file-backed devices; no-op in memory).
func (s *SSD) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.close()
}

// MustNew is New panicking on error, for constant configs.
func MustNew(cfg Config) *SSD {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the device configuration.
func (s *SSD) Config() Config { return s.cfg }

// Instrument mirrors device activity into reg: "ssd.<name>.*" IO and
// byte counters plus an "ssd.<name>.access_ns" histogram of modeled
// per-command access times. Call once, before serving traffic.
func (s *SSD) Instrument(reg *metrics.Registry) {
	p := "ssd." + s.cfg.Name + "."
	s.obsReads = reg.Counter(p + "read_ios")
	s.obsWrites = reg.Counter(p + "write_ios")
	s.obsReadBytes = reg.Counter(p + "read_bytes")
	s.obsWriteBytes = reg.Counter(p + "write_bytes")
	s.obsAccess = reg.Histogram(p + "access_ns")
	s.obsBusy = reg.Counter(p + "busy_ns")
	s.obsQueue = reg.Gauge(p + "queue_depth")
}

// InjectFaults makes the next nReads read commands and nWrites write
// commands fail with err (media-error simulation for failure-path tests).
func (s *SSD) InjectFaults(nReads, nWrites int, err error) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	s.failReads, s.failWrites, s.faultErr = nReads, nWrites, err
}

// takeFault consumes one injected fault if armed.
func (s *SSD) takeFault(write bool) error {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if write && s.failWrites > 0 {
		s.failWrites--
		return s.faultErr
	}
	if !write && s.failReads > 0 {
		s.failReads--
		return s.faultErr
	}
	return nil
}

// Write stores data at byte offset off. The write may span pages and need
// not be aligned; partial first/last pages are read-modified internally
// (content only; the time model charges one command).
func (s *SSD) Write(off uint64, data []byte) error {
	if err := s.takeFault(true); err != nil {
		return fmt.Errorf("ssd %q: injected write fault: %w", s.cfg.Name, err)
	}
	if off+uint64(len(data)) > s.cfg.CapacityBytes {
		return fmt.Errorf("ssd %q: write [%d,%d) beyond capacity %d",
			s.cfg.Name, off, off+uint64(len(data)), s.cfg.CapacityBytes)
	}
	s.mu.Lock()
	err := s.store.write(off, data)
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("ssd %q: %w", s.cfg.Name, err)
	}
	at := s.AccessTime(true, len(data))
	s.writes.Inc()
	s.writeBytes.Add(uint64(len(data)))
	s.busyNanos.Add(uint64(at.Nanoseconds()))
	if s.obsWrites != nil {
		s.obsWrites.Inc()
		s.obsWriteBytes.Add(uint64(len(data)))
		s.obsAccess.Observe(float64(at.Nanoseconds()))
		s.obsBusy.Add(uint64(at.Nanoseconds()))
	}
	return nil
}

// Read returns n bytes at byte offset off. Never-written regions read as
// zeros, matching a trimmed flash device.
func (s *SSD) Read(off uint64, n int) ([]byte, error) {
	if err := s.takeFault(false); err != nil {
		return nil, fmt.Errorf("ssd %q: injected read fault: %w", s.cfg.Name, err)
	}
	if n < 0 || off+uint64(n) > s.cfg.CapacityBytes {
		return nil, fmt.Errorf("ssd %q: read [%d,%d) beyond capacity %d",
			s.cfg.Name, off, off+uint64(n), s.cfg.CapacityBytes)
	}
	out := make([]byte, n)
	s.mu.RLock()
	err := s.store.read(out, off)
	s.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("ssd %q: %w", s.cfg.Name, err)
	}
	at := s.AccessTime(false, n)
	s.reads.Inc()
	s.readBytes.Add(uint64(n))
	s.busyNanos.Add(uint64(at.Nanoseconds()))
	if s.obsReads != nil {
		s.obsReads.Inc()
		s.obsReadBytes.Add(uint64(n))
		s.obsAccess.Observe(float64(at.Nanoseconds()))
		s.obsBusy.Add(uint64(at.Nanoseconds()))
	}
	return out, nil
}

// setQueueDepth publishes NVMe queue occupancy; no-op until Instrument.
func (s *SSD) setQueueDepth(n int) {
	if s.obsQueue != nil {
		s.obsQueue.Set(float64(n))
	}
}

// AccessTime models one command's device time: fixed command latency plus
// transfer time at the sustained bandwidth.
func (s *SSD) AccessTime(write bool, n int) time.Duration {
	var lat time.Duration
	var bw float64
	if write {
		lat, bw = s.cfg.WriteLatency, s.cfg.WriteBW
	} else {
		lat, bw = s.cfg.ReadLatency, s.cfg.ReadBW
	}
	return lat + time.Duration(float64(n)/bw*1e9)*time.Nanosecond
}

// Stats returns a snapshot of device counters.
func (s *SSD) Stats() Stats {
	return Stats{
		ReadIOs:      s.reads.Value(),
		WriteIOs:     s.writes.Value(),
		ReadBytes:    s.readBytes.Value(),
		WriteBytes:   s.writeBytes.Value(),
		BusyDuration: time.Duration(s.busyNanos.Value()),
	}
}

// ResetStats zeroes the counters (contents unaffected).
func (s *SSD) ResetStats() {
	s.reads.Reset()
	s.writes.Reset()
	s.readBytes.Reset()
	s.writeBytes.Reset()
	s.busyNanos.Reset()
}

// StoredPages reports how many pages hold data (memory footprint of the
// simulation for in-memory devices; an allocation upper bound derived
// from the file size for file-backed ones).
func (s *SSD) StoredPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.pages()
}
