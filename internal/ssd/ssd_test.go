package ssd

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testConfig() Config {
	return Config{
		Name:          "test",
		CapacityBytes: 1 << 30,
		PageSize:      4096,
		ReadLatency:   85 * time.Microsecond,
		WriteLatency:  30 * time.Microsecond,
		ReadBW:        3.5e9,
		WriteBW:       2.7e9,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{CapacityBytes: 1, PageSize: 0, ReadBW: 1, WriteBW: 1},
		{CapacityBytes: 1, PageSize: 4096, ReadBW: 0, WriteBW: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := Samsung970Pro("d").Validate(); err != nil {
		t.Errorf("preset invalid: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := MustNew(testConfig())
	data := []byte("fidr stores compressed containers")
	if err := s.Write(10000, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(10000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := MustNew(testConfig())
	got, err := s.Read(4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten region not zero")
		}
	}
}

func TestCrossPageWrite(t *testing.T) {
	s := MustNew(testConfig())
	data := make([]byte, 3*4096+123)
	rand.New(rand.NewSource(1)).Read(data)
	off := uint64(4096 - 57) // unaligned, spans 4+ pages
	if err := s.Write(off, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(off, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
	if s.StoredPages() < 4 {
		t.Errorf("expected >=4 pages stored, got %d", s.StoredPages())
	}
}

func TestBoundsChecks(t *testing.T) {
	s := MustNew(testConfig())
	if err := s.Write(s.Config().CapacityBytes-10, make([]byte, 20)); err == nil {
		t.Error("write beyond capacity accepted")
	}
	if _, err := s.Read(s.Config().CapacityBytes-10, 20); err == nil {
		t.Error("read beyond capacity accepted")
	}
	if _, err := s.Read(0, -1); err == nil {
		t.Error("negative read accepted")
	}
}

func TestWriteReadProperty(t *testing.T) {
	s := MustNew(testConfig())
	prop := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := uint64(off) % (1<<30 - 1<<20) // keep within capacity
		if err := s.Write(o, data); err != nil {
			return false
		}
		got, err := s.Read(o, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsAndAccessTime(t *testing.T) {
	s := MustNew(testConfig())
	if err := s.Write(0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(0, 4096); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WriteIOs != 1 || st.ReadIOs != 1 {
		t.Errorf("IOs = %d/%d", st.WriteIOs, st.ReadIOs)
	}
	if st.WriteBytes != 8192 || st.ReadBytes != 4096 {
		t.Errorf("bytes = %d/%d", st.WriteBytes, st.ReadBytes)
	}
	if st.BusyDuration <= 0 {
		t.Error("busy duration not accumulated")
	}
	// Access time must exceed base latency and grow with size.
	small := s.AccessTime(false, 4096)
	large := s.AccessTime(false, 4<<20)
	if small < s.Config().ReadLatency {
		t.Error("access time below base latency")
	}
	if large <= small {
		t.Error("access time not increasing with transfer size")
	}
	s.ResetStats()
	if s.Stats().ReadIOs != 0 {
		t.Error("reset failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := MustNew(testConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			off := uint64(g) * 4096
			for i := 0; i < 50; i++ {
				if err := s.Write(off, buf); err != nil {
					t.Error(err)
					return
				}
				got, err := s.Read(off, 4096)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Error("interleaved data corruption")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestQueuePairBasic(t *testing.T) {
	s := MustNew(testConfig())
	q, err := NewQueuePair(s, OwnerHW, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Owner() != OwnerHW || q.Depth() != 8 {
		t.Fatal("queue metadata wrong")
	}
	payload := []byte("bucket content")
	if err := q.Submit(Command{Op: OpWrite, Offset: 0, Data: payload, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(Command{Op: OpRead, Offset: 0, Length: len(payload), Tag: 2}); err != nil {
		t.Fatal(err)
	}
	q.Process()
	comps := q.Reap(0)
	if len(comps) != 2 {
		t.Fatalf("got %d completions", len(comps))
	}
	if comps[0].Tag != 1 || comps[0].Err != nil {
		t.Errorf("write completion: %+v", comps[0])
	}
	if comps[1].Tag != 2 || !bytes.Equal(comps[1].Data, payload) {
		t.Errorf("read completion: %+v", comps[1])
	}
	if q.Submitted() != 2 || q.Completed() != 2 {
		t.Errorf("counters: %d/%d", q.Submitted(), q.Completed())
	}
}

func TestQueuePairFull(t *testing.T) {
	s := MustNew(testConfig())
	q, _ := NewQueuePair(s, OwnerHost, 2)
	for i := 0; i < 2; i++ {
		if err := q.Submit(Command{Op: OpRead, Length: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Submit(Command{Op: OpRead, Length: 1}); err != ErrQueueFull {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	q.Process()
	// Ring slots free only after reap.
	if err := q.Submit(Command{Op: OpRead, Length: 1}); err != ErrQueueFull {
		t.Fatalf("slots freed before reap: %v", err)
	}
	q.Reap(1)
	if err := q.Submit(Command{Op: OpRead, Length: 1}); err != nil {
		t.Fatalf("slot not freed after reap: %v", err)
	}
}

func TestQueuePairErrors(t *testing.T) {
	s := MustNew(testConfig())
	if _, err := NewQueuePair(s, OwnerHost, 0); err == nil {
		t.Error("zero depth accepted")
	}
	q, _ := NewQueuePair(s, OwnerHost, 4)
	// Out-of-range read surfaces as completion error, not panic.
	q.Submit(Command{Op: OpRead, Offset: s.Config().CapacityBytes, Length: 10, Tag: 9})
	q.Process()
	comps := q.Reap(0)
	if len(comps) != 1 || comps[0].Err == nil {
		t.Fatal("device error not propagated through completion")
	}
}

func TestOwnerString(t *testing.T) {
	if OwnerHost.String() != "host" || OwnerHW.String() != "hw-engine" {
		t.Error("owner strings wrong")
	}
	if Owner(9).String() == "" {
		t.Error("unknown owner renders empty")
	}
}

func BenchmarkWrite4K(b *testing.B) {
	s := MustNew(testConfig())
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if err := s.Write(uint64(i%1024)*4096, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFileBackedPersistence(t *testing.T) {
	path := t.TempDir() + "/vol.img"
	cfg := testConfig()
	cfg.BackingFile = path
	s1 := MustNew(cfg)
	data := []byte("survives process restarts")
	if err := s1.Write(12345, data); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: contents intact; holes still read zero.
	s2 := MustNew(cfg)
	defer s2.Close()
	got, err := s2.Read(12345, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("persisted data lost: %q", got)
	}
	hole, err := s2.Read(1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	if s2.StoredPages() == 0 {
		t.Error("file-backed page estimate empty")
	}
}

func TestFileBackedRoundTripUnaligned(t *testing.T) {
	cfg := testConfig()
	cfg.BackingFile = t.TempDir() + "/vol.img"
	s := MustNew(cfg)
	defer s.Close()
	data := make([]byte, 3*4096+77)
	rand.New(rand.NewSource(4)).Read(data)
	if err := s.Write(4096-13, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(4096-13, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("file-backed unaligned round trip failed: %v", err)
	}
}

func TestFileBackedBadPath(t *testing.T) {
	cfg := testConfig()
	cfg.BackingFile = "/nonexistent-dir-xyz/vol.img"
	if _, err := New(cfg); err == nil {
		t.Fatal("unopenable backing file accepted")
	}
}
