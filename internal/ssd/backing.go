package ssd

import (
	"fmt"
	"io"
	"os"
)

// backing is the device's content store. Implementations need not be
// concurrency-safe; SSD serializes access.
type backing interface {
	// write stores data at byte offset off (bounds already checked).
	write(off uint64, data []byte) error
	// read fills dst from byte offset off; never-written regions read
	// as zeros.
	read(dst []byte, off uint64) error
	// pages estimates occupied pages.
	pages() int
	// close releases resources.
	close() error
}

// memBacking keeps pages in a sparse map — fast, gone at process exit.
type memBacking struct {
	pageSize int
	m        map[uint64][]byte
}

func newMemBacking(pageSize int) *memBacking {
	return &memBacking{pageSize: pageSize, m: make(map[uint64][]byte)}
}

func (b *memBacking) write(off uint64, data []byte) error {
	ps := uint64(b.pageSize)
	for n := 0; n < len(data); {
		page := (off + uint64(n)) / ps
		inPage := (off + uint64(n)) % ps
		chunk := int(ps - inPage)
		if chunk > len(data)-n {
			chunk = len(data) - n
		}
		buf, ok := b.m[page]
		if !ok {
			buf = make([]byte, ps)
			b.m[page] = buf
		}
		copy(buf[inPage:], data[n:n+chunk])
		n += chunk
	}
	return nil
}

func (b *memBacking) read(dst []byte, off uint64) error {
	ps := uint64(b.pageSize)
	for i := 0; i < len(dst); {
		page := (off + uint64(i)) / ps
		inPage := (off + uint64(i)) % ps
		chunk := int(ps - inPage)
		if chunk > len(dst)-i {
			chunk = len(dst) - i
		}
		if buf, ok := b.m[page]; ok {
			copy(dst[i:i+chunk], buf[inPage:inPage+uint64(chunk)])
		} else {
			for j := i; j < i+chunk; j++ {
				dst[j] = 0
			}
		}
		i += chunk
	}
	return nil
}

func (b *memBacking) pages() int { return len(b.m) }
func (b *memBacking) close() error {
	b.m = nil
	return nil
}

// fileBacking persists contents in a sparse file: writes land with
// WriteAt, holes read as zeros. Durable across process restarts.
type fileBacking struct {
	f        *os.File
	pageSize int
}

func newFileBacking(path string, pageSize int) (*fileBacking, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("backing file: %w", err)
	}
	return &fileBacking{f: f, pageSize: pageSize}, nil
}

func (b *fileBacking) write(off uint64, data []byte) error {
	if _, err := b.f.WriteAt(data, int64(off)); err != nil {
		return fmt.Errorf("backing write: %w", err)
	}
	return nil
}

func (b *fileBacking) read(dst []byte, off uint64) error {
	n, err := b.f.ReadAt(dst, int64(off))
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Beyond the file's high-water mark: zero-fill the tail.
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("backing read: %w", err)
	}
	return nil
}

func (b *fileBacking) pages() int {
	st, err := b.f.Stat()
	if err != nil {
		return 0
	}
	return int((st.Size() + int64(b.pageSize) - 1) / int64(b.pageSize))
}

func (b *fileBacking) close() error { return b.f.Close() }
