package ssd

import (
	"errors"
	"fmt"
)

// NVMe-style paired submission/completion queues. The queue pair is a ring
// of fixed depth: commands are submitted to the SQ, executed against the
// device, and completions are reaped from the CQ.
//
// Where the queue pair *lives* is an architectural decision the paper
// leans on: baseline and FIDR keep data-SSD queues in host memory
// (software-managed), while FIDR moves table-SSD queues into the Cache
// HW-Engine so the host CPU never touches the hot random-IO control path
// (§6.1). The Owner tag records that placement so resource accounting can
// charge the right component.

// Owner says which agent manages a queue pair.
type Owner int

const (
	// OwnerHost means host software manages the queue (CPU cost per IO).
	OwnerHost Owner = iota
	// OwnerHW means a hardware engine manages the queue (no host CPU).
	OwnerHW
)

// String implements fmt.Stringer.
func (o Owner) String() string {
	switch o {
	case OwnerHost:
		return "host"
	case OwnerHW:
		return "hw-engine"
	default:
		return fmt.Sprintf("Owner(%d)", int(o))
	}
}

// OpCode is the NVMe command type.
type OpCode int

const (
	// OpRead reads Length bytes at Offset.
	OpRead OpCode = iota
	// OpWrite writes Data at Offset.
	OpWrite
)

// Command is one queued NVMe command.
type Command struct {
	Op     OpCode
	Offset uint64
	Length int    // for reads
	Data   []byte // for writes
	Tag    uint64 // caller-chosen identifier echoed in the completion
}

// Completion reports a finished command.
type Completion struct {
	Tag  uint64
	Data []byte // read payload, nil for writes
	Err  error
}

// ErrQueueFull is returned when the submission ring has no free slot.
var ErrQueueFull = errors.New("ssd: submission queue full")

// QueuePair couples an SQ/CQ ring with a device. Not safe for concurrent
// use; each submitter owns its queue pair, as in NVMe.
type QueuePair struct {
	dev   *SSD
	owner Owner
	depth int
	sq    []Command
	cq    []Completion

	submitted uint64
	completed uint64
}

// NewQueuePair creates a queue pair of the given depth against dev.
func NewQueuePair(dev *SSD, owner Owner, depth int) (*QueuePair, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("ssd: invalid queue depth %d", depth)
	}
	return &QueuePair{dev: dev, owner: owner, depth: depth}, nil
}

// Owner reports who manages this queue pair.
func (q *QueuePair) Owner() Owner { return q.owner }

// Depth returns the ring depth.
func (q *QueuePair) Depth() int { return q.depth }

// Pending returns the number of submitted but unreaped commands.
func (q *QueuePair) Pending() int { return len(q.sq) + len(q.cq) }

// Submit enqueues a command. Returns ErrQueueFull if SQ+CQ occupancy
// reached the ring depth (completions must be reaped to free slots).
func (q *QueuePair) Submit(cmd Command) error {
	if q.Pending() >= q.depth {
		return ErrQueueFull
	}
	q.sq = append(q.sq, cmd)
	q.submitted++
	q.dev.setQueueDepth(q.Pending())
	return nil
}

// Process executes all submitted commands against the device, moving them
// to the completion queue. In hardware this is the device's doorbell/DMA
// work; calling it explicitly keeps the simulation deterministic.
func (q *QueuePair) Process() {
	for _, cmd := range q.sq {
		var comp Completion
		comp.Tag = cmd.Tag
		switch cmd.Op {
		case OpRead:
			comp.Data, comp.Err = q.dev.Read(cmd.Offset, cmd.Length)
		case OpWrite:
			comp.Err = q.dev.Write(cmd.Offset, cmd.Data)
		default:
			comp.Err = fmt.Errorf("ssd: unknown opcode %d", cmd.Op)
		}
		q.cq = append(q.cq, comp)
	}
	q.sq = q.sq[:0]
}

// Reap removes and returns up to max completions (all if max <= 0).
func (q *QueuePair) Reap(max int) []Completion {
	if max <= 0 || max > len(q.cq) {
		max = len(q.cq)
	}
	out := make([]Completion, max)
	copy(out, q.cq[:max])
	q.cq = q.cq[:copy(q.cq, q.cq[max:])]
	q.completed += uint64(max)
	q.dev.setQueueDepth(q.Pending())
	return out
}

// Submitted returns the total number of commands ever submitted.
func (q *QueuePair) Submitted() uint64 { return q.submitted }

// Completed returns the total number of completions reaped.
func (q *QueuePair) Completed() uint64 { return q.completed }
