package proto

import (
	"math"
	"strings"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/core"
)

// maintStore adapts a single core.Server to the listener's optional
// maintenance surfaces (the daemon's AsyncStore does this in production;
// here the pass-through keeps the wire test focused on the protocol).
type maintStore struct {
	*core.Server
	checkpoints int
}

func (m *maintStore) CompactAll(minDeadFraction float64) (CompactSummary, error) {
	res, err := m.Server.Compact(minDeadFraction)
	if err != nil {
		return CompactSummary{}, err
	}
	return CompactSummary{
		ContainersCompacted: uint64(res.ContainersCompacted),
		ChunksMoved:         uint64(res.ChunksMoved),
		ChunksDropped:       uint64(res.ChunksDropped),
		BytesReclaimed:      res.BytesReclaimed,
		BytesMoved:          res.BytesMoved,
	}, nil
}

func (m *maintStore) CheckpointAll() error {
	m.checkpoints++
	return nil
}

func TestCompactAndCheckpointOverWire(t *testing.T) {
	cfg := core.DefaultConfig(core.FIDRFull)
	cfg.ContainerSize = 64 << 10
	cfg.BatchChunks = 16
	srv, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := &maintStore{Server: srv}
	l, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Build garbage: unique fill, then overwrite most LBAs.
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 128; i++ {
		if err := c.WriteChunk(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 128; i++ {
		if i%4 != 0 {
			if err := c.WriteChunk(i, sh.Make(50000+i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
	}

	sum, err := c.Compact(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ContainersCompacted == 0 || sum.BytesReclaimed == 0 {
		t.Fatalf("wire compact reclaimed nothing: %+v", sum)
	}
	if want := sum.ContainersCompacted * uint64(cfg.ContainerSize); sum.BytesReclaimed != want {
		t.Fatalf("BytesReclaimed %d, want %d containers * %d", sum.BytesReclaimed, sum.ContainersCompacted, cfg.ContainerSize)
	}
	if sum.ChunksDropped == 0 || sum.ChunksMoved == 0 {
		t.Fatalf("expected drops and moves over the wire: %+v", sum)
	}

	// Data survives a wire-driven GC.
	for i := uint64(0); i < 128; i++ {
		want := sh.Make(i, 4096)
		if i%4 != 0 {
			want = sh.Make(50000+i, 4096)
		}
		got, err := c.ReadChunk(i)
		if err != nil || string(got) != string(want) {
			t.Fatalf("LBA %d corrupted after wire GC: %v", i, err)
		}
	}

	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if store.checkpoints != 1 {
		t.Fatalf("checkpoint reached the store %d times", store.checkpoints)
	}
}

func TestCompactThresholdValidationOverWire(t *testing.T) {
	srv, err := core.New(core.DefaultConfig(core.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Serve(&maintStore{Server: srv}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	for _, bad := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := c.Compact(bad); err == nil || !strings.Contains(err.Error(), "threshold") {
			t.Fatalf("threshold %v accepted: %v", bad, err)
		}
	}
}

func TestMaintenanceOpsOnPlainStore(t *testing.T) {
	// A store without the optional surfaces must answer with a protocol
	// error, not a dropped connection.
	_, c := newTestListener(t)
	if _, err := c.Compact(0.5); err == nil || !strings.Contains(err.Error(), "compaction") {
		t.Fatalf("compact on plain store: %v", err)
	}
	if err := c.Checkpoint(); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("checkpoint on plain store: %v", err)
	}
}
