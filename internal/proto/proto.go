// Package proto implements the simplified storage access protocol of
// §6.2: instead of full iSCSI, a minimal framed protocol whose flow is
// write→ack and read→ack-with-data, carrying the operation type, the LBA
// and (for writes) the chunk payload.
//
// Frame layout (little endian):
//
//	byte  0      opcode (1 write, 2 read, 3 ack, 4 ack+data, 5 error);
//	             bit 7 (0x80) flags a trace-context extension
//	bytes 1-8    LBA
//	bytes 9-12   payload length
//	[bytes 13-29 trace context: trace ID (8), parent span ID (8),
//	             flags (1) — present only when bit 7 of the opcode is
//	             set; see internal/trace/span.Context]
//	bytes ...    payload (write data, read data, or error text)
//
// The trace extension is how a client-issued trace ID survives the
// wire: requests carry the caller's context, responses echo it, and
// frames without the flag are byte-identical to the pre-tracing
// protocol.
package proto

import (
	"encoding/binary"
	"fmt"
	"io"

	"fidr/internal/trace/span"
)

// Op is the frame opcode.
type Op byte

// Opcodes.
const (
	OpWrite Op = 1
	OpRead  Op = 2
	OpAck   Op = 3
	OpData  Op = 4
	OpError Op = 5
	// OpWriteBatch carries N consecutive chunks in one frame: payload
	// length must be a multiple of the chunk size; chunk i lands at
	// LBA+i. One ack covers the batch (the NIC buffers and acks writes
	// as a unit anyway, §5.3).
	OpWriteBatch Op = 6
	// OpReadBatch requests N consecutive chunks: the payload carries a
	// little-endian uint32 count; the response is one OpData frame with
	// the concatenated chunks.
	OpReadBatch Op = 7
	// OpCompact triggers a GC pass: the payload is the dead-fraction
	// threshold as little-endian float64 bits. The ack payload carries
	// five little-endian uint64s: containers compacted, chunks moved,
	// chunks dropped, bytes reclaimed, bytes moved.
	OpCompact Op = 8
	// OpCheckpoint persists the metadata checkpoint and truncates the
	// WAL (durable servers); empty payload both ways.
	OpCheckpoint Op = 9
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpAck:
		return "ack"
	case OpData:
		return "ack+data"
	case OpError:
		return "error"
	case OpWriteBatch:
		return "write-batch"
	case OpReadBatch:
		return "read-batch"
	case OpCompact:
		return "compact"
	case OpCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// MaxPayload bounds frame payloads (one chunk plus slack).
const MaxPayload = 1 << 20

const headerSize = 13

// opTraceFlag marks a frame carrying a trace-context extension between
// the header and the payload.
const opTraceFlag = 0x80

// Frame is one protocol message. Ctx, when valid, is the distributed
// trace context riding the frame (encoded as the header extension).
type Frame struct {
	Op      Op
	LBA     uint64
	Payload []byte
	Ctx     span.Context
}

// Write encodes the frame to w.
func Write(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("proto: payload %d exceeds limit", len(f.Payload))
	}
	var hdr [headerSize + span.WireSize]byte
	n := headerSize
	hdr[0] = byte(f.Op)
	if f.Ctx.Valid() {
		hdr[0] |= opTraceFlag
		f.Ctx.EncodeWire(hdr[headerSize:])
		n += span.WireSize
	}
	binary.LittleEndian.PutUint64(hdr[1:], f.LBA)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("proto: write header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("proto: write payload: %w", err)
		}
	}
	return nil
}

// Read decodes one frame from r. Returns io.EOF cleanly at end of stream.
func Read(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("proto: read header: %w", err)
	}
	f := Frame{
		Op:  Op(hdr[0] &^ opTraceFlag),
		LBA: binary.LittleEndian.Uint64(hdr[1:]),
	}
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("proto: payload %d exceeds limit", n)
	}
	if f.Op < OpWrite || f.Op > OpCheckpoint {
		return Frame{}, fmt.Errorf("proto: bad opcode %d", hdr[0])
	}
	if hdr[0]&opTraceFlag != 0 {
		var ext [span.WireSize]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Frame{}, fmt.Errorf("proto: read trace context: %w", err)
		}
		ctx, err := span.DecodeWire(ext[:])
		if err != nil {
			return Frame{}, fmt.Errorf("proto: %w", err)
		}
		f.Ctx = ctx
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("proto: read payload: %w", err)
		}
	}
	return f, nil
}
