package proto

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRead ensures the frame decoder never panics or over-allocates on
// arbitrary input, and that valid frames round-trip.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	Write(&seed, Frame{Op: OpWrite, LBA: 1, Payload: []byte("abc")})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			frame, err := Read(r)
			if err != nil {
				return // EOF or rejection are both fine
			}
			// A decoded frame must re-encode.
			var buf bytes.Buffer
			if err := Write(&buf, frame); err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatalf("re-encoded frame does not decode: %v", err)
			}
			if back.Op != frame.Op || back.LBA != frame.LBA || !bytes.Equal(back.Payload, frame.Payload) {
				t.Fatal("frame round-trip mismatch")
			}
		}
	})
}

// FuzzWriteRead checks arbitrary payloads survive framing.
func FuzzWriteRead(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1<<40), []byte("chunk"))
	f.Fuzz(func(t *testing.T, lba uint64, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		var buf bytes.Buffer
		if err := Write(&buf, Frame{Op: OpData, LBA: lba, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.LBA != lba || !bytes.Equal(got.Payload, payload) {
			t.Fatal("payload corrupted by framing")
		}
		if _, err := Read(&buf); err != io.EOF {
			t.Fatal("trailing bytes after frame")
		}
	})
}
