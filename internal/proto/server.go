package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
)

// Store is the chunk-store surface the listener serves. Both a single
// core.Server and a cluster of them satisfy it.
type Store interface {
	Write(lba uint64, data []byte) error
	Read(lba uint64) ([]byte, error)
	ReadRange(lba uint64, n int) ([]byte, error)
	ChunkSize() int
}

// Listener serves the storage protocol over TCP in front of a chunk
// store. The core server is single-writer; the listener serializes
// requests across connections (as the FIDR software's device manager
// serializes the device pipeline).
type Listener struct {
	srv Store
	mu  sync.Mutex
	ln  net.Listener

	wg     sync.WaitGroup
	closed chan struct{}
	logf   func(format string, args ...any)
}

// Serve starts serving on addr ("host:port"; use ":0" for an ephemeral
// port) and returns immediately. Close stops it.
func Serve(srv Store, addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: listen: %w", err)
	}
	l := &Listener{srv: srv, ln: ln, closed: make(chan struct{}), logf: log.Printf}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting and waits for in-flight connections.
func (l *Listener) Close() error {
	close(l.closed)
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
				l.logf("proto: accept: %v", err)
				return
			}
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer conn.Close()
			if err := l.serveConn(conn); err != nil && !errors.Is(err, io.EOF) {
				l.logf("proto: connection: %v", err)
			}
		}()
	}
}

func (l *Listener) serveConn(conn net.Conn) error {
	for {
		f, err := Read(conn)
		if err != nil {
			return err
		}
		resp := l.handle(f)
		if err := Write(conn, resp); err != nil {
			return err
		}
	}
}

func (l *Listener) handle(f Frame) Frame {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch f.Op {
	case OpWrite:
		if err := l.srv.Write(f.LBA, f.Payload); err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpAck, LBA: f.LBA}
	case OpWriteBatch:
		cs := l.srv.ChunkSize()
		if len(f.Payload) == 0 || len(f.Payload)%cs != 0 {
			return Frame{Op: OpError, LBA: f.LBA,
				Payload: []byte(fmt.Sprintf("batch payload %d not a multiple of chunk size %d", len(f.Payload), cs))}
		}
		for i := 0; i*cs < len(f.Payload); i++ {
			if err := l.srv.Write(f.LBA+uint64(i), f.Payload[i*cs:(i+1)*cs]); err != nil {
				return Frame{Op: OpError, LBA: f.LBA + uint64(i), Payload: []byte(err.Error())}
			}
		}
		return Frame{Op: OpAck, LBA: f.LBA}
	case OpRead:
		data, err := l.srv.Read(f.LBA)
		if err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpData, LBA: f.LBA, Payload: data}
	case OpReadBatch:
		if len(f.Payload) != 4 {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("read-batch payload must be a uint32 count")}
		}
		count := int(binary.LittleEndian.Uint32(f.Payload))
		cs := l.srv.ChunkSize()
		if count < 1 || count*cs > MaxPayload {
			return Frame{Op: OpError, LBA: f.LBA,
				Payload: []byte(fmt.Sprintf("read-batch count %d out of range", count))}
		}
		data, err := l.srv.ReadRange(f.LBA, count)
		if err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpData, LBA: f.LBA, Payload: data}
	default:
		return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("unexpected opcode")}
	}
}

// Client is a blocking protocol client.
type Client struct {
	conn net.Conn
	mu   sync.Mutex
}

// Dial connects to a Listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends a frame and reads the response.
func (c *Client) roundTrip(f Frame) (Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := Write(c.conn, f); err != nil {
		return Frame{}, err
	}
	return Read(c.conn)
}

// WriteChunk stores one chunk at lba (write -> wait -> ack, §6.2).
func (c *Client) WriteChunk(lba uint64, data []byte) error {
	resp, err := c.roundTrip(Frame{Op: OpWrite, LBA: lba, Payload: data})
	if err != nil {
		return err
	}
	if resp.Op == OpError {
		return fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return nil
}

// WriteBatch stores len(data)/chunkSize consecutive chunks starting at
// lba in one round trip.
func (c *Client) WriteBatch(lba uint64, data []byte) error {
	resp, err := c.roundTrip(Frame{Op: OpWriteBatch, LBA: lba, Payload: data})
	if err != nil {
		return err
	}
	if resp.Op == OpError {
		return fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return nil
}

// ReadChunk fetches the chunk at lba (read -> wait -> ack with data).
func (c *Client) ReadChunk(lba uint64) ([]byte, error) {
	resp, err := c.roundTrip(Frame{Op: OpRead, LBA: lba})
	if err != nil {
		return nil, err
	}
	if resp.Op == OpError {
		return nil, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpData {
		return nil, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return resp.Payload, nil
}

// ReadBatch fetches count consecutive chunks starting at lba in one
// round trip.
func (c *Client) ReadBatch(lba uint64, count int) ([]byte, error) {
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], uint32(count))
	resp, err := c.roundTrip(Frame{Op: OpReadBatch, LBA: lba, Payload: payload[:]})
	if err != nil {
		return nil, err
	}
	if resp.Op == OpError {
		return nil, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpData {
		return nil, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return resp.Payload, nil
}
