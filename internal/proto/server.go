package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/trace/span"
)

// Store is the chunk-store surface the listener serves. Both a single
// core.Server and a cluster of them satisfy it.
type Store interface {
	Write(lba uint64, data []byte) error
	Read(lba uint64) ([]byte, error)
	ReadRange(lba uint64, n int) ([]byte, error)
	ChunkSize() int
}

// TracedStore is the optional Store extension the listener uses to
// hand a wire trace context down into the storage pipeline. Server,
// Cluster and the async front-end adapter all implement it.
type TracedStore interface {
	WriteSpan(lba uint64, data []byte, sc span.Context) error
	ReadSpan(lba uint64, sc span.Context) ([]byte, error)
	ReadRangeSpan(lba uint64, n int, sc span.Context) ([]byte, error)
}

// CompactSummary is the wire form of a GC pass result (one row per
// OpCompact ack; mirrors core.CompactResult in fixed-width types).
type CompactSummary struct {
	ContainersCompacted uint64
	ChunksMoved         uint64
	ChunksDropped       uint64
	BytesReclaimed      uint64
	BytesMoved          uint64
}

// Compactor is the optional Store extension behind OpCompact: run one
// GC pass at the given dead-fraction threshold across every group and
// return the aggregate. The async front-end adapter implements it by
// routing the pass through the worker that owns each server.
type Compactor interface {
	CompactAll(minDeadFraction float64) (CompactSummary, error)
}

// Checkpointer is the optional Store extension behind OpCheckpoint:
// persist the metadata checkpoint and truncate the WAL on every
// durable group.
type Checkpointer interface {
	CheckpointAll() error
}

// Listener serves the storage protocol over TCP in front of a chunk
// store. The core server is single-writer; by default the listener
// serializes requests across connections (as the FIDR software's
// device manager serializes the device pipeline). Fronts that
// serialize internally (the async queue adapter) can lift that with
// WithConcurrentStore.
type Listener struct {
	srv    Store
	traced TracedStore  // srv's traced surface, nil when unsupported
	comp   Compactor    // srv's GC surface, nil when unsupported
	chkpt  Checkpointer // srv's checkpoint surface, nil when unsupported
	mu     sync.Mutex
	serial bool
	ln     net.Listener

	col               *span.Collector
	requests, errLogs *metrics.Counter

	wg        sync.WaitGroup
	closed    chan struct{}
	accepting atomic.Bool // true while the accept loop is running
	logf      func(format string, args ...any)
}

// ServeOption configures a Listener at Serve time.
type ServeOption func(*Listener)

// WithSpanCollector publishes one "proto.<op>" root span per traced
// request into col, parented under the client's context.
func WithSpanCollector(col *span.Collector) ServeOption {
	return func(l *Listener) { l.col = col }
}

// WithMetrics registers the listener's own series on reg:
// proto.requests and proto.errors counters (the SLO plane's
// availability inputs).
func WithMetrics(reg *metrics.Registry) ServeOption {
	return func(l *Listener) {
		l.requests = reg.Counter("proto.requests")
		l.errLogs = reg.Counter("proto.errors")
	}
}

// WithConcurrentStore lifts the cross-connection serialization mutex.
// Only safe when the store is concurrent-safe itself (e.g. an async
// front-end whose per-group workers own the servers).
func WithConcurrentStore() ServeOption {
	return func(l *Listener) { l.serial = false }
}

// Serve starts serving on addr ("host:port"; use ":0" for an ephemeral
// port) and returns immediately. Close stops it.
func Serve(srv Store, addr string, opts ...ServeOption) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: listen: %w", err)
	}
	l := &Listener{srv: srv, ln: ln, serial: true, closed: make(chan struct{}), logf: log.Printf}
	l.traced, _ = srv.(TracedStore)
	l.comp, _ = srv.(Compactor)
	l.chkpt, _ = srv.(Checkpointer)
	for _, opt := range opts {
		opt(l)
	}
	l.accepting.Store(true)
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Accepting reports whether the accept loop is still running. It goes
// false when the loop exits for any reason — deliberate Close or an
// accept error — which is exactly the liveness condition the health
// watchdog probes: a daemon whose listener died serves nothing, however
// healthy the rest looks.
func (l *Listener) Accepting() bool { return l.accepting.Load() }

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting and waits for in-flight connections.
func (l *Listener) Close() error {
	close(l.closed)
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	defer l.accepting.Store(false)
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
				l.logf("proto: accept: %v", err)
				return
			}
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			defer conn.Close()
			if err := l.serveConn(conn); err != nil && !errors.Is(err, io.EOF) {
				l.logf("proto: connection: %v", err)
			}
		}()
	}
}

func (l *Listener) serveConn(conn net.Conn) error {
	for {
		f, err := Read(conn)
		if err != nil {
			return err
		}
		resp := l.handle(f)
		if err := Write(conn, resp); err != nil {
			return err
		}
	}
}

func (l *Listener) handle(f Frame) Frame {
	if l.serial {
		l.mu.Lock()
		defer l.mu.Unlock()
	}
	if l.requests != nil {
		l.requests.Inc()
	}
	// A traced request gets a listener root span; the store sees a child
	// context so its own spans nest under "proto.<op>". Responses echo
	// the request context so the client can verify the round trip.
	var rootID span.SpanID
	var start time.Time
	child := f.Ctx
	if f.Ctx.Valid() {
		rootID = span.NewSpanID()
		child.Parent = rootID
		start = time.Now()
	}
	resp := l.dispatch(f, child)
	resp.Ctx = f.Ctx
	if resp.Op == OpError && l.errLogs != nil {
		l.errLogs.Inc()
	}
	if rootID != 0 && f.Ctx.Sampled && l.col != nil {
		l.col.Add(span.Span{
			Trace:  f.Ctx.Trace,
			ID:     rootID,
			Parent: f.Ctx.Parent,
			Name:   "proto." + opSlug(f.Op),
			Start:  start,
			Dur:    time.Since(start),
			Bytes:  uint64(len(f.Payload)),
			LBA:    f.LBA,
		})
	}
	return resp
}

// opSlug is the span-name form of an opcode ("write-batch" -> "write_batch").
func opSlug(op Op) string {
	switch op {
	case OpWriteBatch:
		return "write_batch"
	case OpReadBatch:
		return "read_batch"
	default:
		return op.String()
	}
}

func (l *Listener) dispatch(f Frame, sc span.Context) Frame {
	traced := l.traced
	if !sc.Valid() {
		traced = nil
	}
	switch f.Op {
	case OpWrite:
		var err error
		if traced != nil {
			err = traced.WriteSpan(f.LBA, f.Payload, sc)
		} else {
			err = l.srv.Write(f.LBA, f.Payload)
		}
		if err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpAck, LBA: f.LBA}
	case OpWriteBatch:
		cs := l.srv.ChunkSize()
		if len(f.Payload) == 0 || len(f.Payload)%cs != 0 {
			return Frame{Op: OpError, LBA: f.LBA,
				Payload: []byte(fmt.Sprintf("batch payload %d not a multiple of chunk size %d", len(f.Payload), cs))}
		}
		for i := 0; i*cs < len(f.Payload); i++ {
			var err error
			if traced != nil {
				err = traced.WriteSpan(f.LBA+uint64(i), f.Payload[i*cs:(i+1)*cs], sc)
			} else {
				err = l.srv.Write(f.LBA+uint64(i), f.Payload[i*cs:(i+1)*cs])
			}
			if err != nil {
				return Frame{Op: OpError, LBA: f.LBA + uint64(i), Payload: []byte(err.Error())}
			}
		}
		return Frame{Op: OpAck, LBA: f.LBA}
	case OpRead:
		var data []byte
		var err error
		if traced != nil {
			data, err = traced.ReadSpan(f.LBA, sc)
		} else {
			data, err = l.srv.Read(f.LBA)
		}
		if err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpData, LBA: f.LBA, Payload: data}
	case OpReadBatch:
		if len(f.Payload) != 4 {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("read-batch payload must be a uint32 count")}
		}
		count := int(binary.LittleEndian.Uint32(f.Payload))
		cs := l.srv.ChunkSize()
		if count < 1 || count*cs > MaxPayload {
			return Frame{Op: OpError, LBA: f.LBA,
				Payload: []byte(fmt.Sprintf("read-batch count %d out of range", count))}
		}
		var data []byte
		var err error
		if traced != nil {
			data, err = traced.ReadRangeSpan(f.LBA, count, sc)
		} else {
			data, err = l.srv.ReadRange(f.LBA, count)
		}
		if err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpData, LBA: f.LBA, Payload: data}
	case OpCompact:
		if l.comp == nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("store does not support compaction")}
		}
		if len(f.Payload) != 8 {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("compact payload must be float64 threshold bits")}
		}
		th := math.Float64frombits(binary.LittleEndian.Uint64(f.Payload))
		if math.IsNaN(th) || th < 0 || th > 1 {
			return Frame{Op: OpError, LBA: f.LBA,
				Payload: []byte(fmt.Sprintf("compact threshold %v outside [0,1]", th))}
		}
		sum, err := l.comp.CompactAll(th)
		if err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		p := make([]byte, 40)
		for i, v := range []uint64{sum.ContainersCompacted, sum.ChunksMoved,
			sum.ChunksDropped, sum.BytesReclaimed, sum.BytesMoved} {
			binary.LittleEndian.PutUint64(p[i*8:], v)
		}
		return Frame{Op: OpAck, LBA: f.LBA, Payload: p}
	case OpCheckpoint:
		if l.chkpt == nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("store does not support checkpointing")}
		}
		if err := l.chkpt.CheckpointAll(); err != nil {
			return Frame{Op: OpError, LBA: f.LBA, Payload: []byte(err.Error())}
		}
		return Frame{Op: OpAck, LBA: f.LBA}
	default:
		return Frame{Op: OpError, LBA: f.LBA, Payload: []byte("unexpected opcode")}
	}
}

// Client is a blocking protocol client.
type Client struct {
	conn net.Conn
	mu   sync.Mutex
}

// Dial connects to a Listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends a frame and reads the response.
func (c *Client) roundTrip(f Frame) (Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := Write(c.conn, f); err != nil {
		return Frame{}, err
	}
	return Read(c.conn)
}

// WriteChunk stores one chunk at lba (write -> wait -> ack, §6.2).
func (c *Client) WriteChunk(lba uint64, data []byte) error {
	resp, err := c.roundTrip(Frame{Op: OpWrite, LBA: lba, Payload: data})
	if err != nil {
		return err
	}
	if resp.Op == OpError {
		return fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return nil
}

// WriteBatch stores len(data)/chunkSize consecutive chunks starting at
// lba in one round trip.
func (c *Client) WriteBatch(lba uint64, data []byte) error {
	resp, err := c.roundTrip(Frame{Op: OpWriteBatch, LBA: lba, Payload: data})
	if err != nil {
		return err
	}
	if resp.Op == OpError {
		return fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return nil
}

// ReadChunk fetches the chunk at lba (read -> wait -> ack with data).
func (c *Client) ReadChunk(lba uint64) ([]byte, error) {
	resp, err := c.roundTrip(Frame{Op: OpRead, LBA: lba})
	if err != nil {
		return nil, err
	}
	if resp.Op == OpError {
		return nil, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpData {
		return nil, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return resp.Payload, nil
}

// ReadBatch fetches count consecutive chunks starting at lba in one
// round trip.
func (c *Client) ReadBatch(lba uint64, count int) ([]byte, error) {
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], uint32(count))
	resp, err := c.roundTrip(Frame{Op: OpReadBatch, LBA: lba, Payload: payload[:]})
	if err != nil {
		return nil, err
	}
	if resp.Op == OpError {
		return nil, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpData {
		return nil, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return resp.Payload, nil
}

// Compact asks the server for one GC pass at the given dead-fraction
// threshold and returns the aggregate result.
func (c *Client) Compact(minDeadFraction float64) (CompactSummary, error) {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], math.Float64bits(minDeadFraction))
	resp, err := c.roundTrip(Frame{Op: OpCompact, Payload: payload[:]})
	if err != nil {
		return CompactSummary{}, err
	}
	if resp.Op == OpError {
		return CompactSummary{}, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck || len(resp.Payload) != 40 {
		return CompactSummary{}, fmt.Errorf("proto: unexpected compact response %v (%d bytes)", resp.Op, len(resp.Payload))
	}
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(resp.Payload[i*8:]) }
	return CompactSummary{
		ContainersCompacted: u(0),
		ChunksMoved:         u(1),
		ChunksDropped:       u(2),
		BytesReclaimed:      u(3),
		BytesMoved:          u(4),
	}, nil
}

// Checkpoint asks the server to persist its metadata checkpoint and
// truncate the WAL.
func (c *Client) Checkpoint() error {
	resp, err := c.roundTrip(Frame{Op: OpCheckpoint})
	if err != nil {
		return err
	}
	if resp.Op == OpError {
		return fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return nil
}

// tracedTrip mints a sampled trace context, rides it on the request,
// and verifies the server echoed it back — proof the context survived
// the wire both ways. Returns the response and the trace ID.
func (c *Client) tracedTrip(f Frame) (Frame, span.TraceID, error) {
	ctx := span.Context{Trace: span.NewTraceID(), Parent: span.NewSpanID(), Sampled: true}
	f.Ctx = ctx
	resp, err := c.roundTrip(f)
	if err != nil {
		return Frame{}, 0, err
	}
	if resp.Op != OpError && resp.Ctx.Trace != ctx.Trace {
		return Frame{}, 0, fmt.Errorf("proto: trace context lost in round trip (sent %s, got %s)",
			ctx.Trace, resp.Ctx.Trace)
	}
	return resp, ctx.Trace, nil
}

// WriteChunkTraced is WriteChunk with a fresh sampled trace context
// riding the frame; it returns the trace ID, resolvable at the
// server's /traces/spans endpoint.
func (c *Client) WriteChunkTraced(lba uint64, data []byte) (span.TraceID, error) {
	resp, id, err := c.tracedTrip(Frame{Op: OpWrite, LBA: lba, Payload: data})
	if err != nil {
		return 0, err
	}
	if resp.Op == OpError {
		return 0, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return 0, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return id, nil
}

// WriteBatchTraced is WriteBatch with a trace context; one trace ID
// covers the whole batch.
func (c *Client) WriteBatchTraced(lba uint64, data []byte) (span.TraceID, error) {
	resp, id, err := c.tracedTrip(Frame{Op: OpWriteBatch, LBA: lba, Payload: data})
	if err != nil {
		return 0, err
	}
	if resp.Op == OpError {
		return 0, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpAck {
		return 0, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return id, nil
}

// ReadChunkTraced is ReadChunk with a trace context.
func (c *Client) ReadChunkTraced(lba uint64) ([]byte, span.TraceID, error) {
	resp, id, err := c.tracedTrip(Frame{Op: OpRead, LBA: lba})
	if err != nil {
		return nil, 0, err
	}
	if resp.Op == OpError {
		return nil, 0, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpData {
		return nil, 0, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return resp.Payload, id, nil
}

// ReadBatchTraced is ReadBatch with a trace context.
func (c *Client) ReadBatchTraced(lba uint64, count int) ([]byte, span.TraceID, error) {
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], uint32(count))
	resp, id, err := c.tracedTrip(Frame{Op: OpReadBatch, LBA: lba, Payload: payload[:]})
	if err != nil {
		return nil, 0, err
	}
	if resp.Op == OpError {
		return nil, 0, fmt.Errorf("proto: server: %s", resp.Payload)
	}
	if resp.Op != OpData {
		return nil, 0, fmt.Errorf("proto: unexpected response %v", resp.Op)
	}
	return resp.Payload, id, nil
}
