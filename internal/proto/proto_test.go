package proto

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/core"
	"fidr/internal/metrics"
	"fidr/internal/trace/span"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpWrite, LBA: 42, Payload: []byte("payload")},
		{Op: OpRead, LBA: 7},
		{Op: OpAck, LBA: 9},
		{Op: OpData, LBA: 1, Payload: bytes.Repeat([]byte{0xEE}, 4096)},
		{Op: OpError, LBA: 0, Payload: []byte("boom")},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.LBA != want.LBA || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFrameValidation(t *testing.T) {
	if err := Write(io.Discard, Frame{Op: OpWrite, Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Error("oversized payload accepted")
	}
	// Bad opcode.
	var buf bytes.Buffer
	buf.Write([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Error("bad opcode accepted")
	}
	// Truncated payload.
	buf.Reset()
	Write(&buf, Frame{Op: OpWrite, LBA: 1, Payload: []byte("full payload")})
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := Read(trunc); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpWrite: "write", OpRead: "read", OpAck: "ack", OpData: "ack+data", OpError: "error",
	} {
		if op.String() != want {
			t.Errorf("%d -> %q", op, op.String())
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown op renders empty")
	}
}

func newTestListener(t *testing.T) (*Listener, *Client) {
	t.Helper()
	srv, err := core.New(core.DefaultConfig(core.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Serve(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return l, c
}

func TestEndToEndOverTCP(t *testing.T) {
	_, c := newTestListener(t)
	sh := blockcomp.NewShaper(0.5)
	want := make(map[uint64][]byte)
	for i := uint64(0); i < 50; i++ {
		data := sh.Make(i%17, 4096)
		if err := c.WriteChunk(i, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		want[i] = data
	}
	for lba, data := range want {
		got, err := c.ReadChunk(lba)
		if err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("lba %d corrupted over the wire", lba)
		}
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, c := newTestListener(t)
	if _, err := c.ReadChunk(999); err == nil {
		t.Fatal("read of unwritten LBA succeeded")
	}
	if err := c.WriteChunk(1, []byte("short")); err == nil {
		t.Fatal("short write accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	l, _ := newTestListener(t)
	sh := blockcomp.NewShaper(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			base := uint64(g) * 1000
			for i := uint64(0); i < 40; i++ {
				data := sh.Make(base+i, 4096)
				if err := c.WriteChunk(base+i, data); err != nil {
					t.Errorf("client %d write: %v", g, err)
					return
				}
				got, err := c.ReadChunk(base + i)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("client %d read corrupted", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestWriteBatchOverTCP(t *testing.T) {
	_, c := newTestListener(t)
	sh := blockcomp.NewShaper(0.5)
	var batch []byte
	for i := uint64(0); i < 8; i++ {
		batch = append(batch, sh.Make(i, 4096)...)
	}
	if err := c.WriteBatch(100, batch); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		got, err := c.ReadChunk(100 + i)
		if err != nil || !bytes.Equal(got, sh.Make(i, 4096)) {
			t.Fatalf("batched chunk %d wrong: %v", i, err)
		}
	}
	// Misaligned batches are rejected server-side.
	if err := c.WriteBatch(0, make([]byte, 100)); err == nil {
		t.Fatal("misaligned batch accepted")
	}
	if err := c.WriteBatch(0, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestOpWriteBatchString(t *testing.T) {
	if OpWriteBatch.String() != "write-batch" {
		t.Error("op string wrong")
	}
}

func TestReadBatchOverTCP(t *testing.T) {
	_, c := newTestListener(t)
	sh := blockcomp.NewShaper(0.5)
	var want []byte
	for i := uint64(0); i < 6; i++ {
		data := sh.Make(i, 4096)
		if err := c.WriteChunk(50+i, data); err != nil {
			t.Fatal(err)
		}
		want = append(want, data...)
	}
	got, err := c.ReadBatch(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("batched read mismatch")
	}
	if _, err := c.ReadBatch(50, 0); err == nil {
		t.Fatal("zero-count batch accepted")
	}
	if _, err := c.ReadBatch(9999, 2); err == nil {
		t.Fatal("unmapped batched read succeeded")
	}
	if _, err := c.ReadBatch(50, MaxPayload); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func BenchmarkWriteReadOverTCP(b *testing.B) {
	srv, err := core.New(core.DefaultConfig(core.FIDRFull))
	if err != nil {
		b.Fatal(err)
	}
	l, err := Serve(srv, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	chunk := blockcomp.NewShaper(0.5).Make(1, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteChunk(uint64(i), chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFrameTraceContextOnWire: a frame carrying a trace context
// round-trips it byte-exactly, and untraced frames stay byte-identical
// to the pre-tracing wire format.
func TestFrameTraceContextOnWire(t *testing.T) {
	ctx := span.Context{Trace: 0xDEADBEEF, Parent: 0x1234, Sampled: true}
	var buf bytes.Buffer
	if err := Write(&buf, Frame{Op: OpWrite, LBA: 5, Payload: []byte("data"), Ctx: ctx}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ctx != ctx {
		t.Fatalf("context mangled: sent %+v, got %+v", ctx, got.Ctx)
	}
	if got.Op != OpWrite || got.LBA != 5 || !bytes.Equal(got.Payload, []byte("data")) {
		t.Fatalf("frame body mangled: %+v", got)
	}

	// Untraced frames: exactly headerSize+payload bytes, flag bit clear.
	buf.Reset()
	if err := Write(&buf, Frame{Op: OpWrite, LBA: 5, Payload: []byte("data")}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != headerSize+4 {
		t.Fatalf("untraced frame is %d bytes, want %d", buf.Len(), headerSize+4)
	}
	if buf.Bytes()[0]&opTraceFlag != 0 {
		t.Fatal("untraced frame carries the trace flag")
	}
}

// TestTracedWireRoundTrip drives a traced write and read through a real
// TCP listener over a real core server and checks the span tree: the
// listener's proto root span and the server's core request span share
// the client-minted trace, with the core span parented under the proto
// span.
func TestTracedWireRoundTrip(t *testing.T) {
	srv, err := core.New(core.DefaultConfig(core.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableObservability(nil, 16)
	col := span.NewCollector(16)
	srv.SetSpanCollector(col, 0)
	reg := metrics.NewRegistry()
	l, err := Serve(srv, "127.0.0.1:0", WithSpanCollector(col), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	data := blockcomp.NewShaper(0.5).Make(1, 4096)
	id, err := c.WriteChunkTraced(3, data)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero trace ID returned")
	}
	got, rid, err := c.ReadChunkTraced(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("traced read corrupted data")
	}
	if rid == id {
		t.Fatal("write and read must mint distinct traces")
	}

	for _, tid := range []span.TraceID{id, rid} {
		spans := col.Trace(tid)
		if len(spans) == 0 {
			t.Fatalf("trace %s missing from collector", tid)
		}
		byName := map[string]span.Span{}
		for _, sp := range spans {
			byName[sp.Name] = sp
		}
		proto, ok := byName["proto.write"]
		if !ok {
			proto, ok = byName["proto.read"]
		}
		if !ok {
			t.Fatalf("trace %s has no proto root span: %v", tid, byName)
		}
		core, ok := byName["core.write"]
		if !ok {
			core, ok = byName["core.read"]
		}
		if !ok {
			t.Fatalf("trace %s has no core span: %v", tid, byName)
		}
		if core.Parent != proto.ID {
			t.Fatalf("core span parent %s != proto span ID %s", core.Parent, proto.ID)
		}
	}
	if n := reg.Counter("proto.requests").Value(); n != 2 {
		t.Fatalf("proto.requests = %d, want 2", n)
	}
	if n := reg.Counter("proto.errors").Value(); n != 0 {
		t.Fatalf("proto.errors = %d, want 0", n)
	}
}

// TestTracedBatchAndErrors: WriteBatchTraced covers the whole batch
// under one trace; traced requests that fail still echo the context
// and count as errors.
func TestTracedBatchAndErrors(t *testing.T) {
	srv, err := core.New(core.DefaultConfig(core.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableObservability(nil, 16)
	col := span.NewCollector(16)
	srv.SetSpanCollector(col, 0)
	reg := metrics.NewRegistry()
	l, err := Serve(srv, "127.0.0.1:0", WithSpanCollector(col), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	sh := blockcomp.NewShaper(0.5)
	batch := append(sh.Make(1, 4096), sh.Make(2, 4096)...)
	id, err := c.WriteBatchTraced(0, batch)
	if err != nil {
		t.Fatal(err)
	}
	var coreSpans int
	for _, sp := range col.Trace(id) {
		if sp.Name == "core.write" {
			coreSpans++
		}
	}
	if coreSpans != 2 {
		t.Fatalf("batch trace has %d core.write spans, want 2", coreSpans)
	}

	if _, _, err := c.ReadChunkTraced(9999); err == nil {
		t.Fatal("traced read of unwritten LBA succeeded")
	}
	if n := reg.Counter("proto.errors").Value(); n != 1 {
		t.Fatalf("proto.errors = %d, want 1", n)
	}
}
