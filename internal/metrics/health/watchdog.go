// Package health is the daemon's self-observability plane: where the
// rest of internal/metrics explains the workload (stage latencies,
// reduction counters, capacity ledgers), this package explains the
// process serving it. Four pieces compose:
//
//   - Runtime bridges Go runtime/metrics (heap, GC pauses, goroutines,
//     scheduler latency) into the Gatherer plane, so host-runtime
//     pressure shows up next to the storage counters on /metrics.
//   - Watchdog runs per-subsystem liveness probes (worker heartbeats,
//     fsync deadlines, accept-loop liveness, stuck-queue detection) and
//     emits watchdog_stall / watchdog_recover events on transitions.
//   - Recorder is the black-box flight recorder: a bounded on-disk ring
//     of diagnostic snapshots captured when a watchdog trips or an SLO
//     breaches, served as a tarball at /debug/bundle.
//   - Diagnose runs the `fidrcli doctor` checks over scraped inputs and
//     renders a pass/warn/fail report.
//
// Everything is stdlib-only and depends only on sibling metrics
// packages, so every layer (async front-end, WAL, proto listener, the
// daemons) can participate without import cycles.
package health

import (
	"sync"
	"sync/atomic"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/events"
)

// Heartbeat is an atomic liveness pulse owned by one worker goroutine.
// The worker calls Begin when it picks up a unit of work and End when
// the unit completes; the watchdog trips when a heartbeat has been busy
// longer than its probe deadline without a fresh Beat. An idle worker
// (nothing begun) never trips, so an empty queue is not a stall.
type Heartbeat struct {
	lastNS atomic.Int64 // wall clock of the last Beat/Begin/End
	busy   atomic.Int64 // in-flight units of work

	mu    sync.Mutex
	trace string // trace ID of the in-flight unit, when sampled
}

// Begin marks one unit of work in flight and beats. trace optionally
// names the distributed trace riding the unit ("" when untraced); a
// stall report attaches it so the operator can resolve the blocked
// request's span tree.
func (h *Heartbeat) Begin(trace string) {
	h.busy.Add(1)
	h.lastNS.Store(time.Now().UnixNano())
	h.mu.Lock()
	h.trace = trace
	h.mu.Unlock()
}

// End completes one unit of work and beats.
func (h *Heartbeat) End() {
	h.busy.Add(-1)
	h.lastNS.Store(time.Now().UnixNano())
}

// Beat refreshes the pulse without changing the busy count (for workers
// that make observable progress inside one long unit of work).
func (h *Heartbeat) Beat() { h.lastNS.Store(time.Now().UnixNano()) }

// Busy reports the in-flight unit count.
func (h *Heartbeat) Busy() int { return int(h.busy.Load()) }

// stalledFor returns how long the heartbeat has been busy without a
// beat, and the in-flight trace ID. Zero when idle.
func (h *Heartbeat) stalledFor(now time.Time) (time.Duration, string) {
	if h.busy.Load() <= 0 {
		return 0, ""
	}
	last := h.lastNS.Load()
	if last == 0 {
		return 0, ""
	}
	d := now.Sub(time.Unix(0, last))
	if d <= 0 {
		return 0, ""
	}
	h.mu.Lock()
	tr := h.trace
	h.mu.Unlock()
	return d, tr
}

// Probe is one subsystem liveness check, evaluated on every watchdog
// tick. Check returns whether the subsystem is stalled right now plus a
// human-readable detail and an optional trace ID.
type Probe struct {
	Name     string
	Deadline time.Duration
	Check    func(now time.Time) (stalled bool, detail string, trace string)
}

// HeartbeatProbe builds a probe that trips when hb has been busy longer
// than deadline without a beat.
func HeartbeatProbe(name string, hb *Heartbeat, deadline time.Duration) Probe {
	return Probe{
		Name:     name,
		Deadline: deadline,
		Check: func(now time.Time) (bool, string, string) {
			d, tr := hb.stalledFor(now)
			if d <= deadline {
				return false, "", ""
			}
			return true, "busy " + d.Round(time.Millisecond).String() + " without a heartbeat", tr
		},
	}
}

// FuncProbe builds a probe from a plain condition: fn reports (stalled,
// detail). Deadline is informational (carried into the stall event).
func FuncProbe(name string, deadline time.Duration, fn func() (bool, string)) Probe {
	return Probe{
		Name:     name,
		Deadline: deadline,
		Check: func(time.Time) (bool, string, string) {
			stalled, detail := fn()
			return stalled, detail, ""
		},
	}
}

// ProgressProbe builds a stuck-queue probe: it trips when depth has
// stayed above zero for longer than deadline while the completion
// counter has not advanced. A busy-but-draining queue never trips.
func ProgressProbe(name string, deadline time.Duration, depth func() int, completed func() uint64) Probe {
	var (
		lastDone  uint64
		stuckFrom time.Time
	)
	return Probe{
		Name:     name,
		Deadline: deadline,
		Check: func(now time.Time) (bool, string, string) {
			d, done := depth(), completed()
			if d <= 0 || done != lastDone {
				lastDone = done
				stuckFrom = time.Time{}
				return false, "", ""
			}
			if stuckFrom.IsZero() {
				stuckFrom = now
				return false, "", ""
			}
			if since := now.Sub(stuckFrom); since > deadline {
				return true, "queue depth " + itoa(d) + " with no completions for " +
					since.Round(time.Millisecond).String(), ""
			}
			return false, "", ""
		},
	}
}

// itoa avoids strconv on the tick path for the small ints probes print.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// probeState tracks one probe's transition edge.
type probeState struct {
	probe      Probe
	stalled    bool
	stallStart time.Time
}

// Watchdog evaluates registered probes on a fixed cadence and reports
// stall transitions: a watchdog_stall event (with the probe name,
// deadline and in-flight trace when available) on the healthy→stalled
// edge, a watchdog_recover event on the way back, and an optional
// OnStall callback (the flight-recorder trigger). Probes are registered
// before Run; the evaluation loop is single-goroutine, so probe Check
// closures may keep private state.
type Watchdog struct {
	mu     sync.Mutex
	probes []*probeState

	journal *events.Journal
	onStall func(probe, detail, trace string)

	stalls, recoveries *metrics.Counter
	stalledGauge       *metrics.Gauge
	ticks              *metrics.Counter
}

// NewWatchdog returns an empty watchdog.
func NewWatchdog() *Watchdog { return &Watchdog{} }

// Add registers a probe. Safe before and between ticks.
func (w *Watchdog) Add(p Probe) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.probes = append(w.probes, &probeState{probe: p})
}

// SetEventJournal attaches the journal receiving stall transitions.
func (w *Watchdog) SetEventJournal(j *events.Journal) { w.journal = j }

// OnStall registers a callback invoked (on the watchdog goroutine) for
// every healthy→stalled transition. Long work — snapshot capture — must
// be handed off so ticks keep running.
func (w *Watchdog) OnStall(fn func(probe, detail, trace string)) { w.onStall = fn }

// Instrument publishes the watchdog's own series on reg:
// health.watchdog_stalls / health.watchdog_recoveries / health.watchdog_ticks
// counters and the health.watchdog_stalled gauge (probes stalled right
// now).
func (w *Watchdog) Instrument(reg *metrics.Registry) {
	w.stalls = reg.Counter("health.watchdog_stalls")
	w.recoveries = reg.Counter("health.watchdog_recoveries")
	w.ticks = reg.Counter("health.watchdog_ticks")
	w.stalledGauge = reg.Gauge("health.watchdog_stalled")
}

// Stalled returns the names of probes currently in the stalled state.
func (w *Watchdog) Stalled() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, ps := range w.probes {
		if ps.stalled {
			out = append(out, ps.probe.Name)
		}
	}
	return out
}

// transition is one probe edge observed by a tick.
type transition struct {
	name, detail, trace string
	deadline            time.Duration
	stalledFor          time.Duration
	toStalled           bool
}

// Tick evaluates every probe once at the given time. Run calls it on
// the cadence; tests call it directly. Probe Check closures run only
// from here (one goroutine), so they may keep private state; edge state
// is mutated under the mutex so Stalled can read it concurrently, and
// events/callbacks fire after the lock is released.
func (w *Watchdog) Tick(now time.Time) {
	if w.ticks != nil {
		w.ticks.Inc()
	}
	var edges []transition
	stalledNow := 0
	w.mu.Lock()
	for _, ps := range w.probes {
		stalled, detail, tr := ps.probe.Check(now)
		if stalled {
			stalledNow++
		}
		switch {
		case stalled && !ps.stalled:
			ps.stalled = true
			ps.stallStart = now
			edges = append(edges, transition{
				name: ps.probe.Name, detail: detail, trace: tr,
				deadline: ps.probe.Deadline, toStalled: true,
			})
		case !stalled && ps.stalled:
			ps.stalled = false
			edges = append(edges, transition{
				name: ps.probe.Name, stalledFor: now.Sub(ps.stallStart),
			})
		}
	}
	w.mu.Unlock()
	if w.stalledGauge != nil {
		w.stalledGauge.Set(float64(stalledNow))
	}
	for _, e := range edges {
		if e.toStalled {
			if w.stalls != nil {
				w.stalls.Inc()
			}
			if w.journal != nil {
				w.journal.Append(events.Event{
					Type:   events.TypeWatchdogStall,
					Detail: e.name + ": " + e.detail,
					Trace:  e.trace,
					Fields: map[string]int64{
						"deadline_ms": e.deadline.Milliseconds(),
					},
				})
			}
			if w.onStall != nil {
				w.onStall(e.name, e.detail, e.trace)
			}
			continue
		}
		if w.recoveries != nil {
			w.recoveries.Inc()
		}
		if w.journal != nil {
			w.journal.Append(events.Event{
				Type:   events.TypeWatchdogRecover,
				Detail: e.name,
				Fields: map[string]int64{
					"stalled_ms": e.stalledFor.Milliseconds(),
				},
			})
		}
	}
}

// Run ticks every interval until stop is closed (same contract as
// metrics.Sampler.Run). Steady-state cost is one Check call per probe
// per tick — atomic loads and a few comparisons — so the default 250ms
// cadence stays far under 1% of a busy write path.
func (w *Watchdog) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case at := <-t.C:
			w.Tick(at)
		case <-stop:
			return
		}
	}
}
