package health

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/events"
)

// TestHeartbeatProbeTripAndRecover drives the healthy→stalled→healthy
// cycle by hand: a busy heartbeat past the deadline trips exactly once,
// journals a watchdog_stall with the in-flight trace, and journals the
// recovery once work completes.
func TestHeartbeatProbeTripAndRecover(t *testing.T) {
	hb := &Heartbeat{}
	j := events.NewJournal(16)
	w := NewWatchdog()
	w.SetEventJournal(j)
	w.Add(HeartbeatProbe("async.worker.g0", hb, 100*time.Millisecond))

	now := time.Now()
	w.Tick(now)
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("idle heartbeat reported stalled: %v", got)
	}

	hb.Begin("tr-abc123")
	w.Tick(now.Add(50 * time.Millisecond))
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("busy-within-deadline reported stalled: %v", got)
	}

	// Past the deadline: one stall edge, repeated ticks don't re-fire.
	w.Tick(now.Add(300 * time.Millisecond))
	w.Tick(now.Add(400 * time.Millisecond))
	if got := w.Stalled(); len(got) != 1 || got[0] != "async.worker.g0" {
		t.Fatalf("Stalled() = %v, want [async.worker.g0]", got)
	}
	evs := j.Since(0)
	var stalls []events.Event
	for _, ev := range evs {
		if ev.Type == events.TypeWatchdogStall {
			stalls = append(stalls, ev)
		}
	}
	if len(stalls) != 1 {
		t.Fatalf("got %d stall events, want 1: %+v", len(stalls), evs)
	}
	if stalls[0].Trace != "tr-abc123" {
		t.Errorf("stall trace = %q, want tr-abc123", stalls[0].Trace)
	}
	if !strings.HasPrefix(stalls[0].Detail, "async.worker.g0: ") {
		t.Errorf("stall detail = %q, want probe-name prefix", stalls[0].Detail)
	}
	if stalls[0].Fields["deadline_ms"] != 100 {
		t.Errorf("deadline_ms = %d, want 100", stalls[0].Fields["deadline_ms"])
	}

	hb.End()
	w.Tick(now.Add(500 * time.Millisecond))
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("recovered heartbeat still stalled: %v", got)
	}
	var recovers int
	for _, ev := range j.Since(0) {
		if ev.Type == events.TypeWatchdogRecover {
			recovers++
			if ev.Detail != "async.worker.g0" {
				t.Errorf("recover detail = %q", ev.Detail)
			}
			if ev.Fields["stalled_ms"] <= 0 {
				t.Errorf("stalled_ms = %d, want > 0", ev.Fields["stalled_ms"])
			}
		}
	}
	if recovers != 1 {
		t.Fatalf("got %d recover events, want 1", recovers)
	}
}

// TestProgressProbeStuckQueue pins the stuck-queue semantics: depth
// with advancing completions never trips; depth with frozen completions
// trips only after the deadline has elapsed.
func TestProgressProbeStuckQueue(t *testing.T) {
	depth, done := 3, uint64(0)
	w := NewWatchdog()
	w.Add(ProgressProbe("async.queue.g0", 100*time.Millisecond,
		func() int { return depth }, func() uint64 { return done }))

	now := time.Now()
	// Draining: completions advance every tick.
	for i := 0; i < 5; i++ {
		done++
		w.Tick(now.Add(time.Duration(i) * 200 * time.Millisecond))
	}
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("draining queue reported stalled: %v", got)
	}

	// Frozen: depth stays, completions stop. First tick arms, the next
	// within deadline stays healthy, past deadline trips.
	base := now.Add(time.Second)
	w.Tick(base)
	w.Tick(base.Add(50 * time.Millisecond))
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("stalled before deadline: %v", got)
	}
	w.Tick(base.Add(250 * time.Millisecond))
	if got := w.Stalled(); len(got) != 1 {
		t.Fatalf("frozen queue not stalled: %v", got)
	}

	// Draining again recovers.
	done++
	w.Tick(base.Add(300 * time.Millisecond))
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("recovered queue still stalled: %v", got)
	}

	// Empty queue never arms.
	depth = 0
	w.Tick(base.Add(time.Hour))
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("empty queue stalled: %v", got)
	}
}

// TestFuncProbeAndOnStall wires a plain condition probe and asserts the
// OnStall callback fires once per edge with the probe's name.
func TestFuncProbeAndOnStall(t *testing.T) {
	down := false
	w := NewWatchdog()
	w.Add(FuncProbe("proto.accept", time.Second, func() (bool, string) {
		return down, "accept loop exited"
	}))
	var mu sync.Mutex
	var calls []string
	w.OnStall(func(probe, detail, trace string) {
		mu.Lock()
		calls = append(calls, probe+"/"+detail)
		mu.Unlock()
	})

	now := time.Now()
	w.Tick(now)
	down = true
	w.Tick(now.Add(time.Millisecond))
	w.Tick(now.Add(2 * time.Millisecond)) // still down: no second call
	down = false
	w.Tick(now.Add(3 * time.Millisecond))
	down = true
	w.Tick(now.Add(4 * time.Millisecond)) // second distinct edge

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("OnStall fired %d times, want 2: %v", len(calls), calls)
	}
	if calls[0] != "proto.accept/accept loop exited" {
		t.Errorf("call[0] = %q", calls[0])
	}
}

// TestWatchdogInstrument checks the watchdog's own series.
func TestWatchdogInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	hb := &Heartbeat{}
	w := NewWatchdog()
	w.Instrument(reg)
	w.Add(HeartbeatProbe("p", hb, 10*time.Millisecond))

	now := time.Now()
	hb.Begin("")
	w.Tick(now.Add(time.Second))
	hb.End()
	w.Tick(now.Add(2 * time.Second))

	if v := reg.Counter("health.watchdog_stalls").Value(); v != 1 {
		t.Errorf("watchdog_stalls = %d, want 1", v)
	}
	if v := reg.Counter("health.watchdog_recoveries").Value(); v != 1 {
		t.Errorf("watchdog_recoveries = %d, want 1", v)
	}
	if v := reg.Counter("health.watchdog_ticks").Value(); v != 2 {
		t.Errorf("watchdog_ticks = %d, want 2", v)
	}
	if v := reg.Gauge("health.watchdog_stalled").Value(); v != 0 {
		t.Errorf("watchdog_stalled = %g, want 0", v)
	}
}

// TestWatchdogRunLive exercises the background loop end to end with a
// real stalled heartbeat and a tight cadence.
func TestWatchdogRunLive(t *testing.T) {
	hb := &Heartbeat{}
	j := events.NewJournal(16)
	w := NewWatchdog()
	w.SetEventJournal(j)
	w.Add(HeartbeatProbe("live", hb, 20*time.Millisecond))

	stop := make(chan struct{})
	donech := make(chan struct{})
	go func() { w.Run(5*time.Millisecond, stop); close(donech) }()

	hb.Begin("")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(w.Stalled()) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := w.Stalled(); len(got) != 1 {
		t.Fatalf("live stall not detected: %v", got)
	}
	hb.End()
	for time.Now().Before(deadline) {
		if len(w.Stalled()) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := w.Stalled(); len(got) != 0 {
		t.Fatalf("live recovery not detected: %v", got)
	}
	close(stop)
	<-donech
}
