package health

import (
	"math"
	"strings"
	"testing"

	rtm "runtime/metrics"

	"fidr/internal/metrics"
)

// TestRuntimeSnapshotNames checks the bridge exports the core runtime
// series with the right kinds on this toolchain.
func TestRuntimeSnapshotNames(t *testing.T) {
	ms := Runtime().Snapshot()
	kinds := make(map[string]string, len(ms))
	for _, m := range ms {
		kinds[m.Name] = m.Kind
	}
	for name, kind := range map[string]string{
		"runtime.goroutines": "gauge",
		"runtime.heap_bytes": "gauge",
		"runtime.gc_cycles":  "counter",
	} {
		if kinds[name] != kind {
			t.Errorf("%s kind = %q, want %q (snapshot: %v)", name, kinds[name], kind, kinds)
		}
	}
	if g, ok := metrics.FindMetric(ms, "runtime.goroutines"); !ok || g.Value < 1 {
		t.Errorf("runtime.goroutines = %+v, want >= 1", g)
	}
	// The pause/latency histograms exist on go1.20+; require at least
	// the sched-latency one so a silently-empty bridge can't pass.
	if _, ok := metrics.FindMetric(ms, "runtime.sched_latency.ns"); !ok {
		t.Errorf("runtime.sched_latency.ns missing from snapshot")
	}
}

// TestBridgeHistogram feeds a synthetic runtime histogram (seconds,
// with infinite edge buckets) through the converter and checks unit
// scaling, clamping and the summary statistics.
func TestBridgeHistogram(t *testing.T) {
	h := &rtm.Float64Histogram{
		Counts:  []uint64{0, 10, 89, 1},
		Buckets: []float64{math.Inf(-1), 0.001, 0.002, 0.004, math.Inf(1)},
	}
	s := bridgeHistogram(h, 1e9)
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	// First bucket is empty and must be skipped entirely.
	if len(s.Buckets) != 3 {
		t.Fatalf("got %d buckets, want 3: %+v", len(s.Buckets), s.Buckets)
	}
	if s.Buckets[0].Lower != 1e6 || s.Buckets[0].Upper != 2e6 {
		t.Errorf("bucket0 = [%g, %g], want [1e6, 2e6] ns", s.Buckets[0].Lower, s.Buckets[0].Upper)
	}
	// +Inf upper is clamped into the registry domain, not emitted raw.
	last := s.Buckets[len(s.Buckets)-1]
	if math.IsInf(last.Upper, 1) {
		t.Errorf("infinite upper bound leaked into snapshot: %+v", last)
	}
	if s.Min != 1e6 {
		t.Errorf("Min = %g, want 1e6", s.Min)
	}
	// p50 and p90 land in the 2-4ms bucket (cumulative 10 then 99).
	if s.P50 != 3e6 || s.P90 != 3e6 {
		t.Errorf("P50, P90 = %g, %g, want 3e6, 3e6", s.P50, s.P90)
	}
	if s.P99 != 3e6 {
		t.Errorf("P99 = %g, want 3e6 (rank 99 in cumulative 99)", s.P99)
	}
	if s.Mean <= 0 || s.Sum <= 0 {
		t.Errorf("Mean/Sum not estimated: mean=%g sum=%g", s.Mean, s.Sum)
	}
}

// TestRuntimeGaugesSurfaceOncePerCluster pins the merge-semantics
// contract: a cluster view composed the documented way (Merged over
// group registries, runtime collector mounted once at the top) surfaces
// process-wide runtime gauges exactly once, while per-group series
// still merge. A composition that mounted the collector inside each
// group would fail the count here.
func TestRuntimeGaugesSurfaceOncePerCluster(t *testing.T) {
	g0, g1 := metrics.NewRegistry(), metrics.NewRegistry()
	g0.Counter("core.writes").Add(5)
	g1.Counter("core.writes").Add(7)

	view := metrics.Multi(
		metrics.Merged(g0, g1),
		metrics.Prefixed("group0.", g0),
		metrics.Prefixed("group1.", g1),
		Runtime(),
	)
	ms := view.Snapshot()

	count := func(name string) int {
		n := 0
		for _, m := range ms {
			if m.Name == name {
				n++
			}
		}
		return n
	}
	for _, name := range []string{"runtime.goroutines", "runtime.heap_bytes", "runtime.gc_cycles"} {
		if n := count(name); n != 1 {
			t.Errorf("%s surfaces %d times in the cluster view, want exactly 1", name, n)
		}
	}
	// And the per-group plane still works next to it.
	if _, total := metrics.SumMetrics(ms, "core.writes"); total != 3 {
		// merged unprefixed + two prefixed
		t.Errorf("core.writes series count = %d, want 3", total)
	}
	if v, ok := metrics.FindMetric(ms, "core.writes"); !ok || v.Value != 12 {
		t.Errorf("merged core.writes = %+v, want 12", v)
	}
}

// TestRuntimePromExposition runs the full Prometheus lexer over an
// exposition containing every runtime/metrics-derived name plus the
// labeled build_info gauge: dots sanitize, histograms expand with one
// +Inf bucket, and the page stays scrapable.
func TestRuntimePromExposition(t *testing.T) {
	view := metrics.Multi(Runtime(), BuildInfo("v1.2.3", "abcdef0"))
	text := metrics.DumpProm(view.Snapshot())
	if err := metrics.ValidatePromText(strings.NewReader(text)); err != nil {
		t.Fatalf("runtime-derived exposition failed to lex: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_gc_cycles counter",
		"build_info{",
		`go_version="go`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "runtime_sched_latency_ns_bucket{le=\"+Inf\"}") > 1 {
		t.Errorf("duplicate +Inf bucket in sched latency expansion:\n%s", text)
	}
}

// TestBuildInfoDumpRoundTrip checks the labeled gauge renders through
// the plain-text dump and parses back with labels intact.
func TestBuildInfoDumpRoundTrip(t *testing.T) {
	ms := BuildInfo("v9", "deadbeef").Snapshot()
	text := metrics.DumpMetrics(ms)
	if !strings.Contains(text, `gauge build_info{version="v9",commit="deadbeef",go_version=`) {
		t.Fatalf("dump rendering = %q", text)
	}
	parsed := metrics.ParseMetricsText(text)
	m, ok := metrics.FindMetric(parsed, "build_info")
	if !ok || m.Value != 1 {
		t.Fatalf("parsed build_info = %+v, ok=%v", m, ok)
	}
	labels := metrics.ParseLabels(m.Labels)
	if labels["version"] != "v9" || labels["commit"] != "deadbeef" {
		t.Errorf("parsed labels = %v", labels)
	}
}
