package health

import (
	"math"
	rtm "runtime/metrics"

	"fidr/internal/metrics"
)

// Runtime bridging: the Go runtime already keeps the numbers that
// explain tail latency the workload counters can't — heap size, GC
// pause distribution, goroutine count, scheduler wakeup latency. This
// gatherer reads them with runtime/metrics at scrape time and renders
// them in the registry vocabulary (dotted names, counter/gauge/hist
// kinds), so they ride the same /metrics page, Prometheus exposition
// and sampler time series as the storage plane.
//
// Every series here is PROCESS-WIDE: one Go runtime serves all device
// groups, so these metrics must be mounted exactly once at the top of a
// composed view (metrics.Multi(clusterView, health.Runtime())), never
// inside the per-group registries that Merged sums — a cluster view
// that summed runtime.goroutines across N groups would report N× the
// truth. TestRuntimeGaugesSurfaceOncePerCluster pins this contract.

// runtimeSeries maps one runtime/metrics sample to a registry name.
type runtimeSeries struct {
	src  string // runtime/metrics key
	name string // registry name
	kind string // "counter" or "gauge" (scalars); histograms are implied
}

// runtimeScalars lists the bridged scalar series. Kinds mirror the
// runtime's own semantics: monotonic totals are counters, level
// readings are gauges.
var runtimeScalars = []runtimeSeries{
	{"/sched/goroutines:goroutines", "runtime.goroutines", "gauge"},
	{"/sched/gomaxprocs:threads", "runtime.gomaxprocs", "gauge"},
	{"/memory/classes/heap/objects:bytes", "runtime.heap_bytes", "gauge"},
	{"/memory/classes/total:bytes", "runtime.sys_bytes", "gauge"},
	{"/gc/heap/objects:objects", "runtime.heap_objects", "gauge"},
	{"/gc/heap/goal:bytes", "runtime.gc_goal_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles", "counter"},
}

// runtimeHists lists the bridged distribution series.
var runtimeHists = []runtimeSeries{
	{"/sched/pauses/total/gc:seconds", "runtime.gc_pause.ns", ""},
	{"/sched/latencies:seconds", "runtime.sched_latency.ns", ""},
}

// RuntimeCollector is a metrics.Gatherer over the Go runtime. Snapshot
// reads the runtime's own atomics (runtime/metrics.Read is designed for
// periodic sampling), so scrapes cost microseconds and never block the
// storage path.
type RuntimeCollector struct {
	samples []rtm.Sample
	scalars []runtimeSeries
	hists   []runtimeSeries
}

// Runtime builds the process-wide runtime collector. Series whose keys
// this Go version does not export are dropped silently, so the
// collector stays forward- and backward-compatible.
func Runtime() *RuntimeCollector {
	known := make(map[string]bool)
	for _, d := range rtm.All() {
		known[d.Name] = true
	}
	c := &RuntimeCollector{}
	for _, s := range runtimeScalars {
		if known[s.src] {
			c.scalars = append(c.scalars, s)
			c.samples = append(c.samples, rtm.Sample{Name: s.src})
		}
	}
	for _, s := range runtimeHists {
		if known[s.src] {
			c.hists = append(c.hists, s)
			c.samples = append(c.samples, rtm.Sample{Name: s.src})
		}
	}
	return c
}

// Snapshot implements metrics.Gatherer.
func (c *RuntimeCollector) Snapshot() []metrics.Metric {
	rtm.Read(c.samples)
	byName := make(map[string]rtm.Value, len(c.samples))
	for _, s := range c.samples {
		byName[s.Name] = s.Value
	}
	out := make([]metrics.Metric, 0, len(c.scalars)+len(c.hists))
	for _, s := range c.scalars {
		v, ok := scalarValue(byName[s.src])
		if !ok {
			continue
		}
		out = append(out, metrics.Metric{Kind: s.kind, Name: s.name, Value: v})
	}
	for _, s := range c.hists {
		v := byName[s.src]
		if v.Kind() != rtm.KindFloat64Histogram {
			continue
		}
		out = append(out, metrics.Metric{
			Kind: "hist", Name: s.name,
			Hist: bridgeHistogram(v.Float64Histogram(), 1e9),
		})
	}
	metrics.SortMetrics(out)
	return out
}

// scalarValue renders one runtime/metrics scalar as float64.
func scalarValue(v rtm.Value) (float64, bool) {
	switch v.Kind() {
	case rtm.KindUint64:
		return float64(v.Uint64()), true
	case rtm.KindFloat64:
		return v.Float64(), true
	default:
		return 0, false
	}
}

// bridgeHistogram converts a runtime/metrics float64 histogram (bucket
// boundaries in seconds) into a registry HistogramSnapshot with
// nanosecond bounds, matching the unit convention of every other ".ns"
// series. The runtime histogram carries no exact sum, so Sum/Mean are
// bucket-midpoint estimates — same error model as the registry's own
// log-linear quantiles. Infinite edge buckets are clamped to the
// registry histogram's own domain so the Prometheus expansion never
// emits a duplicate le="+Inf" series.
func bridgeHistogram(h *rtm.Float64Histogram, scale float64) metrics.HistogramSnapshot {
	var s metrics.HistogramSnapshot
	if h == nil {
		return s
	}
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := bucketEdge(h.Buckets, i, scale), bucketEdge(h.Buckets, i+1, scale)
		mid := (lo + hi) / 2
		s.Count += n
		s.Sum += mid * float64(n)
		if s.Buckets == nil || lo < s.Min {
			s.Min = lo
		}
		if hi > s.Max {
			s.Max = hi
		}
		s.Buckets = append(s.Buckets, metrics.BucketCount{Lower: lo, Upper: hi, Count: n})
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = bucketQuantile(s.Buckets, s.Count, 0.50)
	s.P90 = bucketQuantile(s.Buckets, s.Count, 0.90)
	s.P99 = bucketQuantile(s.Buckets, s.Count, 0.99)
	return s
}

// bucketEdge returns boundary i of the runtime histogram scaled into
// registry units, clamping the infinite edges into the finite domain
// the registry histograms use (0 .. MaxUint64).
func bucketEdge(bounds []float64, i int, scale float64) float64 {
	b := bounds[i] * scale
	if math.IsInf(b, -1) || b < 0 {
		return 0
	}
	if math.IsInf(b, 1) || b > math.MaxUint64 {
		return float64(math.MaxUint64)
	}
	return b
}

// bucketQuantile is the bucket-midpoint quantile over a converted
// snapshot (the same estimator metrics.Histogram uses).
func bucketQuantile(bs []metrics.BucketCount, total uint64, q float64) float64 {
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range bs {
		cum += b.Count
		if cum >= rank {
			return (b.Lower + b.Upper) / 2
		}
	}
	if n := len(bs); n > 0 {
		return (bs[n-1].Lower + bs[n-1].Upper) / 2
	}
	return 0
}
