package health

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/events"
)

// Doctor: the `fidrcli doctor` checks, factored here so they run the
// same against a live daemon's scrapes and against a flight-recorder
// bundle read offline. Diagnose takes pre-fetched inputs (no I/O, fully
// testable) and returns one CheckResult per check; RenderDoctor prints
// the pass/warn/fail report with an actionable hint per finding.

// DoctorInput carries everything the checks read. Zero-value fields
// degrade the corresponding checks to "skipped" rather than failing:
// the doctor diagnoses with whatever evidence it could fetch.
type DoctorInput struct {
	// Metrics is the parsed /metrics dump (metrics.ParseMetricsText).
	Metrics []metrics.Metric
	// Series is the /metrics/series sampler window.
	Series metrics.SeriesDump
	// Events is the /events journal tail, oldest first.
	Events []events.Event
	// Snapshots names the flight-recorder snapshots in the bundle.
	Snapshots []string
	// BundleErr records why the bundle could not be fetched ("" = ok;
	// "disabled" when the daemon runs without -health-dir).
	BundleErr string
	// FsyncP99Max is the WAL fsync p99 objective; 0 selects 100ms.
	FsyncP99Max time.Duration
}

// CheckResult is one check's verdict.
type CheckResult struct {
	Name   string
	Status string // "PASS", "WARN", "FAIL" or "SKIP"
	Detail string
	Hint   string // actionable next step, printed on WARN/FAIL
}

const (
	StatusPass = "PASS"
	StatusWarn = "WARN"
	StatusFail = "FAIL"
	StatusSkip = "SKIP"
)

// Diagnose runs every doctor check over the fetched inputs.
func Diagnose(in DoctorInput) []CheckResult {
	if in.FsyncP99Max <= 0 {
		in.FsyncP99Max = 100 * time.Millisecond
	}
	return []CheckResult{
		checkWatchdog(in),
		checkStuckQueues(in),
		checkFsync(in),
		checkGoroutines(in),
		checkHeap(in),
		checkGCPause(in),
		checkSLO(in),
		checkJournalDrops(in),
		checkSnapshots(in),
	}
}

// checkWatchdog scans the event journal for stall edges. A probe whose
// latest edge is watchdog_stall is stalled right now (FAIL); a probe
// that stalled and recovered inside the retained window is evidence of
// past trouble (WARN).
func checkWatchdog(in DoctorInput) CheckResult {
	r := CheckResult{Name: "watchdog"}
	if len(in.Events) == 0 {
		r.Status, r.Detail = StatusSkip, "no event journal available"
		return r
	}
	// Latest edge per probe name; stall Detail is "probe: detail".
	type edge struct {
		stalled bool
		at      int64
		detail  string
	}
	latest := make(map[string]edge)
	for _, ev := range in.Events {
		switch ev.Type {
		case events.TypeWatchdogStall:
			name, detail, _ := strings.Cut(ev.Detail, ": ")
			latest[name] = edge{stalled: true, at: ev.TimeUnixNano, detail: detail}
		case events.TypeWatchdogRecover:
			latest[ev.Detail] = edge{stalled: false, at: ev.TimeUnixNano}
		}
	}
	var stalled, recovered []string
	for name, e := range latest {
		if e.stalled {
			stalled = append(stalled, name+" ("+e.detail+")")
		} else {
			recovered = append(recovered, name)
		}
	}
	sort.Strings(stalled)
	sort.Strings(recovered)
	switch {
	case len(stalled) > 0:
		r.Status = StatusFail
		r.Detail = "stalled now: " + strings.Join(stalled, ", ")
		r.Hint = "fetch /debug/bundle and read goroutines.txt for the blocked stack"
	case len(recovered) > 0:
		r.Status = StatusWarn
		r.Detail = "recovered earlier: " + strings.Join(recovered, ", ")
		r.Hint = "a snapshot of the stall is retained in /debug/bundle"
	default:
		r.Status = StatusPass
		r.Detail = "no watchdog stalls in the retained journal"
	}
	return r
}

// checkStuckQueues cross-checks queue depth against throughput: work in
// flight while the windowed op rate is zero means the queues are stuck,
// independent of whether a watchdog deadline has elapsed yet.
func checkStuckQueues(in DoctorInput) CheckResult {
	r := CheckResult{Name: "queues"}
	inflight, n := metrics.SumMetrics(in.Metrics, "async.inflight")
	if n == 0 {
		r.Status, r.Detail = StatusSkip, "no async front-end metrics"
		return r
	}
	if inflight <= 0 {
		r.Status = StatusPass
		r.Detail = "queues empty"
		return r
	}
	var rate float64
	var sampled bool
	for _, s := range in.Series.Series {
		if strings.HasSuffix(s.Name, "async.writes") || strings.HasSuffix(s.Name, "async.reads") ||
			s.Name == "async.writes" || s.Name == "async.reads" {
			sampled = true
			rate += s.RatePerSec
		}
	}
	if !sampled {
		r.Status = StatusWarn
		r.Detail = fmt.Sprintf("%.0f ops in flight, no throughput series to confirm drain", inflight)
		r.Hint = "re-run with /metrics/series available (sampler enabled)"
		return r
	}
	if rate == 0 {
		r.Status = StatusFail
		r.Detail = fmt.Sprintf("%.0f ops in flight with zero windowed throughput", inflight)
		r.Hint = "workers are not draining; check watchdog events and goroutines.txt"
		return r
	}
	r.Status = StatusPass
	r.Detail = fmt.Sprintf("%.0f in flight, draining at %.1f ops/s", inflight, rate)
	return r
}

// checkFsync compares every WAL fsync histogram's p99 to the objective.
func checkFsync(in DoctorInput) CheckResult {
	r := CheckResult{Name: "wal fsync"}
	max := float64(in.FsyncP99Max.Nanoseconds())
	var worst float64
	var worstName string
	var n int
	for _, m := range in.Metrics {
		if m.Kind != "hist" || !strings.HasSuffix(m.Name, "wal.fsync_ns") || m.Hist.Count == 0 {
			continue
		}
		n++
		if m.Hist.P99 > worst {
			worst, worstName = m.Hist.P99, m.Name
		}
	}
	if n == 0 {
		r.Status, r.Detail = StatusSkip, "no WAL fsync samples"
		return r
	}
	d := time.Duration(worst)
	switch {
	case worst > 2*max:
		r.Status = StatusFail
		r.Detail = fmt.Sprintf("%s p99 %v exceeds 2x the %v objective", worstName, d.Round(time.Microsecond), in.FsyncP99Max)
		r.Hint = "the WAL device is saturated or failing; check wal.fsync_ns series and device health"
	case worst > max:
		r.Status = StatusWarn
		r.Detail = fmt.Sprintf("%s p99 %v exceeds the %v objective", worstName, d.Round(time.Microsecond), in.FsyncP99Max)
		r.Hint = "fsync tail is degrading; watch /slo burn rates"
	default:
		r.Status = StatusPass
		r.Detail = fmt.Sprintf("worst p99 %v within the %v objective", d.Round(time.Microsecond), in.FsyncP99Max)
	}
	return r
}

// checkGoroutines flags monotone goroutine growth across the sampler
// window — the classic leak signature (each stuck request parks one
// goroutine forever).
func checkGoroutines(in DoctorInput) CheckResult {
	r := CheckResult{Name: "goroutines"}
	for _, s := range in.Series.Series {
		if s.Name != "runtime.goroutines" {
			continue
		}
		if len(s.Points) < 2 {
			break
		}
		if s.Last > 2*s.Min && s.Last > s.Min+64 {
			r.Status = StatusWarn
			r.Detail = fmt.Sprintf("grew from %.0f to %.0f inside the sampler window", s.Min, s.Last)
			r.Hint = "diff goroutines.txt across two /debug/bundle snapshots to find the leak"
			return r
		}
		r.Status = StatusPass
		r.Detail = fmt.Sprintf("stable (%.0f now, window min %.0f)", s.Last, s.Min)
		return r
	}
	if m, ok := metrics.FindMetric(in.Metrics, "runtime.goroutines"); ok {
		r.Status = StatusPass
		r.Detail = fmt.Sprintf("%.0f now (no sampled window to judge growth)", m.Value)
		return r
	}
	r.Status, r.Detail = StatusSkip, "runtime metrics not exported"
	return r
}

// checkHeap flags a live heap pressing against the GC goal: the runtime
// is about to GC continuously, which shows up as pause-driven tail
// latency before anything OOMs.
func checkHeap(in DoctorInput) CheckResult {
	r := CheckResult{Name: "heap"}
	heap, ok1 := metrics.FindMetric(in.Metrics, "runtime.heap_bytes")
	goal, ok2 := metrics.FindMetric(in.Metrics, "runtime.gc_goal_bytes")
	if !ok1 || !ok2 || goal.Value <= 0 {
		r.Status, r.Detail = StatusSkip, "runtime heap metrics not exported"
		return r
	}
	frac := heap.Value / goal.Value
	if frac > 0.95 {
		r.Status = StatusWarn
		r.Detail = fmt.Sprintf("live heap %.0f MiB is %.0f%% of the GC goal", heap.Value/(1<<20), frac*100)
		r.Hint = "the process is near continuous GC; capture a bundle with -health-profile for allocation stacks"
		return r
	}
	r.Status = StatusPass
	r.Detail = fmt.Sprintf("live heap %.0f MiB at %.0f%% of the GC goal", heap.Value/(1<<20), frac*100)
	return r
}

// checkGCPause flags a GC pause p99 long enough to explain SLO-visible
// tail latency on its own.
func checkGCPause(in DoctorInput) CheckResult {
	r := CheckResult{Name: "gc pauses"}
	m, ok := metrics.FindMetric(in.Metrics, "runtime.gc_pause.ns")
	if !ok || m.Hist.Count == 0 {
		r.Status, r.Detail = StatusSkip, "no GC pause samples"
		return r
	}
	p99 := time.Duration(m.Hist.P99)
	if p99 > 50*time.Millisecond {
		r.Status = StatusWarn
		r.Detail = fmt.Sprintf("p99 pause %v", p99.Round(time.Microsecond))
		r.Hint = "GC pauses this long surface in request tails; check heap growth and GOGC"
		return r
	}
	r.Status = StatusPass
	r.Detail = fmt.Sprintf("p99 pause %v", p99.Round(time.Microsecond))
	return r
}

// checkSLO scans the journal for breach edges the same way the
// watchdog check does: an unclosed slo_breach_begin is burning now.
func checkSLO(in DoctorInput) CheckResult {
	r := CheckResult{Name: "slo"}
	if len(in.Events) == 0 {
		r.Status, r.Detail = StatusSkip, "no event journal available"
		return r
	}
	latest := make(map[string]bool) // objective detail -> breached
	for _, ev := range in.Events {
		switch ev.Type {
		case events.TypeSLOBreach:
			latest[ev.Detail] = true
		case events.TypeSLORecover:
			latest[ev.Detail] = false
		}
	}
	var burning []string
	for name, breached := range latest {
		if breached {
			burning = append(burning, name)
		}
	}
	sort.Strings(burning)
	if len(burning) > 0 {
		r.Status = StatusFail
		r.Detail = "breached now: " + strings.Join(burning, ", ")
		r.Hint = "see /slo for burn rates and the breach snapshot in /debug/bundle"
		return r
	}
	r.Status = StatusPass
	r.Detail = "no open SLO breaches in the retained journal"
	return r
}

// checkJournalDrops warns when ring wrap has discarded events: every
// other journal-based verdict is then a lower bound.
func checkJournalDrops(in DoctorInput) CheckResult {
	r := CheckResult{Name: "journal"}
	m, ok := metrics.FindMetric(in.Metrics, "events.dropped")
	if !ok {
		r.Status, r.Detail = StatusSkip, "journal stats not exported"
		return r
	}
	if m.Value > 0 {
		r.Status = StatusWarn
		r.Detail = fmt.Sprintf("%.0f events overwritten by ring wrap", m.Value)
		r.Hint = "older evidence is gone; raise -events (journal capacity) if this recurs"
		return r
	}
	r.Status = StatusPass
	r.Detail = "no events dropped"
	return r
}

// checkSnapshots reports the flight-recorder inventory.
func checkSnapshots(in DoctorInput) CheckResult {
	r := CheckResult{Name: "snapshots"}
	switch {
	case in.BundleErr == "disabled":
		r.Status = StatusWarn
		r.Detail = "flight recorder disabled (-health-dir unset)"
		r.Hint = "restart fidrd with -health-dir to retain stall evidence"
	case in.BundleErr != "":
		r.Status = StatusWarn
		r.Detail = "bundle not retrievable: " + in.BundleErr
		r.Hint = "check the daemon's /debug/bundle endpoint"
	case len(in.Snapshots) == 0:
		r.Status = StatusPass
		r.Detail = "flight recorder armed, no snapshots captured"
	default:
		r.Status = StatusPass
		r.Detail = fmt.Sprintf("%d snapshot(s) retained, newest %s",
			len(in.Snapshots), in.Snapshots[len(in.Snapshots)-1])
	}
	return r
}

// RenderDoctor prints the report and returns the FAIL and WARN counts.
// The caller maps fails > 0 to a non-zero exit status.
func RenderDoctor(w io.Writer, results []CheckResult) (fails, warns int) {
	for _, c := range results {
		fmt.Fprintf(w, "[%s] %-10s %s\n", c.Status, c.Name, c.Detail)
		if c.Hint != "" && (c.Status == StatusWarn || c.Status == StatusFail) {
			fmt.Fprintf(w, "       %*s ↳ %s\n", 0, "", c.Hint)
		}
		switch c.Status {
		case StatusFail:
			fails++
		case StatusWarn:
			warns++
		}
	}
	switch {
	case fails > 0:
		fmt.Fprintf(w, "\ndoctor: %d check(s) FAILED, %d warning(s)\n", fails, warns)
	case warns > 0:
		fmt.Fprintf(w, "\ndoctor: healthy with %d warning(s)\n", warns)
	default:
		fmt.Fprintln(w, "\ndoctor: all checks passed")
	}
	return fails, warns
}
