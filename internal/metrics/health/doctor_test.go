package health

import (
	"strings"
	"testing"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/events"
)

func resultByName(t *testing.T, rs []CheckResult, name string) CheckResult {
	t.Helper()
	for _, r := range rs {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no %q check in %+v", name, rs)
	return CheckResult{}
}

// TestDoctorStalledDaemon feeds the doctor the evidence an actually
// stalled daemon produces and checks it FAILs on the watchdog and the
// stuck queue, with hints attached.
func TestDoctorStalledDaemon(t *testing.T) {
	in := DoctorInput{
		Metrics: []metrics.Metric{
			{Kind: "gauge", Name: "async.inflight", Value: 7},
			{Kind: "gauge", Name: "events.dropped", Value: 0},
		},
		Series: metrics.SeriesDump{Series: []metrics.Series{
			{Name: "async.writes", Kind: "counter", RatePerSec: 0,
				Points: []metrics.Point{{V: 100}, {V: 100}}},
			{Name: "runtime.goroutines", Kind: "gauge", Min: 40, Last: 41,
				Points: []metrics.Point{{V: 40}, {V: 41}}},
		}},
		Events: []events.Event{
			{Seq: 1, Type: events.TypeWatchdogStall, Detail: "async.worker.g0: busy 3s without a heartbeat"},
		},
		Snapshots: []string{"snap-000001-async_worker_g0"},
	}
	rs := Diagnose(in)

	wd := resultByName(t, rs, "watchdog")
	if wd.Status != StatusFail {
		t.Errorf("watchdog = %+v, want FAIL", wd)
	}
	if !strings.Contains(wd.Detail, "async.worker.g0") || wd.Hint == "" {
		t.Errorf("watchdog detail/hint = %+v", wd)
	}
	if q := resultByName(t, rs, "queues"); q.Status != StatusFail {
		t.Errorf("queues = %+v, want FAIL", q)
	}
	if s := resultByName(t, rs, "snapshots"); s.Status != StatusPass ||
		!strings.Contains(s.Detail, "snap-000001") {
		t.Errorf("snapshots = %+v", s)
	}

	var b strings.Builder
	fails, _ := RenderDoctor(&b, rs)
	if fails != 2 {
		t.Errorf("fails = %d, want 2\n%s", fails, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "[FAIL] watchdog") || !strings.Contains(out, "↳") {
		t.Errorf("report missing FAIL line or hint:\n%s", out)
	}
	if !strings.Contains(out, "check(s) FAILED") {
		t.Errorf("report missing summary:\n%s", out)
	}
}

// TestDoctorRecoveredDaemon checks the stall→recover sequence downgrades
// the watchdog verdict to WARN and a draining queue passes.
func TestDoctorRecoveredDaemon(t *testing.T) {
	in := DoctorInput{
		Metrics: []metrics.Metric{
			{Kind: "gauge", Name: "async.inflight", Value: 2},
		},
		Series: metrics.SeriesDump{Series: []metrics.Series{
			{Name: "async.writes", Kind: "counter", RatePerSec: 350,
				Points: []metrics.Point{{V: 0}, {V: 700}}},
		}},
		Events: []events.Event{
			{Seq: 1, Type: events.TypeWatchdogStall, Detail: "async.worker.g0: busy"},
			{Seq: 2, Type: events.TypeWatchdogRecover, Detail: "async.worker.g0"},
		},
	}
	rs := Diagnose(in)
	if wd := resultByName(t, rs, "watchdog"); wd.Status != StatusWarn {
		t.Errorf("watchdog = %+v, want WARN", wd)
	}
	if q := resultByName(t, rs, "queues"); q.Status != StatusPass {
		t.Errorf("queues = %+v, want PASS", q)
	}

	var b strings.Builder
	fails, warns := RenderDoctor(&b, rs)
	if fails != 0 || warns == 0 {
		t.Errorf("fails=%d warns=%d\n%s", fails, warns, b.String())
	}
}

// TestDoctorFsyncThresholds sweeps the WAL fsync p99 across the
// objective boundaries.
func TestDoctorFsyncThresholds(t *testing.T) {
	mk := func(p99 time.Duration) DoctorInput {
		return DoctorInput{
			FsyncP99Max: 100 * time.Millisecond,
			Metrics: []metrics.Metric{{
				Kind: "hist", Name: "group0.wal.fsync_ns",
				Hist: metrics.HistogramSnapshot{Count: 10, P99: float64(p99.Nanoseconds())},
			}},
		}
	}
	for _, tc := range []struct {
		p99  time.Duration
		want string
	}{
		{10 * time.Millisecond, StatusPass},
		{150 * time.Millisecond, StatusWarn},
		{500 * time.Millisecond, StatusFail},
	} {
		rs := Diagnose(mk(tc.p99))
		if got := resultByName(t, rs, "wal fsync"); got.Status != tc.want {
			t.Errorf("p99=%v: %+v, want %s", tc.p99, got, tc.want)
		}
	}
}

// TestDoctorRuntimeChecks covers goroutine growth, heap pressure, GC
// pause and journal-drop verdicts.
func TestDoctorRuntimeChecks(t *testing.T) {
	in := DoctorInput{
		Metrics: []metrics.Metric{
			{Kind: "gauge", Name: "runtime.heap_bytes", Value: 96 << 20},
			{Kind: "gauge", Name: "runtime.gc_goal_bytes", Value: 100 << 20},
			{Kind: "hist", Name: "runtime.gc_pause.ns",
				Hist: metrics.HistogramSnapshot{Count: 5, P99: float64(80 * time.Millisecond)}},
			{Kind: "gauge", Name: "events.dropped", Value: 9},
		},
		Series: metrics.SeriesDump{Series: []metrics.Series{
			{Name: "runtime.goroutines", Kind: "gauge", Min: 50, Last: 400,
				Points: []metrics.Point{{V: 50}, {V: 400}}},
		}},
		Events: []events.Event{{Seq: 1, Type: events.TypeGCRun}},
	}
	rs := Diagnose(in)
	for name, want := range map[string]string{
		"goroutines": StatusWarn,
		"heap":       StatusWarn,
		"gc pauses":  StatusWarn,
		"journal":    StatusWarn,
		"watchdog":   StatusPass,
		"slo":        StatusPass,
	} {
		if got := resultByName(t, rs, name); got.Status != want {
			t.Errorf("%s = %+v, want %s", name, got, want)
		}
	}
}

// TestDoctorSLOBreach checks an unclosed breach edge FAILs and a closed
// one passes.
func TestDoctorSLOBreach(t *testing.T) {
	open := DoctorInput{Events: []events.Event{
		{Seq: 1, Type: events.TypeSLOBreach, Detail: "write.p99"},
	}}
	if got := resultByName(t, Diagnose(open), "slo"); got.Status != StatusFail {
		t.Errorf("open breach = %+v, want FAIL", got)
	}
	closed := DoctorInput{Events: []events.Event{
		{Seq: 1, Type: events.TypeSLOBreach, Detail: "write.p99"},
		{Seq: 2, Type: events.TypeSLORecover, Detail: "write.p99"},
	}}
	if got := resultByName(t, Diagnose(closed), "slo"); got.Status != StatusPass {
		t.Errorf("closed breach = %+v, want PASS", got)
	}
}

// TestDoctorDegradesWithoutInputs checks zero-value inputs produce SKIP
// verdicts (and a bundle-disabled WARN), never panics or FAILs.
func TestDoctorDegradesWithoutInputs(t *testing.T) {
	rs := Diagnose(DoctorInput{BundleErr: "disabled"})
	for _, r := range rs {
		if r.Status == StatusFail {
			t.Errorf("empty input produced FAIL: %+v", r)
		}
	}
	if s := resultByName(t, rs, "snapshots"); s.Status != StatusWarn ||
		!strings.Contains(s.Detail, "disabled") {
		t.Errorf("snapshots = %+v, want disabled WARN", s)
	}
	if wd := resultByName(t, rs, "watchdog"); wd.Status != StatusSkip {
		t.Errorf("watchdog = %+v, want SKIP", wd)
	}
}
