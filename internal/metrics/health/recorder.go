package health

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/events"
)

// Recorder is the black-box flight recorder. When a watchdog trips or
// an SLO breaches, Trigger captures a diagnostic snapshot — goroutine
// dump, metrics snapshot, event-journal tail, recent slow traces, and
// optionally a short CPU+mutex profile — into a bounded on-disk ring
// under Dir. Snapshots are written to a temp directory and renamed into
// place, so a crash mid-capture never leaves a half-readable snapshot,
// and the ring is pruned oldest-first past MaxSnapshots. /debug/bundle
// serves the whole ring as one tar.gz for fidrcli doctor.
type Recorder struct {
	dir          string
	maxSnapshots int
	minInterval  time.Duration
	profileFor   time.Duration

	gatherer metrics.Gatherer
	journal  *events.Journal
	slow     func() string
	build    map[string]string

	seq       atomic.Uint64
	lastNS    atomic.Int64
	capturing atomic.Bool

	captured *metrics.Counter
	skipped  *metrics.Counter
	errors   *metrics.Counter

	mu sync.Mutex // serialises prune/list against capture rename
}

// RecorderOptions configures a Recorder. Dir is required; zero values
// elsewhere pick the documented defaults.
type RecorderOptions struct {
	Dir          string
	MaxSnapshots int           // ring size; default 8
	MinInterval  time.Duration // min gap between captures; default 10s
	// ProfileDuration > 0 adds a CPU + mutex profile of that length to
	// every snapshot. Capture then takes that long; 0 disables.
	ProfileDuration time.Duration

	Gatherer metrics.Gatherer // metrics view to snapshot (may be nil)
	Journal  *events.Journal  // event journal to tail (may be nil)
	Slow     func() string    // slow-trace flight recorder dump (may be nil)
	Build    map[string]string
}

// NewRecorder creates the snapshot ring rooted at opt.Dir (created if
// missing) and resumes the sequence counter past any snapshots already
// on disk, so restarts never overwrite earlier evidence.
func NewRecorder(opt RecorderOptions) (*Recorder, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("health: recorder needs a directory")
	}
	if opt.MaxSnapshots <= 0 {
		opt.MaxSnapshots = 8
	}
	if opt.MinInterval <= 0 {
		opt.MinInterval = 10 * time.Second
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("health: recorder dir: %w", err)
	}
	r := &Recorder{
		dir:          opt.Dir,
		maxSnapshots: opt.MaxSnapshots,
		minInterval:  opt.MinInterval,
		profileFor:   opt.ProfileDuration,
		gatherer:     opt.Gatherer,
		journal:      opt.Journal,
		slow:         opt.Slow,
		build:        opt.Build,
	}
	for _, s := range r.list() {
		if s.seq > r.seq.Load() {
			r.seq.Store(s.seq)
		}
	}
	return r, nil
}

// Instrument publishes capture counters on reg.
func (r *Recorder) Instrument(reg *metrics.Registry) {
	r.captured = reg.Counter("health.snapshots")
	r.skipped = reg.Counter("health.snapshots_skipped")
	r.errors = reg.Counter("health.snapshot_errors")
}

// snapshotMeta is the meta.json written into every snapshot.
type snapshotMeta struct {
	Seq        uint64            `json:"seq"`
	Reason     string            `json:"reason"`
	Detail     string            `json:"detail,omitempty"`
	Trace      string            `json:"trace,omitempty"`
	TimeUnix   int64             `json:"time_unix"`
	GoVersion  string            `json:"go_version"`
	Goroutines int               `json:"goroutines"`
	Build      map[string]string `json:"build,omitempty"`
}

// Trigger captures one snapshot for the given reason (e.g. the probe or
// SLO name). It rate-limits to one capture per MinInterval and refuses
// to overlap an in-flight capture, so a flapping watchdog cannot turn
// the recorder into its own I/O storm. Safe from any goroutine; capture
// runs on the caller's goroutine (hand it off when calling from the
// watchdog tick loop).
func (r *Recorder) Trigger(reason, detail, trace string) (string, error) {
	now := time.Now()
	last := r.lastNS.Load()
	if last != 0 && now.Sub(time.Unix(0, last)) < r.minInterval {
		if r.skipped != nil {
			r.skipped.Inc()
		}
		return "", nil
	}
	if !r.capturing.CompareAndSwap(false, true) {
		if r.skipped != nil {
			r.skipped.Inc()
		}
		return "", nil
	}
	defer r.capturing.Store(false)
	r.lastNS.Store(now.UnixNano())

	dir, err := r.capture(now, reason, detail, trace)
	if err != nil {
		if r.errors != nil {
			r.errors.Inc()
		}
		return "", err
	}
	if r.captured != nil {
		r.captured.Inc()
	}
	if r.journal != nil {
		r.journal.Append(events.Event{
			Type:   events.TypeSnapshot,
			Detail: reason + " -> " + filepath.Base(dir),
			Trace:  trace,
		})
	}
	return dir, nil
}

// capture writes one snapshot atomically: stage under a ".tmp-" prefix,
// rename into place, prune the ring.
func (r *Recorder) capture(now time.Time, reason, detail, trace string) (string, error) {
	seq := r.seq.Add(1)
	name := fmt.Sprintf("snap-%06d-%s", seq, sanitizeReason(reason))
	tmp := filepath.Join(r.dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after the rename succeeds

	meta := snapshotMeta{
		Seq: seq, Reason: reason, Detail: detail, Trace: trace,
		TimeUnix: now.Unix(), GoVersion: runtime.Version(),
		Goroutines: runtime.NumGoroutine(), Build: r.build,
	}
	mb, _ := json.MarshalIndent(meta, "", "  ")
	if err := os.WriteFile(filepath.Join(tmp, "meta.json"), append(mb, '\n'), 0o644); err != nil {
		return "", err
	}

	var g strings.Builder
	if err := pprof.Lookup("goroutine").WriteTo(&g, 2); err == nil {
		if err := os.WriteFile(filepath.Join(tmp, "goroutines.txt"), []byte(g.String()), 0o644); err != nil {
			return "", err
		}
	}
	if r.gatherer != nil {
		txt := metrics.DumpMetrics(r.gatherer.Snapshot())
		if err := os.WriteFile(filepath.Join(tmp, "metrics.txt"), []byte(txt), 0o644); err != nil {
			return "", err
		}
	}
	if r.journal != nil {
		var b strings.Builder
		for _, ev := range r.journal.Since(0) {
			line, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(tmp, "events.jsonl"), []byte(b.String()), 0o644); err != nil {
			return "", err
		}
	}
	if r.slow != nil {
		if err := os.WriteFile(filepath.Join(tmp, "slow.txt"), []byte(r.slow()), 0o644); err != nil {
			return "", err
		}
	}
	if r.profileFor > 0 {
		if err := r.profile(tmp); err != nil {
			return "", err
		}
	}

	final := filepath.Join(r.dir, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	r.pruneLocked()
	return final, nil
}

// profile records CPU and mutex-contention profiles for profileFor.
func (r *Recorder) profile(dir string) error {
	cf, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := pprof.StartCPUProfile(cf); err != nil {
		return err
	}
	prev := runtime.SetMutexProfileFraction(5)
	time.Sleep(r.profileFor)
	pprof.StopCPUProfile()
	runtime.SetMutexProfileFraction(prev)

	mf, err := os.Create(filepath.Join(dir, "mutex.pprof"))
	if err != nil {
		return err
	}
	defer mf.Close()
	if p := pprof.Lookup("mutex"); p != nil {
		return p.WriteTo(mf, 0)
	}
	return nil
}

// snapshotDir is one on-disk snapshot as discovered by list.
type snapshotDir struct {
	name string
	seq  uint64
}

// list returns the retained snapshots sorted by sequence (oldest
// first). Staging directories and foreign files are ignored.
func (r *Recorder) list() []snapshotDir {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []snapshotDir
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "snap-") {
			continue
		}
		parts := strings.SplitN(e.Name(), "-", 3)
		if len(parts) < 2 {
			continue
		}
		seq, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, snapshotDir{name: e.Name(), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Snapshots returns the names of retained snapshots, oldest first.
func (r *Recorder) Snapshots() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for _, s := range r.list() {
		names = append(names, s.name)
	}
	return names
}

// pruneLocked drops the oldest snapshots beyond maxSnapshots.
func (r *Recorder) pruneLocked() {
	snaps := r.list()
	for len(snaps) > r.maxSnapshots {
		os.RemoveAll(filepath.Join(r.dir, snaps[0].name))
		snaps = snaps[1:]
	}
}

// ServeHTTP serves the snapshot ring as a gzipped tarball
// (health-bundle.tar.gz). ?n=<k> bounds the bundle to the k newest
// snapshots; a malformed or empty value is a 400 with a JSON error
// body, matching the rest of the metrics plane.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	limit := 0
	q := req.URL.Query()
	if q.Has("n") {
		n, err := strconv.Atoi(q.Get("n"))
		if err != nil || n <= 0 {
			metrics.HTTPBadParam(w, "n", q.Get("n"), "positive integer")
			return
		}
		limit = n
	}
	r.mu.Lock()
	snaps := r.list()
	r.mu.Unlock()
	if limit > 0 && len(snaps) > limit {
		snaps = snaps[len(snaps)-limit:]
	}

	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="health-bundle.tar.gz"`)
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, s := range snaps {
		r.tarSnapshot(tw, s.name)
	}
	tw.Close()
	gz.Close()
}

// tarSnapshot streams one snapshot directory into the tar writer. A
// snapshot pruned between list and read is skipped silently — the
// bundle is best-effort evidence, not a transactional export.
func (r *Recorder) tarSnapshot(tw *tar.Writer, name string) {
	dir := filepath.Join(r.dir, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		info, err := e.Info()
		if err != nil {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		hdr := &tar.Header{
			Name:    name + "/" + e.Name(),
			Mode:    0o644,
			Size:    info.Size(),
			ModTime: info.ModTime(),
		}
		if tw.WriteHeader(hdr) == nil {
			io.CopyN(tw, f, info.Size())
		}
		f.Close()
	}
}

// sanitizeReason maps a free-form trigger reason into a directory-name
// token.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if len(s) > 40 {
		s = s[:40]
	}
	if s == "" {
		s = "manual"
	}
	return s
}
