package health

import (
	"runtime"
	"strings"

	"fidr/internal/metrics"
)

// BuildInfo is the conventional info-style gauge: a constant 1 whose
// labels carry the build identity (version, commit, Go toolchain), so
// a Prometheus scrape — or a flight-recorder snapshot — pins exactly
// which binary produced the numbers around it. Version and commit are
// stamped by the Makefile via -ldflags; the Go version comes from the
// running toolchain.
//
// Like the runtime collector this is process-wide: mount it once at the
// top of a composed view, never inside per-group registries.
func BuildInfo(version, commit string) metrics.Gatherer {
	if version == "" {
		version = "dev"
	}
	if commit == "" {
		commit = "none"
	}
	labels := strings.Join([]string{
		metrics.LabelPair("version", version),
		metrics.LabelPair("commit", commit),
		metrics.LabelPair("go_version", runtime.Version()),
	}, ",")
	m := []metrics.Metric{{Kind: "gauge", Name: "build_info", Labels: labels, Value: 1}}
	return metrics.GathererFunc(func() []metrics.Metric {
		out := make([]metrics.Metric, len(m))
		copy(out, m)
		return out
	})
}
