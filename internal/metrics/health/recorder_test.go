package health

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/metrics/events"
)

func testRecorder(t *testing.T, opt RecorderOptions) *Recorder {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	r, err := NewRecorder(opt)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	return r
}

// TestRecorderCapture triggers one snapshot and checks every artifact
// lands: meta.json with the reason and trace, a goroutine dump, the
// metrics snapshot, the journal tail, and the slow-trace dump.
func TestRecorderCapture(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("core.writes").Add(42)
	j := events.NewJournal(8)
	j.Append(events.Event{Type: events.TypeGCRun, Detail: "seed"})

	rec := testRecorder(t, RecorderOptions{
		Gatherer: reg,
		Journal:  j,
		Slow:     func() string { return "slow-trace-dump" },
		Build:    map[string]string{"version": "v1"},
	})
	dir, err := rec.Trigger("async.worker.g0", "busy 3s", "tr-1")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	if dir == "" {
		t.Fatal("Trigger returned no directory")
	}
	if base := filepath.Base(dir); !strings.HasPrefix(base, "snap-000001-async_worker_g0") {
		t.Errorf("snapshot dir name = %q", base)
	}

	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		return string(b)
	}
	var meta snapshotMeta
	if err := json.Unmarshal([]byte(read("meta.json")), &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.Reason != "async.worker.g0" || meta.Trace != "tr-1" || meta.Seq != 1 {
		t.Errorf("meta = %+v", meta)
	}
	if meta.Goroutines < 1 || meta.GoVersion == "" {
		t.Errorf("meta runtime fields = %+v", meta)
	}
	if g := read("goroutines.txt"); !strings.Contains(g, "goroutine") {
		t.Errorf("goroutines.txt has no stacks: %q", g[:min(len(g), 80)])
	}
	if m := read("metrics.txt"); !strings.Contains(m, "counter core.writes 42") {
		t.Errorf("metrics.txt = %q", m)
	}
	if e := read("events.jsonl"); !strings.Contains(e, `"gc_run"`) {
		t.Errorf("events.jsonl = %q", e)
	}
	if s := read("slow.txt"); s != "slow-trace-dump" {
		t.Errorf("slow.txt = %q", s)
	}

	// The capture itself journals a health_snapshot event.
	var snapEvents int
	for _, ev := range j.Since(0) {
		if ev.Type == events.TypeSnapshot {
			snapEvents++
		}
	}
	if snapEvents != 1 {
		t.Errorf("health_snapshot events = %d, want 1", snapEvents)
	}
}

// TestRecorderRateLimitAndPrune checks the two bounds: MinInterval
// collapses a trigger storm into one capture, and the ring never
// retains more than MaxSnapshots directories.
func TestRecorderRateLimitAndPrune(t *testing.T) {
	rec := testRecorder(t, RecorderOptions{MaxSnapshots: 3, MinInterval: time.Hour})
	rec.Instrument(metrics.NewRegistry())
	if _, err := rec.Trigger("first", "", ""); err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	for i := 0; i < 5; i++ {
		dir, err := rec.Trigger("storm", "", "")
		if err != nil {
			t.Fatalf("Trigger storm: %v", err)
		}
		if dir != "" {
			t.Fatalf("rate limiter let capture %d through", i)
		}
	}
	if got := rec.Snapshots(); len(got) != 1 {
		t.Fatalf("snapshots after storm = %v, want 1", got)
	}

	// Re-arm by zeroing the rate limiter between captures.
	for i := 0; i < 5; i++ {
		rec.lastNS.Store(0)
		if _, err := rec.Trigger("more", "", ""); err != nil {
			t.Fatalf("Trigger more: %v", err)
		}
	}
	got := rec.Snapshots()
	if len(got) != 3 {
		t.Fatalf("ring retained %d snapshots, want 3: %v", len(got), got)
	}
	// Oldest pruned first: the survivor set is the newest three.
	if !strings.HasPrefix(got[0], "snap-000004") {
		t.Errorf("oldest retained = %q, want snap-000004*", got[0])
	}
}

// TestRecorderSequenceResumes checks a restarted recorder continues the
// sequence past on-disk snapshots instead of overwriting them.
func TestRecorderSequenceResumes(t *testing.T) {
	dir := t.TempDir()
	rec := testRecorder(t, RecorderOptions{Dir: dir})
	if _, err := rec.Trigger("before", "", ""); err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	rec2 := testRecorder(t, RecorderOptions{Dir: dir})
	d2, err := rec2.Trigger("after", "", "")
	if err != nil {
		t.Fatalf("Trigger after restart: %v", err)
	}
	if !strings.HasPrefix(filepath.Base(d2), "snap-000002") {
		t.Errorf("post-restart snapshot = %q, want seq 2", filepath.Base(d2))
	}
}

// TestBundleTarball fetches /debug/bundle and walks the tar: every
// retained snapshot appears with its files, and ?n= bounds to the
// newest snapshots.
func TestBundleTarball(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := testRecorder(t, RecorderOptions{Gatherer: reg})
	for i, reason := range []string{"one", "two"} {
		rec.lastNS.Store(0)
		if _, err := rec.Trigger(reason, "", ""); err != nil {
			t.Fatalf("Trigger %d: %v", i, err)
		}
	}

	fetch := func(url string) map[string]bool {
		req := httptest.NewRequest("GET", url, nil)
		rw := httptest.NewRecorder()
		rec.ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Fatalf("GET %s = %d: %s", url, rw.Code, rw.Body.String())
		}
		gz, err := gzip.NewReader(rw.Body)
		if err != nil {
			t.Fatalf("gzip: %v", err)
		}
		tr := tar.NewReader(gz)
		names := make(map[string]bool)
		for {
			hdr, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("tar: %v", err)
			}
			names[hdr.Name] = true
			io.Copy(io.Discard, tr)
		}
		return names
	}

	names := fetch("/debug/bundle")
	if !names["snap-000001-one/meta.json"] || !names["snap-000002-two/meta.json"] {
		t.Fatalf("bundle missing snapshots: %v", names)
	}
	if !names["snap-000002-two/metrics.txt"] || !names["snap-000002-two/goroutines.txt"] {
		t.Errorf("bundle missing snapshot files: %v", names)
	}

	only := fetch("/debug/bundle?n=1")
	if only["snap-000001-one/meta.json"] || !only["snap-000002-two/meta.json"] {
		t.Errorf("?n=1 kept the wrong snapshots: %v", only)
	}
}

// TestBundleBadParam checks malformed ?n= values 400 with a JSON body.
func TestBundleBadParam(t *testing.T) {
	rec := testRecorder(t, RecorderOptions{})
	for _, q := range []string{"?n=", "?n=zero", "?n=-1", "?n=0"} {
		req := httptest.NewRequest("GET", "/debug/bundle"+q, nil)
		rw := httptest.NewRecorder()
		rec.ServeHTTP(rw, req)
		if rw.Code != 400 {
			t.Errorf("GET %s = %d, want 400", q, rw.Code)
			continue
		}
		var body struct {
			Error string `json:"error"`
			Param string `json:"param"`
		}
		if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
			t.Errorf("GET %s body not JSON: %v (%s)", q, err, rw.Body.String())
			continue
		}
		if body.Param != "n" {
			t.Errorf("GET %s param = %q, want n", q, body.Param)
		}
	}
}

// TestRecorderProfile checks ProfileDuration adds the CPU and mutex
// profiles to the snapshot.
func TestRecorderProfile(t *testing.T) {
	rec := testRecorder(t, RecorderOptions{ProfileDuration: 50 * time.Millisecond})
	dir, err := rec.Trigger("prof", "", "")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	for _, f := range []string{"cpu.pprof", "mutex.pprof"} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err != nil || fi.Size() == 0 {
			t.Errorf("%s missing or empty (err=%v)", f, err)
		}
	}
}
