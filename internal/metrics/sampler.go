package metrics

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sampler turns a Gatherer's point-in-time scalars into bounded time
// series: a fixed-size ring of periodic samples of every counter and
// gauge (histograms are summarized by their count). The ring gives the
// live system a short memory — enough for windowed min/mean/max, rates
// and device duty cycles — at constant cost regardless of uptime, which
// is what `fidrcli top` and the /metrics/series endpoint render.
//
// Duty cycles are the paper's device-utilization figures made live: any
// counter named "*.busy_ns" is interpreted as accumulated device busy
// time, and its windowed rate divided by wall time is the device's
// utilization over the window (clamped to [0, 1]).
type Sampler struct {
	g   Gatherer
	cap int

	mu      sync.Mutex
	samples []sample // ring, oldest first after wrap
	next    int
	full    bool
}

// sample is one scrape: a timestamp plus every scalar's value.
type sample struct {
	at time.Time
	// vals maps metric name to value; histograms store their count so
	// rate-of-observations is derivable.
	vals map[string]scalar
}

type scalar struct {
	kind string
	v    float64
}

// NewSampler creates a sampler over g keeping the last capacity samples
// (<= 0 selects 300, five minutes at the default 1s interval).
func NewSampler(g Gatherer, capacity int) *Sampler {
	if capacity <= 0 {
		capacity = 300
	}
	return &Sampler{g: g, cap: capacity}
}

// Sample takes one scrape at the given time and appends it to the ring.
func (s *Sampler) Sample(at time.Time) {
	ms := s.g.Snapshot()
	vals := make(map[string]scalar, len(ms))
	for _, m := range ms {
		switch m.Kind {
		case "counter", "gauge":
			vals[m.Name] = scalar{kind: m.Kind, v: m.Value}
		case "hist":
			vals[m.Name+".count"] = scalar{kind: "counter", v: float64(m.Hist.Count)}
		}
	}
	s.mu.Lock()
	if len(s.samples) < s.cap {
		s.samples = append(s.samples, sample{at: at, vals: vals})
	} else {
		s.samples[s.next] = sample{at: at, vals: vals}
		s.next = (s.next + 1) % s.cap
		s.full = true
	}
	s.mu.Unlock()
}

// Run samples every interval until stop is closed. Call in a goroutine:
//
//	stop := make(chan struct{})
//	go sampler.Run(time.Second, stop)
func (s *Sampler) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	s.Sample(time.Now())
	for {
		select {
		case at := <-t.C:
			s.Sample(at)
		case <-stop:
			return
		}
	}
}

// Point is one sampled value.
type Point struct {
	// UnixNS is the sample time in Unix nanoseconds.
	UnixNS int64 `json:"t"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// Series is one metric's sampled history with windowed statistics.
type Series struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Points are the retained samples, oldest first.
	Points []Point `json:"points"`
	// Min, Mean and Max summarize the retained window's values.
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	// Last is the newest sampled value.
	Last float64 `json:"last"`
	// RatePerSec is the counter's windowed increase per second; 0 for
	// gauges and for windows shorter than two samples. The increase is
	// the sum of per-interval deltas with negative deltas clamped to
	// zero, so a counter reset (daemon restart mid-window) dents the
	// rate instead of zeroing or inverting it.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Duty is the windowed duty cycle for "*.busy_ns" counters:
	// busy-nanoseconds accumulated per wall-nanosecond, clamped to
	// [0, 1]. Absent for other series.
	Duty *float64 `json:"duty,omitempty"`
}

// SeriesDump is the /metrics/series response body.
type SeriesDump struct {
	// Samples is the number of retained scrapes.
	Samples int `json:"samples"`
	// WindowSeconds spans the oldest to newest retained sample.
	WindowSeconds float64  `json:"window_seconds"`
	Series        []Series `json:"series"`
}

// ordered returns the retained samples oldest first.
func (s *Sampler) ordered() []sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]sample, len(s.samples))
		copy(out, s.samples)
		return out
	}
	out := make([]sample, 0, s.cap)
	out = append(out, s.samples[s.next:]...)
	out = append(out, s.samples[:s.next]...)
	return out
}

// Dump assembles the time-series view. prefix filters series by name
// prefix ("" keeps all); last bounds points per series (<= 0 keeps all
// retained samples).
func (s *Sampler) Dump(prefix string, last int) SeriesDump {
	return s.dump(prefix, last, 0)
}

// dump is Dump plus a wall-clock window: window > 0 keeps only samples
// within that span of the newest retained sample.
func (s *Sampler) dump(prefix string, last int, window time.Duration) SeriesDump {
	samples := s.ordered()
	dump := SeriesDump{Samples: len(samples)}
	if len(samples) == 0 {
		return dump
	}
	if last > 0 && last < len(samples) {
		samples = samples[len(samples)-last:]
	}
	if window > 0 {
		cutoff := samples[len(samples)-1].at.Add(-window)
		for len(samples) > 1 && samples[0].at.Before(cutoff) {
			samples = samples[1:]
		}
	}
	dump.WindowSeconds = samples[len(samples)-1].at.Sub(samples[0].at).Seconds()

	names := make(map[string]string) // name -> kind, across the window
	for _, sm := range samples {
		for name, sc := range sm.vals {
			if strings.HasPrefix(name, prefix) {
				names[name] = sc.kind
			}
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		se := Series{Name: name, Kind: names[name]}
		var sum float64
		for _, sm := range samples {
			sc, ok := sm.vals[name]
			if !ok {
				continue
			}
			p := Point{UnixNS: sm.at.UnixNano(), V: sc.v}
			if len(se.Points) == 0 || sc.v < se.Min {
				se.Min = sc.v
			}
			if len(se.Points) == 0 || sc.v > se.Max {
				se.Max = sc.v
			}
			sum += sc.v
			se.Points = append(se.Points, p)
		}
		if len(se.Points) == 0 {
			continue
		}
		se.Mean = sum / float64(len(se.Points))
		se.Last = se.Points[len(se.Points)-1].V
		if se.Kind == "counter" && len(se.Points) >= 2 {
			first, lastP := se.Points[0], se.Points[len(se.Points)-1]
			if dt := float64(lastP.UnixNS-first.UnixNS) / 1e9; dt > 0 {
				// Windowed increase, reset-guarded: sum consecutive
				// deltas, clamping negative ones (a restarted daemon's
				// counter dropping back toward zero) to zero, so the
				// post-reset growth still counts.
				var inc float64
				for i := 1; i < len(se.Points); i++ {
					if d := se.Points[i].V - se.Points[i-1].V; d > 0 {
						inc += d
					}
				}
				se.RatePerSec = inc / dt
				if strings.HasSuffix(name, ".busy_ns") {
					duty := se.RatePerSec / 1e9
					if duty < 0 {
						duty = 0
					}
					if duty > 1 {
						duty = 1
					}
					se.Duty = &duty
				}
			}
		}
		dump.Series = append(dump.Series, se)
	}
	return dump
}

// ServeHTTP serves the JSON dump; query parameters:
//
//	prefix  keep only series whose name starts with this prefix
//	last    keep only the newest N points per series
//	window  keep only points within this span of the newest sample
//	        (Go duration syntax, e.g. 30s, 5m)
//
// Malformed values — including present-but-empty ones like ?last= — are
// a 400 with a JSON error body, never a 200 with silent defaults.
func (s *Sampler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	last := 0
	if q.Has("last") {
		n, err := strconv.Atoi(q.Get("last"))
		if err != nil || n < 0 {
			HTTPBadParam(w, "last", q.Get("last"), "non-negative integer")
			return
		}
		last = n
	}
	var window time.Duration
	if q.Has("window") {
		d, err := time.ParseDuration(q.Get("window"))
		if err != nil || d <= 0 {
			HTTPBadParam(w, "window", q.Get("window"), "positive Go duration (e.g. 30s, 5m)")
			return
		}
		window = d
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(s.dump(q.Get("prefix"), last, window))
}
