package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMetricsText is the inverse of WriteMetricsText: it parses the
// plain-text dump format back into a metric set so offline consumers —
// fidrcli doctor reading a live /metrics scrape or a flight-recorder
// metrics.txt — can run checks against the same names and kinds the
// daemon exported. Histogram lines carry only the summary statistics
// (count/mean/min/quantiles/max), so the returned snapshots have no
// buckets; that is all the dump format retains.
//
// Unknown line shapes are skipped rather than fatal: a dump from a
// newer daemon with an extra kind should degrade, not break the
// doctor.
func ParseMetricsText(text string) []Metric {
	var out []Metric
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name, labels := splitNameLabels(fields[1])
		switch fields[0] {
		case "counter", "gauge":
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				continue
			}
			out = append(out, Metric{Kind: fields[0], Name: name, Labels: labels, Value: v})
		case "hist":
			m := Metric{Kind: "hist", Name: name, Labels: labels}
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					continue
				}
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					continue
				}
				switch k {
				case "count":
					m.Hist.Count = uint64(f)
				case "mean":
					m.Hist.Mean = f
				case "min":
					m.Hist.Min = f
				case "p50":
					m.Hist.P50 = f
				case "p90":
					m.Hist.P90 = f
				case "p99":
					m.Hist.P99 = f
				case "max":
					m.Hist.Max = f
				}
			}
			out = append(out, m)
		}
	}
	return out
}

// splitNameLabels splits a dump-format name token back into name and
// label block: `build_info{version="v1"}` -> ("build_info",
// `version="v1"`).
func splitNameLabels(tok string) (name, labels string) {
	i := strings.IndexByte(tok, '{')
	if i < 0 || !strings.HasSuffix(tok, "}") {
		return tok, ""
	}
	return tok[:i], tok[i+1 : len(tok)-1]
}

// FindMetric returns the first metric with the given name.
func FindMetric(ms []Metric, name string) (Metric, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// SumMetrics sums the values of every metric whose name matches the
// given suffix or exact name — e.g. SumMetrics(ms, "async.inflight")
// adds group0.async.inflight and group1.async.inflight in a cluster
// view. Histograms contribute their count.
func SumMetrics(ms []Metric, name string) (total float64, matches int) {
	for _, m := range ms {
		if m.Name != name && !strings.HasSuffix(m.Name, "."+name) {
			continue
		}
		matches++
		if m.Kind == "hist" {
			total += float64(m.Hist.Count)
			continue
		}
		total += m.Value
	}
	return total, matches
}

// ParseLabels splits a pre-rendered label block into key/value pairs:
// `version="v1",commit="abc"` -> {version: v1, commit: abc}. Malformed
// entries are skipped.
func ParseLabels(labels string) map[string]string {
	out := make(map[string]string)
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		uq, err := strconv.Unquote(v)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(k)] = uq
	}
	return out
}

// LabelPair quotes one label assignment for a Metric.Labels block.
func LabelPair(key, value string) string {
	return fmt.Sprintf("%s=%q", key, value)
}
