package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"fidr/internal/metrics/events"
)

// SLO plane: declarative latency objectives per op class evaluated as
// rolling multi-window burn rates, in the style of the SRE-workbook
// multiwindow alerts. An Objective says "Target fraction of <Hist>
// observations complete within Threshold"; the evaluator samples the
// histogram's cumulative buckets on the same cadence as the Sampler,
// keeps a bounded ring of (good, total) counts, and derives:
//
//	error rate  bad/total over a window
//	burn rate   error rate / (1 - Target); 1.0 burns the budget
//	            exactly as fast as the objective allows
//	breached    fast AND slow windows both burning > 1 (multiwindow,
//	            so a single slow request can't page and a sustained
//	            burn can't hide)
//	budget      1 - (window error rate / budget), the fraction of the
//	            retained window's error budget still unspent
//
// Good counts come from the histogram's log-linear buckets with linear
// interpolation inside the bucket that straddles the threshold, so the
// estimate carries the same bounded relative error as the quantiles.

// Objective is one declarative latency objective.
type Objective struct {
	// Name labels the objective ("write-h", "read").
	Name string `json:"name"`
	// Hist is the latency histogram the objective evaluates
	// (nanosecond observations, e.g. "req.write.ns").
	Hist string `json:"hist"`
	// Threshold is the latency bound a request must meet to be "good".
	Threshold time.Duration `json:"threshold_ns"`
	// Target is the required good fraction in (0, 1), e.g. 0.999.
	Target float64 `json:"target"`
}

// Budget returns the objective's error budget (allowed bad fraction).
func (o Objective) Budget() float64 { return 1 - o.Target }

// DefaultObjectives returns the stock per-op-class objectives: three
// write tiers (H strict, M mid, L loose — mirroring the Write-H/M/L
// workload classes) and one read objective. Thresholds are set for the
// simulated-hardware latencies this reproduction runs at.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "write-h", Hist: "req.write.ns", Threshold: 2 * time.Millisecond, Target: 0.999},
		{Name: "write-m", Hist: "req.write.ns", Threshold: 10 * time.Millisecond, Target: 0.99},
		{Name: "write-l", Hist: "req.write.ns", Threshold: 50 * time.Millisecond, Target: 0.95},
		{Name: "read", Hist: "req.read.ns", Threshold: 20 * time.Millisecond, Target: 0.99},
	}
}

// ParseObjectives parses a declarative objective spec:
// "name:hist:threshold:target[,...]", e.g.
// "write-h:req.write.ns:2ms:99.9,read:req.read.ns:20ms:99".
// Target accepts a percentage (> 1) or a fraction (< 1).
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) != 4 {
			return nil, fmt.Errorf("slo: objective %q: want name:hist:threshold:target", part)
		}
		th, err := time.ParseDuration(f[2])
		if err != nil || th <= 0 {
			return nil, fmt.Errorf("slo: objective %q: bad threshold %q", part, f[2])
		}
		var target float64
		if _, err := fmt.Sscanf(f[3], "%g", &target); err != nil {
			return nil, fmt.Errorf("slo: objective %q: bad target %q", part, f[3])
		}
		if target > 1 {
			target /= 100
		}
		if target <= 0 || target >= 1 {
			return nil, fmt.Errorf("slo: objective %q: target must be in (0,1) or (0,100)", part)
		}
		out = append(out, Objective{Name: f[0], Hist: f[1], Threshold: th, Target: target})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty objective spec")
	}
	return out, nil
}

// Burn-rate windows: the fast window catches an active burn, the slow
// window confirms it is sustained.
const (
	sloFastWindow = time.Minute
	sloSlowWindow = 5 * time.Minute
)

// sloSample is one evaluation tick: cumulative good/total per objective.
type sloSample struct {
	at          time.Time
	good, total []float64
}

// SLO evaluates a set of objectives against a gatherer's histograms.
type SLO struct {
	g    Gatherer
	objs []Objective
	cap  int

	// Per-objective gauges, published when Instrument was called.
	budget, burnFast, burnSlow, errRate []*Gauge

	// journal receives breach-transition events when SetEventJournal was
	// called; prevBreached tracks per-objective state so only edges emit.
	// onBreach, when set, fires once per healthy→breached edge (the
	// health plane's flight-recorder trigger).
	journal      *events.Journal
	onBreach     func(objective string)
	prevBreached []bool

	mu      sync.Mutex
	samples []sloSample
	next    int
	full    bool
}

// NewSLO builds an evaluator over g retaining capacity ticks
// (<= 0 selects 300 — five minutes at a 1s cadence, covering the slow
// window).
func NewSLO(g Gatherer, objs []Objective, capacity int) *SLO {
	if capacity <= 0 {
		capacity = 300
	}
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	return &SLO{g: g, objs: append([]Objective(nil), objs...), cap: capacity}
}

// Objectives returns the evaluated objectives.
func (s *SLO) Objectives() []Objective { return append([]Objective(nil), s.objs...) }

// Instrument publishes per-objective error-budget gauges on reg:
// slo.<name>.budget_remaining, slo.<name>.burn_fast, slo.<name>.burn_slow
// and slo.<name>.err_rate, refreshed on every Sample.
func (s *SLO) Instrument(reg *Registry) {
	for _, o := range s.objs {
		s.budget = append(s.budget, reg.Gauge("slo."+o.Name+".budget_remaining"))
		s.burnFast = append(s.burnFast, reg.Gauge("slo."+o.Name+".burn_fast"))
		s.burnSlow = append(s.burnSlow, reg.Gauge("slo."+o.Name+".burn_slow"))
		s.errRate = append(s.errRate, reg.Gauge("slo."+o.Name+".err_rate"))
	}
}

// goodTotal splits a histogram snapshot at the threshold: observations
// at or under it count as good, with linear interpolation inside the
// straddling bucket.
func goodTotal(h HistogramSnapshot, thresholdNS float64) (good, total float64) {
	for _, b := range h.Buckets {
		total += float64(b.Count)
		switch {
		case b.Upper <= thresholdNS:
			good += float64(b.Count)
		case b.Lower < thresholdNS:
			frac := (thresholdNS - b.Lower) / (b.Upper - b.Lower)
			good += frac * float64(b.Count)
		}
	}
	return good, total
}

// Sample takes one evaluation tick at the given time.
func (s *SLO) Sample(at time.Time) {
	hists := make(map[string]HistogramSnapshot)
	for _, m := range s.g.Snapshot() {
		if m.Kind == "hist" {
			hists[m.Name] = m.Hist
		}
	}
	smp := sloSample{
		at:    at,
		good:  make([]float64, len(s.objs)),
		total: make([]float64, len(s.objs)),
	}
	for i, o := range s.objs {
		if h, ok := hists[o.Hist]; ok {
			smp.good[i], smp.total[i] = goodTotal(h, float64(o.Threshold.Nanoseconds()))
		}
	}
	s.mu.Lock()
	if len(s.samples) < s.cap {
		s.samples = append(s.samples, smp)
	} else {
		s.samples[s.next] = smp
		s.next = (s.next + 1) % s.cap
		s.full = true
	}
	s.mu.Unlock()
	if s.budget == nil && s.journal == nil {
		return
	}
	sts := s.Status()
	if s.budget != nil {
		for i, st := range sts {
			s.budget[i].Set(st.BudgetRemaining)
			s.burnFast[i].Set(st.BurnFast)
			s.burnSlow[i].Set(st.BurnSlow)
			s.errRate[i].Set(st.ErrorRate)
		}
	}
	if s.journal != nil || s.onBreach != nil {
		if s.prevBreached == nil {
			s.prevBreached = make([]bool, len(sts))
		}
		for i, st := range sts {
			if st.Breached != s.prevBreached[i] {
				if s.journal != nil {
					typ := events.TypeSLOBreach
					if !st.Breached {
						typ = events.TypeSLORecover
					}
					s.journal.Append(events.Event{
						Type:   typ,
						Detail: st.Name,
						Fields: map[string]int64{
							"burn_fast_milli":   int64(st.BurnFast * 1000),
							"burn_slow_milli":   int64(st.BurnSlow * 1000),
							"err_rate_milli":    int64(st.ErrorRate * 1000),
							"budget_left_milli": int64(st.BudgetRemaining * 1000),
						},
					})
				}
				if st.Breached && s.onBreach != nil {
					s.onBreach(st.Name)
				}
			}
			s.prevBreached[i] = st.Breached
		}
	}
}

// OnBreach registers a callback fired (on the Sample goroutine) once
// per healthy→breached transition; the health plane uses it to capture
// a flight-recorder snapshot while the breach evidence is still live.
// Long work must be handed off so sampling keeps its cadence.
func (s *SLO) OnBreach(fn func(objective string)) { s.onBreach = fn }

// SetEventJournal attaches a journal that receives slo_breach_begin /
// slo_breach_end events on breach-state transitions (edges only, so a
// sustained breach is one event, not one per tick).
func (s *SLO) SetEventJournal(j *events.Journal) { s.journal = j }

// Run ticks every interval until stop is closed (same contract as
// Sampler.Run; fidrd drives both from one cadence).
func (s *SLO) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	s.Sample(time.Now())
	for {
		select {
		case at := <-t.C:
			s.Sample(at)
		case <-stop:
			return
		}
	}
}

// ordered returns retained ticks oldest first.
func (s *SLO) ordered() []sloSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]sloSample, len(s.samples))
		copy(out, s.samples)
		return out
	}
	out := make([]sloSample, 0, s.cap)
	out = append(out, s.samples[s.next:]...)
	out = append(out, s.samples[:s.next]...)
	return out
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Objective
	// WindowSeconds spans the full retained evaluation window.
	WindowSeconds float64 `json:"window_seconds"`
	// Good and Total are the window's request deltas.
	Good  float64 `json:"good"`
	Total float64 `json:"total"`
	// ErrorRate is bad/total over the retained window.
	ErrorRate float64 `json:"err_rate"`
	// BurnFast/BurnSlow/BurnWindow are error rate over budget for the
	// 1m, 5m and full retained windows; 1.0 spends the budget exactly
	// as fast as the objective allows.
	BurnFast   float64 `json:"burn_fast"`
	BurnSlow   float64 `json:"burn_slow"`
	BurnWindow float64 `json:"burn_window"`
	// BudgetRemaining is the unspent fraction of the retained window's
	// error budget (negative when overspent).
	BudgetRemaining float64 `json:"budget_remaining"`
	// Breached: both multiwindow burn rates above 1.
	Breached bool `json:"breached"`
}

// errRateOver computes the error rate for objective i over the ticks
// not older than window before the newest tick. Deltas are clamped at
// zero per the counter-reset rule.
func errRateOver(samples []sloSample, i int, window time.Duration) float64 {
	if len(samples) < 2 {
		return 0
	}
	newest := samples[len(samples)-1]
	oldest := samples[0]
	if window > 0 {
		cut := newest.at.Add(-window)
		for _, smp := range samples {
			if !smp.at.Before(cut) {
				oldest = smp
				break
			}
		}
	}
	dTotal := newest.total[i] - oldest.total[i]
	dGood := newest.good[i] - oldest.good[i]
	if dTotal <= 0 {
		return 0
	}
	if dGood < 0 {
		dGood = 0
	}
	bad := dTotal - dGood
	if bad < 0 {
		bad = 0
	}
	return bad / dTotal
}

// Status evaluates every objective over the retained ticks.
func (s *SLO) Status() []ObjectiveStatus {
	samples := s.ordered()
	out := make([]ObjectiveStatus, len(s.objs))
	var window float64
	if len(samples) >= 2 {
		window = samples[len(samples)-1].at.Sub(samples[0].at).Seconds()
	}
	for i, o := range s.objs {
		st := ObjectiveStatus{Objective: o, WindowSeconds: window}
		if len(samples) >= 2 {
			st.Good = samples[len(samples)-1].good[i] - samples[0].good[i]
			st.Total = samples[len(samples)-1].total[i] - samples[0].total[i]
			if st.Good < 0 {
				st.Good = 0
			}
			if st.Total < 0 {
				st.Total = 0
			}
			st.ErrorRate = errRateOver(samples, i, 0)
			budget := o.Budget()
			st.BurnWindow = st.ErrorRate / budget
			st.BurnFast = errRateOver(samples, i, sloFastWindow) / budget
			st.BurnSlow = errRateOver(samples, i, sloSlowWindow) / budget
			// Floor at zero: a spent budget is spent, and the burn rates
			// already say how far over it ran.
			st.BudgetRemaining = 1 - st.BurnWindow
			if st.BudgetRemaining < 0 {
				st.BudgetRemaining = 0
			}
			st.Breached = st.BurnFast > 1 && st.BurnSlow > 1
		} else {
			st.BudgetRemaining = 1
		}
		out[i] = st
	}
	return out
}

// SLODump is the /slo response body.
type SLODump struct {
	WindowSeconds float64           `json:"window_seconds"`
	Objectives    []ObjectiveStatus `json:"objectives"`
}

// Dump assembles the endpoint view.
func (s *SLO) Dump() SLODump {
	sts := s.Status()
	d := SLODump{Objectives: sts}
	if len(sts) > 0 {
		d.WindowSeconds = sts[0].WindowSeconds
	}
	return d
}

// ServeHTTP serves the JSON dump at /slo.
func (s *SLO) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Dump())
}

// RenderSLO renders objective statuses with the harness table renderer
// (the `fidrcli slo` dashboard body).
func RenderSLO(d SLODump) string {
	tab := NewTable(fmt.Sprintf("service-level objectives (window %.0fs)", d.WindowSeconds),
		"objective", "target", "threshold", "good/total", "err_rate", "burn 1m", "burn 5m", "budget left", "state")
	for _, st := range d.Objectives {
		state := "ok"
		if st.Breached {
			state = "BREACHED"
		} else if st.BurnFast > 1 {
			state = "burning"
		}
		tab.Row(
			st.Name,
			fmt.Sprintf("%g%%", st.Target*100),
			st.Threshold.String(),
			fmt.Sprintf("%.0f/%.0f", st.Good, st.Total),
			fmt.Sprintf("%.4f", st.ErrorRate),
			fmt.Sprintf("%.2f", st.BurnFast),
			fmt.Sprintf("%.2f", st.BurnSlow),
			fmt.Sprintf("%.1f%%", st.BudgetRemaining*100),
			state,
		)
	}
	tab.Note("%d objectives; burn 1.0 spends the error budget exactly at the allowed rate", len(d.Objectives))
	return tab.String()
}
