package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func sampleAt(s *Sampler, base time.Time, secs ...int) {
	for _, sec := range secs {
		s.Sample(base.Add(time.Duration(sec) * time.Second))
	}
}

func findSeries(t *testing.T, d SeriesDump, name string) Series {
	t.Helper()
	for _, se := range d.Series {
		if se.Name == name {
			return se
		}
	}
	t.Fatalf("series %q not found in %d series", name, len(d.Series))
	return Series{}
}

func TestSamplerWindowStats(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dev.bytes")
	g := reg.Gauge("dev.queue_depth")
	s := NewSampler(reg, 16)
	base := time.Unix(1000, 0)

	for i, v := range []float64{4, 2, 8} {
		c.Add(1000)
		g.Set(v)
		s.Sample(base.Add(time.Duration(i) * time.Second))
	}

	d := s.Dump("", 0)
	if d.Samples != 3 {
		t.Fatalf("Samples = %d, want 3", d.Samples)
	}
	if d.WindowSeconds != 2 {
		t.Fatalf("WindowSeconds = %v, want 2", d.WindowSeconds)
	}
	q := findSeries(t, d, "dev.queue_depth")
	if q.Min != 2 || q.Max != 8 || q.Last != 8 {
		t.Fatalf("gauge window = min %v max %v last %v, want 2/8/8", q.Min, q.Max, q.Last)
	}
	if q.Mean < 4.6 || q.Mean > 4.7 {
		t.Fatalf("gauge mean = %v, want ~4.667", q.Mean)
	}
	b := findSeries(t, d, "dev.bytes")
	// 1000 -> 3000 over 2 s.
	if b.RatePerSec != 1000 {
		t.Fatalf("counter rate = %v, want 1000", b.RatePerSec)
	}
	if b.Duty != nil {
		t.Fatalf("non-busy counter got a duty cycle")
	}
}

// TestSamplerCounterReset covers a daemon restart mid-window: the
// counter drops toward zero between two samples. The negative delta
// must clamp to zero — post-reset growth still counts and the rate is
// never negative or zeroed by the end-vs-start comparison.
func TestSamplerCounterReset(t *testing.T) {
	var v float64
	g := GathererFunc(func() []Metric {
		return []Metric{{Kind: "counter", Name: "dev.ops", Value: v}}
	})
	s := NewSampler(g, 16)
	base := time.Unix(2000, 0)
	// 100 -> 180 -> (restart) 5 -> 65 over 3 s: increase 80 + 0 + 60.
	for i, val := range []float64{100, 180, 5, 65} {
		v = val
		s.Sample(base.Add(time.Duration(i) * time.Second))
	}
	se := findSeries(t, s.Dump("", 0), "dev.ops")
	want := (80.0 + 60.0) / 3.0
	if se.RatePerSec < want-1e-9 || se.RatePerSec > want+1e-9 {
		t.Fatalf("reset-guarded rate = %v, want %v", se.RatePerSec, want)
	}

	// Window that ends below its start (reset near the end): the old
	// formula (last-first)/dt went negative; now only the pre-reset
	// growth counts.
	s2 := NewSampler(g, 16)
	for i, val := range []float64{100, 160, 5} {
		v = val
		s2.Sample(base.Add(time.Duration(i) * time.Second))
	}
	se2 := findSeries(t, s2.Dump("", 0), "dev.ops")
	if se2.RatePerSec != 30 {
		t.Fatalf("rate after trailing reset = %v, want 30", se2.RatePerSec)
	}
}

func TestSamplerDutyCycle(t *testing.T) {
	reg := NewRegistry()
	busy := reg.Counter("ssd.data-ssd.busy_ns")
	s := NewSampler(reg, 8)
	base := time.Unix(0, 0)

	s.Sample(base)
	busy.Add(5e8) // 0.5 s busy over a 1 s window
	s.Sample(base.Add(time.Second))

	se := findSeries(t, s.Dump("ssd.", 0), "ssd.data-ssd.busy_ns")
	if se.Duty == nil {
		t.Fatal("busy_ns series has no duty cycle")
	}
	if *se.Duty < 0.49 || *se.Duty > 0.51 {
		t.Fatalf("duty = %v, want ~0.5", *se.Duty)
	}

	// Duty clamps at 1 even if the model accumulates busy time faster
	// than wall time (overlapping commands).
	busy.Add(10e9)
	s.Sample(base.Add(2 * time.Second))
	se = findSeries(t, s.Dump("", 0), "ssd.data-ssd.busy_ns")
	if *se.Duty != 1 {
		t.Fatalf("duty = %v, want clamped 1", *se.Duty)
	}
}

func TestSamplerRingWraps(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	s := NewSampler(reg, 4)
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		c.Add(1)
		s.Sample(base.Add(time.Duration(i) * time.Second))
	}
	d := s.Dump("", 0)
	if d.Samples != 4 {
		t.Fatalf("Samples = %d, want capacity 4", d.Samples)
	}
	se := findSeries(t, d, "n")
	if len(se.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(se.Points))
	}
	// Oldest retained sample is the 7th (counter value 7).
	if se.Points[0].V != 7 || se.Last != 10 {
		t.Fatalf("window = [%v..%v], want [7..10]", se.Points[0].V, se.Last)
	}
	for i := 1; i < len(se.Points); i++ {
		if se.Points[i].UnixNS <= se.Points[i-1].UnixNS {
			t.Fatalf("points out of order: %v", se.Points)
		}
	}
}

func TestSamplerHistogramCount(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("stage.hash.ns")
	s := NewSampler(reg, 8)
	h.Observe(10)
	h.Observe(20)
	s.Sample(time.Unix(0, 0))
	se := findSeries(t, s.Dump("", 0), "stage.hash.ns.count")
	if se.Last != 2 || se.Kind != "counter" {
		t.Fatalf("hist count series = %+v, want last 2 counter", se)
	}
}

func TestSamplerHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.bytes").Add(5)
	reg.Gauge("b.depth").Set(3)
	s := NewSampler(reg, 8)
	sampleAt(s, time.Unix(0, 0), 0, 1)

	srv := httptest.NewServer(Handler(reg, HandlerOptions{Sampler: s}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics/series?prefix=a.&last=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var d SeriesDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 1 || d.Series[0].Name != "a.bytes" {
		t.Fatalf("filtered series = %+v, want only a.bytes", d.Series)
	}
	if len(d.Series[0].Points) != 1 {
		t.Fatalf("last=1 returned %d points", len(d.Series[0].Points))
	}

	if resp, err := srv.Client().Get(srv.URL + "/metrics/series?last=x"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("bad last parameter: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestSamplerWindowParam covers the ?window= time filter: a valid
// duration trims old samples, malformed or non-positive values answer
// 400 with the uniform JSON error body naming the parameter.
func TestSamplerWindowParam(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.bytes")
	s := NewSampler(reg, 16)
	for i := 0; i < 10; i++ {
		c.Add(1)
		s.Sample(time.Unix(int64(i), 0))
	}

	srv := httptest.NewServer(Handler(reg, HandlerOptions{Sampler: s}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics/series?window=3s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("?window=3s: status %d", resp.StatusCode)
	}
	var d SeriesDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	se := findSeries(t, d, "a.bytes")
	// Samples land at t=0..9s; a 3s window from the newest keeps 6..9.
	if got := len(se.Points); got != 4 {
		t.Fatalf("3s window kept %d points, want 4 (%+v)", got, se.Points)
	}

	for _, query := range []string{"?window=", "?window=fast", "?window=-5s", "?window=0s"} {
		resp, err := srv.Client().Get(srv.URL + "/metrics/series" + query)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
			Param string `json:"param"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", query, resp.StatusCode)
			continue
		}
		if derr != nil || body.Param != "window" || body.Error == "" {
			t.Errorf("%s: error body %+v (decode err %v), want param \"window\"", query, body, derr)
		}
	}
}

func TestHandlerHealthReady(t *testing.T) {
	reg := NewRegistry()
	ready := false
	srv := httptest.NewServer(Handler(reg, HandlerOptions{Ready: func() bool { return ready }}))
	defer srv.Close()

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != 200 {
		t.Fatalf("/healthz = %d", got)
	}
	if got := get("/readyz"); got != 503 {
		t.Fatalf("/readyz before ready = %d, want 503", got)
	}
	ready = true
	if got := get("/readyz"); got != 200 {
		t.Fatalf("/readyz after ready = %d, want 200", got)
	}
}
