package metrics

import (
	"testing"
)

// TestParseMetricsTextRoundTrip dumps a mixed metric set — including a
// labeled gauge and a cluster-style group prefix — and parses it back:
// the inverse the fidrcli doctor relies on to diagnose a live daemon
// from its /metrics page.
func TestParseMetricsTextRoundTrip(t *testing.T) {
	in := []Metric{
		{Kind: "counter", Name: "core.writes", Value: 42},
		{Kind: "counter", Name: "group0.core.writes", Value: 30},
		{Kind: "counter", Name: "group1.core.writes", Value: 12},
		{Kind: "gauge", Name: "async.inflight", Value: 3},
		{Kind: "gauge", Name: "build_info",
			Labels: LabelPair("version", "v1.2") + "," + LabelPair("commit", "abc123"), Value: 1},
		{Kind: "hist", Name: "wal.fsync_ns", Hist: HistogramSnapshot{
			Count: 10, Mean: 5, Min: 1, P50: 4, P90: 8, P99: 9, Max: 12}},
	}
	out := ParseMetricsText(DumpMetrics(in))
	if len(out) != len(in) {
		t.Fatalf("parsed %d metrics from %d (out=%+v)", len(out), len(in), out)
	}

	if m, ok := FindMetric(out, "core.writes"); !ok || m.Value != 42 || m.Kind != "counter" {
		t.Errorf("core.writes = %+v, ok=%v", m, ok)
	}
	if m, ok := FindMetric(out, "wal.fsync_ns"); !ok || m.Hist.Count != 10 || m.Hist.P99 != 9 {
		t.Errorf("wal.fsync_ns = %+v, ok=%v", m, ok)
	}

	// SumMetrics folds group-prefixed series into the cluster total.
	if total, n := SumMetrics(out, "async.inflight"); total != 3 || n != 1 {
		t.Errorf("SumMetrics(async.inflight) = %v over %d", total, n)
	}
	if total, n := SumMetrics(out, "core.writes"); total != 84 || n != 3 {
		t.Errorf("SumMetrics(core.writes) = %v over %d, want 84 over 3 (merged + 2 groups)", total, n)
	}

	// Labels survive the dump format and unquote cleanly.
	m, ok := FindMetric(out, "build_info")
	if !ok || m.Value != 1 {
		t.Fatalf("build_info = %+v, ok=%v", m, ok)
	}
	labels := ParseLabels(m.Labels)
	if labels["version"] != "v1.2" || labels["commit"] != "abc123" {
		t.Errorf("build_info labels = %v", labels)
	}
}

// TestParseMetricsTextSkipsGarbage checks unknown kinds, short lines
// and prose pass through silently — the parser must tolerate a dump
// page that grows new line types.
func TestParseMetricsTextSkipsGarbage(t *testing.T) {
	text := "counter a.b 1\n" +
		"# a comment\n" +
		"summary weird 5\n" +
		"gauge\n" +
		"gauge c.d nan-ish\n" +
		"\n" +
		"gauge c.d 2\n"
	out := ParseMetricsText(text)
	if len(out) != 2 {
		t.Fatalf("parsed %+v, want just a.b and c.d", out)
	}
}
