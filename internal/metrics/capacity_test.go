package metrics

import (
	"testing"

	"fidr/internal/metrics/events"
)

func ratioValue(t *testing.T, g Gatherer, name string) float64 {
	t.Helper()
	for _, m := range g.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not derived", name)
	return 0
}

func TestCapacityRatios(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("capacity.logical_bytes").Add(1000)
	reg.Counter("capacity.dedup_saved_bytes").Add(300)
	reg.Counter("capacity.compression_saved_bytes").Add(200)
	reg.Counter("capacity.stored_bytes").Add(500)
	reg.Gauge("capacity.garbage_bytes").Set(50)
	reg.Gauge("capacity.fp_live").Set(10)
	reg.Gauge("capacity.fp_capacity").Set(40)

	d := CapacityRatios(reg)
	if got := ratioValue(t, d, "capacity.reduction_ratio"); got != 2 {
		t.Fatalf("reduction_ratio = %v, want 2", got)
	}
	if got := ratioValue(t, d, "capacity.dedup_saved_ratio"); got != 0.3 {
		t.Fatalf("dedup_saved_ratio = %v", got)
	}
	if got := ratioValue(t, d, "capacity.compression_saved_ratio"); got != 0.2 {
		t.Fatalf("compression_saved_ratio = %v", got)
	}
	if got := ratioValue(t, d, "capacity.garbage_ratio"); got != 0.1 {
		t.Fatalf("garbage_ratio = %v", got)
	}
	if got := ratioValue(t, d, "capacity.fp_occupancy"); got != 0.25 {
		t.Fatalf("fp_occupancy = %v", got)
	}
}

func TestCapacityRatiosZeroDenominators(t *testing.T) {
	// An empty registry must derive all-zero ratios, never NaN or Inf —
	// a fresh daemon's first scrape hits exactly this.
	d := CapacityRatios(NewRegistry())
	for _, name := range []string{
		"capacity.reduction_ratio", "capacity.dedup_saved_ratio",
		"capacity.compression_saved_ratio", "capacity.garbage_ratio",
		"capacity.fp_occupancy",
	} {
		if got := ratioValue(t, d, name); got != 0 {
			t.Fatalf("%s = %v on empty registry", name, got)
		}
	}
}

// Ratios derive from the cluster-merged counters: the merged view sums
// per-group capacity.* series, and the ratio reflects the sums.
func TestCapacityRatiosOverMergedView(t *testing.T) {
	g0, g1 := NewRegistry(), NewRegistry()
	g0.Counter("capacity.logical_bytes").Add(600)
	g0.Counter("capacity.stored_bytes").Add(300)
	g1.Counter("capacity.logical_bytes").Add(400)
	g1.Counter("capacity.stored_bytes").Add(200)
	d := CapacityRatios(Merged(g0, g1))
	if got := ratioValue(t, d, "capacity.reduction_ratio"); got != 2 {
		t.Fatalf("merged reduction_ratio = %v, want 2", got)
	}
}

func TestJournalStatsGatherer(t *testing.T) {
	j := events.NewJournal(2)
	for i := 0; i < 3; i++ {
		j.Append(events.Event{Type: events.TypeCheckpoint})
	}
	g := JournalStats(j)
	if got := ratioValue(t, g, "events.appended"); got != 3 {
		t.Fatalf("events.appended = %v", got)
	}
	if got := ratioValue(t, g, "events.dropped"); got != 1 {
		t.Fatalf("events.dropped = %v", got)
	}
}
