package metrics

import (
	"encoding/json"
	"net/http"
)

// HTTPBadParam is the metrics plane's uniform malformed-query response:
// HTTP 400 with a small JSON body naming the parameter, the rejected
// value and the expected shape. Every query-parameter endpoint
// (/metrics/series, /events, /capacity, /debug/bundle) uses it so a
// client can distinguish "you asked wrong" from "the answer is empty" —
// a 200 with silent defaults hides typos like ?window=5x until the
// operator wonders why the window never changes.
func HTTPBadParam(w http.ResponseWriter, param, got, want string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Param string `json:"param"`
		Got   string `json:"got"`
		Want  string `json:"want"`
	}{"bad query parameter", param, got, want})
}
