package metrics

import (
	"strings"
	"testing"
)

// countSamples counts sample lines (not TYPE/HELP comments) whose series
// name is exactly name.
func countSamples(page, name string) int {
	n := 0
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			n++
		}
	}
	return n
}

// Hostile registry keys must never yield an unscrapable exposition: the
// encoder escapes, drops or dedups them, and the resulting page always
// passes the same validator CI's check-metrics step runs.

func TestPromHostileNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`evil name{label="x"} 1`).Add(1)
	reg.Counter("newline\ninjected 42").Add(2)
	reg.Gauge("0starts.with.digit").Set(3)
	reg.Counter("ünïcödé.bytes").Add(4)
	reg.Counter("~~~").Add(5) // sanitizes to "___"
	reg.Counter("core.writes").Add(6)

	page := DumpProm(reg.Snapshot())
	if err := ValidatePromText(strings.NewReader(page)); err != nil {
		t.Fatalf("hostile names made the page unscrapable: %v\npage:\n%s", err, page)
	}
	if strings.Contains(page, "evil name") || strings.Contains(page, "injected 42") {
		t.Fatalf("raw hostile name leaked into exposition:\n%s", page)
	}
	if !strings.Contains(page, "core_writes 6") {
		t.Fatalf("well-formed metric missing from exposition:\n%s", page)
	}
}

func TestPromCollisionAfterSanitization(t *testing.T) {
	// "a.b" and "a_b" both sanitize to "a_b"; a duplicate series (and
	// duplicate TYPE line) would make the page invalid. Only one may
	// survive.
	ms := []Metric{
		{Kind: "counter", Name: "a.b", Value: 1},
		{Kind: "counter", Name: "a_b", Value: 2},
	}
	page := DumpProm(ms)
	if err := ValidatePromText(strings.NewReader(page)); err != nil {
		t.Fatalf("collision produced invalid page: %v\npage:\n%s", err, page)
	}
	if got := countSamples(page, "a_b"); got != 1 {
		t.Fatalf("want exactly one a_b sample, got %d:\n%s", got, page)
	}
}

func TestPromHistogramSuffixCollision(t *testing.T) {
	// A histogram "lat" expands to lat_bucket/lat_sum/lat_count; a scalar
	// literally named "lat_count" must not duplicate the expansion.
	h := NewHistogram()
	h.Observe(10)
	ms := []Metric{
		{Kind: "hist", Name: "lat", Hist: h.Snapshot()},
		{Kind: "counter", Name: "lat_count", Value: 99},
	}
	page := DumpProm(ms)
	if err := ValidatePromText(strings.NewReader(page)); err != nil {
		t.Fatalf("suffix collision produced invalid page: %v\npage:\n%s", err, page)
	}
	if got := countSamples(page, "lat_count"); got != 1 {
		t.Fatalf("want exactly one lat_count sample, got %d:\n%s", got, page)
	}
	// And the reverse order: scalar first reserves the name, histogram is
	// dropped whole rather than half-emitted.
	page = DumpProm([]Metric{
		{Kind: "counter", Name: "lat_count", Value: 99},
		{Kind: "hist", Name: "lat", Hist: h.Snapshot()},
	})
	if err := ValidatePromText(strings.NewReader(page)); err != nil {
		t.Fatalf("reverse suffix collision produced invalid page: %v\npage:\n%s", err, page)
	}
}

func TestPromNameDroppedWhenEmpty(t *testing.T) {
	page := DumpProm([]Metric{
		{Kind: "counter", Name: "", Value: 1},
		{Kind: "counter", Name: "ok", Value: 2},
	})
	if err := ValidatePromText(strings.NewReader(page)); err != nil {
		t.Fatalf("empty name produced invalid page: %v\npage:\n%s", err, page)
	}
}

func TestValidatePromTextRejectsBadPages(t *testing.T) {
	bad := []string{
		"",                 // no samples
		"9metric 1\n",      // name starts with digit
		"m{le=\"0.1\" 1\n", // unterminated label block
		"m 1\nm nan-ish\n", // bad value
		"# TYPE m counter\n# TYPE m counter\nm 1\n", // duplicate TYPE
		"m{=\"v\"} 1\n", // empty label name
	}
	for _, page := range bad {
		if err := ValidatePromText(strings.NewReader(page)); err == nil {
			t.Errorf("validator accepted bad page %q", page)
		}
	}
	good := "# HELP m help text\n# TYPE m counter\nm{app=\"fidr\",q=\"a\\\"b\"} 1\nn +Inf\n"
	if err := ValidatePromText(strings.NewReader(good)); err != nil {
		t.Errorf("validator rejected good page: %v", err)
	}
}

// TestValidatePromTextExemplars covers the OpenMetrics exemplar suffix
// (`# {trace_id="..."} value ts`) the histogram encoder emits for
// sampled traces: well-formed exemplars must lex, and every malformed
// variant must be rejected rather than silently skipped (the old lexer
// dropped everything after the sample value).
func TestValidatePromTextExemplars(t *testing.T) {
	good := []string{
		"m_bucket{le=\"1024\"} 5 # {trace_id=\"00c0ffee00c0ffee\"} 812 1754556000.123\n",
		"m_bucket{le=\"2048\"} 9 # {trace_id=\"abc\"} 1999\n",          // timestamp optional
		"m_bucket{le=\"+Inf\"} 9 1754556000 # {trace_id=\"abc\"} 42\n", // sample ts + exemplar
		"m 3 # {a=\"1\",b=\"x#y\"} 3.5 1.25\n",                         // '#' inside quoted value
	}
	for _, page := range good {
		if err := ValidatePromText(strings.NewReader(page)); err != nil {
			t.Errorf("validator rejected good exemplar page %q: %v", page, err)
		}
	}
	bad := []string{
		"m 1 # trace_id=\"abc\" 2\n",               // missing label block braces
		"m 1 # {trace_id=\"abc\"}\n",               // missing exemplar value
		"m 1 # {trace_id=\"abc\"} notanumber\n",    // bad exemplar value
		"m 1 # {trace_id=\"abc\"} 2 3 4\n",         // trailing garbage
		"m 1 # {trace_id=\"abc} 2\n",               // unterminated quoted value
		"m 1 # {trace_id=\"abc\"} 2 when\n",        // bad exemplar timestamp
		"m 1 # {9id=\"abc\"} 2\n",                  // invalid exemplar label name
		"m 1 # {trace_id=\"a\" 2\n",                // unterminated label block
		"m 1 2 3\n",                                // garbage after value, no exemplar
		"m 1 notatimestamp\n",                      // bad sample timestamp
		"m 1 # {trace_id=\"a\"} 2 # {b=\"c\"} 3\n", // second exemplar marker
	}
	for _, page := range bad {
		if err := ValidatePromText(strings.NewReader(page)); err == nil {
			t.Errorf("validator accepted malformed exemplar page %q", page)
		}
	}
}
