package metrics

import (
	"sort"
)

// Gatherer is anything that can produce a point-in-time metric set.
// Registry implements it directly; Prefixed, Multi, GathererFunc and
// Merged compose registries into cluster-wide views, so one HTTP
// endpoint can expose per-group, merged and derived series together.
type Gatherer interface {
	Snapshot() []Metric
}

// GathererFunc adapts a function to the Gatherer interface (used for
// derived gauges computed at scrape time from other atomics).
type GathererFunc func() []Metric

// Snapshot implements Gatherer.
func (f GathererFunc) Snapshot() []Metric { return f() }

// Prefixed exposes a gatherer's metrics under a name prefix
// ("group0." + "core.writes" -> "group0.core.writes").
func Prefixed(prefix string, g Gatherer) Gatherer {
	return GathererFunc(func() []Metric {
		ms := g.Snapshot()
		out := make([]Metric, len(ms))
		for i, m := range ms {
			m.Name = prefix + m.Name
			out[i] = m
		}
		return out
	})
}

// Multi concatenates gatherers into one deterministic view: the combined
// snapshot is re-sorted (counters, then gauges, then histograms, each by
// name), so dump ordering is stable regardless of composition order.
func Multi(gs ...Gatherer) Gatherer {
	return GathererFunc(func() []Metric {
		var out []Metric
		for _, g := range gs {
			out = append(out, g.Snapshot()...)
		}
		SortMetrics(out)
		return out
	})
}

// Merged sums the gatherers' same-named series into one unprefixed view:
// counters and gauges add, histograms merge bucket-wise. This is the
// cluster-wide aggregate over per-group registries.
func Merged(gs ...Gatherer) Gatherer {
	return GathererFunc(func() []Metric {
		snaps := make([][]Metric, len(gs))
		for i, g := range gs {
			snaps[i] = g.Snapshot()
		}
		return MergeMetrics(snaps...)
	})
}

// kindRank orders metric kinds the way Registry.Snapshot does.
func kindRank(kind string) int {
	switch kind {
	case "counter":
		return 0
	case "gauge":
		return 1
	default:
		return 2
	}
}

// SortMetrics sorts in place into the canonical dump order: counters,
// then gauges, then histograms, each group sorted by name.
func SortMetrics(ms []Metric) {
	sort.SliceStable(ms, func(i, j int) bool {
		if a, b := kindRank(ms[i].Kind), kindRank(ms[j].Kind); a != b {
			return a < b
		}
		return ms[i].Name < ms[j].Name
	})
}

// MergeMetrics folds metric snapshots by name: counters and gauges sum,
// histograms merge bucket-wise. The result is in canonical sorted order.
func MergeMetrics(snaps ...[]Metric) []Metric {
	merged := make(map[string]Metric)
	for _, snap := range snaps {
		for _, m := range snap {
			prev, ok := merged[m.Name]
			if !ok {
				merged[m.Name] = m
				continue
			}
			switch m.Kind {
			case "hist":
				prev.Hist = MergeHistogramSnapshots(prev.Hist, m.Hist)
			default:
				prev.Value += m.Value
			}
			merged[m.Name] = prev
		}
	}
	out := make([]Metric, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	SortMetrics(out)
	return out
}
