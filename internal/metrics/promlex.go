package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-exposition lexer: a minimal validator for the v0.0.4
// format WriteProm emits. CI's check-metrics step scrapes a live fidrd
// and runs this over the page, so an encoder regression (invalid name,
// duplicate series, malformed sample) fails the build instead of
// silently producing an unscrapable endpoint.

// promNameValid reports whether s is a valid Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promLabelNameValid reports whether s is a valid label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lexPromSample splits one sample line into (series name, rest after the
// optional label block). It validates the label block syntax.
func lexPromSample(line string) (name, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("no value on line %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				if inQuote {
					j++ // skip the escaped rune
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("unterminated label block in %q", line)
		}
		if err := lexPromLabels(rest[1:end]); err != nil {
			return "", "", fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", "", fmt.Errorf("no value on line %q", line)
	}
	// A timestamp may follow the value; WriteProm never emits one, but
	// accept it for generality.
	if f := strings.Fields(value); len(f) > 0 {
		value = f[0]
	}
	return name, value, nil
}

// lexPromLabels validates a comma-separated label list (the text between
// the braces).
func lexPromLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '='")
		}
		if !promLabelNameValid(s[:eq]) {
			return fmt.Errorf("invalid label name %q", s[:eq])
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		end := -1
		for j := 1; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		s = s[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("garbage after label value")
			}
			s = s[1:]
		}
	}
	return nil
}

// ValidatePromText lexes a Prometheus text exposition page, returning an
// error describing the first malformed line, invalid metric name,
// unparsable sample value, or duplicate TYPE declaration. A nil return
// means a Prometheus scraper would accept the page.
func ValidatePromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := make(map[string]bool)
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && (f[1] == "TYPE" || f[1] == "HELP") {
				if len(f) < 3 || !promNameValid(f[2]) {
					return fmt.Errorf("line %d: malformed %s comment %q", lineNo, f[1], line)
				}
				if f[1] == "TYPE" {
					if typed[f[2]] {
						return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, f[2])
					}
					typed[f[2]] = true
				}
			}
			continue
		}
		name, value, err := lexPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !promNameValid(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		switch value {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}
