package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-exposition lexer: a minimal validator for the v0.0.4
// format WriteProm emits. CI's check-metrics step scrapes a live fidrd
// and runs this over the page, so an encoder regression (invalid name,
// duplicate series, malformed sample) fails the build instead of
// silently producing an unscrapable endpoint.

// promNameValid reports whether s is a valid Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promLabelNameValid reports whether s is a valid label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lexBraceBlock consumes a quote-aware "{...}" block at the start of s,
// returning the text between the braces and whatever follows the
// closing brace.
func lexBraceBlock(s string) (inner, rest string, err error) {
	if s == "" || s[0] != '{' {
		return "", "", fmt.Errorf("expected '{'")
	}
	end := -1
	inQuote := false
	for j := 1; j < len(s); j++ {
		switch s[j] {
		case '\\':
			if inQuote {
				j++ // skip the escaped rune
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				end = j
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return "", "", fmt.Errorf("unterminated label block")
	}
	return s[1:end], s[end+1:], nil
}

// lexPromSample splits one sample line into (series name, sample value).
// It validates the label block syntax, an optional trailing timestamp,
// and an optional OpenMetrics exemplar
// (`# {trace_id="..."} value [ts]`) after the value.
func lexPromSample(line string) (name, value string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("no value on line %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		inner, after, berr := lexBraceBlock(rest)
		if berr != nil {
			return "", "", fmt.Errorf("%v in %q", berr, line)
		}
		if err := lexPromLabels(inner); err != nil {
			return "", "", fmt.Errorf("%v in %q", err, line)
		}
		rest = after
	}
	value = strings.TrimSpace(rest)
	// An exemplar may follow the value (and optional timestamp): the
	// OpenMetrics form is "# {labels} value [ts]". Quoted label values
	// may themselves contain '#', but the exemplar marker always
	// precedes the label block, so the first '#' on the remainder of a
	// sample line starts the exemplar.
	if hash := strings.IndexByte(value, '#'); hash >= 0 {
		ex := strings.TrimSpace(value[hash+1:])
		value = strings.TrimSpace(value[:hash])
		if err := lexPromExemplar(ex); err != nil {
			return "", "", fmt.Errorf("%v in %q", err, line)
		}
	}
	if value == "" {
		return "", "", fmt.Errorf("no value on line %q", line)
	}
	f := strings.Fields(value)
	if len(f) > 2 {
		return "", "", fmt.Errorf("trailing garbage after sample value in %q", line)
	}
	if len(f) == 2 {
		// Optional timestamp: must at least be numeric.
		if _, perr := strconv.ParseFloat(f[1], 64); perr != nil {
			return "", "", fmt.Errorf("bad sample timestamp %q in %q", f[1], line)
		}
	}
	return name, f[0], nil
}

// lexPromExemplar validates the text after the '#' exemplar marker:
// a label block ({trace_id="..."}), an exemplar value, and an optional
// timestamp.
func lexPromExemplar(s string) error {
	inner, rest, err := lexBraceBlock(s)
	if err != nil {
		return fmt.Errorf("exemplar: %v", err)
	}
	if err := lexPromLabels(inner); err != nil {
		return fmt.Errorf("exemplar: %v", err)
	}
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 {
		return fmt.Errorf("exemplar needs 'value [timestamp]', got %q", strings.TrimSpace(rest))
	}
	if err := promValueValid(f[0]); err != nil {
		return fmt.Errorf("exemplar: %v", err)
	}
	if len(f) == 2 {
		if _, perr := strconv.ParseFloat(f[1], 64); perr != nil {
			return fmt.Errorf("exemplar: bad timestamp %q", f[1])
		}
	}
	return nil
}

// promValueValid checks a sample value the way a scraper would.
func promValueValid(v string) error {
	switch v {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	if _, err := strconv.ParseFloat(v, 64); err != nil {
		return fmt.Errorf("bad sample value %q", v)
	}
	return nil
}

// lexPromLabels validates a comma-separated label list (the text between
// the braces).
func lexPromLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '='")
		}
		if !promLabelNameValid(s[:eq]) {
			return fmt.Errorf("invalid label name %q", s[:eq])
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		end := -1
		for j := 1; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		s = s[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("garbage after label value")
			}
			s = s[1:]
		}
	}
	return nil
}

// ValidatePromText lexes a Prometheus text exposition page, returning an
// error describing the first malformed line, invalid metric name,
// unparsable sample value, or duplicate TYPE declaration. A nil return
// means a Prometheus scraper would accept the page.
func ValidatePromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := make(map[string]bool)
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && (f[1] == "TYPE" || f[1] == "HELP") {
				if len(f) < 3 || !promNameValid(f[2]) {
					return fmt.Errorf("line %d: malformed %s comment %q", lineNo, f[1], line)
				}
				if f[1] == "TYPE" {
					if typed[f[2]] {
						return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, f[2])
					}
					typed[f[2]] = true
				}
			}
			continue
		}
		name, value, err := lexPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !promNameValid(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if err := promValueValid(value); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}
