package metrics

import "fidr/internal/metrics/events"

// Capacity-plane derived series. The capacity.* counters and gauges are
// published per group and summed by Merged; ratios cannot be summed, so
// they are derived at scrape time from the (possibly merged) view —
// the same pattern as the clusterobs shard-balance gauges.

// CapacityRatios derives the reduction-ratio gauges from g's capacity
// counters at scrape time:
//
//	capacity.reduction_ratio          logical / stored bytes
//	capacity.dedup_saved_ratio        dedup-saved / logical bytes
//	capacity.compression_saved_ratio  compression-saved / logical bytes
//	capacity.garbage_ratio            garbage / stored bytes
//	capacity.fp_occupancy             live / capacity Hash-PBN entries
//
// Pass the merged cluster view (or a single registry); prefixed
// per-group copies of the counters are ignored, so the ratios are
// cluster-wide. Each ratio reports 0 when its denominator is 0.
func CapacityRatios(g Gatherer) Gatherer {
	return GathererFunc(func() []Metric {
		var logical, stored, dedup, comp, garbage, fpLive, fpCap float64
		for _, m := range g.Snapshot() {
			switch m.Name {
			case "capacity.logical_bytes":
				logical = m.Value
			case "capacity.stored_bytes":
				stored = m.Value
			case "capacity.dedup_saved_bytes":
				dedup = m.Value
			case "capacity.compression_saved_bytes":
				comp = m.Value
			case "capacity.garbage_bytes":
				garbage = m.Value
			case "capacity.fp_live":
				fpLive = m.Value
			case "capacity.fp_capacity":
				fpCap = m.Value
			}
		}
		out := make([]Metric, 0, 5)
		ratio := func(name string, num, den float64) {
			v := 0.0
			if den > 0 {
				v = num / den
			}
			out = append(out, Metric{Kind: "gauge", Name: name, Value: v})
		}
		ratio("capacity.reduction_ratio", logical, stored)
		ratio("capacity.dedup_saved_ratio", dedup, logical)
		ratio("capacity.compression_saved_ratio", comp, logical)
		ratio("capacity.garbage_ratio", garbage, stored)
		ratio("capacity.fp_occupancy", fpLive, fpCap)
		return out
	})
}

// JournalStats exposes an event journal's own health as gauges
// (events.appended, events.dropped), read at scrape time. Lives here
// rather than in the events package, which metrics imports and which
// therefore cannot import metrics back.
func JournalStats(j *events.Journal) Gatherer {
	return GathererFunc(func() []Metric {
		appended, dropped := j.Stats()
		return []Metric{
			{Kind: "gauge", Name: "events.appended", Value: float64(appended)},
			{Kind: "gauge", Name: "events.dropped", Value: float64(dropped)},
		}
	})
}
