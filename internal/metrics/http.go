package metrics

import (
	"fmt"
	"net/http"
)

// HTTPHandler serves a metric view over HTTP (stdlib only):
//
//	GET /metrics             plain-text dump (see WriteMetricsText)
//	GET /metrics?format=prom Prometheus text exposition (see WriteProm)
//	GET /traces              recent request traces (when traces != nil)
//	GET /                    index of the above
//
// g may be a single Registry or a composed cluster view (Multi over
// prefixed group registries, merged series and derived gauges). The
// handler is safe to serve while metrics are being updated; snapshots
// read only atomics.
func HTTPHandler(g Gatherer, traces func() string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		ms := g.Snapshot()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WriteProm(w, ms)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteMetricsText(w, ms)
	})
	if traces != nil {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, traces())
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "fidr metrics endpoints:")
		fmt.Fprintln(w, "  /metrics              live registry dump")
		fmt.Fprintln(w, "  /metrics?format=prom  Prometheus text exposition")
		if traces != nil {
			fmt.Fprintln(w, "  /traces               recent request traces")
		}
	})
	return mux
}
