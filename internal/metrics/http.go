package metrics

import (
	"fmt"
	"net/http"
)

// HandlerOptions configures the optional endpoints of Handler. Any nil
// field disables its endpoint.
type HandlerOptions struct {
	// Traces renders the recent-request trace ring (GET /traces).
	Traces func() string
	// SlowTraces renders the slow-request flight recorder
	// (GET /traces/slow).
	SlowTraces func() string
	// Sampler serves the sampled time series (GET /metrics/series).
	Sampler *Sampler
	// Spans serves the distributed-trace span trees
	// (GET /traces/spans?id=<trace-id>); usually a *span.Collector.
	Spans http.Handler
	// SLO serves the error-budget dashboard (GET /slo); usually an *SLO.
	SLO http.Handler
	// Capacity serves the reduction-attribution ledger and GC advice
	// (GET /capacity, JSON).
	Capacity http.Handler
	// CapacityContainers serves the container heatmap
	// (GET /capacity/containers, JSON).
	CapacityContainers http.Handler
	// Events serves the structured event journal (GET /events, JSONL);
	// usually an *events.Journal.
	Events http.Handler
	// DebugBundle serves the flight-recorder snapshot ring as a tarball
	// (GET /debug/bundle); usually a *health.Recorder.
	DebugBundle http.Handler
	// Ready reports readiness for GET /readyz: 200 when true, 503
	// otherwise. When nil, /readyz behaves like /healthz (always ready
	// once serving).
	Ready func() bool
}

// Handler serves a metric view over HTTP (stdlib only):
//
//	GET /metrics             plain-text dump (see WriteMetricsText)
//	GET /metrics?format=prom Prometheus text exposition (see WriteProm)
//	GET /metrics/series      sampled time series as JSON (with Sampler)
//	GET /traces              recent request traces (with Traces)
//	GET /traces/slow         slow-request flight recorder (with SlowTraces)
//	GET /healthz             liveness: always 200 "ok" while serving
//	GET /readyz              readiness: 200 "ready" / 503 "not ready"
//	GET /                    index of the above
//
// g may be a single Registry or a composed cluster view (Multi over
// prefixed group registries, merged series and derived gauges). The
// handler is safe to serve while metrics are being updated; snapshots
// read only atomics.
func Handler(g Gatherer, opt HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		ms := g.Snapshot()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WriteProm(w, ms)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteMetricsText(w, ms)
	})
	if opt.Sampler != nil {
		mux.Handle("/metrics/series", opt.Sampler)
	}
	if opt.Traces != nil {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, opt.Traces())
		})
	}
	if opt.SlowTraces != nil {
		mux.HandleFunc("/traces/slow", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, opt.SlowTraces())
		})
	}
	if opt.Spans != nil {
		mux.Handle("/traces/spans", opt.Spans)
	}
	if opt.SLO != nil {
		mux.Handle("/slo", opt.SLO)
	}
	if opt.Capacity != nil {
		mux.Handle("/capacity", opt.Capacity)
	}
	if opt.CapacityContainers != nil {
		mux.Handle("/capacity/containers", opt.CapacityContainers)
	}
	if opt.Events != nil {
		mux.Handle("/events", opt.Events)
	}
	if opt.DebugBundle != nil {
		mux.Handle("/debug/bundle", opt.DebugBundle)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opt.Ready != nil && !opt.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "fidr metrics endpoints:")
		fmt.Fprintln(w, "  /metrics              live registry dump")
		fmt.Fprintln(w, "  /metrics?format=prom  Prometheus text exposition")
		if opt.Sampler != nil {
			fmt.Fprintln(w, "  /metrics/series       sampled time series (JSON)")
		}
		if opt.Traces != nil {
			fmt.Fprintln(w, "  /traces               recent request traces")
		}
		if opt.SlowTraces != nil {
			fmt.Fprintln(w, "  /traces/slow          slow-request flight recorder")
		}
		if opt.Spans != nil {
			fmt.Fprintln(w, "  /traces/spans         distributed-trace span trees (?id=<trace-id>)")
		}
		if opt.SLO != nil {
			fmt.Fprintln(w, "  /slo                  SLO error budgets and burn rates (JSON)")
		}
		if opt.Capacity != nil {
			fmt.Fprintln(w, "  /capacity             reduction attribution, garbage debt, GC advice (JSON)")
		}
		if opt.CapacityContainers != nil {
			fmt.Fprintln(w, "  /capacity/containers  container heatmap by dead fraction and age (JSON)")
		}
		if opt.Events != nil {
			fmt.Fprintln(w, "  /events               structured event journal (JSONL; ?since= ?type= ?n=)")
		}
		if opt.DebugBundle != nil {
			fmt.Fprintln(w, "  /debug/bundle         flight-recorder snapshot bundle (tar.gz; ?n=)")
		}
		fmt.Fprintln(w, "  /healthz              liveness probe")
		fmt.Fprintln(w, "  /readyz               readiness probe")
	})
	return mux
}

// HTTPHandler is Handler with only the trace endpoint configured,
// preserved for callers that predate HandlerOptions.
func HTTPHandler(g Gatherer, traces func() string) http.Handler {
	return Handler(g, HandlerOptions{Traces: traces})
}
