package metrics

import (
	"fmt"
	"net/http"
)

// HTTPHandler serves the registry over HTTP (stdlib only):
//
//	GET /metrics  plain-text registry dump (see Registry.WriteText)
//	GET /traces   recent request traces (when traces != nil)
//	GET /         index of the above
//
// All responses are text/plain. The handler is safe to serve while the
// registry is being updated; it reads only atomics.
func HTTPHandler(reg *Registry, traces func() string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	if traces != nil {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, traces())
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "fidr metrics endpoints:")
		fmt.Fprintln(w, "  /metrics  live registry dump")
		if traces != nil {
			fmt.Fprintln(w, "  /traces   recent request traces")
		}
	})
	return mux
}
