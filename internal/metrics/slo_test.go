package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGoodTotalInterpolation(t *testing.T) {
	h := HistogramSnapshot{Buckets: []BucketCount{
		{Lower: 0, Upper: 100, Count: 10},    // straddled at 50 -> 5 good
		{Lower: 100, Upper: 200, Count: 4},   // above threshold
		{Lower: 1000, Upper: 2000, Count: 1}, // far above
	}}
	good, total := goodTotal(h, 50)
	if total != 15 {
		t.Fatalf("total = %v, want 15", total)
	}
	if good != 5 {
		t.Fatalf("good = %v, want 5 (linear interpolation)", good)
	}
	good, _ = goodTotal(h, 200)
	if good != 14 {
		t.Fatalf("good at 200 = %v, want 14", good)
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("write-h:req.write.ns:2ms:99.9, read:req.read.ns:20ms:0.99")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	if objs[0].Threshold != 2*time.Millisecond || objs[0].Target < 0.999-1e-9 || objs[0].Target > 0.999+1e-9 {
		t.Fatalf("objective 0 = %+v", objs[0])
	}
	if objs[1].Target != 0.99 {
		t.Fatalf("objective 1 target = %v", objs[1].Target)
	}
	for _, bad := range []string{"", "x:y:z", "a:h:2ms:150", "a:h:notadur:99", "a:h:2ms:0"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

// TestSLOBurnRates drives a latency histogram through a burn: 100 good
// requests, then 100 over-threshold ones, and checks the multiwindow
// burn rates, the breach flag, and the published gauges.
func TestSLOBurnRates(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req.write.ns")
	obj := Objective{Name: "write-h", Hist: "req.write.ns", Threshold: time.Millisecond, Target: 0.9}
	s := NewSLO(reg, []Objective{obj}, 16)
	gauges := NewRegistry()
	s.Instrument(gauges)

	base := time.Unix(3000, 0)
	s.Sample(base) // empty tick
	for i := 0; i < 100; i++ {
		h.Observe(1000) // 1µs: good
	}
	s.Sample(base.Add(60 * time.Second))
	for i := 0; i < 100; i++ {
		h.Observe(5e6) // 5ms: bad
	}
	s.Sample(base.Add(120 * time.Second))

	sts := s.Status()
	if len(sts) != 1 {
		t.Fatalf("%d statuses", len(sts))
	}
	st := sts[0]
	if st.Total != 200 || st.Good != 100 {
		t.Fatalf("window good/total = %v/%v, want 100/200", st.Good, st.Total)
	}
	// Fast window (1m) sees only the second interval: all bad -> burn
	// 1.0/0.1 = 10. Slow/full window: half bad -> burn 5.
	if st.BurnFast < 9.9 || st.BurnFast > 10.1 {
		t.Fatalf("burn fast = %v, want ~10", st.BurnFast)
	}
	if st.BurnSlow < 4.9 || st.BurnSlow > 5.1 {
		t.Fatalf("burn slow = %v, want ~5", st.BurnSlow)
	}
	if !st.Breached {
		t.Fatal("both windows burning > 1 must breach")
	}
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0 (overspent budget floors at zero)", st.BudgetRemaining)
	}

	// Gauges published on Sample.
	snap := gauges.Snapshot()
	found := false
	for _, m := range snap {
		if m.Name == "slo.write-h.burn_fast" {
			found = true
			if m.Value < 9.9 {
				t.Fatalf("gauge burn_fast = %v", m.Value)
			}
		}
	}
	if !found {
		t.Fatalf("slo gauges missing from %d metrics", len(snap))
	}
}

// TestSLOQuietWindow: no traffic means no burn and full budget, not NaN.
func TestSLOQuietWindow(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("req.read.ns")
	s := NewSLO(reg, []Objective{{Name: "read", Hist: "req.read.ns", Threshold: time.Millisecond, Target: 0.99}}, 8)
	base := time.Unix(4000, 0)
	s.Sample(base)
	s.Sample(base.Add(time.Second))
	st := s.Status()[0]
	if st.ErrorRate != 0 || st.BurnFast != 0 || st.Breached {
		t.Fatalf("quiet window status = %+v", st)
	}
	if st.BudgetRemaining != 1 {
		t.Fatalf("quiet budget = %v, want 1", st.BudgetRemaining)
	}
}

func TestSLOHTTPAndRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req.write.ns")
	s := NewSLO(reg, DefaultObjectives(), 8)
	base := time.Unix(5000, 0)
	s.Sample(base)
	h.Observe(1000)
	s.Sample(base.Add(time.Second))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("code %d", rec.Code)
	}
	var d SLODump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(d.Objectives) != 4 {
		t.Fatalf("%d objectives in dump", len(d.Objectives))
	}
	text := RenderSLO(d)
	for _, want := range []string{"write-h", "write-m", "write-l", "read", "budget left"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RenderSLO missing %q:\n%s", want, text)
		}
	}
}
