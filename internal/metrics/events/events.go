// Package events is a bounded structured event journal: typed records
// for the storage plane's discrete occurrences — GC runs, checkpoints,
// WAL truncation, recovery, rebalance, SLO breach transitions — kept in
// a fixed-size ring and served as JSONL. One journal is shared by every
// group in a cluster: Group labels each record's origin, the monotonic
// Seq gives the cluster-wide interleaving, and ring overwrite discards
// the oldest records first (freshest wins), mirroring the exemplar
// merge semantics of the trace plane.
//
// The package deliberately depends only on the standard library so that
// every layer (core, metrics, the daemons) can emit into it without
// import cycles.
package events

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event types emitted by the storage plane.
const (
	TypeGCRun       = "gc_run"
	TypeCheckpoint  = "checkpoint"
	TypeWALTruncate = "wal_truncate"
	TypeRecovery    = "recovery"
	TypeRebalance   = "rebalance"
	TypeSLOBreach   = "slo_breach_begin"
	TypeSLORecover  = "slo_breach_end"

	// Health-plane types: a watchdog probe crossing its deadline, the
	// matching recovery edge, and a flight-recorder snapshot landing on
	// disk.
	TypeWatchdogStall   = "watchdog_stall"
	TypeWatchdogRecover = "watchdog_recover"
	TypeSnapshot        = "health_snapshot"
)

// Event is one journal record. Fields carries the type-specific
// numeric payload (e.g. bytes_reclaimed for a gc_run); Trace is the
// originating distributed trace ID when one was sampled, empty
// otherwise.
type Event struct {
	Seq          uint64           `json:"seq"`
	TimeUnixNano int64            `json:"time_unix_nano"`
	Type         string           `json:"type"`
	Group        int              `json:"group"`
	Trace        string           `json:"trace,omitempty"`
	Detail       string           `json:"detail,omitempty"`
	Fields       map[string]int64 `json:"fields,omitempty"`
}

// Journal is a bounded, concurrency-safe event ring.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64
}

// NewJournal creates a journal retaining the last capacity events
// (<= 0 selects 1024).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Journal{ring: make([]Event, 0, capacity)}
}

// Append stamps ev with the next sequence number and the current time,
// then appends it, overwriting the oldest record when full. It returns
// the assigned sequence number.
func (j *Journal) Append(ev Event) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev.Seq = j.seq
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.next] = ev
		j.next = (j.next + 1) % cap(j.ring)
		j.full = true
		j.dropped++
	}
	return ev.Seq
}

// Stats reports journal totals: appended is the number of events ever
// recorded (the latest sequence number), dropped how many were
// overwritten by ring wrap.
func (j *Journal) Stats() (appended, dropped uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.dropped
}

// Since returns the retained events with Seq > seq, oldest first.
// Since(0) returns everything retained.
func (j *Journal) Since(seq uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	ordered := make([]Event, 0, len(j.ring))
	if j.full {
		ordered = append(ordered, j.ring[j.next:]...)
		ordered = append(ordered, j.ring[:j.next]...)
	} else {
		ordered = append(ordered, j.ring...)
	}
	out := ordered[:0]
	for _, ev := range ordered {
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out
}

// badParam mirrors metrics.HTTPBadParam (this package stays
// stdlib-only, so the ten lines are duplicated rather than imported):
// 400 with a JSON body naming the parameter, value and expected shape.
func badParam(w http.ResponseWriter, param, got, want string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Param string `json:"param"`
		Got   string `json:"got"`
		Want  string `json:"want"`
	}{"bad query parameter", param, got, want})
}

// ServeHTTP serves the journal as JSONL (one event per line, newest
// last). Query parameters:
//
//	since  only events with seq > since (enables tailing)
//	type   only events of this type
//	n      only the newest n matching events
//
// Malformed values — including present-but-empty ones like ?since= —
// are a 400 with a JSON error body, never a 200 with silent defaults.
func (j *Journal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if q.Has("since") {
		n, err := strconv.ParseUint(q.Get("since"), 10, 64)
		if err != nil {
			badParam(w, "since", q.Get("since"), "unsigned integer sequence number")
			return
		}
		since = n
	}
	evs := j.Since(since)
	if typ := q.Get("type"); typ != "" {
		kept := evs[:0]
		for _, ev := range evs {
			if ev.Type == typ {
				kept = append(kept, ev)
			}
		}
		evs = kept
	}
	if q.Has("n") {
		n, err := strconv.Atoi(q.Get("n"))
		if err != nil || n < 0 {
			badParam(w, "n", q.Get("n"), "non-negative integer")
			return
		}
		if n < len(evs) {
			evs = evs[len(evs)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		enc.Encode(ev)
	}
}
