package events

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		seq := j.Append(Event{Type: TypeGCRun, Group: i})
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	evs := j.Since(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest two were overwritten; the rest arrive oldest first.
	for i, ev := range evs {
		if want := uint64(i + 3); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
		if ev.TimeUnixNano == 0 {
			t.Fatal("append did not stamp a time")
		}
	}
	appended, dropped := j.Stats()
	if appended != 6 || dropped != 2 {
		t.Fatalf("Stats = %d appended, %d dropped; want 6, 2", appended, dropped)
	}
	if got := j.Since(5); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v", got)
	}
	if got := j.Since(6); len(got) != 0 {
		t.Fatalf("Since(latest) returned %d events", len(got))
	}
}

func TestJournalServeHTTP(t *testing.T) {
	j := NewJournal(16)
	j.Append(Event{Type: TypeGCRun, Fields: map[string]int64{"bytes_reclaimed": 7}})
	j.Append(Event{Type: TypeCheckpoint})
	j.Append(Event{Type: TypeGCRun})

	get := func(query string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		j.ServeHTTP(rec, httptest.NewRequest("GET", "/events"+query, nil))
		return rec
	}
	lines := func(rec *httptest.ResponseRecorder) []Event {
		var out []Event
		sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
			}
			out = append(out, ev)
		}
		return out
	}

	if got := lines(get("")); len(got) != 3 || got[0].Fields["bytes_reclaimed"] != 7 {
		t.Fatalf("unfiltered dump: %+v", got)
	}
	if got := lines(get("?type=gc_run")); len(got) != 2 {
		t.Fatalf("type filter kept %d events", len(got))
	}
	if got := lines(get("?since=2")); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("since filter: %+v", got)
	}
	if got := lines(get("?n=1")); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("n keeps newest: %+v", got)
	}
	if rec := get("?since=notanumber"); rec.Code != 400 {
		t.Fatalf("bad since accepted: %d", rec.Code)
	}
	if rec := get("?n=-1"); rec.Code != 400 {
		t.Fatalf("bad n accepted: %d", rec.Code)
	}

	// Malformed params answer with the uniform JSON error body naming
	// the offending parameter — including present-but-empty values.
	for query, param := range map[string]string{
		"?since=":  "since",
		"?since=x": "since",
		"?n=":      "n",
		"?n=zero":  "n",
	} {
		rec := get(query)
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", query, rec.Code)
			continue
		}
		var body struct {
			Error string `json:"error"`
			Param string `json:"param"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Errorf("%s: non-JSON error body %q: %v", query, rec.Body.String(), err)
			continue
		}
		if body.Param != param || body.Error == "" {
			t.Errorf("%s: error body %+v, want param %q", query, body, param)
		}
	}
}
