package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), stdlib only.
// Counters and gauges map directly; histograms expand to the
// conventional cumulative series:
//
//	<name>_bucket{le="<upper>"} <cumulative count>
//	<name>_bucket{le="+Inf"}    <total count>
//	<name>_sum                  <sum of observations>
//	<name>_count                <total count>
//
// Metric names are sanitized for Prometheus (dots and other invalid
// runes become underscores), so "group0.core.writes" exposes as
// "group0_core_writes" while the dotted name stays canonical everywhere
// else in the system.

// PromName sanitizes a dotted metric name into a valid Prometheus
// metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders a metric set in Prometheus text exposition format.
// The input should be canonically sorted (Registry.Snapshot, Multi and
// MergeMetrics all are) so output is deterministic.
//
// Hostile registry keys cannot break the exposition: every invalid rune
// is escaped by PromName, a name that sanitizes to nothing is dropped,
// and when two distinct dotted names collide after sanitization (e.g.
// "a.b" and "a_b") only the first is emitted — a duplicate series would
// make the whole page unscrapable.
func WriteProm(w io.Writer, ms []Metric) error {
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		name := PromName(m.Name)
		// Labeled scalars (build_info) dedup on name+labels: the same
		// name with distinct label sets is distinct series, but they must
		// still share one TYPE line, emitted for the first occurrence.
		sample := name
		if m.Labels != "" && m.Kind != "hist" {
			sample = name + "{" + m.Labels + "}"
		}
		if name == "" || seen[sample] {
			continue
		}
		if m.Kind == "hist" && (seen[name+"_bucket"] || seen[name+"_sum"] || seen[name+"_count"]) {
			continue
		}
		typeLine := !seen[name]
		seen[name], seen[sample] = true, true
		if m.Kind == "hist" {
			// Reserve the expanded series names too, so a later scalar
			// named e.g. "<name>_count" cannot duplicate them.
			seen[name+"_bucket"], seen[name+"_sum"], seen[name+"_count"] = true, true, true
		}
		var err error
		switch m.Kind {
		case "counter":
			err = writePromScalar(w, "counter", name, sample, m.Value, typeLine)
		case "gauge":
			err = writePromScalar(w, "gauge", name, sample, m.Value, typeLine)
		case "hist":
			err = writePromHistogram(w, name, m.Hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromScalar emits one counter or gauge sample, preceded by its
// TYPE line the first time the name appears.
func writePromScalar(w io.Writer, kind, name, sample string, v float64, typeLine bool) error {
	if typeLine {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s %s\n", sample, promFloat(v))
	return err
}

// writePromHistogram expands one histogram snapshot. Cumulative bucket
// counts come from the snapshot's own buckets, so _count always equals
// the +Inf bucket even if the source histogram is being written
// concurrently. Buckets with a recorded exemplar append it in
// OpenMetrics exemplar syntax:
//
//	<name>_bucket{le="<upper>"} <cum> # {trace_id="<id>"} <value> <ts>
//
// so a scraper (or a human reading the page) can resolve the bucket to
// a retrievable span tree at /traces/spans?id=<id>.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d", name, promFloat(b.Upper), cum); err != nil {
			return err
		}
		if e := b.Exemplar; e != nil {
			if _, err := fmt.Fprintf(w, " # {trace_id=%q} %s %.3f",
				e.TraceID, promFloat(e.Value), float64(e.UnixNS)/1e9); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, promFloat(h.Sum), name, cum)
	return err
}

// DumpProm returns the Prometheus text rendering of a metric set.
func DumpProm(ms []Metric) string {
	var b strings.Builder
	WriteProm(&b, ms)
	return b.String()
}
