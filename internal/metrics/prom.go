package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), stdlib only.
// Counters and gauges map directly; histograms expand to the
// conventional cumulative series:
//
//	<name>_bucket{le="<upper>"} <cumulative count>
//	<name>_bucket{le="+Inf"}    <total count>
//	<name>_sum                  <sum of observations>
//	<name>_count                <total count>
//
// Metric names are sanitized for Prometheus (dots and other invalid
// runes become underscores), so "group0.core.writes" exposes as
// "group0_core_writes" while the dotted name stays canonical everywhere
// else in the system.

// PromName sanitizes a dotted metric name into a valid Prometheus
// metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders a metric set in Prometheus text exposition format.
// The input should be canonically sorted (Registry.Snapshot, Multi and
// MergeMetrics all are) so output is deterministic.
func WriteProm(w io.Writer, ms []Metric) error {
	for _, m := range ms {
		name := PromName(m.Name)
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(m.Value))
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(m.Value))
		case "hist":
			err = writePromHistogram(w, name, m.Hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram expands one histogram snapshot. Cumulative bucket
// counts come from the snapshot's own buckets, so _count always equals
// the +Inf bucket even if the source histogram is being written
// concurrently.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.Upper), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, promFloat(h.Sum), name, cum)
	return err
}

// DumpProm returns the Prometheus text rendering of a metric set.
func DumpProm(ms []Metric) string {
	var b strings.Builder
	WriteProm(&b, ms)
	return b.String()
}
