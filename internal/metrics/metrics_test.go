package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000*3 {
		t.Fatalf("counter = %d, want %d", got, 8*1000*3)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b Summary
	a.Observe(1)
	b.Observe(3)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 2 {
		t.Fatalf("merge broken: count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestPercentileMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Summary
		for i := 0; i < 100; i++ {
			s.Observe(rng.NormFloat64())
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.Row("alpha", 1.5)
	tab.Row("b", 42)
	tab.Note("calibrated against %s", "paper")
	out := tab.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "1.5", "42", "note: calibrated against paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.5",
		1.25:   "1.25",
		1.2345: "1.234",
		100:    "100",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q want %q", in, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[uint64]string{
		512:       "512 B",
		2048:      "2.0 KiB",
		5 << 20:   "5.0 MiB",
		3 << 30:   "3.0 GiB",
		1<<40 + 1: "1.0 TiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q want %q", in, got, want)
		}
	}
}

func TestRateAndPct(t *testing.T) {
	if got := GBps(75e9); got != "75.0 GB/s" {
		t.Errorf("GBps = %q", got)
	}
	if got := Pct(0.791); got != "79.1%" {
		t.Errorf("Pct = %q", got)
	}
}

func BenchmarkSummaryObserve(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i))
	}
}
