package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSample matches "name 1.5" and "name{le=\"2\"} 7".
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (\S+)$`)

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"core.writes":         "core_writes",
		"group0.core.writes":  "group0_core_writes",
		"stage.hash.ns":       "stage_hash_ns",
		"ssd.data-ssd.reads":  "ssd_data_ssd_reads",
		"0weird":              "_0weird",
		"already_fine_name":   "already_fine_name",
		"cluster.write_share": "cluster_write_share",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.writes").Add(640)
	r.Gauge("core.ratio").Set(0.413)
	h := r.Histogram("stage.hash.ns")
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i * 17))
	}
	out := DumpProm(r.Snapshot())
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("non-numeric sample in %q: %v", line, err)
		}
	}
	for name, kind := range map[string]string{
		"core_writes":   "counter",
		"core_ratio":    "gauge",
		"stage_hash_ns": "histogram",
	} {
		if types[name] != kind {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], kind)
		}
	}
}

// TestPromExemplarExposition: a sampled observation's trace ID rides
// its bucket into the exposition as an OpenMetrics exemplar, the page
// still lexes, and merging histogram snapshots keeps the freshest
// exemplar per bucket.
func TestPromExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req.write.ns")
	h.Observe(100) // unsampled: no exemplar on this bucket
	h.ObserveExemplar(5000, "00c0ffee00c0ffee")

	out := DumpProm(r.Snapshot())
	if !strings.Contains(out, `# {trace_id="00c0ffee00c0ffee"} 5000`) {
		t.Fatalf("exemplar missing from exposition:\n%s", out)
	}
	if err := ValidatePromText(strings.NewReader(out)); err != nil {
		t.Fatalf("exemplar exposition does not lex: %v\npage:\n%s", err, out)
	}

	snap := h.Snapshot()
	var withEx, withoutEx int
	for _, b := range snap.Buckets {
		if b.Exemplar != nil {
			withEx++
			if b.Exemplar.TraceID != "00c0ffee00c0ffee" || b.Exemplar.Value != 5000 {
				t.Fatalf("wrong exemplar %+v", *b.Exemplar)
			}
		} else {
			withoutEx++
		}
	}
	if withEx != 1 || withoutEx != 1 {
		t.Fatalf("exemplar buckets = %d with / %d without, want 1/1", withEx, withoutEx)
	}

	// Merge: same bucket from another shard with a newer exemplar wins.
	h2 := NewHistogram()
	h2.ObserveExemplar(5000, "newer")
	merged := MergeHistogramSnapshots(snap, h2.Snapshot())
	found := false
	for _, b := range merged.Buckets {
		if b.Exemplar != nil && b.Count == 2 {
			found = true
			if b.Exemplar.TraceID != "newer" {
				t.Fatalf("merge kept stale exemplar %q", b.Exemplar.TraceID)
			}
		}
	}
	if !found {
		t.Fatal("merged bucket lost its exemplar")
	}
}

func TestPromHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage.hash.ns")
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := float64((i * i) % 100000)
		h.Observe(v)
		sum += v
	}
	out := DumpProm(r.Snapshot())

	var bucketCounts []uint64
	var lastLE float64
	var infCount, count uint64
	var gotSum float64
	var sawInf bool
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "stage_hash_ns_bucket{le=\"+Inf\"}"):
			sawInf = true
			infCount, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "stage_hash_ns_bucket{"):
			m := promSample.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad bucket line %q", line)
			}
			le, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(m[2], `{le="`), `"}`), 64)
			if err != nil {
				t.Fatalf("bad le in %q: %v", line, err)
			}
			if len(bucketCounts) > 0 && le <= lastLE {
				t.Fatalf("bucket upper bounds not increasing: %v after %v", le, lastLE)
			}
			lastLE = le
			c, _ := strconv.ParseUint(m[3], 10, 64)
			bucketCounts = append(bucketCounts, c)
		case strings.HasPrefix(line, "stage_hash_ns_sum "):
			gotSum, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		case strings.HasPrefix(line, "stage_hash_ns_count "):
			count, _ = strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
	if len(bucketCounts) == 0 {
		t.Fatal("no finite buckets emitted")
	}
	for i := 1; i < len(bucketCounts); i++ {
		if bucketCounts[i] < bucketCounts[i-1] {
			t.Fatalf("bucket counts not cumulative/monotone at %d: %v", i, bucketCounts)
		}
	}
	if last := bucketCounts[len(bucketCounts)-1]; last != infCount {
		t.Errorf("last finite bucket %d != +Inf bucket %d", last, infCount)
	}
	if infCount != count {
		t.Errorf("+Inf bucket %d != _count %d", infCount, count)
	}
	if count != n {
		t.Errorf("_count = %d, want %d", count, n)
	}
	if gotSum != sum {
		t.Errorf("_sum = %v, want %v", gotSum, sum)
	}
}

func TestPromEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stage.idle.ns")
	out := DumpProm(r.Snapshot())
	for _, want := range []string{
		"stage_idle_ns_bucket{le=\"+Inf\"} 0",
		"stage_idle_ns_sum 0",
		"stage_idle_ns_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty-histogram exposition missing %q:\n%s", want, out)
		}
	}
}
