package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram not idempotent")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("core.writes").Inc()
				r.Gauge("core.ratio").Set(0.5)
				r.Histogram("stage.hash.ns").Observe(float64(i))
				_ = r.Dump()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("core.writes").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("stage.hash.ns").Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestRegistryDumpFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.writes").Add(640)
	r.Counter("core.reads").Add(2)
	r.Gauge("core.reduction_ratio").Set(0.413)
	h := r.Histogram("stage.hash.ns")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i * 1000))
	}
	dump := r.Dump()

	lines := strings.Split(strings.TrimSpace(dump), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4:\n%s", len(lines), dump)
	}
	// Counters first (sorted), then gauges, then histograms.
	if !strings.HasPrefix(lines[0], "counter core.reads 2") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "counter core.writes 640") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "gauge core.reduction_ratio 0.413") {
		t.Errorf("line 2 = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "hist stage.hash.ns count=100 ") {
		t.Errorf("line 3 = %q", lines[3])
	}
	for _, field := range []string{"mean=", "min=", "p50=", "p90=", "p99=", "max="} {
		if !strings.Contains(lines[3], field) {
			t.Errorf("hist line missing %q: %q", field, lines[3])
		}
	}
	// Every line is parseable as whitespace-separated fields with the
	// kind first — the contract fidrcli stats relies on.
	for _, ln := range lines {
		f := strings.Fields(ln)
		if len(f) < 3 {
			t.Errorf("line %q has %d fields", ln, len(f))
		}
		if k := f[0]; k != "counter" && k != "gauge" && k != "hist" {
			t.Errorf("unknown kind %q in %q", k, ln)
		}
	}
}
