package metrics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram layout: log-linear ("HDR-style") buckets. Values are split
// into octaves (powers of two); each octave is divided into histSub
// linear sub-buckets, bounding the relative quantile error at
// 1/histSub (6.25%) while keeping the bucket array small and fixed.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave

	// histBuckets covers every uint64: indexes run [0, histSub) for the
	// linear region and (k-histSubBits)*histSub + mantissa for octaves
	// k = histSubBits..63, peaking at (63-histSubBits)*histSub + 2*histSub.
	histBuckets = (63-histSubBits)*histSub + 2*histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(u uint64) int {
	if u < histSub {
		return int(u)
	}
	k := bits.Len64(u) - 1 // 2^k <= u < 2^(k+1)
	shift := uint(k - histSubBits)
	m := int(u >> shift) // mantissa in [histSub, 2*histSub)
	return (k-histSubBits)*histSub + m
}

// bucketBounds returns the half-open value range [lower, upper) of a bucket.
func bucketBounds(idx int) (lower, upper uint64) {
	if idx < histSub {
		return uint64(idx), uint64(idx) + 1
	}
	k := idx/histSub + histSubBits - 1
	shift := uint(k - histSubBits)
	m := uint64(idx%histSub + histSub)
	lower = m << shift
	upper = lower + 1<<shift
	if upper < lower { // top bucket: 2^64 overflows
		upper = math.MaxUint64
	}
	return lower, upper
}

// Histogram is a bounded, concurrent-safe distribution: fixed log-linear
// buckets for quantiles plus exact running count/sum/min/max. Memory is
// constant regardless of how many values are observed, so it is safe on
// hot paths of long-lived daemons. All methods may be called from any
// goroutine. Negative and NaN observations are clamped to zero (the
// histogram records magnitudes: durations, sizes, counts).
//
// Quantiles are bucket-midpoint estimates with relative error bounded by
// the sub-bucket width (6.25%), clamped into [Min, Max] so that
// P50 <= P99 <= Max always holds. Mean is exact.
type Histogram struct {
	counts  [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; +Inf until first Observe
	maxBits atomic.Uint64 // float64 bits; -Inf until first Observe

	// Exemplars: a recent sampled trace ID per occupied bucket, so a
	// scraped p99 bucket resolves to an actual retrievable span tree.
	// Only ObserveExemplar (sampled requests) touches the map; plain
	// Observe stays lock-free.
	exMu sync.Mutex
	ex   map[int]Exemplar
}

// Exemplar links one histogram bucket to the trace that last landed in
// it: the trace ID, the observed value, and the observation time.
type Exemplar struct {
	TraceID string
	Value   float64
	UnixNS  int64
}

// maxExemplarBuckets bounds the per-histogram exemplar map; when full,
// a new bucket's exemplar evicts the stalest one.
const maxExemplarBuckets = 64

// NewHistogram returns an empty histogram. Always use the constructor:
// the zero value mis-reports Min.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	u := uint64(0)
	if v >= math.MaxUint64 {
		u = math.MaxUint64
	} else {
		u = uint64(v)
	}
	h.counts[bucketIndex(u)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveExemplar records one value and tags its bucket with the
// observing trace's ID. Call it for sampled requests only; the
// exemplar map is mutex-guarded, so unsampled traffic should use the
// lock-free Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	clamped := v
	if clamped < 0 || math.IsNaN(clamped) {
		clamped = 0
	}
	u := uint64(math.MaxUint64)
	if clamped < math.MaxUint64 {
		u = uint64(clamped)
	}
	idx := bucketIndex(u)
	now := time.Now().UnixNano()
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make(map[int]Exemplar)
	}
	if _, ok := h.ex[idx]; !ok && len(h.ex) >= maxExemplarBuckets {
		stalest, at := -1, int64(math.MaxInt64)
		for i, e := range h.ex {
			if e.UnixNS < at {
				stalest, at = i, e.UnixNS
			}
		}
		delete(h.ex, stalest)
	}
	h.ex[idx] = Exemplar{TraceID: traceID, Value: v, UnixNS: now}
	h.exMu.Unlock()
}

// exemplar returns the stored exemplar for a bucket index, if any.
func (h *Histogram) exemplar(idx int) (Exemplar, bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	e, ok := h.ex[idx]
	return e, ok
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the exact running sum.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the exact arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, or 0 with none.
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns the q-th quantile estimate (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lower, upper := bucketBounds(i)
			est := (float64(lower) + float64(upper)) / 2
			// Clamp into the exact observed range so quantiles never
			// contradict Min/Max.
			if max := h.Max(); est > max {
				est = max
			}
			if min := h.Min(); est < min {
				est = min
			}
			return est
		}
	}
	return h.Max()
}

// Percentile returns the p-th percentile estimate (0 <= p <= 100).
func (h *Histogram) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// BucketCount is one occupied histogram bucket: the half-open value
// range [Lower, Upper) and the number of observations that fell in it.
type BucketCount struct {
	Lower, Upper float64
	Count        uint64
	// Exemplar is a recent trace that landed in this bucket (nil when
	// no sampled request has hit it).
	Exemplar *Exemplar
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count          uint64
	Sum            float64
	Mean, Min, Max float64
	P50, P90, P99  float64
	// Buckets lists the occupied buckets in ascending value order. All
	// histograms share one bucket layout, so snapshots merge bucket-wise
	// (see MergeHistogramSnapshots) and encode to Prometheus exactly.
	Buckets []BucketCount
}

// Snapshot captures the histogram's current summary. Under concurrent
// Observe the fields are each individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		lower, upper := bucketBounds(i)
		bc := BucketCount{Lower: float64(lower), Upper: float64(upper), Count: c}
		if e, ok := h.exemplar(i); ok {
			e := e
			bc.Exemplar = &e
		}
		s.Buckets = append(s.Buckets, bc)
	}
	return s
}

// quantileFromBuckets estimates the q-th quantile from occupied buckets
// (bucket-midpoint, like Histogram.Quantile), clamped into [min, max].
func quantileFromBuckets(bs []BucketCount, total uint64, q, min, max float64) float64 {
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range bs {
		cum += b.Count
		if cum >= rank {
			est := (b.Lower + b.Upper) / 2
			if est > max {
				est = max
			}
			if est < min {
				est = min
			}
			return est
		}
	}
	return max
}

// MergeHistogramSnapshots folds b into a, returning the combined
// distribution. Count, Sum, Min and Max combine exactly; the buckets
// merge bucket-wise (all histograms share one layout), so the merged
// percentiles carry the same error bound as a single histogram's.
func MergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := HistogramSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	out.Mean = out.Sum / float64(out.Count)
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].Lower < b.Buckets[j].Lower):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].Lower < a.Buckets[i].Lower:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default: // same bucket
			m := a.Buckets[i]
			m.Count += b.Buckets[j].Count
			// Keep the freshest exemplar across the merged shards.
			if eb := b.Buckets[j].Exemplar; eb != nil &&
				(m.Exemplar == nil || eb.UnixNS > m.Exemplar.UnixNS) {
				m.Exemplar = eb
			}
			out.Buckets = append(out.Buckets, m)
			i++
			j++
		}
	}
	var total uint64
	for _, bc := range out.Buckets {
		total += bc.Count
	}
	out.P50 = quantileFromBuckets(out.Buckets, total, 0.50, out.Min, out.Max)
	out.P90 = quantileFromBuckets(out.Buckets, total, 0.90, out.Min, out.Max)
	out.P99 = quantileFromBuckets(out.Buckets, total, 0.99, out.Min, out.Max)
	return out
}
