package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauge is a concurrent-safe float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a concurrent-safe namespace of named counters, gauges and
// histograms. Accessors are get-or-create: the first call for a name
// allocates the metric, later calls return the same instance, so
// producers can bind metrics once at startup and update them lock-free
// on hot paths. Names are dotted lowercase ("stage.hash.ns").
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Metric is one registry entry's point-in-time value.
type Metric struct {
	// Kind is "counter", "gauge" or "hist".
	Kind string
	Name string
	// Labels is an optional pre-rendered Prometheus label block without
	// braces, e.g. `version="v1",commit="abc"`. Registry metrics never
	// carry labels (the dotted-name convention encodes dimensions);
	// info-style gatherers such as build_info use it. Text renderings
	// append it to the name as name{labels}, and series with different
	// label sets are distinct.
	Labels string
	// Value holds counter and gauge readings.
	Value float64
	// Hist holds histogram readings (Kind "hist" only).
	Hist HistogramSnapshot
}

// fullName renders the dump-format name token: name{labels} when labels
// are present (no spaces, so field-splitting parsers keep working).
func (m Metric) fullName() string {
	if m.Labels == "" {
		return m.Name
	}
	return m.Name + "{" + m.Labels + "}"
}

// Snapshot captures every metric, counters first, then gauges, then
// histograms, each group sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		out = append(out, Metric{Kind: "counter", Name: name, Value: float64(r.counters[name].Value())})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, Metric{Kind: "gauge", Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		out = append(out, Metric{Kind: "hist", Name: name, Hist: r.hists[name].Snapshot()})
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the registry in the plain-text dump format, one
// metric per line:
//
//	counter core.writes 640
//	gauge core.reduction_ratio 0.413
//	hist stage.hash.ns count=640 mean=1523.4 min=900 p50=1487 p90=2200 p99=2901 max=51200
//
// The format is stable and machine-parseable (fidrcli stats re-renders
// it as tables).
func (r *Registry) WriteText(w io.Writer) error {
	return WriteMetricsText(w, r.Snapshot())
}

// WriteMetricsText renders any metric set (a single registry's or a
// composed cluster view's) in the plain-text dump format. Callers that
// compose gatherers should pass a canonically sorted set (Multi and
// MergeMetrics sort; see SortMetrics) so the dump is deterministic.
func WriteMetricsText(w io.Writer, ms []Metric) error {
	for _, m := range ms {
		var err error
		switch m.Kind {
		case "hist":
			h := m.Hist
			_, err = fmt.Fprintf(w, "hist %s count=%d mean=%s min=%s p50=%s p90=%s p99=%s max=%s\n",
				m.Name, h.Count, FormatFloat(h.Mean), FormatFloat(h.Min),
				FormatFloat(h.P50), FormatFloat(h.P90), FormatFloat(h.P99), FormatFloat(h.Max))
		case "counter":
			_, err = fmt.Fprintf(w, "counter %s %d\n", m.fullName(), uint64(m.Value))
		default:
			_, err = fmt.Fprintf(w, "gauge %s %s\n", m.fullName(), FormatFloat(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Dump returns the plain-text rendering of WriteText.
func (r *Registry) Dump() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// DumpMetrics returns the plain-text rendering of a metric set.
func DumpMetrics(ms []Metric) string {
	var b strings.Builder
	WriteMetricsText(&b, ms)
	return b.String()
}
