package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketLayout(t *testing.T) {
	// The linear region is exact: bucket i holds exactly value i.
	for u := uint64(0); u < histSub; u++ {
		if got := bucketIndex(u); got != int(u) {
			t.Fatalf("bucketIndex(%d) = %d", u, got)
		}
	}
	// Indexes are contiguous and monotone across the whole range, and
	// every value falls inside its bucket's bounds.
	prev := -1
	for _, u := range []uint64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100,
		1000, 1 << 20, 1<<20 + 1, 1 << 40, 1 << 62, math.MaxUint64} {
		idx := bucketIndex(u)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", u, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", u, idx, histBuckets)
		}
		lower, upper := bucketBounds(idx)
		// The top bucket's upper bound saturates at MaxUint64 (2^64
		// overflows) and is inclusive there.
		if u < lower || (u >= upper && upper != math.MaxUint64) {
			t.Fatalf("value %d outside bucket %d bounds [%d,%d)", u, idx, lower, upper)
		}
	}
	// Bounds tile the axis: each bucket starts where the last ended.
	lastUpper := uint64(0)
	for i := 0; i < histBuckets; i++ {
		lower, upper := bucketBounds(i)
		if lower != lastUpper {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lower, lastUpper)
		}
		if upper <= lower {
			t.Fatalf("bucket %d empty: [%d,%d)", i, lower, upper)
		}
		lastUpper = upper
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Small integers land in the exact linear region; midpoint of the
	// unit bucket [3,4) is 3.5 but clamping keeps quantiles in range.
	if q := h.Quantile(1); q != 5 {
		t.Errorf("q100 = %v", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 clamped = %v", q)
	}
}

// TestHistogramPercentileAccuracy checks histogram quantiles against the
// exact Summary on the same stream: the log-linear layout bounds the
// relative error at 1/histSub plus half a bucket of midpoint skew.
func TestHistogramPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var s Summary
	for i := 0; i < 5000; i++ {
		// Latency-like values spanning several octaves.
		v := math.Exp(rng.Float64()*8) * 100
		h.Observe(v)
		s.Observe(v)
	}
	if h.Count() != uint64(s.Count()) {
		t.Fatalf("count mismatch: %d vs %d", h.Count(), s.Count())
	}
	if math.Abs(h.Mean()-s.Mean()) > 1e-6*s.Mean() {
		t.Fatalf("mean mismatch: %v vs %v", h.Mean(), s.Mean())
	}
	for _, p := range []float64{10, 25, 50, 90, 99} {
		exact := s.Percentile(p)
		est := h.Percentile(p)
		if rel := math.Abs(est-exact) / exact; rel > 2.0/histSub {
			t.Errorf("p%.0f: est %v vs exact %v (rel err %.3f)", p, est, exact, rel)
		}
	}
	// Quantiles are monotone and bounded by min/max.
	prev := h.Quantile(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
	if h.Quantile(1) > h.Max() || h.Quantile(0) < h.Min() {
		t.Fatal("quantiles escape [min,max]")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	n := uint64(goroutines * per)
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Min() != 0 || h.Max() != float64(n-1) {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantMean := float64(n-1) / 2
	if math.Abs(h.Mean()-wantMean) > 1e-6 {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	snap := h.Snapshot()
	if snap.P50 > snap.P90 || snap.P90 > snap.P99 || snap.P99 > snap.Max {
		t.Fatalf("snapshot not ordered: %+v", snap)
	}
}

func TestHistogramClampsNegativeAndNaN(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Count() != 2 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative/NaN not clamped: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := 0
		for pb.Next() {
			h.Observe(float64(v))
			v++
		}
	})
}
