package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestSummaryBounded verifies the reservoir cap: a long stream keeps
// exact count/mean/min/max while retaining at most SummaryReservoir
// samples.
func TestSummaryBounded(t *testing.T) {
	var s Summary
	const n = 4 * SummaryReservoir
	var sum float64
	for i := 0; i < n; i++ {
		v := float64(i)
		s.Observe(v)
		sum += v
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	if len(s.samples) > SummaryReservoir {
		t.Fatalf("retained %d samples, cap is %d", len(s.samples), SummaryReservoir)
	}
	if s.Min() != 0 || s.Max() != n-1 {
		t.Fatalf("min/max = %v/%v, want 0/%d", s.Min(), s.Max(), n-1)
	}
	if want := sum / n; s.Mean() != want {
		t.Fatalf("mean = %v, want exact %v", s.Mean(), want)
	}
	// Percentiles over a uniform stream stay near the true values.
	for _, p := range []float64{25, 50, 90} {
		want := p / 100 * n
		got := s.Percentile(p)
		if math.Abs(got-want) > 0.1*n {
			t.Errorf("p%.0f = %v, want ~%v", p, got, want)
		}
	}
}

// TestSummaryExactBelowCap: until the cap is hit, percentiles are exact
// nearest-rank, identical to the pre-reservoir behaviour.
func TestSummaryExactBelowCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Summary
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
		s.Observe(vals[i])
	}
	if len(s.samples) != len(vals) {
		t.Fatalf("below cap, all samples must be retained: %d", len(s.samples))
	}
	if s.Percentile(100) != s.Max() || s.Percentile(0) != s.Min() {
		t.Fatal("p0/p100 must equal exact min/max")
	}
}

func TestSummaryMergeAccumulators(t *testing.T) {
	var a, b Summary
	for i := 0; i < 2*SummaryReservoir; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i + 1000000))
	}
	a.Merge(&b)
	if a.Count() != 4*SummaryReservoir {
		t.Fatalf("merged count = %d", a.Count())
	}
	if len(a.samples) > SummaryReservoir {
		t.Fatalf("merged reservoir overflows: %d", len(a.samples))
	}
	if a.Min() != 0 || a.Max() != float64(1000000+2*SummaryReservoir-1) {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}
