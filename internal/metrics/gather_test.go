package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPrefixedAndMultiDeterministicOrder(t *testing.T) {
	g0, g1 := NewRegistry(), NewRegistry()
	for _, r := range []*Registry{g0, g1} {
		r.Counter("core.writes").Add(10)
		r.Gauge("core.ratio").Set(0.5)
		r.Histogram("stage.hash.ns").Observe(100)
	}
	view := Multi(
		Merged(g0, g1),
		Prefixed("group0.", g0),
		Prefixed("group1.", g1),
	)
	first := DumpMetrics(view.Snapshot())
	for i := 0; i < 5; i++ {
		if again := DumpMetrics(view.Snapshot()); again != first {
			t.Fatalf("dump not deterministic:\n%s\nvs\n%s", first, again)
		}
	}
	// Canonical order: all counters, then gauges, then hists, each sorted.
	var lines []string
	for _, l := range strings.Split(strings.TrimSpace(first), "\n") {
		lines = append(lines, l)
	}
	lastRank, lastName := 0, ""
	for _, l := range lines {
		f := strings.Fields(l)
		rank := kindRank(f[0])
		if rank < lastRank {
			t.Fatalf("kind order regressed at %q", l)
		}
		if rank > lastRank {
			lastName = ""
		}
		if f[1] < lastName {
			t.Fatalf("name order regressed at %q (after %q)", l, lastName)
		}
		lastRank, lastName = rank, f[1]
	}
	// Per-group and merged series all present.
	for _, want := range []string{"counter core.writes 20", "counter group0.core.writes 10", "counter group1.core.writes 10"} {
		if !strings.Contains(first, want) {
			t.Errorf("view dump missing %q:\n%s", want, first)
		}
	}
}

func TestMergeMetricsHistograms(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	ha, hb := a.Histogram("stage.hash.ns"), b.Histogram("stage.hash.ns")
	for i := 0; i < 100; i++ {
		ha.Observe(float64(i)) // 0..99
	}
	for i := 0; i < 100; i++ {
		hb.Observe(float64(1000 + i)) // 1000..1099
	}
	merged := MergeMetrics(a.Snapshot(), b.Snapshot())
	if len(merged) != 1 {
		t.Fatalf("merged %d metrics, want 1", len(merged))
	}
	h := merged[0].Hist
	if h.Count != 200 {
		t.Errorf("merged count = %d", h.Count)
	}
	if h.Min != 0 || h.Max != 1099 {
		t.Errorf("merged min/max = %v/%v", h.Min, h.Max)
	}
	wantSum := ha.Sum() + hb.Sum()
	if h.Sum != wantSum {
		t.Errorf("merged sum = %v, want %v", h.Sum, wantSum)
	}
	if math.Abs(h.Mean-wantSum/200) > 1e-9 {
		t.Errorf("merged mean = %v", h.Mean)
	}
	// P50 sits at the seam between the two halves; P99 in the top range.
	// Log-linear buckets bound relative error at 6.25%.
	if h.P50 > 120 {
		t.Errorf("merged p50 = %v, want <= ~100", h.P50)
	}
	if h.P99 < 1000 || h.P99 > 1099 {
		t.Errorf("merged p99 = %v, want within [1000, 1099]", h.P99)
	}
	// Bucket counts must cover every observation.
	var total uint64
	for _, bc := range h.Buckets {
		total += bc.Count
	}
	if total != 200 {
		t.Errorf("merged buckets hold %d observations, want 200", total)
	}
}

func TestMergeMetricsScalars(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	a.Gauge("g").Set(1.5)
	b.Gauge("g").Set(2.5)
	merged := MergeMetrics(a.Snapshot(), b.Snapshot())
	vals := map[string]float64{}
	for _, m := range merged {
		vals[m.Kind+" "+m.Name] = m.Value
	}
	if vals["counter c"] != 7 {
		t.Errorf("merged counter = %v", vals["counter c"])
	}
	if vals["gauge g"] != 4 {
		t.Errorf("merged gauge = %v", vals["gauge g"])
	}
}
