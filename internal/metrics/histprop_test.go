package metrics

import (
	"math/rand"
	"reflect"
	"testing"
)

// Property tests for histogram snapshot merging, the operation cluster
// views lean on: merging must be commutative and associative, and
// merging two snapshots must equal observing the union of their inputs.

func randomHistogram(r *rand.Rand, n int) *Histogram {
	h := NewHistogram()
	for i := 0; i < n; i++ {
		// Mix of magnitudes so many different octaves get buckets.
		switch r.Intn(3) {
		case 0:
			h.Observe(float64(r.Intn(100)))
		case 1:
			h.Observe(float64(r.Intn(1_000_000)))
		default:
			h.Observe(r.Float64() * 1e9)
		}
	}
	return h
}

func TestMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randomHistogram(r, r.Intn(200)).Snapshot()
		b := randomHistogram(r, r.Intn(200)).Snapshot()
		ab := MergeHistogramSnapshots(a, b)
		ba := MergeHistogramSnapshots(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge(a,b) != merge(b,a)\nab=%+v\nba=%+v", trial, ab, ba)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := randomHistogram(r, r.Intn(150)).Snapshot()
		b := randomHistogram(r, r.Intn(150)).Snapshot()
		c := randomHistogram(r, r.Intn(150)).Snapshot()
		left := MergeHistogramSnapshots(MergeHistogramSnapshots(a, b), c)
		right := MergeHistogramSnapshots(a, MergeHistogramSnapshots(b, c))
		if left.Count != right.Count || left.Min != right.Min || left.Max != right.Max {
			t.Fatalf("trial %d: associativity broken: left=%+v right=%+v", trial, left, right)
		}
		if !reflect.DeepEqual(left.Buckets, right.Buckets) {
			t.Fatalf("trial %d: bucket sets differ between groupings", trial)
		}
		// Float addition is not exactly associative; allow relative error.
		if diff := left.Sum - right.Sum; diff > 1e-9*left.Sum || diff < -1e-9*left.Sum {
			t.Fatalf("trial %d: sums differ beyond fp tolerance: %v vs %v", trial, left.Sum, right.Sum)
		}
	}
}

func TestMergeEqualsUnionObservation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		na, nb := r.Intn(200), r.Intn(200)
		valsA := make([]float64, na)
		valsB := make([]float64, nb)
		for i := range valsA {
			valsA[i] = r.Float64() * 1e7
		}
		for i := range valsB {
			valsB[i] = r.Float64() * 1e7
		}
		ha, hb, hu := NewHistogram(), NewHistogram(), NewHistogram()
		for _, v := range valsA {
			ha.Observe(v)
			hu.Observe(v)
		}
		for _, v := range valsB {
			hb.Observe(v)
			hu.Observe(v)
		}
		merged := MergeHistogramSnapshots(ha.Snapshot(), hb.Snapshot())
		union := hu.Snapshot()
		if merged.Count != union.Count {
			t.Fatalf("trial %d: count %d != union %d", trial, merged.Count, union.Count)
		}
		if merged.Min != union.Min || merged.Max != union.Max {
			t.Fatalf("trial %d: min/max %v/%v != union %v/%v",
				trial, merged.Min, merged.Max, union.Min, union.Max)
		}
		if !reflect.DeepEqual(merged.Buckets, union.Buckets) {
			t.Fatalf("trial %d: merged buckets differ from union buckets", trial)
		}
		if merged.P50 != union.P50 || merged.P90 != union.P90 || merged.P99 != union.P99 {
			t.Fatalf("trial %d: quantiles differ: merged p50/p90/p99 %v/%v/%v union %v/%v/%v",
				trial, merged.P50, merged.P90, merged.P99, union.P50, union.P90, union.P99)
		}
	}
}

func TestMergeWithEmptyIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randomHistogram(r, 100).Snapshot()
	empty := NewHistogram().Snapshot()
	got := MergeHistogramSnapshots(a, empty)
	if got.Count != a.Count || got.Sum != a.Sum || got.Min != a.Min || got.Max != a.Max {
		t.Fatalf("merge with empty changed summary: %+v vs %+v", got, a)
	}
	if !reflect.DeepEqual(got.Buckets, a.Buckets) {
		t.Fatalf("merge with empty changed buckets")
	}
}
