// Package metrics provides counters, gauges, bounded histograms,
// distribution summaries, a live Registry with a plain-text HTTP
// surface, and plain-text table/figure rendering for the experiment
// harness. All output of cmd/fidrbench flows through Table so every
// reproduced paper artifact has a uniform, diffable format; all live
// telemetry of cmd/fidrd flows through Registry so daemon and bench
// runs emit the same metric names.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset sets the counter to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// SummaryReservoir caps the samples a Summary retains. Count, Mean, Min
// and Max stay exact via running accumulators; percentiles come from a
// uniform reservoir sample once the cap is exceeded, so memory stays
// bounded over arbitrarily long runs. Below the cap percentiles are
// exact.
const SummaryReservoir = 8192

// Summary accumulates a stream of float64 observations and reports count,
// mean, min, max and percentiles. Count/mean/min/max are exact (running
// accumulators); percentiles use nearest-rank over at most
// SummaryReservoir retained samples (reservoir sampling, deterministic
// xorshift RNG), exact until the cap is reached.
//
// Concurrency contract: a Summary is NOT safe for concurrent use. Each
// goroutine must own its Summary and fold results with Merge under the
// owner's serialization, or use Histogram, which is concurrent-safe and
// bounded by construction.
type Summary struct {
	count    uint64
	sum      float64
	min, max float64
	samples  []float64
	sorted   bool
	rng      uint64
}

// xorshift64 steps the deterministic reservoir RNG.
func (s *Summary) next() uint64 {
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	if len(s.samples) < SummaryReservoir {
		s.samples = append(s.samples, v)
		s.sorted = false
		return
	}
	// Reservoir: keep v with probability cap/count, evicting a uniform
	// victim, so retained samples stay a uniform sample of the stream.
	if j := s.next() % s.count; j < SummaryReservoir {
		s.samples[j] = v
		s.sorted = false
	}
}

// Merge folds other into s. Exact accumulators combine exactly; the
// retained samples are concatenated and, if over the cap, uniformly
// down-sampled (an approximation when either side already overflowed its
// reservoir).
func (s *Summary) Merge(other *Summary) {
	if other.count == 0 {
		return
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.count == 0 || other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	s.samples = append(s.samples, other.samples...)
	for len(s.samples) > SummaryReservoir {
		n := uint64(len(s.samples))
		j := s.next() % n
		s.samples[j] = s.samples[n-1]
		s.samples = s.samples[:n-1]
	}
	s.sorted = false
}

// Count returns the number of samples observed (not retained).
func (s *Summary) Count() int { return int(s.count) }

// Mean returns the exact arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest sample, or 0 with no samples. Exact.
func (s *Summary) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples. Exact.
func (s *Summary) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the retained samples, clamped into [Min, Max].
func (s *Summary) Percentile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	s.ensureSorted()
	rank := int(math.Ceil(p/100*float64(len(s.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	v := s.samples[rank]
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Table renders aligned plain-text tables in the style the paper's tables
// and figure data series are reported by the harness.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Note appends a footnote line rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders floats compactly: integers without decimals,
// otherwise 3 significant-looking decimals trimmed of trailing zeros.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Bytes pretty-prints a byte count with binary units.
func Bytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// GBps formats a bytes-per-second rate as GB/s (decimal gigabytes, as the
// paper reports throughput).
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f GB/s", bytesPerSec/1e9)
}

// Pct formats a 0..1 fraction as a percentage.
func Pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}
