// Package metrics provides counters, distribution summaries and plain-text
// table/figure rendering for the experiment harness. All output of
// cmd/fidrbench flows through Table so every reproduced paper artifact has
// a uniform, diffable format.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset sets the counter to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Summary accumulates a stream of float64 observations and reports count,
// mean, min, max and approximate percentiles. Not safe for concurrent use;
// each goroutine should own a Summary and merge.
type Summary struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	s.samples = append(s.samples, other.samples...)
	s.sorted = false
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted samples.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.samples[rank]
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Table renders aligned plain-text tables in the style the paper's tables
// and figure data series are reported by the harness.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Note appends a footnote line rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders floats compactly: integers without decimals,
// otherwise 3 significant-looking decimals trimmed of trailing zeros.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Bytes pretty-prints a byte count with binary units.
func Bytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// GBps formats a bytes-per-second rate as GB/s (decimal gigabytes, as the
// paper reports throughput).
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f GB/s", bytesPerSec/1e9)
}

// Pct formats a 0..1 fraction as a percentage.
func Pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}
