package experiments

import (
	"fidr/internal/core"
	"fidr/internal/metrics"
)

// Lifetime quantifies the paper's opening motivation: inline reduction
// "not only improves an SSD lifetime, which is limited by the number of
// writes to its flash cells, but also reduces the initial cost per GB"
// (§1). For each workload we measure flash bytes actually written — data
// SSDs (containers) plus table SSDs (bucket fills and flushes) — per
// client byte. The inverse of that write-amplification factor is the
// lifetime multiplier over a no-reduction server (which writes every
// client byte once).
type LifetimeRow struct {
	Workload string
	// DataWAF is data-SSD flash bytes per client write byte.
	DataWAF float64
	// TableWAF is table-SSD flash bytes per client write byte (the
	// metadata tax of deduplication).
	TableWAF float64
	// LifetimeX is the data-SSD lifetime multiplier vs no reduction.
	LifetimeX float64
}

// Lifetime runs the write workloads on FIDR and reports flash-write
// accounting.
func Lifetime(sc Scale) ([]LifetimeRow, *metrics.Table, error) {
	var rows []LifetimeRow
	tab := metrics.NewTable("SSD lifetime: flash bytes written per client byte (FIDR)",
		"workload", "data-SSD WAF", "table-SSD WAF", "data-SSD lifetime multiplier")
	for _, name := range []string{"Write-H", "Write-M", "Write-L"} {
		cfg, err := serverConfig(core.FIDRFull, sc.IOs, 0.028, 4)
		if err != nil {
			return nil, nil, err
		}
		wp, err := workloadFor(name, sc.IOs, cfg.CacheLines)
		if err != nil {
			return nil, nil, err
		}
		srv, err := core.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := driveAndCollect(srv, wp); err != nil {
			return nil, nil, err
		}
		clientBytes := float64(srv.Stats().ClientBytes)
		dataWAF := float64(srv.DataSSDStats().WriteBytes) / clientBytes
		tableWAF := float64(srv.TableSSDStats().WriteBytes) / clientBytes
		row := LifetimeRow{
			Workload: name,
			DataWAF:  dataWAF,
			TableWAF: tableWAF,
		}
		if dataWAF > 0 {
			row.LifetimeX = 1 / dataWAF
		}
		rows = append(rows, row)
		tab.Row(name, row.DataWAF, row.TableWAF, metrics.FormatFloat(row.LifetimeX)+"x")
	}
	tab.Note("a no-reduction server writes 1.0 B/B to flash; dedup+compression cut it by the reduction ratio (plus container padding), at a small table-SSD write tax")
	return rows, tab, nil
}
