package experiments

import (
	"time"

	"fidr/internal/core"
	"fidr/internal/hostmodel"
	"fidr/internal/hwtree"
	"fidr/internal/metrics"
)

// EvalWorkloads are the Table 3 workload names.
func EvalWorkloads() []string {
	return []string{"Write-H", "Write-M", "Write-L", "Read-Mixed"}
}

// --- Table 3: workload characteristics ---

// Table3Row is one workload's target-vs-measured characteristics.
type Table3Row struct {
	Name                       string
	TargetDedup, MeasuredDedup float64
	TargetHit, MeasuredHit     float64
	MeasuredComp               float64
}

// Table3 generates the four workloads, runs them through the baseline
// and reports measured dedup ratio, compression ratio and cache hit rate
// against the paper's targets.
func Table3(sc Scale, opts ...func(*runOptions)) ([]Table3Row, *metrics.Table, error) {
	targets := map[string][2]float64{ // dedup, hit
		"Write-H":    {0.88, 0.90},
		"Write-M":    {0.84, 0.81},
		"Write-L":    {0.431, 0.45},
		"Read-Mixed": {0.88, 0.90},
	}
	var rows []Table3Row
	tab := metrics.NewTable("Table 3: workload summary (target vs measured)",
		"workload", "dedup target", "dedup measured", "comp measured",
		"hit target", "hit measured")
	for _, name := range EvalWorkloads() {
		r, err := Run(core.Baseline, name, sc, opts...)
		if err != nil {
			return nil, nil, err
		}
		st := r.Server
		dedup := 0.0
		if writes := st.UniqueChunks + st.DuplicateChunks; writes > 0 {
			dedup = float64(st.DuplicateChunks) / float64(writes)
		}
		comp := 1.0
		if st.UniqueChunks > 0 {
			comp = float64(st.StoredBytes) / float64(st.UniqueChunks*4096)
		}
		row := Table3Row{
			Name:          name,
			TargetDedup:   targets[name][0],
			MeasuredDedup: dedup,
			TargetHit:     targets[name][1],
			MeasuredHit:   r.Cache.HitRate(),
			MeasuredComp:  comp,
		}
		rows = append(rows, row)
		tab.Row(name, metrics.Pct(row.TargetDedup), metrics.Pct(row.MeasuredDedup),
			metrics.Pct(row.MeasuredComp), metrics.Pct(row.TargetHit), metrics.Pct(row.MeasuredHit))
	}
	tab.Note("paper sizes: 176-180M IOs (~704 GB); runs here are scale-invariant subsets")
	return rows, tab, nil
}

// --- Figure 11: host memory bandwidth, baseline vs FIDR ---

// Fig11Row is one workload's comparison.
type Fig11Row struct {
	Workload           string
	BaselineMemPerByte float64
	FIDRMemPerByte     float64
	Reduction          float64
}

// Fig11 reproduces Figure 11: FIDR's host-memory-bandwidth reduction per
// workload (paper: up to 79.1% write-only, 84.9% mixed).
func Fig11(sc Scale) ([]Fig11Row, *metrics.Table, error) {
	var rows []Fig11Row
	tab := metrics.NewTable("Figure 11: host memory BW utilization (per client byte)",
		"workload", "baseline B/B", "FIDR B/B", "reduction", "baseline @75GB/s", "FIDR @75GB/s")
	for _, name := range EvalWorkloads() {
		base, err := Run(core.Baseline, name, sc)
		if err != nil {
			return nil, nil, err
		}
		fidr, err := Run(core.FIDRFull, name, sc)
		if err != nil {
			return nil, nil, err
		}
		row := Fig11Row{
			Workload:           name,
			BaselineMemPerByte: base.MemPerByte(),
			FIDRMemPerByte:     fidr.MemPerByte(),
		}
		if row.BaselineMemPerByte > 0 {
			row.Reduction = 1 - row.FIDRMemPerByte/row.BaselineMemPerByte
		}
		rows = append(rows, row)
		tab.Row(name, row.BaselineMemPerByte, row.FIDRMemPerByte, metrics.Pct(row.Reduction),
			metrics.GBps(base.Snapshot.MemBWAt(TargetThroughput)),
			metrics.GBps(fidr.Snapshot.MemBWAt(TargetThroughput)))
	}
	tab.Note("paper: reductions up to 79.1%% (write-only) and 84.9%% (Read-Mixed)")
	return rows, tab, nil
}

// --- Figure 12: CPU utilization, baseline vs FIDR ---

// Fig12Row is one workload's CPU comparison, with the stacked savings
// attribution the paper plots (NIC hashing removes the predictor; the
// Cache HW-Engine removes tree + table-SSD stack).
type Fig12Row struct {
	Workload          string
	BaselineNsPerByte float64
	NicOnlyNsPerByte  float64
	FIDRNsPerByte     float64
	TotalReduction    float64
	FromNICHashing    float64
	FromHWCache       float64
}

// Fig12 reproduces Figure 12 (paper: up to 68% reduction write-only,
// 39% mixed; 20-37% from removing the predictor, 19-44% points more from
// HW table-cache management).
func Fig12(sc Scale) ([]Fig12Row, *metrics.Table, error) {
	var rows []Fig12Row
	tab := metrics.NewTable("Figure 12: host CPU utilization (ns per client byte)",
		"workload", "baseline", "+NIC/P2P", "+HW cache", "total reduction",
		"from NIC hashing", "from HW cache")
	for _, name := range EvalWorkloads() {
		base, err := Run(core.Baseline, name, sc)
		if err != nil {
			return nil, nil, err
		}
		nicOnly, err := Run(core.FIDRNicP2P, name, sc)
		if err != nil {
			return nil, nil, err
		}
		full, err := Run(core.FIDRFull, name, sc)
		if err != nil {
			return nil, nil, err
		}
		row := Fig12Row{
			Workload:          name,
			BaselineNsPerByte: base.CPUNsPerByte(),
			NicOnlyNsPerByte:  nicOnly.CPUNsPerByte(),
			FIDRNsPerByte:     full.CPUNsPerByte(),
		}
		if row.BaselineNsPerByte > 0 {
			row.TotalReduction = 1 - row.FIDRNsPerByte/row.BaselineNsPerByte
			row.FromNICHashing = 1 - row.NicOnlyNsPerByte/row.BaselineNsPerByte
			row.FromHWCache = row.TotalReduction - row.FromNICHashing
		}
		rows = append(rows, row)
		tab.Row(name, row.BaselineNsPerByte, row.NicOnlyNsPerByte, row.FIDRNsPerByte,
			metrics.Pct(row.TotalReduction), metrics.Pct(row.FromNICHashing), metrics.Pct(row.FromHWCache))
	}
	tab.Note("paper: up to 68%% (write-only) and 39%% (mixed) CPU reduction")
	return rows, tab, nil
}

// --- Figure 13: Cache HW-Engine throughput ---

// Fig13Row is one (workload, width) model point.
type Fig13Row struct {
	Workload string
	Width    int
	GBps     float64
	// Binding names the limiting resource.
	Binding string
}

// crashRateMemo caches measured speculative crash rates per width.
var crashRateMemo = map[int]float64{}

// measuredCrashRate runs the speculative executor over a paper-scale tree
// (the prototype's 410-MB cache indexes ~100K lines) with width-way
// random updates and returns the observed crash/replay rate. The
// functional experiment trees are far smaller (2.8% of a scaled-down
// table), which would overstate conflicts by orders of magnitude, so the
// crash rate is measured at the size the device actually runs at. Bucket
// indexes are uniform hashes, so the update key distribution is the same
// for every workload.
func measuredCrashRate(width int) (float64, error) {
	if r, ok := crashRateMemo[width]; ok {
		return r, nil
	}
	tree := hwtree.NewTree()
	seed := uint64(0x5EED)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed % hwtree.MediumCacheLines
	}
	for i := 0; i < int(hwtree.MediumCacheLines); i++ {
		tree.Put(next(), uint64(i))
	}
	exec, err := hwtree.NewSpecExecutor(tree, width)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 20000; i++ {
		if i%2 == 0 {
			exec.Enqueue(hwtree.Update{Kind: hwtree.UpdateInsert, Key: next(), Val: 1})
		} else {
			exec.Enqueue(hwtree.Update{Kind: hwtree.UpdateDelete, Key: next()})
		}
		if exec.Pending() >= width {
			exec.Drain()
		}
	}
	exec.Drain()
	r := exec.Stats().CrashRate()
	crashRateMemo[width] = r
	return r, nil
}

// calibratedLeafHit returns the on-chip leaf-cache hit rate used for the
// device model. At paper scale the prototype's ~1-MB leaf cache absorbs a
// large share of Write-H's leaf reads (its hot bucket set is small enough
// to concentrate on cached leaves) but almost none of Write-M/L's; our
// scaled-down functional trees are too small to reproduce that locality,
// so the value is calibrated per workload against the Figure 13 anchors
// (see EXPERIMENTS.md).
func calibratedLeafHit(name string) float64 {
	switch name {
	case "Write-H", "Read-Mixed":
		return 0.40
	default:
		return 0
	}
}

// Fig13 reproduces Figure 13: HW tree throughput with 1/2/4 concurrent
// updates. Workload points (miss rate, crash rate) are measured
// functionally from the FIDR runs; the leaf-cache hit is calibrated
// (calibratedLeafHit). The points feed the pipeline throughput model.
func Fig13(sc Scale) ([]Fig13Row, *metrics.Table, error) {
	p := hwtree.MediumTreeParams()
	var rows []Fig13Row
	tab := metrics.NewTable("Figure 13: Cache HW-Engine throughput (modeled from measured workload points)",
		"workload", "miss rate", "leaf$ hit", "1 update", "2 updates", "4 updates")
	for _, name := range []string{"Write-H", "Write-M", "Write-L"} {
		r, err := Run(core.FIDRFull, name, sc)
		if err != nil {
			return nil, nil, err
		}
		wl := hwtree.WorkloadPoint{
			MissRate:     1 - r.Cache.HitRate(),
			LeafCacheHit: calibratedLeafHit(name),
		}
		var cells []any
		cells = append(cells, name, metrics.Pct(wl.MissRate), metrics.Pct(wl.LeafCacheHit))
		for _, w := range []int{1, 2, 4} {
			crash, err := measuredCrashRate(w)
			if err != nil {
				return nil, nil, err
			}
			wl.CrashRate = crash
			bps, caps, err := p.Throughput(wl, w)
			if err != nil {
				return nil, nil, err
			}
			binding := "update"
			min := caps.Update
			if caps.DRAMPort < min {
				binding, min = "dram", caps.DRAMPort
			}
			if caps.Clock < min {
				binding = "clock"
			}
			rows = append(rows, Fig13Row{Workload: name, Width: w, GBps: bps / 1e9, Binding: binding})
			cells = append(cells, metrics.GBps(bps))
		}
		tab.Row(cells...)
	}
	c4, _ := measuredCrashRate(4)
	tab.Note("speculative crash/replay rate at width 4 on a paper-scale (~100K-line) tree: %.3f%% (paper: <0.1%%)", 100*c4)
	tab.Note("paper anchors: Write-M 27.1 GB/s (1 update) -> 63.8 GB/s (4); Write-H saturates ~127 GB/s at DRAM BW")
	return rows, tab, nil
}

// --- Figure 14: overall throughput ---

// Fig14Row is one workload's throughput series across configurations.
type Fig14Row struct {
	Workload string
	// GBps per configuration: baseline, +NIC/P2P, +HW$ single-update,
	// +HW$ multi-update.
	Baseline, NicP2P, HWSingle, HWMulti float64
	Speedup                             float64
}

// Fig14 reproduces Figure 14: per-socket throughput projection for the
// four configurations. Host intensities come from functional runs; the
// Cache HW-Engine configurations are additionally capped by the Figure 13
// device model at the matching update width.
func Fig14(sc Scale) ([]Fig14Row, *metrics.Table, error) {
	sock := hostmodel.PaperSocket()
	tp := hwtree.MediumTreeParams()
	var rows []Fig14Row
	tab := metrics.NewTable("Figure 14: overall throughput (projected per socket)",
		"workload", "baseline", "+NIC/P2P", "+HW$ 1-update", "+HW$ 4-update", "speedup")
	for _, name := range EvalWorkloads() {
		base, err := Run(core.Baseline, name, sc)
		if err != nil {
			return nil, nil, err
		}
		nic, err := Run(core.FIDRNicP2P, name, sc)
		if err != nil {
			return nil, nil, err
		}
		single, err := Run(core.FIDRFull, name, sc, WithWidth(1))
		if err != nil {
			return nil, nil, err
		}
		multi, err := Run(core.FIDRFull, name, sc, WithWidth(4))
		if err != nil {
			return nil, nil, err
		}
		cap := func(r RunResult, width int) float64 {
			crash, err := measuredCrashRate(width)
			if err != nil {
				return 0
			}
			wl := hwtree.WorkloadPoint{
				MissRate:     1 - r.Cache.HitRate(),
				CrashRate:    crash,
				LeafCacheHit: calibratedLeafHit(name),
			}
			bps, _, err := tp.Throughput(wl, width)
			if err != nil {
				return 0
			}
			return bps
		}
		row := Fig14Row{
			Workload: name,
			Baseline: sock.MaxThroughput(base.Snapshot, 0) / 1e9,
			NicP2P:   sock.MaxThroughput(nic.Snapshot, 0) / 1e9,
			HWSingle: sock.MaxThroughput(single.Snapshot, cap(single, 1)) / 1e9,
			HWMulti:  sock.MaxThroughput(multi.Snapshot, cap(multi, 4)) / 1e9,
		}
		if row.Baseline > 0 {
			row.Speedup = row.HWMulti / row.Baseline
		}
		rows = append(rows, row)
		tab.Row(name, metrics.GBps(row.Baseline*1e9), metrics.GBps(row.NicP2P*1e9),
			metrics.GBps(row.HWSingle*1e9), metrics.GBps(row.HWMulti*1e9),
			metrics.FormatFloat(row.Speedup)+"x")
	}
	tab.Note("paper: up to 3.3x (write-only), 1.7x (Read-Mixed); single-update HW$ can degrade Write-L/M")
	return rows, tab, nil
}

// --- §7.6: request latency ---

// LatencyResult holds the modeled request latencies.
type LatencyResult struct {
	BaselineRead, FIDRRead   time.Duration
	BaselineWrite, FIDRWrite time.Duration
}

// Latency reproduces §7.6: server-side read latency (paper: 700 us ->
// 490 us) and unchanged write commit latency.
func Latency() (LatencyResult, *metrics.Table) {
	p := core.DefaultLatency()
	res := LatencyResult{
		BaselineRead:  p.ReadLatency(core.Baseline),
		FIDRRead:      p.ReadLatency(core.FIDRFull),
		BaselineWrite: p.WriteCommitLatency(core.Baseline),
		FIDRWrite:     p.WriteCommitLatency(core.FIDRFull),
	}
	tab := metrics.NewTable("Section 7.6: request latency",
		"metric", "baseline", "FIDR", "paper")
	tab.Row("batched 4-KB read (server side)", res.BaselineRead.String(), res.FIDRRead.String(), "700us -> 490us")
	tab.Row("write commit", res.BaselineWrite.String(), res.FIDRWrite.String(), "unchanged (NVRAM buffering)")
	return res, tab
}
