package experiments

import (
	"testing"

	"fidr/internal/core"
)

// TestTable3LaneDeterminism is the experiment-plane half of the lane
// invariant: the full Table 3 evaluation — every workload through a real
// baseline server — renders byte-identical output and identical server
// stats at 1, 2 and 8 accelerator lanes.
func TestTable3LaneDeterminism(t *testing.T) {
	sc := TestScale()
	refRows, refTab, err := Table3(sc, WithLanes(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	refOut := refTab.String()
	if refOut == "" {
		t.Fatal("empty rendered table")
	}
	for _, n := range []int{2, 8} {
		rows, tab, err := Table3(sc, WithLanes(n, n))
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.String(); got != refOut {
			t.Fatalf("lanes=%d rendered output differs:\n%s\n--- want ---\n%s", n, got, refOut)
		}
		if len(rows) != len(refRows) {
			t.Fatalf("lanes=%d row count %d != %d", n, len(rows), len(refRows))
		}
		for i := range rows {
			if rows[i] != refRows[i] {
				t.Fatalf("lanes=%d row %d differs: %+v != %+v", n, i, rows[i], refRows[i])
			}
		}
	}
}

// TestRunLaneDeterminism checks the per-run stats contract Table 3 rests
// on: identical RunResult server stats and ledger snapshot across lane
// counts, for both architectures of the Write-L workload the bench lane
// sweep uses.
func TestRunLaneDeterminism(t *testing.T) {
	sc := TestScale()
	for _, arch := range []core.Arch{core.Baseline, core.FIDRFull} {
		ref, err := Run(arch, "Write-L", sc, WithLanes(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 8} {
			r, err := Run(arch, "Write-L", sc, WithLanes(n, n))
			if err != nil {
				t.Fatal(err)
			}
			if r.Server != ref.Server {
				t.Fatalf("%v lanes=%d server stats diverge", arch, n)
			}
			if r.Cache != ref.Cache {
				t.Fatalf("%v lanes=%d cache stats diverge", arch, n)
			}
			if r.Snapshot != ref.Snapshot {
				t.Fatalf("%v lanes=%d ledger snapshot diverges", arch, n)
			}
			if r.P2PBytes != ref.P2PBytes || r.RootBytes != ref.RootBytes {
				t.Fatalf("%v lanes=%d PCIe byte counts diverge", arch, n)
			}
		}
	}
}
