package experiments

import "testing"

func TestAblationChunkSizeShape(t *testing.T) {
	rows, tab, err := AblationChunkSize(Scale{IOs: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Amplification grows with chunk size; dedup and table size shrink.
	for i := 1; i < len(rows); i++ {
		if rows[i].Amplification < rows[i-1].Amplification {
			t.Errorf("amplification not increasing at %d KB", rows[i].ChunkKB)
		}
		if rows[i].DedupRatio > rows[i-1].DedupRatio+0.01 {
			t.Errorf("dedup not degrading at %d KB", rows[i].ChunkKB)
		}
		if rows[i].TableGB >= rows[i-1].TableGB {
			t.Errorf("table not shrinking at %d KB", rows[i].ChunkKB)
		}
	}
	// 4-KB table for 1 PB is ~9.5 TB (paper §2.1.3).
	if rows[0].TableGB < 8000 || rows[0].TableGB > 12000 {
		t.Errorf("4-KB table = %.0f GB, want ~9500", rows[0].TableGB)
	}
	_ = tab.String()
}

func TestAblationBatchShape(t *testing.T) {
	rows, _, err := AblationBatch(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// CPU per byte should not increase with batch size (doorbell
	// amortization); memory per byte stays in a tight band.
	if rows[2].CPUNsPerByte > rows[0].CPUNsPerByte*1.05 {
		t.Errorf("larger batches raised CPU: %.3f -> %.3f",
			rows[0].CPUNsPerByte, rows[2].CPUNsPerByte)
	}
}

func TestAblationCacheShape(t *testing.T) {
	rows, _, err := AblationCache(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRate+0.02 < rows[i-1].HitRate {
			t.Errorf("hit rate fell with more cache: %.3f -> %.3f",
				rows[i-1].HitRate, rows[i].HitRate)
		}
		if rows[i].ModelGBps+1 < rows[i-1].ModelGBps {
			t.Errorf("throughput fell with more cache")
		}
	}
}

func TestAblationWidthShape(t *testing.T) {
	rows, _, err := AblationWidth(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].GBps+0.5 < rows[i-1].GBps {
			t.Errorf("throughput decreased at width %d", rows[i].Width)
		}
		if rows[i].CrashRate+0.001 < rows[i-1].CrashRate {
			t.Errorf("crash rate decreased at width %d", rows[i].Width)
		}
	}
	// Diminishing returns: width 8 gains far less over 4 than 4 over 1.
	gainLow := rows[2].GBps - rows[0].GBps
	gainHigh := rows[4].GBps - rows[2].GBps
	if gainHigh > gainLow/2 {
		t.Errorf("no knee at width 4: gains %.1f then %.1f", gainLow, gainHigh)
	}
}

func TestAblationReadOffloadShape(t *testing.T) {
	rows, _, err := AblationReadOffload(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].CPUNsPerByte >= rows[0].CPUNsPerByte {
		t.Error("offload did not cut CPU")
	}
	if rows[1].ProjectedGB <= rows[0].ProjectedGB {
		t.Error("offload did not raise projected throughput")
	}
}

func TestAblationReadCacheShape(t *testing.T) {
	rows, _, err := AblationReadCache(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].SSDReadFrac >= rows[0].SSDReadFrac {
		t.Errorf("read cache did not reduce SSD reads: %.3f -> %.3f",
			rows[0].SSDReadFrac, rows[1].SSDReadFrac)
	}
}

func TestAblationScaleoutShape(t *testing.T) {
	rows, _, err := AblationScaleout(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Dedup-domain split: stored/client grows with group count.
	if !(rows[0].StoredPerClient < rows[1].StoredPerClient &&
		rows[1].StoredPerClient < rows[2].StoredPerClient) {
		t.Errorf("stored fraction not increasing with groups: %+v", rows)
	}
	// Per-byte host intensity rises moderately with groups: re-stored
	// cross-shard duplicates mean more unique-chunk work per client
	// byte — but nowhere near linear in group count.
	if d := rows[2].MemPerByte / rows[0].MemPerByte; d < 0.9 || d > 2.0 {
		t.Errorf("per-byte intensity ratio %.2fx across 4 groups, expected mild growth", d)
	}
}

func TestSelfPerfMeasures(t *testing.T) {
	rows, tab, err := SelfPerf()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BytesPerSec <= 0 || r.CoresAt75 <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Operation, r)
		}
	}
	// The premise: software hashing alone needs many cores at 75 GB/s.
	if rows[0].CoresAt75 < 4 {
		t.Errorf("SHA-256 at %.1f GB/s per core seems implausibly fast", rows[0].BytesPerSec/1e9)
	}
	_ = tab.String()
}

func TestLifetimeShape(t *testing.T) {
	rows, _, err := Lifetime(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.DataWAF <= 0 || r.DataWAF >= 1 {
			t.Errorf("%s: data WAF %.3f outside (0,1)", r.Workload, r.DataWAF)
		}
		if r.LifetimeX <= 1 {
			t.Errorf("%s: lifetime multiplier %.2f not above 1", r.Workload, r.LifetimeX)
		}
		if r.TableWAF < 0 || r.TableWAF > 1.0 {
			t.Errorf("%s: table WAF %.3f implausible", r.Workload, r.TableWAF)
		}
	}
	// Higher dedup -> lower WAF -> longer lifetime: H beats L.
	if rows[0].LifetimeX <= rows[2].LifetimeX {
		t.Errorf("Write-H lifetime %.2fx not above Write-L %.2fx",
			rows[0].LifetimeX, rows[2].LifetimeX)
	}
}
