package experiments

import (
	"fidr/internal/chunk"
	"fidr/internal/core"
	"fidr/internal/hostmodel"
	"fidr/internal/metrics"
	"fidr/internal/trace"
)

// --- Figure 3: IO amplification of large chunking ---

// Fig3Row is one (trace, chunking) data point.
type Fig3Row struct {
	Trace         string
	ChunkKB       int
	Amplification float64
	DedupRatio    float64
}

// Fig3Result holds the figure's series plus the headline ratio.
type Fig3Result struct {
	Rows []Fig3Row
	// MaxIncrease is the worst 32-KB/4-KB IO ratio (paper: up to 17.5x).
	MaxIncrease float64
}

// Fig3 reproduces Figure 3: deduplication with 32-KB chunking on mail and
// webVM write skeletons (4-MB request buffer) versus 4-KB chunking.
func Fig3(sc Scale) (Fig3Result, *metrics.Table, error) {
	var res Fig3Result
	tab := metrics.NewTable("Figure 3: IO amplification of large chunking",
		"trace", "chunking", "device bytes / client byte", "dedup ratio", "IO increase vs 4KB")
	for _, sk := range []trace.SkeletonParams{trace.MailSkeleton(sc.IOs), trace.WebVMSkeleton(sc.IOs)} {
		writes := trace.GenerateSkeleton(sk)
		var amps [2]float64
		for i, ck := range []int{4096, 32768} {
			r, err := chunk.SimulateRMW(chunk.RMWConfig{
				BlockSize: 4096, ChunkSize: ck, BufferBytes: 4 << 20,
			}, writes)
			if err != nil {
				return res, nil, err
			}
			amps[i] = r.Amplification()
			res.Rows = append(res.Rows, Fig3Row{
				Trace: sk.Name, ChunkKB: ck / 1024,
				Amplification: r.Amplification(), DedupRatio: r.DedupRatio(),
			})
		}
		increase := amps[1] / amps[0]
		if increase > res.MaxIncrease {
			res.MaxIncrease = increase
		}
		for _, row := range res.Rows[len(res.Rows)-2:] {
			inc := ""
			if row.ChunkKB == 32 {
				inc = metrics.FormatFloat(increase) + "x"
			}
			tab.Row(row.Trace, metrics.FormatFloat(float64(row.ChunkKB))+" KB",
				row.Amplification, row.DedupRatio, inc)
		}
	}
	tab.Note("paper: up to 17.5x IO increase from read-modify-writes and dedup degradation")
	return res, tab, nil
}

// --- Figures 4 & 5 and Tables 1 & 2: baseline profiling ---

// ProfileResult carries a baseline profiling run's projections.
type ProfileResult struct {
	Workload     string
	MemPerByte   float64
	CPUNsPerByte float64
	// MemBWAt75 / CoresAt75 are the paper-style linear projections.
	MemBWAt75 float64
	CoresAt75 float64
	// MgmtFraction is the memory/IO-management share of CPU (Fig 5b).
	MgmtFraction float64
	Snapshot     hostmodel.Snapshot
}

// profileBaseline runs the §3.2 profiling workloads on the baseline.
func profileBaseline(sc Scale) ([]ProfileResult, error) {
	var out []ProfileResult
	for _, wl := range []string{"Profiling-Write", "Profiling-Mixed"} {
		r, err := Run(core.Baseline, wl, sc, WithCacheFrac(profilingCacheFrac))
		if err != nil {
			return nil, err
		}
		out = append(out, ProfileResult{
			Workload:     wl,
			MemPerByte:   r.MemPerByte(),
			CPUNsPerByte: r.CPUNsPerByte(),
			MemBWAt75:    r.Snapshot.MemBWAt(TargetThroughput),
			CoresAt75:    r.Snapshot.CoresAt(TargetThroughput),
			MgmtFraction: r.Snapshot.ManagementCPUFraction(),
			Snapshot:     r.Snapshot,
		})
	}
	return out, nil
}

// Fig4 reproduces Figure 4: baseline host memory bandwidth, measured at
// 5 and 6.9 GB/s and projected linearly to the 75 GB/s target, against
// the socket's 170 GB/s ceiling.
func Fig4(sc Scale) ([]ProfileResult, *metrics.Table, error) {
	profiles, err := profileBaseline(sc)
	if err != nil {
		return nil, nil, err
	}
	sock := hostmodel.PaperSocket()
	tab := metrics.NewTable("Figure 4: baseline memory-bandwidth demand (projected)",
		"workload", "@5 GB/s", "@6.9 GB/s", "@75 GB/s", "socket limit", "shortfall")
	for _, p := range profiles {
		tab.Row(p.Workload,
			metrics.GBps(p.MemPerByte*MeasurementPoints[0]),
			metrics.GBps(p.MemPerByte*MeasurementPoints[1]),
			metrics.GBps(p.MemBWAt75),
			metrics.GBps(sock.MemBW),
			metrics.FormatFloat(p.MemBWAt75/sock.MemBW)+"x")
	}
	tab.Note("paper: 317 GB/s (write-only) and 269 GB/s (mixed) at 75 GB/s vs 170 GB/s socket")
	return profiles, tab, nil
}

// Fig5 reproduces Figure 5: baseline CPU demand at 75 GB/s (a) and the
// management-overhead breakdown (b).
func Fig5(sc Scale) ([]ProfileResult, *metrics.Table, error) {
	profiles, err := profileBaseline(sc)
	if err != nil {
		return nil, nil, err
	}
	tab := metrics.NewTable("Figure 5: baseline CPU demand (projected to 75 GB/s)",
		"workload", "cores needed", "socket cores", "mgmt overhead share")
	for _, p := range profiles {
		tab.Row(p.Workload, p.CoresAt75, 22, metrics.Pct(p.MgmtFraction))
	}
	tab.Note("paper: up to 67 cores; 85.2%% (write-only) / 50.8%% (mixed) is memory/scheduling management")
	return profiles, tab, nil
}

// Table1 reproduces Table 1: memory-bandwidth breakdown by datapath with
// memory-capacity classes.
func Table1(sc Scale) ([]ProfileResult, *metrics.Table, error) {
	profiles, err := profileBaseline(sc)
	if err != nil {
		return nil, nil, err
	}
	capClass := map[hostmodel.Path]string{
		hostmodel.PathNICHost:    "KBs-MBs",
		hostmodel.PathPredictor:  "MBs",
		hostmodel.PathHostFPGA:   "MBs",
		hostmodel.PathTableCache: "10-100s GB",
		hostmodel.PathHostSSD:    "KBs-MBs",
	}
	paperWrite := map[hostmodel.Path]string{
		hostmodel.PathNICHost:    "23.6%",
		hostmodel.PathPredictor:  "23.7%",
		hostmodel.PathHostFPGA:   "25.4%",
		hostmodel.PathTableCache: "25.7%",
		hostmodel.PathHostSSD:    "1.7%",
	}
	tab := metrics.NewTable("Table 1: memory-BW breakdown of baseline datapaths",
		"data path", "mem BW (write-only)", "mem BW (mixed)", "paper (write-only)", "memory capacity")
	for _, p := range hostmodel.Paths() {
		tab.Row(p.String(),
			metrics.Pct(profiles[0].Snapshot.MemFraction(p)),
			metrics.Pct(profiles[1].Snapshot.MemFraction(p)),
			paperWrite[p],
			capClass[p])
	}
	return profiles, tab, nil
}

// Table2 reproduces Table 2: CPU and memory-capacity split of table-cache
// management components with their "best place to run".
func Table2(sc Scale) (*metrics.Table, error) {
	profiles, err := profileBaseline(sc)
	if err != nil {
		return nil, err
	}
	snap := profiles[0].Snapshot
	// Normalize within table-caching components, as the paper does.
	comps := []struct {
		c     hostmodel.Component
		mem   string
		best  string
		paper string
	}{
		{hostmodel.CompTreeIndex, "Below 3 GB (tree nodes)", "Accelerator", "43.9%"},
		{hostmodel.CompTableSSDIO, "KB-MBs (IO control queues)", "Accelerator", "24.7%"},
		{hostmodel.CompTableContent, "10-100s GB (cache content)", "Host", "6.3%"},
		{hostmodel.CompTableReplace, "MBs (LRU and free lists)", "Host or accelerator", "1.0%"},
	}
	var cacheTotal uint64
	for _, c := range comps {
		cacheTotal += snap.CPUNanos[c.c]
	}
	total := snap.TotalCPUNanos()
	tab := metrics.NewTable("Table 2: CPU split of table-cache management (write-only)",
		"component", "CPU util (of total)", "of table caching", "paper", "memory structure", "best place")
	for _, c := range comps {
		frac := 0.0
		if total > 0 {
			frac = float64(snap.CPUNanos[c.c]) / float64(total)
		}
		inner := 0.0
		if cacheTotal > 0 {
			inner = float64(snap.CPUNanos[c.c]) / float64(cacheTotal)
		}
		tab.Row(c.c.String(), metrics.Pct(frac), metrics.Pct(inner), c.paper, c.mem, c.best)
	}
	tab.Note("paper: 68.8%% of table-caching CPU goes to small data structures (tree + SSD stack)")
	return tab, nil
}
