// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each Fig*/Table* function runs the
// functional servers (internal/core) on synthesized workloads
// (internal/trace), feeds the measured ledgers through the projection
// models, and returns both structured results and a rendered table whose
// rows mirror the paper's artifact. cmd/fidrbench prints them;
// bench_test.go wraps them as benchmarks; EXPERIMENTS.md records
// paper-vs-measured.
package experiments

import (
	"fmt"

	"fidr/internal/core"
	"fidr/internal/hashpbn"
	"fidr/internal/hostmodel"
	"fidr/internal/tablecache"
	"fidr/internal/trace"

	"fidr/internal/blockcomp"
)

// Scale controls experiment size. Functional runs are scale-invariant in
// the ratios that matter (dedup, hit rates, per-byte intensities), so
// tests use small scales and the harness uses larger ones.
type Scale struct {
	// IOs is the number of client requests per workload run.
	IOs int
}

// DefaultScale suits the benchmark harness.
func DefaultScale() Scale { return Scale{IOs: 60000} }

// TestScale suits unit tests.
func TestScale() Scale { return Scale{IOs: 8000} }

// serverConfig sizes a server for a workload run of n IOs. cacheFrac is
// the cached share of table buckets (the paper's 2.8%, or a calibration
// override for the §3.2 profiling runs).
func serverConfig(arch core.Arch, n int, cacheFrac float64, width int) (core.Config, error) {
	cfg := core.DefaultConfig(arch)
	// Containers must seal often enough that reads exercise the SSD
	// path (at paper scale containers turn over constantly).
	cfg.ContainerSize = 128 << 10
	cfg.UniqueChunkCapacity = uint64(n) + 4096
	// Keep the bucket population large enough that the 64-line cache
	// floor stays a small fraction of the table; otherwise small-scale
	// runs inflate hit rates (unique fingerprints land in cached
	// buckets far more often than at paper scale).
	if cfg.UniqueChunkCapacity < 1<<17 {
		cfg.UniqueChunkCapacity = 1 << 17
	}
	cfg.UpdateWidth = width
	geom, err := hashpbn.GeometryFor(cfg.UniqueChunkCapacity, 0.5)
	if err != nil {
		return core.Config{}, err
	}
	lines := int(float64(geom.NumBuckets) * cacheFrac)
	if lines < 64 {
		lines = 64
	}
	cfg.CacheLines = lines
	return cfg, nil
}

// workloadFor builds trace parameters whose reuse window is sized
// against the cache so the Table 3 hit-rate targets emerge functionally:
// a window comfortably inside the cache makes nearly every duplicate's
// bucket a cache hit, so hit rate tracks the dedup ratio (Write-H/L),
// while a window beyond the cache depresses it (Write-M).
func workloadFor(name string, n, cacheLines int) (trace.Params, error) {
	var p trace.Params
	switch name {
	case "Write-H":
		p = trace.WriteH(n)
		p.ReuseWindow = cacheLines / 4
	case "Write-M":
		// Write-M's 81% hit target sits below its 84% dedup ratio:
		// a slice of duplicates reuses content from deep history
		// whose buckets fell out of the cache.
		p = trace.WriteM(n)
		p.ReuseWindow = cacheLines / 4
		p.FarReuseFraction = 0.05
	case "Write-L":
		p = trace.WriteL(n)
		p.ReuseWindow = cacheLines / 4
	case "Read-Mixed":
		p = trace.ReadMixed(n)
		p.ReuseWindow = cacheLines / 4
	case "Read-Skewed":
		// §8's imbalanced-read scenario: Read-Mixed with Zipf-skewed
		// read addresses hammering a hot set.
		p = trace.ReadMixed(n)
		p.Name = "Read-Skewed"
		p.ReuseWindow = cacheLines / 4
		p.ReadSkew = 1.4
	case "Archival":
		// Durability extension: append-heavy backup ingest with long
		// sequential runs; drives the WAL/recovery benchmarks.
		p = trace.Archival(n)
		p.ReuseWindow = cacheLines / 4
	case "Profiling-Write", "Profiling-Mixed":
		// §3.2 profiling workloads: dedup and compression both 50%.
		p = trace.WriteH(n)
		p.Name = name
		p.DedupRatio = 0.5
		p.ReuseWindow = cacheLines / 4
		if name == "Profiling-Mixed" {
			p.ReadFraction = 0.5
		}
	default:
		return trace.Params{}, fmt.Errorf("experiments: unknown workload %q", name)
	}
	if p.ReuseWindow < 8 {
		p.ReuseWindow = 8
	}
	return p, nil
}

// RunResult captures one (architecture, workload) functional run.
type RunResult struct {
	Arch     core.Arch
	Workload string
	Snapshot hostmodel.Snapshot
	Server   core.Stats
	Cache    tablecache.Stats
	// P2PBytes and RootBytes summarize PCIe routing.
	P2PBytes, RootBytes uint64
}

// MemPerByte is host-memory bytes per client byte.
func (r RunResult) MemPerByte() float64 { return r.Snapshot.MemPerClientByte() }

// CPUNsPerByte is host-CPU nanoseconds per client byte.
func (r RunResult) CPUNsPerByte() float64 { return r.Snapshot.CPUNanosPerClientByte() }

// runOptions tweak a run.
type runOptions struct {
	cacheFrac float64
	width     int
	// hashLanes / compressLanes size the accelerator lane arrays.
	// Experiments pin both to 1 by default so published artifacts never
	// depend on the host's core count; results are byte-identical at any
	// lane count regardless (see WithLanes).
	hashLanes     int
	compressLanes int
}

func defaultRunOptions() runOptions {
	// The paper caches 2.8% of the table (§7.1 factor 5).
	return runOptions{cacheFrac: 0.028, width: 4, hashLanes: 1, compressLanes: 1}
}

// Run executes workload wl on architecture arch at the given scale and
// returns the measured result.
func Run(arch core.Arch, workload string, sc Scale, opts ...func(*runOptions)) (RunResult, error) {
	o := defaultRunOptions()
	for _, f := range opts {
		f(&o)
	}
	cfg, err := serverConfig(arch, sc.IOs, o.cacheFrac, o.width)
	if err != nil {
		return RunResult{}, err
	}
	cfg.HashLanes = o.hashLanes
	cfg.CompressLanes = o.compressLanes
	wp, err := workloadFor(workload, sc.IOs, cfg.CacheLines)
	if err != nil {
		return RunResult{}, err
	}
	return runGenerated(cfg, wp)
}

// runGenerated drives one server configuration through one generated
// workload and collects the measurements.
func runGenerated(cfg core.Config, wp trace.Params) (RunResult, error) {
	srv, err := core.New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	return driveAndCollect(srv, wp)
}

// driveAndCollect streams a workload through an existing server.
func driveAndCollect(srv *core.Server, wp trace.Params) (RunResult, error) {
	cfg := srv.Config()
	gen, err := trace.NewGenerator(wp)
	if err != nil {
		return RunResult{}, err
	}
	sh := blockcomp.NewShaper(wp.CompressRatio)
	buf := make([]byte, cfg.ChunkSize)
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		switch req.Op {
		case trace.OpWrite:
			sh.Block(req.ContentSeed, buf)
			if err := srv.Write(req.LBA, buf); err != nil {
				return RunResult{}, fmt.Errorf("experiments: %s/%s write: %w", cfg.Arch, wp.Name, err)
			}
		case trace.OpRead:
			if _, err := srv.Read(req.LBA); err != nil && err != core.ErrNotFound {
				return RunResult{}, fmt.Errorf("experiments: %s/%s read: %w", cfg.Arch, wp.Name, err)
			}
		}
	}
	if err := srv.Flush(); err != nil {
		return RunResult{}, err
	}
	_, p2p, root := srv.Topology().Report()
	return RunResult{
		Arch:      cfg.Arch,
		Workload:  wp.Name,
		Snapshot:  srv.Ledger().Snapshot(),
		Server:    srv.Stats(),
		Cache:     srv.CacheStats(),
		P2PBytes:  p2p,
		RootBytes: root,
	}, nil
}

// ConfigFor exposes the experiment-standard server sizing (paper cache
// fraction, default tree width) for external drivers such as the bench
// artifact pipeline.
func ConfigFor(arch core.Arch, n int) (core.Config, error) {
	o := defaultRunOptions()
	return serverConfig(arch, n, o.cacheFrac, o.width)
}

// WorkloadParams exposes the experiment-standard workload tuning for
// external drivers.
func WorkloadParams(name string, n, cacheLines int) (trace.Params, error) {
	return workloadFor(name, n, cacheLines)
}

// WithCacheFrac overrides the cached table fraction.
func WithCacheFrac(f float64) func(*runOptions) {
	return func(o *runOptions) { o.cacheFrac = f }
}

// WithWidth overrides the HW tree's concurrent update width.
func WithWidth(w int) func(*runOptions) {
	return func(o *runOptions) { o.width = w }
}

// WithLanes overrides the accelerator lane counts (hash cores and
// compression pipelines). 0 selects the GOMAXPROCS-derived default.
// Lane count changes wall time only: every rendered table, figure and
// stats snapshot is byte-identical across lane counts.
func WithLanes(hash, compress int) func(*runOptions) {
	return func(o *runOptions) {
		o.hashLanes = hash
		o.compressLanes = compress
	}
}

// profilingCacheFrac calibrates the §3.2 profiling runs: the paper's
// trace extraction produced ~80% table-cache hit rates on its profiling
// workloads; at small synthetic scale the same hit rate needs a larger
// cached fraction because unique fingerprints spread over fewer buckets
// (with 50% dedup, hit rate ~= 0.5 + 0.5*cacheFrac, so 0.7 lands near
// the paper's operating point).
const profilingCacheFrac = 0.70

// TargetThroughput is the paper's 75 GB/s per-socket goal.
const TargetThroughput = 75e9

// MeasurementPoints are the two throughputs the paper measures at before
// projecting linearly (§3.2).
var MeasurementPoints = []float64{5e9, 6.9e9}
