package experiments

import (
	"time"

	"fidr/internal/core"
	"fidr/internal/metrics"
)

// Observe runs the Read-Mixed workload on full FIDR with live
// observability enabled and renders the resulting metrics registry. The
// metric names are exactly the ones fidrd serves at -metrics-addr
// (stage.*, latency.*, core.*, tablecache.*, nic.*, engine.*, ssd.*),
// so bench output and a live daemon's /metrics dump line up directly.
func Observe(sc Scale) (string, *metrics.Table, error) {
	cfg, err := serverConfig(core.FIDRFull, sc.IOs, 0.028, 4)
	if err != nil {
		return "", nil, err
	}
	srv, err := core.New(cfg)
	if err != nil {
		return "", nil, err
	}
	reg := srv.EnableObservability(nil, 64)
	wp, err := workloadFor("Read-Mixed", sc.IOs, cfg.CacheLines)
	if err != nil {
		return "", nil, err
	}
	if _, err := driveAndCollect(srv, wp); err != nil {
		return "", nil, err
	}

	tab := metrics.NewTable("live observability registry (FIDR, Read-Mixed)",
		"metric", "count/value", "mean", "p50", "p99", "max")
	for _, m := range reg.Snapshot() {
		switch m.Kind {
		case "hist":
			h := m.Hist
			tab.Row(m.Name, h.Count,
				time.Duration(h.Mean).Round(time.Nanosecond).String(),
				time.Duration(h.P50).Round(time.Nanosecond).String(),
				time.Duration(h.P99).Round(time.Nanosecond).String(),
				time.Duration(h.Max).Round(time.Nanosecond).String())
		default:
			tab.Row(m.Name, metrics.FormatFloat(m.Value), "", "", "", "")
		}
	}
	tab.Note("histogram cells are wall-clock nanosecond distributions; same names as fidrd -metrics-addr")
	return reg.Dump(), tab, nil
}
