package experiments

import (
	"fidr/internal/blockcomp"
	"fidr/internal/chunk"
	"fidr/internal/core"
	"fidr/internal/hashpbn"
	"fidr/internal/hostmodel"
	"fidr/internal/hwtree"
	"fidr/internal/metrics"
	"fidr/internal/trace"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: each isolates one knob of the architecture
// and quantifies its contribution.

// AblationChunkSizeRow is one chunking granularity's trade-off point.
type AblationChunkSizeRow struct {
	ChunkKB       int
	Amplification float64
	DedupRatio    float64
	TableGB       float64
}

// AblationChunkSize sweeps the dedup granularity (4/8/16/32 KB) over the
// mail skeleton, quantifying §3.1's trade-off: small chunks maximize
// dedup and avoid read-modify-write amplification but inflate the
// Hash-PBN table; CIDR's 32-KB choice minimizes the table and destroys
// both other properties.
func AblationChunkSize(sc Scale) ([]AblationChunkSizeRow, *metrics.Table, error) {
	writes := trace.GenerateSkeleton(trace.MailSkeleton(sc.IOs))
	var rows []AblationChunkSizeRow
	tab := metrics.NewTable("Ablation: chunking granularity (mail skeleton, 1-PB unique capacity)",
		"chunk size", "IO amplification", "dedup ratio", "Hash-PBN table")
	const uniquePB = 1 << 50 / 4096 // unique chunks at 4-KB granularity for 1 PB
	for _, kb := range []int{4, 8, 16, 32} {
		r, err := chunk.SimulateRMW(chunk.RMWConfig{
			BlockSize: 4096, ChunkSize: kb * 1024, BufferBytes: 4 << 20,
		}, writes)
		if err != nil {
			return nil, nil, err
		}
		geom, err := hashpbn.GeometryFor(uniquePB*4/uint64(kb), 1.0)
		if err != nil {
			return nil, nil, err
		}
		row := AblationChunkSizeRow{
			ChunkKB:       kb,
			Amplification: r.Amplification(),
			DedupRatio:    r.DedupRatio(),
			TableGB:       float64(geom.TableBytes()) / 1e9,
		}
		rows = append(rows, row)
		tab.Row(metrics.FormatFloat(float64(kb))+" KB", row.Amplification,
			metrics.Pct(row.DedupRatio), metrics.FormatFloat(row.TableGB/1000)+" TB")
	}
	tab.Note("4-KB chunking trades a ~10x larger metadata table for dedup quality and no RMW — the premise of the whole paper")
	return rows, tab, nil
}

// AblationBatchRow is one batch-size point.
type AblationBatchRow struct {
	BatchChunks  int
	MemPerByte   float64
	CPUNsPerByte float64
}

// AblationBatch sweeps the accelerator batch size on FIDR: larger batches
// amortize per-batch device interactions but raise NIC buffer residency.
func AblationBatch(sc Scale) ([]AblationBatchRow, *metrics.Table, error) {
	var rows []AblationBatchRow
	tab := metrics.NewTable("Ablation: accelerator batch size (FIDR, Write-H)",
		"batch (chunks)", "host mem B/B", "host CPU ns/B")
	for _, batch := range []int{16, 64, 256} {
		cfg, err := serverConfig(core.FIDRFull, sc.IOs, 0.028, 4)
		if err != nil {
			return nil, nil, err
		}
		cfg.BatchChunks = batch
		r, err := runWithConfig(cfg, "Write-H", sc)
		if err != nil {
			return nil, nil, err
		}
		row := AblationBatchRow{BatchChunks: batch, MemPerByte: r.MemPerByte(), CPUNsPerByte: r.CPUNsPerByte()}
		rows = append(rows, row)
		tab.Row(batch, row.MemPerByte, row.CPUNsPerByte)
	}
	tab.Note("per-batch device doorbells amortize with batch size; data-plane bytes are batch-invariant")
	return rows, tab, nil
}

// AblationCacheRow is one cache-size point.
type AblationCacheRow struct {
	CacheFrac float64
	HitRate   float64
	// ModelGBps is the Cache HW-Engine model at width 4 for the
	// resulting miss rate.
	ModelGBps float64
}

// AblationCache sweeps the cached fraction of the Hash-PBN table on
// Write-M, connecting DRAM spend to hit rate to engine throughput.
func AblationCache(sc Scale) ([]AblationCacheRow, *metrics.Table, error) {
	var rows []AblationCacheRow
	tab := metrics.NewTable("Ablation: table-cache size (Write-M)",
		"cached fraction", "hit rate", "HW-engine model @4 updates")
	p := hwtree.MediumTreeParams()
	crash, err := measuredCrashRate(4)
	if err != nil {
		return nil, nil, err
	}
	for _, frac := range []float64{0.01, 0.028, 0.10, 0.30} {
		r, err := Run(core.FIDRFull, "Write-M", sc, WithCacheFrac(frac))
		if err != nil {
			return nil, nil, err
		}
		wl := hwtree.WorkloadPoint{MissRate: 1 - r.Cache.HitRate(), CrashRate: crash}
		bps, _, err := p.Throughput(wl, 4)
		if err != nil {
			return nil, nil, err
		}
		row := AblationCacheRow{CacheFrac: frac, HitRate: r.Cache.HitRate(), ModelGBps: bps / 1e9}
		rows = append(rows, row)
		tab.Row(metrics.Pct(frac), metrics.Pct(row.HitRate), metrics.GBps(bps))
	}
	tab.Note("the paper's 2.8%% operating point buys most of the achievable hit rate for Write-M's locality")
	return rows, tab, nil
}

// AblationWidthRow is one speculation-width point.
type AblationWidthRow struct {
	Width     int
	CrashRate float64
	GBps      float64
}

// AblationWidth extends Figure 13 beyond the paper's 4-way speculation,
// showing where wider issue stops paying (DRAM port saturation) and how
// the crash rate grows.
func AblationWidth(sc Scale) ([]AblationWidthRow, *metrics.Table, error) {
	r, err := Run(core.FIDRFull, "Write-M", sc)
	if err != nil {
		return nil, nil, err
	}
	p := hwtree.MediumTreeParams()
	var rows []AblationWidthRow
	tab := metrics.NewTable("Ablation: speculative update width (Write-M)",
		"width", "crash rate", "modeled throughput")
	for _, w := range []int{1, 2, 4, 8, 16} {
		crash, err := measuredCrashRate(w)
		if err != nil {
			return nil, nil, err
		}
		wl := hwtree.WorkloadPoint{MissRate: 1 - r.Cache.HitRate(), CrashRate: crash}
		bps, _, err := p.Throughput(wl, w)
		if err != nil {
			return nil, nil, err
		}
		row := AblationWidthRow{Width: w, CrashRate: crash, GBps: bps / 1e9}
		rows = append(rows, row)
		tab.Row(w, metrics.Pct(crash), metrics.GBps(bps))
	}
	tab.Note("beyond width 4 the DRAM port binds: the paper's choice is the knee")
	return rows, tab, nil
}

// AblationReadOffloadRow compares Read-Mixed with and without the §7.5
// future-work NVMe offload.
type AblationReadOffloadRow struct {
	Offload      bool
	CPUNsPerByte float64
	ProjectedGB  float64
}

// AblationReadOffload implements and measures the paper's future work:
// moving the data-SSD read queues into the FPGA lifts Read-Mixed's
// projected throughput, which §7.5 identifies as the remaining ceiling.
func AblationReadOffload(sc Scale) ([]AblationReadOffloadRow, *metrics.Table, error) {
	sock := hostmodel.PaperSocket()
	var rows []AblationReadOffloadRow
	tab := metrics.NewTable("Ablation: NVMe read-path offload (Read-Mixed, §7.5 future work)",
		"data-SSD queues", "host CPU ns/B", "projected throughput")
	for _, offload := range []bool{false, true} {
		cfg, err := serverConfig(core.FIDRFull, sc.IOs, 0.028, 4)
		if err != nil {
			return nil, nil, err
		}
		cfg.OffloadDataSSDQueues = offload
		r, err := runWithConfig(cfg, "Read-Mixed", sc)
		if err != nil {
			return nil, nil, err
		}
		proj := sock.MaxThroughput(r.Snapshot, 0)
		row := AblationReadOffloadRow{Offload: offload, CPUNsPerByte: r.CPUNsPerByte(), ProjectedGB: proj / 1e9}
		rows = append(rows, row)
		where := "host software"
		if offload {
			where = "FPGA (offloaded)"
		}
		tab.Row(where, row.CPUNsPerByte, metrics.GBps(proj))
	}
	tab.Note("the paper: 'We can also offload this NVMe software stack to FPGA, but we left it as future work'")
	return rows, tab, nil
}

// AblationReadCacheRow compares skewed reads with and without the §8
// hot-block read cache.
type AblationReadCacheRow struct {
	CacheChunks  int
	SSDReadFrac  float64 // fraction of client reads that reached the SSDs
	CPUNsPerByte float64
}

// AblationReadCache runs the §8 imbalanced-read scenario (Zipf-skewed
// reads) with the hot-block cache off and on, measuring how much data-SSD
// read traffic the cache absorbs.
func AblationReadCache(sc Scale) ([]AblationReadCacheRow, *metrics.Table, error) {
	var rows []AblationReadCacheRow
	tab := metrics.NewTable("Ablation: hot-block read cache (Read-Skewed, §8 discussion)",
		"read cache (chunks)", "reads reaching SSDs", "host CPU ns/B")
	for _, chunks := range []int{0, 4096} {
		cfg, err := serverConfig(core.FIDRFull, sc.IOs, 0.028, 4)
		if err != nil {
			return nil, nil, err
		}
		cfg.ReadCacheChunks = chunks
		r, err := runWithConfig(cfg, "Read-Skewed", sc)
		if err != nil {
			return nil, nil, err
		}
		ssdFrac := 0.0
		if reads := r.Server.ClientReads; reads > 0 {
			served := r.Server.NICReadHits + r.Server.ReadCacheHits + r.Server.PendingReads
			if served > reads {
				served = reads
			}
			ssdFrac = float64(reads-served) / float64(reads)
		}
		row := AblationReadCacheRow{CacheChunks: chunks, SSDReadFrac: ssdFrac, CPUNsPerByte: r.CPUNsPerByte()}
		rows = append(rows, row)
		tab.Row(chunks, metrics.Pct(ssdFrac), row.CPUNsPerByte)
	}
	tab.Note("the paper (§8): 'maintain frequently accessed blocks in main memory' for imbalanced reads")
	return rows, tab, nil
}

// AblationScaleoutRow is one group-count point of the §5.6 arrangement.
type AblationScaleoutRow struct {
	Groups int
	// StoredPerClient is stored/client bytes: rises with groups because
	// the dedup domain splits.
	StoredPerClient float64
	// MemPerByte rises mildly with groups: re-stored cross-shard
	// duplicates add unique-chunk work per client byte.
	MemPerByte float64
}

// AblationScaleout shards the Write-H workload over 1/2/4 device groups
// (fidr.Cluster's arrangement) and quantifies the dedup-domain split.
func AblationScaleout(sc Scale) ([]AblationScaleoutRow, *metrics.Table, error) {
	var rows []AblationScaleoutRow
	tab := metrics.NewTable("Ablation: device-group scale-out (Write-H, §5.6)",
		"groups", "stored/client bytes", "host mem B/B")
	for _, groups := range []int{1, 2, 4} {
		// Shard the generated stream by LBA hash, exactly as
		// fidr.Cluster routes, and run each shard on its own server.
		cfg, err := serverConfig(core.FIDRFull, sc.IOs, 0.028, 4)
		if err != nil {
			return nil, nil, err
		}
		servers := make([]*core.Server, groups)
		for i := range servers {
			if servers[i], err = core.New(cfg); err != nil {
				return nil, nil, err
			}
		}
		wp, err := workloadFor("Write-H", sc.IOs, cfg.CacheLines)
		if err != nil {
			return nil, nil, err
		}
		gen, err := trace.NewGenerator(wp)
		if err != nil {
			return nil, nil, err
		}
		sh := blockcomp.NewShaper(wp.CompressRatio)
		buf := make([]byte, cfg.ChunkSize)
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			if req.Op != trace.OpWrite {
				continue
			}
			sh.Block(req.ContentSeed, buf)
			g := shardOf(req.LBA, groups)
			if err := servers[g].Write(req.LBA, buf); err != nil {
				return nil, nil, err
			}
		}
		var stored, client, mem uint64
		for _, srv := range servers {
			if err := srv.Flush(); err != nil {
				return nil, nil, err
			}
			st := srv.Stats()
			stored += st.StoredBytes
			client += st.ClientBytes
			mem += srv.Ledger().Snapshot().TotalMemBytes()
		}
		row := AblationScaleoutRow{
			Groups:          groups,
			StoredPerClient: float64(stored) / float64(client),
			MemPerByte:      float64(mem) / float64(client),
		}
		rows = append(rows, row)
		tab.Row(groups, row.StoredPerClient, row.MemPerByte)
	}
	tab.Note("splitting the dedup domain stores cross-shard duplicates once per shard, which also raises per-byte host work")
	return rows, tab, nil
}

// shardOf mirrors fidr.Cluster's LBA routing.
func shardOf(lba uint64, groups int) int {
	z := lba + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) % uint64(groups))
}

// runWithConfig runs a workload against an explicit server config.
func runWithConfig(cfg core.Config, workload string, sc Scale) (RunResult, error) {
	wp, err := workloadFor(workload, sc.IOs, cfg.CacheLines)
	if err != nil {
		return RunResult{}, err
	}
	return runGenerated(cfg, wp)
}
