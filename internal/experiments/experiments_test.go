package experiments

import (
	"strings"
	"testing"

	"fidr/internal/core"
	"fidr/internal/hostmodel"
)

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(core.Baseline, "nope", TestScale()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunProducesLedger(t *testing.T) {
	r, err := Run(core.Baseline, "Write-H", TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.Snapshot.ClientBytes == 0 || r.MemPerByte() <= 0 || r.CPUNsPerByte() <= 0 {
		t.Fatalf("empty measurements: %+v", r.Snapshot)
	}
	if r.Server.UniqueChunks == 0 || r.Server.DuplicateChunks == 0 {
		t.Fatal("workload produced no dedup activity")
	}
}

func TestFig3Shape(t *testing.T) {
	res, tab, err := Fig3(Scale{IOs: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Paper: up to 17.5x IO increase. At reduced scale expect clearly >3x.
	if res.MaxIncrease < 3 {
		t.Errorf("max IO increase %.1fx, expected large-chunking blowup", res.MaxIncrease)
	}
	if !strings.Contains(tab.String(), "Figure 3") {
		t.Error("table title missing")
	}
}

func TestFig4And5Shape(t *testing.T) {
	sc := TestScale()
	profiles, tab4, err := Fig4(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("%d profiles", len(profiles))
	}
	sockBW := 170e9
	// Paper shape: write-only demand ~317 GB/s (1.9x socket); accept a
	// generous band around it but demand a clear over-subscription.
	w := profiles[0]
	if w.MemBWAt75 < 1.2*sockBW || w.MemBWAt75 > 3.5*sockBW {
		t.Errorf("write-only projected mem BW = %.0f GB/s, paper 317", w.MemBWAt75/1e9)
	}
	// Mixed demand is lower than write-only (paper: 269 < 317).
	if profiles[1].MemBWAt75 >= w.MemBWAt75 {
		t.Errorf("mixed (%v) not below write-only (%v)", profiles[1].MemBWAt75, w.MemBWAt75)
	}
	_ = tab4.String()

	profiles5, tab5, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: up to 67 cores at 75 GB/s, far beyond a 22-core socket.
	if c := profiles5[0].CoresAt75; c < 40 || c > 110 {
		t.Errorf("write-only cores = %.1f, paper ~67", c)
	}
	if profiles5[0].CoresAt75 < 2*22 {
		t.Error("CPU demand does not clearly exceed the socket")
	}
	// Fig 5b: most CPU is management overhead (85.2% write-only).
	if f := profiles5[0].MgmtFraction; f < 0.7 || f > 0.95 {
		t.Errorf("write-only management share = %.3f, paper 0.852", f)
	}
	if profiles5[1].MgmtFraction >= profiles5[0].MgmtFraction {
		t.Error("mixed management share should be below write-only")
	}
	_ = tab5.String()
}

func TestTable1Shape(t *testing.T) {
	profiles, tab, err := Table1(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	snap := profiles[0].Snapshot
	if snap.TotalMemBytes() == 0 {
		t.Fatal("no memory traffic")
	}
	// Every Table 1 path must carry traffic in the baseline write run,
	// and the data-plane paths (NIC, predictor, host<->FPGA) should each
	// carry roughly a quarter of the total, as in the paper.
	for _, p := range hostmodel.Paths() {
		if snap.MemBytes[p] == 0 {
			t.Errorf("path %v carried no traffic", p)
		}
	}
	for _, p := range []hostmodel.Path{hostmodel.PathNICHost, hostmodel.PathPredictor, hostmodel.PathHostFPGA} {
		if f := snap.MemFraction(p); f < 0.12 || f > 0.40 {
			t.Errorf("path %v fraction %.3f, paper ~0.24-0.25", p, f)
		}
	}
	_ = tab.String()
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"tree indexing", "table SSD IO stack", "content access", "LRU"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3TargetsMet(t *testing.T) {
	rows, tab, err := Table3(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if d := r.MeasuredDedup - r.TargetDedup; d < -0.08 || d > 0.08 {
			t.Errorf("%s: dedup %.3f vs target %.3f", r.Name, r.MeasuredDedup, r.TargetDedup)
		}
		if d := r.MeasuredHit - r.TargetHit; d < -0.15 || d > 0.15 {
			t.Errorf("%s: hit %.3f vs target %.3f", r.Name, r.MeasuredHit, r.TargetHit)
		}
		if r.MeasuredComp < 0.4 || r.MeasuredComp > 0.62 {
			t.Errorf("%s: compression %.3f vs target 0.5", r.Name, r.MeasuredComp)
		}
	}
	// Ordering: H > M > L hit rates.
	if !(rows[0].MeasuredHit > rows[1].MeasuredHit && rows[1].MeasuredHit > rows[2].MeasuredHit) {
		t.Errorf("hit-rate ordering violated: %.2f, %.2f, %.2f",
			rows[0].MeasuredHit, rows[1].MeasuredHit, rows[2].MeasuredHit)
	}
	_ = tab.String()
}

func TestFig11Shape(t *testing.T) {
	rows, _, err := Fig11(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Reduction < 0.5 {
			t.Errorf("%s: memory reduction %.3f, paper 0.7-0.85", r.Workload, r.Reduction)
		}
		if r.Reduction > 0.95 {
			t.Errorf("%s: reduction %.3f implausibly high", r.Workload, r.Reduction)
		}
	}
	// Read-Mixed achieves the best reduction (paper: 84.9%).
	var mixed, bestWrite float64
	for _, r := range rows {
		if r.Workload == "Read-Mixed" {
			mixed = r.Reduction
		} else if r.Reduction > bestWrite {
			bestWrite = r.Reduction
		}
	}
	if mixed < bestWrite-0.05 {
		t.Errorf("Read-Mixed reduction %.3f well below best write-only %.3f", mixed, bestWrite)
	}
}

func TestFig12Shape(t *testing.T) {
	rows, _, err := Fig12(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TotalReduction < 0.3 || r.TotalReduction > 0.95 {
			t.Errorf("%s: CPU reduction %.3f outside plausible band", r.Workload, r.TotalReduction)
		}
		if r.FromNICHashing <= 0 {
			t.Errorf("%s: NIC hashing saved nothing", r.Workload)
		}
		if r.FromHWCache <= 0 {
			t.Errorf("%s: HW cache saved nothing", r.Workload)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	rows, _, err := Fig13(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	byWl := map[string][]Fig13Row{}
	for _, r := range rows {
		byWl[r.Workload] = append(byWl[r.Workload], r)
	}
	for wl, series := range byWl {
		if len(series) != 3 {
			t.Fatalf("%s: %d points", wl, len(series))
		}
		if series[0].GBps > series[1].GBps || series[1].GBps > series[2].GBps {
			t.Errorf("%s: throughput not monotonic in width: %+v", wl, series)
		}
	}
	// Write-H tops Write-M tops Write-L at width 4.
	h, m, l := byWl["Write-H"][2].GBps, byWl["Write-M"][2].GBps, byWl["Write-L"][2].GBps
	if !(h > m && m > l) {
		t.Errorf("width-4 ordering violated: H=%.1f M=%.1f L=%.1f", h, m, l)
	}
}

func TestFig14Shape(t *testing.T) {
	rows, _, err := Fig14(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NicP2P <= r.Baseline {
			t.Errorf("%s: NIC/P2P (%.1f) not above baseline (%.1f)", r.Workload, r.NicP2P, r.Baseline)
		}
		if r.HWMulti < r.HWSingle {
			t.Errorf("%s: multi-update below single-update", r.Workload)
		}
	}
	// Headline: a write workload reaches ~3x; Read-Mixed less.
	var bestWrite, mixed float64
	for _, r := range rows {
		if r.Workload == "Read-Mixed" {
			mixed = r.Speedup
		} else if r.Speedup > bestWrite {
			bestWrite = r.Speedup
		}
	}
	if bestWrite < 2.0 {
		t.Errorf("best write speedup %.2fx, paper up to 3.3x", bestWrite)
	}
	if mixed >= bestWrite {
		t.Errorf("Read-Mixed speedup %.2fx not below write-only %.2fx", mixed, bestWrite)
	}
}

func TestLatencyTable(t *testing.T) {
	res, tab := Latency()
	if res.FIDRRead >= res.BaselineRead {
		t.Error("FIDR read latency not improved")
	}
	if !strings.Contains(tab.String(), "700us") {
		t.Error("paper anchor missing from table")
	}
}

func TestTable4Rendered(t *testing.T) {
	out := Table4().String()
	for _, want := range []string{"Write-only", "Mixed", "Data reduction support", "Basic NIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows, _, err := Table5(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper: 10 / 80 / 64 GB/s ordering.
	if !(rows[0].EstMaxGBps < rows[1].EstMaxGBps && rows[2].EstMaxGBps < rows[1].EstMaxGBps) {
		t.Errorf("throughput ordering violated: %.1f / %.1f / %.1f",
			rows[0].EstMaxGBps, rows[1].EstMaxGBps, rows[2].EstMaxGBps)
	}
	if rows[0].EstMaxGBps < 6 || rows[0].EstMaxGBps > 16 {
		t.Errorf("with-SSD throughput %.1f GB/s, paper 10", rows[0].EstMaxGBps)
	}
	if rows[2].Resources.URAMs == 0 {
		t.Error("large tree uses no URAM")
	}
}

func TestFig15And16Shape(t *testing.T) {
	sc := TestScale()
	rows, _, err := Fig15(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FIDRNormCost <= 0 || r.FIDRNormCost >= 1 {
			t.Errorf("FIDR normalized cost %.3f out of (0,1)", r.FIDRNormCost)
		}
	}
	// At 75 GB/s and 500 TB: FIDR saves ~58%, baseline is far costlier.
	last := rows[len(rows)-1]
	if last.GBps != 75 || last.CapacityTB != 500 {
		t.Fatalf("unexpected final row %+v", last)
	}
	if last.FIDRSaving < 0.45 || last.FIDRSaving > 0.7 {
		t.Errorf("saving at 75/500 = %.3f, paper 0.58", last.FIDRSaving)
	}
	if last.BaselineNormCost < 1.5*last.FIDRNormCost {
		t.Errorf("baseline cost %.3f not well above FIDR %.3f", last.BaselineNormCost, last.FIDRNormCost)
	}

	res, tab, err := Fig16(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FIDR.Total() >= res.Baseline.Total() {
		t.Error("FIDR not cheaper at 75 GB/s")
	}
	if !strings.Contains(tab.String(), "data SSDs") {
		t.Error("breakdown missing data SSDs row")
	}
}

// TestIntensityScaleInvariance validates the paper's measurement
// methodology: per-byte host intensities measured at one throughput
// project linearly (§3.2 measures at 5 and 6.9 GB/s and extrapolates).
// In our setting the analogue is scale-invariance: doubling the workload
// must leave bytes-per-byte and ns-per-byte nearly unchanged.
func TestIntensityScaleInvariance(t *testing.T) {
	small, err := Run(core.Baseline, "Write-H", Scale{IOs: 6000})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(core.Baseline, "Write-H", Scale{IOs: 18000})
	if err != nil {
		t.Fatal(err)
	}
	if r := large.MemPerByte() / small.MemPerByte(); r < 0.85 || r > 1.15 {
		t.Errorf("memory intensity not scale-invariant: ratio %.3f", r)
	}
	if r := large.CPUNsPerByte() / small.CPUNsPerByte(); r < 0.85 || r > 1.15 {
		t.Errorf("CPU intensity not scale-invariant: ratio %.3f", r)
	}
}
