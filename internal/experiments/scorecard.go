package experiments

import (
	"fidr/internal/core"
	"fidr/internal/metrics"
)

// Scorecard runs the headline experiments and prints a one-page
// paper-vs-measured summary — the compressed version of EXPERIMENTS.md,
// regenerated live.
func Scorecard(sc Scale) (*metrics.Table, error) {
	tab := metrics.NewTable("Reproduction scorecard (paper vs measured)",
		"claim", "paper", "measured")

	f3, _, err := Fig3(sc)
	if err != nil {
		return nil, err
	}
	tab.Row("Fig 3: worst 32-KB/4-KB IO increase", "17.5x",
		metrics.FormatFloat(f3.MaxIncrease)+"x")

	profiles, _, err := Fig4(sc)
	if err != nil {
		return nil, err
	}
	tab.Row("Fig 4: baseline mem BW @75 GB/s (write-only)", "317 GB/s",
		metrics.GBps(profiles[0].MemBWAt75))
	tab.Row("Fig 5: baseline cores @75 GB/s (write-only)", "67",
		metrics.FormatFloat(profiles[0].CoresAt75))
	tab.Row("Fig 5b: management share (write-only)", "85.2%",
		metrics.Pct(profiles[0].MgmtFraction))

	t3, _, err := Table3(sc)
	if err != nil {
		return nil, err
	}
	tab.Row("Table 3: Write-H dedup / hit rate", "88% / 90%",
		metrics.Pct(t3[0].MeasuredDedup)+" / "+metrics.Pct(t3[0].MeasuredHit))

	f11, _, err := Fig11(sc)
	if err != nil {
		return nil, err
	}
	var bestMem, mixedMem float64
	for _, r := range f11 {
		if r.Workload == "Read-Mixed" {
			mixedMem = r.Reduction
		} else if r.Reduction > bestMem {
			bestMem = r.Reduction
		}
	}
	tab.Row("Fig 11: mem-BW cut (best write-only / mixed)", "79.1% / 84.9%",
		metrics.Pct(bestMem)+" / "+metrics.Pct(mixedMem))

	f12, _, err := Fig12(sc)
	if err != nil {
		return nil, err
	}
	var bestCPU, mixedCPU float64
	for _, r := range f12 {
		if r.Workload == "Read-Mixed" {
			mixedCPU = r.TotalReduction
		} else if r.TotalReduction > bestCPU {
			bestCPU = r.TotalReduction
		}
	}
	tab.Row("Fig 12: CPU cut (best write-only / mixed)", "68% / 39%",
		metrics.Pct(bestCPU)+" / "+metrics.Pct(mixedCPU))

	f13, _, err := Fig13(sc)
	if err != nil {
		return nil, err
	}
	var m1, m4 float64
	for _, r := range f13 {
		if r.Workload == "Write-M" && r.Width == 1 {
			m1 = r.GBps
		}
		if r.Workload == "Write-M" && r.Width == 4 {
			m4 = r.GBps
		}
	}
	tab.Row("Fig 13: Write-M 1->4 updates", "27.1 -> 63.8 GB/s",
		metrics.FormatFloat(m1)+" -> "+metrics.FormatFloat(m4)+" GB/s")

	f14, _, err := Fig14(sc)
	if err != nil {
		return nil, err
	}
	var bestSpeed, mixedSpeed float64
	for _, r := range f14 {
		if r.Workload == "Read-Mixed" {
			mixedSpeed = r.Speedup
		} else if r.Speedup > bestSpeed {
			bestSpeed = r.Speedup
		}
	}
	tab.Row("Fig 14: speedup (best write-only / mixed)", "3.3x / 1.7x",
		metrics.FormatFloat(bestSpeed)+"x / "+metrics.FormatFloat(mixedSpeed)+"x")

	lat, _ := Latency()
	tab.Row("7.6: read latency baseline -> FIDR", "700us -> 490us",
		lat.BaselineRead.String()+" -> "+lat.FIDRRead.String())

	f15, _, err := Fig15(sc)
	if err != nil {
		return nil, err
	}
	var s25, s75 float64
	for _, r := range f15 {
		if r.CapacityTB == 500 && r.GBps == 25 {
			s25 = r.FIDRSaving
		}
		if r.CapacityTB == 500 && r.GBps == 75 {
			s75 = r.FIDRSaving
		}
	}
	tab.Row("Fig 15: cost saving @500 TB, 25 -> 75 GB/s", "67% -> 58%",
		metrics.Pct(s25)+" -> "+metrics.Pct(s75))

	tab.Note("workload scale: %d IOs per run; architectures: %v/%v/%v",
		sc.IOs, core.Baseline, core.FIDRNicP2P, core.FIDRFull)
	return tab, nil
}
