package experiments

import (
	"time"

	"fidr/internal/blockcomp"
	"fidr/internal/btree"
	"fidr/internal/fingerprint"
	"fidr/internal/hashpbn"
	"fidr/internal/metrics"
	"fidr/internal/nic"
)

// SelfPerf measures *this machine's* software throughput for the
// operations FIDR offloads — SHA-256 hashing, block compression, bucket
// scanning, tree indexing — and frames each against the paper's targets
// (8 GB/s per NIC, 75 GB/s per socket). It is the empirical backbone of
// the paper's premise: "completely relying on the CPUs for the data
// reduction is not scalable" [2,5,9,16]. Unlike every other experiment,
// the numbers here depend on the host running the benchmark.
type SelfPerfRow struct {
	Operation string
	// BytesPerSec is the measured single-goroutine software rate.
	BytesPerSec float64
	// CoresAt75 is the cores needed to sustain 75 GB/s in software.
	CoresAt75 float64
}

// SelfPerf runs the measurements (a few hundred ms each).
func SelfPerf() ([]SelfPerfRow, *metrics.Table, error) {
	sh := blockcomp.NewShaper(0.5)
	chunk := sh.Make(1, 4096)

	measure := func(name string, per func() int) SelfPerfRow {
		const budget = 200 * time.Millisecond
		start := time.Now()
		var bytes int
		for time.Since(start) < budget {
			bytes += per()
		}
		elapsed := time.Since(start).Seconds()
		rate := float64(bytes) / elapsed
		return SelfPerfRow{
			Operation:   name,
			BytesPerSec: rate,
			CoresAt75:   75e9 / rate,
		}
	}

	var rows []SelfPerfRow
	rows = append(rows, measure("SHA-256 fingerprint (4-KB chunk)", func() int {
		fingerprint.Of(chunk)
		return len(chunk)
	}))
	lz := blockcomp.NewLZ()
	rows = append(rows, measure("LZ compression (4-KB chunk)", func() int {
		if _, err := lz.Compress(chunk); err != nil {
			return 0
		}
		return len(chunk)
	}))
	cdata, _ := lz.Compress(chunk)
	rows = append(rows, measure("LZ decompression (4-KB chunk)", func() int {
		if _, err := lz.Decompress(cdata, len(chunk)); err != nil {
			return 0
		}
		return len(chunk)
	}))
	// Bucket scan: one full bucket per 4-KB chunk of reduction.
	bucket := hashpbn.NewBucket()
	for i := 0; i < hashpbn.EntriesPerBucket; i++ {
		bucket.Insert(fingerprint.Of([]byte{byte(i), byte(i >> 8)}), uint64(i))
	}
	probe := fingerprint.Of([]byte("absent"))
	rows = append(rows, measure("bucket scan (per 4-KB chunk)", func() int {
		bucket.Lookup(probe)
		return 4096
	}))
	// Software tree index: one lookup per 4-KB chunk.
	tr := btree.New()
	for i := uint64(0); i < 1<<18; i++ {
		tr.Put(i*2654435761%(1<<30), i)
	}
	var key uint64
	rows = append(rows, measure("B+-tree lookup (per 4-KB chunk)", func() int {
		key = key*6364136223846793005 + 1442695040888963407
		tr.Get(key % (1 << 30))
		return 4096
	}))

	tab := metrics.NewTable("Self-measurement: software rates of offloaded operations (this host)",
		"operation", "software rate", "cores for 75 GB/s", "offload target")
	targets := map[string]string{
		rows[0].Operation: "16 SHA cores per NIC (Table 4)",
		rows[1].Operation: "Compression Engine FPGA",
		rows[2].Operation: "Decompression Engine FPGA",
		rows[3].Operation: "stays on host (6.3% CPU, Table 2)",
		rows[4].Operation: "Cache HW-Engine tree (Fig 13)",
	}
	for _, r := range rows {
		tab.Row(r.Operation, metrics.GBps(r.BytesPerSec),
			metrics.FormatFloat(r.CoresAt75), targets[r.Operation])
	}
	tab.Note("one goroutine each; the NIC line rate is %.0f GB/s and the socket target 75 GB/s", nic.LineRateBytes/1e9)
	return rows, tab, nil
}
