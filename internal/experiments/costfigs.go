package experiments

import (
	"fidr/internal/core"
	"fidr/internal/cost"
	"fidr/internal/hostmodel"
	"fidr/internal/metrics"
)

// costWorkloads derives the cost model's host intensities from the §7.8
// assumption (50% dedup, 50% compression) measured on both architectures.
func costWorkloads(sc Scale) (fidrW, baseW cost.Workload, err error) {
	base, err := Run(core.Baseline, "Profiling-Write", sc, WithCacheFrac(profilingCacheFrac))
	if err != nil {
		return fidrW, baseW, err
	}
	fidr, err := Run(core.FIDRFull, "Profiling-Write", sc, WithCacheFrac(profilingCacheFrac))
	if err != nil {
		return fidrW, baseW, err
	}
	// Request handling (CompProtocol) is paid by any storage server,
	// reduction or not, so the cost model attributes only the
	// reduction-specific CPU.
	reductionCPU := func(r RunResult) float64 {
		if r.Snapshot.ClientBytes == 0 {
			return 0
		}
		ns := r.Snapshot.TotalCPUNanos() - r.Snapshot.CPUNanos[hostmodel.CompProtocol]
		return float64(ns) / float64(r.Snapshot.ClientBytes)
	}
	fidrW = cost.Workload{DedupRatio: 0.5, CompRatio: 0.5,
		CPUNsPerByte: reductionCPU(fidr), MemPerByte: fidr.MemPerByte()}
	baseW = cost.Workload{DedupRatio: 0.5, CompRatio: 0.5,
		CPUNsPerByte: reductionCPU(base), MemPerByte: base.MemPerByte()}
	return fidrW, baseW, nil
}

// Fig15Row is one (throughput, capacity) cost point.
type Fig15Row struct {
	GBps       float64
	CapacityTB float64
	// Cost is normalized to the no-reduction server (lower is better,
	// matching the figure's y-axis).
	FIDRNormCost     float64
	BaselineNormCost float64
	FIDRSaving       float64
}

// Fig15 reproduces Figure 15: normalized storage cost versus throughput
// at three effective capacities.
func Fig15(sc Scale) ([]Fig15Row, *metrics.Table, error) {
	fidrW, baseW, err := costWorkloads(sc)
	if err != nil {
		return nil, nil, err
	}
	m := cost.NewModel()
	var rows []Fig15Row
	tab := metrics.NewTable("Figure 15: normalized storage cost vs throughput (lower is better)",
		"capacity", "throughput", "FIDR cost", "baseline cost", "no-reduction", "FIDR saving")
	for _, capTB := range []float64{100, 250, 500} {
		capacity := capTB * 1e12
		for _, gbps := range []float64{25, 50, 75} {
			bps := gbps * 1e9
			f := m.FIDR(capacity, bps, fidrW)
			b := m.Baseline(capacity, bps, baseW)
			raw := m.NoReduction(capacity).Total()
			row := Fig15Row{
				GBps: gbps, CapacityTB: capTB,
				FIDRNormCost:     f.Total() / raw,
				BaselineNormCost: b.Total() / raw,
				FIDRSaving:       m.Saving(f, capacity),
			}
			rows = append(rows, row)
			tab.Row(metrics.FormatFloat(capTB)+" TB", metrics.GBps(bps),
				metrics.FormatFloat(row.FIDRNormCost),
				metrics.FormatFloat(row.BaselineNormCost),
				"1.0", metrics.Pct(row.FIDRSaving))
		}
	}
	tab.Note("paper: at 500 TB, FIDR saving moves from 67%% (25 GB/s) to 58%% (75 GB/s); baseline falls to partial reduction beyond ~25 GB/s")
	return rows, tab, nil
}

// Fig16Result is the 75 GB/s, 500 TB cost breakdown.
type Fig16Result struct {
	FIDR, Baseline cost.Breakdown
	NoReduction    float64
}

// Fig16 reproduces Figure 16: cost breakdown at 75 GB/s and 500 TB
// effective capacity.
func Fig16(sc Scale) (Fig16Result, *metrics.Table, error) {
	fidrW, baseW, err := costWorkloads(sc)
	if err != nil {
		return Fig16Result{}, nil, err
	}
	m := cost.NewModel()
	const capacity = 500e12
	const bps = 75e9
	res := Fig16Result{
		FIDR:        m.FIDR(capacity, bps, fidrW),
		Baseline:    m.Baseline(capacity, bps, baseW),
		NoReduction: m.NoReduction(capacity).Total(),
	}
	tab := metrics.NewTable("Figure 16: cost breakdown at 75 GB/s, 500 TB effective",
		"component", "FIDR ($K)", "baseline ($K)")
	k := func(v float64) float64 { return v / 1000 }
	tab.Row("data SSDs", k(res.FIDR.DataSSD), k(res.Baseline.DataSSD))
	tab.Row("table SSDs", k(res.FIDR.TableSSD), k(res.Baseline.TableSSD))
	tab.Row("DRAM", k(res.FIDR.DRAM), k(res.Baseline.DRAM))
	tab.Row("CPU", k(res.FIDR.CPU), k(res.Baseline.CPU))
	tab.Row("FPGAs", k(res.FIDR.FPGA), k(res.Baseline.FPGA))
	tab.Row("total", k(res.FIDR.Total()), k(res.Baseline.Total()))
	tab.Note("no-reduction server: $%.0fK; baseline must do partial reduction at this rate", res.NoReduction/1000)
	return res, tab, nil
}
