package experiments

import (
	"fidr/internal/core"
	"fidr/internal/hwtree"
	"fidr/internal/metrics"
	"fidr/internal/nic"
)

// --- Table 4: FIDR NIC resource utilization ---

// Table4 reproduces Table 4: FPGA resources of the FIDR NIC for the
// write-only and mixed workloads.
func Table4() *metrics.Table {
	tab := metrics.NewTable("Table 4: FIDR custom NIC resource utilization",
		"workload", "block", "LUTs", "flip flops", "BRAMs", "LUT %", "BRAM %")
	dev := hwtree.VCU1525
	for _, w := range []struct {
		name     string
		fraction float64
	}{{"Write-only", 1.0}, {"Mixed 50r/50w", 0.5}} {
		support := nic.SupportResources(w.fraction)
		total := nic.TotalResources(w.fraction)
		for _, row := range []struct {
			block string
			r     hwtree.Resources
		}{
			{"Data reduction support", support},
			{"Basic NIC + TCP offload", nic.BasicNIC},
			{"Total", total},
		} {
			lut, _, bram, _ := row.r.Utilization(dev)
			tab.Row(w.name, row.block, row.r.LUTs, row.r.FFs, row.r.BRAMs,
				metrics.Pct(lut), metrics.Pct(bram))
		}
	}
	tab.Note("paper totals: 290K LUTs / 1119 BRAM (write-only), 249K / 1099 (mixed)")
	return tab
}

// --- Table 5: Cache HW-Engine resources and estimated throughput ---

// Table5Row is one engine configuration.
type Table5Row struct {
	Config    string
	Resources hwtree.Resources
	// EstMaxGBps is the modeled Write-M maximum at width 4.
	EstMaxGBps float64
}

// Table5 reproduces Table 5: three Cache HW-Engine builds with their
// resources and estimated Write-M throughput.
func Table5(sc Scale) ([]Table5Row, *metrics.Table, error) {
	// Measure Write-M's workload point functionally.
	r, err := Run(core.FIDRFull, "Write-M", sc)
	if err != nil {
		return nil, nil, err
	}
	crash, err := measuredCrashRate(4)
	if err != nil {
		return nil, nil, err
	}
	wl := hwtree.WorkloadPoint{
		MissRate:     1 - r.Cache.HitRate(),
		CrashRate:    crash,
		LeafCacheHit: calibratedLeafHit("Write-M"),
	}
	configs := []struct {
		name  string
		eng   hwtree.EngineConfig
		perf  hwtree.PerfParams
		paper string
	}{
		{"All (with table SSD access)",
			hwtree.EngineConfig{CacheLines: hwtree.MediumCacheLines, WithTableSSD: true},
			hwtree.MediumTreeParams().WithTableSSD(2e9), "10 GB/s"},
		{"Except table SSD / medium tree (410 MB)",
			hwtree.EngineConfig{CacheLines: hwtree.MediumCacheLines},
			hwtree.MediumTreeParams(), "80 GB/s"},
		{"Except table SSD / large tree (~100 GB)",
			hwtree.EngineConfig{CacheLines: hwtree.LargeCacheLines},
			hwtree.LargeTreeParams(), "64 GB/s"},
	}
	var rows []Table5Row
	tab := metrics.NewTable("Table 5: Cache HW-Engine resources and estimated max throughput (Write-M)",
		"config", "levels", "LUTs", "FFs", "BRAM", "URAM", "est. max", "paper")
	for _, c := range configs {
		res := hwtree.CacheEngineResources(c.eng)
		bps, _, err := c.perf.Throughput(wl, 4)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table5Row{Config: c.name, Resources: res, EstMaxGBps: bps / 1e9})
		tab.Row(c.name, hwtree.HeightFor(c.eng.CacheLines), res.LUTs, res.FFs,
			res.BRAMs, res.URAMs, metrics.GBps(bps), c.paper)
	}
	tab.Note("measured Write-M point: miss %.1f%%, crash %.3f%%, leaf$ hit %.1f%%",
		100*wl.MissRate, 100*wl.CrashRate, 100*wl.LeafCacheHit)
	return rows, tab, nil
}
