package hashpbn

import (
	"testing"
	"testing/quick"

	"fidr/internal/fingerprint"
)

func fp(s string) fingerprint.FP { return fingerprint.Of([]byte(s)) }

func TestConstants(t *testing.T) {
	if EntrySize != 38 {
		t.Errorf("EntrySize = %d, paper says 38", EntrySize)
	}
	if EntriesPerBucket != 107 {
		t.Errorf("EntriesPerBucket = %d, want 107", EntriesPerBucket)
	}
}

func TestInsertLookup(t *testing.T) {
	b := NewBucket()
	if _, err := b.Insert(fp("a"), 42); err != nil {
		t.Fatal(err)
	}
	pbn, found, scanned := b.Lookup(fp("a"))
	if !found || pbn != 42 {
		t.Fatalf("lookup: pbn=%d found=%v", pbn, found)
	}
	if scanned != 1 {
		t.Errorf("scanned %d entries, want 1", scanned)
	}
	if _, found, _ := b.Lookup(fp("missing")); found {
		t.Error("found absent key")
	}
}

func TestInsertOverwrites(t *testing.T) {
	b := NewBucket()
	b.Insert(fp("k"), 1)
	b.Insert(fp("k"), 2)
	pbn, found, _ := b.Lookup(fp("k"))
	if !found || pbn != 2 {
		t.Fatalf("overwrite failed: pbn=%d", pbn)
	}
	if b.Count() != 1 {
		t.Errorf("count = %d after overwrite", b.Count())
	}
}

func TestPBNBoundary(t *testing.T) {
	b := NewBucket()
	if _, err := b.Insert(fp("max"), MaxPBN); err != nil {
		t.Fatal(err)
	}
	pbn, found, _ := b.Lookup(fp("max"))
	if !found || pbn != MaxPBN {
		t.Fatalf("48-bit PBN round trip: %d", pbn)
	}
	if _, err := b.Insert(fp("over"), MaxPBN+1); err != ErrBadPBN {
		t.Errorf("oversized PBN: err = %v", err)
	}
}

func TestZeroFingerprintRejected(t *testing.T) {
	b := NewBucket()
	var z fingerprint.FP
	if _, err := b.Insert(z, 1); err == nil {
		t.Error("zero fingerprint accepted")
	}
}

func TestBucketFull(t *testing.T) {
	b := NewBucket()
	for i := 0; i < EntriesPerBucket; i++ {
		if _, err := b.Insert(fp(string(rune('A'+i%26))+string(rune(i))), uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if b.Count() != EntriesPerBucket {
		t.Fatalf("count = %d", b.Count())
	}
	if _, err := b.Insert(fp("one-too-many"), 1); err != ErrBucketFull {
		t.Fatalf("expected ErrBucketFull, got %v", err)
	}
}

func TestDeleteCompacts(t *testing.T) {
	b := NewBucket()
	keys := []string{"a", "b", "c", "d"}
	for i, k := range keys {
		b.Insert(fp(k), uint64(i+1))
	}
	if !b.Delete(fp("b")) {
		t.Fatal("delete returned false for present key")
	}
	if b.Delete(fp("b")) {
		t.Fatal("double delete returned true")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d after delete", b.Count())
	}
	// All remaining keys still findable (compaction preserved them).
	for _, k := range []string{"a", "c", "d"} {
		if _, found, _ := b.Lookup(fp(k)); !found {
			t.Errorf("key %q lost after delete", k)
		}
	}
	// Scan still terminates at first free slot.
	_, _, scanned := b.Lookup(fp("absent"))
	if scanned != 4 {
		t.Errorf("scan cost %d, want 4 (3 entries + free slot)", scanned)
	}
}

func TestBucketMatchesMapProperty(t *testing.T) {
	// A bucket behaves like a map for up to EntriesPerBucket keys.
	prop := func(ops []struct {
		Key uint8
		PBN uint32
		Del bool
	}) bool {
		b := NewBucket()
		ref := make(map[fingerprint.FP]uint64)
		for _, op := range ops {
			k := fp(string(rune(op.Key % 50)))
			if op.Del {
				wantPresent := false
				if _, ok := ref[k]; ok {
					wantPresent = true
					delete(ref, k)
				}
				if b.Delete(k) != wantPresent {
					return false
				}
				continue
			}
			if _, err := b.Insert(k, uint64(op.PBN)); err != nil {
				return false
			}
			ref[k] = uint64(op.PBN)
		}
		if b.Count() != len(ref) {
			return false
		}
		for k, v := range ref {
			pbn, found, _ := b.Lookup(k)
			if !found || pbn != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeometry(t *testing.T) {
	// 1 PB / 4 KB unique chunks at 38 B each is ~9.5 TB of table,
	// matching the paper's sizing example.
	g, err := GeometryFor(1<<50/4096, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tableTB := float64(g.TableBytes()) / 1e12
	if tableTB < 9.0 || tableTB > 11.0 {
		t.Errorf("1-PB table = %.2f TB, paper says ~9.5 TB", tableTB)
	}
	if _, err := GeometryFor(0, 0.5); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := GeometryFor(100, 0); err == nil {
		t.Error("zero load factor accepted")
	}
	if _, err := GeometryFor(100, 1.5); err == nil {
		t.Error("load factor > 1 accepted")
	}
}

func TestBucketOfStable(t *testing.T) {
	g, _ := GeometryFor(1<<20, 0.5)
	f := fp("stable")
	if g.BucketOf(f) != g.BucketOf(f) {
		t.Error("bucket assignment not deterministic")
	}
	if g.BucketOf(f) >= g.NumBuckets {
		t.Error("bucket out of range")
	}
}

func BenchmarkBucketLookupHit(b *testing.B) {
	bk := NewBucket()
	var last fingerprint.FP
	for i := 0; i < EntriesPerBucket; i++ {
		f := fingerprint.Of([]byte{byte(i), byte(i >> 8)})
		bk.Insert(f, uint64(i))
		last = f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, _ := bk.Lookup(last); !found {
			b.Fatal("lost key")
		}
	}
}
