// Package hashpbn implements the Hash-PBN table: the deduplication
// metadata key-value store mapping a chunk's fingerprint to its physical
// block number (PBN).
//
// Layout follows §2.1.3 of the paper: the table is an array of fixed-size
// buckets; a fingerprint selects its bucket with a simple modular
// function; each 38-byte entry holds the 32-byte hash and a 6-byte PBN.
// With 4-KB buckets a bucket holds 107 entries. At PB scale the full table
// is multi-TB and lives on dedicated table SSDs, with only a cache of
// buckets in host DRAM (package tablecache).
package hashpbn

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fidr/internal/fingerprint"
)

const (
	// HashSize is the stored fingerprint length.
	HashSize = fingerprint.Size
	// PBNSize is the stored physical block number length (48-bit).
	PBNSize = 6
	// EntrySize is one table entry: hash + PBN.
	EntrySize = HashSize + PBNSize // 38 bytes
	// BucketSize is the on-SSD and in-cache bucket size.
	BucketSize = 4096
	// EntriesPerBucket is how many entries fit in one bucket.
	EntriesPerBucket = BucketSize / EntrySize // 107
	// MaxPBN is the largest representable PBN.
	MaxPBN = 1<<48 - 1
)

// ErrBucketFull is returned by Insert when the target bucket has no free
// slot. Tables are sized for low load factors, so this signals a sizing
// error rather than a runtime condition to paper over.
var ErrBucketFull = errors.New("hashpbn: bucket full")

// ErrBadPBN is returned for PBNs that do not fit in 48 bits.
var ErrBadPBN = errors.New("hashpbn: PBN exceeds 48 bits")

// Bucket is one fixed-size bucket's raw bytes. A zero hash marks a free
// slot (the zero fingerprint is reserved).
type Bucket []byte

// NewBucket returns an empty bucket.
func NewBucket() Bucket { return make(Bucket, BucketSize) }

// entryAt returns the byte range of slot i.
func entryAt(b Bucket, i int) []byte { return b[i*EntrySize : (i+1)*EntrySize] }

// Lookup scans the bucket for fp. It returns the PBN, whether it was
// found, and the number of entries examined (the scan cost, which the
// resource model converts to memory traffic).
func (b Bucket) Lookup(fp fingerprint.FP) (pbn uint64, found bool, scanned int) {
	for i := 0; i < EntriesPerBucket; i++ {
		e := entryAt(b, i)
		scanned++
		var h fingerprint.FP
		copy(h[:], e[:HashSize])
		if h.IsZero() {
			// Buckets fill front-to-back; first free slot ends the scan.
			return 0, false, scanned
		}
		if h == fp {
			return pbnFromBytes(e[HashSize:]), true, scanned
		}
	}
	return 0, false, scanned
}

// Insert adds (fp, pbn) to the bucket. Inserting an existing fingerprint
// overwrites its PBN. Returns the number of entries examined.
func (b Bucket) Insert(fp fingerprint.FP, pbn uint64) (scanned int, err error) {
	if fp.IsZero() {
		return 0, errors.New("hashpbn: cannot insert zero fingerprint")
	}
	if pbn > MaxPBN {
		return 0, ErrBadPBN
	}
	for i := 0; i < EntriesPerBucket; i++ {
		e := entryAt(b, i)
		scanned++
		var h fingerprint.FP
		copy(h[:], e[:HashSize])
		if h.IsZero() || h == fp {
			copy(e[:HashSize], fp[:])
			pbnToBytes(e[HashSize:], pbn)
			return scanned, nil
		}
	}
	return scanned, ErrBucketFull
}

// Delete removes fp from the bucket, compacting the tail so the
// front-to-back fill invariant holds. Returns whether fp was present.
func (b Bucket) Delete(fp fingerprint.FP) bool {
	n := b.Count()
	for i := 0; i < n; i++ {
		e := entryAt(b, i)
		var h fingerprint.FP
		copy(h[:], e[:HashSize])
		if h != fp {
			continue
		}
		// Move the last occupied entry into the hole.
		last := entryAt(b, n-1)
		copy(e, last)
		for j := range last {
			last[j] = 0
		}
		return true
	}
	return false
}

// ForEach calls fn for every occupied entry in the bucket.
func (b Bucket) ForEach(fn func(fp fingerprint.FP, pbn uint64)) {
	for i := 0; i < EntriesPerBucket; i++ {
		e := entryAt(b, i)
		var h fingerprint.FP
		copy(h[:], e[:HashSize])
		if h.IsZero() {
			return
		}
		fn(h, pbnFromBytes(e[HashSize:]))
	}
}

// Count returns the number of occupied slots.
func (b Bucket) Count() int {
	for i := 0; i < EntriesPerBucket; i++ {
		e := entryAt(b, i)
		var h fingerprint.FP
		copy(h[:], e[:HashSize])
		if h.IsZero() {
			return i
		}
	}
	return EntriesPerBucket
}

func pbnToBytes(dst []byte, pbn uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], pbn)
	copy(dst, buf[2:]) // low 6 bytes
}

func pbnFromBytes(src []byte) uint64 {
	var buf [8]byte
	copy(buf[2:], src[:PBNSize])
	return binary.BigEndian.Uint64(buf[:])
}

// Geometry describes a sized Hash-PBN table.
type Geometry struct {
	// NumBuckets is the bucket count; fingerprints map to buckets via
	// fp.Bucket(NumBuckets).
	NumBuckets uint64
}

// GeometryFor sizes a table for the given number of unique chunks at the
// given maximum load factor (fraction of entry slots occupied).
func GeometryFor(uniqueChunks uint64, loadFactor float64) (Geometry, error) {
	if uniqueChunks == 0 {
		return Geometry{}, errors.New("hashpbn: zero chunk count")
	}
	if loadFactor <= 0 || loadFactor > 1 {
		return Geometry{}, fmt.Errorf("hashpbn: invalid load factor %v", loadFactor)
	}
	slots := float64(uniqueChunks) / loadFactor
	buckets := uint64(slots/EntriesPerBucket) + 1
	return Geometry{NumBuckets: buckets}, nil
}

// TableBytes returns the full on-SSD table size.
func (g Geometry) TableBytes() uint64 { return g.NumBuckets * BucketSize }

// BucketOf returns fp's bucket index.
func (g Geometry) BucketOf(fp fingerprint.FP) uint64 { return fp.Bucket(g.NumBuckets) }
