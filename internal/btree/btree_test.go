package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("found key in empty tree")
	}
	if tr.Delete(1) {
		t.Fatal("deleted from empty tree")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		tr.Put(i*7%1000, i)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		want := i // last writer for key i*7%1000... recompute below
		_ = want
	}
	// Spot-check several keys: key k was written by the i with i*7%1000==k;
	// since 7 and 1000 are coprime each key written exactly once.
	for k := uint64(0); k < 1000; k++ {
		v, ok := tr.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if v*7%1000 != k {
			t.Fatalf("key %d has value %d", k, v)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := New()
	tr.Put(5, 1)
	tr.Put(5, 2)
	if tr.Len() != 1 {
		t.Fatalf("len = %d after overwrite", tr.Len())
	}
	if v, _ := tr.Get(5); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New(WithLeafCap(4), WithChildCap(4))
	for i := uint64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	if tr.Height() < 4 {
		t.Fatalf("height = %d for 1000 keys with tiny nodes", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	leaves, internals := tr.NodeCount()
	if leaves < 250 || internals == 0 {
		t.Fatalf("nodes: %d leaves %d internals", leaves, internals)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New(WithLeafCap(4), WithChildCap(4))
	const n = 500
	perm := rand.New(rand.NewSource(9)).Perm(n)
	for _, i := range perm {
		tr.Put(uint64(i), uint64(i)*2)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	perm2 := rand.New(rand.NewSource(10)).Perm(n)
	for step, i := range perm2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("step %d: key %d missing", step, i)
		}
		if step%50 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d after deleting all", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := New()
	tr.Put(1, 1)
	if tr.Delete(2) {
		t.Fatal("deleted absent key")
	}
	if tr.Len() != 1 {
		t.Fatal("len changed")
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New(WithLeafCap(6), WithChildCap(6))
	perm := rand.New(rand.NewSource(3)).Perm(2000)
	for _, i := range perm {
		tr.Put(uint64(i), uint64(i))
	}
	var prev uint64
	first := true
	count := 0
	tr.Ascend(func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if k != v {
			t.Fatalf("value mismatch at %d", k)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != 2000 {
		t.Fatalf("iterated %d keys", count)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, i)
	}
	count := 0
	tr.Ascend(func(k, v uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop iterated %d", count)
	}
}

func TestVisitsAccumulate(t *testing.T) {
	tr := New(WithLeafCap(4), WithChildCap(4))
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, i)
	}
	tr.ResetStats()
	tr.Get(50)
	if v := tr.Visits(); v == 0 || int(v) != tr.Height() {
		t.Fatalf("visits = %d, height = %d", v, tr.Height())
	}
}

// opSequence drives the tree against a map reference model.
func TestMatchesMapModel(t *testing.T) {
	type op struct {
		Key uint16
		Val uint16
		Del bool
	}
	prop := func(ops []op) bool {
		tr := New(WithLeafCap(4), WithChildCap(4))
		ref := make(map[uint64]uint64)
		for _, o := range ops {
			k := uint64(o.Key % 512)
			if o.Del {
				_, want := ref[k]
				delete(ref, k)
				if tr.Delete(k) != want {
					return false
				}
			} else {
				ref[k] = uint64(o.Val)
				tr.Put(k, uint64(o.Val))
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.Check(); err != nil {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargeRandomWorkload(t *testing.T) {
	tr := New()
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(20000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			tr.Put(k, v)
			ref[k] = v
		case 2:
			_, want := ref[k]
			delete(ref, k)
			if tr.Delete(k) != want {
				t.Fatalf("iteration %d: delete disagreement at %d", i, k)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len %d vs ref %d", tr.Len(), len(ref))
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("key %d: got %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestMinimumCapsApplied(t *testing.T) {
	tr := New(WithLeafCap(1), WithChildCap(1))
	for i := uint64(0); i < 100; i++ {
		tr.Put(i, i)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := uint64(0); i < 1<<20; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) & (1<<20 - 1))
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i), uint64(i))
	}
}

func BenchmarkPutDelete(b *testing.B) {
	tr := New()
	for i := uint64(0); i < 1<<16; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)&(1<<16-1) + 1<<20
		tr.Put(k, k)
		tr.Delete(k)
	}
}
