// Package btree implements an in-memory B+ tree keyed by uint64, used as
// the baseline's software table-cache index (the paper's baseline uses an
// open-source PALM-style B+ tree to map bucket indexes to cache lines).
//
// The tree stores uint64 values at uint64 keys, supports insert, delete,
// point lookup and in-order iteration, and exposes structural statistics
// (height, node count) that the CPU cost model uses: a software lookup
// costs O(height) cache-missing node visits, which is exactly the
// "small data structure with high CPU cost" behaviour Observation #4
// identifies.
package btree

import (
	"fmt"
	"sort"
)

// Degree choices. MaxLeaf/MaxInternal are entry/child capacities.
const (
	defaultLeafCap  = 32
	defaultChildCap = 32
)

// Tree is a B+ tree. Not safe for concurrent use; the baseline serializes
// index access on the table-management thread, which is the bottleneck
// the paper measures.
type Tree struct {
	root     node
	leafCap  int
	childCap int
	size     int
	height   int

	// visits counts node traversals since the last ResetStats; the cost
	// model charges CPU per visited node.
	visits uint64
}

type node interface{ isNode() }

type leaf struct {
	keys []uint64
	vals []uint64
	next *leaf
}

type internal struct {
	keys     []uint64 // separators: children[i] holds keys < keys[i] <= children[i+1]
	children []node
}

func (*leaf) isNode()     {}
func (*internal) isNode() {}

// Option configures a Tree.
type Option func(*Tree)

// WithLeafCap sets the max entries per leaf (min 4, even).
func WithLeafCap(n int) Option {
	return func(t *Tree) { t.leafCap = n }
}

// WithChildCap sets the max children per internal node (min 4, even).
func WithChildCap(n int) Option {
	return func(t *Tree) { t.childCap = n }
}

// New creates an empty tree.
func New(opts ...Option) *Tree {
	t := &Tree{leafCap: defaultLeafCap, childCap: defaultChildCap}
	for _, o := range opts {
		o(t)
	}
	if t.leafCap < 4 {
		t.leafCap = 4
	}
	if t.childCap < 4 {
		t.childCap = 4
	}
	t.root = &leaf{}
	t.height = 1
	return t
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the current tree height (leaf-only tree has height 1).
func (t *Tree) Height() int { return t.height }

// Visits returns node traversals since ResetStats.
func (t *Tree) Visits() uint64 { return t.visits }

// ResetStats clears the traversal counter.
func (t *Tree) ResetStats() { t.visits = 0 }

// Get returns the value at key.
func (t *Tree) Get(key uint64) (uint64, bool) {
	n := t.root
	for {
		t.visits++
		switch x := n.(type) {
		case *leaf:
			i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= key })
			if i < len(x.keys) && x.keys[i] == key {
				return x.vals[i], true
			}
			return 0, false
		case *internal:
			n = x.children[x.route(key)]
		}
	}
}

// route returns the child index for key.
func (in *internal) route(key uint64) int {
	return sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
}

// Put inserts or updates key.
func (t *Tree) Put(key, val uint64) {
	newChild, sep, grew := t.insert(t.root, key, val)
	if newChild != nil {
		t.root = &internal{keys: []uint64{sep}, children: []node{t.root, newChild}}
		t.height++
	}
	if grew {
		t.size++
	}
}

// insert descends into n; if n splits, returns the new right sibling and
// the separator key to add in the parent. grew reports a new key (vs
// update).
func (t *Tree) insert(n node, key, val uint64) (right node, sep uint64, grew bool) {
	t.visits++
	switch x := n.(type) {
	case *leaf:
		i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= key })
		if i < len(x.keys) && x.keys[i] == key {
			x.vals[i] = val
			return nil, 0, false
		}
		x.keys = append(x.keys, 0)
		x.vals = append(x.vals, 0)
		copy(x.keys[i+1:], x.keys[i:])
		copy(x.vals[i+1:], x.vals[i:])
		x.keys[i], x.vals[i] = key, val
		if len(x.keys) <= t.leafCap {
			return nil, 0, true
		}
		// Split.
		mid := len(x.keys) / 2
		r := &leaf{
			keys: append([]uint64(nil), x.keys[mid:]...),
			vals: append([]uint64(nil), x.vals[mid:]...),
			next: x.next,
		}
		x.keys = x.keys[:mid]
		x.vals = x.vals[:mid]
		x.next = r
		return r, r.keys[0], true
	case *internal:
		ci := x.route(key)
		childRight, childSep, g := t.insert(x.children[ci], key, val)
		if childRight == nil {
			return nil, 0, g
		}
		x.keys = append(x.keys, 0)
		copy(x.keys[ci+1:], x.keys[ci:])
		x.keys[ci] = childSep
		x.children = append(x.children, nil)
		copy(x.children[ci+2:], x.children[ci+1:])
		x.children[ci+1] = childRight
		if len(x.children) <= t.childCap {
			return nil, 0, g
		}
		// Split internal: middle key moves up.
		midK := len(x.keys) / 2
		upKey := x.keys[midK]
		r := &internal{
			keys:     append([]uint64(nil), x.keys[midK+1:]...),
			children: append([]node(nil), x.children[midK+1:]...),
		}
		x.keys = x.keys[:midK]
		x.children = x.children[:midK+1]
		return r, upKey, g
	}
	panic("btree: unknown node type")
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key uint64) bool {
	removed := t.remove(t.root, key)
	if removed {
		t.size--
	}
	// Collapse a root with one child.
	if in, ok := t.root.(*internal); ok && len(in.children) == 1 {
		t.root = in.children[0]
		t.height--
	}
	return removed
}

func (t *Tree) minLeaf() int  { return t.leafCap / 2 }
func (t *Tree) minChild() int { return (t.childCap + 1) / 2 }

// remove deletes key under n. Underflow in n's children is repaired here
// so n only ever sees balanced children.
func (t *Tree) remove(n node, key uint64) bool {
	t.visits++
	switch x := n.(type) {
	case *leaf:
		i := sort.Search(len(x.keys), func(i int) bool { return x.keys[i] >= key })
		if i >= len(x.keys) || x.keys[i] != key {
			return false
		}
		x.keys = append(x.keys[:i], x.keys[i+1:]...)
		x.vals = append(x.vals[:i], x.vals[i+1:]...)
		return true
	case *internal:
		ci := x.route(key)
		removed := t.remove(x.children[ci], key)
		if removed {
			t.rebalance(x, ci)
		}
		return removed
	}
	panic("btree: unknown node type")
}

// rebalance repairs a possible underflow of x.children[ci].
func (t *Tree) rebalance(x *internal, ci int) {
	child := x.children[ci]
	if !t.underflow(child) {
		return
	}
	// Try borrowing from the left sibling.
	if ci > 0 && t.canLend(x.children[ci-1]) {
		t.borrowLeft(x, ci)
		return
	}
	// Try the right sibling.
	if ci < len(x.children)-1 && t.canLend(x.children[ci+1]) {
		t.borrowRight(x, ci)
		return
	}
	// Merge with a sibling.
	if ci > 0 {
		t.merge(x, ci-1)
	} else {
		t.merge(x, ci)
	}
}

func (t *Tree) underflow(n node) bool {
	switch x := n.(type) {
	case *leaf:
		return len(x.keys) < t.minLeaf()
	case *internal:
		return len(x.children) < t.minChild()
	}
	return false
}

func (t *Tree) canLend(n node) bool {
	switch x := n.(type) {
	case *leaf:
		return len(x.keys) > t.minLeaf()
	case *internal:
		return len(x.children) > t.minChild()
	}
	return false
}

// borrowLeft moves the left sibling's last entry/child into children[ci].
func (t *Tree) borrowLeft(x *internal, ci int) {
	switch child := x.children[ci].(type) {
	case *leaf:
		l := x.children[ci-1].(*leaf)
		k := l.keys[len(l.keys)-1]
		v := l.vals[len(l.vals)-1]
		l.keys = l.keys[:len(l.keys)-1]
		l.vals = l.vals[:len(l.vals)-1]
		child.keys = append([]uint64{k}, child.keys...)
		child.vals = append([]uint64{v}, child.vals...)
		x.keys[ci-1] = child.keys[0]
	case *internal:
		l := x.children[ci-1].(*internal)
		// Rotate through the parent separator.
		child.keys = append([]uint64{x.keys[ci-1]}, child.keys...)
		x.keys[ci-1] = l.keys[len(l.keys)-1]
		l.keys = l.keys[:len(l.keys)-1]
		child.children = append([]node{l.children[len(l.children)-1]}, child.children...)
		l.children = l.children[:len(l.children)-1]
	}
}

// borrowRight moves the right sibling's first entry/child into children[ci].
func (t *Tree) borrowRight(x *internal, ci int) {
	switch child := x.children[ci].(type) {
	case *leaf:
		r := x.children[ci+1].(*leaf)
		child.keys = append(child.keys, r.keys[0])
		child.vals = append(child.vals, r.vals[0])
		r.keys = r.keys[1:]
		r.vals = r.vals[1:]
		x.keys[ci] = r.keys[0]
	case *internal:
		r := x.children[ci+1].(*internal)
		child.keys = append(child.keys, x.keys[ci])
		x.keys[ci] = r.keys[0]
		r.keys = r.keys[1:]
		child.children = append(child.children, r.children[0])
		r.children = r.children[1:]
	}
}

// merge folds children[ci+1] into children[ci] and drops separator ci.
func (t *Tree) merge(x *internal, ci int) {
	switch left := x.children[ci].(type) {
	case *leaf:
		right := x.children[ci+1].(*leaf)
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	case *internal:
		right := x.children[ci+1].(*internal)
		left.keys = append(left.keys, x.keys[ci])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	x.keys = append(x.keys[:ci], x.keys[ci+1:]...)
	x.children = append(x.children[:ci+1], x.children[ci+2:]...)
}

// Ascend calls fn for each key/value in ascending key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key, val uint64) bool) {
	n := t.root
	for {
		in, ok := n.(*internal)
		if !ok {
			break
		}
		n = in.children[0]
	}
	for l := n.(*leaf); l != nil; l = l.next {
		for i := range l.keys {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
	}
}

// Check validates structural invariants, returning an error describing the
// first violation. Used by tests and available for debugging.
func (t *Tree) Check() error {
	depth := -1
	var prevKey uint64
	first := true
	count := 0

	var walk func(n node, d int, lo, hi uint64, hasLo, hasHi bool) error
	walk = func(n node, d int, lo, hi uint64, hasLo, hasHi bool) error {
		switch x := n.(type) {
		case *leaf:
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			if len(x.keys) != len(x.vals) {
				return fmt.Errorf("btree: leaf key/val length mismatch")
			}
			if d > 0 && len(x.keys) < t.minLeaf() && t.size > t.leafCap {
				return fmt.Errorf("btree: leaf underflow: %d < %d", len(x.keys), t.minLeaf())
			}
			for i, k := range x.keys {
				if hasLo && k < lo {
					return fmt.Errorf("btree: key %d below bound %d", k, lo)
				}
				if hasHi && k >= hi {
					return fmt.Errorf("btree: key %d not below bound %d", k, hi)
				}
				if !first && k <= prevKey {
					return fmt.Errorf("btree: keys not strictly ascending: %d after %d", k, prevKey)
				}
				prevKey, first = k, false
				count++
				_ = i
			}
			return nil
		case *internal:
			if len(x.children) != len(x.keys)+1 {
				return fmt.Errorf("btree: internal has %d children, %d keys", len(x.children), len(x.keys))
			}
			if d > 0 && len(x.children) < t.minChild() {
				return fmt.Errorf("btree: internal underflow")
			}
			for i := 1; i < len(x.keys); i++ {
				if x.keys[i] <= x.keys[i-1] {
					return fmt.Errorf("btree: separators not ascending")
				}
			}
			for i, c := range x.children {
				clo, chi := lo, hi
				cHasLo, cHasHi := hasLo, hasHi
				if i > 0 {
					clo, cHasLo = x.keys[i-1], true
				}
				if i < len(x.keys) {
					chi, cHasHi = x.keys[i], true
				}
				if err := walk(c, d+1, clo, chi, cHasLo, cHasHi); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("btree: unknown node type %T", n)
	}
	if err := walk(t.root, 0, 0, 0, false, false); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys found", t.size, count)
	}
	if depth != -1 && depth+1 != t.height {
		return fmt.Errorf("btree: height %d but leaf depth %d", t.height, depth)
	}
	return nil
}

// NodeCount returns the number of nodes (for memory-footprint modeling).
func (t *Tree) NodeCount() (leaves, internals int) {
	var walk func(n node)
	walk = func(n node) {
		switch x := n.(type) {
		case *leaf:
			leaves++
		case *internal:
			internals++
			for _, c := range x.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return
}
