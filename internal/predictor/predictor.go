// Package predictor implements CIDR's software unique-chunk predictor.
//
// The baseline integrates hashing and compression in one accelerator, so
// compression cores need to know *which* chunks will turn out unique
// before the hashes come back (§2.3). CIDR solves this with a host-side
// predictor that samples each buffered chunk and guesses its uniqueness,
// letting the batch scheduler mark chunks for compression in a single
// accelerator pass. Observation #3: at scale this predictor becomes a
// first-order CPU (32.7%) and memory-bandwidth (23.7%) consumer — which
// is exactly why FIDR's in-NIC hashing removes it.
//
// The predictor here is functional: it samples 64 bytes of each chunk
// into a cheap 64-bit sketch and tracks recently seen sketches in a
// bounded table. Prediction quality is measured against the real dedup
// outcome so the baseline's mispredictions (recompressed duplicates /
// stalled uniques) can be quantified.
package predictor

import (
	"fidr/internal/hostmodel"
)

// Stats reports predictor activity and accuracy.
type Stats struct {
	Predictions     uint64
	PredictedUnique uint64
	// Outcomes recorded via Confirm:
	TrueUnique     uint64 // predicted unique, was unique
	FalseUnique    uint64 // predicted unique, was duplicate
	TrueDuplicate  uint64
	FalseDuplicate uint64 // predicted duplicate, was unique
}

// Accuracy returns the fraction of confirmed predictions that were right.
func (s Stats) Accuracy() float64 {
	total := s.TrueUnique + s.FalseUnique + s.TrueDuplicate + s.FalseDuplicate
	if total == 0 {
		return 0
	}
	return float64(s.TrueUnique+s.TrueDuplicate) / float64(total)
}

// Predictor guesses chunk uniqueness from sampled content. Not safe for
// concurrent use (the baseline runs it on the ingest thread, which is the
// point of the bottleneck).
type Predictor struct {
	capacity int
	sketches map[uint64]bool
	order    []uint64
	next     int

	ledger *hostmodel.Ledger
	costs  hostmodel.CostParams
	stats  Stats
}

// New creates a predictor remembering up to capacity sketches.
func New(capacity int, ledger *hostmodel.Ledger, costs hostmodel.CostParams) *Predictor {
	if capacity < 1 {
		capacity = 1
	}
	return &Predictor{
		capacity: capacity,
		sketches: make(map[uint64]bool, capacity),
		order:    make([]uint64, 0, capacity),
		ledger:   ledger,
		costs:    costs,
	}
}

// sketch samples 8 qwords spread across the chunk into a 64-bit FNV-style
// fingerprint — cheap enough for a software fast path, collision-tolerant
// because mispredictions are validated later.
func sketch(data []byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	if len(data) == 0 {
		return h
	}
	step := len(data) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(data); i += step {
		end := i + 8
		if end > len(data) {
			end = len(data)
		}
		for _, b := range data[i:end] {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// Predict returns true if the chunk is predicted unique. Charges the
// predictor's CPU time and its read of the chunk from the host buffer.
func (p *Predictor) Predict(data []byte) bool {
	p.ledger.CPU(hostmodel.CompPredictor, p.costs.PredictorPerChunkNs)
	p.ledger.MemPayload(hostmodel.PathPredictor, uint64(len(data)))
	p.stats.Predictions++

	k := sketch(data)
	if p.sketches[k] {
		return false
	}
	// Remember with bounded FIFO replacement.
	if len(p.order) < p.capacity {
		p.order = append(p.order, k)
	} else {
		delete(p.sketches, p.order[p.next])
		p.order[p.next] = k
		p.next = (p.next + 1) % p.capacity
	}
	p.sketches[k] = true
	p.stats.PredictedUnique++
	return true
}

// Confirm records the actual dedup outcome for a prediction.
func (p *Predictor) Confirm(predictedUnique, actuallyUnique bool) {
	switch {
	case predictedUnique && actuallyUnique:
		p.stats.TrueUnique++
	case predictedUnique && !actuallyUnique:
		p.stats.FalseUnique++
	case !predictedUnique && !actuallyUnique:
		p.stats.TrueDuplicate++
	default:
		p.stats.FalseDuplicate++
	}
}

// Stats returns a snapshot.
func (p *Predictor) Stats() Stats { return p.stats }
