package predictor

import (
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/hostmodel"
)

func newP(cap int) (*Predictor, *hostmodel.Ledger) {
	l := hostmodel.NewLedger()
	return New(cap, l, hostmodel.DefaultCosts()), l
}

func TestPredictsDuplicates(t *testing.T) {
	p, _ := newP(1024)
	sh := blockcomp.NewShaper(0.5)
	a := sh.Make(1, 4096)
	b := sh.Make(2, 4096)
	if !p.Predict(a) {
		t.Fatal("first sight of a predicted duplicate")
	}
	if !p.Predict(b) {
		t.Fatal("first sight of b predicted duplicate")
	}
	if p.Predict(a) {
		t.Fatal("repeat of a predicted unique")
	}
}

func TestChargesLedger(t *testing.T) {
	p, l := newP(16)
	data := make([]byte, 4096)
	for i := 0; i < 10; i++ {
		data[0] = byte(i)
		p.Predict(data)
	}
	s := l.Snapshot()
	if s.CPUNanos[hostmodel.CompPredictor] == 0 {
		t.Fatal("no predictor CPU charged")
	}
	if s.MemBytes[hostmodel.PathPredictor] != 10*4096 {
		t.Fatalf("predictor memory = %d", s.MemBytes[hostmodel.PathPredictor])
	}
}

func TestBoundedCapacity(t *testing.T) {
	p, _ := newP(4)
	sh := blockcomp.NewShaper(0.5)
	blocks := make([][]byte, 8)
	for i := range blocks {
		blocks[i] = sh.Make(uint64(i+1), 4096)
		p.Predict(blocks[i])
	}
	// Early entries must have been evicted: predicting block 0 again
	// should claim unique (it forgot).
	if !p.Predict(blocks[0]) {
		t.Fatal("capacity-4 predictor remembered 8 entries")
	}
	if len(p.sketches) > 4+1 {
		t.Fatalf("sketch table grew to %d", len(p.sketches))
	}
}

func TestConfirmAccuracy(t *testing.T) {
	p, _ := newP(16)
	p.Confirm(true, true)
	p.Confirm(true, false)
	p.Confirm(false, false)
	p.Confirm(false, true)
	s := p.Stats()
	if s.TrueUnique != 1 || s.FalseUnique != 1 || s.TrueDuplicate != 1 || s.FalseDuplicate != 1 {
		t.Fatalf("outcome counts wrong: %+v", s)
	}
	if s.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
}

func TestAccuracyOnShapedStream(t *testing.T) {
	// On a stream with heavy duplication in a tight window the
	// predictor should be right most of the time.
	p, _ := newP(4096)
	sh := blockcomp.NewShaper(0.5)
	seen := make(map[uint64]bool)
	for i := 0; i < 4000; i++ {
		seed := uint64(i % 500) // every seed repeats 8 times
		data := sh.Make(seed, 4096)
		pred := p.Predict(data)
		p.Confirm(pred, !seen[seed])
		seen[seed] = true
	}
	if acc := p.Stats().Accuracy(); acc < 0.95 {
		t.Fatalf("accuracy %.3f on easy stream", acc)
	}
}

func TestEmptyAndTinyChunks(t *testing.T) {
	p, _ := newP(4)
	if !p.Predict(nil) {
		t.Fatal("first empty chunk predicted duplicate")
	}
	if p.Predict([]byte{}) {
		t.Fatal("second empty chunk predicted unique")
	}
	p.Predict([]byte{1, 2, 3})
}

func TestStatsZeroAccuracy(t *testing.T) {
	var s Stats
	if s.Accuracy() != 0 {
		t.Fatal("zero stats accuracy nonzero")
	}
}

func BenchmarkPredict4K(b *testing.B) {
	p, _ := newP(1 << 16)
	data := blockcomp.NewShaper(0.5).Make(1, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		p.Predict(data)
	}
}
