package blockcomp

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// LZ is a byte-oriented LZ77 compressor shaped like the greedy,
// entropy-stage-free matchers used in FPGA compression engines
// (Abdelfattah'14, Fowers'15 — the paper's references [2,16]): hash-table
// match search, 16-byte minimum useful match, 64-KB window, literal runs
// and (length, distance) copies encoded in a simple token stream.
//
// Token format:
//
//	0x00 lenVarint  <lit bytes>   literal run
//	0x01 lenVarint distVarint     copy run (length >= 4)
//
// The format favors decode simplicity over density, matching hardware
// implementations that decode one token per cycle.
type LZ struct{}

// NewLZ returns the LZ compressor.
func NewLZ() *LZ { return &LZ{} }

// Name implements Compressor.
func (*LZ) Name() string { return "lz" }

const (
	lzMinMatch = 4
	lzWindow   = 1 << 16
	lzHashBits = 14
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

// lzState is the per-call match table. Pooling it keeps the 64-KB table
// off the stack and out of the allocator when compression lanes run many
// chunks concurrently; each lane's call checks out its own state.
type lzState struct {
	table [1 << lzHashBits]int32
}

var lzStatePool = sync.Pool{New: func() any { return new(lzState) }}

// Compress implements Compressor.
func (z *LZ) Compress(src []byte) ([]byte, error) {
	return z.CompressAppend(nil, src)
}

// CompressAppend implements AppendCompressor: the token stream is
// appended to dst, so callers can recycle output buffers across chunks.
func (*LZ) CompressAppend(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		if dst == nil {
			dst = []byte{}
		}
		return dst, nil
	}
	st := lzStatePool.Get().(*lzState)
	defer lzStatePool.Put(st)
	table := &st.table
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	emitLiterals := func(end int) {
		if end <= litStart {
			return
		}
		run := src[litStart:end]
		var hdr [binary.MaxVarintLen64 + 1]byte
		hdr[0] = 0x00
		n := binary.PutUvarint(hdr[1:], uint64(len(run)))
		dst = append(dst, hdr[:1+n]...)
		dst = append(dst, run...)
	}
	for i+lzMinMatch <= len(src) {
		v := binary.LittleEndian.Uint32(src[i:])
		h := lzHash(v)
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) < lzWindow &&
			binary.LittleEndian.Uint32(src[cand:]) == v {
			// Extend the match forward.
			length := lzMinMatch
			for i+length < len(src) && src[int(cand)+length] == src[i+length] {
				length++
			}
			emitLiterals(i)
			var hdr [2*binary.MaxVarintLen64 + 1]byte
			hdr[0] = 0x01
			n := binary.PutUvarint(hdr[1:], uint64(length))
			n += binary.PutUvarint(hdr[1+n:], uint64(i-int(cand)))
			dst = append(dst, hdr[:1+n]...)
			// Index a few positions inside the match so later
			// repeats are found, then skip past it.
			end := i + length
			for j := i + 1; j < end && j+lzMinMatch <= len(src); j += 7 {
				table[lzHash(binary.LittleEndian.Uint32(src[j:]))] = int32(j)
			}
			i = end
			litStart = i
			continue
		}
		i++
	}
	emitLiterals(len(src))
	return dst, nil
}

// Decompress implements Compressor.
func (*LZ) Decompress(src []byte, dstSize int) ([]byte, error) {
	dst := make([]byte, 0, dstSize)
	p := 0
	for p < len(src) {
		tok := src[p]
		p++
		switch tok {
		case 0x00:
			length, n := binary.Uvarint(src[p:])
			if n <= 0 {
				return nil, fmt.Errorf("blockcomp: lz bad literal length at %d", p)
			}
			p += n
			// Compare in uint64: a huge varint must not overflow int.
			if length > uint64(len(src)-p) {
				return nil, fmt.Errorf("blockcomp: lz literal run overflows input")
			}
			dst = append(dst, src[p:p+int(length)]...)
			p += int(length)
		case 0x01:
			length, n := binary.Uvarint(src[p:])
			if n <= 0 {
				return nil, fmt.Errorf("blockcomp: lz bad copy length at %d", p)
			}
			if length > uint64(dstSize) {
				return nil, fmt.Errorf("blockcomp: lz copy length %d exceeds output bound %d", length, dstSize)
			}
			p += n
			dist, n2 := binary.Uvarint(src[p:])
			if n2 <= 0 {
				return nil, fmt.Errorf("blockcomp: lz bad copy distance at %d", p)
			}
			p += n2
			if dist == 0 || dist > uint64(len(dst)) {
				return nil, fmt.Errorf("blockcomp: lz distance %d out of range (have %d)", dist, len(dst))
			}
			// Byte-by-byte copy: overlapping copies are the RLE case.
			start := len(dst) - int(dist)
			for k := 0; k < int(length); k++ {
				dst = append(dst, dst[start+k])
			}
		default:
			return nil, fmt.Errorf("blockcomp: lz unknown token 0x%02x at %d", tok, p-1)
		}
		if len(dst) > dstSize {
			return nil, fmt.Errorf("blockcomp: lz output exceeds expected %d", dstSize)
		}
	}
	if len(dst) != dstSize {
		return nil, fmt.Errorf("blockcomp: lz output %d bytes, expected %d", len(dst), dstSize)
	}
	return dst, nil
}
