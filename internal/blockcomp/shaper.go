package blockcomp

import "encoding/binary"

// Shaper synthesizes deterministic chunk payloads with a controllable
// compression ratio. The paper builds its workloads the same way
// (§7.1 factor 4): each request carries unique content plus a compressible
// filler sized so the overall block compresses to the target ratio.
//
// A payload is a function of (seed, size, ratio) only: two calls with the
// same arguments produce identical bytes, which is how the workload
// generator manufactures exact duplicates for the dedup ratio targets.
type Shaper struct {
	// TargetRatio is the desired compressed/original ratio in (0, 1].
	TargetRatio float64
}

// NewShaper returns a Shaper with the given target compression ratio.
// Ratio is clamped to [0.05, 1.0].
func NewShaper(ratio float64) *Shaper {
	if ratio < 0.05 {
		ratio = 0.05
	}
	if ratio > 1 {
		ratio = 1
	}
	return &Shaper{TargetRatio: ratio}
}

// splitmix64 advances and hashes a 64-bit state; used as the deterministic
// byte source for the incompressible region.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Block fills dst with a payload derived from seed whose compressed size
// under an LZ-class compressor is close to TargetRatio*len(dst). The first
// part of the block is pseudo-random (incompressible, carries the seed's
// identity), the rest is a short repeating pattern (compresses away).
func (s *Shaper) Block(seed uint64, dst []byte) {
	n := len(dst)
	if n == 0 {
		return
	}
	randLen := int(float64(n) * s.TargetRatio)
	if randLen > n {
		randLen = n
	}
	// Incompressible region: seeded splitmix64 stream.
	state := seed ^ 0xD6E8FEB86659FD93
	i := 0
	for ; i+8 <= randLen; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], splitmix64(&state))
	}
	if i < randLen {
		w := splitmix64(&state)
		for ; i < randLen; i++ {
			dst[i] = byte(w)
			w >>= 8
		}
	}
	// Compressible tail: a 16-byte pattern derived from the seed so two
	// blocks with different seeds differ everywhere, but each block's
	// tail is trivially compressible.
	var pat [16]byte
	binary.LittleEndian.PutUint64(pat[:8], seed)
	binary.LittleEndian.PutUint64(pat[8:], seed^0xA5A5A5A5A5A5A5A5)
	for j := randLen; j < n; j++ {
		dst[j] = pat[(j-randLen)%16]
	}
}

// Make allocates and fills a block of the given size.
func (s *Shaper) Make(seed uint64, size int) []byte {
	b := make([]byte, size)
	s.Block(seed, b)
	return b
}
