// Package blockcomp provides the block compressors used by the FIDR and
// baseline compression engines, plus utilities to synthesize data with a
// target compressibility (the paper pins workloads at a 50% compression
// ratio by construction, §7.1 factor 4).
//
// Two production compressors are provided: Flate (stdlib DEFLATE, the
// high-ratio reference) and LZ (a dependency-free byte-oriented LZ77
// variant resembling what fits in FPGA compression cores: greedy matching,
// 64-KB window, no entropy stage). Null passes data through for
// reduction-disabled configurations.
package blockcomp

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compressor compresses and decompresses single chunks. Implementations
// must be safe for concurrent use by multiple goroutines.
type Compressor interface {
	// Name identifies the algorithm.
	Name() string
	// Compress returns the compressed form of src. The result must be
	// decompressible by Decompress. Implementations may return a result
	// longer than src for incompressible input; callers decide whether
	// to store raw instead.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress. dstSize is the exact decompressed
	// size (known from chunk metadata).
	Decompress(src []byte, dstSize int) ([]byte, error)
}

// AppendCompressor is implemented by compressors that can compress into
// a caller-provided buffer, appending to dst and returning the extended
// slice. The compression-engine lanes rely on this to reuse one output
// buffer per batch slot instead of allocating per chunk.
type AppendCompressor interface {
	Compressor
	// CompressAppend appends the compressed form of src to dst
	// (typically dst[:0] of a recycled buffer) and returns the result.
	CompressAppend(dst, src []byte) ([]byte, error)
}

// CompressAppend compresses src appending to dst, using the compressor's
// native append support when available and falling back to Compress plus
// a copy otherwise (custom compressors keep working, just without buffer
// reuse).
func CompressAppend(c Compressor, dst, src []byte) ([]byte, error) {
	if a, ok := c.(AppendCompressor); ok {
		return a.CompressAppend(dst, src)
	}
	out, err := c.Compress(src)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

// Ratio returns compressed/original size; 0.5 means "compressed to half".
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}

// --- Null ---

// Null is the identity compressor.
type Null struct{}

// Name implements Compressor.
func (Null) Name() string { return "null" }

// Compress implements Compressor.
func (Null) Compress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// CompressAppend implements AppendCompressor.
func (Null) CompressAppend(dst, src []byte) ([]byte, error) {
	return append(dst, src...), nil
}

// Decompress implements Compressor.
func (Null) Decompress(src []byte, dstSize int) ([]byte, error) {
	if len(src) != dstSize {
		return nil, fmt.Errorf("blockcomp: null size mismatch: have %d want %d", len(src), dstSize)
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// --- Flate ---

// Flate compresses with stdlib DEFLATE at the given level.
type Flate struct {
	Level int
	// writers recycles flate.Writer state (the dominant allocation:
	// ~700 KB of match tables per writer). Safe for concurrent use.
	writers sync.Pool
}

// NewFlate returns a DEFLATE compressor. Level follows compress/flate
// (1 fastest .. 9 best, -1 default).
func NewFlate(level int) *Flate { return &Flate{Level: level} }

// Name implements Compressor.
func (f *Flate) Name() string { return fmt.Sprintf("flate-%d", f.Level) }

// appendWriter appends written bytes to a slice (io.Writer over dst).
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Compress implements Compressor.
func (f *Flate) Compress(src []byte) ([]byte, error) {
	return f.CompressAppend(nil, src)
}

// CompressAppend implements AppendCompressor with a recycled writer.
func (f *Flate) CompressAppend(dst, src []byte) ([]byte, error) {
	aw := &appendWriter{b: dst}
	w, _ := f.writers.Get().(*flate.Writer)
	if w == nil {
		var err error
		if w, err = flate.NewWriter(aw, f.Level); err != nil {
			return nil, fmt.Errorf("blockcomp: flate writer: %w", err)
		}
	} else {
		w.Reset(aw)
	}
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("blockcomp: flate compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("blockcomp: flate close: %w", err)
	}
	f.writers.Put(w)
	return aw.b, nil
}

// Decompress implements Compressor.
func (f *Flate) Decompress(src []byte, dstSize int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out := make([]byte, dstSize)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("blockcomp: flate decompress: %w", err)
	}
	// Require exact size: trailing data means corrupted metadata.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("blockcomp: flate stream longer than %d", dstSize)
	}
	return out, nil
}
