package blockcomp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func compressors() []Compressor {
	return []Compressor{Null{}, NewFlate(6), NewFlate(1), NewLZ()}
}

func TestRoundTripAll(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte{0},
		[]byte("hello world"),
		bytes.Repeat([]byte{0xAA}, 4096),
		bytes.Repeat([]byte("abcdefgh"), 512),
	}
	rng := rand.New(rand.NewSource(11))
	r := make([]byte, 4096)
	rng.Read(r)
	inputs = append(inputs, r)

	for _, c := range compressors() {
		for i, in := range inputs {
			out, err := c.Compress(in)
			if err != nil {
				t.Fatalf("%s input %d: compress: %v", c.Name(), i, err)
			}
			back, err := c.Decompress(out, len(in))
			if err != nil {
				t.Fatalf("%s input %d: decompress: %v", c.Name(), i, err)
			}
			if !bytes.Equal(back, in) {
				t.Fatalf("%s input %d: round trip mismatch", c.Name(), i)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range compressors() {
		c := c
		prop := func(data []byte) bool {
			out, err := c.Compress(data)
			if err != nil {
				return false
			}
			back, err := c.Decompress(out, len(data))
			return err == nil && bytes.Equal(back, data)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCompressibleShrinks(t *testing.T) {
	in := bytes.Repeat([]byte("0123456789abcdef"), 256) // 4096 bytes
	for _, c := range []Compressor{NewFlate(6), NewLZ()} {
		out, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) >= len(in)/4 {
			t.Errorf("%s: repeated input compressed to %d/%d", c.Name(), len(out), len(in))
		}
	}
}

func TestIncompressibleBounded(t *testing.T) {
	in := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(in)
	for _, c := range []Compressor{NewFlate(6), NewLZ()} {
		out, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > len(in)+len(in)/8+64 {
			t.Errorf("%s: random input blew up to %d/%d", c.Name(), len(out), len(in))
		}
	}
}

func TestDecompressWrongSize(t *testing.T) {
	in := []byte("some sample content for the codec")
	for _, c := range compressors() {
		out, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompress(out, len(in)+1); err == nil {
			t.Errorf("%s: oversized expected length accepted", c.Name())
		}
		if len(in) > 0 {
			if _, err := c.Decompress(out, len(in)-1); err == nil {
				t.Errorf("%s: undersized expected length accepted", c.Name())
			}
		}
	}
}

func TestLZRejectsCorruptStream(t *testing.T) {
	lz := NewLZ()
	cases := [][]byte{
		{0x07},                   // unknown token
		{0x01, 0x04, 0x09},       // copy with distance beyond output
		{0x00, 0xFF, 0xFF, 0x7F}, // literal run longer than stream
	}
	for i, in := range cases {
		if _, err := lz.Decompress(in, 100); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestLZOverlappingCopy(t *testing.T) {
	// RLE-style data forces overlapping copies (dist < length).
	lz := NewLZ()
	in := bytes.Repeat([]byte{0x42}, 1000)
	out, err := lz.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 64 {
		t.Fatalf("RLE input compressed to only %d bytes", len(out))
	}
	back, err := lz.Decompress(out, len(in))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, in) {
		t.Fatal("overlapping copy round trip failed")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 10) != 1 {
		t.Error("Ratio with zero original should be 1")
	}
	if Ratio(100, 50) != 0.5 {
		t.Error("Ratio(100,50) != 0.5")
	}
}

func TestShaperDeterministic(t *testing.T) {
	s := NewShaper(0.5)
	a := s.Make(77, 4096)
	b := s.Make(77, 4096)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different blocks")
	}
	c := s.Make(78, 4096)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical blocks")
	}
}

func TestShaperHitsTargetRatio(t *testing.T) {
	lz := NewLZ()
	for _, target := range []float64{0.25, 0.5, 0.75} {
		s := NewShaper(target)
		var totalIn, totalOut int
		for seed := uint64(0); seed < 32; seed++ {
			in := s.Make(seed, 4096)
			out, err := lz.Compress(in)
			if err != nil {
				t.Fatal(err)
			}
			totalIn += len(in)
			totalOut += len(out)
		}
		got := float64(totalOut) / float64(totalIn)
		if got < target-0.08 || got > target+0.08 {
			t.Errorf("target %.2f: achieved ratio %.3f", target, got)
		}
	}
}

func TestShaperClamps(t *testing.T) {
	if NewShaper(-1).TargetRatio < 0.05 {
		t.Error("ratio not clamped up")
	}
	if NewShaper(2).TargetRatio > 1 {
		t.Error("ratio not clamped down")
	}
}

func TestShaperZeroLength(t *testing.T) {
	NewShaper(0.5).Block(1, nil) // must not panic
}

func BenchmarkLZCompress4K(b *testing.B) {
	in := NewShaper(0.5).Make(1, 4096)
	lz := NewLZ()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := lz.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlateCompress4K(b *testing.B) {
	in := NewShaper(0.5).Make(1, 4096)
	fl := NewFlate(1)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := fl.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZDecompress4K(b *testing.B) {
	in := NewShaper(0.5).Make(1, 4096)
	lz := NewLZ()
	out, err := lz.Compress(in)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := lz.Decompress(out, len(in)); err != nil {
			b.Fatal(err)
		}
	}
}
