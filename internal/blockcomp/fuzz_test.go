package blockcomp

import (
	"bytes"
	"testing"
)

// FuzzLZRoundTrip: any input must compress and decompress to itself.
func FuzzLZRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add(NewShaper(0.5).Make(1, 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		lz := NewLZ()
		out, err := lz.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := lz.Decompress(out, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("LZ round trip mismatch")
		}
	})
}

// FuzzLZDecompress: arbitrary compressed streams must never panic or
// produce output beyond the declared size.
func FuzzLZDecompress(f *testing.F) {
	lz := NewLZ()
	good, _ := lz.Compress([]byte("some sample data data data"))
	f.Add(good, 26)
	f.Add([]byte{0x01, 0xFF, 0xFF}, 100)
	f.Add([]byte{0x00}, 0)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			return
		}
		out, err := lz.Decompress(data, size)
		if err == nil && len(out) != size {
			t.Fatalf("accepted stream decoded to %d bytes, declared %d", len(out), size)
		}
	})
}
