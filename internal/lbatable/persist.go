package lbatable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary serialization of the LBA-PBA metadata for checkpointing. The
// Hash-PBN table is already durable on the table SSDs (write-back cache);
// the LBA-PBA mapping is the volatile half of the metadata, so servers
// checkpoint it to a reserved table-SSD region (core.Checkpoint).
//
// Format (little endian, versioned):
//
//	magic "FIDRLBA1"
//	u32 containerSize
//	u64 #entries, then per entry: u16 offsetUnits, u16 csize, u32 refs
//	u64 #containers, then u64 startPBN each
//	u64 #lbaMappings, then u64 lba, u64 pbn each
//	u64 #relocations, then u64 pbn, u64 container, u16 offsetUnits each
//	u64 #deadContainers, then u64 container, u64 deadBytes each
//	u64 #retiredContainers, then u64 container each (optional trailing
//	    section; snapshots written before it exist end at the dead list)

var lbaMagic = [8]byte{'F', 'I', 'D', 'R', 'L', 'B', 'A', '1'}

// Snapshot serializes the table.
func (t *Table) Snapshot() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.refsInit()
	var buf bytes.Buffer
	buf.Write(lbaMagic[:])
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(t.containerSize))
	w(uint64(len(t.entries)))
	for i, e := range t.entries {
		w(e.offsetUnits)
		w(e.csize)
		w(t.refs[i])
	}
	w(uint64(len(t.startPBN)))
	for _, s := range t.startPBN {
		w(s)
	}
	w(uint64(len(t.lbaToPBN)))
	for lba, pbn := range t.lbaToPBN {
		w(lba)
		w(pbn)
	}
	w(uint64(len(t.relocated)))
	for pbn, loc := range t.relocated {
		w(pbn)
		w(loc.container)
		w(loc.offsetUnits)
	}
	w(uint64(len(t.deadBytes)))
	for c, b := range t.deadBytes {
		w(c)
		w(b)
	}
	// Optional trailing section (absent in older snapshots): GC-retired
	// containers, so usage reporting survives a checkpoint/restore.
	w(uint64(len(t.retired)))
	for c := range t.retired {
		w(c)
	}
	return buf.Bytes()
}

// RestoreTable deserializes a Snapshot into a fresh table.
func RestoreTable(data []byte) (*Table, error) {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := r.Read(magic[:]); err != nil || magic != lbaMagic {
		return nil, fmt.Errorf("lbatable: bad snapshot magic")
	}
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var csize uint32
	if err := rd(&csize); err != nil {
		return nil, fmt.Errorf("lbatable: snapshot truncated: %w", err)
	}
	t, err := New(int(csize))
	if err != nil {
		return nil, err
	}
	var n uint64
	if err := rd(&n); err != nil {
		return nil, fmt.Errorf("lbatable: snapshot truncated: %w", err)
	}
	const sanity = 1 << 40
	if n > sanity {
		return nil, fmt.Errorf("lbatable: implausible entry count %d", n)
	}
	t.entries = make([]pbnEntry, n)
	t.refs = make([]uint32, n)
	for i := range t.entries {
		if err := rd(&t.entries[i].offsetUnits); err != nil {
			return nil, fmt.Errorf("lbatable: entries truncated: %w", err)
		}
		if err := rd(&t.entries[i].csize); err != nil {
			return nil, fmt.Errorf("lbatable: entries truncated: %w", err)
		}
		if err := rd(&t.refs[i]); err != nil {
			return nil, fmt.Errorf("lbatable: refs truncated: %w", err)
		}
	}
	if err := rd(&n); err != nil || n > sanity {
		return nil, fmt.Errorf("lbatable: container list invalid")
	}
	t.startPBN = make([]uint64, n)
	for i := range t.startPBN {
		if err := rd(&t.startPBN[i]); err != nil {
			return nil, fmt.Errorf("lbatable: containers truncated: %w", err)
		}
	}
	if err := rd(&n); err != nil || n > sanity {
		return nil, fmt.Errorf("lbatable: mapping list invalid")
	}
	for i := uint64(0); i < n; i++ {
		var lba, pbn uint64
		if err := rd(&lba); err != nil {
			return nil, fmt.Errorf("lbatable: mappings truncated: %w", err)
		}
		if err := rd(&pbn); err != nil {
			return nil, fmt.Errorf("lbatable: mappings truncated: %w", err)
		}
		t.lbaToPBN[lba] = pbn
	}
	if err := rd(&n); err != nil || n > sanity {
		return nil, fmt.Errorf("lbatable: relocation list invalid")
	}
	if n > 0 {
		t.relocated = make(map[uint64]pbnLoc, n)
	}
	for i := uint64(0); i < n; i++ {
		var pbn, container uint64
		var off uint16
		if err := rd(&pbn); err != nil {
			return nil, fmt.Errorf("lbatable: relocations truncated: %w", err)
		}
		if err := rd(&container); err != nil {
			return nil, fmt.Errorf("lbatable: relocations truncated: %w", err)
		}
		if err := rd(&off); err != nil {
			return nil, fmt.Errorf("lbatable: relocations truncated: %w", err)
		}
		t.relocated[pbn] = pbnLoc{container: container, offsetUnits: off}
		if container+1 > t.frontier {
			t.frontier = container + 1
		}
	}
	if err := rd(&n); err != nil || n > sanity {
		return nil, fmt.Errorf("lbatable: dead list invalid")
	}
	if n > 0 {
		t.deadBytes = make(map[uint64]uint64, n)
	}
	for i := uint64(0); i < n; i++ {
		var c, b uint64
		if err := rd(&c); err != nil {
			return nil, fmt.Errorf("lbatable: dead bytes truncated: %w", err)
		}
		if err := rd(&b); err != nil {
			return nil, fmt.Errorf("lbatable: dead bytes truncated: %w", err)
		}
		t.deadBytes[c] = b
	}
	// Optional retired-container section: absent in older snapshots, so
	// a clean EOF here is valid; a half-written section is not.
	if err := rd(&n); err != nil {
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		return nil, fmt.Errorf("lbatable: retired list truncated: %w", err)
	}
	if n > sanity {
		return nil, fmt.Errorf("lbatable: retired list invalid")
	}
	if n > 0 {
		t.retired = make(map[uint64]struct{}, n)
	}
	for i := uint64(0); i < n; i++ {
		var c uint64
		if err := rd(&c); err != nil {
			return nil, fmt.Errorf("lbatable: retired list truncated: %w", err)
		}
		t.retired[c] = struct{}{}
	}
	return t, nil
}

// NextContainer returns the container index that should be allocated
// next after restore (one past the highest seen, counting containers
// that hold only relocated chunks).
func (t *Table) NextContainer() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.frontier > uint64(len(t.startPBN)) {
		return t.frontier
	}
	return uint64(len(t.startPBN))
}
