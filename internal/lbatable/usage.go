package lbatable

// Per-container usage reporting for the capacity plane: how many live
// and dead compressed bytes each container holds, so heatmaps and GC
// advice can rank compaction victims without walking the table
// themselves.

// ContainerUsage summarizes one container's occupancy.
type ContainerUsage struct {
	// Container is the container index on the data SSD array.
	Container uint64
	// LiveBytes / LiveChunks cover chunks with nonzero references
	// located in this container (relocated chunks count at their new
	// home).
	LiveBytes  uint64
	LiveChunks int
	// DeadBytes / DeadChunks cover zero-reference chunks still located
	// here. Retired containers report zero dead: their stranded entries
	// are reclaimed space, not garbage.
	DeadBytes  uint64
	DeadChunks int
	// Retired marks a container reclaimed by compaction.
	Retired bool
}

// ContainerUsage reports per-container occupancy for every container up
// to the allocation frontier, in ascending container order. The sum of
// DeadBytes across the result equals the DeadBytes() ledger totals (the
// invariant the capacity plane's heatmap is checked against).
func (t *Table) ContainerUsage() []ContainerUsage {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.refsInit()
	n := uint64(len(t.startPBN))
	if t.frontier > n {
		n = t.frontier
	}
	if n == 0 {
		return nil
	}
	usage := make([]ContainerUsage, n)
	for i := range usage {
		c := uint64(i)
		usage[i].Container = c
		_, usage[i].Retired = t.retired[c]
	}
	for pbn := range t.entries {
		p := uint64(pbn)
		loc := t.locate(p)
		if loc.container >= n {
			continue
		}
		u := &usage[loc.container]
		size := uint64(t.entries[p].csize)
		if t.refs[p] > 0 {
			u.LiveBytes += size
			u.LiveChunks++
		} else if !u.Retired {
			u.DeadBytes += size
			u.DeadChunks++
		}
	}
	return usage
}
