package lbatable

import "testing"

// FuzzRestoreTable: arbitrary bytes must never panic the snapshot
// decoder, and valid snapshots must round-trip.
func FuzzRestoreTable(f *testing.F) {
	tb, _ := New(8192)
	tb.AppendChunk(1, 0, 0, 700)
	tb.AppendChunk(2, 0, 768, 900)
	tb.MapLBA(9, 0)
	f.Add(tb.Snapshot())
	f.Add([]byte{})
	f.Add([]byte("FIDRLBA1 corrupted tail"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := RestoreTable(data)
		if err != nil {
			return
		}
		// A decodable snapshot must re-encode to something decodable
		// with identical observable state.
		again, err := RestoreTable(got.Snapshot())
		if err != nil {
			t.Fatalf("re-snapshot not restorable: %v", err)
		}
		if again.Chunks() != got.Chunks() || again.MappedLBAs() != got.MappedLBAs() {
			t.Fatal("snapshot not stable across round trips")
		}
	})
}
