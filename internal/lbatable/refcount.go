package lbatable

import "fmt"

// Reference counting and relocation support for garbage collection.
//
// Inline deduplication creates many-to-one LBA->PBN mappings; overwrites
// and re-deduplication drop references, leaving dead compressed chunks
// inside sealed containers. The paper does not describe its cleaning
// policy (enterprise systems all have one), so this extension adds the
// standard design: a per-PBN reference count maintained by the mapping
// operations, per-container dead-byte accounting to pick compaction
// victims, and PBN relocation so compaction can move live chunks without
// changing their identity (the Hash-PBN table keys stay valid).
//
// Relocations are kept in a sparse overlay so the common case retains the
// paper's compact 4-byte level-2 entries.

// pbnLoc is an overlay location for a relocated PBN.
type pbnLoc struct {
	container   uint64
	offsetUnits uint16
}

// refsInit lazily sizes the refcount slice.
func (t *Table) refsInit() {
	for len(t.refs) < len(t.entries) {
		t.refs = append(t.refs, 0)
	}
}

// incRef increments pbn's reference count.
func (t *Table) incRef(pbn uint64) {
	t.refsInit()
	t.refs[pbn]++
}

// decRef decrements pbn's count, recording dead bytes when it hits zero.
func (t *Table) decRef(pbn uint64) {
	t.refsInit()
	if t.refs[pbn] == 0 {
		// Defensive: double-free indicates a caller bug.
		panic(fmt.Sprintf("lbatable: refcount underflow for PBN %d", pbn))
	}
	t.refs[pbn]--
	if t.refs[pbn] == 0 {
		loc := t.locate(pbn)
		if t.deadBytes == nil {
			t.deadBytes = make(map[uint64]uint64)
		}
		t.deadBytes[loc.container] += uint64(t.entries[pbn].csize)
	}
}

// reviveRef handles a duplicate write that references a currently dead
// chunk (refcount 0 but not yet compacted): the dead-byte accounting is
// rolled back.
func (t *Table) reviveRef(pbn uint64) {
	loc := t.locate(pbn)
	dead := t.deadBytes[loc.container]
	size := uint64(t.entries[pbn].csize)
	if dead >= size {
		t.deadBytes[loc.container] = dead - size
	}
}

// locate resolves a PBN's physical placement, honouring relocations.
func (t *Table) locate(pbn uint64) pbnLoc {
	if loc, ok := t.relocated[pbn]; ok {
		return loc
	}
	i := containerIndex(t.startPBN, pbn)
	return pbnLoc{container: uint64(i), offsetUnits: t.entries[pbn].offsetUnits}
}

// Mappings returns a copy of the current LBA -> PBN map (snapshot
// creation reads the live volume's mapping atomically).
func (t *Table) Mappings() map[uint64]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint64]uint64, len(t.lbaToPBN))
	for lba, pbn := range t.lbaToPBN {
		out[lba] = pbn
	}
	return out
}

// Retain adds an external reference to pbn (snapshots hold references so
// their chunks survive live-volume overwrites and compaction).
func (t *Table) Retain(pbn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pbn >= uint64(len(t.entries)) {
		return fmt.Errorf("lbatable: PBN %d not allocated", pbn)
	}
	t.refsInit()
	if t.refs[pbn] == 0 {
		t.reviveRef(pbn)
	}
	t.refs[pbn]++
	return nil
}

// Release drops an external reference to pbn.
func (t *Table) Release(pbn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pbn >= uint64(len(t.entries)) {
		return fmt.Errorf("lbatable: PBN %d not allocated", pbn)
	}
	t.decRef(pbn)
	return nil
}

// RefCount returns pbn's current reference count.
func (t *Table) RefCount(pbn uint64) (uint32, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if pbn >= uint64(len(t.entries)) {
		return 0, fmt.Errorf("lbatable: PBN %d not allocated", pbn)
	}
	t.refsInit()
	return t.refs[pbn], nil
}

// DeadBytes returns the dead compressed bytes recorded per container.
func (t *Table) DeadBytes() map[uint64]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint64]uint64, len(t.deadBytes))
	for c, b := range t.deadBytes {
		if b > 0 {
			out[c] = b
		}
	}
	return out
}

// LiveChunks returns the PBNs with nonzero references located in the
// given container, in ascending PBN order.
func (t *Table) LiveChunks(container uint64) []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.refsInit()
	var out []uint64
	for pbn := range t.entries {
		p := uint64(pbn)
		if t.refs[p] == 0 {
			continue
		}
		if t.locate(p).container == container {
			out = append(out, p)
		}
	}
	return out
}

// DeadChunks returns the zero-reference PBNs located in container.
func (t *Table) DeadChunks(container uint64) []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.refsInit()
	var out []uint64
	for pbn := range t.entries {
		p := uint64(pbn)
		if t.refs[p] != 0 {
			continue
		}
		if t.locate(p).container == container {
			out = append(out, p)
		}
	}
	return out
}

// Relocate moves pbn to a new physical placement (compaction). The PBN —
// and therefore every LBA mapping and Hash-PBN entry referring to it —
// stays valid. The old container's dead accounting is not touched; the
// caller retires whole containers after moving their live chunks out.
func (t *Table) Relocate(pbn, newContainer uint64, newOff uint32) error {
	if newOff%OffsetUnit != 0 {
		return fmt.Errorf("lbatable: offset %d not %d-byte aligned", newOff, OffsetUnit)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pbn >= uint64(len(t.entries)) {
		return fmt.Errorf("lbatable: PBN %d not allocated", pbn)
	}
	if int(newOff)+int(t.entries[pbn].csize) > t.containerSize {
		return fmt.Errorf("lbatable: relocation target [%d,+%d) exceeds container", newOff, t.entries[pbn].csize)
	}
	if t.relocated == nil {
		t.relocated = make(map[uint64]pbnLoc)
	}
	t.relocated[pbn] = pbnLoc{container: newContainer, offsetUnits: uint16(newOff / OffsetUnit)}
	if newContainer+1 > t.frontier {
		t.frontier = newContainer + 1
	}
	return nil
}

// RetireContainer clears the dead-byte accounting for a fully compacted
// container (its space is reusable by the data SSD layer) and marks it
// retired so usage reporting counts its remaining dead-located chunks
// as reclaimed rather than garbage.
func (t *Table) RetireContainer(container uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.deadBytes, container)
	if t.retired == nil {
		t.retired = make(map[uint64]struct{})
	}
	t.retired[container] = struct{}{}
}

// RetiredContainers returns the number of GC-retired containers.
func (t *Table) RetiredContainers() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.retired)
}
