// Package lbatable implements the LBA-PBA metadata (§2.1.4): the two-level
// mapping from a client's logical block address to the physical location
// of its (compressed) chunk inside a container on the data SSDs.
//
// Level 1 maps LBA -> PBN (physical block number: a sequential id assigned
// to each unique stored chunk). Level 2 maps PBN -> (offset inside its
// container, compressed size). Containers are large fixed-size blocks
// (4 MiB by default) of concatenated compressed chunks, written to the
// data SSDs as single sequential writes. The physical byte address is
// computed as container*containerSize + offset.
//
// Entry sizes follow the paper: the PBN is 48-bit; offset and compressed
// size are 16-bit each, with offsets expressed in 64-byte units so a
// 16-bit offset spans a 4-MiB container.
package lbatable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

const (
	// DefaultContainerSize is the paper's compressed-chunk container
	// size (the Compression Engine flush threshold, §5.3 step 8).
	DefaultContainerSize = 4 << 20
	// OffsetUnit is the alignment of chunks inside a container; 16-bit
	// stored offsets are in these units.
	OffsetUnit = 64
	// MaxCSize is the largest storable compressed chunk.
	MaxCSize = 1<<16 - 1
)

// NoPBN is the reserved "unmapped" PBN value.
const NoPBN = ^uint64(0)

// PBA is a resolved physical address of a stored chunk.
type PBA struct {
	// Container is the container index on the data SSD array.
	Container uint64
	// Offset is the byte offset inside the container.
	Offset uint32
	// CSize is the compressed size in bytes.
	CSize uint32
}

// ByteOffset returns the absolute byte address given the container size.
func (p PBA) ByteOffset(containerSize int) uint64 {
	return p.Container*uint64(containerSize) + uint64(p.Offset)
}

// pbnEntry is the compact level-2 record (paper: 2 B offset + 2 B size).
type pbnEntry struct {
	offsetUnits uint16
	csize       uint16
}

// Table is the two-level LBA-PBA mapping. Safe for concurrent use.
type Table struct {
	containerSize int

	mu sync.RWMutex
	// lbaToPBN is level 1. A sparse map stands in for the paper's flat
	// array; the resource model charges array semantics.
	lbaToPBN map[uint64]uint64
	// entries is level 2, indexed by PBN.
	entries []pbnEntry
	// containerOfPBN[i] is the container holding PBN range
	// [startPBN[i], startPBN[i+1]).
	startPBN []uint64

	// GC state (refcount.go): per-PBN reference counts, dead compressed
	// bytes per container, the sparse relocation overlay, and the set of
	// GC-retired containers (their dead chunks are reclaimed space, not
	// garbage — ContainerUsage must not re-count them).
	refs      []uint32
	deadBytes map[uint64]uint64
	relocated map[uint64]pbnLoc
	retired   map[uint64]struct{}

	// frontier is one past the highest container index seen via Relocate.
	// Compaction packs live chunks into containers that may never receive
	// an AppendChunk, so startPBN alone under-reports the allocation
	// frontier (and NextContainer would hand out a container that already
	// holds relocated data).
	frontier uint64
}

// New creates a Table for the given container size.
func New(containerSize int) (*Table, error) {
	if containerSize <= 0 || containerSize%OffsetUnit != 0 {
		return nil, fmt.Errorf("lbatable: container size %d must be a positive multiple of %d", containerSize, OffsetUnit)
	}
	if containerSize > OffsetUnit*(1<<16) {
		return nil, fmt.Errorf("lbatable: container size %d exceeds 16-bit offset reach %d", containerSize, OffsetUnit*(1<<16))
	}
	return &Table{
		containerSize: containerSize,
		lbaToPBN:      make(map[uint64]uint64),
	}, nil
}

// ContainerSize returns the configured container size.
func (t *Table) ContainerSize() int { return t.containerSize }

// ErrUnmapped is returned when an LBA has never been written.
var ErrUnmapped = errors.New("lbatable: LBA not mapped")

// MapLBA points lba at an existing PBN (duplicate-chunk path: only the
// LBA-PBA table is updated, §2.2). Reference counts follow the mapping:
// the previous chunk at lba loses a reference, the new one gains one.
func (t *Table) MapLBA(lba, pbn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pbn >= uint64(len(t.entries)) {
		return fmt.Errorf("lbatable: PBN %d not allocated", pbn)
	}
	t.remapLocked(lba, pbn)
	return nil
}

// remapLocked points lba at pbn, maintaining reference counts. A mapping
// to a currently dead chunk (refcount 0, not yet compacted) revives it.
func (t *Table) remapLocked(lba, pbn uint64) {
	t.refsInit()
	if old, ok := t.lbaToPBN[lba]; ok {
		if old == pbn {
			return
		}
		t.decRef(old)
	}
	if t.refs[pbn] == 0 {
		// AppendChunk creates chunks with one reference, so a zero
		// count means the chunk died earlier; roll back its dead
		// accounting.
		t.reviveRef(pbn)
	}
	t.refs[pbn]++
	t.lbaToPBN[lba] = pbn
}

// AppendChunk records a new unique chunk: it allocates the next PBN inside
// container, at byte offset off with compressed size csize, and maps lba
// to it. Offsets must be OffsetUnit-aligned and inside the container.
func (t *Table) AppendChunk(lba uint64, container uint64, off uint32, csize uint32) (pbn uint64, err error) {
	if off%OffsetUnit != 0 {
		return 0, fmt.Errorf("lbatable: offset %d not %d-byte aligned", off, OffsetUnit)
	}
	if int(off)+int(csize) > t.containerSize {
		return 0, fmt.Errorf("lbatable: chunk [%d,%d) exceeds container size %d", off, off+csize, t.containerSize)
	}
	if csize == 0 || csize > MaxCSize {
		return 0, fmt.Errorf("lbatable: invalid compressed size %d", csize)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pbn = uint64(len(t.entries))
	// Track container boundaries: PBNs are allocated in container order.
	// Containers between len(startPBN) and container hold only relocated
	// chunks (GC packs into containers that never see an append); pad
	// their start markers so the binary search in locate stays valid —
	// duplicate start values make the empty containers unreachable.
	if n := len(t.startPBN); n == 0 || uint64(n-1) != container {
		if uint64(len(t.startPBN)) > container {
			return 0, fmt.Errorf("lbatable: container %d appended out of order (next is %d)", container, len(t.startPBN))
		}
		for uint64(len(t.startPBN)) <= container {
			t.startPBN = append(t.startPBN, pbn)
		}
	}
	t.entries = append(t.entries, pbnEntry{
		offsetUnits: uint16(off / OffsetUnit),
		csize:       uint16(csize),
	})
	// The new chunk is born with one reference: its own LBA mapping.
	t.refsInit()
	if old, ok := t.lbaToPBN[lba]; ok && old != pbn {
		t.decRef(old)
	}
	t.refs[pbn] = 1
	t.lbaToPBN[lba] = pbn
	return pbn, nil
}

// LookupLBA resolves an LBA to its PBN.
func (t *Table) LookupLBA(lba uint64) (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pbn, ok := t.lbaToPBN[lba]
	if !ok {
		return 0, ErrUnmapped
	}
	return pbn, nil
}

// containerIndex finds the container whose PBN range covers pbn.
func containerIndex(startPBN []uint64, pbn uint64) int {
	return sort.Search(len(startPBN), func(i int) bool { return startPBN[i] > pbn }) - 1
}

// Resolve returns the physical address of a PBN, honouring relocations.
func (t *Table) Resolve(pbn uint64) (PBA, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if pbn >= uint64(len(t.entries)) {
		return PBA{}, fmt.Errorf("lbatable: PBN %d not allocated", pbn)
	}
	loc := t.locate(pbn)
	return PBA{
		Container: loc.container,
		Offset:    uint32(loc.offsetUnits) * OffsetUnit,
		CSize:     uint32(t.entries[pbn].csize),
	}, nil
}

// ResolveLBA combines LookupLBA and Resolve.
func (t *Table) ResolveLBA(lba uint64) (PBA, error) {
	pbn, err := t.LookupLBA(lba)
	if err != nil {
		return PBA{}, err
	}
	return t.Resolve(pbn)
}

// Chunks returns the number of allocated PBNs.
func (t *Table) Chunks() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return uint64(len(t.entries))
}

// MappedLBAs returns the number of mapped logical addresses.
func (t *Table) MappedLBAs() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.lbaToPBN)
}

// MetadataBytes estimates the table's memory footprint using the paper's
// entry sizes (6 B per LBA mapping + 4 B per PBN entry).
func (t *Table) MetadataBytes() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return uint64(len(t.lbaToPBN))*6 + uint64(len(t.entries))*4
}
