package lbatable

import (
	"math/rand"
	"testing"
)

func TestRefCountLifecycle(t *testing.T) {
	tb, _ := New(4096)
	pbn, err := tb.AppendChunk(10, 0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if rc, _ := tb.RefCount(pbn); rc != 1 {
		t.Fatalf("fresh chunk refcount = %d", rc)
	}
	// Dedup: two more LBAs reference the same chunk.
	tb.MapLBA(20, pbn)
	tb.MapLBA(30, pbn)
	if rc, _ := tb.RefCount(pbn); rc != 3 {
		t.Fatalf("refcount = %d after two dedup maps", rc)
	}
	// Re-mapping the same LBA to the same PBN is a no-op.
	tb.MapLBA(20, pbn)
	if rc, _ := tb.RefCount(pbn); rc != 3 {
		t.Fatalf("refcount = %d after idempotent remap", rc)
	}
	if _, err := tb.RefCount(99); err == nil {
		t.Fatal("refcount of unallocated PBN succeeded")
	}
}

func TestOverwriteDropsReference(t *testing.T) {
	tb, _ := New(4096)
	p1, _ := tb.AppendChunk(5, 0, 0, 500)
	p2, _ := tb.AppendChunk(5, 0, 512, 600) // overwrite LBA 5
	if rc, _ := tb.RefCount(p1); rc != 0 {
		t.Fatalf("overwritten chunk refcount = %d", rc)
	}
	if rc, _ := tb.RefCount(p2); rc != 1 {
		t.Fatalf("new chunk refcount = %d", rc)
	}
	dead := tb.DeadBytes()
	if dead[0] != 500 {
		t.Fatalf("dead bytes = %v, want 500 in container 0", dead)
	}
}

func TestReviveDeadChunk(t *testing.T) {
	tb, _ := New(4096)
	p1, _ := tb.AppendChunk(5, 0, 0, 500)
	tb.AppendChunk(5, 0, 512, 600) // kill p1
	if rc, _ := tb.RefCount(p1); rc != 0 {
		t.Fatal("p1 should be dead")
	}
	// A later duplicate write maps to p1 again (its fingerprint is
	// still in the Hash-PBN table).
	if err := tb.MapLBA(7, p1); err != nil {
		t.Fatal(err)
	}
	if rc, _ := tb.RefCount(p1); rc != 1 {
		t.Fatal("revive did not restore the reference")
	}
	if dead := tb.DeadBytes(); dead[0] != 0 {
		t.Fatalf("dead bytes = %v after revive, want none", dead)
	}
}

func TestLiveAndDeadChunks(t *testing.T) {
	tb, _ := New(8192)
	var pbns []uint64
	for i := 0; i < 4; i++ {
		p, err := tb.AppendChunk(uint64(i), 0, uint32(i*1024), 1000)
		if err != nil {
			t.Fatal(err)
		}
		pbns = append(pbns, p)
	}
	// Kill chunks 1 and 3 by overwriting their LBAs in container 1.
	tb.AppendChunk(1, 1, 0, 800)
	tb.AppendChunk(3, 1, 1024, 800)
	live := tb.LiveChunks(0)
	dead := tb.DeadChunks(0)
	if len(live) != 2 || live[0] != pbns[0] || live[1] != pbns[2] {
		t.Fatalf("live = %v", live)
	}
	if len(dead) != 2 || dead[0] != pbns[1] || dead[1] != pbns[3] {
		t.Fatalf("dead = %v", dead)
	}
	if db := tb.DeadBytes(); db[0] != 2000 {
		t.Fatalf("dead bytes = %v", db)
	}
}

func TestRelocatePreservesResolution(t *testing.T) {
	tb, _ := New(8192)
	pbn, _ := tb.AppendChunk(1, 0, 1024, 900)
	if err := tb.Relocate(pbn, 5, 2048); err != nil {
		t.Fatal(err)
	}
	pba, err := tb.Resolve(pbn)
	if err != nil {
		t.Fatal(err)
	}
	if pba.Container != 5 || pba.Offset != 2048 || pba.CSize != 900 {
		t.Fatalf("relocated pba = %+v", pba)
	}
	// LBA resolution follows (the PBN is unchanged).
	pba2, _ := tb.ResolveLBA(1)
	if pba2 != pba {
		t.Fatal("LBA resolution ignores relocation")
	}
}

func TestRelocateValidation(t *testing.T) {
	tb, _ := New(4096)
	if err := tb.Relocate(0, 1, 0); err == nil {
		t.Error("relocating unallocated PBN accepted")
	}
	pbn, _ := tb.AppendChunk(1, 0, 0, 600)
	if err := tb.Relocate(pbn, 1, 63); err == nil {
		t.Error("unaligned relocation accepted")
	}
	if err := tb.Relocate(pbn, 1, 3584); err == nil {
		t.Error("overflowing relocation accepted")
	}
}

func TestRetireContainer(t *testing.T) {
	tb, _ := New(4096)
	tb.AppendChunk(1, 0, 0, 500)
	tb.AppendChunk(1, 0, 512, 500) // kill the first
	if db := tb.DeadBytes(); db[0] == 0 {
		t.Fatal("no dead bytes recorded")
	}
	tb.RetireContainer(0)
	if db := tb.DeadBytes(); len(db) != 0 {
		t.Fatalf("dead bytes after retire: %v", db)
	}
}

func TestRefcountsRandomizedInvariant(t *testing.T) {
	// Invariant: sum of refcounts == number of mapped LBAs.
	tb, _ := New(1 << 16)
	rng := rand.New(rand.NewSource(11))
	var pbns []uint64
	off := uint32(0)
	container := uint64(0)
	for i := 0; i < 2000; i++ {
		lba := uint64(rng.Intn(300))
		if len(pbns) == 0 || rng.Intn(3) == 0 {
			csize := uint32(rng.Intn(900) + 64)
			if int(off)+int(csize) > 1<<16 {
				container++
				off = 0
			}
			p, err := tb.AppendChunk(lba, container, off, csize)
			if err != nil {
				t.Fatal(err)
			}
			off += (csize + OffsetUnit - 1) / OffsetUnit * OffsetUnit
			pbns = append(pbns, p)
		} else {
			if err := tb.MapLBA(lba, pbns[rng.Intn(len(pbns))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	var sum uint64
	for _, p := range pbns {
		rc, err := tb.RefCount(p)
		if err != nil {
			t.Fatal(err)
		}
		sum += uint64(rc)
	}
	if sum != uint64(tb.MappedLBAs()) {
		t.Fatalf("refcount sum %d != mapped LBAs %d", sum, tb.MappedLBAs())
	}
}

func TestRelocateAdvancesFrontier(t *testing.T) {
	tb, _ := New(4096)
	pbn, err := tb.AppendChunk(1, 0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NextContainer() != 1 {
		t.Fatalf("NextContainer %d, want 1", tb.NextContainer())
	}
	// GC packs the chunk into container 7, which never sees an append.
	if err := tb.Relocate(pbn, 7, 64); err != nil {
		t.Fatal(err)
	}
	if tb.NextContainer() != 8 {
		t.Fatalf("NextContainer %d after relocation, want 8 (container 7 holds live data)", tb.NextContainer())
	}
	// The frontier must survive a snapshot/restore cycle, or recovery
	// would allocate container 7 again and overwrite the relocated chunk.
	restored, err := RestoreTable(tb.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if restored.NextContainer() != 8 {
		t.Fatalf("restored NextContainer %d, want 8", restored.NextContainer())
	}
	pba, err := restored.Resolve(pbn)
	if err != nil || pba.Container != 7 || pba.Offset != 64 {
		t.Fatalf("restored relocation lost: %+v, %v", pba, err)
	}
	// Post-GC appends continue past the frontier.
	if _, err := restored.AppendChunk(2, 8, 0, 512); err != nil {
		t.Fatalf("append after relocated frontier: %v", err)
	}
}
