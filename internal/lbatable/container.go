package lbatable

import "fmt"

// Builder packs compressed chunks into a container. The compression
// engines accumulate compressed output until the container threshold is
// reached (§5.3 step 8), then the whole container is written to a data SSD
// in one sequential IO.
//
// Chunks are aligned to OffsetUnit inside the container so their offsets
// fit the 16-bit level-2 entries.
type Builder struct {
	size      int
	container uint64
	buf       []byte
	used      int
	count     int
}

// NewBuilder creates a Builder producing containers of the given size.
// The first container has index firstContainer.
func NewBuilder(size int, firstContainer uint64) (*Builder, error) {
	if size <= 0 || size%OffsetUnit != 0 {
		return nil, fmt.Errorf("lbatable: container size %d must be a positive multiple of %d", size, OffsetUnit)
	}
	return &Builder{size: size, container: firstContainer, buf: make([]byte, size)}, nil
}

// Fits reports whether a chunk of n bytes fits in the open container.
func (b *Builder) Fits(n int) bool {
	return b.used+align(n) <= b.size && n <= b.size
}

func align(n int) int {
	return (n + OffsetUnit - 1) / OffsetUnit * OffsetUnit
}

// Append copies a compressed chunk into the container and returns its
// container index and byte offset. The caller must check Fits first;
// Append fails rather than splitting a chunk across containers.
func (b *Builder) Append(cdata []byte) (container uint64, off uint32, err error) {
	if len(cdata) == 0 {
		return 0, 0, fmt.Errorf("lbatable: empty chunk")
	}
	if !b.Fits(len(cdata)) {
		return 0, 0, fmt.Errorf("lbatable: chunk of %d bytes does not fit (used %d/%d)", len(cdata), b.used, b.size)
	}
	off = uint32(b.used)
	copy(b.buf[b.used:], cdata)
	b.used += align(len(cdata))
	b.count++
	return b.container, off, nil
}

// Used returns the bytes consumed in the open container (aligned).
func (b *Builder) Used() int { return b.used }

// Peek reads n bytes at offset off from the open container, for serving
// reads of chunks that have not been sealed to an SSD yet. Returns false
// when the range exceeds the bytes appended so far (Used is aligned past
// every appended chunk, so any stored chunk is fully readable).
func (b *Builder) Peek(off, n int) ([]byte, bool) {
	if off < 0 || n < 0 || off+n > b.used {
		return nil, false
	}
	return b.buf[off : off+n], true
}

// Count returns the number of chunks in the open container.
func (b *Builder) Count() int { return b.count }

// Container returns the index of the open container.
func (b *Builder) Container() uint64 { return b.container }

// Seal closes the current container and starts the next one. It returns
// the sealed container's index and its full-size contents (zero padded),
// ready for one sequential SSD write. Sealing an empty container returns
// ok=false and advances nothing.
func (b *Builder) Seal() (container uint64, data []byte, ok bool) {
	if b.count == 0 {
		return 0, nil, false
	}
	container = b.container
	data = b.buf
	b.container++
	b.buf = make([]byte, b.size)
	b.used = 0
	b.count = 0
	return container, data, true
}
