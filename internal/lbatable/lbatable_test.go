package lbatable

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, size := range []int{0, -64, 100, OffsetUnit*(1<<16) + OffsetUnit} {
		if _, err := New(size); err == nil {
			t.Errorf("New(%d) accepted", size)
		}
	}
	tb, err := New(DefaultContainerSize)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ContainerSize() != DefaultContainerSize {
		t.Error("container size not stored")
	}
}

func TestAppendResolve(t *testing.T) {
	tb, _ := New(DefaultContainerSize)
	pbn, err := tb.AppendChunk(100, 0, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if pbn != 0 {
		t.Fatalf("first PBN = %d", pbn)
	}
	pba, err := tb.ResolveLBA(100)
	if err != nil {
		t.Fatal(err)
	}
	if pba.Container != 0 || pba.Offset != 0 || pba.CSize != 2048 {
		t.Fatalf("pba = %+v", pba)
	}
	if got := pba.ByteOffset(DefaultContainerSize); got != 0 {
		t.Errorf("byte offset = %d", got)
	}
}

func TestMultiContainerResolve(t *testing.T) {
	tb, _ := New(4096)
	// Container 0: two chunks; container 1: one chunk.
	if _, err := tb.AppendChunk(1, 0, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AppendChunk(2, 0, 1024, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AppendChunk(3, 1, 0, 700); err != nil {
		t.Fatal(err)
	}
	pba2, _ := tb.ResolveLBA(2)
	if pba2.Container != 0 || pba2.Offset != 1024 || pba2.CSize != 500 {
		t.Errorf("lba2 pba = %+v", pba2)
	}
	pba3, _ := tb.ResolveLBA(3)
	if pba3.Container != 1 || pba3.Offset != 0 || pba3.CSize != 700 {
		t.Errorf("lba3 pba = %+v", pba3)
	}
	if got := pba3.ByteOffset(4096); got != 4096 {
		t.Errorf("lba3 byte offset = %d", got)
	}
}

func TestAppendValidation(t *testing.T) {
	tb, _ := New(4096)
	if _, err := tb.AppendChunk(1, 0, 63, 100); err == nil {
		t.Error("unaligned offset accepted")
	}
	if _, err := tb.AppendChunk(1, 0, 0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := tb.AppendChunk(1, 0, 4032, 100); err == nil {
		t.Error("overflow chunk accepted")
	}
	// Appends may skip forward over containers that hold only relocated
	// chunks (GC packs without appending), but never go back into a
	// closed container.
	pbn, err := tb.AppendChunk(1, 2, 0, 100)
	if err != nil {
		t.Errorf("forward container gap rejected: %v", err)
	}
	if pba, err := tb.Resolve(pbn); err != nil || pba.Container != 2 {
		t.Errorf("chunk after gap resolved to %+v, %v", pba, err)
	}
	if tb.NextContainer() != 3 {
		t.Errorf("NextContainer %d after gap, want 3", tb.NextContainer())
	}
	if _, err := tb.AppendChunk(1, 0, 0, 100); err == nil {
		t.Error("append into closed container accepted")
	}
}

func TestMapLBADuplicatePath(t *testing.T) {
	tb, _ := New(4096)
	pbn, _ := tb.AppendChunk(10, 0, 0, 512)
	// A duplicate write at LBA 20 points at the same PBN.
	if err := tb.MapLBA(20, pbn); err != nil {
		t.Fatal(err)
	}
	a, _ := tb.ResolveLBA(10)
	b, _ := tb.ResolveLBA(20)
	if a != b {
		t.Fatalf("duplicate LBAs resolve differently: %+v vs %+v", a, b)
	}
	if err := tb.MapLBA(30, 99); err == nil {
		t.Error("mapping to unallocated PBN accepted")
	}
	if tb.Chunks() != 1 || tb.MappedLBAs() != 2 {
		t.Errorf("chunks=%d lbas=%d", tb.Chunks(), tb.MappedLBAs())
	}
}

func TestUnmappedLBA(t *testing.T) {
	tb, _ := New(4096)
	if _, err := tb.LookupLBA(42); err != ErrUnmapped {
		t.Fatalf("err = %v", err)
	}
	if _, err := tb.ResolveLBA(42); err != ErrUnmapped {
		t.Fatalf("err = %v", err)
	}
	if _, err := tb.Resolve(0); err == nil {
		t.Error("unallocated PBN resolved")
	}
}

func TestOverwriteLBA(t *testing.T) {
	tb, _ := New(4096)
	tb.AppendChunk(5, 0, 0, 100)
	pbn2, _ := tb.AppendChunk(5, 0, 128, 200)
	got, err := tb.LookupLBA(5)
	if err != nil || got != pbn2 {
		t.Fatalf("overwrite: pbn=%d err=%v", got, err)
	}
}

func TestMetadataBytes(t *testing.T) {
	tb, _ := New(4096)
	tb.AppendChunk(1, 0, 0, 100)
	tb.MapLBA(2, 0)
	// 2 LBAs * 6 + 1 entry * 4 = 16.
	if got := tb.MetadataBytes(); got != 16 {
		t.Errorf("metadata bytes = %d, want 16", got)
	}
}

func TestResolveMatchesReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb, _ := New(8192)
		type ref struct {
			container uint64
			off       uint32
			csize     uint32
		}
		refs := make(map[uint64]ref)
		var container uint64
		var used int
		for i := 0; i < 200; i++ {
			csize := uint32(rng.Intn(2000) + 1)
			sz := (int(csize) + OffsetUnit - 1) / OffsetUnit * OffsetUnit
			if used+sz > 8192 {
				container++
				used = 0
			}
			lba := uint64(rng.Intn(100))
			pbn, err := tb.AppendChunk(lba, container, uint32(used), csize)
			if err != nil {
				return false
			}
			refs[pbn] = ref{container, uint32(used), csize}
			used += sz
		}
		for pbn, r := range refs {
			pba, err := tb.Resolve(pbn)
			if err != nil || pba.Container != r.container || pba.Offset != r.off || pba.CSize != r.csize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuilderPacksAndSeals(t *testing.T) {
	b, err := NewBuilder(4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Container() != 7 {
		t.Error("first container index wrong")
	}
	c1 := bytes.Repeat([]byte{1}, 100)
	c2 := bytes.Repeat([]byte{2}, 200)
	cont, off1, err := b.Append(c1)
	if err != nil || cont != 7 || off1 != 0 {
		t.Fatalf("append1: cont=%d off=%d err=%v", cont, off1, err)
	}
	_, off2, err := b.Append(c2)
	if err != nil || off2 != 128 {
		t.Fatalf("append2: off=%d err=%v (want 128: aligned after 100)", off2, err)
	}
	if b.Count() != 2 {
		t.Errorf("count = %d", b.Count())
	}
	idx, data, ok := b.Seal()
	if !ok || idx != 7 || len(data) != 4096 {
		t.Fatalf("seal: idx=%d len=%d ok=%v", idx, len(data), ok)
	}
	if !bytes.Equal(data[0:100], c1) || !bytes.Equal(data[128:328], c2) {
		t.Error("sealed contents wrong")
	}
	if b.Container() != 8 || b.Used() != 0 || b.Count() != 0 {
		t.Error("builder not reset after seal")
	}
}

func TestBuilderSealEmpty(t *testing.T) {
	b, _ := NewBuilder(4096, 0)
	if _, _, ok := b.Seal(); ok {
		t.Error("sealing empty container succeeded")
	}
	if b.Container() != 0 {
		t.Error("empty seal advanced container index")
	}
}

func TestBuilderRejectsOversize(t *testing.T) {
	b, _ := NewBuilder(4096, 0)
	if _, _, err := b.Append(make([]byte, 5000)); err == nil {
		t.Error("oversized chunk accepted")
	}
	if _, _, err := b.Append(nil); err == nil {
		t.Error("empty chunk accepted")
	}
	// Fill then overflow.
	if _, _, err := b.Append(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if b.Fits(1) {
		t.Error("full container claims fit")
	}
	if _, _, err := b.Append([]byte{1}); err == nil {
		t.Error("append into full container accepted")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewBuilder(100, 0); err == nil {
		t.Error("unaligned size accepted")
	}
}

func BenchmarkAppendChunk(b *testing.B) {
	tb, _ := New(DefaultContainerSize)
	var container uint64
	var off uint32
	for i := 0; i < b.N; i++ {
		if int(off)+2048 > DefaultContainerSize {
			container++
			off = 0
		}
		if _, err := tb.AppendChunk(uint64(i), container, off, 2048); err != nil {
			b.Fatal(err)
		}
		off += 2048
	}
}

func BenchmarkResolveLBA(b *testing.B) {
	tb, _ := New(DefaultContainerSize)
	const n = 1 << 16
	var container uint64
	var off uint32
	for i := uint64(0); i < n; i++ {
		if int(off)+2048 > DefaultContainerSize {
			container++
			off = 0
		}
		tb.AppendChunk(i, container, off, 2048)
		off += 2048
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.ResolveLBA(uint64(i) & (n - 1)); err != nil {
			b.Fatal(err)
		}
	}
}
