package tablecache

import (
	"fidr/internal/btree"
	"fidr/internal/hostmodel"
	"fidr/internal/hwtree"
)

// swIndex is the baseline's software B+-tree index. Every operation
// burns host CPU — the "small data structures, big CPU bill" behaviour of
// Observation #4 (43.9% of table-caching CPU in Table 2).
type swIndex struct {
	tree   *btree.Tree
	ledger *hostmodel.Ledger
	costs  hostmodel.CostParams
}

func newSWIndex(l *hostmodel.Ledger, costs hostmodel.CostParams) *swIndex {
	return &swIndex{tree: btree.New(), ledger: l, costs: costs}
}

func (s *swIndex) lookup(bucket uint64) (uint64, bool) {
	s.ledger.CPU(hostmodel.CompTreeIndex, s.costs.TreeLookupNs)
	return s.tree.Get(bucket)
}

func (s *swIndex) insert(bucket, line uint64) {
	s.ledger.CPU(hostmodel.CompTreeIndex, s.costs.TreeUpdateNs)
	s.tree.Put(bucket, line)
}

func (s *swIndex) remove(bucket uint64) {
	s.ledger.CPU(hostmodel.CompTreeIndex, s.costs.TreeUpdateNs)
	s.tree.Delete(bucket)
}

func (s *swIndex) crashRate() float64        { return 0 }
func (s *swIndex) leafCacheHitRate() float64 { return 0 }

// hwIndex is FIDR's Cache HW-Engine tree: the pipelined hardware tree
// with W-way speculative updates. Index operations cost no host CPU; the
// executor's crash rate and the leaf-cache hit rate are measured for the
// Figure 13 throughput model.
type hwIndex struct {
	exec     *hwtree.SpecExecutor
	leafSim  *hwtree.LeafCacheSim
	pendingW int
}

func newHWIndex(width int) (*hwIndex, error) {
	exec, err := hwtree.NewSpecExecutor(hwtree.NewTree(), width)
	if err != nil {
		return nil, err
	}
	return &hwIndex{
		exec: exec,
		// ~1 MB of BRAM leaf cache: 2048 leaves of 512 B.
		leafSim:  hwtree.NewLeafCacheSim(2048),
		pendingW: width,
	}, nil
}

func (h *hwIndex) lookup(bucket uint64) (uint64, bool) {
	// Updates queued ahead of this lookup must land first.
	h.exec.Drain()
	v, ok, path := h.exec.Tree().Get(bucket)
	if len(path) > 0 {
		h.leafSim.Access(path[len(path)-1])
	}
	return v, ok
}

func (h *hwIndex) insert(bucket, line uint64) {
	h.exec.Enqueue(hwtree.Update{Kind: hwtree.UpdateInsert, Key: bucket, Val: line})
	h.drainIfFull()
}

func (h *hwIndex) remove(bucket uint64) {
	h.exec.Enqueue(hwtree.Update{Kind: hwtree.UpdateDelete, Key: bucket})
	h.drainIfFull()
}

// drainIfFull issues a window once enough updates are queued to fill the
// speculative pipeline, matching the engine's batched operation.
func (h *hwIndex) drainIfFull() {
	if h.exec.Pending() >= h.pendingW {
		h.exec.Drain()
	}
}

func (h *hwIndex) crashRate() float64 {
	h.exec.Drain()
	return h.exec.Stats().CrashRate()
}

func (h *hwIndex) leafCacheHitRate() float64 { return h.leafSim.HitRate() }
