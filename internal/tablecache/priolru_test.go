package tablecache

import (
	"math/rand"
	"testing"
)

func TestPriorityLRUBasics(t *testing.T) {
	p := NewPriorityLRU(4)
	p.Touch(1, "a")
	p.Touch(2, "a")
	p.Touch(3, "b")
	if p.Len() != 3 || p.TenantLines("a") != 2 || p.TenantLines("b") != 1 {
		t.Fatalf("len=%d a=%d b=%d", p.Len(), p.TenantLines("a"), p.TenantLines("b"))
	}
	// Promote and remove.
	p.Touch(1, "a")
	p.Remove(2)
	if p.Len() != 2 {
		t.Fatalf("len=%d after remove", p.Len())
	}
	p.Remove(2) // idempotent
	// Ownership transfer.
	p.Touch(3, "a")
	if p.TenantLines("b") != 0 || p.TenantLines("a") != 2 {
		t.Fatal("ownership transfer failed")
	}
}

func TestPriorityLRUEvictsOverShareTenant(t *testing.T) {
	p := NewPriorityLRU(10)
	p.SetWeight("high", 4)
	p.SetWeight("low", 1)
	// high holds 4 lines, low holds 8: low is far over its 2-line share.
	for i := uint64(0); i < 4; i++ {
		p.Touch(i, "high")
	}
	for i := uint64(100); i < 108; i++ {
		p.Touch(i, "low")
	}
	for i := 0; i < 6; i++ {
		line, ok := p.Evict()
		if !ok {
			t.Fatal("eviction failed")
		}
		if line < 100 {
			t.Fatalf("evicted high-priority line %d while low tenant over share", line)
		}
	}
}

func TestPriorityLRUEmptyEvict(t *testing.T) {
	p := NewPriorityLRU(4)
	if _, ok := p.Evict(); ok {
		t.Fatal("evicted from empty policy")
	}
}

func TestPriorityLRUNeedsEviction(t *testing.T) {
	p := NewPriorityLRU(2)
	p.Touch(1, "a")
	p.Touch(2, "a")
	if p.NeedsEviction() {
		t.Fatal("at capacity is not over capacity")
	}
	p.Touch(3, "a")
	if !p.NeedsEviction() {
		t.Fatal("over capacity not detected")
	}
}

// TestPriorityLRUProtectsWorkingSet reproduces the §8 scenario: a
// high-priority tenant with a reusable working set shares the cache with
// a low-priority scanning tenant. Under plain (weight-1-everywhere)
// policy the scan evicts the working set; with weights it survives.
func TestPriorityLRUProtectsWorkingSet(t *testing.T) {
	run := func(highWeight float64) (hits int) {
		p := NewPriorityLRU(100)
		p.SetWeight("high", highWeight)
		p.SetWeight("scan", 1)
		resident := make(map[uint64]bool)
		touch := func(line uint64, tenant string) bool {
			hit := resident[line]
			p.Touch(line, tenant)
			resident[line] = true
			for p.NeedsEviction() {
				v, ok := p.Evict()
				if !ok {
					break
				}
				delete(resident, v)
			}
			return hit
		}
		rng := rand.New(rand.NewSource(1))
		scanLine := uint64(1 << 20)
		for i := 0; i < 20000; i++ {
			// High tenant: 60-line working set, accessed half the time.
			if i%2 == 0 {
				if touch(uint64(rng.Intn(60)), "high") {
					hits++
				}
			} else {
				// Scanner: never-repeating lines.
				scanLine++
				touch(scanLine, "scan")
			}
		}
		return hits
	}
	plain := run(1)
	prioritized := run(8)
	if prioritized <= plain {
		t.Fatalf("prioritized hits %d not above plain %d", prioritized, plain)
	}
	// With weight 8 of 9, the high tenant's 60-line set fits its ~89
	// line share: hit rate should approach 100% after warmup.
	if float64(prioritized) < 0.95*10000 {
		t.Fatalf("prioritized hits %d; working set not protected", prioritized)
	}
}
