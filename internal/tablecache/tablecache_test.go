package tablecache

import (
	"math/rand"
	"testing"

	"fidr/internal/fingerprint"
	"fidr/internal/hashpbn"
	"fidr/internal/hostmodel"
	"fidr/internal/ssd"
)

func testCache(t *testing.T, mode Mode, lines int) (*Cache, *hostmodel.Ledger) {
	t.Helper()
	geom, err := hashpbn.GeometryFor(100000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.MustNew(ssd.Config{
		Name: "tssd", CapacityBytes: 1 << 31, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9,
	})
	ledger := hostmodel.NewLedger()
	c, err := New(Config{
		Geometry:    geom,
		CacheLines:  lines,
		Mode:        mode,
		UpdateWidth: 4,
		TableSSD:    dev,
		Ledger:      ledger,
		Costs:       hostmodel.DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, ledger
}

func fp(i int) fingerprint.FP {
	return fingerprint.Of([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
}

func TestConfigValidation(t *testing.T) {
	geom, _ := hashpbn.GeometryFor(1000, 0.5)
	dev := ssd.MustNew(ssd.Config{Name: "t", CapacityBytes: 1 << 30, PageSize: 4096, ReadBW: 1e9, WriteBW: 1e9})
	l := hostmodel.NewLedger()
	bad := []Config{
		{CacheLines: 4, TableSSD: dev, Ledger: l},
		{Geometry: geom, CacheLines: 0, TableSSD: dev, Ledger: l},
		{Geometry: geom, CacheLines: 4, Ledger: l},
		{Geometry: geom, CacheLines: 4, TableSSD: dev},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Table larger than SSD must be rejected.
	big, _ := hashpbn.GeometryFor(1<<40, 0.5)
	if _, err := New(Config{Geometry: big, CacheLines: 4, TableSSD: dev, Ledger: l}); err == nil {
		t.Error("oversized table accepted")
	}
}

func TestInsertLookupBothModes(t *testing.T) {
	for _, mode := range []Mode{Software, HW} {
		c, _ := testCache(t, mode, 64)
		for i := 0; i < 500; i++ {
			if err := c.Insert(fp(i), uint64(i)); err != nil {
				t.Fatalf("%v insert %d: %v", mode, i, err)
			}
		}
		for i := 0; i < 500; i++ {
			pbn, found, err := c.Lookup(fp(i))
			if err != nil {
				t.Fatalf("%v lookup %d: %v", mode, i, err)
			}
			if !found || pbn != uint64(i) {
				t.Fatalf("%v: key %d -> %d,%v", mode, i, pbn, found)
			}
		}
		if _, found, _ := c.Lookup(fp(99999)); found {
			t.Fatalf("%v: found absent key", mode)
		}
	}
}

func TestEvictionAndWriteBack(t *testing.T) {
	// A cache with very few lines must evict and still find all data
	// (dirty write-back to the table SSD preserves inserts).
	for _, mode := range []Mode{Software, HW} {
		c, _ := testCache(t, mode, 4)
		const n = 300
		for i := 0; i < n; i++ {
			if err := c.Insert(fp(i), uint64(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		st := c.Stats()
		if st.Evictions == 0 || st.Flushes == 0 {
			t.Fatalf("%v: no evictions/flushes with tiny cache: %+v", mode, st)
		}
		for i := 0; i < n; i++ {
			pbn, found, err := c.Lookup(fp(i))
			if err != nil {
				t.Fatal(err)
			}
			if !found || pbn != uint64(i+1) {
				t.Fatalf("%v: key %d lost after eviction (got %d,%v)", mode, i, pbn, found)
			}
		}
	}
}

func TestHitRateReflectsLocality(t *testing.T) {
	c, _ := testCache(t, Software, 256)
	// Warm a small working set, then hammer it: hits should dominate.
	for i := 0; i < 50; i++ {
		c.Insert(fp(i), uint64(i))
	}
	for rep := 0; rep < 20; rep++ {
		for i := 0; i < 50; i++ {
			c.Lookup(fp(i))
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.9 {
		t.Fatalf("hot-set hit rate %.3f", hr)
	}
}

func TestCPUChargingDiffersByMode(t *testing.T) {
	run := func(mode Mode) hostmodel.Snapshot {
		c, ledger := testCache(t, mode, 8)
		for i := 0; i < 400; i++ {
			c.Insert(fp(i), uint64(i))
			c.Lookup(fp(i))
		}
		return ledger.Snapshot()
	}
	sw := run(Software)
	hw := run(HW)

	if sw.CPUNanos[hostmodel.CompTreeIndex] == 0 {
		t.Fatal("software mode charged no tree CPU")
	}
	if sw.CPUNanos[hostmodel.CompTableSSDIO] == 0 {
		t.Fatal("software mode charged no SSD stack CPU")
	}
	if hw.CPUNanos[hostmodel.CompTreeIndex] != 0 {
		t.Fatal("HW mode charged host tree CPU")
	}
	if hw.CPUNanos[hostmodel.CompTableSSDIO] != 0 {
		t.Fatal("HW mode charged host SSD stack CPU")
	}
	// Content scans stay on the host in both modes.
	if sw.CPUNanos[hostmodel.CompTableContent] == 0 || hw.CPUNanos[hostmodel.CompTableContent] == 0 {
		t.Fatal("content scan CPU missing")
	}
	// Overall: HW mode must slash host CPU.
	if hw.TotalCPUNanos()*2 > sw.TotalCPUNanos() {
		t.Fatalf("HW mode CPU %d not well below software %d", hw.TotalCPUNanos(), sw.TotalCPUNanos())
	}
}

func TestMemoryChargedBothModes(t *testing.T) {
	for _, mode := range []Mode{Software, HW} {
		c, ledger := testCache(t, mode, 8)
		for i := 0; i < 100; i++ {
			c.Insert(fp(i), uint64(i))
		}
		snap := ledger.Snapshot()
		if snap.MemBytes[hostmodel.PathTableCache] == 0 {
			t.Fatalf("%v: no table-cache memory traffic recorded", mode)
		}
	}
}

func TestHWStatsExposed(t *testing.T) {
	// Crash rate scales with tree size: concurrent updates conflict when
	// they land in the same or adjacent leaves. Use a realistically
	// sized cache (the paper's is ~100K lines) so the tree is deep
	// enough for speculation to pay off.
	c, _ := testCache(t, HW, 8192)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		k := rng.Intn(16000)
		c.Insert(fp(k), uint64(k))
		c.Lookup(fp(k))
	}
	st := c.Stats()
	if st.CrashRate > 0.05 {
		t.Fatalf("crash rate %.4f too high for an 8K-line tree", st.CrashRate)
	}
	if st.LeafCacheHitRate <= 0 {
		t.Fatal("leaf cache hit rate not measured")
	}
}

func TestFlushAllPersists(t *testing.T) {
	geom, _ := hashpbn.GeometryFor(10000, 0.5)
	dev := ssd.MustNew(ssd.Config{Name: "t", CapacityBytes: 1 << 30, PageSize: 4096, ReadBW: 1e9, WriteBW: 1e9})
	l := hostmodel.NewLedger()
	mk := func() *Cache {
		c, err := New(Config{Geometry: geom, CacheLines: 32, Mode: Software, TableSSD: dev, Ledger: l, Costs: hostmodel.DefaultCosts()})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := mk()
	for i := 0; i < 100; i++ {
		c1.Insert(fp(i), uint64(i+7))
	}
	if err := c1.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same SSD must see everything.
	c2 := mk()
	for i := 0; i < 100; i++ {
		pbn, found, err := c2.Lookup(fp(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || pbn != uint64(i+7) {
			t.Fatalf("key %d not persisted (got %d,%v)", i, pbn, found)
		}
	}
}

func TestCacheLinesClampedToTable(t *testing.T) {
	geom, _ := hashpbn.GeometryFor(200, 1.0) // tiny table: 2 buckets
	dev := ssd.MustNew(ssd.Config{Name: "t", CapacityBytes: 1 << 30, PageSize: 4096, ReadBW: 1e9, WriteBW: 1e9})
	c, err := New(Config{Geometry: geom, CacheLines: 1000, Mode: Software, TableSSD: dev,
		Ledger: hostmodel.NewLedger(), Costs: hostmodel.DefaultCosts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.lines) > int(geom.NumBuckets) {
		t.Fatalf("cache lines %d exceed table buckets %d", len(c.lines), geom.NumBuckets)
	}
}

func TestModeString(t *testing.T) {
	if Software.String() != "software" || HW.String() != "hw-engine" {
		t.Error("mode strings wrong")
	}
}

func BenchmarkCacheLookupHW(b *testing.B) {
	geom, _ := hashpbn.GeometryFor(100000, 0.5)
	dev := ssd.MustNew(ssd.Config{Name: "t", CapacityBytes: 1 << 31, PageSize: 4096, ReadBW: 3.5e9, WriteBW: 2.7e9})
	c, err := New(Config{Geometry: geom, CacheLines: 1024, Mode: HW, UpdateWidth: 4,
		TableSSD: dev, Ledger: hostmodel.NewLedger(), Costs: hostmodel.DefaultCosts()})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		c.Insert(fp(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(fp(i % 5000))
	}
}
