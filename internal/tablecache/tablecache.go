// Package tablecache manages the in-DRAM cache of Hash-PBN table buckets.
//
// At PB scale the Hash-PBN table is multi-TB and lives on dedicated table
// SSDs; only a slice of buckets (4-KB cache lines) is kept in host memory
// (§2.3). The paper's Observation #4 splits the cache-management work into
// four components (Table 2) and assigns each a "best place to run":
//
//	tree indexing            -> accelerator (small structure, CPU-heavy)
//	table SSD access         -> accelerator (queue management)
//	cache content access     -> host (10-100s of GB of content)
//	replacement (LRU/free)   -> host or accelerator
//
// Two variants implement the same functional cache:
//
//   - Software (baseline): B+-tree index, SSD queues and replacement all
//     run on the host CPU, charged per operation to the host ledger.
//   - HW (FIDR Cache HW-Engine): tree indexing and table-SSD queues run
//     in the engine (hwtree + device-owned NVMe queues, zero host CPU);
//     the host keeps the LRU list and scans cached content, exactly the
//     hybrid split of §5.5.
package tablecache

import (
	"container/list"
	"fmt"
	"time"

	"fidr/internal/fingerprint"
	"fidr/internal/hashpbn"
	"fidr/internal/hostmodel"
	"fidr/internal/metrics"
	"fidr/internal/ssd"
)

// Mode selects the management architecture.
type Mode int

const (
	// Software is the baseline's all-host cache management.
	Software Mode = iota
	// HW is FIDR's Cache HW-Engine management.
	HW
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == HW {
		return "hw-engine"
	}
	return "software"
}

// Config describes a cache instance.
type Config struct {
	// Geometry is the full on-SSD table geometry.
	Geometry hashpbn.Geometry
	// CacheLines is the number of buckets cached in host memory
	// (the paper caches 2.8% of the table).
	CacheLines int
	// Mode selects software or HW-engine management.
	Mode Mode
	// UpdateWidth is the HW tree's concurrent update width (1-4);
	// ignored in Software mode.
	UpdateWidth int
	// TableSSD stores the full table. Required.
	TableSSD *ssd.SSD
	// Ledger receives resource charges. Required.
	Ledger *hostmodel.Ledger
	// Costs is the CPU cost table.
	Costs hostmodel.CostParams
	// MultiTenant switches replacement to the weighted PriorityLRU
	// (§8's differentiated caching): tag requests with SetTenant and
	// assign shares with SetTenantWeight.
	MultiTenant bool
}

// Stats reports cache activity.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
	// CrashRate is the HW tree's speculative crash rate (HW mode).
	CrashRate float64
	// LeafCacheHitRate is the HW tree's on-chip leaf cache hit rate.
	LeafCacheHitRate float64
}

// HitRate returns hits/lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// index abstracts the bucket->line mapping structure.
type index interface {
	lookup(bucket uint64) (line uint64, ok bool)
	insert(bucket, line uint64)
	remove(bucket uint64)
	crashRate() float64
	leafCacheHitRate() float64
}

// Cache is a bucket cache. Not safe for concurrent use: both the baseline
// and FIDR serialize table management on one thread/engine.
type Cache struct {
	cfg   Config
	geom  hashpbn.Geometry
	idx   index
	queue *ssd.QueuePair

	lines      [][]byte
	lineBucket []uint64
	lineValid  []bool
	dirty      []bool
	freeList   []uint64
	lru        *list.List               // front = most recent; values are line numbers
	lruElem    map[uint64]*list.Element // line -> element

	// Multi-tenant replacement (§8): nil unless Config.MultiTenant.
	prio   *PriorityLRU
	tenant string

	stats Stats

	// Live observability: nil unless Instrument attached a registry.
	obsLookups, obsHits, obsMisses *metrics.Counter
	obsEvictions, obsFlushes       *metrics.Counter
	obsProbe                       *metrics.Histogram
}

// Instrument mirrors cache activity into reg: "tablecache.*" counters
// and a "stage.table_cache.ns" histogram of wall-clock Lookup probe
// times. Call once, before serving traffic.
func (c *Cache) Instrument(reg *metrics.Registry) {
	c.obsLookups = reg.Counter("tablecache.lookups")
	c.obsHits = reg.Counter("tablecache.hits")
	c.obsMisses = reg.Counter("tablecache.misses")
	c.obsEvictions = reg.Counter("tablecache.evictions")
	c.obsFlushes = reg.Counter("tablecache.flushes")
	c.obsProbe = reg.Histogram("stage.table_cache.ns")
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Geometry.NumBuckets == 0 {
		return nil, fmt.Errorf("tablecache: zero-bucket geometry")
	}
	if cfg.CacheLines < 1 {
		return nil, fmt.Errorf("tablecache: CacheLines %d", cfg.CacheLines)
	}
	if uint64(cfg.CacheLines) > cfg.Geometry.NumBuckets {
		cfg.CacheLines = int(cfg.Geometry.NumBuckets)
	}
	if cfg.TableSSD == nil || cfg.Ledger == nil {
		return nil, fmt.Errorf("tablecache: TableSSD and Ledger are required")
	}
	if need := cfg.Geometry.TableBytes(); need > cfg.TableSSD.Config().CapacityBytes {
		return nil, fmt.Errorf("tablecache: table needs %d bytes, SSD holds %d", need, cfg.TableSSD.Config().CapacityBytes)
	}
	owner := ssd.OwnerHost
	if cfg.Mode == HW {
		owner = ssd.OwnerHW
	}
	queue, err := ssd.NewQueuePair(cfg.TableSSD, owner, 256)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:        cfg,
		geom:       cfg.Geometry,
		queue:      queue,
		lines:      make([][]byte, cfg.CacheLines),
		lineBucket: make([]uint64, cfg.CacheLines),
		lineValid:  make([]bool, cfg.CacheLines),
		dirty:      make([]bool, cfg.CacheLines),
		lru:        list.New(),
		lruElem:    make(map[uint64]*list.Element, cfg.CacheLines),
	}
	for i := range c.lines {
		c.lines[i] = make([]byte, hashpbn.BucketSize)
		c.freeList = append(c.freeList, uint64(i))
	}
	if cfg.MultiTenant {
		c.prio = NewPriorityLRU(cfg.CacheLines)
		c.tenant = "default"
	}
	switch cfg.Mode {
	case Software:
		c.idx = newSWIndex(cfg.Ledger, cfg.Costs)
	case HW:
		w := cfg.UpdateWidth
		if w < 1 {
			w = 1
		}
		hw, err := newHWIndex(w)
		if err != nil {
			return nil, err
		}
		c.idx = hw
	default:
		return nil, fmt.Errorf("tablecache: unknown mode %d", cfg.Mode)
	}
	return c, nil
}

// Mode returns the management mode.
func (c *Cache) Mode() Mode { return c.cfg.Mode }

// SetTenant tags subsequent accesses with a tenant (multi-tenant mode).
func (c *Cache) SetTenant(tenant string) {
	if c.prio != nil && tenant != "" {
		c.tenant = tenant
	}
}

// SetTenantWeight assigns a tenant's cache share weight.
func (c *Cache) SetTenantWeight(tenant string, w float64) {
	if c.prio != nil {
		c.prio.SetWeight(tenant, w)
	}
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.CrashRate = c.idx.crashRate()
	s.LeafCacheHitRate = c.idx.leafCacheHitRate()
	return s
}

// Lookup searches the table for fp, fetching its bucket through the cache.
func (c *Cache) Lookup(fp fingerprint.FP) (pbn uint64, found bool, err error) {
	var t0 time.Time
	if c.obsProbe != nil {
		t0 = time.Now()
	}
	line, err := c.getLine(c.geom.BucketOf(fp), true)
	if err != nil {
		return 0, false, err
	}
	b := hashpbn.Bucket(c.lines[line])
	pbn, found, scanned := b.Lookup(fp)
	c.chargeScan(scanned)
	if c.obsProbe != nil {
		c.obsProbe.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	return pbn, found, nil
}

// Insert adds (fp, pbn) to the table through the cache, marking the line
// dirty for eventual write-back.
func (c *Cache) Insert(fp fingerprint.FP, pbn uint64) error {
	bucket := c.geom.BucketOf(fp)
	// Inserts follow a Lookup of the same fingerprint (the dedup flow),
	// so the line access is not counted as a second cache event.
	line, err := c.getLine(bucket, false)
	if err != nil {
		return err
	}
	b := hashpbn.Bucket(c.lines[line])
	scanned, err := b.Insert(fp, pbn)
	c.chargeScan(scanned)
	if err != nil {
		return fmt.Errorf("tablecache: bucket %d: %w", bucket, err)
	}
	c.dirty[line] = true
	return nil
}

// Delete removes fp from the table through the cache, reporting whether
// it was present. Used by garbage collection to retire dead chunks'
// fingerprints so future duplicates are not mapped to reclaimed space.
func (c *Cache) Delete(fp fingerprint.FP) (bool, error) {
	bucket := c.geom.BucketOf(fp)
	line, err := c.getLine(bucket, false)
	if err != nil {
		return false, err
	}
	b := hashpbn.Bucket(c.lines[line])
	removed := b.Delete(fp)
	c.chargeScan(b.Count() + 1)
	if removed {
		c.dirty[line] = true
	}
	return removed, nil
}

// chargeScan accounts a bucket content scan: host CPU (the one component
// that stays on the CPU in both modes) scales with entries compared,
// while memory traffic is the full cache line — the scan walks the 4-KB
// bucket at cache-line granularity, which is why table-cache management
// is a quarter of baseline memory bandwidth (Table 1).
func (c *Cache) chargeScan(entries int) {
	c.cfg.Ledger.CPU(hostmodel.CompTableContent, uint64(entries)*c.cfg.Costs.BucketScanPerEntryNs)
	c.cfg.Ledger.Mem(hostmodel.PathTableCache, hashpbn.BucketSize)
}

// getLine returns the cache line holding bucket, fetching it on a miss.
// count selects whether the access enters the hit/miss statistics.
func (c *Cache) getLine(bucket uint64, count bool) (uint64, error) {
	if count {
		c.stats.Lookups++
		if c.obsLookups != nil {
			c.obsLookups.Inc()
		}
	}
	if line, ok := c.idx.lookup(bucket); ok {
		if count {
			c.stats.Hits++
			if c.obsHits != nil {
				c.obsHits.Inc()
			}
		}
		c.touchLRU(line)
		return line, nil
	}
	if count {
		c.stats.Misses++
		if c.obsMisses != nil {
			c.obsMisses.Inc()
		}
	}
	line, err := c.allocLine()
	if err != nil {
		return 0, err
	}
	// Fetch the bucket from the table SSD into the host-memory line.
	if err := c.ssdRead(bucket, line); err != nil {
		return 0, err
	}
	c.lineBucket[line] = bucket
	c.lineValid[line] = true
	c.dirty[line] = false
	c.idx.insert(bucket, line)
	c.touchLRU(line)
	return line, nil
}

// allocLine takes a line from the free list, evicting the LRU line when
// empty (the HW engine keeps the free list non-empty by periodic
// deletions; functionally we evict on demand).
func (c *Cache) allocLine() (uint64, error) {
	if n := len(c.freeList); n > 0 {
		line := c.freeList[n-1]
		c.freeList = c.freeList[:n-1]
		return line, nil
	}
	var line uint64
	if c.prio != nil {
		l, ok := c.prio.Evict()
		if !ok {
			return 0, fmt.Errorf("tablecache: no line to evict")
		}
		line = l
	} else {
		back := c.lru.Back()
		if back == nil {
			return 0, fmt.Errorf("tablecache: no line to evict")
		}
		line = back.Value.(uint64)
		c.lru.Remove(back)
		delete(c.lruElem, line)
	}
	c.stats.Evictions++
	if c.obsEvictions != nil {
		c.obsEvictions.Inc()
	}
	c.idx.remove(c.lineBucket[line])
	if c.dirty[line] {
		if err := c.ssdWrite(c.lineBucket[line], line); err != nil {
			return 0, err
		}
		c.stats.Flushes++
		if c.obsFlushes != nil {
			c.obsFlushes.Inc()
		}
	}
	c.lineValid[line] = false
	return line, nil
}

// touchLRU moves the line to the MRU position. The LRU list lives on the
// host in both modes (§5.5), so the small bookkeeping cost is host CPU.
func (c *Cache) touchLRU(line uint64) {
	c.cfg.Ledger.CPU(hostmodel.CompTableReplace, c.cfg.Costs.LRUPerAccessNs)
	if c.prio != nil {
		c.prio.Touch(line, c.tenant)
		return
	}
	if el, ok := c.lruElem[line]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.lruElem[line] = c.lru.PushFront(line)
}

// ssdRead fetches a bucket into a line, charging the right owner.
func (c *Cache) ssdRead(bucket, line uint64) error {
	off := bucket * hashpbn.BucketSize
	if err := c.queue.Submit(ssd.Command{Op: ssd.OpRead, Offset: off, Length: hashpbn.BucketSize, Tag: bucket}); err != nil {
		return err
	}
	c.queue.Process()
	comps := c.queue.Reap(1)
	if len(comps) != 1 {
		return fmt.Errorf("tablecache: bucket %d read returned no completion", bucket)
	}
	if comps[0].Err != nil {
		return fmt.Errorf("tablecache: bucket %d read failed: %w", bucket, comps[0].Err)
	}
	copy(c.lines[line], comps[0].Data)
	c.chargeSSDIO()
	// SSD DMA writes the bucket into host memory.
	c.cfg.Ledger.Mem(hostmodel.PathTableCache, hashpbn.BucketSize)
	return nil
}

// ssdWrite flushes a dirty line to its bucket.
func (c *Cache) ssdWrite(bucket, line uint64) error {
	off := bucket * hashpbn.BucketSize
	if err := c.queue.Submit(ssd.Command{Op: ssd.OpWrite, Offset: off, Data: c.lines[line], Tag: bucket}); err != nil {
		return err
	}
	c.queue.Process()
	comps := c.queue.Reap(1)
	if len(comps) != 1 {
		return fmt.Errorf("tablecache: bucket %d write returned no completion", bucket)
	}
	if comps[0].Err != nil {
		return fmt.Errorf("tablecache: bucket %d write failed: %w", bucket, comps[0].Err)
	}
	c.chargeSSDIO()
	// SSD DMA reads the dirty line from host memory.
	c.cfg.Ledger.Mem(hostmodel.PathTableCache, hashpbn.BucketSize)
	return nil
}

// chargeSSDIO charges the table-SSD software stack when the host owns the
// queues; the HW engine's device-owned queues cost no host CPU.
func (c *Cache) chargeSSDIO() {
	if c.queue.Owner() == ssd.OwnerHost {
		c.cfg.Ledger.CPU(hostmodel.CompTableSSDIO, c.cfg.Costs.TableSSDPerIONs)
	}
}

// Range iterates every entry of the full Hash-PBN table — not just the
// cached portion — pulling each bucket through the cache. Used by
// offline verification; the pass thrashes the cache by design (each of
// the table's buckets is touched once) and does not enter the hit/miss
// statistics.
func (c *Cache) Range(fn func(fp fingerprint.FP, pbn uint64)) error {
	for b := uint64(0); b < c.geom.NumBuckets; b++ {
		line, err := c.getLine(b, false)
		if err != nil {
			return err
		}
		hashpbn.Bucket(c.lines[line]).ForEach(fn)
	}
	return nil
}

// Scrub walks the full table and deletes every entry keep rejects,
// returning how many were dropped. Crash recovery uses it to drop stale
// entries the write-back cache made durable ahead of the recovered
// metadata. Modified buckets are marked dirty and reach the table SSD
// through the normal write-back path.
func (c *Cache) Scrub(keep func(fp fingerprint.FP, pbn uint64) bool) (int, error) {
	dropped := 0
	for b := uint64(0); b < c.geom.NumBuckets; b++ {
		line, err := c.getLine(b, false)
		if err != nil {
			return dropped, err
		}
		bucket := hashpbn.Bucket(c.lines[line])
		var victims []fingerprint.FP
		bucket.ForEach(func(fp fingerprint.FP, pbn uint64) {
			if !keep(fp, pbn) {
				victims = append(victims, fp)
			}
		})
		for _, fp := range victims {
			if bucket.Delete(fp) {
				c.dirty[line] = true
				dropped++
			}
		}
	}
	return dropped, nil
}

// FlushAll writes every dirty line to the table SSD (shutdown path).
func (c *Cache) FlushAll() error {
	for line := range c.lines {
		if c.lineValid[line] && c.dirty[line] {
			if err := c.ssdWrite(c.lineBucket[line], uint64(line)); err != nil {
				return err
			}
			c.dirty[line] = false
			c.stats.Flushes++
			if c.obsFlushes != nil {
				c.obsFlushes.Inc()
			}
		}
	}
	return nil
}
