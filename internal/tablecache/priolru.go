package tablecache

import "container/list"

// PriorityLRU is the §8 (Discussion) extension for multi-tenant
// environments: instead of one global LRU that lets a scan-heavy tenant
// evict a locality-rich tenant's table buckets, each tenant owns an LRU
// list and a weight. Victims are chosen from the tenant most over its
// weighted share, so a low-priority streaming workload cannot wash out a
// high-priority one's working set (the paper cites a differentiated
// caching design [44] for exactly this policy shape).
type PriorityLRU struct {
	capacity int
	weights  map[string]float64

	lists map[string]*list.List
	elems map[uint64]*list.Element
	owner map[uint64]string
	size  int
}

type prioEntry struct {
	line   uint64
	tenant string
}

// NewPriorityLRU creates a policy for capacity lines. Tenants default to
// weight 1 until SetWeight.
func NewPriorityLRU(capacity int) *PriorityLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &PriorityLRU{
		capacity: capacity,
		weights:  make(map[string]float64),
		lists:    make(map[string]*list.List),
		elems:    make(map[uint64]*list.Element),
		owner:    make(map[uint64]string),
	}
}

// SetWeight assigns a tenant's share weight (must be positive).
func (p *PriorityLRU) SetWeight(tenant string, w float64) {
	if w <= 0 {
		w = 1
	}
	p.weights[tenant] = w
}

func (p *PriorityLRU) weight(tenant string) float64 {
	if w, ok := p.weights[tenant]; ok {
		return w
	}
	return 1
}

// Len returns the number of tracked lines.
func (p *PriorityLRU) Len() int { return p.size }

// TenantLines returns how many lines tenant currently holds.
func (p *PriorityLRU) TenantLines(tenant string) int {
	if l, ok := p.lists[tenant]; ok {
		return l.Len()
	}
	return 0
}

// Touch records an access to line by tenant, inserting or promoting it.
// Re-touching a line from a different tenant transfers ownership.
func (p *PriorityLRU) Touch(line uint64, tenant string) {
	if el, ok := p.elems[line]; ok {
		prev := p.owner[line]
		if prev == tenant {
			p.lists[prev].MoveToFront(el)
			return
		}
		p.lists[prev].Remove(el)
		delete(p.elems, line)
		p.size--
	}
	l, ok := p.lists[tenant]
	if !ok {
		l = list.New()
		p.lists[tenant] = l
	}
	p.elems[line] = l.PushFront(&prioEntry{line: line, tenant: tenant})
	p.owner[line] = tenant
	p.size++
}

// NeedsEviction reports whether occupancy exceeds capacity.
func (p *PriorityLRU) NeedsEviction() bool { return p.size > p.capacity }

// Evict removes and returns the victim line: the LRU line of the tenant
// with the largest occupancy-to-share ratio. Returns ok=false when empty.
func (p *PriorityLRU) Evict() (line uint64, ok bool) {
	var victimTenant string
	worst := -1.0
	var totalWeight float64
	for t, l := range p.lists {
		if l.Len() > 0 {
			totalWeight += p.weight(t)
		}
	}
	if totalWeight == 0 {
		return 0, false
	}
	for t, l := range p.lists {
		if l.Len() == 0 {
			continue
		}
		share := p.weight(t) / totalWeight * float64(p.capacity)
		over := float64(l.Len()) / share
		if over > worst || (over == worst && t < victimTenant) {
			worst = over
			victimTenant = t
		}
	}
	l := p.lists[victimTenant]
	back := l.Back()
	if back == nil {
		return 0, false
	}
	e := back.Value.(*prioEntry)
	l.Remove(back)
	delete(p.elems, e.line)
	delete(p.owner, e.line)
	p.size--
	return e.line, true
}

// Remove drops a specific line (e.g. explicit invalidation).
func (p *PriorityLRU) Remove(line uint64) {
	el, ok := p.elems[line]
	if !ok {
		return
	}
	p.lists[p.owner[line]].Remove(el)
	delete(p.elems, line)
	delete(p.owner, line)
	p.size--
}
