package engine

import (
	"bytes"
	"fmt"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/fingerprint"
)

func newEngine(t *testing.T, containerSize int) *Compression {
	t.Helper()
	e, err := NewCompression(blockcomp.NewLZ(), containerSize)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mkIn(seed uint64, ratio float64) In {
	sh := blockcomp.NewShaper(ratio)
	data := sh.Make(seed, 4096)
	return In{LBA: seed, FP: fingerprint.Of(data), Data: data}
}

func TestCompressBatchMetadata(t *testing.T) {
	e := newEngine(t, 1<<20)
	batch := []In{mkIn(1, 0.5), mkIn(2, 0.5), mkIn(3, 0.5)}
	metas, err := e.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("%d metas", len(metas))
	}
	for i, m := range metas {
		if m.LBA != batch[i].LBA || m.FP != batch[i].FP {
			t.Fatalf("meta %d identity mismatch", i)
		}
		if m.RawSize != 4096 || m.CSize == 0 || m.CSize > 4096 {
			t.Fatalf("meta %d sizes: %+v", i, m)
		}
		if m.IsRaw() {
			t.Fatalf("50%%-compressible chunk stored raw")
		}
	}
	st := e.Stats()
	if st.ChunksIn != 3 || st.BytesIn != 3*4096 {
		t.Fatalf("stats %+v", st)
	}
	if r := st.CompressionRatio(); r < 0.35 || r > 0.65 {
		t.Fatalf("compression ratio %.3f for 50%% shaped data", r)
	}
}

func TestRawFallbackForIncompressible(t *testing.T) {
	e := newEngine(t, 1<<20)
	in := mkIn(7, 1.0) // fully random
	metas, err := e.CompressBatch([]In{in})
	if err != nil {
		t.Fatal(err)
	}
	if !metas[0].IsRaw() {
		t.Fatal("incompressible chunk not stored raw")
	}
	if e.Stats().RawStored != 1 {
		t.Fatal("raw counter not incremented")
	}
}

func TestContainerSealAndRoundTrip(t *testing.T) {
	// Small containers force seals mid-batch; every chunk must be
	// recoverable from the sealed container bytes.
	e := newEngine(t, 8192)
	var ins []In
	for i := uint64(0); i < 20; i++ {
		ins = append(ins, mkIn(i, 0.5))
	}
	metas, err := e.CompressBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	e.Flush()
	sealed := e.TakeSealed()
	if len(sealed) < 2 {
		t.Fatalf("only %d sealed containers", len(sealed))
	}
	byIndex := make(map[uint64][]byte)
	for _, s := range sealed {
		if len(s.Data) != 8192 {
			t.Fatalf("container %d size %d", s.Index, len(s.Data))
		}
		byIndex[s.Index] = s.Data
	}
	d := NewDecompression(blockcomp.NewLZ())
	for i, m := range metas {
		cont, ok := byIndex[m.Container]
		if !ok {
			t.Fatalf("chunk %d in missing container %d", i, m.Container)
		}
		cdata := cont[m.Offset : m.Offset+m.CSize]
		out, err := d.Decompress(cdata, int(m.RawSize))
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(out, ins[i].Data) {
			t.Fatalf("chunk %d corrupted through container", i)
		}
	}
	if e.Stats().ContainersSealed != uint64(len(sealed)) {
		t.Fatal("sealed counter mismatch")
	}
	chunks, bytesOut := d.Decompressed()
	if chunks != uint64(len(metas)) || bytesOut != uint64(len(metas))*4096 {
		t.Fatalf("decompression counters %d/%d", chunks, bytesOut)
	}
}

func TestTakeSealedDrains(t *testing.T) {
	e := newEngine(t, 8192)
	e.CompressBatch([]In{mkIn(1, 0.5)})
	e.Flush()
	if got := e.TakeSealed(); len(got) != 1 {
		t.Fatalf("first take: %d", len(got))
	}
	if got := e.TakeSealed(); len(got) != 0 {
		t.Fatalf("second take: %d", len(got))
	}
}

func TestEmptyChunkRejected(t *testing.T) {
	e := newEngine(t, 8192)
	if _, err := e.CompressBatch([]In{{LBA: 1}}); err == nil {
		t.Fatal("empty chunk accepted")
	}
}

func TestRawDecompressPassthrough(t *testing.T) {
	d := NewDecompression(blockcomp.NewLZ())
	raw := []byte("stored raw because incompressible")
	out, err := d.Decompress(raw, len(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("raw passthrough mutated data")
	}
	// The returned slice must be a copy, not an alias.
	out[0] = 'X'
	if raw[0] == 'X' {
		t.Fatal("passthrough aliased input")
	}
}

func TestInvalidContainerSize(t *testing.T) {
	if _, err := NewCompression(blockcomp.NewLZ(), 100); err == nil {
		t.Fatal("bad container size accepted")
	}
}

func BenchmarkCompressBatch(b *testing.B) {
	e, err := NewCompression(blockcomp.NewLZ(), 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]In, 16)
	for i := range ins {
		sh := blockcomp.NewShaper(0.5)
		data := sh.Make(uint64(i), 4096)
		ins[i] = In{LBA: uint64(i), Data: data}
	}
	b.SetBytes(16 * 4096)
	for i := 0; i < b.N; i++ {
		if _, err := e.CompressBatch(ins); err != nil {
			b.Fatal(err)
		}
		e.TakeSealed()
	}
}

// TestCompressManyMatchesSerial asserts the tentpole invariant: the lane
// array produces byte-identical output and stats at any lane count.
func TestCompressManyMatchesSerial(t *testing.T) {
	var datas [][]byte
	for i := uint64(0); i < 33; i++ {
		ratio := 0.5
		if i%5 == 0 {
			ratio = 1.0 // sprinkle raw-fallback chunks into the batch
		}
		sh := blockcomp.NewShaper(ratio)
		datas = append(datas, sh.Make(i, 4096))
	}
	ref := newEngine(t, 1<<20)
	want, err := ref.CompressMany(datas)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := make([][]byte, len(want))
	for i, c := range want {
		wantBytes[i] = append([]byte(nil), c.Data...)
	}
	for _, n := range []int{2, 3, 8} {
		e := newEngine(t, 1<<20)
		e.SetCompressLanes(n)
		if e.CompressLanes() != n {
			t.Fatalf("lanes %d", e.CompressLanes())
		}
		got, err := e.CompressMany(datas)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Raw != want[i].Raw || !bytes.Equal(got[i].Data, wantBytes[i]) {
				t.Fatalf("lanes=%d chunk %d differs from serial result", n, i)
			}
		}
		if ref.Stats() != e.Stats() {
			t.Fatalf("lanes=%d stats %+v != serial %+v", n, e.Stats(), ref.Stats())
		}
	}
}

// TestCompressManyScratchReuse checks the documented aliasing contract:
// results are valid until the next CompressMany call, which recycles the
// per-slot scratch buffers instead of allocating fresh ones.
func TestCompressManyScratchReuse(t *testing.T) {
	e := newEngine(t, 1<<20)
	sh := blockcomp.NewShaper(0.5)
	first, err := e.CompressMany([][]byte{sh.Make(1, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	p0 := &first[0].Data[0]
	second, err := e.CompressMany([][]byte{sh.Make(1, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	if &second[0].Data[0] != p0 {
		t.Fatal("scratch buffer was not reused across CompressMany calls")
	}
}

func TestCompressManyEmptyChunkError(t *testing.T) {
	e := newEngine(t, 1<<20)
	sh := blockcomp.NewShaper(0.5)
	if _, err := e.CompressMany([][]byte{sh.Make(1, 4096), nil}); err == nil {
		t.Fatal("empty chunk accepted")
	}
	// Chunks before the failing index commit, matching the serial path.
	if st := e.Stats(); st.ChunksIn != 1 {
		t.Fatalf("prefix commit: ChunksIn = %d, want 1", st.ChunksIn)
	}
}

func BenchmarkCompressLanes(b *testing.B) {
	sh := blockcomp.NewShaper(0.5)
	var datas [][]byte
	for i := uint64(0); i < 64; i++ {
		datas = append(datas, sh.Make(i, 4096))
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", n), func(b *testing.B) {
			e, err := NewCompression(blockcomp.NewLZ(), 1<<30)
			if err != nil {
				b.Fatal(err)
			}
			e.SetCompressLanes(n)
			b.SetBytes(int64(len(datas) * 4096))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.CompressMany(datas); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
