// Package engine models the FIDR Compression and Decompression Engines:
// dedicated FPGA accelerators that compress batches of unique chunks into
// 4-MiB containers (write path) and decompress chunk batches (read path).
//
// Two architectural differences from the baseline's integrated FPGA array
// matter here (§6.1):
//
//  1. no hashing cores — hashing moved to the NIC, and
//  2. compressed data stays in engine memory for direct P2P transfer to
//     the data SSDs; only per-chunk metadata (compressed sizes, LBAs)
//     goes to the host.
//
// The engine is functional: it runs a real compressor and packs real
// containers. Incompressible chunks are stored raw (CSize == chunk size
// signals "raw" to the read path).
package engine

import (
	"fmt"
	"time"

	"fidr/internal/blockcomp"
	"fidr/internal/fingerprint"
	"fidr/internal/lanes"
	"fidr/internal/lbatable"
	"fidr/internal/metrics"
)

// ChunkMeta is the per-chunk metadata an engine reports to the host after
// compression (§5.3 step 8).
type ChunkMeta struct {
	LBA       uint64
	FP        fingerprint.FP
	Container uint64
	Offset    uint32
	CSize     uint32
	RawSize   uint32
}

// IsRaw reports whether the chunk was stored uncompressed.
func (m ChunkMeta) IsRaw() bool { return m.CSize == m.RawSize }

// SealedContainer is a full container ready for one sequential SSD write.
type SealedContainer struct {
	Index uint64
	Data  []byte
}

// Stats counts engine activity.
type Stats struct {
	ChunksIn         uint64
	BytesIn          uint64
	BytesCompressed  uint64
	RawStored        uint64
	ContainersSealed uint64
}

// CompressionRatio returns compressed-out/bytes-in.
func (s Stats) CompressionRatio() float64 {
	if s.BytesIn == 0 {
		return 1
	}
	return float64(s.BytesCompressed) / float64(s.BytesIn)
}

// Compression is one Compression Engine.
type Compression struct {
	comp    blockcomp.Compressor
	builder *lbatable.Builder
	// sealed containers wait in engine memory for P2P pickup.
	sealed []SealedContainer
	stats  Stats

	// compressLanes is the modeled LZ77-pipeline count: CompressMany
	// fans a batch across this many worker goroutines (1 = serial).
	compressLanes int
	// scratch holds one recycled output buffer per batch slot; slot i
	// is only ever touched by the lane that owns item i, and the
	// buffers stay valid until the next CompressMany call.
	scratch [][]byte

	// Live observability: nil unless Instrument attached a registry.
	obsChunksIn, obsBytesIn *metrics.Counter
	obsBytesCompressed      *metrics.Counter
	obsRawStored, obsSealed *metrics.Counter
	// obsBusyNS accumulates compression-section wall time (duty-cycle
	// source); obsLaneBusyNS sums per-lane busy time across the
	// pipeline array; obsQueueDepth tracks sealed containers awaiting
	// P2P pickup by the data SSD.
	obsBusyNS     *metrics.Counter
	obsLaneBusyNS *metrics.Counter
	obsLanesG     *metrics.Gauge
	obsQueueDepth *metrics.Gauge
}

// Instrument mirrors engine activity into reg under "engine.*". Call
// once, before serving traffic.
func (e *Compression) Instrument(reg *metrics.Registry) {
	e.obsChunksIn = reg.Counter("engine.chunks_in")
	e.obsBytesIn = reg.Counter("engine.bytes_in")
	e.obsBytesCompressed = reg.Counter("engine.bytes_compressed")
	e.obsRawStored = reg.Counter("engine.raw_stored")
	e.obsSealed = reg.Counter("engine.containers_sealed")
	e.obsBusyNS = reg.Counter("engine.busy_ns")
	e.obsLaneBusyNS = reg.Counter("engine.compress_lane_busy_ns")
	e.obsLanesG = reg.Gauge("engine.compress_lanes")
	e.obsLanesG.Set(float64(e.compressLanes))
	e.obsQueueDepth = reg.Gauge("engine.queue_depth")
}

// SetCompressLanes sets the modeled compression-pipeline count that
// CompressMany fans out across. n <= 0 selects the GOMAXPROCS-derived
// default. Results are byte-identical at any lane count.
func (e *Compression) SetCompressLanes(count int) {
	e.compressLanes = lanes.Normalize(count)
	if e.obsLanesG != nil {
		e.obsLanesG.Set(float64(e.compressLanes))
	}
}

// CompressLanes returns the configured compression-lane count.
func (e *Compression) CompressLanes() int { return e.compressLanes }

// NewCompression creates an engine producing containers of containerSize
// bytes using comp.
func NewCompression(comp blockcomp.Compressor, containerSize int) (*Compression, error) {
	return NewCompressionAt(comp, containerSize, 0)
}

// NewCompressionAt creates an engine whose first container has the given
// index — used when recovering a server whose earlier containers are
// already on the data SSDs.
func NewCompressionAt(comp blockcomp.Compressor, containerSize int, firstContainer uint64) (*Compression, error) {
	b, err := lbatable.NewBuilder(containerSize, firstContainer)
	if err != nil {
		return nil, err
	}
	return &Compression{comp: comp, builder: b, compressLanes: 1}, nil
}

// In is one chunk entering the engine.
type In struct {
	LBA  uint64
	FP   fingerprint.FP
	Data []byte
}

// Compress runs the compression cores over one chunk without packing it.
// Incompressible chunks fall back to their raw bytes. The baseline needs
// this split: it compresses *predicted*-unique chunks speculatively but
// packs only chunks that dedup validates as unique. The returned slice
// is caller-owned (batched callers should prefer CompressMany, which
// recycles output buffers).
func (e *Compression) Compress(data []byte) (cdata []byte, raw bool, err error) {
	if len(data) == 0 {
		return nil, false, fmt.Errorf("engine: empty chunk")
	}
	start := time.Now()
	cdata, err = e.comp.Compress(data)
	elapsed := time.Since(start)
	if e.obsBusyNS != nil {
		e.obsBusyNS.Add(uint64(elapsed))
		e.obsLaneBusyNS.Add(uint64(elapsed))
	}
	if err != nil {
		return nil, false, fmt.Errorf("engine: compress: %w", err)
	}
	e.stats.ChunksIn++
	e.stats.BytesIn += uint64(len(data))
	if e.obsChunksIn != nil {
		e.obsChunksIn.Inc()
		e.obsBytesIn.Add(uint64(len(data)))
	}
	if len(cdata) >= len(data) {
		e.stats.RawStored++
		e.stats.BytesCompressed += uint64(len(data))
		if e.obsRawStored != nil {
			e.obsRawStored.Inc()
			e.obsBytesCompressed.Add(uint64(len(data)))
		}
		return data, true, nil
	}
	e.stats.BytesCompressed += uint64(len(cdata))
	if e.obsBytesCompressed != nil {
		e.obsBytesCompressed.Add(uint64(len(cdata)))
	}
	return cdata, false, nil
}

// Compressed is one CompressMany result. Raw marks an incompressible
// chunk stored as its original bytes; Data then aliases the caller's
// input. Otherwise Data aliases engine-owned scratch that stays valid
// only until the next CompressMany call — Pack (which copies into the
// container) must run before then.
type Compressed struct {
	Data []byte
	Raw  bool
}

// CompressMany runs the compression-pipeline array over a batch of
// chunks: chunk i runs on lane i mod lanes with a recycled per-slot
// output buffer, and stats are committed strictly in batch order after
// the join. Output bytes, stats and error selection (lowest failing
// index) are byte-identical to compressing the batch serially.
func (e *Compression) CompressMany(datas [][]byte) ([]Compressed, error) {
	if len(datas) == 0 {
		return nil, nil
	}
	for len(e.scratch) < len(datas) {
		e.scratch = append(e.scratch, nil)
	}
	results := make([]Compressed, len(datas))
	errs := make([]error, len(datas))
	start := time.Now()
	k := lanes.Clamp(e.compressLanes, len(datas))
	busy := lanes.Run(len(datas), k, func(_, i int) {
		src := datas[i]
		if len(src) == 0 {
			errs[i] = fmt.Errorf("engine: chunk %d: empty chunk", i)
			return
		}
		cdata, err := blockcomp.CompressAppend(e.comp, e.scratch[i][:0], src)
		if err != nil {
			errs[i] = fmt.Errorf("engine: chunk %d: compress: %w", i, err)
			return
		}
		e.scratch[i] = cdata
		if len(cdata) >= len(src) {
			results[i] = Compressed{Data: src, Raw: true}
		} else {
			results[i] = Compressed{Data: cdata}
		}
	})
	wall := time.Since(start)
	// In-order commit: identical counter evolution to the serial path,
	// and the error for the lowest failing index wins deterministically.
	var bytesIn, bytesOut, rawStored uint64
	for i := range datas {
		if errs[i] != nil {
			return nil, errs[i]
		}
		e.stats.ChunksIn++
		e.stats.BytesIn += uint64(len(datas[i]))
		bytesIn += uint64(len(datas[i]))
		out := uint64(len(results[i].Data))
		e.stats.BytesCompressed += out
		bytesOut += out
		if results[i].Raw {
			e.stats.RawStored++
			rawStored++
		}
	}
	if e.obsChunksIn != nil {
		e.obsChunksIn.Add(uint64(len(datas)))
		e.obsBytesIn.Add(bytesIn)
		e.obsBytesCompressed.Add(bytesOut)
		e.obsRawStored.Add(rawStored)
	}
	if e.obsBusyNS != nil {
		e.obsBusyNS.Add(uint64(wall))
		e.obsLaneBusyNS.Add(uint64(lanes.Total(busy)))
	}
	return results, nil
}

// Pack places an already-compressed chunk into the open container,
// sealing full containers as needed, and returns its metadata.
func (e *Compression) Pack(lba uint64, fp fingerprint.FP, cdata []byte, rawSize int) (ChunkMeta, error) {
	if !e.builder.Fits(len(cdata)) {
		e.seal()
	}
	container, off, err := e.builder.Append(cdata)
	if err != nil {
		return ChunkMeta{}, fmt.Errorf("engine: pack LBA %d: %w", lba, err)
	}
	return ChunkMeta{
		LBA:       lba,
		FP:        fp,
		Container: container,
		Offset:    off,
		CSize:     uint32(len(cdata)),
		RawSize:   uint32(rawSize),
	}, nil
}

// CompressBatch compresses a batch of unique chunks across the lane
// array, packing them into containers strictly in batch order. It
// returns per-chunk metadata; sealed containers accumulate until
// TakeSealed.
func (e *Compression) CompressBatch(batch []In) ([]ChunkMeta, error) {
	datas := make([][]byte, len(batch))
	for i := range batch {
		datas[i] = batch[i].Data
	}
	rs, err := e.CompressMany(datas)
	if err != nil {
		return nil, err
	}
	metas := make([]ChunkMeta, 0, len(batch))
	for i, in := range batch {
		m, err := e.Pack(in.LBA, in.FP, rs[i].Data, len(in.Data))
		if err != nil {
			return nil, err
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// ReadPending serves a chunk that still sits in the engine's open
// container (not yet sealed or written to an SSD). Returns false if the
// requested container is not the open one.
func (e *Compression) ReadPending(container uint64, off uint32, n uint32) ([]byte, bool) {
	if container != e.builder.Container() {
		return nil, false
	}
	data, ok := e.builder.Peek(int(off), int(n))
	if !ok {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, data)
	return out, true
}

// seal closes the open container into the sealed queue.
func (e *Compression) seal() {
	if idx, data, ok := e.builder.Seal(); ok {
		e.sealed = append(e.sealed, SealedContainer{Index: idx, Data: data})
		e.stats.ContainersSealed++
		if e.obsSealed != nil {
			e.obsSealed.Inc()
			e.obsQueueDepth.Set(float64(len(e.sealed)))
		}
	}
}

// Flush seals the open container even if below threshold (shutdown or
// end-of-workload path).
func (e *Compression) Flush() { e.seal() }

// TakeSealed removes and returns all sealed containers (the data SSDs
// fetch them straight from engine memory over PCIe P2P).
func (e *Compression) TakeSealed() []SealedContainer {
	out := e.sealed
	e.sealed = nil
	if e.obsQueueDepth != nil {
		e.obsQueueDepth.Set(0)
	}
	return out
}

// OpenContainer returns the index of the container currently being packed.
func (e *Compression) OpenContainer() uint64 { return e.builder.Container() }

// OpenBytes returns the compressed bytes buffered in the open container
// (packed but not yet sealed to the data SSDs).
func (e *Compression) OpenBytes() int { return e.builder.Used() }

// Stats returns a snapshot.
func (e *Compression) Stats() Stats { return e.stats }

// Decompression is one Decompression Engine.
type Decompression struct {
	comp   blockcomp.Compressor
	chunks uint64
	bytes  uint64
}

// NewDecompression creates a decompression engine using comp.
func NewDecompression(comp blockcomp.Compressor) *Decompression {
	return &Decompression{comp: comp}
}

// Decompress restores one chunk. Raw-stored chunks (csize == rawSize)
// pass through.
func (d *Decompression) Decompress(cdata []byte, rawSize int) ([]byte, error) {
	d.chunks++
	d.bytes += uint64(rawSize)
	if len(cdata) == rawSize {
		out := make([]byte, rawSize)
		copy(out, cdata)
		return out, nil
	}
	out, err := d.comp.Decompress(cdata, rawSize)
	if err != nil {
		return nil, fmt.Errorf("engine: decompress: %w", err)
	}
	return out, nil
}

// Decompressed returns (chunks, bytes) served.
func (d *Decompression) Decompressed() (uint64, uint64) { return d.chunks, d.bytes }
