package trace

import (
	"bytes"
	"io"
	"testing"

	"fidr/internal/chunk"
)

func drain(t *testing.T, g *Generator) []Request {
	t.Helper()
	var out []Request
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{},
		{TotalIOs: 1, BlockSize: 0, ReuseWindow: 1, AddressBlocks: 1},
		{TotalIOs: 1, BlockSize: 4096, DedupRatio: 1.0, ReuseWindow: 1, AddressBlocks: 1},
		{TotalIOs: 1, BlockSize: 4096, ReuseWindow: 0, AddressBlocks: 1},
		{TotalIOs: 1, BlockSize: 4096, ReuseWindow: 1, AddressBlocks: 0},
		{TotalIOs: 1, BlockSize: 4096, ReuseWindow: 1, AddressBlocks: 1, ReadFraction: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	for _, p := range Workloads(1000) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestGeneratorCount(t *testing.T) {
	g, err := NewGenerator(WriteH(5000))
	if err != nil {
		t.Fatal(err)
	}
	reqs := drain(t, g)
	if len(reqs) != 5000 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	if g.Remaining() != 0 {
		t.Fatal("remaining nonzero after drain")
	}
	if _, ok := g.Next(); ok {
		t.Fatal("generator kept producing after exhaustion")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, _ := NewGenerator(WriteM(2000))
	g2, _ := NewGenerator(WriteM(2000))
	r1 := drain(t, g1)
	r2 := drain(t, g2)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestDedupRatiosMatchTable3(t *testing.T) {
	cases := []struct {
		p      Params
		target float64
	}{
		{WriteH(40000), 0.88},
		{WriteM(40000), 0.84},
		{WriteL(40000), 0.431},
	}
	for _, c := range cases {
		g, _ := NewGenerator(c.p)
		drain(t, g)
		got := g.DedupObserved()
		if got < c.target-0.05 || got > c.target+0.05 {
			t.Errorf("%s: dedup %.3f, target %.3f", c.p.Name, got, c.target)
		}
	}
}

func TestReplicationPreservesDedup(t *testing.T) {
	// The dedup ratio over 8 replicates must match a single replicate:
	// systematic mutation prevents cross-replicate duplication from
	// inflating it (factor 3).
	p := WriteH(64000)
	g, _ := NewGenerator(p)
	reqs := drain(t, g)
	seen := make(map[uint64]bool)
	dups := 0
	for _, r := range reqs {
		if seen[r.ContentSeed] {
			dups++
		}
		seen[r.ContentSeed] = true
	}
	ratio := float64(dups) / float64(len(reqs))
	if ratio < 0.80 || ratio > 0.93 {
		t.Errorf("global dedup over replicates = %.3f, want ~0.88", ratio)
	}

	// Content from different replicates must differ: count seeds per
	// replicate segment that appear in earlier segments.
	segment := p.ReplicateEvery
	early := make(map[uint64]bool)
	for _, r := range reqs[:segment] {
		early[r.ContentSeed] = true
	}
	cross := 0
	for _, r := range reqs[segment : 2*segment] {
		if early[r.ContentSeed] {
			cross++
		}
	}
	if float64(cross)/float64(segment) > 0.05 {
		t.Errorf("%.1f%% of replicate-2 content duplicates replicate 1; mutation too weak",
			100*float64(cross)/float64(segment))
	}
}

func TestReadMixedFractions(t *testing.T) {
	g, _ := NewGenerator(ReadMixed(20000))
	reqs := drain(t, g)
	reads := 0
	for _, r := range reqs {
		if r.Op == OpRead {
			reads++
			if r.ContentSeed != 0 {
				t.Fatal("read carries content")
			}
		}
	}
	f := float64(reads) / float64(len(reqs))
	if f < 0.45 || f > 0.55 {
		t.Errorf("read fraction %.3f, want ~0.5", f)
	}
}

func TestReadsTargetWrittenAddresses(t *testing.T) {
	g, _ := NewGenerator(ReadMixed(10000))
	written := make(map[uint64]bool)
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.Op == OpWrite {
			written[r.LBA] = true
		} else if !written[r.LBA] {
			t.Fatal("read of never-written LBA")
		}
	}
}

func TestSequentialRuns(t *testing.T) {
	// Write-H (mail) must show sequential runs; consecutive-LBA pairs
	// should be common.
	g, _ := NewGenerator(WriteH(10000))
	reqs := drain(t, g)
	seq := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].LBA == reqs[i-1].LBA+1 {
			seq++
		}
	}
	if f := float64(seq) / float64(len(reqs)); f < 0.5 {
		t.Errorf("sequential-pair fraction %.3f, expected mail-like locality", f)
	}
}

func TestSkeletons(t *testing.T) {
	for _, p := range []SkeletonParams{MailSkeleton(20000), WebVMSkeleton(20000)} {
		ws := GenerateSkeleton(p)
		if len(ws) != 20000 {
			t.Fatalf("%s: %d writes", p.Name, len(ws))
		}
		for _, w := range ws {
			if w.LBA >= p.AddressBlocks {
				t.Fatalf("%s: LBA %d outside space", p.Name, w.LBA)
			}
		}
	}
}

func TestSkeletonRMWContrast(t *testing.T) {
	// Figure 3's premise: under 32-KB chunking both skeletons amplify
	// IO far beyond 4-KB chunking.
	for _, sk := range []SkeletonParams{MailSkeleton(30000), WebVMSkeleton(30000)} {
		ws := GenerateSkeleton(sk)
		small, err := chunk.SimulateRMW(chunk.RMWConfig{BlockSize: 4096, ChunkSize: 4096, BufferBytes: 4 << 20}, ws)
		if err != nil {
			t.Fatal(err)
		}
		large, err := chunk.SimulateRMW(chunk.RMWConfig{BlockSize: 4096, ChunkSize: 32768, BufferBytes: 4 << 20}, ws)
		if err != nil {
			t.Fatal(err)
		}
		ratio := large.Amplification() / small.Amplification()
		if ratio < 3 {
			t.Errorf("%s: 32K/4K IO ratio = %.1f, expected large amplification", sk.Name, ratio)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	g, _ := NewGenerator(ReadMixed(500))
	reqs := drain(t, g)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		req, err := r.Next()
		if err == io.EOF {
			if i != 500 {
				t.Fatalf("read %d records", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if req != reqs[i] {
			t.Fatalf("record %d: %+v vs %+v", i, req, reqs[i])
		}
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Request{Op: OpWrite, LBA: 1, ContentSeed: 2})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Error("op strings wrong")
	}
}

func BenchmarkGenerator(b *testing.B) {
	g, _ := NewGenerator(WriteM(b.N + 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("exhausted early")
		}
	}
}
