package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// FIU-style trace serialization. Real FIU traces record per-IO metadata
// plus a content hash (never the payload); our format mirrors that:
// a fixed 24-byte little-endian record per request:
//
//	byte 0     op (0 write, 1 read)
//	bytes 1-7  reserved (zero)
//	bytes 8-15 LBA
//	bytes 16-23 content seed (the content-identity stand-in for the hash)
//
// cmd/fidrtrace writes these files; the server binaries and examples
// replay them.

const recordSize = 24

// magic identifies trace files.
var magic = [8]byte{'F', 'I', 'D', 'R', 'T', 'R', 'C', '1'}

// Writer streams requests to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one request record.
func (w *Writer) Write(r Request) error {
	var rec [recordSize]byte
	if r.Op == OpRead {
		rec[0] = 1
	}
	binary.LittleEndian.PutUint64(rec[8:], r.LBA)
	binary.LittleEndian.PutUint64(rec[16:], r.ContentSeed)
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	w.count++
	return nil
}

// Count returns records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Reader streams requests from a trace file.
type Reader struct {
	r *bufio.Reader
}

// NewReader checks the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	return &Reader{r: br}, nil
}

// Next returns the next request; io.EOF at end of trace.
func (r *Reader) Next() (Request, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Request{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Request{}, err
	}
	req := Request{
		LBA:         binary.LittleEndian.Uint64(rec[8:]),
		ContentSeed: binary.LittleEndian.Uint64(rec[16:]),
	}
	switch rec[0] {
	case 0:
		req.Op = OpWrite
	case 1:
		req.Op = OpRead
	default:
		return Request{}, fmt.Errorf("trace: unknown op %d", rec[0])
	}
	return req, nil
}
