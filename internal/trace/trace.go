// Package trace synthesizes the IO workloads of the paper's evaluation.
//
// The paper cannot use public traces directly (no public IO traces carry
// real data content, §7.1 fn. 3); it extracts skeletons from FIU-style
// traces (mail server, webVM) and manufactures content around them using
// five factors:
//
//  1. a trace portion is chosen to achieve a target table-cache hit rate
//     for a fixed small cache,
//  2. the portion is replicated many times to reach workload size,
//  3. each replicate receives minor systematic content modifications so
//     N replicates keep the single-replicate deduplication ratio,
//  4. compressibility is pinned at 50% with a compressible suffix, and
//  5. the reduction table assumes 500 GB of unique compressed storage
//     with 2.8% cached in memory.
//
// This package generates equivalent skeletons synthetically: block
// addresses follow mail-server-like (mailbox append runs) or webVM-like
// (random-dominated) patterns, and block content identities are drawn
// with controlled reuse probability and reuse-window size, which set the
// deduplication ratio and the fingerprint temporal locality that the
// table-cache hit rate targets.
package trace

import (
	"fmt"
	"math/rand"
)

// Op distinguishes request types.
type Op int

const (
	// OpWrite is a client write.
	OpWrite Op = iota
	// OpRead is a client read.
	OpRead
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Request is one client IO in block units.
type Request struct {
	Op Op
	// LBA is the logical block address in BlockSize units.
	LBA uint64
	// ContentSeed determines the block payload (via blockcomp.Shaper);
	// equal seeds mean byte-identical blocks. Zero for reads.
	ContentSeed uint64
}

// Params describes one generated workload.
type Params struct {
	// Name labels the workload (Table 3 row).
	Name string
	// TotalIOs is the number of requests to generate.
	TotalIOs int
	// BlockSize is the IO granularity (4096).
	BlockSize int
	// DedupRatio is the target fraction of writes whose content
	// duplicates an earlier write.
	DedupRatio float64
	// ReuseWindow is how many recent distinct contents are eligible for
	// duplication; small windows create the fingerprint locality that
	// produces high table-cache hit rates.
	ReuseWindow int
	// FarReuseFraction is the fraction of duplicate picks drawn from
	// the whole content history instead of the recent window. Far
	// duplicates are still duplicates (their fingerprints are in the
	// Hash-PBN table) but their buckets have long since left the cache,
	// so this knob depresses the table-cache hit rate without touching
	// the dedup ratio (how Write-M reaches 81%% hits at 84%% dedup).
	FarReuseFraction float64
	// AddressBlocks is the LBA space size in blocks.
	AddressBlocks uint64
	// SeqRunLen is the mean length of sequential write runs (mail
	// appends); 1 disables sequential behaviour.
	SeqRunLen int
	// CompressRatio is the per-block compression-ratio target.
	CompressRatio float64
	// ReadFraction is the fraction of requests that are reads of
	// random previously written addresses.
	ReadFraction float64
	// ReadSkew, when > 1, draws read addresses Zipf-distributed over
	// the written reservoir instead of uniformly — the imbalanced-read
	// scenario of the paper's §8 discussion. Typical values 1.1-2.0.
	ReadSkew float64
	// ReplicateEvery inserts a systematic content mutation boundary
	// every N IOs (factor 2+3): content seeds are salted with the
	// replicate index, keeping intra-replicate duplication while
	// making replicates mutually unique. 0 disables replication.
	ReplicateEvery int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.TotalIOs <= 0 {
		return fmt.Errorf("trace: TotalIOs %d", p.TotalIOs)
	}
	if p.BlockSize <= 0 {
		return fmt.Errorf("trace: BlockSize %d", p.BlockSize)
	}
	if p.DedupRatio < 0 || p.DedupRatio >= 1 {
		return fmt.Errorf("trace: DedupRatio %v out of [0,1)", p.DedupRatio)
	}
	if p.ReuseWindow < 1 {
		return fmt.Errorf("trace: ReuseWindow %d", p.ReuseWindow)
	}
	if p.AddressBlocks == 0 {
		return fmt.Errorf("trace: empty address space")
	}
	if p.ReadFraction < 0 || p.ReadFraction > 1 {
		return fmt.Errorf("trace: ReadFraction %v", p.ReadFraction)
	}
	if p.FarReuseFraction < 0 || p.FarReuseFraction > 1 {
		return fmt.Errorf("trace: FarReuseFraction %v", p.FarReuseFraction)
	}
	return nil
}

// Table 3 workload constructors. scale is the number of IOs to generate;
// the paper runs 176-180M IOs (~704 GB), far beyond unit-test scale, so
// generators are sized by the caller and keep ratios scale-invariant.

// WriteH is Table 3's Write-H: 88% dedup, 50% compression, high (90%)
// table-cache hit rate from a mail-server skeleton.
func WriteH(scale int) Params {
	return Params{
		Name:           "Write-H",
		TotalIOs:       scale,
		BlockSize:      4096,
		DedupRatio:     0.88,
		ReuseWindow:    2048, // tight reuse -> high fingerprint locality
		AddressBlocks:  1 << 22,
		SeqRunLen:      16,
		CompressRatio:  0.5,
		ReplicateEvery: scale / 8,
		Seed:           0x1D01,
	}
}

// WriteM is Table 3's Write-M: 84% dedup, medium (81%) hit rate.
func WriteM(scale int) Params {
	return Params{
		Name:           "Write-M",
		TotalIOs:       scale,
		BlockSize:      4096,
		DedupRatio:     0.84,
		ReuseWindow:    16384,
		AddressBlocks:  1 << 22,
		SeqRunLen:      12,
		CompressRatio:  0.5,
		ReplicateEvery: scale / 8,
		Seed:           0x1D02,
	}
}

// WriteL is Table 3's Write-L: 43.1% dedup, low (45%) hit rate, from a
// webVM skeleton.
func WriteL(scale int) Params {
	return Params{
		Name:           "Write-L",
		TotalIOs:       scale,
		BlockSize:      4096,
		DedupRatio:     0.431,
		ReuseWindow:    1 << 20, // wide reuse distance -> poor locality
		AddressBlocks:  1 << 22,
		SeqRunLen:      4,
		CompressRatio:  0.5,
		ReplicateEvery: scale / 8,
		Seed:           0x1D03,
	}
}

// ReadMixed is Table 3's Read-Mixed: half reads at random valid
// addresses, writes identical to Write-H.
func ReadMixed(scale int) Params {
	p := WriteH(scale)
	p.Name = "Read-Mixed"
	p.ReadFraction = 0.5
	p.Seed = 0x1D04
	return p
}

// Archival is a backup/archival skeleton (durability extension):
// append-heavy sequential ingest with moderate cross-generation dedup
// (~55% of writes repeat an earlier backup's content), long sequential
// runs, a light restore-read stream, and a generation boundary every
// quarter of the trace. It drives the crash-recovery benchmarks: long
// intervals between checkpoints make the WAL the durability story.
func Archival(scale int) Params {
	return Params{
		Name:             "Archival",
		TotalIOs:         scale,
		BlockSize:        4096,
		DedupRatio:       0.55,
		ReuseWindow:      1 << 16,
		FarReuseFraction: 0.3, // restores reach back across generations
		AddressBlocks:    1 << 22,
		SeqRunLen:        64, // streaming backup ingest
		CompressRatio:    0.5,
		ReadFraction:     0.15,
		ReadSkew:         1.2, // recent generations restored most
		ReplicateEvery:   scale / 4,
		Seed:             0x1D05,
	}
}

// Workloads returns all four Table 3 workloads at the given scale.
func Workloads(scale int) []Params {
	return []Params{WriteH(scale), WriteM(scale), WriteL(scale), ReadMixed(scale)}
}

// Generator produces the request stream for a Params. Not safe for
// concurrent use.
type Generator struct {
	p   Params
	rng *rand.Rand

	emitted int

	// recent is the sliding window of reusable content seeds.
	recent []uint64
	// far is a bounded reservoir over the whole content history of the
	// current replicate, for FarReuseFraction picks.
	far []uint64
	// nextFresh numbers fresh content.
	nextFresh uint64
	// replicate is the current systematic-mutation salt.
	replicate uint64

	// written tracks LBAs with valid data for read generation
	// (bounded reservoir).
	written []uint64
	// zipf drives skewed read-address selection (lazy).
	zipf *rand.Zipf

	// sequential run state.
	runLeft int
	nextLBA uint64

	// stats
	dupWrites, totalWrites int
}

// NewGenerator validates p and returns a generator.
func NewGenerator(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
	}, nil
}

// Remaining returns how many requests are left.
func (g *Generator) Remaining() int { return g.p.TotalIOs - g.emitted }

// DedupObserved returns the duplicate fraction among generated writes.
func (g *Generator) DedupObserved() float64 {
	if g.totalWrites == 0 {
		return 0
	}
	return float64(g.dupWrites) / float64(g.totalWrites)
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

// Next returns the next request; ok is false when the workload is done.
func (g *Generator) Next() (Request, bool) {
	if g.emitted >= g.p.TotalIOs {
		return Request{}, false
	}
	if g.p.ReplicateEvery > 0 && g.emitted > 0 && g.emitted%g.p.ReplicateEvery == 0 {
		// Factor 3: systematic modification across replicates. Fresh
		// seeds are salted with the replicate index so this replicate's
		// content is distinct from every earlier one, and the reuse
		// window restarts so duplication happens only within the
		// replicate — N replicates keep the single-replicate dedup
		// ratio instead of collapsing to ~100% duplicates.
		g.replicate++
		g.recent = g.recent[:0]
		g.far = g.far[:0]
	}
	g.emitted++

	if g.p.ReadFraction > 0 && len(g.written) > 0 && g.rng.Float64() < g.p.ReadFraction {
		idx := g.rng.Intn(len(g.written))
		if g.p.ReadSkew > 1 {
			if g.zipf == nil {
				g.zipf = rand.NewZipf(g.rng, g.p.ReadSkew, 1, uint64(1<<16-1))
			}
			// Zipf rank into the reservoir: low ranks (hot) map to
			// stable early slots.
			idx = int(g.zipf.Uint64()) % len(g.written)
		}
		lba := g.written[idx]
		return Request{Op: OpRead, LBA: lba}, true
	}
	return g.nextWrite(), true
}

func (g *Generator) nextWrite() Request {
	g.totalWrites++
	// Address: sequential runs with random jumps (mail append behaviour
	// for long runs, webVM randomness for short ones).
	if g.runLeft <= 0 {
		g.nextLBA = uint64(g.rng.Int63()) % g.p.AddressBlocks
		if g.p.SeqRunLen > 1 {
			g.runLeft = 1 + g.rng.Intn(2*g.p.SeqRunLen)
		} else {
			g.runLeft = 1
		}
	}
	lba := g.nextLBA % g.p.AddressBlocks
	g.nextLBA++
	g.runLeft--

	// Content: duplicate with probability DedupRatio — usually from the
	// recent window, occasionally (FarReuseFraction) from deep history —
	// else fresh.
	var seed uint64
	if len(g.recent) > 0 && g.rng.Float64() < g.p.DedupRatio {
		if len(g.far) > 0 && g.rng.Float64() < g.p.FarReuseFraction {
			seed = g.far[g.rng.Intn(len(g.far))]
		} else {
			seed = g.recent[g.rng.Intn(len(g.recent))]
		}
		g.dupWrites++
	} else {
		g.nextFresh++
		seed = mixSeed(g.nextFresh, g.replicate)
		if len(g.recent) < g.p.ReuseWindow {
			g.recent = append(g.recent, seed)
		} else {
			g.recent[g.rng.Intn(len(g.recent))] = seed
		}
		const farReservoir = 1 << 16
		if len(g.far) < farReservoir {
			g.far = append(g.far, seed)
		} else {
			g.far[g.rng.Intn(len(g.far))] = seed
		}
	}

	// Track written LBAs for read generation (bounded reservoir).
	const reservoir = 1 << 16
	if len(g.written) < reservoir {
		g.written = append(g.written, lba)
	} else {
		g.written[g.rng.Intn(reservoir)] = lba
	}
	return Request{Op: OpWrite, LBA: lba, ContentSeed: seed}
}

// mixSeed mixes a fresh-content counter with the replicate salt into a
// well-distributed 64-bit seed (splitmix64 finalizer).
func mixSeed(base, salt uint64) uint64 {
	z := base + 0x9E3779B97F4A7C15*(salt+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
