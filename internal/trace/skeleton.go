package trace

import (
	"math/rand"

	"fidr/internal/chunk"
)

// Figure 3 uses raw write skeletons of two real FIU traces: a mail server
// (append-heavy, strong block reuse) and webVM (random-dominated 4-KB
// writes). These constructors synthesize equivalent skeletons as
// chunk.BlockWrite streams for the read-modify-write analysis.

// SkeletonParams shapes a Figure 3 write skeleton.
type SkeletonParams struct {
	Name          string
	Writes        int
	AddressBlocks uint64
	// SeqRunLen is the mean sequential run length.
	SeqRunLen int
	// RewriteFraction is the probability a write targets an address
	// written before (mail folders are rewritten; webVM blocks churn).
	RewriteFraction float64
	// ContentDupProb is the probability the content duplicates recent
	// content (affects large-chunk dedup degradation).
	ContentDupProb float64
	Seed           int64
}

// MailSkeleton resembles the FIU mail-server write pattern: mailbox
// append runs with frequent rewrites of hot folders and high content
// duplication (repeated messages).
func MailSkeleton(writes int) SkeletonParams {
	return SkeletonParams{
		Name:            "mail",
		Writes:          writes,
		AddressBlocks:   1 << 18,
		SeqRunLen:       8,
		RewriteFraction: 0.6,
		ContentDupProb:  0.5,
		Seed:            0xF1A1,
	}
}

// WebVMSkeleton resembles the FIU webVM write pattern: random
// single-block rewrites of existing data dominate, which is the worst
// case for large chunking — every rewrite forces a 7-block fetch plus a
// full 32-KB write-back.
func WebVMSkeleton(writes int) SkeletonParams {
	return SkeletonParams{
		Name:            "webVM",
		Writes:          writes,
		AddressBlocks:   1 << 20,
		SeqRunLen:       1,
		RewriteFraction: 0.85,
		ContentDupProb:  0.25,
		Seed:            0xF1A2,
	}
}

// GenerateSkeleton materializes the skeleton as block writes for
// chunk.SimulateRMW.
func GenerateSkeleton(p SkeletonParams) []chunk.BlockWrite {
	rng := rand.New(rand.NewSource(p.Seed))
	writes := make([]chunk.BlockWrite, 0, p.Writes)
	var hot []uint64 // previously written addresses (bounded)
	var recent []uint64
	var fresh uint64

	var runLeft int
	var next uint64
	for i := 0; i < p.Writes; i++ {
		if runLeft <= 0 {
			if len(hot) > 0 && rng.Float64() < p.RewriteFraction {
				next = hot[rng.Intn(len(hot))]
			} else {
				next = uint64(rng.Int63()) % p.AddressBlocks
			}
			if p.SeqRunLen > 1 {
				runLeft = 1 + rng.Intn(2*p.SeqRunLen)
			} else {
				runLeft = 1
			}
		}
		lba := next % p.AddressBlocks
		next++
		runLeft--

		var content uint64
		if len(recent) > 0 && rng.Float64() < p.ContentDupProb {
			content = recent[rng.Intn(len(recent))]
		} else {
			fresh++
			content = mixSeed(fresh, 0xABCD)
			if len(recent) < 4096 {
				recent = append(recent, content)
			} else {
				recent[rng.Intn(len(recent))] = content
			}
		}
		if len(hot) < 1<<15 {
			hot = append(hot, lba)
		} else {
			hot[rng.Intn(len(hot))] = lba
		}
		writes = append(writes, chunk.BlockWrite{LBA: lba, Content: content})
	}
	return writes
}
