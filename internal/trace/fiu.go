package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parser for the FIU IODedup trace format (Koller & Rangaswami, FAST'10)
// — the real traces behind the paper's mail/webVM skeletons, available
// from the SNIA IOTTA repository. Each line is whitespace-separated:
//
//	<timestamp> <pid> <process> <lba> <size> <op> <major> <minor> <md5>
//
// where lba and size are in 512-byte sectors, op is W or R, and md5 is
// the hex content hash of the block (the traces carry hashes, never
// payloads — which is why the paper, and this reproduction, synthesize
// content around trace skeletons).

// FIURecord is one parsed trace line.
type FIURecord struct {
	Timestamp uint64
	PID       uint64
	Process   string
	// SectorLBA and Sectors are in 512-byte units as recorded.
	SectorLBA uint64
	Sectors   uint64
	Write     bool
	// ContentID is derived from the leading 64 bits of the MD5 field;
	// equal hashes mean equal content.
	ContentID uint64
}

// FIUParser streams records from an FIU-format trace.
type FIUParser struct {
	sc   *bufio.Scanner
	line int
}

// NewFIUParser wraps r.
func NewFIUParser(r io.Reader) *FIUParser {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &FIUParser{sc: sc}
}

// Next returns the next record; io.EOF at end. Blank lines and lines
// starting with '#' are skipped; malformed lines are errors that name
// the line number.
func (p *FIUParser) Next() (FIURecord, error) {
	for p.sc.Scan() {
		p.line++
		text := strings.TrimSpace(p.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseFIULine(text)
		if err != nil {
			return FIURecord{}, fmt.Errorf("trace: fiu line %d: %w", p.line, err)
		}
		return rec, nil
	}
	if err := p.sc.Err(); err != nil {
		return FIURecord{}, fmt.Errorf("trace: fiu scan: %w", err)
	}
	return FIURecord{}, io.EOF
}

func parseFIULine(text string) (FIURecord, error) {
	f := strings.Fields(text)
	if len(f) < 9 {
		return FIURecord{}, fmt.Errorf("want 9 fields, have %d", len(f))
	}
	var rec FIURecord
	var err error
	if rec.Timestamp, err = strconv.ParseUint(f[0], 10, 64); err != nil {
		return FIURecord{}, fmt.Errorf("timestamp: %w", err)
	}
	if rec.PID, err = strconv.ParseUint(f[1], 10, 64); err != nil {
		return FIURecord{}, fmt.Errorf("pid: %w", err)
	}
	rec.Process = f[2]
	if rec.SectorLBA, err = strconv.ParseUint(f[3], 10, 64); err != nil {
		return FIURecord{}, fmt.Errorf("lba: %w", err)
	}
	if rec.Sectors, err = strconv.ParseUint(f[4], 10, 64); err != nil {
		return FIURecord{}, fmt.Errorf("size: %w", err)
	}
	if rec.Sectors == 0 {
		return FIURecord{}, fmt.Errorf("zero-sector IO")
	}
	switch strings.ToUpper(f[5]) {
	case "W":
		rec.Write = true
	case "R":
		rec.Write = false
	default:
		return FIURecord{}, fmt.Errorf("op %q", f[5])
	}
	// f[6], f[7]: major/minor device numbers (validated, unused).
	if _, err := strconv.ParseUint(f[6], 10, 32); err != nil {
		return FIURecord{}, fmt.Errorf("major: %w", err)
	}
	if _, err := strconv.ParseUint(f[7], 10, 32); err != nil {
		return FIURecord{}, fmt.Errorf("minor: %w", err)
	}
	md5hex := f[8]
	if len(md5hex) < 16 {
		return FIURecord{}, fmt.Errorf("md5 field %q too short", md5hex)
	}
	id, err := strconv.ParseUint(md5hex[:16], 16, 64)
	if err != nil {
		return FIURecord{}, fmt.Errorf("md5: %w", err)
	}
	rec.ContentID = id
	return rec, nil
}

// blockSectors is the 4-KB chunk size in 512-byte sectors.
const blockSectors = 8

// Requests converts a record into chunk-granular requests: the sector
// range is split into 4-KB blocks (the paper's fixed chunking); each
// block of a multi-block write gets a content seed derived from the
// record's hash and the block index.
func (r FIURecord) Requests() []Request {
	first := r.SectorLBA / blockSectors
	last := (r.SectorLBA + r.Sectors - 1) / blockSectors
	out := make([]Request, 0, last-first+1)
	for b := first; b <= last; b++ {
		req := Request{LBA: b}
		if r.Write {
			req.Op = OpWrite
			req.ContentSeed = mixSeed(r.ContentID, b-first)
		} else {
			req.Op = OpRead
		}
		out = append(out, req)
	}
	return out
}

// ReadFIU parses a whole FIU trace into chunk-granular requests.
func ReadFIU(r io.Reader) ([]Request, error) {
	p := NewFIUParser(r)
	var out []Request
	for {
		rec, err := p.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec.Requests()...)
	}
}
