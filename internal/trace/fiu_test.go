package trace

import (
	"io"
	"strings"
	"testing"
)

const sampleFIU = `# FIU IODedup-style sample
4133254course 1 2 3
`

func TestFIUParserBasics(t *testing.T) {
	in := `# comment
1234567890 321 mailsrv 4096 8 W 8 0 a1b2c3d4e5f60718deadbeefcafef00d

1234567891 321 mailsrv 4104 16 R 8 0 00000000000000000000000000000000
`
	p := NewFIUParser(strings.NewReader(in))
	r1, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Write || r1.SectorLBA != 4096 || r1.Sectors != 8 || r1.Process != "mailsrv" {
		t.Fatalf("r1 = %+v", r1)
	}
	if r1.ContentID != 0xa1b2c3d4e5f60718 {
		t.Fatalf("content id = %x", r1.ContentID)
	}
	r2, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Write || r2.Sectors != 16 {
		t.Fatalf("r2 = %+v", r2)
	}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFIUParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"1 2 p 3 8 W 8",                           // too few fields
		"x 2 p 3 8 W 8 0 a1b2c3d4e5f60718",        // bad timestamp
		"1 2 p 3 0 W 8 0 a1b2c3d4e5f60718",        // zero sectors
		"1 2 p 3 8 Q 8 0 a1b2c3d4e5f60718",        // bad op
		"1 2 p 3 8 W 8 0 shorthash",               // bad md5
		"1 2 p 3 8 W zz 0 a1b2c3d4e5f60718",       // bad major
		"1 2 p notanlba 8 W 8 0 a1b2c3d4e5f60718", // bad lba
	}
	for i, line := range bad {
		p := NewFIUParser(strings.NewReader(line))
		if _, err := p.Next(); err == nil || err == io.EOF {
			t.Errorf("case %d accepted: %q", i, line)
		}
	}
}

func TestFIURecordRequests(t *testing.T) {
	// 8 sectors aligned = exactly one 4-KB chunk.
	r := FIURecord{SectorLBA: 4096, Sectors: 8, Write: true, ContentID: 7}
	reqs := r.Requests()
	if len(reqs) != 1 || reqs[0].LBA != 512 || reqs[0].Op != OpWrite || reqs[0].ContentSeed == 0 {
		t.Fatalf("reqs = %+v", reqs)
	}
	// 16 sectors crossing a block boundary = 3 chunks.
	r = FIURecord{SectorLBA: 4, Sectors: 16, Write: true, ContentID: 7}
	reqs = r.Requests()
	if len(reqs) != 3 {
		t.Fatalf("%d requests for unaligned span", len(reqs))
	}
	// Distinct blocks of one write carry distinct seeds; the same
	// content hash replayed gives identical seeds.
	again := r.Requests()
	for i := range reqs {
		if reqs[i].ContentSeed != again[i].ContentSeed {
			t.Fatal("seeds not deterministic")
		}
		for j := i + 1; j < len(reqs); j++ {
			if reqs[i].ContentSeed == reqs[j].ContentSeed {
				t.Fatal("blocks of one write share a seed")
			}
		}
	}
	// Reads carry no seed.
	r.Write = false
	for _, q := range r.Requests() {
		if q.Op != OpRead || q.ContentSeed != 0 {
			t.Fatalf("read request = %+v", q)
		}
	}
}

func TestReadFIUDedupSemantics(t *testing.T) {
	// Two writes with the same md5 are duplicates; a third differs.
	in := `1 1 p 0 8 W 8 0 aaaaaaaaaaaaaaaa0000
2 1 p 8 8 W 8 0 aaaaaaaaaaaaaaaa0000
3 1 p 16 8 W 8 0 bbbbbbbbbbbbbbbb0000
`
	reqs, err := ReadFIU(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("%d requests", len(reqs))
	}
	if reqs[0].ContentSeed != reqs[1].ContentSeed {
		t.Fatal("equal hashes produced different seeds")
	}
	if reqs[0].ContentSeed == reqs[2].ContentSeed {
		t.Fatal("different hashes collided")
	}
}

func TestReadFIUPropagatesErrors(t *testing.T) {
	if _, err := ReadFIU(strings.NewReader(sampleFIU)); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
