package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector keeps the spans of the most recent sampled traces in a
// bounded per-trace ring. Layers push completed spans with Add; the
// /traces/spans endpoint and fidrcli trace resolve a trace ID back to
// its span tree. Eviction is per trace (oldest trace first), so a
// trace's spans are kept or dropped together even though they arrive
// from different layers at different times.
type Collector struct {
	mu      sync.Mutex
	cap     int
	order   []TraceID // arrival order of first span, oldest first
	byTrace map[TraceID][]Span
}

// maxSpansPerTrace bounds one trace's span list against bulk
// operations (gc, verify) that touch thousands of chunks.
const maxSpansPerTrace = 512

// NewCollector builds a collector retaining up to capTraces traces
// (<= 0 selects 512).
func NewCollector(capTraces int) *Collector {
	if capTraces <= 0 {
		capTraces = 512
	}
	return &Collector{cap: capTraces, byTrace: make(map[TraceID][]Span)}
}

// Add records one completed span. Spans with a zero trace ID are
// dropped (untraced requests never reach the collector).
func (c *Collector) Add(sp Span) {
	if c == nil || sp.Trace == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	spans, ok := c.byTrace[sp.Trace]
	if !ok {
		if len(c.order) >= c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.byTrace, evict)
		}
		c.order = append(c.order, sp.Trace)
	}
	if len(spans) < maxSpansPerTrace {
		c.byTrace[sp.Trace] = append(spans, sp)
	}
}

// Trace returns a copy of the stored spans for id (nil when unknown
// or evicted).
func (c *Collector) Trace(id TraceID) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	spans := c.byTrace[id]
	if spans == nil {
		return nil
	}
	out := make([]Span, len(spans))
	copy(out, spans)
	return out
}

// Summary is one line of the trace index: enough to pick a trace ID
// without fetching every tree.
type Summary struct {
	Trace TraceID       `json:"trace"`
	Root  string        `json:"root"`
	Total time.Duration `json:"total_ns"`
	Spans int           `json:"spans"`
	Start time.Time     `json:"start"`
}

// Recent returns summaries of the retained traces, newest first,
// capped at n (<= 0 means all).
func (c *Collector) Recent(n int) []Summary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 || n > len(c.order) {
		n = len(c.order)
	}
	out := make([]Summary, 0, n)
	for i := len(c.order) - 1; i >= 0 && len(out) < n; i-- {
		id := c.order[i]
		spans := c.byTrace[id]
		if len(spans) == 0 {
			continue
		}
		root := rootSpan(spans)
		out = append(out, Summary{
			Trace: id,
			Root:  root.Name,
			Total: root.Dur,
			Spans: len(spans),
			Start: root.Start,
		})
	}
	return out
}

// rootSpan picks the best root: the span whose parent is absent from
// the trace, preferring the earliest start among candidates.
func rootSpan(spans []Span) Span {
	have := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		have[sp.ID] = true
	}
	best := spans[0]
	found := false
	for _, sp := range spans {
		if sp.Parent != 0 && have[sp.Parent] {
			continue
		}
		if !found || sp.Start.Before(best.Start) {
			best = sp
			found = true
		}
	}
	return best
}

// Render formats a span tree as indented text, children ordered by
// start time. Orphaned spans (parent evicted or still in flight when
// snapshotted) surface as extra roots rather than disappearing.
func Render(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	have := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		have[sp.ID] = true
	}
	children := make(map[SpanID][]Span)
	var roots []Span
	for _, sp := range spans {
		if sp.Parent != 0 && have[sp.Parent] && sp.Parent != sp.ID {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []Span) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	for _, cs := range children {
		byStart(cs)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s · %d spans\n", spans[0].Trace, len(spans))
	seen := make(map[SpanID]bool)
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		if sp.ID != 0 {
			if seen[sp.ID] {
				return
			}
			seen[sp.ID] = true
		}
		sb.WriteString(strings.Repeat("  ", depth+1))
		fmt.Fprintf(&sb, "%-24s %12s", sp.Name, sp.Dur.Round(time.Nanosecond))
		if sp.Bytes > 0 {
			fmt.Fprintf(&sb, "  bytes=%d", sp.Bytes)
		}
		if sp.QueueDepth > 0 {
			fmt.Fprintf(&sb, "  qdepth=%d", sp.QueueDepth)
		}
		if sp.LBA != 0 {
			fmt.Fprintf(&sb, "  lba=%d", sp.LBA)
		}
		if sp.Group > 0 {
			fmt.Fprintf(&sb, "  group=%d", sp.Group)
		}
		sb.WriteByte('\n')
		for _, ch := range children[sp.ID] {
			walk(ch, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return sb.String()
}

// ServeHTTP serves the collector: /traces/spans lists recent trace
// summaries; ?id=<hex> resolves one span tree (404 with a useful body
// for unknown IDs); ?format=json switches either view to JSON.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	asJSON := q.Get("format") == "json"
	idStr := q.Get("id")
	if idStr == "" {
		sums := c.Recent(0)
		if asJSON {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(sums)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "retained traces: %d (newest first); fetch one with ?id=<trace>\n", len(sums))
		for _, s := range sums {
			fmt.Fprintf(w, "%s  %-20s %12s  %d spans\n", s.Trace, s.Root, s.Total.Round(time.Nanosecond), s.Spans)
		}
		return
	}
	id, err := ParseTraceID(idStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spans := c.Trace(id)
	if spans == nil {
		http.Error(w, fmt.Sprintf("trace %s not found (untraced, unsampled, or evicted from the %d-trace ring)", id, c.cap), http.StatusNotFound)
		return
	}
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(spans)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, Render(spans))
}
