// Package span is the distributed-tracing span model: typed trace and
// span identifiers, a propagation context small enough to ride in a
// wire header, and the Span record every layer (proto listener, async
// queue, core pipeline stages, WAL commit) emits into a shared
// Collector. It upgrades the flat per-request stage lists of the node
// observability plane (internal/core's Trace) into a parented tree
// that survives process and wire boundaries, so one client-issued
// trace ID resolves to the full proto -> queue -> core -> lanes -> WAL
// -> SSD story.
//
// The package is dependency-free (stdlib only) and imported by every
// layer; nothing in it imports the rest of the module.
package span

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request tree. Zero means "not
// traced"; identifiers render as 16 lowercase hex digits.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no parent" /
// "unset".
type SpanID uint64

// String renders the ID as fixed-width hex (the exposition and
// endpoint format).
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// ParseTraceID parses the hex form accepted from CLIs and query
// strings: 1..16 hex digits, optionally 0x-prefixed.
func ParseTraceID(s string) (TraceID, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("span: trace id %q must be 1..16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("span: trace id %q is not hex: %v", s, err)
	}
	if v == 0 {
		return 0, fmt.Errorf("span: trace id zero is reserved (means untraced)")
	}
	return TraceID(v), nil
}

// idState seeds the process-local ID sequence from the wall clock so
// two daemons started back to back do not collide; each NewTraceID /
// NewSpanID is one atomic add plus a splitmix64 finalizer (no locks on
// the hot path).
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ 0x9e3779b97f4a7c15)
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // zero is the "untraced" sentinel
		x = 1
	}
	return x
}

// NewTraceID allocates a fresh trace identifier.
func NewTraceID() TraceID { return TraceID(nextID()) }

// NewSpanID allocates a fresh span identifier.
func NewSpanID() SpanID { return SpanID(nextID()) }

// Context is the propagation state that crosses layer and wire
// boundaries: which trace the request belongs to, which span is the
// caller's active one (the parent of whatever the callee opens), and
// whether the trace is sampled into the span collector.
type Context struct {
	Trace   TraceID
	Parent  SpanID
	Sampled bool
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Child returns a copy of the context re-parented under span id (what
// a layer passes down after opening its own span).
func (c Context) Child(id SpanID) Context {
	c.Parent = id
	return c
}

// WireSize is the encoded size of a Context: trace ID (8) + parent
// span ID (8) + flags (1), little endian.
const WireSize = 17

const flagSampled = 0x01

// EncodeWire writes the fixed-size wire form into b (which must be at
// least WireSize bytes).
func (c Context) EncodeWire(b []byte) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(c.Trace))
	binary.LittleEndian.PutUint64(b[8:16], uint64(c.Parent))
	var flags byte
	if c.Sampled {
		flags |= flagSampled
	}
	b[16] = flags
}

// DecodeWire parses the fixed-size wire form.
func DecodeWire(b []byte) (Context, error) {
	if len(b) < WireSize {
		return Context{}, fmt.Errorf("span: trace context truncated (%d of %d bytes)", len(b), WireSize)
	}
	return Context{
		Trace:   TraceID(binary.LittleEndian.Uint64(b[0:8])),
		Parent:  SpanID(binary.LittleEndian.Uint64(b[8:16])),
		Sampled: b[16]&flagSampled != 0,
	}, nil
}

// Span is one completed timed operation within a trace. Name is a
// stable slug ("proto.write_batch", "async.queue", "core.awrite",
// "hash", "wal_fsync", ...). Bytes and QueueDepth are the per-span
// annotations the storage pipeline cares about: payload bytes moved by
// the span and the queue depth observed at submission (0 = unset).
type Span struct {
	Trace      TraceID       `json:"trace"`
	ID         SpanID        `json:"id"`
	Parent     SpanID        `json:"parent,omitempty"`
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	Dur        time.Duration `json:"dur_ns"`
	Bytes      uint64        `json:"bytes,omitempty"`
	QueueDepth int           `json:"queue_depth,omitempty"`
	LBA        uint64        `json:"lba,omitempty"`
	Group      int           `json:"group"`
}
