package span

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestIDsUniqueAndNonZero(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	back, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %s -> %s", id, back)
	}
	if _, err := ParseTraceID("0xdeadbeef"); err != nil {
		t.Fatalf("0x prefix rejected: %v", err)
	}
	for _, bad := range []string{"", "zz", "00000000000000000", "0", " "} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Fatalf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestContextWireRoundTrip(t *testing.T) {
	c := Context{Trace: NewTraceID(), Parent: NewSpanID(), Sampled: true}
	var b [WireSize]byte
	c.EncodeWire(b[:])
	back, err := DecodeWire(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("wire round trip %+v -> %+v", c, back)
	}
	if _, err := DecodeWire(b[:WireSize-1]); err == nil {
		t.Fatal("truncated context accepted")
	}
}

func TestCollectorTreeAndEviction(t *testing.T) {
	col := NewCollector(2)
	mk := func(tid TraceID, id, parent SpanID, name string, at int) Span {
		return Span{Trace: tid, ID: id, Parent: parent, Name: name,
			Start: time.Unix(0, int64(at)), Dur: time.Duration(at)}
	}
	t1 := TraceID(0xaaa)
	root, child, grand := NewSpanID(), NewSpanID(), NewSpanID()
	col.Add(mk(t1, root, 0, "proto.write", 1))
	col.Add(mk(t1, child, root, "core.write", 2))
	col.Add(mk(t1, grand, child, "hash", 3))

	spans := col.Trace(t1)
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	text := Render(spans)
	// Tree shape: grand-child indented two levels beyond root.
	if !strings.Contains(text, "proto.write") || !strings.Contains(text, "      hash") {
		t.Fatalf("render missing tree structure:\n%s", text)
	}

	// Two more traces evict t1 (capacity 2).
	col.Add(mk(TraceID(0xbbb), NewSpanID(), 0, "a", 4))
	col.Add(mk(TraceID(0xccc), NewSpanID(), 0, "b", 5))
	if col.Trace(t1) != nil {
		t.Fatal("oldest trace not evicted")
	}
	if got := len(col.Recent(0)); got != 2 {
		t.Fatalf("recent = %d traces, want 2", got)
	}
}

func TestCollectorHTTP(t *testing.T) {
	col := NewCollector(8)
	id := NewTraceID()
	col.Add(Span{Trace: id, ID: NewSpanID(), Name: "core.write", Start: time.Now(), Dur: time.Millisecond})

	rec := httptest.NewRecorder()
	col.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/spans?id="+id.String(), nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "core.write") {
		t.Fatalf("lookup: code=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	col.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/spans?id=ffffffffffffffff", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "not found") {
		t.Fatalf("unknown id: code=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	col.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/spans?id=nothex", nil))
	if rec.Code != 400 {
		t.Fatalf("bad id: code=%d", rec.Code)
	}

	rec = httptest.NewRecorder()
	col.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/spans", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), id.String()) {
		t.Fatalf("index: code=%d body=%q", rec.Code, rec.Body.String())
	}
}
