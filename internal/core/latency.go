package core

import "time"

// Request latency models (§7.6). The paper measures server-side latency
// (SSDs <-> NICs) of a 4-KB read served as part of a batch: 700 us for
// the baseline, 490 us for FIDR. The gap comes from FIDR's shorter
// datapath: two DMA hops (SSD->Decompression Engine->NIC) instead of four
// (SSD->host->FPGA->host->NIC), with each host bounce adding descriptor
// handling, an interrupt/poll round and queueing behind the batch.
//
// Stage constants below are calibrated to those two anchors; they are a
// latency budget, not microarchitecture. Write commits are acknowledged
// at buffering time in both systems (battery-backed NIC memory for FIDR,
// host NVRAM-style buffer for the baseline), so data reduction adds no
// write commit latency (§7.6.1).

// LatencyParams is the per-stage latency budget.
type LatencyParams struct {
	// SSDRead is the NVMe flash read (command to data).
	SSDRead time.Duration
	// HostSoftware is LBA resolution plus IO-stack time per batch item.
	HostSoftware time.Duration
	// PerHop is one DMA hop: descriptor setup, transfer of a (compressed)
	// chunk, and completion signalling.
	PerHop time.Duration
	// Decompress is the engine's per-chunk decompression time.
	Decompress time.Duration
	// NICSend is protocol encode + wire send.
	NICSend time.Duration
	// BatchWait is the mean queueing delay behind other requests of the
	// same batch, per hop that serializes at a shared device.
	BatchWait time.Duration
	// BufferAck is the write-path buffering acknowledgment time.
	BufferAck time.Duration
}

// DefaultLatency returns the calibrated budget.
func DefaultLatency() LatencyParams {
	return LatencyParams{
		SSDRead:      90 * time.Microsecond,
		HostSoftware: 120 * time.Microsecond,
		PerHop:       60 * time.Microsecond,
		Decompress:   30 * time.Microsecond,
		NICSend:      40 * time.Microsecond,
		BatchWait:    90 * time.Microsecond,
		BufferAck:    10 * time.Microsecond,
	}
}

// ReadLatency returns the modeled server-side latency of one batched
// 4-KB read for the architecture.
func (p LatencyParams) ReadLatency(arch Arch) time.Duration {
	switch arch {
	case Baseline:
		// SSD -> host -> FPGA -> host -> NIC: 4 hops, and the batch
		// serializes at both the host bounce and the FPGA.
		return p.SSDRead + p.HostSoftware + 4*p.PerHop + p.Decompress +
			p.NICSend + 2*p.BatchWait
	default:
		// SSD -> engine -> NIC: 2 hops, one serialization point.
		return p.SSDRead + p.HostSoftware + 2*p.PerHop + p.Decompress +
			p.NICSend + 1*p.BatchWait
	}
}

// WriteCommitLatency returns the modeled client-visible write latency:
// buffering plus acknowledgment, identical across architectures because
// both ack at the (non-volatile) buffer.
func (p LatencyParams) WriteCommitLatency(Arch) time.Duration {
	return p.BufferAck
}
