package core

import (
	"fmt"
	"sort"

	"fidr/internal/fingerprint"
	"fidr/internal/hostmodel"
	"fidr/internal/metrics/events"
	"fidr/internal/pcie"
)

// Garbage collection (extension). Overwrites and re-deduplication drop
// references to stored chunks, stranding dead compressed bytes inside
// sealed containers. Compact picks containers whose dead fraction exceeds
// a threshold, copies their live chunks into the open container (data SSD
// -> Compression Engine peer-to-peer in FIDR; through host memory in the
// baseline), retires the dead chunks' fingerprints from the Hash-PBN
// table, and reclaims the container.

// GarbageStats summarizes reclaimable space.
type GarbageStats struct {
	// DeadBytesByContainer maps container index -> dead compressed bytes.
	DeadBytesByContainer map[uint64]uint64
	// TotalDeadBytes sums the above.
	TotalDeadBytes uint64
}

// Garbage reports current dead-space accounting.
func (s *Server) Garbage() GarbageStats {
	g := GarbageStats{DeadBytesByContainer: s.lba.DeadBytes()}
	for _, b := range g.DeadBytesByContainer {
		g.TotalDeadBytes += b
	}
	return g
}

// CompactResult reports one compaction pass.
type CompactResult struct {
	ContainersCompacted int
	ChunksMoved         int
	ChunksDropped       int
	// BytesReclaimed counts retired container capacity.
	BytesReclaimed uint64
	// BytesMoved counts live compressed bytes rewritten.
	BytesMoved uint64
}

// Compact garbage-collects sealed containers whose dead fraction is at
// least minDeadFraction (0 compacts anything with any dead bytes). The
// open container is never a candidate. Returns what was reclaimed. The
// whole pass runs under one "gc" trace: table retirements, chunk moves
// and container writes all land in the stage histograms.
func (s *Server) Compact(minDeadFraction float64) (CompactResult, error) {
	var res CompactResult
	if err := s.failIfCrashed(); err != nil {
		return res, err
	}
	tr := s.obs.begin("gc", 0)
	defer tr.done()
	dead := s.lba.DeadBytes()
	open := s.comp.OpenContainer()
	// Deterministic candidate order.
	var candidates []uint64
	for c, b := range dead {
		if c == open {
			continue
		}
		if float64(b)/float64(s.cfg.ContainerSize) >= minDeadFraction && b > 0 {
			candidates = append(candidates, c)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	// The whole pass logs as one atomic WAL group: a dead chunk's
	// fingerprint deletion must never become durable without the
	// relocations and retirement it belongs with, or replay would leave
	// live chunks whose fingerprints are missing from the table.
	if s.wal != nil {
		s.wal.BeginGroup()
	}
	var passErr error
	for _, c := range candidates {
		if passErr = s.compactOne(c, &res, tr); passErr != nil {
			break
		}
	}
	if s.wal != nil {
		s.wal.EndGroup()
	}
	if passErr != nil {
		return res, passErr
	}
	// Containers sealed during compaction go to the SSDs as usual.
	if err := s.writeSealed(tr); err != nil {
		return res, err
	}
	s.emitEvent(events.Event{
		Type:   events.TypeGCRun,
		Trace:  tr.traceID(),
		Detail: fmt.Sprintf("threshold=%.2f", minDeadFraction),
		Fields: map[string]int64{
			"containers_compacted": int64(res.ContainersCompacted),
			"chunks_moved":         int64(res.ChunksMoved),
			"chunks_dropped":       int64(res.ChunksDropped),
			"bytes_reclaimed":      int64(res.BytesReclaimed),
			"bytes_moved":          int64(res.BytesMoved),
		},
	})
	return res, nil
}

// compactOne moves container c's live chunks out and retires it.
func (s *Server) compactOne(c uint64, res *CompactResult, tr *ReqTrace) error {
	// Capture the container's dead bytes before retirement wipes the
	// entry: once retired they are reclaimed, not garbage.
	deadHere := s.lba.DeadBytes()[c]
	// Drop dead fingerprints first so their table entries cannot match
	// new writes mid-compaction.
	from := tr.start()
	for _, pbn := range s.lba.DeadChunks(c) {
		fp, ok := s.fpOf(pbn)
		if !ok {
			return fmt.Errorf("core: no fingerprint recorded for PBN %d", pbn)
		}
		if _, err := s.cache.Delete(fp); err != nil {
			return err
		}
		s.walDeleteFP(fp)
		if s.fpLive > 0 {
			s.fpLive--
		}
		s.stats.DeletedFingerprints++
		s.obs.onDeletedFP(1)
		res.ChunksDropped++
	}
	tr.span(StageDedupLookup, from)
	// Move live chunks into the open container.
	for _, pbn := range s.lba.LiveChunks(c) {
		pba, err := s.lba.Resolve(pbn)
		if err != nil {
			return err
		}
		cdata, fromSSD, err := s.fetchCompressed(pba, tr)
		if err != nil {
			return err
		}
		if fromSSD {
			if s.cfg.Arch == Baseline {
				// SSD -> host -> (host-side packer).
				s.transfer(devDataSSD, pcie.HostMemory, uint64(len(cdata)))
				s.ledger.MemPayload(hostmodel.PathHostSSD, uint64(len(cdata)))
			} else {
				// SSD -> Compression Engine, peer-to-peer.
				s.transfer(devDataSSD, devComp, uint64(len(cdata)))
			}
			s.ledger.CPU(hostmodel.CompDataSSDIO, s.costs.DataSSDPerIONs)
		}
		fp, _ := s.fpOf(pbn)
		packStart := tr.start()
		meta, err := s.comp.Pack(0, fp, cdata, len(cdata))
		if err != nil {
			return err
		}
		tr.span(StageCompress, packStart)
		if err := s.lba.Relocate(pbn, meta.Container, meta.Offset); err != nil {
			return err
		}
		s.walRelocate(pbn, meta.Container, meta.Offset)
		s.ledger.CPU(hostmodel.CompDeviceMgr, s.costs.DeviceMgrPerChunkNs)
		res.ChunksMoved++
		res.BytesMoved += uint64(len(cdata))
	}
	s.lba.RetireContainer(c)
	s.walRetire(c)
	s.reclaimed = append(s.reclaimed, c)
	s.stats.ReclaimedDeadBytes += deadHere
	s.obs.onReclaimedDead(deadHere)
	res.ContainersCompacted++
	res.BytesReclaimed += uint64(s.cfg.ContainerSize)
	return nil
}

// fpOf returns the fingerprint recorded for a PBN.
func (s *Server) fpOf(pbn uint64) (fingerprint.FP, bool) {
	if pbn >= uint64(len(s.pbnFP)) {
		return fingerprint.FP{}, false
	}
	return s.pbnFP[pbn], true
}

// ReclaimedContainers lists container indexes retired by compaction.
func (s *Server) ReclaimedContainers() []uint64 {
	out := make([]uint64, len(s.reclaimed))
	copy(out, s.reclaimed)
	return out
}
