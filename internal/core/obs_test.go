package core

import (
	"strings"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/metrics"
)

// driveObserved writes nWrites chunks (half duplicates) and reads them
// back through an instrumented server, returning the registry.
func driveObserved(t *testing.T, arch Arch) *metrics.Registry {
	t.Helper()
	s := newServer(t, arch)
	reg := s.EnableObservability(nil, 16)
	sh := blockcomp.NewShaper(0.5)
	const n = 200
	for i := 0; i < n; i++ {
		// Seed collisions make half the stream duplicate content.
		data := sh.Make(uint64(i%(n/2)), 4096)
		if err := s.Write(uint64(i), data); err != nil {
			t.Fatalf("%v write %d: %v", arch, i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Read(uint64(i)); err != nil {
			t.Fatalf("%v read %d: %v", arch, i, err)
		}
	}
	return reg
}

func TestObservabilityCountersAndStages(t *testing.T) {
	for _, arch := range allArchs() {
		reg := driveObserved(t, arch)

		if got := reg.Counter("core.writes").Value(); got != 200 {
			t.Errorf("%v core.writes = %d, want 200", arch, got)
		}
		if got := reg.Counter("core.reads").Value(); got != 200 {
			t.Errorf("%v core.reads = %d, want 200", arch, got)
		}
		if got := reg.Counter("core.dup_chunks").Value(); got == 0 {
			t.Errorf("%v core.dup_chunks = 0, want > 0", arch)
		}
		if got := reg.Counter("core.unique_chunks").Value(); got == 0 {
			t.Errorf("%v core.unique_chunks = 0, want > 0", arch)
		}
		// Dedup accounting must agree between counters: every chunk is
		// either unique or duplicate.
		total := reg.Counter("core.dup_chunks").Value() + reg.Counter("core.unique_chunks").Value()
		if total != 200 {
			t.Errorf("%v unique+dup = %d, want 200", arch, total)
		}

		// Every write-path stage histogram must have samples.
		for _, st := range []Stage{StageNICBuffer, StageHash, StageDedupLookup, StageCompress, StageSSDIO} {
			h := reg.Histogram("stage." + st.String() + ".ns")
			if h.Count() == 0 {
				t.Errorf("%v stage %s has no samples", arch, st)
			}
			if h.Mean() < 0 || h.Quantile(0.99) < h.Quantile(0.50) {
				t.Errorf("%v stage %s: inconsistent snapshot", arch, st)
			}
		}
		// The substrate probe histogram rides on the same registry.
		if reg.Histogram("stage.table_cache.ns").Count() == 0 {
			t.Errorf("%v table-cache probe histogram empty", arch)
		}
		if reg.Counter("tablecache.lookups").Value() == 0 {
			t.Errorf("%v tablecache.lookups = 0", arch)
		}
		// Latency kinds feed the registry too.
		if reg.Histogram("latency.write_ack.ns").Count() != 200 {
			t.Errorf("%v latency.write_ack.ns count = %d, want 200",
				arch, reg.Histogram("latency.write_ack.ns").Count())
		}
	}
}

func TestObservabilityTraceRing(t *testing.T) {
	s := newServer(t, FIDRFull)
	s.EnableObservability(nil, 8)
	sh := blockcomp.NewShaper(0.5)
	for i := 0; i < 100; i++ {
		if err := s.Write(uint64(i), sh.Make(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	traces := s.RecentTraces()
	if len(traces) != 8 {
		t.Fatalf("ring holds %d traces, want 8", len(traces))
	}
	// Newest first: the flush trace is the most recent op.
	if traces[0].Op != "flush" {
		t.Errorf("newest trace op = %q, want flush", traces[0].Op)
	}
	for _, tr := range traces {
		if tr.Total < 0 {
			t.Errorf("trace %s: negative total %v", tr.Op, tr.Total)
		}
	}
	out := RenderTraces(traces)
	if !strings.Contains(out, "flush") || !strings.Contains(out, "recent request traces") {
		t.Errorf("rendered traces missing content:\n%s", out)
	}
}

func TestObservabilityDisabledIsNilSafe(t *testing.T) {
	// No EnableObservability: all hooks must be no-ops, not panics.
	s := newServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := 0; i < 50; i++ {
		if err := s.Write(uint64(i), sh.Make(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(3); err != nil {
		t.Fatal(err)
	}
	if s.MetricsRegistry() != nil {
		t.Error("registry present without EnableObservability")
	}
	if s.RecentTraces() != nil {
		t.Error("traces present without EnableObservability")
	}
}

func TestObservabilityDumpFormat(t *testing.T) {
	reg := driveObserved(t, FIDRFull)
	dump := reg.Dump()
	for _, want := range []string{
		"counter core.writes 200",
		"counter nic.hash_ops",
		"counter engine.chunks_in",
		"hist stage.hash.ns count=",
		"hist latency.write_ack.ns count=200",
		"hist ssd.data-ssd.access_ns",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q\n%s", want, dump)
		}
	}
}
