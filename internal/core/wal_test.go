package core

import (
	"bytes"
	"errors"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/fingerprint"
	"fidr/internal/ssd"
)

// walTestDevices builds small injectable SSDs for WAL tests.
func walTestDevices() (*ssd.SSD, *ssd.SSD) {
	tssd := ssd.MustNew(ssd.Config{Name: "tssd", CapacityBytes: 1 << 28, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	dssd := ssd.MustNew(ssd.Config{Name: "dssd", CapacityBytes: 1 << 28, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	return tssd, dssd
}

// walTestConfig sizes a server small enough that containers seal and
// cache lines evict within a few hundred writes.
func walTestConfig(arch Arch, tssd, dssd *ssd.SSD, w *WAL) Config {
	cfg := DefaultConfig(arch)
	cfg.ContainerSize = 64 << 10
	cfg.UniqueChunkCapacity = 1 << 14
	cfg.CacheLines = 64
	cfg.BatchChunks = 16
	cfg.TableSSD = tssd
	cfg.DataSSD = dssd
	cfg.WAL = w
	return cfg
}

func TestWALRecordCodec(t *testing.T) {
	rec := WALRecord{
		Kind: WALAppend, Seq: 42, LBA: 7, PBN: 9, Container: 3,
		Offset: 128, CSize: 2048, FP: fingerprint.Of([]byte("x")),
	}
	var frame [walFrameSize]byte
	rec.encode(frame[:])
	got, ok := decodeWALRecord(frame[:])
	if !ok {
		t.Fatal("frame did not decode")
	}
	if got != rec {
		t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
	}
	// A flipped payload byte must fail the CRC.
	frame[walHeaderSize+3] ^= 0xFF
	if _, ok := decodeWALRecord(frame[:]); ok {
		t.Fatal("corrupt frame decoded")
	}
}

func TestWALPrefixCommitHonorsBarriers(t *testing.T) {
	dev := NewMemWALDevice()
	w, err := NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: a blocked record blocks everything behind it, even
	// barrier-free records — commit order must equal mutation order.
	w.stage(WALRecord{Kind: WALAppend, Container: 1}, 2)
	w.stage(WALRecord{Kind: WALMapLBA}, 0)
	if err := w.commit(1); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.AppendedRecords != 0 || st.PendingRecords != 2 {
		t.Fatalf("commit below barrier flushed records: %+v", st)
	}
	if err := w.commit(2); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.AppendedRecords != 2 || st.PendingRecords != 0 || st.Syncs != 1 {
		t.Fatalf("batch commit: %+v", st)
	}
}

func TestWALGroupCommitsUnderOneBarrier(t *testing.T) {
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	w.BeginGroup()
	w.stage(WALRecord{Kind: WALDeleteFP}, 0)
	w.stage(WALRecord{Kind: WALRelocate, Container: 4}, 5)
	w.stage(WALRecord{Kind: WALRetire}, 0)
	w.EndGroup()
	if err := w.commit(4); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.AppendedRecords != 0 {
		t.Fatalf("group leaked records below its max barrier: %+v", st)
	}
	if err := w.commit(5); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.AppendedRecords != 3 {
		t.Fatalf("group did not commit atomically: %+v", st)
	}
}

func TestWALReplayStopsAtTornTail(t *testing.T) {
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	for i := uint64(0); i < 5; i++ {
		w.stage(WALRecord{Kind: WALMapLBA, LBA: i, PBN: i}, 0)
	}
	if err := w.commit(0); err != nil {
		t.Fatal(err)
	}
	// Tear the last record and append trailing garbage.
	dev.Corrupt(int64(4*walFrameSize) + walHeaderSize + 2)
	dev.WriteAt([]byte{0xDE, 0xAD, 0xBE}, int64(5*walFrameSize))
	dev.Sync()

	reopened, err := NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	n, err := reopened.Replay(0, func(r WALRecord) error {
		got = append(got, r.LBA)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(got) != 4 || got[3] != 3 {
		t.Fatalf("replay past torn tail: applied %d records (%v)", n, got)
	}
	// Sequence numbering resumes after the last *valid* record.
	if reopened.LastSeq() != 4 {
		t.Fatalf("LastSeq %d after torn tail, want 4", reopened.LastSeq())
	}
}

func TestWALReplaySkipsCheckpointedSeqs(t *testing.T) {
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	for i := uint64(0); i < 6; i++ {
		w.stage(WALRecord{Kind: WALMapLBA, LBA: i}, 0)
	}
	if err := w.commit(0); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if _, err := w.Replay(4, func(r WALRecord) error {
		got = append(got, r.LBA)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("replay after seq 4 applied %v", got)
	}
}

// TestWALGenesisRecovery crashes before any checkpoint: recovery must
// rebuild everything from the log alone and satisfy every fsck
// invariant.
func TestWALGenesisRecovery(t *testing.T) {
	tssd, dssd := walTestDevices()
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	s, err := New(walTestConfig(FIDRFull, tssd, dssd, w))
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 300; i++ {
		seed := i % 120 // duplicates included
		if err := s.Write(i, sh.Make(seed, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	dev.Crash()
	w2, err := NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, w2))
	if err != nil {
		t.Fatal(err)
	}
	rr := r.LastRecovery()
	if !rr.FromGenesis || rr.ReplayedRecords == 0 {
		t.Fatalf("expected genesis replay, got %+v", rr)
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("recovered volume inconsistent: %v", rep.Problems)
	}
	for i := uint64(0); i < 300; i++ {
		got, err := r.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, sh.Make(i%120, 4096)) {
			t.Fatalf("lba %d: recovered wrong content", i)
		}
	}
}

// TestWALRecoveryAfterCheckpoint replays only the post-checkpoint
// suffix and must not double-apply checkpointed records.
func TestWALRecoveryAfterCheckpoint(t *testing.T) {
	tssd, dssd := walTestDevices()
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	s, err := New(walTestConfig(FIDRFull, tssd, dssd, w))
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 200; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.DurableBytes != 0 {
		t.Fatalf("checkpoint did not truncate the WAL: %+v", st)
	}
	// Post-checkpoint mutations: overwrites (refcount churn) and fresh
	// content.
	for i := uint64(0); i < 150; i++ {
		if err := s.Write(i, sh.Make(10_000+i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	dev.Crash()
	w2, _ := NewWAL(dev)
	r, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, w2))
	if err != nil {
		t.Fatal(err)
	}
	rr := r.LastRecovery()
	if rr.FromGenesis {
		t.Fatal("recovery ignored the checkpoint")
	}
	if rr.ReplayedRecords == 0 {
		t.Fatal("recovery replayed nothing")
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("inconsistent after checkpoint+replay: %v", rep.Problems)
	}
	for i := uint64(0); i < 200; i++ {
		want := sh.Make(i, 4096)
		if i < 150 {
			want = sh.Make(10_000+i, 4096)
		}
		got, err := r.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lba %d: wrong content after replay", i)
		}
	}
}

// TestWALSeqRealignsAfterTruncation covers the subtle double-truncation
// case: checkpoint truncates the log, the process restarts (sequence
// counter rescans to 1), and new records must still replay above the
// checkpoint's recorded sequence.
func TestWALSeqRealignsAfterTruncation(t *testing.T) {
	tssd, dssd := walTestDevices()
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	s, err := New(walTestConfig(FIDRFull, tssd, dssd, w))
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 100; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckpSeq := w.LastSeq()
	if ckpSeq == 0 {
		t.Fatal("no WAL records before checkpoint")
	}

	// Clean restart over the truncated log: recovery realigns the
	// sequence counter past the checkpoint.
	dev.Crash()
	w2, _ := NewWAL(dev)
	r, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, w2))
	if err != nil {
		t.Fatal(err)
	}
	if w2.LastSeq() < ckpSeq {
		t.Fatalf("WAL seq %d fell below checkpoint seq %d after reopen", w2.LastSeq(), ckpSeq)
	}
	for i := uint64(0); i < 80; i++ {
		if err := r.Write(500+i, sh.Make(777_000+i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	// Second crash: the post-restart records must replay.
	dev.Crash()
	w3, _ := NewWAL(dev)
	r2, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, w3))
	if err != nil {
		t.Fatal(err)
	}
	if r2.LastRecovery().ReplayedRecords == 0 {
		t.Fatal("post-truncation records were skipped on replay")
	}
	got, err := r2.Read(500)
	if err != nil || !bytes.Equal(got, sh.Make(777_000, 4096)) {
		t.Fatalf("post-truncation write lost: %v", err)
	}
}

// TestWALRecoveryAfterCompact ensures GC's grouped records replay
// atomically and leave a verifiable volume.
func TestWALRecoveryAfterCompact(t *testing.T) {
	tssd, dssd := walTestDevices()
	dev := NewMemWALDevice()
	w, _ := NewWAL(dev)
	s, err := New(walTestConfig(FIDRFull, tssd, dssd, w))
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 200; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite half the LBAs to strand dead chunks, then compact.
	for i := uint64(0); i < 100; i++ {
		if err := s.Write(i, sh.Make(50_000+i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCompacted == 0 {
		t.Fatal("compaction found nothing to do; test needs churn")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	dev.Crash()
	w2, _ := NewWAL(dev)
	r, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, w2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("inconsistent after GC replay: %v", rep.Problems)
	}
	for i := uint64(0); i < 200; i++ {
		want := sh.Make(i, 4096)
		if i < 100 {
			want = sh.Make(50_000+i, 4096)
		}
		got, err := r.Read(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("lba %d wrong after GC replay: %v", i, err)
		}
	}
}

func TestRecoverServerTypedErrors(t *testing.T) {
	t.Run("no volume", func(t *testing.T) {
		tssd, dssd := walTestDevices()
		_, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, nil))
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("want ErrNoCheckpoint, got %v", err)
		}
		if errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatal("error classes overlap")
		}
	})
	t.Run("no volume with empty WAL", func(t *testing.T) {
		tssd, dssd := walTestDevices()
		w, _ := NewWAL(NewMemWALDevice())
		_, err := RecoverServer(walTestConfig(FIDRFull, tssd, dssd, w))
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("want ErrNoCheckpoint, got %v", err)
		}
	})
	t.Run("corrupt checkpoint body", func(t *testing.T) {
		tssd, dssd := walTestDevices()
		cfg := walTestConfig(FIDRFull, tssd, dssd, nil)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := blockcomp.NewShaper(0.5)
		for i := uint64(0); i < 64; i++ {
			if err := s.Write(i, sh.Make(i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		// Smash the snapshot bytes but keep the magic intact.
		garbage := bytes.Repeat([]byte{0xA5}, 256)
		if err := tssd.Write(s.checkpointOffset()+24, garbage); err != nil {
			t.Fatal(err)
		}
		_, err = RecoverServer(cfg)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
		}
		if errors.Is(err, ErrNoCheckpoint) {
			t.Fatal("error classes overlap")
		}
	})
	t.Run("container size mismatch is corrupt", func(t *testing.T) {
		tssd, dssd := walTestDevices()
		cfg := walTestConfig(FIDRFull, tssd, dssd, nil)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := blockcomp.NewShaper(0.5)
		for i := uint64(0); i < 32; i++ {
			if err := s.Write(i, sh.Make(i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		bad := cfg
		bad.ContainerSize = 128 << 10
		_, err = RecoverServer(bad)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
		}
	})
}
