package core

import (
	"bytes"
	"errors"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/ssd"
)

var errMedia = errors.New("simulated media error")

// faultServer builds a FIDR server with injectable devices.
func faultServer(t *testing.T) (*Server, *ssd.SSD, *ssd.SSD) {
	t.Helper()
	cfg := DefaultConfig(FIDRFull)
	cfg.ContainerSize = 64 << 10
	tssd := ssd.MustNew(ssd.Config{Name: "tssd", CapacityBytes: 1 << 32, PageSize: 4096,
		ReadLatency: 0, WriteLatency: 0, ReadBW: 3.5e9, WriteBW: 2.7e9})
	dssd := ssd.MustNew(ssd.Config{Name: "dssd", CapacityBytes: 1 << 32, PageSize: 4096,
		ReadLatency: 0, WriteLatency: 0, ReadBW: 3.5e9, WriteBW: 2.7e9})
	cfg.TableSSD = tssd
	cfg.DataSSD = dssd
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, tssd, dssd
}

func TestDataSSDReadFaultSurfaces(t *testing.T) {
	s, _, dssd := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 100; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	dssd.InjectFaults(1, 0, errMedia)
	// Find a read that actually hits the SSD (not the open container).
	var sawError bool
	for i := uint64(0); i < 100; i++ {
		if _, err := s.Read(i); err != nil {
			if !errors.Is(err, errMedia) {
				t.Fatalf("wrong error surfaced: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		t.Fatal("injected data-SSD read fault never surfaced")
	}
	// Subsequent reads recover (the fault was transient).
	got, err := s.Read(50)
	if err != nil || !bytes.Equal(got, sh.Make(50, 4096)) {
		t.Fatalf("server did not recover after transient fault: %v", err)
	}
}

func TestTableSSDFaultSurfacesOnMiss(t *testing.T) {
	s, tssd, _ := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	// Enough distinct chunks to overflow the bucket cache and force
	// table-SSD traffic later.
	for i := uint64(0); i < 2000; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	tssd.InjectFaults(5, 5, errMedia)
	var sawError bool
	for i := uint64(5000); i < 5300; i++ {
		if err := s.Write(i, sh.Make(100000+i, 4096)); err != nil {
			if !errors.Is(err, errMedia) {
				t.Fatalf("wrong error: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		t.Skip("cache absorbed all table traffic at this scale")
	}
}

func TestWriteFaultOnContainerFlush(t *testing.T) {
	s, _, dssd := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	dssd.InjectFaults(0, 1, errMedia)
	var sawError bool
	// Write until a container seals and flushes (64 KiB container, ~30
	// compressed chunks).
	for i := uint64(0); i < 200; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			if !errors.Is(err, errMedia) {
				t.Fatalf("wrong error: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		if err := s.Flush(); err == nil || !errors.Is(err, errMedia) {
			t.Fatalf("container-write fault never surfaced: %v", err)
		}
	}
}
