package core

import (
	"bytes"
	"errors"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/ssd"
)

var errMedia = errors.New("simulated media error")

// faultServer builds a FIDR server with injectable devices.
func faultServer(t *testing.T) (*Server, *ssd.SSD, *ssd.SSD) {
	t.Helper()
	cfg := DefaultConfig(FIDRFull)
	cfg.ContainerSize = 64 << 10
	tssd := ssd.MustNew(ssd.Config{Name: "tssd", CapacityBytes: 1 << 32, PageSize: 4096,
		ReadLatency: 0, WriteLatency: 0, ReadBW: 3.5e9, WriteBW: 2.7e9})
	dssd := ssd.MustNew(ssd.Config{Name: "dssd", CapacityBytes: 1 << 32, PageSize: 4096,
		ReadLatency: 0, WriteLatency: 0, ReadBW: 3.5e9, WriteBW: 2.7e9})
	cfg.TableSSD = tssd
	cfg.DataSSD = dssd
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, tssd, dssd
}

func TestDataSSDReadFaultSurfaces(t *testing.T) {
	s, _, dssd := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 100; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	dssd.InjectFaults(1, 0, errMedia)
	// Find a read that actually hits the SSD (not the open container).
	var sawError bool
	for i := uint64(0); i < 100; i++ {
		if _, err := s.Read(i); err != nil {
			if !errors.Is(err, errMedia) {
				t.Fatalf("wrong error surfaced: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		t.Fatal("injected data-SSD read fault never surfaced")
	}
	// Subsequent reads recover (the fault was transient).
	got, err := s.Read(50)
	if err != nil || !bytes.Equal(got, sh.Make(50, 4096)) {
		t.Fatalf("server did not recover after transient fault: %v", err)
	}
}

func TestTableSSDFaultSurfacesOnMiss(t *testing.T) {
	s, tssd, _ := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	// Enough distinct chunks to overflow the bucket cache and force
	// table-SSD traffic later.
	for i := uint64(0); i < 2000; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	tssd.InjectFaults(5, 5, errMedia)
	var sawError bool
	for i := uint64(5000); i < 5300; i++ {
		if err := s.Write(i, sh.Make(100000+i, 4096)); err != nil {
			if !errors.Is(err, errMedia) {
				t.Fatalf("wrong error: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		t.Skip("cache absorbed all table traffic at this scale")
	}
}

func TestWriteFaultOnContainerFlush(t *testing.T) {
	s, _, dssd := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	dssd.InjectFaults(0, 1, errMedia)
	var sawError bool
	// Write until a container seals and flushes (64 KiB container, ~30
	// compressed chunks).
	for i := uint64(0); i < 200; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			if !errors.Is(err, errMedia) {
				t.Fatalf("wrong error: %v", err)
			}
			sawError = true
			break
		}
	}
	if !sawError {
		if err := s.Flush(); err == nil || !errors.Is(err, errMedia) {
			t.Fatalf("container-write fault never surfaced: %v", err)
		}
	}
}

// --- WAL fault matrix (issue satellite): short writes, torn records,
// fsync failures. In every case the commit error must surface to the
// caller, and recovery over the durable prefix must replay cleanly and
// leave a verifiable volume.

// walFaultServer builds a FIDR server over a fault-injectable WAL device.
func walFaultServer(t *testing.T) (*Server, *MemWALDevice, Config) {
	t.Helper()
	tssd := ssd.MustNew(ssd.Config{Name: "tssd", CapacityBytes: 1 << 28, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	dssd := ssd.MustNew(ssd.Config{Name: "dssd", CapacityBytes: 1 << 28, PageSize: 4096,
		ReadBW: 3.5e9, WriteBW: 2.7e9})
	dev := NewMemWALDevice()
	w, err := NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := walTestConfig(FIDRFull, tssd, dssd, w)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev, cfg
}

// walRecoverAndVerify crashes the device, recovers, and checks every
// invariant plus the expected readable prefix [0, lbas).
func walRecoverAndVerify(t *testing.T, dev *MemWALDevice, cfg Config, lbas uint64, content func(uint64) []byte) *Server {
	t.Helper()
	dev.Crash()
	w, err := NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = w
	r, err := RecoverServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("recovered volume inconsistent: %v", rep.Problems)
	}
	for i := uint64(0); i < lbas; i++ {
		got, err := r.Read(i)
		if err != nil {
			t.Fatalf("read %d after recovery: %v", i, err)
		}
		if !bytes.Equal(got, content(i)) {
			t.Fatalf("lba %d: wrong content after recovery", i)
		}
	}
	return r
}

func TestWALShortWriteSurfacesAndRecovers(t *testing.T) {
	s, dev, cfg := walFaultServer(t)
	sh := blockcomp.NewShaper(0.5)
	// A durable baseline first.
	for i := uint64(0); i < 64; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// The next commit is torn mid-write.
	dev.InjectFaults(1, 0, errMedia)
	var commitErr error
	for i := uint64(64); i < 400 && commitErr == nil; i++ {
		commitErr = s.Write(i, sh.Make(i, 4096))
	}
	if commitErr == nil {
		commitErr = s.Flush()
	}
	if commitErr == nil || !errors.Is(commitErr, errMedia) {
		t.Fatalf("short WAL write did not surface: %v", commitErr)
	}
	// Recovery replays the durable prefix; the short write left a torn
	// tail that replay must stop at, not choke on.
	walRecoverAndVerify(t, dev, cfg, 64, func(i uint64) []byte { return sh.Make(i, 4096) })
}

func TestWALFsyncErrorSurfacesAndRecovers(t *testing.T) {
	s, dev, cfg := walFaultServer(t)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 64; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	dev.InjectFaults(0, 1, errMedia)
	var commitErr error
	for i := uint64(64); i < 400 && commitErr == nil; i++ {
		commitErr = s.Write(i, sh.Make(i, 4096))
	}
	if commitErr == nil {
		commitErr = s.Flush()
	}
	if commitErr == nil || !errors.Is(commitErr, errMedia) {
		t.Fatalf("WAL fsync error did not surface: %v", commitErr)
	}
	// A failed fsync keeps the durable image at the previous commit;
	// everything before it must recover.
	walRecoverAndVerify(t, dev, cfg, 64, func(i uint64) []byte { return sh.Make(i, 4096) })
}

func TestWALTornRecordReplayStopsCleanly(t *testing.T) {
	s, dev, cfg := walFaultServer(t)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 64; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last committed record: replay must apply
	// every record before it and stop, without an error.
	if dev.Len() < walFrameSize {
		t.Fatal("no committed WAL records")
	}
	dev.Corrupt(int64(dev.Len() - walFrameSize + walHeaderSize + 1))

	dev.Crash()
	w, err := NewWAL(dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = w
	r, err := RecoverServer(cfg)
	if err != nil {
		t.Fatalf("recovery choked on torn record: %v", err)
	}
	rep, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("inconsistent after torn-record replay: %v", rep.Problems)
	}
	// The torn record's mutation is lost; every earlier record applied.
	if r.LastRecovery().ReplayedRecords == 0 {
		t.Fatal("replay applied nothing before the torn record")
	}
}
