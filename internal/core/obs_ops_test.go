package core

import (
	"testing"
	"time"

	"fidr/internal/blockcomp"
)

// hasOp reports whether any trace in ts carries the op.
func hasOp(ts []Trace, op string) bool {
	for _, tr := range ts {
		if tr.Op == op {
			return true
		}
	}
	return false
}

func TestMaintenanceOpsTraced(t *testing.T) {
	s := newServer(t, FIDRFull)
	// Ring big enough that the later overwrites don't evict the
	// maintenance-op traces.
	reg := s.EnableObservability(nil, 1024)
	sh := blockcomp.NewShaper(0.5)
	const n = 120
	for i := 0; i < n; i++ {
		if err := s.Write(uint64(i), sh.Make(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	id, err := s.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadSnapshot(id, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify: %v", rep.Problems)
	}
	// Overwrite everything with fresh content so compaction has garbage,
	// then release the snapshot's hold on the old chunks.
	for i := 0; i < n; i++ {
		if err := s.Write(uint64(i), sh.Make(uint64(1000+i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSnapshot(id); err != nil {
		t.Fatal(err)
	}
	res, err := s.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCompacted == 0 {
		t.Fatal("compaction found nothing; test setup broken")
	}

	ts := s.RecentTraces()
	for _, op := range []string{"snapshot", "snapshot_read", "verify", "gc"} {
		if !hasOp(ts, op) {
			t.Errorf("no %q trace in ring", op)
		}
	}
	// Bulk ops keep a bounded span list; the histograms get everything.
	for _, tr := range ts {
		if len(tr.Spans) > 64 {
			t.Errorf("%s trace has %d spans; cap broken", tr.Op, len(tr.Spans))
		}
		if tr.DroppedSpans < 0 {
			t.Errorf("%s trace dropped %d spans", tr.Op, tr.DroppedSpans)
		}
	}
	// The verify pass rehashes every live chunk, so the hash stage saw
	// at least n more samples than the writes alone.
	if got := reg.Histogram("stage.hash.ns").Count(); got < 2*n {
		t.Errorf("stage.hash.ns count = %d, want >= %d (writes + verify rehash)", got, 2*n)
	}
}

func TestTraceContextAdopt(t *testing.T) {
	s := newServer(t, FIDRFull)
	reg := s.EnableObservability(nil, 8)
	sh := blockcomp.NewShaper(0.5)
	wait := 5 * time.Millisecond
	tc := &TraceContext{
		Op:    "awrite",
		Start: time.Now().Add(-wait),
		Spans: []Span{{Stage: StageQueueWait, Dur: wait}},
	}
	if err := s.WriteTraced(7, sh.Make(1, 4096), tc); err != nil {
		t.Fatal(err)
	}
	ts := s.RecentTraces()
	if len(ts) == 0 {
		t.Fatal("no traces")
	}
	tr := ts[0]
	if tr.Op != "awrite" {
		t.Fatalf("op = %q, want awrite", tr.Op)
	}
	if tr.Total < wait {
		t.Fatalf("total %v does not include the %v queue wait", tr.Total, wait)
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Stage == StageQueueWait && sp.Dur == wait {
			found = true
		}
	}
	if !found {
		t.Fatal("queue_wait span not adopted into the trace")
	}
	if got := reg.Histogram("stage.queue_wait.ns").Count(); got != 1 {
		t.Fatalf("stage.queue_wait.ns count = %d, want 1", got)
	}
}
