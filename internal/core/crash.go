package core

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Deterministic crash injection (extension). The crash-recovery harness
// needs to kill the pipeline at named stages — after hashing, before
// packing, between a container's data-SSD write and its WAL commit, and
// inside Checkpoint — at a seed-chosen occurrence. ArmCrash plants the
// bomb; when the armed stage's N-th hit fires, the server returns
// ErrCrashInjected and permanently refuses further work, exactly like a
// dead process: nothing (not even a front-end's shutdown Flush) can
// mutate state after the crash point.

// CrashStage names a pipeline point where injection can fire.
type CrashStage int

const (
	// CrashPostHash fires after batch fingerprinting, before dedup
	// lookups: chunk data is buffered, no metadata was touched.
	CrashPostHash CrashStage = iota
	// CrashPrePack fires after compression, before packing/table
	// updates: the most work lost without any mutation applied.
	CrashPrePack
	// CrashMidContainerFlush fires between a sealed container's data-SSD
	// write and the WAL commit that makes its metadata durable — the
	// window that leaves an orphaned container on the data SSD.
	CrashMidContainerFlush
	// CrashMidCheckpoint fires inside Checkpoint: on the first hit
	// before the checkpoint image is written (stale checkpoint + full
	// WAL survive), on the second after it is written but before the
	// WAL truncates (new checkpoint + stale WAL — replay must skip
	// already-checkpointed records).
	CrashMidCheckpoint
	// NumCrashStages bounds the enum for harness iteration.
	NumCrashStages
)

// String implements fmt.Stringer.
func (c CrashStage) String() string {
	switch c {
	case CrashPostHash:
		return "post-hash"
	case CrashPrePack:
		return "pre-pack"
	case CrashMidContainerFlush:
		return "mid-container-flush"
	case CrashMidCheckpoint:
		return "mid-checkpoint"
	default:
		return fmt.Sprintf("CrashStage(%d)", int(c))
	}
}

// ErrCrashInjected is returned by every operation at and after an
// injected crash.
var ErrCrashInjected = errors.New("core: injected crash")

// crashState lives on the Server. countdown is only touched by the
// owning goroutine; crashed is atomic so harness goroutines can poll
// Crashed() while the worker runs.
type crashState struct {
	stage     CrashStage
	countdown int
	armed     bool
	crashed   atomic.Bool
}

// ArmCrash plants a crash at the hitNo-th occurrence (1-based) of stage.
// Call before submitting traffic; only one crash can be armed.
func (s *Server) ArmCrash(stage CrashStage, hitNo int) {
	if hitNo < 1 {
		hitNo = 1
	}
	s.crash.stage = stage
	s.crash.countdown = hitNo
	s.crash.armed = true
}

// Crashed reports whether an injected crash has fired. Safe to call from
// any goroutine.
func (s *Server) Crashed() bool { return s.crash.crashed.Load() }

// crashPoint fires the armed crash if this is its chosen occurrence.
func (s *Server) crashPoint(stage CrashStage) error {
	if s.crash.crashed.Load() {
		return fmt.Errorf("core: server is down at %s: %w", stage, ErrCrashInjected)
	}
	if !s.crash.armed || s.crash.stage != stage {
		return nil
	}
	s.crash.countdown--
	if s.crash.countdown > 0 {
		return nil
	}
	s.crash.crashed.Store(true)
	return fmt.Errorf("core: crash at %s: %w", stage, ErrCrashInjected)
}

// failIfCrashed guards entry points: a crashed server is a dead process.
func (s *Server) failIfCrashed() error {
	if s.crash.crashed.Load() {
		return fmt.Errorf("core: server is down: %w", ErrCrashInjected)
	}
	return nil
}
