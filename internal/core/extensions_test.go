package core

import (
	"bytes"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/hostmodel"
)

func TestReadOffloadRemovesIOStackCPU(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	run := func(offload bool) hostmodel.Snapshot {
		cfg := DefaultConfig(FIDRFull)
		cfg.OffloadDataSSDQueues = offload
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 256; i++ {
			s.Write(i, sh.Make(i, 4096))
		}
		s.Flush()
		for i := uint64(0); i < 256; i++ {
			if _, err := s.Read(i); err != nil {
				t.Fatal(err)
			}
		}
		return s.Ledger().Snapshot()
	}
	withStack := run(false)
	without := run(true)
	if withStack.CPUNanos[hostmodel.CompDataSSDIO] == 0 {
		t.Fatal("no data-SSD stack CPU without offload")
	}
	// With queues offloaded, only container writes charge the stack.
	if without.CPUNanos[hostmodel.CompDataSSDIO] >= withStack.CPUNanos[hostmodel.CompDataSSDIO]/2 {
		t.Fatalf("offload did not reduce IO-stack CPU: %d vs %d",
			without.CPUNanos[hostmodel.CompDataSSDIO], withStack.CPUNanos[hostmodel.CompDataSSDIO])
	}
	if without.TotalCPUNanos() >= withStack.TotalCPUNanos() {
		t.Fatal("offload did not reduce total CPU")
	}
}

func TestReadCacheServesSkewedReads(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	cfg := DefaultConfig(FIDRFull)
	cfg.ReadCacheChunks = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	// Skewed reads: hammer 16 hot LBAs.
	ssdReadsBefore := s.DataSSDStats().ReadIOs
	for rep := 0; rep < 20; rep++ {
		for i := uint64(0); i < 16; i++ {
			got, err := s.Read(i)
			if err != nil || !bytes.Equal(got, sh.Make(i, 4096)) {
				t.Fatalf("hot read %d corrupted", i)
			}
		}
	}
	st := s.Stats()
	if st.ReadCacheHits < 16*19 {
		t.Fatalf("read cache hits = %d, want ~%d", st.ReadCacheHits, 16*19)
	}
	if hr := s.ReadCacheHitRate(); hr < 0.9 {
		t.Fatalf("hit rate %.3f on hot set", hr)
	}
	// The SSD saw only the cold misses.
	ssdReads := s.DataSSDStats().ReadIOs - ssdReadsBefore
	if ssdReads > 20 {
		t.Fatalf("SSD absorbed %d reads despite the cache", ssdReads)
	}
}

func TestReadCacheInvalidatedOnWrite(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	cfg := DefaultConfig(FIDRFull)
	cfg.ReadCacheChunks = 16
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1 := sh.Make(1, 4096)
	v2 := sh.Make(2, 4096)
	s.Write(7, v1)
	s.Flush()
	if _, err := s.Read(7); err != nil { // populates the cache
		t.Fatal(err)
	}
	s.Write(7, v2) // must invalidate
	s.Flush()
	got, err := s.Read(7)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatal("stale read-cache entry served after overwrite")
	}
}

func TestReadCacheDisabledByDefault(t *testing.T) {
	s := newServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	s.Write(1, sh.Make(1, 4096))
	s.Flush()
	s.Read(1)
	s.Read(1)
	if s.Stats().ReadCacheHits != 0 || s.ReadCacheHitRate() != 0 {
		t.Fatal("disabled read cache recorded hits")
	}
}

func TestReadCacheEviction(t *testing.T) {
	c := newReadCache(2)
	c.put(1, []byte{1})
	c.put(2, []byte{2})
	c.put(3, []byte{3}) // evicts 1
	if _, ok := c.get(1); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(2); !ok {
		t.Fatal("entry 2 lost")
	}
	// Update in place does not grow the cache.
	c.put(2, []byte{22})
	if v, _ := c.get(2); v[0] != 22 {
		t.Fatal("update not applied")
	}
	c.invalidate(3)
	if _, ok := c.get(3); ok {
		t.Fatal("invalidated entry served")
	}
	// Returned data is a copy.
	v, _ := c.get(2)
	v[0] = 99
	v2, _ := c.get(2)
	if v2[0] == 99 {
		t.Fatal("cache aliases returned slices")
	}
}
